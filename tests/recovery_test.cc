// Durability & crash-recovery tests: a durable engine (PolarisEngine::Open
// with data_dir) must survive arbitrary process death. Every committed
// transaction is fully visible after reopen, no uncommitted transaction
// leaks partial state, recovery is idempotent, and crash litter (staged
// blocks, orphaned data blobs) is reclaimed by the STO.
//
// Process death is simulated with crash points (common/crashpoint.h):
// named sites threaded through the commit protocol that, when armed, fail
// exactly once with Internal("crash point fired"). The engine object is
// then discarded without any shutdown path — exactly what a crash leaves
// behind on disk — and reopened.

#include <gtest/gtest.h>

#include <filesystem>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/crashpoint.h"
#include "engine/engine.h"

namespace polaris::engine {
namespace {

using catalog::IsolationMode;
using common::Status;
using exec::AggFunc;
using exec::CompareOp;
using exec::Conjunction;
using exec::Predicate;
using format::ColumnType;
using format::RecordBatch;
using format::Schema;
using format::Value;

Schema EventsSchema() {
  return Schema({{"id", ColumnType::kInt64}, {"val", ColumnType::kInt64}});
}

RecordBatch EventRow(int64_t id, int64_t val) {
  RecordBatch batch{EventsSchema()};
  EXPECT_TRUE(batch.AppendRow({Value::Int64(id), Value::Int64(val)}).ok());
  return batch;
}

Conjunction WhereId(int64_t id) {
  Conjunction conj;
  conj.predicates.push_back(
      Predicate::Make("id", CompareOp::kEq, Value::Int64(id)));
  return conj;
}

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    common::CrashPoints::Disarm();
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    data_dir_ = std::filesystem::path(::testing::TempDir()) /
                (std::string("polaris_recovery_") + info->name());
    std::filesystem::remove_all(data_dir_);
  }

  void TearDown() override {
    common::CrashPoints::Disarm();
    std::filesystem::remove_all(data_dir_);
  }

  EngineOptions MakeOptions() {
    EngineOptions options;
    options.num_cells = 2;
    options.worker_threads = 2;
    options.data_dir = data_dir_.string();
    return options;
  }

  std::unique_ptr<PolarisEngine> Open() {
    auto engine = PolarisEngine::Open(MakeOptions());
    EXPECT_TRUE(engine.ok()) << engine.status().ToString();
    return std::move(*engine);
  }

  /// COUNT(*) WHERE id = `id` in a fresh transaction.
  static int64_t CountId(PolarisEngine* engine, int64_t id) {
    auto txn = engine->Begin();
    EXPECT_TRUE(txn.ok());
    QuerySpec spec;
    spec.filter = WhereId(id);
    spec.aggregates = {{AggFunc::kCount, "", "cnt"}};
    auto result = engine->Query(txn->get(), "events", spec);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    (void)engine->Abort(txn->get());
    return result->column(0).Int64At(0);
  }

  /// One workload transaction: inserts rows (id, 100+id) and (id, 200+id)
  /// as two statements, and (for id >= 3) deletes the rows of id-3.
  /// Committed => exactly 2 visible rows for `id`; anything else for a
  /// committed transaction is an atomicity violation.
  static Status RunTxn(PolarisEngine* engine, int64_t id) {
    auto txn = engine->Begin();
    if (!txn.ok()) return txn.status();
    auto run = [&]() -> Status {
      POLARIS_RETURN_IF_ERROR(
          engine->Insert(txn->get(), "events", EventRow(id, 100 + id))
              .status());
      POLARIS_RETURN_IF_ERROR(
          engine->Insert(txn->get(), "events", EventRow(id, 200 + id))
              .status());
      if (id >= 3) {
        POLARIS_RETURN_IF_ERROR(
            engine->Delete(txn->get(), "events", WhereId(id - 3)).status());
      }
      return engine->Commit(txn->get());
    };
    Status status = run();
    if (!status.ok()) (void)engine->Abort(txn->get());
    return status;
  }

  static std::vector<std::pair<std::string, std::string>> ExportCatalog(
      PolarisEngine* engine, uint64_t* seq) {
    return engine->catalog()->store()->ExportLatest(seq);
  }

  std::filesystem::path data_dir_;
};

TEST_F(RecoveryTest, ReopenPreservesCommittedData) {
  {
    auto engine = Open();
    ASSERT_TRUE(engine->CreateTable("events", EventsSchema()).ok());
    for (int64_t i = 0; i < 5; ++i) {
      ASSERT_TRUE(RunTxn(engine.get(), i).ok()) << i;
    }
    EXPECT_GT(engine->Stats().journal_records, 0u);
  }
  auto engine = Open();
  // ids 0,1 deleted by txns 3,4; ids 2,3,4 live with both rows.
  EXPECT_EQ(CountId(engine.get(), 0), 0);
  EXPECT_EQ(CountId(engine.get(), 1), 0);
  for (int64_t i = 2; i < 5; ++i) {
    EXPECT_EQ(CountId(engine.get(), i), 2) << i;
  }
  EXPECT_GT(engine->recovery_info().records_replayed, 0u);
  // The journal keeps working after recovery.
  ASSERT_TRUE(RunTxn(engine.get(), 5).ok());
  EXPECT_EQ(CountId(engine.get(), 5), 2);
}

TEST_F(RecoveryTest, UncommittedTransactionInvisibleAfterReopen) {
  {
    auto engine = Open();
    ASSERT_TRUE(engine->CreateTable("events", EventsSchema()).ok());
    ASSERT_TRUE(RunTxn(engine.get(), 0).ok());
    // A transaction that inserts but never commits, then the process dies.
    auto txn = engine->Begin();
    ASSERT_TRUE(txn.ok());
    ASSERT_TRUE(
        engine->Insert(txn->get(), "events", EventRow(99, 1)).status().ok());
    // No Commit, no Abort: drop everything on the floor.
  }
  auto engine = Open();
  EXPECT_EQ(CountId(engine.get(), 0), 2);
  EXPECT_EQ(CountId(engine.get(), 99), 0);

  // The orphaned transaction's blobs (data files it Put before dying) are
  // unknown to every table state and get swept once past the GC horizon.
  engine->clock()->Advance(engine->options().sto_options.retention_micros + 1);
  auto gc = engine->sto()->RunGarbageCollection();
  ASSERT_TRUE(gc.ok()) << gc.status().ToString();
  auto gc2 = engine->sto()->RunGarbageCollection();
  ASSERT_TRUE(gc2.ok());
  EXPECT_EQ(gc2->blobs_deleted, 0u);  // first sweep got everything
  EXPECT_EQ(CountId(engine.get(), 0), 2);
}

TEST_F(RecoveryTest, RecoveryIsIdempotent) {
  {
    auto engine = Open();
    ASSERT_TRUE(engine->CreateTable("events", EventsSchema()).ok());
    for (int64_t i = 0; i < 4; ++i) {
      ASSERT_TRUE(RunTxn(engine.get(), i).ok());
    }
  }
  uint64_t seq1 = 0, seq2 = 0;
  std::vector<std::pair<std::string, std::string>> rows1, rows2;
  {
    auto engine = Open();
    rows1 = ExportCatalog(engine.get(), &seq1);
  }
  {
    auto engine = Open();
    rows2 = ExportCatalog(engine.get(), &seq2);
  }
  EXPECT_EQ(seq1, seq2);
  EXPECT_EQ(rows1, rows2);
  EXPECT_FALSE(rows1.empty());
}

TEST_F(RecoveryTest, CheckpointBoundsReplayAndSegmentsAreReclaimed) {
  uint64_t full_replay = 0;
  {
    auto engine = Open();
    ASSERT_TRUE(engine->CreateTable("events", EventsSchema()).ok());
    for (int64_t i = 0; i < 6; ++i) {
      ASSERT_TRUE(RunTxn(engine.get(), i).ok());
    }
  }
  {
    auto engine = Open();
    full_replay = engine->recovery_info().records_replayed;
    EXPECT_GT(full_replay, 0u);
    // Checkpoint, then two more transactions past it.
    ASSERT_TRUE(engine->CheckpointCatalog().ok());
    ASSERT_TRUE(RunTxn(engine.get(), 6).ok());
    ASSERT_TRUE(RunTxn(engine.get(), 7).ok());
    // The STO sweep reclaims journal segments the checkpoint superseded.
    auto reclaimed = engine->journal()->ReclaimSupersededSegments();
    ASSERT_TRUE(reclaimed.ok()) << reclaimed.status().ToString();
  }
  auto engine = Open();
  // Replay restarts from the checkpoint: only the post-checkpoint tail.
  EXPECT_GT(engine->recovery_info().checkpoint_seq, 0u);
  EXPECT_LT(engine->recovery_info().records_replayed, full_replay);
  EXPECT_EQ(CountId(engine.get(), 5), 2);
  EXPECT_EQ(CountId(engine.get(), 6), 2);
  EXPECT_EQ(CountId(engine.get(), 7), 2);
  EXPECT_EQ(CountId(engine.get(), 1), 0);  // deleted by txn 4 pre-checkpoint
}

TEST_F(RecoveryTest, StoSweepWritesCheckpointsAutomatically) {
  EngineOptions options = MakeOptions();
  options.journal_options.checkpoint_every_records = 4;
  {
    auto opened = PolarisEngine::Open(options);
    ASSERT_TRUE(opened.ok());
    auto& engine = *opened;
    ASSERT_TRUE(engine->CreateTable("events", EventsSchema()).ok());
    for (int64_t i = 0; i < 8; ++i) {
      ASSERT_TRUE(RunTxn(engine.get(), i).ok());
    }
    ASSERT_TRUE(engine->sto()->RunOnce().ok());
    EXPECT_GT(engine->Stats().journal_checkpoints, 0u);
  }
  auto opened = PolarisEngine::Open(options);
  ASSERT_TRUE(opened.ok());
  EXPECT_GT((*opened)->recovery_info().checkpoint_seq, 0u);
  EXPECT_EQ(CountId(opened->get(), 7), 2);
}

TEST_F(RecoveryTest, TornFinalRecordIsDropped) {
  {
    auto engine = Open();
    ASSERT_TRUE(engine->CreateTable("events", EventsSchema()).ok());
    ASSERT_TRUE(RunTxn(engine.get(), 0).ok());
    // The journal write for txn 1 is cut mid-record — as if the process
    // died while appending. The commit must fail (durability point not
    // reached) and the half-record must not resurrect the txn on replay.
    common::CrashPoints::Arm(common::crash::kJournalAppendTorn);
    Status status = RunTxn(engine.get(), 1);
    EXPECT_FALSE(status.ok());
    EXPECT_EQ(common::CrashPoints::fired_count(), 1u);
    common::CrashPoints::Disarm();
    // The journal fails closed after a write error: later commits on this
    // (doomed) process must not outrun the durable log.
    EXPECT_FALSE(RunTxn(engine.get(), 2).ok());
  }
  auto engine = Open();
  EXPECT_TRUE(engine->recovery_info().torn_tail);
  EXPECT_EQ(CountId(engine.get(), 0), 2);
  EXPECT_EQ(CountId(engine.get(), 1), 0);
  EXPECT_EQ(CountId(engine.get(), 2), 0);
  // A reopened database accepts new commits past the torn tail.
  ASSERT_TRUE(RunTxn(engine.get(), 3).ok());
  EXPECT_EQ(CountId(engine.get(), 3), 2);
}

// The acceptance gate: for every crash point, a mixed DML workload
// interrupted there must reopen to a state where every acked transaction
// is fully visible, every failed one left nothing, and the one
// in-doubt transaction (whose commit errored at the crash) is atomic —
// all of its rows or none. Recovering twice yields identical state, and
// crash litter is reclaimable.
TEST_F(RecoveryTest, CrashPointMatrix) {
  const std::string kPoints[] = {
      std::string(common::crash::kCommitAfterWriteSets),
      std::string(common::crash::kCatalogCommitBeforeManifests),
      std::string(common::crash::kCatalogCommitAfterManifests),
      std::string(common::crash::kCommitBatchFormed),
      std::string(common::crash::kCommitBatchAppended),
      std::string(common::crash::kCommitBatchInstalled),
      std::string(common::crash::kJournalAppendBefore),
      std::string(common::crash::kJournalAppendTorn),
      std::string(common::crash::kJournalAppendAfterCommit),
      std::string(common::crash::kStorePutBeforeRename),
      std::string(common::crash::kStoreCommitBeforeRename),
  };
  constexpr int64_t kTxns = 6;

  for (const auto& point : kPoints) {
    SCOPED_TRACE(point);
    std::filesystem::remove_all(data_dir_);

    std::set<int64_t> committed;
    std::optional<int64_t> in_doubt;
    {
      auto engine = Open();
      ASSERT_TRUE(engine->CreateTable("events", EventsSchema()).ok());
      // Two baseline transactions land before the crash point arms, so
      // the crash always interrupts a database with real history.
      ASSERT_TRUE(RunTxn(engine.get(), 0).ok());
      ASSERT_TRUE(RunTxn(engine.get(), 1).ok());
      committed = {0, 1};

      // Fire on the 2nd matching operation after arming: mid-workload,
      // not on its leading edge.
      uint64_t fired_before = common::CrashPoints::fired_count();
      common::CrashPoints::Arm(point, /*skip=*/1);
      for (int64_t i = 2; i < kTxns; ++i) {
        Status status = RunTxn(engine.get(), i);
        if (status.ok()) {
          committed.insert(i);
          continue;
        }
        // The process "died" here. The transaction whose commit errored
        // is in doubt: its durability depends on where exactly the crash
        // hit relative to the journal append.
        in_doubt = i;
        break;
      }
      ASSERT_EQ(common::CrashPoints::fired_count(), fired_before + 1)
          << "crash point never fired; workload too small";
      common::CrashPoints::Disarm();
      // Engine discarded without shutdown — crash semantics.
    }

    auto Expected = [&](int64_t id) -> int64_t {
      // Rows of `id` are deleted by committed txn id+3 (if any).
      if (committed.count(id + 3) > 0) return 0;
      return committed.count(id) > 0 ? 2 : 0;
    };

    auto engine = Open();
    for (int64_t i = 0; i < kTxns; ++i) {
      int64_t count = CountId(engine.get(), i);
      bool depends_on_doubt =
          in_doubt.has_value() && (i == *in_doubt || i + 3 == *in_doubt);
      if (depends_on_doubt) {
        // Atomicity: the in-doubt transaction applied fully or not at all.
        int64_t if_applied = [&] {
          std::set<int64_t> with = committed;
          with.insert(*in_doubt);
          if (with.count(i + 3) > 0) return int64_t{0};
          return with.count(i) > 0 ? int64_t{2} : int64_t{0};
        }();
        EXPECT_TRUE(count == Expected(i) || count == if_applied)
            << "id " << i << ": count " << count << " matches neither "
            << Expected(i) << " (not applied) nor " << if_applied
            << " (applied)";
      } else {
        EXPECT_EQ(count, Expected(i)) << "id " << i;
      }
    }

    // Idempotence: recovering the same directory again reproduces the
    // same catalog, byte for byte.
    uint64_t seq1 = 0;
    auto rows1 = ExportCatalog(engine.get(), &seq1);
    engine.reset();
    engine = Open();
    uint64_t seq2 = 0;
    auto rows2 = ExportCatalog(engine.get(), &seq2);
    EXPECT_EQ(seq1, seq2);
    EXPECT_EQ(rows1, rows2);

    // Crash litter: staged blocks were swept at reopen; blobs the dead
    // transaction managed to Put are reclaimed once past the GC horizon.
    engine->clock()->Advance(
        engine->options().sto_options.retention_micros + 1);
    ASSERT_TRUE(engine->sto()->RunOnce(/*run_gc=*/true).ok());
    auto gc = engine->sto()->RunGarbageCollection();
    ASSERT_TRUE(gc.ok());
    EXPECT_EQ(gc->blobs_deleted, 0u) << "second sweep found more garbage";

    // And the reopened database still takes commits.
    ASSERT_TRUE(RunTxn(engine.get(), 100).ok());
    EXPECT_EQ(CountId(engine.get(), 100), 2);
  }
}

}  // namespace
}  // namespace polaris::engine
