// Unit tests for the execution layer: predicates, the merge-on-read
// scanner with deletion vectors and zone-map skipping, aggregation, joins
// and the immutable-file data cache.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/guid.h"
#include "exec/aggregate.h"
#include "exec/data_cache.h"
#include "exec/expression.h"
#include "exec/join.h"
#include "exec/scan.h"
#include "format/file_writer.h"
#include "lst/deletion_vector.h"
#include "storage/memory_object_store.h"

namespace polaris::exec {
namespace {

using format::ColumnType;
using format::RecordBatch;
using format::Schema;
using format::Value;

Schema TestSchema() {
  return Schema({{"id", ColumnType::kInt64},
                 {"amount", ColumnType::kDouble},
                 {"tag", ColumnType::kString}});
}

RecordBatch MakeBatch(int n, int offset = 0) {
  RecordBatch batch{TestSchema()};
  for (int i = 0; i < n; ++i) {
    int v = offset + i;
    EXPECT_TRUE(batch
                    .AppendRow({Value::Int64(v), Value::Double(v * 1.5),
                                Value::String(v % 2 == 0 ? "even" : "odd")})
                    .ok());
  }
  return batch;
}

// --- Predicates -----------------------------------------------------------------

TEST(PredicateTest, AllOperatorsOnInt64) {
  RecordBatch batch = MakeBatch(5);  // ids 0..4
  struct Case {
    CompareOp op;
    int expected;
  };
  const Case cases[] = {{CompareOp::kEq, 1},  {CompareOp::kNe, 4},
                        {CompareOp::kLt, 2},  {CompareOp::kLe, 3},
                        {CompareOp::kGt, 2},  {CompareOp::kGe, 3}};
  for (const auto& c : cases) {
    Conjunction conj;
    conj.predicates.push_back(Predicate::Make("id", c.op, Value::Int64(2)));
    auto mask = EvaluateConjunction(conj, batch);
    ASSERT_TRUE(mask.ok());
    int count = 0;
    for (uint8_t m : *mask) count += m;
    EXPECT_EQ(count, c.expected) << CompareOpName(c.op);
  }
}

TEST(PredicateTest, ConjunctionAndsPredicates) {
  RecordBatch batch = MakeBatch(10);
  Conjunction conj;
  conj.predicates.push_back(
      Predicate::Make("id", CompareOp::kGe, Value::Int64(3)));
  conj.predicates.push_back(
      Predicate::Make("tag", CompareOp::kEq, Value::String("even")));
  auto mask = EvaluateConjunction(conj, batch);
  ASSERT_TRUE(mask.ok());
  RecordBatch filtered = FilterBatch(batch, *mask);
  ASSERT_EQ(filtered.num_rows(), 3u);  // 4, 6, 8
  EXPECT_EQ(filtered.column(0).Int64At(0), 4);
}

TEST(PredicateTest, NullsNeverMatch) {
  RecordBatch batch{TestSchema()};
  ASSERT_TRUE(batch
                  .AppendRow({Value::Null(ColumnType::kInt64),
                              Value::Double(1), Value::String("x")})
                  .ok());
  Conjunction conj;
  conj.predicates.push_back(
      Predicate::Make("id", CompareOp::kNe, Value::Int64(5)));
  auto mask = EvaluateConjunction(conj, batch);
  ASSERT_TRUE(mask.ok());
  EXPECT_EQ((*mask)[0], 0);
}

TEST(PredicateTest, UnknownColumnRejected) {
  RecordBatch batch = MakeBatch(1);
  Conjunction conj;
  conj.predicates.push_back(
      Predicate::Make("ghost", CompareOp::kEq, Value::Int64(1)));
  EXPECT_TRUE(EvaluateConjunction(conj, batch).status().IsInvalidArgument());
}

TEST(PredicateTest, TypeMismatchRejected) {
  RecordBatch batch = MakeBatch(1);
  Conjunction conj;
  conj.predicates.push_back(
      Predicate::Make("id", CompareOp::kEq, Value::String("1")));
  EXPECT_TRUE(EvaluateConjunction(conj, batch).status().IsInvalidArgument());
}

TEST(PredicateTest, BoundsForDerivesRanges) {
  Conjunction conj;
  conj.predicates.push_back(
      Predicate::Make("id", CompareOp::kGe, Value::Int64(10)));
  conj.predicates.push_back(
      Predicate::Make("id", CompareOp::kLt, Value::Int64(20)));
  conj.predicates.push_back(
      Predicate::Make("id", CompareOp::kGt, Value::Int64(12)));
  auto bounds = conj.BoundsFor("id");
  ASSERT_TRUE(bounds.has_low);
  ASSERT_TRUE(bounds.has_high);
  EXPECT_EQ(bounds.low.i64, 12);
  EXPECT_EQ(bounds.high.i64, 20);
  auto none = conj.BoundsFor("other");
  EXPECT_FALSE(none.has_low);
  EXPECT_FALSE(none.has_high);
}

// --- Scanner ---------------------------------------------------------------------

class ScanTest : public ::testing::Test {
 protected:
  ScanTest() : cache_(&store_) {}

  /// Writes `batch` as a data file and registers it in the snapshot.
  lst::FileState AddFile(const RecordBatch& batch, uint32_t cell = 0,
                         uint64_t rows_per_group = 1024) {
    format::FileWriterOptions opts;
    opts.rows_per_row_group = rows_per_group;
    format::FileWriter writer(batch.schema(), opts);
    EXPECT_TRUE(writer.Append(batch).ok());
    auto bytes = std::move(writer).Finish();
    EXPECT_TRUE(bytes.ok());
    std::string path =
        "data/" + common::Guid::Generate().ToString() + ".parquet";
    uint64_t size = bytes->size();
    EXPECT_TRUE(store_.Put(path, std::move(*bytes)).ok());
    lst::FileState state;
    state.info.path = path;
    state.info.row_count = batch.num_rows();
    state.info.byte_size = size;
    state.info.cell_id = cell;
    snapshot_.InsertFile(state);
    return state;
  }

  /// Attaches a DV to a file already in the snapshot.
  void AttachDv(const std::string& file_path,
                const std::vector<uint64_t>& ordinals) {
    lst::DeletionVector dv;
    for (uint64_t o : ordinals) dv.MarkDeleted(o);
    std::string path = "data/" + common::Guid::Generate().ToString() + ".dv";
    ASSERT_TRUE(store_.Put(path, dv.ToBlob()).ok());
    lst::FileState state = snapshot_.files().at(file_path);
    state.dv_path = path;
    state.deleted_count = dv.cardinality();
    snapshot_.InsertFile(state);
  }

  storage::MemoryObjectStore store_;
  DataCache cache_;
  lst::TableSnapshot snapshot_;
};

TEST_F(ScanTest, ScansAllRows) {
  AddFile(MakeBatch(50));
  AddFile(MakeBatch(30, 100));
  TableScanner scanner(&cache_, &snapshot_);
  ScanMetrics metrics;
  auto batch = scanner.ScanAll({}, &metrics);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->num_rows(), 80u);
  EXPECT_EQ(metrics.files_scanned, 2u);
  EXPECT_EQ(metrics.rows_output, 80u);
}

TEST_F(ScanTest, DeletionVectorFiltersRows) {
  lst::FileState file = AddFile(MakeBatch(10));
  AttachDv(file.info.path, {0, 5, 9});
  TableScanner scanner(&cache_, &snapshot_);
  ScanMetrics metrics;
  auto batch = scanner.ScanAll({}, &metrics);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->num_rows(), 7u);
  EXPECT_EQ(metrics.rows_dv_filtered, 3u);
  // Deleted ids 0, 5, 9 are absent.
  for (size_t r = 0; r < batch->num_rows(); ++r) {
    int64_t id = batch->column(0).Int64At(r);
    EXPECT_NE(id, 0);
    EXPECT_NE(id, 5);
    EXPECT_NE(id, 9);
  }
}

TEST_F(ScanTest, DvOrdinalsSpanRowGroups) {
  // Ordinals are file-relative, not row-group-relative.
  lst::FileState file = AddFile(MakeBatch(100), 0, /*rows_per_group=*/30);
  AttachDv(file.info.path, {35, 95});  // in groups 1 and 3
  TableScanner scanner(&cache_, &snapshot_);
  auto batch = scanner.ScanAll({});
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->num_rows(), 98u);
  for (size_t r = 0; r < batch->num_rows(); ++r) {
    int64_t id = batch->column(0).Int64At(r);
    EXPECT_NE(id, 35);
    EXPECT_NE(id, 95);
  }
}

TEST_F(ScanTest, PredicateAndProjection) {
  AddFile(MakeBatch(20));
  TableScanner scanner(&cache_, &snapshot_);
  ScanOptions options;
  options.projection = {"tag", "id"};
  options.filter.predicates.push_back(
      Predicate::Make("amount", CompareOp::kGt, Value::Double(20.0)));
  auto batch = scanner.ScanAll(options);
  ASSERT_TRUE(batch.ok());
  // amount = id*1.5 > 20 -> id >= 14.
  EXPECT_EQ(batch->num_rows(), 6u);
  EXPECT_EQ(batch->schema().column(0).name, "tag");
  EXPECT_EQ(batch->schema().column(1).name, "id");
  EXPECT_EQ(batch->column(1).Int64At(0), 14);
}

TEST_F(ScanTest, ZoneMapSkipsRowGroups) {
  AddFile(MakeBatch(100), 0, /*rows_per_group=*/25);  // 4 groups
  TableScanner scanner(&cache_, &snapshot_);
  ScanOptions options;
  options.filter.predicates.push_back(
      Predicate::Make("id", CompareOp::kGe, Value::Int64(80)));
  ScanMetrics metrics;
  auto batch = scanner.ScanAll(options, &metrics);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->num_rows(), 20u);
  EXPECT_EQ(metrics.row_groups_skipped, 3u);
  EXPECT_EQ(metrics.row_groups_read, 1u);
}

TEST_F(ScanTest, CellFilterRestrictsFiles) {
  AddFile(MakeBatch(10), /*cell=*/1);
  AddFile(MakeBatch(10, 50), /*cell=*/2);
  TableScanner scanner(&cache_, &snapshot_);
  ScanOptions options;
  options.cells = {2};
  ScanMetrics metrics;
  auto batch = scanner.ScanAll(options, &metrics);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->num_rows(), 10u);
  EXPECT_EQ(metrics.files_scanned, 1u);
  EXPECT_EQ(batch->column(0).Int64At(0), 50);
}

TEST_F(ScanTest, OrdinalCallbackReportsFileOrdinals) {
  lst::FileState file = AddFile(MakeBatch(10));
  AttachDv(file.info.path, {2});
  TableScanner scanner(&cache_, &snapshot_);
  ScanOptions options;
  options.filter.predicates.push_back(
      Predicate::Make("id", CompareOp::kLe, Value::Int64(4)));
  std::vector<uint64_t> seen;
  ASSERT_TRUE(scanner
                  .ScanFilesWithOrdinals(
                      options,
                      [&](const lst::FileState&, const RecordBatch& batch,
                          const std::vector<uint64_t>& ordinals) {
                        EXPECT_EQ(batch.num_rows(), ordinals.size());
                        seen.insert(seen.end(), ordinals.begin(),
                                    ordinals.end());
                        return common::Status::OK();
                      })
                  .ok());
  // ids 0..4 minus deleted ordinal 2.
  EXPECT_EQ(seen, (std::vector<uint64_t>{0, 1, 3, 4}));
}

// --- Aggregation -------------------------------------------------------------------

TEST(AggregateTest, GlobalAggregates) {
  RecordBatch batch = MakeBatch(10);  // ids 0..9
  auto result = HashAggregate(
      batch, {},
      {{AggFunc::kCount, "", "cnt"},
       {AggFunc::kSum, "id", "sum_id"},
       {AggFunc::kMin, "id", "min_id"},
       {AggFunc::kMax, "id", "max_id"},
       {AggFunc::kAvg, "amount", "avg_amount"}});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_rows(), 1u);
  EXPECT_EQ(result->column(0).Int64At(0), 10);
  EXPECT_EQ(result->column(1).Int64At(0), 45);
  EXPECT_EQ(result->column(2).Int64At(0), 0);
  EXPECT_EQ(result->column(3).Int64At(0), 9);
  EXPECT_DOUBLE_EQ(result->column(4).DoubleAt(0), 4.5 * 1.5);
}

TEST(AggregateTest, GroupByComputesPerGroupAggregates) {
  RecordBatch batch = MakeBatch(10);
  auto result = HashAggregate(batch, {"tag"},
                              {{AggFunc::kCount, "", "cnt"},
                               {AggFunc::kSum, "id", "sum"}});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_rows(), 2u);
  std::map<std::string, std::pair<int64_t, int64_t>> groups;
  for (size_t r = 0; r < result->num_rows(); ++r) {
    groups[result->column(0).StringAt(r)] = {result->column(1).Int64At(r),
                                             result->column(2).Int64At(r)};
  }
  ASSERT_EQ(groups.count("even"), 1u);
  ASSERT_EQ(groups.count("odd"), 1u);
  EXPECT_EQ(groups["even"], (std::pair<int64_t, int64_t>{5, 0 + 2 + 4 + 6 + 8}));
  EXPECT_EQ(groups["odd"], (std::pair<int64_t, int64_t>{5, 1 + 3 + 5 + 7 + 9}));
}

TEST(AggregateTest, EmptyInputGlobalAggregate) {
  RecordBatch batch{TestSchema()};
  auto result = HashAggregate(batch, {},
                              {{AggFunc::kCount, "", "cnt"},
                               {AggFunc::kSum, "id", "sum"}});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_rows(), 1u);
  EXPECT_EQ(result->column(0).Int64At(0), 0);
  EXPECT_TRUE(result->column(1).IsNull(0));  // SUM of nothing is NULL
}

TEST(AggregateTest, EmptyInputGroupedProducesNoRows) {
  RecordBatch batch{TestSchema()};
  auto result =
      HashAggregate(batch, {"tag"}, {{AggFunc::kCount, "", "cnt"}});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 0u);
}

TEST(AggregateTest, NullsExcludedFromColumnAggregates) {
  RecordBatch batch{TestSchema()};
  ASSERT_TRUE(batch
                  .AppendRow({Value::Int64(1), Value::Null(ColumnType::kDouble),
                              Value::String("a")})
                  .ok());
  ASSERT_TRUE(batch
                  .AppendRow({Value::Int64(2), Value::Double(10.0),
                              Value::String("a")})
                  .ok());
  auto result = HashAggregate(batch, {},
                              {{AggFunc::kCount, "amount", "cnt"},
                               {AggFunc::kAvg, "amount", "avg"}});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->column(0).Int64At(0), 1);
  EXPECT_DOUBLE_EQ(result->column(1).DoubleAt(0), 10.0);
}

TEST(AggregateTest, InvalidSpecsRejected) {
  RecordBatch batch = MakeBatch(1);
  EXPECT_TRUE(HashAggregate(batch, {"ghost"}, {{AggFunc::kCount, "", "c"}})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(HashAggregate(batch, {}, {{AggFunc::kSum, "", "s"}})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(HashAggregate(batch, {}, {{AggFunc::kSum, "tag", "s"}})
                  .status()
                  .IsInvalidArgument());
}

// --- Join ----------------------------------------------------------------------------

TEST(JoinTest, InnerEquiJoin) {
  RecordBatch left{Schema({{"k", ColumnType::kInt64},
                           {"lv", ColumnType::kString}})};
  ASSERT_TRUE(left.AppendRow({Value::Int64(1), Value::String("a")}).ok());
  ASSERT_TRUE(left.AppendRow({Value::Int64(2), Value::String("b")}).ok());
  ASSERT_TRUE(left.AppendRow({Value::Int64(3), Value::String("c")}).ok());
  RecordBatch right{Schema({{"k", ColumnType::kInt64},
                            {"rv", ColumnType::kDouble}})};
  ASSERT_TRUE(right.AppendRow({Value::Int64(2), Value::Double(20)}).ok());
  ASSERT_TRUE(right.AppendRow({Value::Int64(3), Value::Double(30)}).ok());
  ASSERT_TRUE(right.AppendRow({Value::Int64(3), Value::Double(33)}).ok());

  auto joined = HashJoin(left, right, {"k"}, {"k"});
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->num_rows(), 3u);  // 2 matches once, 3 matches twice
  // Clashing right key column is renamed.
  EXPECT_GE(joined->schema().FindColumn("right.k"), 0);
}

TEST(JoinTest, NullKeysNeverMatch) {
  RecordBatch left{Schema({{"k", ColumnType::kInt64}})};
  ASSERT_TRUE(left.AppendRow({Value::Null(ColumnType::kInt64)}).ok());
  RecordBatch right{Schema({{"k", ColumnType::kInt64}})};
  ASSERT_TRUE(right.AppendRow({Value::Null(ColumnType::kInt64)}).ok());
  auto joined = HashJoin(left, right, {"k"}, {"k"});
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->num_rows(), 0u);
}

TEST(JoinTest, InvalidKeysRejected) {
  RecordBatch batch = MakeBatch(1);
  EXPECT_TRUE(
      HashJoin(batch, batch, {}, {}).status().IsInvalidArgument());
  EXPECT_TRUE(HashJoin(batch, batch, {"id"}, {"ghost"})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(HashJoin(batch, batch, {"id"}, {"tag"})
                  .status()
                  .IsInvalidArgument());
}

// --- Data cache ---------------------------------------------------------------------

TEST(DataCacheTest, CachesImmutableFiles) {
  storage::MemoryObjectStore store;
  format::FileWriter writer(TestSchema());
  ASSERT_TRUE(writer.Append(MakeBatch(5)).ok());
  auto bytes = std::move(writer).Finish();
  ASSERT_TRUE(store.Put("f1", std::move(*bytes)).ok());

  DataCache cache(&store);
  ASSERT_TRUE(cache.GetFile("f1").ok());
  ASSERT_TRUE(cache.GetFile("f1").ok());
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  // One physical read only.
  EXPECT_EQ(store.stats().gets, 1u);
}

TEST(DataCacheTest, LruEvictsOldEntries) {
  storage::MemoryObjectStore store;
  for (int i = 0; i < 4; ++i) {
    format::FileWriter writer(TestSchema());
    ASSERT_TRUE(writer.Append(MakeBatch(1)).ok());
    auto bytes = std::move(writer).Finish();
    ASSERT_TRUE(store.Put("f" + std::to_string(i), std::move(*bytes)).ok());
  }
  DataCache cache(&store, /*capacity=*/2);
  ASSERT_TRUE(cache.GetFile("f0").ok());
  ASSERT_TRUE(cache.GetFile("f1").ok());
  ASSERT_TRUE(cache.GetFile("f2").ok());  // evicts f0
  EXPECT_EQ(cache.size(), 2u);
  ASSERT_TRUE(cache.GetFile("f0").ok());  // miss again
  EXPECT_EQ(cache.stats().misses, 4u);
}

TEST(DataCacheTest, ClearSimulatesColdNode) {
  storage::MemoryObjectStore store;
  format::FileWriter writer(TestSchema());
  ASSERT_TRUE(writer.Append(MakeBatch(1)).ok());
  auto bytes = std::move(writer).Finish();
  ASSERT_TRUE(store.Put("f", std::move(*bytes)).ok());
  DataCache cache(&store);
  ASSERT_TRUE(cache.GetFile("f").ok());
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  ASSERT_TRUE(cache.GetFile("f").ok());
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(DataCacheTest, MissingBlobSurfacesNotFound) {
  storage::MemoryObjectStore store;
  DataCache cache(&store);
  EXPECT_TRUE(cache.GetFile("ghost").status().IsNotFound());
  EXPECT_TRUE(cache.GetDeleteVector("ghost").status().IsNotFound());
}

TEST(DataCacheTest, ZeroCapacityIsClampedToOne) {
  // Regression: capacity=0 used to let EvictIfNeededLocked evict the entry
  // that was just inserted, so every lookup was a miss that immediately
  // dropped its result.
  storage::MemoryObjectStore store;
  format::FileWriter writer(TestSchema());
  ASSERT_TRUE(writer.Append(MakeBatch(3)).ok());
  auto bytes = std::move(writer).Finish();
  ASSERT_TRUE(store.Put("f", std::move(*bytes)).ok());

  DataCache cache(&store, /*capacity=*/0);
  EXPECT_EQ(cache.capacity(), 1u);
  ASSERT_TRUE(cache.GetFile("f").ok());
  EXPECT_EQ(cache.size(), 1u);  // the fresh entry survived its own insert
  ASSERT_TRUE(cache.GetFile("f").ok());
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(store.stats().gets, 1u);
}

TEST(DataCacheTest, ConcurrentMissesAreCoalesced) {
  storage::MemoryObjectStore store;
  format::FileWriter writer(TestSchema());
  ASSERT_TRUE(writer.Append(MakeBatch(8)).ok());
  auto bytes = std::move(writer).Finish();
  ASSERT_TRUE(store.Put("f", std::move(*bytes)).ok());

  DataCache cache(&store);
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<int> ok_count{0};
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      auto file = cache.GetFile("f");
      if (file.ok() && (*file)->num_rows() == 8) ok_count.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(ok_count.load(), kThreads);
  // Exactly one physical fetch regardless of interleaving; every other
  // lookup either joined the in-flight fetch or hit the inserted entry.
  EXPECT_EQ(store.stats().gets, 1u);
  auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits + stats.coalesced, kThreads - 1u);
}

TEST(DataCacheTest, FailedFetchIsSharedAndNotCached) {
  storage::MemoryObjectStore store;
  DataCache cache(&store);
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  std::atomic<int> not_found{0};
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      if (cache.GetFile("ghost").status().IsNotFound()) {
        not_found.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(not_found.load(), kThreads);
  EXPECT_EQ(cache.size(), 0u);  // errors are never inserted
}

}  // namespace
}  // namespace polaris::exec
