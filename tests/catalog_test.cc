// Unit tests for the typed system catalog: DDL, the Manifests and
// WriteSets tables, commit-order sequence assignment, checkpoint records.

#include <gtest/gtest.h>

#include "catalog/catalog_db.h"
#include "common/clock.h"

namespace polaris::catalog {
namespace {

format::Schema TestSchema() {
  return format::Schema({{"id", format::ColumnType::kInt64},
                         {"v", format::ColumnType::kDouble}});
}

class CatalogTest : public ::testing::Test {
 protected:
  CatalogTest() : db_(&clock_) {}

  TableMeta MustCreate(const std::string& name) {
    auto txn = db_.Begin();
    auto meta = db_.CreateTable(txn.get(), name, TestSchema());
    EXPECT_TRUE(meta.ok()) << meta.status().ToString();
    EXPECT_TRUE(db_.Commit(txn.get(), {}).ok());
    return *meta;
  }

  common::SimClock clock_{1000};
  CatalogDb db_;
};

TEST_F(CatalogTest, CreateAndLookupTable) {
  TableMeta meta = MustCreate("orders");
  EXPECT_GE(meta.table_id, 1001);
  auto txn = db_.Begin();
  auto by_name = db_.GetTableByName(txn.get(), "orders");
  ASSERT_TRUE(by_name.ok());
  EXPECT_EQ(by_name->table_id, meta.table_id);
  EXPECT_EQ(by_name->schema, TestSchema());
  auto by_id = db_.GetTableById(txn.get(), meta.table_id);
  ASSERT_TRUE(by_id.ok());
  EXPECT_EQ(by_id->name, "orders");
}

TEST_F(CatalogTest, DuplicateTableNameRejected) {
  MustCreate("t");
  auto txn = db_.Begin();
  EXPECT_TRUE(
      db_.CreateTable(txn.get(), "t", TestSchema()).status().IsAlreadyExists());
}

TEST_F(CatalogTest, BadTableNamesRejected) {
  auto txn = db_.Begin();
  EXPECT_TRUE(db_.CreateTable(txn.get(), "", TestSchema())
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(db_.CreateTable(txn.get(), "a/b", TestSchema())
                  .status()
                  .IsInvalidArgument());
}

TEST_F(CatalogTest, TableIdsAreUnique) {
  TableMeta a = MustCreate("a");
  TableMeta b = MustCreate("b");
  EXPECT_NE(a.table_id, b.table_id);
}

TEST_F(CatalogTest, DropTableRemovesLookup) {
  TableMeta meta = MustCreate("gone");
  {
    auto txn = db_.Begin();
    ASSERT_TRUE(db_.DropTable(txn.get(), "gone").ok());
    ASSERT_TRUE(db_.Commit(txn.get(), {}).ok());
  }
  auto txn = db_.Begin();
  EXPECT_TRUE(db_.GetTableByName(txn.get(), "gone").status().IsNotFound());
  EXPECT_TRUE(
      db_.GetTableById(txn.get(), meta.table_id).status().IsNotFound());
  EXPECT_TRUE(db_.DropTable(txn.get(), "gone").IsNotFound());
}

TEST_F(CatalogTest, ListTablesSeesCommittedOnly) {
  MustCreate("a");
  auto pending_txn = db_.Begin();
  ASSERT_TRUE(db_.CreateTable(pending_txn.get(), "b", TestSchema()).ok());
  auto reader = db_.Begin();
  auto tables = db_.ListTables(reader.get());
  ASSERT_TRUE(tables.ok());
  EXPECT_EQ(tables->size(), 1u);
  EXPECT_EQ((*tables)[0].name, "a");
}

TEST_F(CatalogTest, ManifestSequenceAssignedInCommitOrder) {
  TableMeta meta = MustCreate("t");
  // Two committing transactions, each inserting a manifest; seq ids must
  // be 1 then 2 in commit order even though neither conflicts.
  auto t1 = db_.Begin();
  auto t2 = db_.Begin();
  std::vector<ManifestRecord> r1;
  std::vector<ManifestRecord> r2;
  ASSERT_TRUE(db_.Commit(t1.get(), {{meta.table_id, "m1"}}, &r1).ok());
  ASSERT_TRUE(db_.Commit(t2.get(), {{meta.table_id, "m2"}}, &r2).ok());
  ASSERT_EQ(r1.size(), 1u);
  ASSERT_EQ(r2.size(), 1u);
  EXPECT_EQ(r1[0].sequence_id, 1u);
  EXPECT_EQ(r2[0].sequence_id, 2u);

  auto reader = db_.Begin();
  auto records = db_.GetManifests(reader.get(), meta.table_id);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0].path, "m1");
  EXPECT_EQ((*records)[1].path, "m2");
}

TEST_F(CatalogTest, MultiTableCommitAssignsPerTableSequences) {
  TableMeta a = MustCreate("a");
  TableMeta b = MustCreate("b");
  auto txn = db_.Begin();
  std::vector<ManifestRecord> records;
  ASSERT_TRUE(db_.Commit(txn.get(),
                         {{a.table_id, "ma"}, {b.table_id, "mb"},
                          {a.table_id, "ma2"}},
                         &records)
                  .ok());
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].sequence_id, 1u);  // a/1
  EXPECT_EQ(records[1].sequence_id, 1u);  // b/1
  EXPECT_EQ(records[2].sequence_id, 2u);  // a/2 within the same commit
}

TEST_F(CatalogTest, ManifestRecordsCarryCommitTime) {
  TableMeta meta = MustCreate("t");
  clock_.Advance(5000);
  auto txn = db_.Begin();
  ASSERT_TRUE(db_.Commit(txn.get(), {{meta.table_id, "m"}}).ok());
  auto reader = db_.Begin();
  auto records = db_.GetManifests(reader.get(), meta.table_id);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ((*records)[0].commit_time, 6000);
  EXPECT_GT((*records)[0].txn_id, 0u);
}

TEST_F(CatalogTest, GetManifestsAsOfFiltersByCommitTime) {
  TableMeta meta = MustCreate("t");
  auto t1 = db_.Begin();
  ASSERT_TRUE(db_.Commit(t1.get(), {{meta.table_id, "early"}}).ok());
  common::Micros cutoff = clock_.Now();
  clock_.Advance(1000);
  auto t2 = db_.Begin();
  ASSERT_TRUE(db_.Commit(t2.get(), {{meta.table_id, "late"}}).ok());

  auto reader = db_.Begin();
  auto as_of = db_.GetManifestsAsOf(reader.get(), meta.table_id, cutoff);
  ASSERT_TRUE(as_of.ok());
  ASSERT_EQ(as_of->size(), 1u);
  EXPECT_EQ((*as_of)[0].path, "early");
}

TEST_F(CatalogTest, WriteSetUpsertConflictsBetweenConcurrentWriters) {
  TableMeta meta = MustCreate("t");
  auto t1 = db_.Begin();
  auto t2 = db_.Begin();
  ASSERT_TRUE(db_.UpsertWriteSet(t1.get(), meta.table_id).ok());
  ASSERT_TRUE(db_.UpsertWriteSet(t2.get(), meta.table_id).ok());
  EXPECT_TRUE(db_.Commit(t1.get(), {{meta.table_id, "m1"}}).ok());
  EXPECT_TRUE(db_.Commit(t2.get(), {{meta.table_id, "m2"}}).IsConflict());
  // The loser's manifest row is not present.
  auto reader = db_.Begin();
  auto records = db_.GetManifests(reader.get(), meta.table_id);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].path, "m1");
}

TEST_F(CatalogTest, FileGranularityConflictsOnlyOnSameFile) {
  TableMeta meta = MustCreate("t");
  auto t1 = db_.Begin();
  auto t2 = db_.Begin();
  auto t3 = db_.Begin();
  ASSERT_TRUE(db_.UpsertWriteSetForFile(t1.get(), meta.table_id, "f1").ok());
  ASSERT_TRUE(db_.UpsertWriteSetForFile(t2.get(), meta.table_id, "f2").ok());
  ASSERT_TRUE(db_.UpsertWriteSetForFile(t3.get(), meta.table_id, "f1").ok());
  EXPECT_TRUE(db_.Commit(t1.get(), {{meta.table_id, "m1"}}).ok());
  EXPECT_TRUE(db_.Commit(t2.get(), {{meta.table_id, "m2"}}).ok());   // f2: ok
  EXPECT_TRUE(db_.Commit(t3.get(), {{meta.table_id, "m3"}}).IsConflict());
}

TEST_F(CatalogTest, InsertOnlyTransactionsNeverConflict) {
  // Inserts do not upsert WriteSets, so concurrent inserts both commit
  // (paper §4: "Inserts are similarly optimized ... not conflicting").
  TableMeta meta = MustCreate("t");
  auto t1 = db_.Begin();
  auto t2 = db_.Begin();
  EXPECT_TRUE(db_.Commit(t1.get(), {{meta.table_id, "m1"}}).ok());
  EXPECT_TRUE(db_.Commit(t2.get(), {{meta.table_id, "m2"}}).ok());
}

TEST_F(CatalogTest, CheckpointRecords) {
  TableMeta meta = MustCreate("t");
  {
    auto txn = db_.Begin();
    ASSERT_TRUE(db_.AddCheckpoint(txn.get(), {meta.table_id, 5, "c5"}).ok());
    ASSERT_TRUE(db_.AddCheckpoint(txn.get(), {meta.table_id, 9, "c9"}).ok());
    ASSERT_TRUE(db_.Commit(txn.get(), {}).ok());
  }
  auto txn = db_.Begin();
  auto latest = db_.GetLatestCheckpoint(txn.get(), meta.table_id, 100);
  ASSERT_TRUE(latest.ok());
  ASSERT_TRUE(latest->has_value());
  EXPECT_EQ((*latest)->sequence_id, 9u);
  // Bounded lookup.
  latest = db_.GetLatestCheckpoint(txn.get(), meta.table_id, 7);
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ((*latest)->sequence_id, 5u);
  latest = db_.GetLatestCheckpoint(txn.get(), meta.table_id, 3);
  ASSERT_TRUE(latest.ok());
  EXPECT_FALSE(latest->has_value());
  auto all = db_.ListCheckpoints(txn.get(), meta.table_id);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 2u);
}

TEST_F(CatalogTest, PurgeDroppedTableRowsRemovesOnlyOrphans) {
  TableMeta keep = MustCreate("keep");
  TableMeta drop = MustCreate("drop_me");
  {
    auto txn = db_.Begin();
    ASSERT_TRUE(db_.UpsertWriteSet(txn.get(), keep.table_id).ok());
    ASSERT_TRUE(db_.UpsertWriteSet(txn.get(), drop.table_id).ok());
    ASSERT_TRUE(db_.AddCheckpoint(txn.get(), {drop.table_id, 1, "c1"}).ok());
    ASSERT_TRUE(db_.Commit(txn.get(),
                           {{keep.table_id, "mk"}, {drop.table_id, "md"}})
                    .ok());
  }
  {
    auto txn = db_.Begin();
    ASSERT_TRUE(db_.DropTable(txn.get(), "drop_me").ok());
    ASSERT_TRUE(db_.Commit(txn.get(), {}).ok());
  }
  auto txn = db_.Begin();
  auto purged = db_.PurgeDroppedTableRows(txn.get());
  ASSERT_TRUE(purged.ok());
  // One manifest + one writeset + one checkpoint row for the dropped table.
  EXPECT_EQ(*purged, 3u);
  ASSERT_TRUE(db_.Commit(txn.get(), {}).ok());

  auto reader = db_.Begin();
  auto dropped_manifests = db_.GetManifests(reader.get(), drop.table_id);
  ASSERT_TRUE(dropped_manifests.ok());
  EXPECT_TRUE(dropped_manifests->empty());
  auto kept_manifests = db_.GetManifests(reader.get(), keep.table_id);
  ASSERT_TRUE(kept_manifests.ok());
  EXPECT_EQ(kept_manifests->size(), 1u);
  // Idempotent: nothing further to purge.
  auto again = db_.Begin();
  auto purged_again = db_.PurgeDroppedTableRows(again.get());
  ASSERT_TRUE(purged_again.ok());
  EXPECT_EQ(*purged_again, 0u);
}

TEST_F(CatalogTest, CloneStylePendingPreservesOrder) {
  // A clone inserts one pending manifest per source manifest; the new
  // table's sequence ids must follow the pending order (§6.2).
  TableMeta src = MustCreate("src");
  for (int i = 0; i < 3; ++i) {
    auto txn = db_.Begin();
    ASSERT_TRUE(
        db_.Commit(txn.get(), {{src.table_id, "m" + std::to_string(i)}}).ok());
  }
  TableMeta dst = MustCreate("dst");
  auto txn = db_.Begin();
  std::vector<ManifestRecord> assigned;
  ASSERT_TRUE(db_.Commit(txn.get(),
                         {{dst.table_id, "m0"},
                          {dst.table_id, "m1"},
                          {dst.table_id, "m2"}},
                         &assigned)
                  .ok());
  ASSERT_EQ(assigned.size(), 3u);
  for (uint64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(assigned[i].sequence_id, i + 1);
    EXPECT_EQ(assigned[i].path, "m" + std::to_string(i));
  }
}

}  // namespace
}  // namespace polaris::catalog
