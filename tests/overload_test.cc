// Request-lifecycle tests: statement deadlines, cooperative cancellation
// (KILL), admission control under overload, and the storage circuit
// breaker. The matrix exercises expiry at every interesting point — before
// the statement starts, mid-retry inside the storage stack, mid-scan, and
// mid-commit — plus KILL during DML with proof that the victim's locks are
// released. Every blocked path must terminate; nothing may hang.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/deadline.h"
#include "common/trace_context.h"
#include "engine/engine.h"
#include "sql/session.h"
#include "storage/circuit_breaker_store.h"
#include "storage/fault_injection_store.h"
#include "storage/memory_object_store.h"

namespace polaris {
namespace {

using common::Status;

void MustExecute(sql::SqlSession* session, const std::string& statement) {
  auto result = session->Execute(statement);
  ASSERT_TRUE(result.ok()) << statement << " -> "
                           << result.status().ToString();
}

bool HasEvent(engine::PolarisEngine* engine, const std::string& name,
              const std::string& field_value = "") {
  for (const auto& rec : engine->events()->Snapshot()) {
    if (rec.name != name) continue;
    if (field_value.empty()) return true;
    for (const auto& [key, value] : rec.fields) {
      (void)key;
      if (value == field_value) return true;
    }
  }
  return false;
}

// --- Deadline / cancellation primitives ------------------------------------

TEST(DeadlineTest, ChecksReportExpiryAndCancellation) {
  common::SimClock clock(0);
  common::Deadline unbounded;
  EXPECT_FALSE(unbounded.bounded());
  EXPECT_TRUE(unbounded.Check("op").ok());

  common::Deadline d = common::Deadline::After(&clock, 100);
  EXPECT_TRUE(d.Check("op").ok());
  EXPECT_EQ(d.remaining_micros(), 100);
  clock.Advance(100);
  EXPECT_TRUE(d.Check("op").IsDeadlineExceeded());
  EXPECT_EQ(d.remaining_micros(), 0);

  // Cancellation wins ties: a killed statement reports Cancelled even
  // after its deadline also passed.
  common::CancelSource source;
  common::Deadline both = common::Deadline::After(&clock, 0, source.token());
  source.Cancel("killed by test");
  Status st = both.Check("op");
  EXPECT_TRUE(st.IsCancelled());
  EXPECT_NE(st.message().find("killed by test"), std::string::npos);
}

TEST(DeadlineTest, ExpiredBeforeStartStopsEngineWork) {
  engine::PolarisEngine engine;
  auto table = engine.CreateTable(
      "t", format::Schema({{"k", format::ColumnType::kInt64}}));
  ASSERT_TRUE(table.ok());

  // Budget 0: expired before the statement issues any work. The engine's
  // entry check fires before any storage traffic.
  common::ScopedDeadline scoped(
      common::Deadline::After(engine.clock(), 0));
  format::RecordBatch rows(table->schema);
  ASSERT_TRUE(rows.AppendRow({format::Value::Int64(1)}).ok());
  Status st = engine.RunInTransaction([&](txn::Transaction* txn) {
    return engine.Insert(txn, "t", rows).status();
  });
  EXPECT_TRUE(st.IsDeadlineExceeded()) << st.ToString();
  EXPECT_TRUE(engine.txn_manager()->ActiveTransactionInfos().empty());
}

// --- Fault-injection latency (brownout) ------------------------------------

TEST(FaultLatencyTest, InjectedLatencyAdvancesClockEvenOnFailure) {
  storage::MemoryObjectStore base;
  common::SimClock clock(0);
  storage::FaultInjectionStore store(&base, /*seed=*/7, &clock);

  storage::FaultPolicy policy;
  policy.read_latency_micros = 1'000;
  policy.write_latency_micros = 500;
  store.set_policy(policy);

  ASSERT_TRUE(store.Put("k", "v").ok());
  EXPECT_EQ(clock.Now(), 500);
  ASSERT_TRUE(store.Get("k").ok());
  EXPECT_EQ(clock.Now(), 1'500);
  EXPECT_EQ(store.injected_latency_micros(), 1'500u);

  // Heavy-tail mode: with probability 1 every op takes the straggler
  // latency instead of its base latency.
  policy.heavy_tail_probability = 1.0;
  policy.heavy_tail_latency_micros = 50'000;
  store.set_policy(policy);
  ASSERT_TRUE(store.Get("k").ok());
  EXPECT_EQ(clock.Now(), 51'500);

  // Latency burns even when the op then fails: a browned-out service is
  // slow first and unavailable second.
  policy.read_failure_probability = 1.0;
  policy.heavy_tail_probability = 0.0;
  store.set_policy(policy);
  EXPECT_TRUE(store.Get("k").status().IsUnavailable());
  EXPECT_EQ(clock.Now(), 52'500);
}

// --- Deadline vs the retry layer -------------------------------------------

TEST(OverloadTest, DeadlineExpiresMidRetryNotRetriedFurther) {
  engine::EngineOptions options;
  options.storage_retry.max_attempts = 1'000;  // exhaustion never wins
  options.storage_retry.initial_backoff_micros = 10'000;
  engine::PolarisEngine engine(options);
  sql::SqlSession session(&engine);

  MustExecute(&session, "CREATE TABLE t (k BIGINT)");
  MustExecute(&session, "INSERT INTO t VALUES (1)");

  // Storage goes fully dark; the statement's 50ms budget is burned by
  // retry backoff (virtual time) long before 1000 attempts.
  storage::FaultPolicy dark;
  dark.read_failure_probability = 1.0;
  engine.fault_store()->set_policy(dark);

  MustExecute(&session, "SET DEADLINE 50");
  auto result = session.Execute("SELECT * FROM t");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded())
      << result.status().ToString();

  // The terminal code is never retried and leaves audit counters.
  auto snapshot = engine.MetricsSnapshot();
  EXPECT_GE(snapshot.counter("store.deadline_exceeded.total"), 1u);
  EXPECT_TRUE(HasEvent(&engine, "statement.killed"));

  // Storage heals; the session deadline turns off; work resumes. No
  // statement hung, nothing leaked.
  engine.fault_store()->set_policy(storage::FaultPolicy{});
  MustExecute(&session, "SET DEADLINE 0");
  MustExecute(&session, "INSERT INTO t VALUES (2)");
  EXPECT_TRUE(engine.txn_manager()->ActiveTransactionInfos().empty());
}

TEST(OverloadTest, DeadlineExpiresMidScanUnderBrownout) {
  engine::PolarisEngine engine;
  sql::SqlSession session(&engine);

  MustExecute(&session, "CREATE TABLE t (k BIGINT)");
  // Several files so the scan has multiple cancellation points.
  for (int i = 0; i < 4; ++i) {
    MustExecute(&session,
                "INSERT INTO t VALUES (" + std::to_string(i) + ")");
  }

  // Brownout: every read takes 30ms of virtual time. A 50ms statement
  // budget dies partway through the scan.
  storage::FaultPolicy slow;
  slow.read_latency_micros = 30'000;
  engine.fault_store()->set_policy(slow);

  MustExecute(&session, "SET DEADLINE 50");
  auto result = session.Execute("SELECT COUNT(*) FROM t");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded())
      << result.status().ToString();
  EXPECT_GT(engine.fault_store()->injected_latency_micros(), 0u);

  engine.fault_store()->set_policy(storage::FaultPolicy{});
  MustExecute(&session, "SET DEADLINE 0");
  auto count = session.Execute("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->batch.column(0).Int64At(0), 4);
}

TEST(OverloadTest, DeadlineExpiresMidCommitAbortsAndReleasesLocks) {
  engine::EngineOptions options;
  // Force commit-time storage IO: the fragmented transaction manifest is
  // compacted (read + rewrite) on the COMMIT path.
  options.txn_options.compact_manifest_blocks_above = 1;
  engine::PolarisEngine engine(options);
  sql::SqlSession session(&engine);

  MustExecute(&session, "CREATE TABLE t (k BIGINT)");

  // Storage ops take 40ms each: the INSERTs inside the transaction run
  // with no deadline, then COMMIT under a 50ms budget burns it on the
  // commit path's manifest compaction IO.
  MustExecute(&session, "BEGIN");
  MustExecute(&session, "INSERT INTO t VALUES (1)");
  MustExecute(&session, "INSERT INTO t VALUES (2)");
  MustExecute(&session, "INSERT INTO t VALUES (3)");

  storage::FaultPolicy slow;
  slow.write_latency_micros = 40'000;
  slow.read_latency_micros = 40'000;
  engine.fault_store()->set_policy(slow);
  MustExecute(&session, "SET DEADLINE 50");

  auto commit = session.Execute("COMMIT");
  ASSERT_FALSE(commit.ok());
  EXPECT_TRUE(commit.status().IsDeadlineExceeded())
      << commit.status().ToString();
  EXPECT_FALSE(session.in_transaction());
  // The aborted transaction released everything: no active entries, and a
  // second writer can immediately commit to the same table.
  EXPECT_TRUE(engine.txn_manager()->ActiveTransactionInfos().empty());

  engine.fault_store()->set_policy(storage::FaultPolicy{});
  sql::SqlSession other(&engine);
  MustExecute(&other, "INSERT INTO t VALUES (2)");
  auto count = other.Execute("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->batch.column(0).Int64At(0), 1);  // only the new row
}

// --- KILL ------------------------------------------------------------------

TEST(OverloadTest, KillDuringDmlAbortsVictimAndReleasesLocks) {
  engine::PolarisEngine engine;
  sql::SqlSession victim(&engine);
  sql::SqlSession operator_session(&engine);

  MustExecute(&victim, "CREATE TABLE t (k BIGINT)");
  MustExecute(&victim, "BEGIN");
  MustExecute(&victim, "INSERT INTO t VALUES (1)");

  auto active = engine.txn_manager()->ActiveTransactionInfos();
  ASSERT_EQ(active.size(), 1u);
  const uint64_t txn_id = active[0].txn_id;

  // The operator kills from another session; the flip is visible in
  // sys.dm_tran_active before the victim even notices.
  MustExecute(&operator_session, "KILL " + std::to_string(txn_id));
  auto flagged = operator_session.Execute(
      "SELECT cancel_requested FROM sys.dm_tran_active WHERE txn_id = " +
      std::to_string(txn_id));
  ASSERT_TRUE(flagged.ok());
  ASSERT_EQ(flagged->batch.num_rows(), 1u);
  EXPECT_EQ(flagged->batch.column(0).Int64At(0), 1);

  // The victim's next statement observes the token, fails Cancelled, and
  // the session auto-aborts the transaction (locks released).
  auto update = victim.Execute("UPDATE t SET k = 2 WHERE k = 1");
  ASSERT_FALSE(update.ok());
  EXPECT_TRUE(update.status().IsCancelled()) << update.status().ToString();
  EXPECT_FALSE(victim.in_transaction());
  EXPECT_TRUE(engine.txn_manager()->ActiveTransactionInfos().empty());
  EXPECT_TRUE(HasEvent(&engine, "txn.kill_requested"));
  EXPECT_TRUE(HasEvent(&engine, "statement.killed"));

  // Uncommitted work is discarded; another writer proceeds immediately.
  MustExecute(&operator_session, "INSERT INTO t VALUES (10)");
  auto count = operator_session.Execute("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->batch.column(0).Int64At(0), 1);

  // The victim's trailing COMMIT reports the rollback, Cancelled.
  auto commit = victim.Execute("COMMIT");
  EXPECT_TRUE(commit.status().IsCancelled()) << commit.status().ToString();

  // KILLing a transaction that no longer exists is NotFound.
  auto gone = operator_session.Execute("KILL " + std::to_string(txn_id));
  EXPECT_TRUE(gone.status().IsNotFound());
}

// --- Admission control -----------------------------------------------------

TEST(OverloadTest, AdmissionShedsOverloadWithoutHangingStatements) {
  engine::EngineOptions options;
  options.admission.max_concurrent = 2;
  options.admission.max_queue = 2;
  options.admission.queue_timeout_micros = 200'000;  // wall time
  options.admission.retry_after_micros = 10'000;
  engine::PolarisEngine engine(options);

  {
    sql::SqlSession setup(&engine);
    MustExecute(&setup, "CREATE TABLE t (k BIGINT)");
  }

  // 4x overload: 8 sessions hammer a 2-slot engine. Every statement must
  // terminate as committed or shed — zero hung statements.
  constexpr int kThreads = 8;
  constexpr int kStatementsPerThread = 10;
  std::atomic<int> committed{0};
  std::atomic<int> shed{0};
  std::atomic<int> unexpected{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&engine, &committed, &shed, &unexpected, w] {
      sql::SqlSession session(&engine);
      for (int i = 0; i < kStatementsPerThread; ++i) {
        int value = w * kStatementsPerThread + i;
        auto result = session.Execute("INSERT INTO t VALUES (" +
                                      std::to_string(value) + ")");
        if (result.ok()) {
          ++committed;
        } else if (result.status().IsUnavailable()) {
          ++shed;
        } else {
          ++unexpected;
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();

  EXPECT_EQ(unexpected.load(), 0);
  EXPECT_EQ(committed.load() + shed.load(),
            kThreads * kStatementsPerThread);
  EXPECT_GT(committed.load(), 0);

  auto stats = engine.admission()->stats();
  EXPECT_EQ(stats.running, 0u);
  EXPECT_EQ(stats.queued, 0u);
  // +1: the setup CREATE TABLE was admitted too.
  EXPECT_EQ(stats.admitted_total,
            static_cast<uint64_t>(committed.load()) + 1);

  // Committed statements really landed.
  sql::SqlSession check(&engine);
  auto count = check.Execute("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->batch.column(0).Int64At(0), committed.load());

  // sys.dm_admission reflects the same counters (not gated, so it works
  // even on a saturated engine).
  auto view = check.Execute(
      "SELECT admitted_total, shed_queue_full FROM sys.dm_admission");
  ASSERT_TRUE(view.ok());
  ASSERT_EQ(view->batch.num_rows(), 1u);
  // +2: the setup CREATE TABLE and the COUNT(*) above were admitted too.
  EXPECT_EQ(view->batch.column(0).Int64At(0), committed.load() + 2);
  if (shed.load() > 0) {
    EXPECT_TRUE(HasEvent(&engine, "statement.shed"));
    EXPECT_GE(engine.MetricsSnapshot().counter("admission.shed.total"), 1u);
  }
}

TEST(OverloadTest, ShedCarriesRetryAfterHint) {
  engine::AdmissionOptions options;
  options.max_concurrent = 1;
  options.max_queue = 0;  // no queue: concurrent arrivals shed instantly
  options.retry_after_micros = 123'000;
  engine::AdmissionController admission(options);

  common::Deadline unbounded;
  auto first = admission.Admit(unbounded, "INSERT");
  ASSERT_TRUE(first.ok());
  auto second = admission.Admit(unbounded, "INSERT");
  ASSERT_FALSE(second.ok());
  EXPECT_TRUE(second.status().IsUnavailable());
  EXPECT_NE(second.status().message().find("retry after 123000us"),
            std::string::npos)
      << second.status().ToString();
  EXPECT_EQ(admission.stats().shed_queue_full, 1u);

  first->Release();
  auto third = admission.Admit(unbounded, "INSERT");
  EXPECT_TRUE(third.ok());
}

TEST(OverloadTest, QueuedStatementLeavesOnKill) {
  engine::AdmissionOptions options;
  options.max_concurrent = 1;
  options.max_queue = 4;
  options.queue_timeout_micros = 60'000'000;  // long: cancellation must win
  engine::AdmissionController admission(options);

  common::Deadline unbounded;
  auto slot = admission.Admit(unbounded, "INSERT");
  ASSERT_TRUE(slot.ok());

  common::CancelSource kill;
  common::Deadline cancellable =
      common::Deadline::CancellableOnly(kill.token());
  std::atomic<bool> done{false};
  Status queued_outcome;
  std::thread waiter([&] {
    auto result = admission.Admit(cancellable, "SELECT");
    queued_outcome = result.status();
    done = true;
  });
  // Let the waiter queue up, then kill it; it must return promptly.
  while (admission.stats().queued == 0) std::this_thread::yield();
  kill.Cancel("killed by operator");
  waiter.join();
  ASSERT_TRUE(done.load());
  EXPECT_TRUE(queued_outcome.IsCancelled()) << queued_outcome.ToString();
  EXPECT_EQ(admission.stats().cancelled_in_queue, 1u);
}

// --- Circuit breaker -------------------------------------------------------

TEST(CircuitBreakerTest, OpensHalfOpensAndClosesAgain) {
  storage::MemoryObjectStore base;
  common::SimClock clock(0);
  storage::FaultInjectionStore faults(&base, /*seed=*/3, &clock);
  obs::MetricsRegistry metrics;
  obs::EventLog events(&clock, 128);

  storage::CircuitBreakerOptions options;
  options.failure_threshold = 2;
  options.open_duration_micros = 1'000;
  options.half_open_probes = 1;
  storage::CircuitBreakerStore breaker(&faults, &clock, options);
  breaker.set_metrics(&metrics);
  breaker.set_event_log(&events);
  ASSERT_TRUE(breaker.enabled());

  ASSERT_TRUE(base.Put("k", "v").ok());

  // Two consecutive infrastructure failures trip the breaker.
  storage::FaultPolicy dark;
  dark.read_failure_probability = 1.0;
  faults.set_policy(dark);
  EXPECT_TRUE(breaker.Get("k").status().IsUnavailable());
  EXPECT_EQ(breaker.state(), storage::CircuitBreakerStore::State::kClosed);
  EXPECT_TRUE(breaker.Get("k").status().IsUnavailable());
  EXPECT_EQ(breaker.state(), storage::CircuitBreakerStore::State::kOpen);
  EXPECT_EQ(breaker.times_opened(), 1u);

  // Open: fail fast, no storage traffic reaches the faulty layer.
  uint64_t faults_before = faults.injected_failures();
  auto fast = breaker.Get("k");
  EXPECT_TRUE(fast.status().IsUnavailable());
  EXPECT_NE(fast.status().message().find("circuit breaker open"),
            std::string::npos)
      << fast.status().ToString();
  EXPECT_EQ(faults.injected_failures(), faults_before);
  EXPECT_EQ(breaker.fast_failures(), 1u);

  // Open duration elapses; storage healed; the half-open probe succeeds
  // and the breaker closes.
  clock.Advance(options.open_duration_micros);
  faults.set_policy(storage::FaultPolicy{});
  auto probe = breaker.Get("k");
  ASSERT_TRUE(probe.ok());
  EXPECT_EQ(*probe, "v");
  EXPECT_EQ(breaker.state(), storage::CircuitBreakerStore::State::kClosed);

  // The full transition history is on the event log.
  std::vector<std::string> transitions;
  for (const auto& rec : events.Snapshot()) {
    if (rec.name != "breaker.transition") continue;
    std::string from_to;
    for (const auto& [key, value] : rec.fields) {
      if (key == "from" || key == "to") {
        from_to += (from_to.empty() ? "" : "->") + value;
      }
    }
    transitions.push_back(from_to);
  }
  ASSERT_EQ(transitions.size(), 3u);
  EXPECT_EQ(transitions[0], "closed->open");
  EXPECT_EQ(transitions[1], "open->half_open");
  EXPECT_EQ(transitions[2], "half_open->closed");
}

TEST(CircuitBreakerTest, FailedProbeReopens) {
  storage::MemoryObjectStore base;
  common::SimClock clock(0);
  storage::FaultInjectionStore faults(&base, /*seed=*/3, &clock);
  storage::CircuitBreakerOptions options;
  options.failure_threshold = 1;
  options.open_duration_micros = 1'000;
  storage::CircuitBreakerStore breaker(&faults, &clock, options);

  ASSERT_TRUE(base.Put("k", "v").ok());
  storage::FaultPolicy dark;
  dark.read_failure_probability = 1.0;
  faults.set_policy(dark);

  EXPECT_TRUE(breaker.Get("k").status().IsUnavailable());
  EXPECT_EQ(breaker.state(), storage::CircuitBreakerStore::State::kOpen);
  clock.Advance(options.open_duration_micros);
  // Probe goes through, still dark: straight back to open.
  EXPECT_TRUE(breaker.Get("k").status().IsUnavailable());
  EXPECT_EQ(breaker.state(), storage::CircuitBreakerStore::State::kOpen);
  EXPECT_EQ(breaker.times_opened(), 2u);
}

TEST(CircuitBreakerTest, EngineBreakerTripsUnderBrownoutAndReports) {
  engine::EngineOptions options;
  options.circuit_breaker.failure_threshold = 2;
  options.circuit_breaker.open_duration_micros = 1'000'000;
  options.storage_retry.max_attempts = 2;
  engine::PolarisEngine engine(options);
  sql::SqlSession session(&engine);

  MustExecute(&session, "CREATE TABLE t (k BIGINT)");
  MustExecute(&session, "INSERT INTO t VALUES (1)");

  storage::FaultPolicy dark;
  dark.read_failure_probability = 1.0;
  dark.write_failure_probability = 1.0;
  engine.fault_store()->set_policy(dark);

  // Post-retry failures accumulate until the breaker opens; further
  // statements fail fast without hammering storage.
  for (int i = 0; i < 4; ++i) {
    auto result = session.Execute("SELECT COUNT(*) FROM t");
    ASSERT_FALSE(result.ok());
  }
  EXPECT_EQ(engine.circuit_breaker()->state(),
            storage::CircuitBreakerStore::State::kOpen);
  EXPECT_GT(engine.circuit_breaker()->fast_failures(), 0u);
  EXPECT_TRUE(HasEvent(&engine, "breaker.transition", "open"));

  // The breaker state is a gauge feeding sys.dm_health.
  engine.SampleObservabilityOnce();
  auto health = session.Execute(
      "SELECT status FROM sys.dm_health WHERE rule = "
      "'storage-circuit-breaker'");
  ASSERT_TRUE(health.ok());
  ASSERT_EQ(health->batch.num_rows(), 1u);
  EXPECT_EQ(health->batch.column(0).StringAt(0), "FAIL");

  // Attempts-per-op histogram records the retry shape (satellite:
  // deterministic backoff accounting even without an injected clock).
  auto snapshot = engine.MetricsSnapshot();
  EXPECT_GT(snapshot.histograms.at("store.get.attempts").count, 0u);
}

}  // namespace
}  // namespace polaris
