// Unit tests for the unified metrics registry (counters, fixed-bucket
// latency histograms, snapshots, quantile estimation, Prometheus
// exposition), the structured event log, the time-series recorder and the
// SLO health watchdog.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "common/trace_context.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/time_series.h"

namespace polaris::obs {
namespace {

TEST(MetricsRegistryTest, CountersAccumulate) {
  MetricsRegistry registry;
  registry.Add("store.get.ops");
  registry.Add("store.get.ops");
  registry.Add("store.get.retries", 5);

  auto snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counter("store.get.ops"), 2u);
  EXPECT_EQ(snapshot.counter("store.get.retries"), 5u);
  EXPECT_EQ(snapshot.counter("never.recorded"), 0u);
}

TEST(MetricsRegistryTest, CounterSumAggregatesByPrefix) {
  MetricsRegistry registry;
  registry.Add("store.get.retries", 2);
  registry.Add("store.put.retries", 3);
  registry.Add("cache.hits", 100);

  auto snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.CounterSum("store."), 5u);
  EXPECT_EQ(snapshot.CounterSum("cache."), 100u);
  EXPECT_EQ(snapshot.CounterSum("dcp."), 0u);
}

TEST(MetricsRegistryTest, HistogramRecordsObservations) {
  MetricsRegistry registry;
  registry.Observe("store.get.latency_us", 50);     // first bucket (<=100)
  registry.Observe("store.get.latency_us", 150);    // <=250 bucket
  registry.Observe("store.get.latency_us", 20'000'000);  // overflow

  auto snapshot = registry.Snapshot();
  const auto& h = snapshot.histograms.at("store.get.latency_us");
  EXPECT_EQ(h.count, 3u);
  EXPECT_EQ(h.min, 50);
  EXPECT_EQ(h.max, 20'000'000);
  EXPECT_EQ(h.sum, 50 + 150 + 20'000'000);
  ASSERT_EQ(h.counts.size(), h.bounds.size() + 1);
  EXPECT_EQ(h.counts[0], 1u);            // 50 <= 100
  EXPECT_EQ(h.counts[1], 1u);            // 150 <= 250
  EXPECT_EQ(h.counts.back(), 1u);        // overflow bucket
}

TEST(MetricsRegistryTest, BoundaryValueLandsInItsBucket) {
  MetricsRegistry registry;
  // Bucket semantics: counts[i] holds bounds[i-1] < v <= bounds[i].
  registry.Observe("h", 100);
  registry.Observe("h", 101);
  auto snapshot = registry.Snapshot();
  const auto& h = snapshot.histograms.at("h");
  EXPECT_EQ(h.counts[0], 1u);
  EXPECT_EQ(h.counts[1], 1u);
}

TEST(HistogramSnapshotTest, ApproxQuantileCoversDistribution) {
  MetricsRegistry registry;
  for (int i = 0; i < 90; ++i) registry.Observe("h", 80);       // <=100
  for (int i = 0; i < 10; ++i) registry.Observe("h", 400'000);  // <=500k

  auto snapshot = registry.Snapshot();
  const auto& h = snapshot.histograms.at("h");
  // p50 interpolates inside the first bucket, whose edges are clamped to
  // the observed min (80) and the bucket bound (100).
  EXPECT_EQ(h.ApproxQuantile(0.5), 91);
  // p99 lands in the <=500k bucket; its upper edge clamps to max (400k).
  EXPECT_EQ(h.ApproxQuantile(0.99), 400'000);
}

TEST(HistogramSnapshotTest, SingleObservationReportsItself) {
  MetricsRegistry registry;
  registry.Observe("h", 4'321);
  auto snapshot = registry.Snapshot();
  const auto& h = snapshot.histograms.at("h");
  // Clamping both bucket edges to min/max collapses the bucket to the
  // lone observation instead of its bucket's upper bound (5'000).
  EXPECT_EQ(h.ApproxQuantile(0.5), 4'321);
  EXPECT_EQ(h.ApproxQuantile(0.99), 4'321);
}

TEST(HistogramSnapshotTest, EmptyHistogramQuantileIsMinusOne) {
  HistogramSnapshot empty;
  EXPECT_EQ(empty.ApproxQuantile(0.5), -1);
}

TEST(HistogramSnapshotTest, OverflowQuantileReportsMax) {
  MetricsRegistry registry;
  registry.Observe("h", 30'000'000);
  auto snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.histograms.at("h").ApproxQuantile(0.99), 30'000'000);
}

TEST(HistogramSnapshotTest, AllObservationsInOverflowBucket) {
  // Every sample above the last bucket bound (10s): any quantile lands in
  // the overflow bucket, which reports the observed max (there is no
  // upper bound to interpolate toward).
  MetricsRegistry registry;
  registry.Observe("h", 20'000'000);
  registry.Observe("h", 25'000'000);
  registry.Observe("h", 30'000'000);
  auto snapshot = registry.Snapshot();
  const auto& h = snapshot.histograms.at("h");
  EXPECT_EQ(h.count, 3u);
  EXPECT_EQ(h.ApproxQuantile(0.5), 30'000'000);
  EXPECT_EQ(h.ApproxQuantile(0.99), 30'000'000);
}

TEST(HistogramTest, MergeCombinesBucketsAndStats) {
  Histogram a;
  Histogram b;
  a.Observe(80);
  a.Observe(400'000);
  b.Observe(50);
  b.Observe(20'000'000);  // overflow
  a.Merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.sum(), 80 + 400'000 + 50 + 20'000'000);
  HistogramSnapshot snapshot = a.Snapshot();
  EXPECT_EQ(snapshot.min, 50);
  EXPECT_EQ(snapshot.max, 20'000'000);
  // Merging an empty histogram changes nothing; merging into an empty
  // histogram copies the source.
  Histogram empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 4u);
  Histogram fresh;
  fresh.Merge(a);
  EXPECT_EQ(fresh.count(), 4u);
  EXPECT_EQ(fresh.Snapshot().max, 20'000'000);
}

TEST(MetricsRegistryTest, EmptyRegistryPrometheusTextIsEmpty) {
  MetricsRegistry registry;
  // No metrics -> no exposition lines; a scrape of a just-booted process
  // must not produce malformed output.
  EXPECT_EQ(registry.Snapshot().ToPrometheusText(), "");
}

TEST(MetricsRegistryTest, ResetClearsEverything) {
  MetricsRegistry registry;
  registry.Add("c");
  registry.Observe("h", 1);
  registry.Reset();
  auto snapshot = registry.Snapshot();
  EXPECT_TRUE(snapshot.counters.empty());
  EXPECT_TRUE(snapshot.histograms.empty());
}

TEST(MetricsRegistryTest, SnapshotIsAnIsolatedCopy) {
  MetricsRegistry registry;
  registry.Add("c", 1);
  auto snapshot = registry.Snapshot();
  registry.Add("c", 41);
  EXPECT_EQ(snapshot.counter("c"), 1u);
  EXPECT_EQ(registry.Snapshot().counter("c"), 42u);
}

TEST(MetricsRegistryTest, ToStringListsCountersAndHistograms) {
  MetricsRegistry registry;
  registry.Add("store.retries.total", 7);
  registry.Observe("store.get.latency_us", 123);
  std::string dump = registry.Snapshot().ToString();
  EXPECT_NE(dump.find("store.retries.total = 7"), std::string::npos);
  EXPECT_NE(dump.find("store.get.latency_us"), std::string::npos);
  EXPECT_NE(dump.find("p50~="), std::string::npos);
}

TEST(MetricsRegistryTest, ToPrometheusTextExposesCountersAndHistograms) {
  MetricsRegistry registry;
  registry.Add("store.get.ops", 7);
  registry.Observe("store.get.latency_us", 50);      // <=100
  registry.Observe("store.get.latency_us", 150);     // <=250
  registry.Observe("store.get.latency_us", 20'000'000);  // overflow

  std::string text = registry.Snapshot().ToPrometheusText();
  // Dots are not legal in Prometheus metric names; they map to '_'.
  EXPECT_NE(text.find("# TYPE store_get_ops counter"), std::string::npos);
  EXPECT_NE(text.find("store_get_ops 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE store_get_latency_us histogram"),
            std::string::npos);
  // Buckets are cumulative: one observation <=100, two <=250.
  EXPECT_NE(text.find("store_get_latency_us_bucket{le=\"100\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("store_get_latency_us_bucket{le=\"250\"} 2"),
            std::string::npos);
  // +Inf bucket equals the total count (includes the overflow sample).
  EXPECT_NE(text.find("store_get_latency_us_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("store_get_latency_us_sum 20000200"), std::string::npos);
  EXPECT_NE(text.find("store_get_latency_us_count 3"), std::string::npos);
}

TEST(MetricsRegistryTest, ConcurrentAddsAreLossless) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < kPerThread; ++i) {
        registry.Add("contended");
        registry.Observe("contended_lat", 10);
      }
    });
  }
  for (auto& t : threads) t.join();
  auto snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counter("contended"),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(snapshot.histograms.at("contended_lat").count,
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsRegistryTest, PrometheusEscapesLabelValuesAndNames) {
  MetricsRegistry registry;
  // Labeled convention: base{key=value,...}. Values may carry quotes,
  // backslashes and newlines, which the exposition format must escape.
  registry.Add("health.transitions{rule=say \"hi\",to=a\\b\nc}", 3);
  // Quotes in a bare metric name sanitize to '_' like any other
  // non-alphanumeric byte.
  registry.Add("we\"ird.name", 1);

  std::string text = registry.Snapshot().ToPrometheusText();
  EXPECT_NE(text.find("# TYPE health_transitions counter"),
            std::string::npos);
  EXPECT_NE(text.find("rule=\"say \\\"hi\\\"\""), std::string::npos);
  EXPECT_NE(text.find("to=\"a\\\\b\\nc\""), std::string::npos);
  EXPECT_NE(text.find("we_ird_name 1"), std::string::npos);
  // The escaped newline must not produce a literal line break mid-sample.
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.find("health_transitions{") != std::string::npos) {
      EXPECT_NE(line.find("} 3"), std::string::npos) << line;
    }
  }
}

// --- EventLog -------------------------------------------------------------

TEST(EventLogTest, BoundedRingEvictsOldestAndKeepsSeq) {
  EventLog log(nullptr, 4);
  for (int i = 0; i < 6; ++i) {
    log.Emit(EventLevel::kInfo, "test", "e" + std::to_string(i));
  }
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.capacity(), 4u);
  EXPECT_EQ(log.total_emitted(), 6u);
  EXPECT_EQ(log.dropped(), 2u);
  auto snapshot = log.Snapshot();
  ASSERT_EQ(snapshot.size(), 4u);
  // Oldest-first, and sequence numbers survive eviction (gap visible).
  EXPECT_EQ(snapshot.front().name, "e2");
  EXPECT_EQ(snapshot.front().seq, 3u);
  EXPECT_EQ(snapshot.back().name, "e5");
  EXPECT_EQ(snapshot.back().seq, 6u);
}

TEST(EventLogTest, CapturesAmbientTraceContext) {
  common::TraceContext ctx;
  ctx.trace_id = 7;
  ctx.span_id = 8;
  ctx.txn_id = 9;
  EventLog log;
  {
    common::ScopedTraceContext scope(ctx);
    log.Emit(EventLevel::kWarn, "txn", "txn.conflict", {{"table", "t"}},
             "write-write conflict");
  }
  auto snapshot = log.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  const EventRecord& rec = snapshot[0];
  EXPECT_EQ(rec.level, EventLevel::kWarn);
  EXPECT_EQ(rec.component, "txn");
  EXPECT_EQ(rec.trace_id, 7u);
  EXPECT_EQ(rec.span_id, 8u);
  EXPECT_EQ(rec.txn_id, 9u);
  ASSERT_EQ(rec.fields.size(), 1u);
  EXPECT_EQ(rec.fields[0].second, "t");
  EXPECT_EQ(rec.message, "write-write conflict");

  std::string json = EventLog::ToJsonLine(rec);
  EXPECT_NE(json.find("\"level\":\"WARN\""), std::string::npos);
  EXPECT_NE(json.find("\"event\":\"txn.conflict\""), std::string::npos);
  EXPECT_NE(json.find("\"trace_id\":\"7\""), std::string::npos);
  EXPECT_NE(json.find("\"txn_id\":9"), std::string::npos);
  EXPECT_NE(json.find("\"table\":\"t\""), std::string::npos);
}

TEST(EventLogTest, MinLevelFiltersEmissions) {
  EventLog log;
  log.set_min_level(EventLevel::kWarn);
  log.Emit(EventLevel::kInfo, "test", "quiet");
  log.Emit(EventLevel::kError, "test", "loud");
  auto snapshot = log.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].name, "loud");
}

TEST(EventLogTest, JsonSinkStreamsEveryEvent) {
  std::string path = ::testing::TempDir() + "/polaris_events_test.jsonl";
  std::remove(path.c_str());
  EventLog log;
  log.Emit(EventLevel::kInfo, "test", "before.sink");
  ASSERT_TRUE(log.OpenJsonSink(path).ok());
  log.Emit(EventLevel::kInfo, "test", "first", {{"k", "v"}});
  log.Emit(EventLevel::kError, "test", "second");
  log.CloseJsonSink();
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);  // only events emitted while open
  EXPECT_NE(lines[0].find("\"event\":\"first\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"level\":\"ERROR\""), std::string::npos);
  std::remove(path.c_str());
}

// --- TimeSeriesRecorder ---------------------------------------------------

TEST(TimeSeriesRecorderTest, SamplesCountersHistogramsAndGauges) {
  MetricsRegistry registry;
  TimeSeriesRecorder recorder(&registry, 4);
  registry.Add("ops", 5);
  registry.Observe("lat", 100);
  recorder.SampleOnce(1'000, {{"gauge.active", 2.5}});

  TimeSeriesRecorder::Sample sample;
  ASSERT_TRUE(recorder.Latest("ops", &sample));
  EXPECT_EQ(sample.ts_us, 1'000);
  EXPECT_DOUBLE_EQ(sample.value, 5.0);
  ASSERT_TRUE(recorder.Latest("gauge.active", &sample));
  EXPECT_DOUBLE_EQ(sample.value, 2.5);
  // Histograms flatten to derived series.
  ASSERT_TRUE(recorder.Latest("lat.count", &sample));
  EXPECT_DOUBLE_EQ(sample.value, 1.0);
  EXPECT_TRUE(recorder.Latest("lat.p99", &sample));
  EXPECT_FALSE(recorder.Latest("absent", &sample));

  registry.Add("ops", 3);
  recorder.SampleOnce(2'000);
  EXPECT_DOUBLE_EQ(recorder.DeltaOverWindow("ops", 10), 3.0);
  EXPECT_DOUBLE_EQ(recorder.DeltaOverWindow("absent", 10), 0.0);
  EXPECT_EQ(recorder.samples_taken(), 2u);
}

TEST(TimeSeriesRecorderTest, RingsAreBoundedAndJsonWellFormed) {
  MetricsRegistry registry;
  TimeSeriesRecorder recorder(&registry, 3);
  registry.Add("c");
  for (int i = 1; i <= 8; ++i) recorder.SampleOnce(i * 100);
  auto series = recorder.Series("c");
  ASSERT_EQ(series.size(), 3u);  // capacity bound, oldest evicted
  EXPECT_EQ(series.front().ts_us, 600);
  EXPECT_EQ(series.back().ts_us, 800);
  std::string json = recorder.ToJson();
  EXPECT_NE(json.find("\"series\""), std::string::npos);
  EXPECT_NE(json.find("\"c\":[{\"ts_us\":600"), std::string::npos);
}

// --- HealthWatchdog -------------------------------------------------------

TEST(HealthWatchdogTest, DeltaRuleTransitionsAndFiresEvents) {
  MetricsRegistry registry;
  TimeSeriesRecorder recorder(&registry);
  EventLog events;
  HealthWatchdog watchdog(&recorder, &events, &registry);
  SloRule rule;
  rule.name = "error-burst";
  rule.description = "errors over the last 2 samples";
  rule.kind = SloRule::Kind::kDelta;
  rule.metric = "errors";
  rule.window = 2;
  rule.warn_threshold = 2;
  rule.fail_threshold = 5;
  watchdog.AddRule(rule);

  registry.Add("errors", 0);  // the counter exists from the first sample
  recorder.SampleOnce(1'000);
  watchdog.Evaluate(1'000);
  auto states = watchdog.States();
  ASSERT_EQ(states.size(), 1u);
  EXPECT_EQ(states[0].status, HealthStatus::kOk);

  registry.Add("errors", 10);
  recorder.SampleOnce(2'000);
  watchdog.Evaluate(2'000);
  states = watchdog.States();
  EXPECT_EQ(states[0].status, HealthStatus::kFail);
  EXPECT_DOUBLE_EQ(states[0].value, 10.0);
  EXPECT_EQ(states[0].since_us, 2'000);
  EXPECT_EQ(watchdog.transitions(), 1u);

  // No new errors: the window slides past the burst and the rule recovers.
  recorder.SampleOnce(3'000);
  watchdog.Evaluate(3'000);
  recorder.SampleOnce(4'000);
  watchdog.Evaluate(4'000);
  states = watchdog.States();
  EXPECT_EQ(states[0].status, HealthStatus::kOk);
  EXPECT_EQ(watchdog.transitions(), 2u);

  // Each transition emitted one structured event.
  size_t transition_events = 0;
  for (const auto& rec : events.Snapshot()) {
    if (rec.name == "health.transition") ++transition_events;
  }
  EXPECT_EQ(transition_events, 2u);
  EXPECT_GE(registry.Snapshot().CounterSum("health.transitions"), 2u);
}

TEST(HealthWatchdogTest, RatioFloorRespectsMinActivity) {
  MetricsRegistry registry;
  TimeSeriesRecorder recorder(&registry);
  HealthWatchdog watchdog(&recorder);
  SloRule rule;
  rule.name = "cache-hit-rate";
  rule.kind = SloRule::Kind::kRatio;
  rule.metric = "cache.hits";
  rule.denominators = {"cache.hits", "cache.misses"};
  rule.window = 10;
  rule.above_is_bad = false;  // a floor: low hit rate is bad
  rule.warn_threshold = 0.5;
  rule.fail_threshold = 0.2;
  rule.min_activity = 10;
  watchdog.AddRule(rule);

  // Two lookups is below min_activity: no verdict, stays OK.
  registry.Add("cache.hits", 0);
  registry.Add("cache.misses", 0);
  recorder.SampleOnce(1'000);
  watchdog.Evaluate(1'000);
  registry.Add("cache.misses", 2);
  recorder.SampleOnce(2'000);
  watchdog.Evaluate(2'000);
  EXPECT_EQ(watchdog.States()[0].status, HealthStatus::kOk);

  // 1 hit / 10 lookups = 0.1, under the 0.2 floor with enough activity.
  registry.Add("cache.hits", 1);
  registry.Add("cache.misses", 9);
  recorder.SampleOnce(3'000);
  watchdog.Evaluate(3'000);
  EXPECT_EQ(watchdog.States()[0].status, HealthStatus::kFail);
}

}  // namespace
}  // namespace polaris::obs
