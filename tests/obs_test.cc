// Unit tests for the unified metrics registry: counters, fixed-bucket
// latency histograms, snapshots and quantile estimation.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace polaris::obs {
namespace {

TEST(MetricsRegistryTest, CountersAccumulate) {
  MetricsRegistry registry;
  registry.Add("store.get.ops");
  registry.Add("store.get.ops");
  registry.Add("store.get.retries", 5);

  auto snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counter("store.get.ops"), 2u);
  EXPECT_EQ(snapshot.counter("store.get.retries"), 5u);
  EXPECT_EQ(snapshot.counter("never.recorded"), 0u);
}

TEST(MetricsRegistryTest, CounterSumAggregatesByPrefix) {
  MetricsRegistry registry;
  registry.Add("store.get.retries", 2);
  registry.Add("store.put.retries", 3);
  registry.Add("cache.hits", 100);

  auto snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.CounterSum("store."), 5u);
  EXPECT_EQ(snapshot.CounterSum("cache."), 100u);
  EXPECT_EQ(snapshot.CounterSum("dcp."), 0u);
}

TEST(MetricsRegistryTest, HistogramRecordsObservations) {
  MetricsRegistry registry;
  registry.Observe("store.get.latency_us", 50);     // first bucket (<=100)
  registry.Observe("store.get.latency_us", 150);    // <=250 bucket
  registry.Observe("store.get.latency_us", 20'000'000);  // overflow

  auto snapshot = registry.Snapshot();
  const auto& h = snapshot.histograms.at("store.get.latency_us");
  EXPECT_EQ(h.count, 3u);
  EXPECT_EQ(h.min, 50);
  EXPECT_EQ(h.max, 20'000'000);
  EXPECT_EQ(h.sum, 50 + 150 + 20'000'000);
  ASSERT_EQ(h.counts.size(), h.bounds.size() + 1);
  EXPECT_EQ(h.counts[0], 1u);            // 50 <= 100
  EXPECT_EQ(h.counts[1], 1u);            // 150 <= 250
  EXPECT_EQ(h.counts.back(), 1u);        // overflow bucket
}

TEST(MetricsRegistryTest, BoundaryValueLandsInItsBucket) {
  MetricsRegistry registry;
  // Bucket semantics: counts[i] holds bounds[i-1] < v <= bounds[i].
  registry.Observe("h", 100);
  registry.Observe("h", 101);
  auto snapshot = registry.Snapshot();
  const auto& h = snapshot.histograms.at("h");
  EXPECT_EQ(h.counts[0], 1u);
  EXPECT_EQ(h.counts[1], 1u);
}

TEST(HistogramSnapshotTest, ApproxQuantileCoversDistribution) {
  MetricsRegistry registry;
  for (int i = 0; i < 90; ++i) registry.Observe("h", 80);       // <=100
  for (int i = 0; i < 10; ++i) registry.Observe("h", 400'000);  // <=500k

  auto snapshot = registry.Snapshot();
  const auto& h = snapshot.histograms.at("h");
  // p50 interpolates inside the first bucket, whose edges are clamped to
  // the observed min (80) and the bucket bound (100).
  EXPECT_EQ(h.ApproxQuantile(0.5), 91);
  // p99 lands in the <=500k bucket; its upper edge clamps to max (400k).
  EXPECT_EQ(h.ApproxQuantile(0.99), 400'000);
}

TEST(HistogramSnapshotTest, SingleObservationReportsItself) {
  MetricsRegistry registry;
  registry.Observe("h", 4'321);
  auto snapshot = registry.Snapshot();
  const auto& h = snapshot.histograms.at("h");
  // Clamping both bucket edges to min/max collapses the bucket to the
  // lone observation instead of its bucket's upper bound (5'000).
  EXPECT_EQ(h.ApproxQuantile(0.5), 4'321);
  EXPECT_EQ(h.ApproxQuantile(0.99), 4'321);
}

TEST(HistogramSnapshotTest, EmptyHistogramQuantileIsMinusOne) {
  HistogramSnapshot empty;
  EXPECT_EQ(empty.ApproxQuantile(0.5), -1);
}

TEST(HistogramSnapshotTest, OverflowQuantileReportsMax) {
  MetricsRegistry registry;
  registry.Observe("h", 30'000'000);
  auto snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.histograms.at("h").ApproxQuantile(0.99), 30'000'000);
}

TEST(MetricsRegistryTest, ResetClearsEverything) {
  MetricsRegistry registry;
  registry.Add("c");
  registry.Observe("h", 1);
  registry.Reset();
  auto snapshot = registry.Snapshot();
  EXPECT_TRUE(snapshot.counters.empty());
  EXPECT_TRUE(snapshot.histograms.empty());
}

TEST(MetricsRegistryTest, SnapshotIsAnIsolatedCopy) {
  MetricsRegistry registry;
  registry.Add("c", 1);
  auto snapshot = registry.Snapshot();
  registry.Add("c", 41);
  EXPECT_EQ(snapshot.counter("c"), 1u);
  EXPECT_EQ(registry.Snapshot().counter("c"), 42u);
}

TEST(MetricsRegistryTest, ToStringListsCountersAndHistograms) {
  MetricsRegistry registry;
  registry.Add("store.retries.total", 7);
  registry.Observe("store.get.latency_us", 123);
  std::string dump = registry.Snapshot().ToString();
  EXPECT_NE(dump.find("store.retries.total = 7"), std::string::npos);
  EXPECT_NE(dump.find("store.get.latency_us"), std::string::npos);
  EXPECT_NE(dump.find("p50~="), std::string::npos);
}

TEST(MetricsRegistryTest, ToPrometheusTextExposesCountersAndHistograms) {
  MetricsRegistry registry;
  registry.Add("store.get.ops", 7);
  registry.Observe("store.get.latency_us", 50);      // <=100
  registry.Observe("store.get.latency_us", 150);     // <=250
  registry.Observe("store.get.latency_us", 20'000'000);  // overflow

  std::string text = registry.Snapshot().ToPrometheusText();
  // Dots are not legal in Prometheus metric names; they map to '_'.
  EXPECT_NE(text.find("# TYPE store_get_ops counter"), std::string::npos);
  EXPECT_NE(text.find("store_get_ops 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE store_get_latency_us histogram"),
            std::string::npos);
  // Buckets are cumulative: one observation <=100, two <=250.
  EXPECT_NE(text.find("store_get_latency_us_bucket{le=\"100\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("store_get_latency_us_bucket{le=\"250\"} 2"),
            std::string::npos);
  // +Inf bucket equals the total count (includes the overflow sample).
  EXPECT_NE(text.find("store_get_latency_us_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("store_get_latency_us_sum 20000200"), std::string::npos);
  EXPECT_NE(text.find("store_get_latency_us_count 3"), std::string::npos);
}

TEST(MetricsRegistryTest, ConcurrentAddsAreLossless) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < kPerThread; ++i) {
        registry.Add("contended");
        registry.Observe("contended_lat", 10);
      }
    });
  }
  for (auto& t : threads) t.join();
  auto snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counter("contended"),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(snapshot.histograms.at("contended_lat").count,
            static_cast<uint64_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace polaris::obs
