// End-to-end tests for the sys.* system views (DMVs): SELECT over live
// engine state through the normal SQL executor, composing WHERE, ORDER
// BY, LIMIT and aggregates; plus the read-only / AS OF guard rails and a
// concurrency stress that runs under TSan.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "engine/system_views.h"
#include "sql/session.h"

namespace polaris {
namespace {

using sql::SqlResult;
using sql::SqlSession;

engine::EngineOptions NoSamplerOptions() {
  engine::EngineOptions options;
  // Drive SampleObservabilityOnce() by hand so the time-series and
  // health contents are deterministic.
  options.sampler_period_micros = 0;
  return options;
}

class SystemViewsTest : public ::testing::Test {
 protected:
  SystemViewsTest() : engine_(NoSamplerOptions()), session_(&engine_) {}

  SqlResult Must(const std::string& statement) {
    auto result = session_.Execute(statement);
    EXPECT_TRUE(result.ok()) << statement << " -> "
                             << result.status().ToString();
    return result.ok() ? *result : SqlResult{};
  }

  int FindColumn(const SqlResult& result, const std::string& name) {
    return result.batch.schema().FindColumn(name);
  }

  engine::PolarisEngine engine_;
  SqlSession session_;
};

TEST_F(SystemViewsTest, CatalogListsEveryView) {
  SqlResult views = Must("SELECT * FROM sys.dm_views ORDER BY view_name");
  EXPECT_EQ(views.batch.num_rows(),
            engine::SystemViews::Catalog().size());
  // Every listed view must actually be queryable.
  for (size_t r = 0; r < views.batch.num_rows(); ++r) {
    std::string name = views.batch.column(0).StringAt(r);
    auto result = session_.Execute("SELECT * FROM " + name);
    EXPECT_TRUE(result.ok()) << name << " -> "
                             << result.status().ToString();
  }
}

TEST_F(SystemViewsTest, TranActiveShowsOpenTransaction) {
  Must("CREATE TABLE t (x BIGINT)");
  Must("BEGIN");
  Must("INSERT INTO t VALUES (1)");

  // The acceptance query, through the normal executor.
  SqlResult active = Must("SELECT name, state FROM sys.dm_tran_active");
  ASSERT_EQ(active.batch.num_rows(), 1u);
  EXPECT_EQ(active.batch.schema().column(0).name, "name");
  EXPECT_EQ(active.batch.schema().column(1).name, "state");
  EXPECT_EQ(active.batch.column(0).StringAt(0).rfind("txn-", 0), 0u);
  EXPECT_EQ(active.batch.column(1).StringAt(0), "active");

  // WHERE composes over the view.
  SqlResult filtered = Must(
      "SELECT txn_id FROM sys.dm_tran_active WHERE state = 'active'");
  EXPECT_EQ(filtered.batch.num_rows(), 1u);
  SqlResult none = Must(
      "SELECT txn_id FROM sys.dm_tran_active WHERE state = 'zombie'");
  EXPECT_EQ(none.batch.num_rows(), 0u);

  Must("COMMIT");
  SqlResult after = Must("SELECT name FROM sys.dm_tran_active");
  EXPECT_EQ(after.batch.num_rows(), 0u);
}

TEST_F(SystemViewsTest, TranHistoryRecordsCommitsAndConflicts) {
  Must("CREATE TABLE t (id BIGINT, v BIGINT)");
  Must("INSERT INTO t VALUES (1, 0)");

  // A conflicting pair: both sessions update the same row.
  SqlSession other(&engine_);
  ASSERT_TRUE(session_.Execute("BEGIN")->message == "BEGIN");
  ASSERT_TRUE(other.Execute("BEGIN")->message == "BEGIN");
  Must("UPDATE t SET v = 1 WHERE id = 1");
  ASSERT_TRUE(other.Execute("UPDATE t SET v = 2 WHERE id = 1").ok());
  Must("COMMIT");
  auto lost = other.Execute("COMMIT");
  EXPECT_FALSE(lost.ok());

  SqlResult commits = Must(
      "SELECT txn_id, latency_us FROM sys.dm_tran_history "
      "WHERE state = 'committed' ORDER BY txn_id DESC");
  EXPECT_GE(commits.batch.num_rows(), 2u);  // the INSERT + the winner
  SqlResult conflicts = Must(
      "SELECT cause FROM sys.dm_tran_history WHERE state = 'conflict'");
  ASSERT_EQ(conflicts.batch.num_rows(), 1u);
  EXPECT_NE(conflicts.batch.column(0).StringAt(0).find("onflict"),
            std::string::npos);

  // LIMIT composes.
  SqlResult limited =
      Must("SELECT txn_id FROM sys.dm_tran_history LIMIT 1");
  EXPECT_EQ(limited.batch.num_rows(), 1u);
}

TEST_F(SystemViewsTest, HealthReturnsVerdictForEveryRule) {
  engine_.SampleObservabilityOnce();
  SqlResult health = Must("SELECT * FROM sys.dm_health");
  EXPECT_GE(health.batch.num_rows(), 4u);  // the default SLO rule set
  int status_col = FindColumn(health, "status");
  ASSERT_GE(status_col, 0);
  for (size_t r = 0; r < health.batch.num_rows(); ++r) {
    const std::string& status = health.batch.column(status_col).StringAt(r);
    EXPECT_TRUE(status == "OK" || status == "WARN" || status == "FAIL")
        << status;
  }
  // An idle engine is healthy.
  SqlResult failing =
      Must("SELECT rule FROM sys.dm_health WHERE status = 'FAIL'");
  EXPECT_EQ(failing.batch.num_rows(), 0u);
}

TEST_F(SystemViewsTest, EventsCaptureCommitLifecycle) {
  Must("CREATE TABLE t (x BIGINT)");
  Must("INSERT INTO t VALUES (1)");
  SqlResult committed = Must(
      "SELECT component, fields FROM sys.dm_events "
      "WHERE event = 'txn.committed'");
  ASSERT_GE(committed.batch.num_rows(), 1u);
  EXPECT_EQ(committed.batch.column(0).StringAt(0), "txn");
  EXPECT_NE(committed.batch.column(1).StringAt(0).find("latency_us="),
            std::string::npos);

  // Aggregates compose over views.
  SqlResult by_level = Must(
      "SELECT level, COUNT(*) AS n FROM sys.dm_events GROUP BY level "
      "ORDER BY n DESC");
  EXPECT_GE(by_level.batch.num_rows(), 1u);
}

TEST_F(SystemViewsTest, MetricsHistoryFillsAfterSampling) {
  Must("CREATE TABLE t (x BIGINT)");
  Must("INSERT INTO t VALUES (1)");
  SqlResult empty = Must("SELECT name FROM sys.dm_metrics_history");
  EXPECT_EQ(empty.batch.num_rows(), 0u);

  engine_.SampleObservabilityOnce();
  engine_.SampleObservabilityOnce();
  SqlResult history = Must(
      "SELECT name, COUNT(*) AS samples FROM sys.dm_metrics_history "
      "GROUP BY name ORDER BY name");
  ASSERT_GE(history.batch.num_rows(), 1u);
  int samples_col = FindColumn(history, "samples");
  ASSERT_GE(samples_col, 0);
  for (size_t r = 0; r < history.batch.num_rows(); ++r) {
    EXPECT_EQ(history.batch.column(samples_col).Int64At(r), 2);
  }
  // The sampler-injected gauges are present.
  SqlResult gauge = Must(
      "SELECT value FROM sys.dm_metrics_history WHERE name = 'txn.active'");
  EXPECT_EQ(gauge.batch.num_rows(), 2u);
}

TEST_F(SystemViewsTest, StoJobsRecordMaintenanceSweeps) {
  Must("CREATE TABLE t (x BIGINT)");
  for (int i = 0; i < 4; ++i) {
    Must("INSERT INTO t VALUES (" + std::to_string(i) + ")");
  }
  ASSERT_TRUE(engine_.sto()->RunOnce(/*run_gc=*/true).ok());

  SqlResult jobs = Must(
      "SELECT kind, status FROM sys.dm_sto_jobs ORDER BY kind");
  EXPECT_GE(jobs.batch.num_rows(), 1u);
  SqlResult per_kind = Must(
      "SELECT kind, COUNT(*) AS n FROM sys.dm_sto_jobs GROUP BY kind");
  EXPECT_GE(per_kind.batch.num_rows(), 1u);
}

TEST_F(SystemViewsTest, StorageStatsAndCacheAndMetrics) {
  Must("CREATE TABLE t (x BIGINT)");
  Must("INSERT INTO t VALUES (1), (2)");
  Must("SELECT * FROM t");

  SqlResult stats = Must(
      "SELECT op, ops, bytes FROM sys.dm_storage_stats WHERE op = 'put'");
  ASSERT_EQ(stats.batch.num_rows(), 1u);
  EXPECT_GT(stats.batch.column(1).Int64At(0), 0);
  EXPECT_GT(stats.batch.column(2).Int64At(0), 0);

  SqlResult cache = Must("SELECT * FROM sys.dm_cache");
  EXPECT_EQ(cache.batch.num_rows(), 1u);

  SqlResult counters = Must(
      "SELECT name, value FROM sys.dm_metrics WHERE kind = 'counter' "
      "ORDER BY name");
  EXPECT_GE(counters.batch.num_rows(), 3u);
  SqlResult ring = Must(
      "SELECT value FROM sys.dm_metrics WHERE name = 'tracer.ring_spans'");
  EXPECT_EQ(ring.batch.num_rows(), 1u);
}

TEST_F(SystemViewsTest, CommitViewCountsPipelineActivity) {
  Must("CREATE TABLE t (x BIGINT)");
  Must("INSERT INTO t VALUES (1)");
  Must("INSERT INTO t VALUES (2)");

  SqlResult commit_view = Must(
      "SELECT commits, batches, max_batch, avg_batch, pending "
      "FROM sys.dm_commit");
  ASSERT_EQ(commit_view.batch.num_rows(), 1u);
  // CREATE + two INSERTs = at least three installed commits, each flushed
  // through at least one batch; nothing should still be in flight.
  EXPECT_GE(commit_view.batch.column(0).Int64At(0), 3);
  EXPECT_GE(commit_view.batch.column(1).Int64At(0), 1);
  EXPECT_GE(commit_view.batch.column(2).Int64At(0), 1);
  EXPECT_GE(commit_view.batch.column(3).DoubleAt(0), 1.0);
  EXPECT_EQ(commit_view.batch.column(4).Int64At(0), 0);
}

TEST_F(SystemViewsTest, SystemViewsAreReadOnlyAndLive) {
  auto insert = session_.Execute("INSERT INTO sys.dm_cache VALUES (1)");
  EXPECT_TRUE(insert.status().IsInvalidArgument());
  auto update =
      session_.Execute("UPDATE sys.dm_cache SET hits = 0");
  EXPECT_TRUE(update.status().IsInvalidArgument());
  auto del = session_.Execute("DELETE FROM sys.dm_events");
  EXPECT_TRUE(del.status().IsInvalidArgument());
  auto as_of = session_.Execute("SELECT * FROM sys.dm_cache AS OF 123");
  EXPECT_TRUE(as_of.status().IsInvalidArgument());
  auto unknown = session_.Execute("SELECT * FROM sys.dm_nonexistent");
  EXPECT_TRUE(unknown.status().IsNotFound());
  // Unknown columns are rejected, as on real tables.
  auto bad_col = session_.Execute("SELECT no_such FROM sys.dm_cache");
  EXPECT_FALSE(bad_col.ok());
}

TEST_F(SystemViewsTest, SelectingViewsDoesNotOpenTransactions) {
  Must("SELECT * FROM sys.dm_views");
  EXPECT_FALSE(session_.in_transaction());
  SqlResult active = Must("SELECT name FROM sys.dm_tran_active");
  // Querying the view must not register as an active transaction itself.
  EXPECT_EQ(active.batch.num_rows(), 0u);
}

// Readers hammer the DMVs while writers commit and the STO sweeps; run
// under TSan this checks every engine-state snapshot taken by the views.
TEST(SystemViewsStressTest, ConcurrentQueriesDuringWritesAndSweeps) {
  engine::PolarisEngine engine(NoSamplerOptions());
  {
    SqlSession ddl(&engine);
    auto created =
        ddl.Execute("CREATE TABLE t (id BIGINT, v BIGINT)");
    ASSERT_TRUE(created.ok()) << created.status().ToString();
  }

  constexpr int kReaders = 3;
  constexpr int kWriters = 2;
  constexpr int kIterations = 40;
  std::atomic<bool> stop{false};
  std::atomic<int> reader_failures{0};
  std::vector<std::thread> threads;

  static const char* kQueries[] = {
      "SELECT name, state FROM sys.dm_tran_active",
      "SELECT kind, status FROM sys.dm_sto_jobs LIMIT 8",
      "SELECT COUNT(*) FROM sys.dm_events",
      "SELECT state, COUNT(*) AS n FROM sys.dm_tran_history "
      "GROUP BY state",
      "SELECT * FROM sys.dm_storage_stats ORDER BY ops DESC LIMIT 4",
      "SELECT * FROM sys.dm_health",
  };

  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&engine, &stop, &reader_failures, r] {
      SqlSession session(&engine);
      size_t q = static_cast<size_t>(r);
      while (!stop.load(std::memory_order_acquire)) {
        const char* query = kQueries[q++ % (sizeof(kQueries) /
                                            sizeof(kQueries[0]))];
        if (!session.Execute(query).ok()) {
          reader_failures.fetch_add(1);
        }
      }
    });
  }
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&engine, w] {
      SqlSession session(&engine);
      for (int i = 0; i < kIterations; ++i) {
        int id = w * kIterations + i;
        // Conflicts from concurrent sweeps retry inside the session.
        (void)session.Execute("INSERT INTO t VALUES (" +
                              std::to_string(id) + ", 0)");
        (void)session.Execute("UPDATE t SET v = v + 1 WHERE id = " +
                              std::to_string(id));
      }
    });
  }
  threads.emplace_back([&engine, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      (void)engine.sto()->RunOnce(/*run_gc=*/true);
      engine.SampleObservabilityOnce();
    }
  });

  // Writers bound the run; readers and the sweeper spin until they join.
  for (int i = kReaders; i < kReaders + kWriters; ++i) threads[i].join();
  stop.store(true, std::memory_order_release);
  for (int i = 0; i < kReaders; ++i) threads[i].join();
  threads.back().join();

  EXPECT_EQ(reader_failures.load(), 0);
  SqlSession check(&engine);
  auto history = check.Execute(
      "SELECT COUNT(*) AS n FROM sys.dm_tran_history "
      "WHERE state = 'committed'");
  ASSERT_TRUE(history.ok());
  EXPECT_GT(history->batch.column(0).Int64At(0), 0);
}

}  // namespace
}  // namespace polaris
