// Unit tests for the span tracer: nesting and parent links, cross-thread
// context propagation through the dcp::ThreadPool, ring-buffer eviction,
// concurrent writers and the Chrome trace_event export.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/trace_context.h"
#include "dcp/thread_pool.h"
#include "obs/tracer.h"

namespace polaris::obs {
namespace {

const SpanRecord* FindSpan(const std::vector<SpanRecord>& spans,
                           const std::string& name) {
  for (const auto& s : spans) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::string AttrValue(const SpanRecord& span, const std::string& key) {
  for (const auto& [k, v] : span.attrs) {
    if (k == key) return v;
  }
  return "";
}

TEST(TracerTest, DisabledTracerRecordsNothing) {
  Tracer tracer;
  {
    Span span(&tracer, "noop");
    EXPECT_FALSE(span.active());
    span.AddAttr("k", "v");  // must be a safe no-op on an inert span
  }
  EXPECT_TRUE(tracer.Snapshot().empty());
  // No traced work in progress => no ambient tracer either.
  EXPECT_EQ(Tracer::CurrentThreadTracer(), nullptr);
}

TEST(TracerTest, NestedSpansLinkParentAndShareTrace) {
  Tracer tracer;
  tracer.set_enabled(true);
  uint64_t root_trace = 0;
  {
    Span root(&tracer, "root");
    ASSERT_TRUE(root.active());
    root_trace = root.context().trace_id;
    {
      Span mid("mid");  // ambient: picks up the tracer installed by root
      ASSERT_TRUE(mid.active());
      EXPECT_EQ(mid.context().trace_id, root_trace);
      Span leaf("leaf");
      ASSERT_TRUE(leaf.active());
      leaf.AddAttr("depth", int64_t{2});
    }
  }
  auto spans = tracer.Trace(root_trace);
  ASSERT_EQ(spans.size(), 3u);  // finished leaf-first
  const SpanRecord* root = FindSpan(spans, "root");
  const SpanRecord* mid = FindSpan(spans, "mid");
  const SpanRecord* leaf = FindSpan(spans, "leaf");
  ASSERT_NE(root, nullptr);
  ASSERT_NE(mid, nullptr);
  ASSERT_NE(leaf, nullptr);
  EXPECT_EQ(root->parent_id, 0u);
  EXPECT_EQ(mid->parent_id, root->span_id);
  EXPECT_EQ(leaf->parent_id, mid->span_id);
  EXPECT_EQ(leaf->trace_id, root_trace);
  EXPECT_EQ(AttrValue(*leaf, "depth"), "2");
  EXPECT_GE(root->duration_us(), mid->duration_us());
}

TEST(TracerTest, RootTagStartsFreshTraceAndEndRestoresContext) {
  Tracer tracer;
  tracer.set_enabled(true);
  Span outer(&tracer, "outer");
  uint64_t outer_trace = outer.context().trace_id;
  {
    Span detached(&tracer, "detached", Span::kRoot);
    EXPECT_NE(detached.context().trace_id, outer_trace);
    EXPECT_EQ(tracer.Trace(detached.context().trace_id).size(), 0u);
  }
  // After the detached root finishes, the outer context is ambient again.
  Span child("child");
  ASSERT_TRUE(child.active());
  EXPECT_EQ(child.context().trace_id, outer_trace);
  child.End();
  outer.End();
  auto spans = tracer.Trace(outer_trace);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(FindSpan(spans, "detached"), nullptr);
  auto all = tracer.Snapshot();
  const SpanRecord* detached = FindSpan(all, "detached");
  ASSERT_NE(detached, nullptr);
  EXPECT_EQ(detached->parent_id, 0u);
}

TEST(TracerTest, TxnIdFromAmbientContextIsStampedOnSpans) {
  Tracer tracer;
  tracer.set_enabled(true);
  uint64_t trace_id = 0;
  {
    Span root(&tracer, "stmt");
    trace_id = root.context().trace_id;
    common::MutableCurrentTraceContext().txn_id = 42;
    Span child("work");
    child.End();
  }
  auto spans = tracer.Trace(trace_id);
  const SpanRecord* child = FindSpan(spans, "work");
  ASSERT_NE(child, nullptr);
  EXPECT_EQ(child->txn_id, 42u);
  // The root span picks the txn id up at End(), after Begin stamped it.
  const SpanRecord* root = FindSpan(spans, "stmt");
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->txn_id, 42u);
}

TEST(TracerTest, ContextPropagatesAcrossThreadPool) {
  Tracer tracer;
  tracer.set_enabled(true);
  dcp::ThreadPool pool(4);
  uint64_t trace_id = 0;
  uint64_t root_span_id = 0;
  {
    Span root(&tracer, "submit");
    trace_id = root.context().trace_id;
    root_span_id = root.context().span_id;
    for (int i = 0; i < 8; ++i) {
      pool.Submit([i] {
        Span span("pool.work");
        if (span.active()) span.AddAttr("i", int64_t{i});
      });
    }
    pool.Wait();
  }
  auto spans = tracer.Trace(trace_id);
  size_t workers = 0;
  for (const auto& s : spans) {
    if (s.name != "pool.work") continue;
    ++workers;
    EXPECT_EQ(s.trace_id, trace_id);
    EXPECT_EQ(s.parent_id, root_span_id);
  }
  EXPECT_EQ(workers, 8u);
}

TEST(TracerTest, RingBufferEvictsOldestAndCountsDrops) {
  Tracer tracer(nullptr, /*capacity=*/4);
  tracer.set_enabled(true);
  for (int i = 0; i < 10; ++i) {
    Span span(&tracer, ("s" + std::to_string(i)).c_str(), Span::kRoot);
  }
  auto spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(tracer.dropped_spans(), 6u);
  // Oldest first: the survivors are the last four spans recorded.
  EXPECT_EQ(spans[0].name, "s6");
  EXPECT_EQ(spans[3].name, "s9");
  tracer.Clear();
  EXPECT_TRUE(tracer.Snapshot().empty());
  EXPECT_EQ(tracer.dropped_spans(), 0u);
}

TEST(TracerTest, ConcurrentWritersLoseNoSpans) {
  Tracer tracer(nullptr, /*capacity=*/100'000);
  tracer.set_enabled(true);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer] {
      for (int i = 0; i < kPerThread; ++i) {
        Span root(&tracer, "outer", Span::kRoot);
        Span child("inner");
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(tracer.Snapshot().size(),
            static_cast<size_t>(kThreads) * kPerThread * 2);
  EXPECT_EQ(tracer.dropped_spans(), 0u);
}

TEST(TracerTest, ExportChromeTraceEmitsCompleteEvents) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    Span root(&tracer, "parent");
    common::MutableCurrentTraceContext().txn_id = 7;
    Span child("child \"quoted\"");
    child.End();
  }
  std::string json = tracer.ExportChromeTrace();
  // Structural checks: traceEvents wrapper, complete-phase events, micros
  // timestamps and the identity args Perfetto surfaces on click.
  EXPECT_EQ(json.find("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["), 0u);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"parent\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"child \\\"quoted\\\"\""),
            std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"trace_id\""), std::string::npos);
  EXPECT_NE(json.find("\"span_id\""), std::string::npos);
  EXPECT_NE(json.find("\"txn_id\":\"7\""), std::string::npos);
  // Exactly one event per recorded span.
  size_t events = 0;
  for (size_t pos = json.find("\"ph\""); pos != std::string::npos;
       pos = json.find("\"ph\"", pos + 1)) {
    ++events;
  }
  EXPECT_EQ(events, tracer.Snapshot().size());
  // Balanced braces/brackets => structurally plausible JSON.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(TracerTest, EnableDisableMidStream) {
  Tracer tracer;
  { Span span(&tracer, "before"); }
  tracer.set_enabled(true);
  { Span span(&tracer, "during"); }
  tracer.set_enabled(false);
  { Span span(&tracer, "after"); }
  auto spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "during");
}

}  // namespace
}  // namespace polaris::obs
