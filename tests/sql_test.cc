// Tests for the SQL front end: lexer, parser, and end-to-end session
// execution over the engine (the textual equivalent of the paper's T-SQL
// surface).

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "sql/session.h"

namespace polaris::sql {
namespace {

using format::ColumnType;
using format::Value;

// --- Lexer ----------------------------------------------------------------

TEST(LexerTest, TokenizesKeywordsIdentifiersAndLiterals) {
  auto tokens = Tokenize("SELECT x FROM t WHERE y >= 1.5 AND z = 'a''b'");
  ASSERT_TRUE(tokens.ok());
  ASSERT_GE(tokens->size(), 12u);
  EXPECT_TRUE((*tokens)[0].IsKeyword("SELECT"));
  EXPECT_EQ((*tokens)[1].type, TokenType::kIdentifier);
  EXPECT_EQ((*tokens)[1].text, "x");
  EXPECT_TRUE((*tokens)[2].IsKeyword("FROM"));
  // y >= 1.5
  EXPECT_TRUE((*tokens)[6].IsSymbol(">="));
  EXPECT_EQ((*tokens)[7].type, TokenType::kFloat);
  EXPECT_DOUBLE_EQ((*tokens)[7].double_value, 1.5);
  // 'a''b' unescapes to a'b
  EXPECT_EQ(tokens->at(11).type, TokenType::kString);
  EXPECT_EQ(tokens->at(11).text, "a'b");
}

TEST(LexerTest, KeywordsAreCaseInsensitive) {
  auto tokens = Tokenize("select From wHeRe");
  ASSERT_TRUE(tokens.ok());
  EXPECT_TRUE((*tokens)[0].IsKeyword("SELECT"));
  EXPECT_TRUE((*tokens)[1].IsKeyword("FROM"));
  EXPECT_TRUE((*tokens)[2].IsKeyword("WHERE"));
}

TEST(LexerTest, NegativeNumbersAndComments) {
  auto tokens = Tokenize("VALUES (-42, -1.5) -- trailing comment");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[2].int_value, -42);
  EXPECT_DOUBLE_EQ((*tokens)[4].double_value, -1.5);
  // Comment consumed; last real token is ')'.
  EXPECT_TRUE((*tokens)[tokens->size() - 2].IsSymbol(")"));
}

TEST(LexerTest, RejectsMalformedInput) {
  EXPECT_TRUE(Tokenize("SELECT 'unterminated").status().IsInvalidArgument());
  EXPECT_TRUE(Tokenize("SELECT 1.2.3").status().IsInvalidArgument());
  EXPECT_TRUE(Tokenize("SELECT @x").status().IsInvalidArgument());
}

// --- Parser ---------------------------------------------------------------

TEST(ParserTest, CreateTable) {
  auto stmt = Parse("CREATE TABLE t (id BIGINT, price DOUBLE, name TEXT);");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->kind, ParsedStatement::Kind::kCreateTable);
  EXPECT_EQ(stmt->table, "t");
  ASSERT_EQ(stmt->schema.num_columns(), 3u);
  EXPECT_EQ(stmt->schema.column(0).type, ColumnType::kInt64);
  EXPECT_EQ(stmt->schema.column(1).type, ColumnType::kDouble);
  EXPECT_EQ(stmt->schema.column(2).type, ColumnType::kString);
}

TEST(ParserTest, InsertMultipleRows) {
  auto stmt = Parse("INSERT INTO t VALUES (1, 2.5, 'x'), (2, NULL, 'y')");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->kind, ParsedStatement::Kind::kInsert);
  ASSERT_EQ(stmt->insert_rows.size(), 2u);
  EXPECT_EQ(stmt->insert_rows[0][0].i64, 1);
  EXPECT_TRUE(stmt->insert_rows[1][1].is_null);
}

TEST(ParserTest, SelectWithEverything) {
  auto stmt = Parse(
      "SELECT status, COUNT(*) AS n, SUM(amount) FROM orders "
      "WHERE amount > 10 AND status != 'void' GROUP BY status");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->kind, ParsedStatement::Kind::kSelect);
  ASSERT_EQ(stmt->select_items.size(), 3u);
  EXPECT_FALSE(stmt->select_items[0].aggregate.has_value());
  EXPECT_EQ(stmt->select_items[1].alias, "n");
  EXPECT_EQ(stmt->select_items[2].alias, "sum_amount");
  ASSERT_EQ(stmt->where.predicates.size(), 2u);
  EXPECT_EQ(stmt->where.predicates[1].op, exec::CompareOp::kNe);
  EXPECT_EQ(stmt->group_by, std::vector<std::string>{"status"});
}

TEST(ParserTest, SelectAsOf) {
  auto stmt = Parse("SELECT * FROM t AS OF 123456 WHERE x = 1");
  ASSERT_TRUE(stmt.ok());
  ASSERT_TRUE(stmt->as_of.has_value());
  EXPECT_EQ(*stmt->as_of, 123456);
  EXPECT_TRUE(stmt->select_items[0].star);
}

TEST(ParserTest, UpdateWithArithmetic) {
  auto stmt =
      Parse("UPDATE t SET a = 5, b = b + 2, c = c - 1.5 WHERE id = 7");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_EQ(stmt->assignments.size(), 3u);
  EXPECT_EQ(stmt->assignments[0].kind, exec::Assignment::Kind::kSetValue);
  EXPECT_EQ(stmt->assignments[1].kind, exec::Assignment::Kind::kAddInt64);
  EXPECT_EQ(stmt->assignments[1].value.i64, 2);
  EXPECT_EQ(stmt->assignments[2].kind, exec::Assignment::Kind::kAddDouble);
  EXPECT_DOUBLE_EQ(stmt->assignments[2].value.f64, -1.5);
}

TEST(ParserTest, DeleteAndTransactionControl) {
  EXPECT_EQ(Parse("DELETE FROM t WHERE x < 3")->kind,
            ParsedStatement::Kind::kDelete);
  EXPECT_EQ(Parse("BEGIN")->kind, ParsedStatement::Kind::kBegin);
  EXPECT_EQ(Parse("BEGIN TRANSACTION;")->kind,
            ParsedStatement::Kind::kBegin);
  EXPECT_EQ(Parse("COMMIT;")->kind, ParsedStatement::Kind::kCommit);
  EXPECT_EQ(Parse("ROLLBACK")->kind, ParsedStatement::Kind::kRollback);
}

TEST(ParserTest, CloneTable) {
  auto stmt = Parse("CLONE TABLE src TO dst AS OF 99");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->kind, ParsedStatement::Kind::kCloneTable);
  EXPECT_EQ(stmt->table, "src");
  EXPECT_EQ(stmt->clone_target, "dst");
  EXPECT_EQ(*stmt->as_of, 99);
}

TEST(ParserTest, RejectsMalformedStatements) {
  EXPECT_TRUE(Parse("").status().IsInvalidArgument());
  EXPECT_TRUE(Parse("SELEC * FROM t").status().IsInvalidArgument());
  EXPECT_TRUE(Parse("SELECT FROM t").status().IsInvalidArgument());
  EXPECT_TRUE(Parse("CREATE TABLE t (x BLOB)").status().IsInvalidArgument());
  EXPECT_TRUE(Parse("INSERT INTO t VALUES 1,2").status().IsInvalidArgument());
  EXPECT_TRUE(Parse("UPDATE t SET x").status().IsInvalidArgument());
  EXPECT_TRUE(
      Parse("SELECT * FROM t; SELECT 1").status().IsInvalidArgument());
  EXPECT_TRUE(Parse("SELECT SUM(*) FROM t").status().IsInvalidArgument());
}

// --- Session (end to end) -----------------------------------------------------

class SqlSessionTest : public ::testing::Test {
 protected:
  SqlSessionTest() : session_(&engine_) {}

  SqlResult Must(const std::string& sql) {
    auto result = session_.Execute(sql);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status().ToString();
    return result.ok() ? *result : SqlResult{};
  }

  engine::PolarisEngine engine_;
  SqlSession session_;
};

TEST_F(SqlSessionTest, CreateInsertSelectRoundTrip) {
  Must("CREATE TABLE orders (id BIGINT, amount DOUBLE, status TEXT)");
  SqlResult inserted = Must(
      "INSERT INTO orders VALUES (1, 10.0, 'open'), (2, 20.0, 'open'), "
      "(3, 30.0, 'shipped')");
  EXPECT_EQ(inserted.affected_rows, 3u);

  SqlResult all = Must("SELECT * FROM orders");
  EXPECT_EQ(all.batch.num_rows(), 3u);
  EXPECT_EQ(all.batch.num_columns(), 3u);

  SqlResult filtered =
      Must("SELECT id FROM orders WHERE status = 'open' AND amount > 15");
  ASSERT_EQ(filtered.batch.num_rows(), 1u);
  EXPECT_EQ(filtered.batch.column(0).Int64At(0), 2);
}

TEST_F(SqlSessionTest, IntegerLiteralsWidenToDouble) {
  Must("CREATE TABLE t (x DOUBLE)");
  Must("INSERT INTO t VALUES (1), (2.5)");
  SqlResult sum = Must("SELECT SUM(x) FROM t");
  EXPECT_DOUBLE_EQ(sum.batch.column(0).DoubleAt(0), 3.5);
}

TEST_F(SqlSessionTest, AggregatesAndGroupBy) {
  Must("CREATE TABLE s (region TEXT, rev DOUBLE)");
  Must("INSERT INTO s VALUES ('e', 1.0), ('e', 2.0), ('w', 5.0)");
  SqlResult grouped = Must(
      "SELECT region, COUNT(*) AS n, SUM(rev) AS total FROM s "
      "GROUP BY region");
  ASSERT_EQ(grouped.batch.num_rows(), 2u);
  EXPECT_EQ(grouped.batch.schema().column(0).name, "region");
  EXPECT_EQ(grouped.batch.schema().column(1).name, "n");
  EXPECT_EQ(grouped.batch.schema().column(2).name, "total");
  std::map<std::string, std::pair<int64_t, double>> rows;
  for (size_t r = 0; r < grouped.batch.num_rows(); ++r) {
    rows[grouped.batch.column(0).StringAt(r)] = {
        grouped.batch.column(1).Int64At(r),
        grouped.batch.column(2).DoubleAt(r)};
  }
  EXPECT_EQ(rows["e"].first, 2);
  EXPECT_DOUBLE_EQ(rows["e"].second, 3.0);
  EXPECT_DOUBLE_EQ(rows["w"].second, 5.0);

  SqlResult global = Must("SELECT MIN(rev), MAX(rev), AVG(rev) FROM s");
  EXPECT_DOUBLE_EQ(global.batch.column(0).DoubleAt(0), 1.0);
  EXPECT_DOUBLE_EQ(global.batch.column(1).DoubleAt(0), 5.0);
  EXPECT_NEAR(global.batch.column(2).DoubleAt(0), 8.0 / 3, 1e-9);
}

TEST_F(SqlSessionTest, UpdateAndDelete) {
  Must("CREATE TABLE t (k BIGINT, v BIGINT)");
  Must("INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)");
  SqlResult updated = Must("UPDATE t SET v = v + 5 WHERE k >= 2");
  EXPECT_EQ(updated.affected_rows, 2u);
  SqlResult sum = Must("SELECT SUM(v) FROM t");
  EXPECT_EQ(sum.batch.column(0).Int64At(0), 10 + 25 + 35);
  SqlResult deleted = Must("DELETE FROM t WHERE k = 1");
  EXPECT_EQ(deleted.affected_rows, 1u);
  EXPECT_EQ(Must("SELECT COUNT(*) FROM t").batch.column(0).Int64At(0), 2);
}

TEST_F(SqlSessionTest, ExplicitTransactionCommitAndRollback) {
  Must("CREATE TABLE t (k BIGINT)");
  Must("BEGIN");
  EXPECT_TRUE(session_.in_transaction());
  Must("INSERT INTO t VALUES (1)");
  // Own writes visible inside the transaction.
  EXPECT_EQ(Must("SELECT COUNT(*) FROM t").batch.column(0).Int64At(0), 1);
  Must("ROLLBACK");
  EXPECT_FALSE(session_.in_transaction());
  EXPECT_EQ(Must("SELECT COUNT(*) FROM t").batch.column(0).Int64At(0), 0);

  Must("BEGIN TRANSACTION");
  Must("INSERT INTO t VALUES (2)");
  Must("COMMIT");
  EXPECT_EQ(Must("SELECT COUNT(*) FROM t").batch.column(0).Int64At(0), 1);
}

TEST_F(SqlSessionTest, SnapshotIsolationBetweenSessions) {
  Must("CREATE TABLE t (k BIGINT)");
  SqlSession other(&engine_);
  Must("BEGIN");
  Must("INSERT INTO t VALUES (1)");
  // The other session cannot see the uncommitted row.
  auto other_count = other.Execute("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(other_count.ok());
  EXPECT_EQ(other_count->batch.column(0).Int64At(0), 0);
  Must("COMMIT");
  other_count = other.Execute("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(other_count.ok());
  EXPECT_EQ(other_count->batch.column(0).Int64At(0), 1);
}

TEST_F(SqlSessionTest, ConflictingCommitReportsConflict) {
  Must("CREATE TABLE t (k BIGINT)");
  Must("INSERT INTO t VALUES (1), (2)");
  SqlSession other(&engine_);
  Must("BEGIN");
  Must("DELETE FROM t WHERE k = 1");
  // The other session deletes concurrently and commits first.
  ASSERT_TRUE(other.Execute("BEGIN").ok());
  ASSERT_TRUE(other.Execute("DELETE FROM t WHERE k = 2").ok());
  ASSERT_TRUE(other.Execute("COMMIT").ok());
  auto commit = session_.Execute("COMMIT");
  EXPECT_TRUE(commit.status().IsConflict());
  EXPECT_FALSE(session_.in_transaction());
  // Only the winner's delete took effect.
  EXPECT_EQ(Must("SELECT COUNT(*) FROM t").batch.column(0).Int64At(0), 1);
}

// A statement-level conflict inside an explicit transaction: an RCSI
// session holds a delete (DV) on a data file that a concurrent compaction
// rewrites away; the next statement's snapshot refresh surfaces Conflict
// and the session auto-aborts the transaction.
common::Status ProvokeStatementConflict(engine::PolarisEngine& engine,
                                        SqlSession& session) {
  POLARIS_RETURN_IF_ERROR(session.BeginTransaction(
      catalog::IsolationMode::kReadCommittedSnapshot));
  POLARIS_RETURN_IF_ERROR(
      session.Execute("DELETE FROM t WHERE k = 1").status());
  POLARIS_ASSIGN_OR_RETURN(auto meta, engine.GetTable("t"));
  POLARIS_ASSIGN_OR_RETURN(auto stats,
                           engine.sto()->CompactTable(meta.table_id));
  if (stats.input_files == 0) {
    return common::Status::Internal("compaction did not rewrite any file");
  }
  auto refreshed = session.Execute("SELECT COUNT(*) FROM t");
  if (!refreshed.status().IsConflict()) {
    return common::Status::Internal("expected statement-level conflict, got " +
                                    refreshed.status().ToString());
  }
  return common::Status::OK();
}

TEST(SqlSessionConflictTest, CommitAfterConflictAbortReportsConflict) {
  engine::EngineOptions options;
  options.num_cells = 1;  // both inserts land in one cell -> compactable
  engine::PolarisEngine engine(options);
  SqlSession session(&engine);
  ASSERT_TRUE(session.Execute("CREATE TABLE t (k BIGINT)").ok());
  ASSERT_TRUE(session.Execute("INSERT INTO t VALUES (1), (2)").ok());
  ASSERT_TRUE(session.Execute("INSERT INTO t VALUES (3), (4)").ok());

  auto provoked = ProvokeStatementConflict(engine, session);
  ASSERT_TRUE(provoked.ok()) << provoked.ToString();
  EXPECT_FALSE(session.in_transaction());
  EXPECT_TRUE(session.aborted_by_conflict());

  // Regression: the trailing COMMIT used to report FailedPrecondition
  // ("no open transaction"), masking the conflict-driven rollback.
  auto commit = session.Execute("COMMIT");
  EXPECT_TRUE(commit.status().IsConflict()) << commit.status().ToString();
  EXPECT_FALSE(session.aborted_by_conflict());

  // The acknowledgement is one-shot: the session is clean afterwards.
  EXPECT_TRUE(session.Execute("COMMIT").status().IsFailedPrecondition());
  auto count = session.Execute("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->batch.column(0).Int64At(0), 4);  // delete rolled back
}

TEST(SqlSessionConflictTest, RollbackAfterConflictAbortSucceeds) {
  engine::EngineOptions options;
  options.num_cells = 1;
  engine::PolarisEngine engine(options);
  SqlSession session(&engine);
  ASSERT_TRUE(session.Execute("CREATE TABLE t (k BIGINT)").ok());
  ASSERT_TRUE(session.Execute("INSERT INTO t VALUES (1), (2)").ok());
  ASSERT_TRUE(session.Execute("INSERT INTO t VALUES (3), (4)").ok());

  auto provoked = ProvokeStatementConflict(engine, session);
  ASSERT_TRUE(provoked.ok()) << provoked.ToString();

  // ROLLBACK acknowledges the rollback that already happened: success.
  auto rollback = session.Execute("ROLLBACK");
  ASSERT_TRUE(rollback.ok()) << rollback.status().ToString();
  EXPECT_FALSE(session.aborted_by_conflict());
  EXPECT_TRUE(session.Execute("ROLLBACK").status().IsFailedPrecondition());
}

TEST_F(SqlSessionTest, TimeTravelAsOf) {
  Must("CREATE TABLE t (k BIGINT)");
  Must("INSERT INTO t VALUES (1)");
  int64_t then = engine_.clock()->Now();
  engine_.clock()->Advance(10'000);
  Must("INSERT INTO t VALUES (2)");
  SqlResult old_rows = Must("SELECT COUNT(*) FROM t AS OF " +
                            std::to_string(then));
  EXPECT_EQ(old_rows.batch.column(0).Int64At(0), 1);
  EXPECT_EQ(Must("SELECT COUNT(*) FROM t").batch.column(0).Int64At(0), 2);
}

TEST_F(SqlSessionTest, CloneTableStatement) {
  Must("CREATE TABLE src (k BIGINT)");
  Must("INSERT INTO src VALUES (1), (2)");
  Must("CLONE TABLE src TO dst");
  EXPECT_EQ(Must("SELECT COUNT(*) FROM dst").batch.column(0).Int64At(0), 2);
  Must("DELETE FROM dst WHERE k = 1");
  EXPECT_EQ(Must("SELECT COUNT(*) FROM dst").batch.column(0).Int64At(0), 1);
  EXPECT_EQ(Must("SELECT COUNT(*) FROM src").batch.column(0).Int64At(0), 2);
}

TEST_F(SqlSessionTest, DropTable) {
  Must("CREATE TABLE t (k BIGINT)");
  Must("DROP TABLE t");
  EXPECT_TRUE(
      session_.Execute("SELECT * FROM t").status().IsNotFound());
}

TEST_F(SqlSessionTest, ErrorsAreSurfaced) {
  EXPECT_TRUE(
      session_.Execute("SELECT * FROM nope").status().IsNotFound());
  Must("CREATE TABLE t (k BIGINT)");
  EXPECT_TRUE(session_.Execute("INSERT INTO t VALUES (1, 2)")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(session_.Execute("INSERT INTO t VALUES ('nan')")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(session_.Execute("SELECT k, SUM(k) FROM t")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(session_.Execute("COMMIT").status().IsFailedPrecondition());
  EXPECT_TRUE(session_.Execute("ROLLBACK").status().IsFailedPrecondition());
  Must("BEGIN");
  EXPECT_TRUE(session_.Execute("BEGIN").status().IsFailedPrecondition());
  EXPECT_TRUE(session_.Execute("CREATE TABLE u (x BIGINT)")
                  .status()
                  .IsNotSupported());
  Must("ROLLBACK");
}

TEST_F(SqlSessionTest, OrderByAndLimit) {
  Must("CREATE TABLE t (k BIGINT, name TEXT)");
  Must("INSERT INTO t VALUES (3, 'c'), (1, 'a'), (2, 'b'), (1, 'z')");
  SqlResult asc = Must("SELECT k, name FROM t ORDER BY k, name");
  ASSERT_EQ(asc.batch.num_rows(), 4u);
  EXPECT_EQ(asc.batch.column(1).StringAt(0), "a");
  EXPECT_EQ(asc.batch.column(1).StringAt(1), "z");
  EXPECT_EQ(asc.batch.column(0).Int64At(3), 3);

  SqlResult desc = Must("SELECT k FROM t ORDER BY k DESC LIMIT 2");
  ASSERT_EQ(desc.batch.num_rows(), 2u);
  EXPECT_EQ(desc.batch.column(0).Int64At(0), 3);
  EXPECT_EQ(desc.batch.column(0).Int64At(1), 2);

  // ORDER BY on aggregate output columns works too.
  SqlResult grouped = Must(
      "SELECT name, COUNT(*) AS n FROM t GROUP BY name "
      "ORDER BY n DESC, name LIMIT 1");
  ASSERT_EQ(grouped.batch.num_rows(), 1u);
  // All names are distinct except none; counts all 1 -> first by name.
  EXPECT_EQ(grouped.batch.column(0).StringAt(0), "a");

  EXPECT_TRUE(session_.Execute("SELECT k FROM t ORDER BY ghost")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(session_.Execute("SELECT k FROM t LIMIT -1")
                  .status()
                  .IsInvalidArgument());
}

TEST_F(SqlSessionTest, Figure6ThroughSql) {
  // The paper's §4.2 worked example, driven entirely through the SQL
  // surface with two concurrent sessions.
  Must("CREATE TABLE T1 (C1 TEXT, C2 BIGINT)");
  Must("INSERT INTO T1 VALUES ('A', 1), ('B', 2), ('C', 3)");  // X1

  SqlSession x2(&engine_);
  SqlSession x3(&engine_);
  ASSERT_TRUE(x2.Execute("BEGIN").ok());
  ASSERT_TRUE(x3.Execute("BEGIN").ok());
  ASSERT_TRUE(x2.Execute("INSERT INTO T1 VALUES ('D', 4), ('E', 5)").ok());
  ASSERT_TRUE(x2.Execute("DELETE FROM T1 WHERE C1 = 'A'").ok());

  auto sum = [](SqlSession& session) {
    auto result = session.Execute("SELECT SUM(C2) FROM T1");
    EXPECT_TRUE(result.ok());
    return result->batch.column(0).Int64At(0);
  };
  EXPECT_EQ(sum(x2), 14);  // X2 sees its own changes
  EXPECT_EQ(sum(x3), 6);   // X3's snapshot is isolated
  ASSERT_TRUE(x2.Execute("COMMIT").ok());
  EXPECT_EQ(sum(x3), 6);   // still repeatable after X2 commits
  ASSERT_TRUE(x3.Execute("DELETE FROM T1 WHERE C1 = 'B'").ok());
  EXPECT_TRUE(x3.Execute("COMMIT").status().IsConflict());
  // X4: a fresh auto-commit read sees X1 + X2 only.
  EXPECT_EQ(Must("SELECT SUM(C2) FROM T1").batch.column(0).Int64At(0), 14);
}

TEST_F(SqlSessionTest, NullHandling) {
  Must("CREATE TABLE t (k BIGINT, v DOUBLE)");
  Must("INSERT INTO t VALUES (1, NULL), (2, 4.0)");
  // NULL never matches comparisons.
  EXPECT_EQ(Must("SELECT COUNT(*) FROM t WHERE v > 0")
                .batch.column(0)
                .Int64At(0),
            1);
  // COUNT(col) skips NULLs, COUNT(*) does not.
  EXPECT_EQ(Must("SELECT COUNT(v) FROM t").batch.column(0).Int64At(0), 1);
  EXPECT_EQ(Must("SELECT COUNT(*) FROM t").batch.column(0).Int64At(0), 2);
}

TEST_F(SqlSessionTest, ExplainAnalyzeRendersSpanTree) {
  Must("CREATE TABLE t (k BIGINT)");
  SqlResult profile = Must("EXPLAIN ANALYZE INSERT INTO t VALUES (1), (2)");
  // The statement still executes for real...
  EXPECT_EQ(profile.affected_rows, 2u);
  EXPECT_EQ(Must("SELECT COUNT(*) FROM t").batch.column(0).Int64At(0), 2);
  // ...and the message is the profile: a span tree rooted at the
  // statement, descending through the engine into manifest IO and at
  // least one storage blob op with its retry-count attributes.
  const std::string& tree = profile.message;
  EXPECT_NE(tree.find("sql.statement"), std::string::npos) << tree;
  EXPECT_NE(tree.find("kind=INSERT"), std::string::npos) << tree;
  EXPECT_NE(tree.find("engine.insert"), std::string::npos) << tree;
  EXPECT_NE(tree.find("lst.manifest."), std::string::npos) << tree;
  EXPECT_NE(tree.find("store."), std::string::npos) << tree;
  EXPECT_NE(tree.find("attempts="), std::string::npos) << tree;
  EXPECT_NE(tree.find("retries="), std::string::npos) << tree;
  EXPECT_NE(tree.find(" ms"), std::string::npos) << tree;
  // Children are indented under the root.
  EXPECT_NE(tree.find("\n  "), std::string::npos) << tree;

  // Profiling a query leaves the tracer state alone afterwards.
  SqlResult q = Must("EXPLAIN ANALYZE SELECT COUNT(*) FROM t");
  EXPECT_NE(q.message.find("engine.query"), std::string::npos) << q.message;
  EXPECT_FALSE(engine_.tracer()->enabled());
}

TEST_F(SqlSessionTest, ExplainAnalyzeErrorsSurfaceAndNestingRejected) {
  // Inner statement errors propagate as the statement's own error.
  EXPECT_TRUE(session_.Execute("EXPLAIN ANALYZE SELECT * FROM nope")
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(session_.Execute("EXPLAIN ANALYZE EXPLAIN ANALYZE SELECT 1")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(
      session_.Execute("EXPLAIN SELECT 1").status().IsInvalidArgument());
}

}  // namespace
}  // namespace polaris::sql
