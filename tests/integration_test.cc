// Cross-module integration tests: concurrent transaction stress with
// conservation invariants, task/node failure injection end-to-end,
// storage fault injection, and maintenance running alongside user work.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "engine/engine.h"
#include "storage/fault_injection_store.h"
#include "storage/memory_object_store.h"

namespace polaris {
namespace {

using catalog::IsolationMode;
using common::Status;
using exec::AggFunc;
using exec::CompareOp;
using exec::Conjunction;
using exec::Predicate;
using format::ColumnType;
using format::RecordBatch;
using format::Schema;
using format::Value;

Schema AccountSchema() {
  return Schema({{"account", ColumnType::kInt64},
                 {"balance", ColumnType::kInt64}});
}

RecordBatch AccountRows(std::vector<std::pair<int64_t, int64_t>> rows) {
  RecordBatch batch{AccountSchema()};
  for (auto& [account, balance] : rows) {
    EXPECT_TRUE(
        batch.AppendRow({Value::Int64(account), Value::Int64(balance)}).ok());
  }
  return batch;
}

int64_t TotalBalance(engine::PolarisEngine& engine,
                     const std::string& table) {
  auto txn = engine.Begin();
  EXPECT_TRUE(txn.ok());
  engine::QuerySpec spec;
  spec.aggregates = {{AggFunc::kSum, "balance", "total"}};
  auto result = engine.Query(txn->get(), table, spec);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  (void)engine.Abort(txn->get());
  return result->column(0).IsNull(0) ? 0 : result->column(0).Int64At(0);
}

int64_t CountRows(engine::PolarisEngine& engine, const std::string& table) {
  auto txn = engine.Begin();
  EXPECT_TRUE(txn.ok());
  engine::QuerySpec spec;
  spec.aggregates = {{AggFunc::kCount, "", "cnt"}};
  auto result = engine.Query(txn->get(), table, spec);
  EXPECT_TRUE(result.ok());
  (void)engine.Abort(txn->get());
  return result->column(0).Int64At(0);
}

TEST(IntegrationTest, ConcurrentTransfersConserveTotalBalance) {
  // The classic bank-transfer invariant under SI with retries: whatever
  // interleaving happens, money is conserved.
  engine::EngineOptions options;
  options.num_cells = 4;
  options.worker_threads = 2;
  engine::PolarisEngine engine(options);
  ASSERT_TRUE(engine.CreateTable("accounts", AccountSchema()).ok());
  ASSERT_TRUE(engine
                  .RunInTransaction([&](txn::Transaction* txn) {
                    return engine
                        .Insert(txn, "accounts",
                                AccountRows({{1, 1000}, {2, 1000}}))
                        .status();
                  })
                  .ok());

  constexpr int kThreads = 4;
  constexpr int kTransfersPerThread = 5;
  std::atomic<int> succeeded{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&engine, &succeeded, t] {
      for (int i = 0; i < kTransfersPerThread; ++i) {
        int64_t from = (t + i) % 2 == 0 ? 1 : 2;
        int64_t to = from == 1 ? 2 : 1;
        Status st = engine.RunInTransaction(
            [&](txn::Transaction* txn) -> Status {
              std::vector<exec::Assignment> debit = {
                  {"balance", exec::Assignment::Kind::kAddInt64,
                   Value::Int64(-10)}};
              std::vector<exec::Assignment> credit = {
                  {"balance", exec::Assignment::Kind::kAddInt64,
                   Value::Int64(10)}};
              Conjunction from_filter;
              from_filter.predicates.push_back(Predicate::Make(
                  "account", CompareOp::kEq, Value::Int64(from)));
              Conjunction to_filter;
              to_filter.predicates.push_back(Predicate::Make(
                  "account", CompareOp::kEq, Value::Int64(to)));
              POLARIS_RETURN_IF_ERROR(
                  engine.Update(txn, "accounts", from_filter, debit)
                      .status());
              POLARIS_RETURN_IF_ERROR(
                  engine.Update(txn, "accounts", to_filter, credit)
                      .status());
              return Status::OK();
            },
            IsolationMode::kSnapshot, /*max_attempts=*/20);
        if (st.ok()) succeeded.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_GT(succeeded.load(), 0);
  // Conservation: every committed transfer moved 10 from one account to
  // the other; the total is invariant.
  EXPECT_EQ(TotalBalance(engine, "accounts"), 2000);
  EXPECT_EQ(CountRows(engine, "accounts"), 2);
}

TEST(IntegrationTest, WriteTransactionsSurviveInjectedNodeFailures) {
  // Paper §4.3: a task failure during a write re-schedules the task; the
  // files from failed attempts are never referenced. With post-work
  // failures, every retried task leaves orphan blobs behind — the commit
  // must still produce exactly-once data.
  engine::EngineOptions options;
  options.num_cells = 8;
  options.worker_threads = 4;
  engine::PolarisEngine engine(options);
  dcp::TaskFailurePolicy policy;
  policy.failure_probability = 0.3;
  policy.after_work = true;
  policy.seed = 1234;
  engine.scheduler()->set_failure_policy(policy);

  ASSERT_TRUE(engine.CreateTable("t", AccountSchema()).ok());
  RecordBatch big{AccountSchema()};
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(big.AppendRow({Value::Int64(i), Value::Int64(1)}).ok());
  }
  ASSERT_TRUE(engine
                  .RunInTransaction([&](txn::Transaction* txn) {
                    return engine.Insert(txn, "t", big).status();
                  })
                  .ok());
  // Exactly-once semantics despite retries.
  EXPECT_EQ(CountRows(engine, "t"), 1000);
  EXPECT_EQ(TotalBalance(engine, "t"), 1000);

  // Orphan blobs from abandoned attempts exist, and GC reclaims them.
  engine.scheduler()->set_failure_policy(dcp::TaskFailurePolicy{});
  engine.clock()->Advance(10'000'000);
  auto gc = engine.sto()->RunGarbageCollection();
  ASSERT_TRUE(gc.ok());
  EXPECT_GT(gc->blobs_deleted, 0u);
  EXPECT_EQ(CountRows(engine, "t"), 1000);
}

TEST(IntegrationTest, DeletesAndUpdatesSurviveInjectedNodeFailures) {
  engine::EngineOptions options;
  options.num_cells = 4;
  options.worker_threads = 4;
  engine::PolarisEngine engine(options);
  ASSERT_TRUE(engine.CreateTable("t", AccountSchema()).ok());
  RecordBatch rows{AccountSchema()};
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(rows.AppendRow({Value::Int64(i), Value::Int64(5)}).ok());
  }
  ASSERT_TRUE(engine
                  .RunInTransaction([&](txn::Transaction* txn) {
                    return engine.Insert(txn, "t", rows).status();
                  })
                  .ok());

  dcp::TaskFailurePolicy policy;
  policy.failure_probability = 0.3;
  policy.after_work = true;
  policy.seed = 77;
  engine.scheduler()->set_failure_policy(policy);

  Conjunction low_half;
  low_half.predicates.push_back(
      Predicate::Make("account", CompareOp::kLt, Value::Int64(100)));
  ASSERT_TRUE(engine
                  .RunInTransaction([&](txn::Transaction* txn) {
                    return engine.Delete(txn, "t", low_half).status();
                  })
                  .ok());
  EXPECT_EQ(CountRows(engine, "t"), 100);

  std::vector<exec::Assignment> bump = {
      {"balance", exec::Assignment::Kind::kAddInt64, Value::Int64(1)}};
  ASSERT_TRUE(engine
                  .RunInTransaction([&](txn::Transaction* txn) {
                    return engine.Update(txn, "t", Conjunction{}, bump)
                        .status();
                  })
                  .ok());
  EXPECT_EQ(TotalBalance(engine, "t"), 600);  // 100 rows x 6
}

TEST(IntegrationTest, TransientStorageFaultsAreRetriedByTasks) {
  // Wrap the store in a fault injector: write ops fail with probability
  // 0.2; the DCP retry loop must absorb them (Unavailable is retryable).
  common::SimClock clock(1'000'000);
  storage::MemoryObjectStore base(&clock);
  storage::FaultInjectionStore faulty(&base, /*seed=*/5);
  storage::FaultPolicy policy;
  policy.write_failure_probability = 0.2;
  faulty.set_policy(policy);

  engine::EngineOptions options;
  options.num_cells = 4;
  options.worker_threads = 2;
  engine::PolarisEngine engine(options, &faulty, &clock);
  ASSERT_TRUE(engine.CreateTable("t", AccountSchema()).ok());

  int successes = 0;
  for (int i = 0; i < 10; ++i) {
    Status st = engine.RunInTransaction([&](txn::Transaction* txn) {
      return engine
          .Insert(txn, "t", AccountRows({{i, 100}, {i + 1000, 100}}))
          .status();
    });
    // Faults on the FE commit path surface as Unavailable; the data path
    // retries are internal. Either way no partial state may appear.
    if (st.ok()) ++successes;
  }
  ASSERT_GT(successes, 0);
  EXPECT_GT(faulty.injected_failures(), 0u);
  EXPECT_EQ(CountRows(engine, "t"), successes * 2);
  EXPECT_EQ(TotalBalance(engine, "t"), successes * 200);
}

TEST(IntegrationTest, MaintenanceRunsConcurrentlyWithUserWork) {
  // STO sweeps interleaved with user transactions: user data is never
  // corrupted; conflicts only ever abort one side cleanly.
  engine::EngineOptions options;
  options.num_cells = 2;
  options.worker_threads = 2;
  options.sto_options.min_file_rows = 4;
  options.sto_options.manifests_per_checkpoint = 4;
  engine::PolarisEngine engine(options);
  ASSERT_TRUE(engine.CreateTable("t", AccountSchema()).ok());

  std::atomic<bool> stop{false};
  std::thread maintenance([&engine, &stop] {
    while (!stop.load()) {
      Status st = engine.sto()->RunOnce();
      ASSERT_TRUE(st.ok() || st.IsConflict()) << st.ToString();
    }
  });

  int64_t inserted = 0;
  for (int round = 0; round < 20; ++round) {
    Status st = engine.RunInTransaction(
        [&](txn::Transaction* txn) {
          return engine
              .Insert(txn, "t", AccountRows({{round, 1}, {round + 100, 1}}))
              .status();
        },
        IsolationMode::kSnapshot, /*max_attempts=*/10);
    if (st.ok()) inserted += 2;
    if (round % 5 == 4) {
      Conjunction filter;
      filter.predicates.push_back(Predicate::Make(
          "account", CompareOp::kEq, Value::Int64(round - 1)));
      Status del = engine.RunInTransaction(
          [&](txn::Transaction* txn) -> Status {
            auto n = engine.Delete(txn, "t", filter);
            POLARIS_RETURN_IF_ERROR(n.status());
            return Status::OK();
          },
          IsolationMode::kSnapshot, /*max_attempts=*/10);
      (void)del;
    }
  }
  stop.store(true);
  maintenance.join();

  // Every committed insert contributed exactly its rows; sum == count.
  EXPECT_EQ(TotalBalance(engine, "t"), CountRows(engine, "t"));
  EXPECT_GT(inserted, 0);
}

TEST(IntegrationTest, ManyTablesManyTransactions) {
  engine::EngineOptions options;
  options.num_cells = 2;
  options.worker_threads = 2;
  engine::PolarisEngine engine(options);
  constexpr int kTables = 8;
  for (int t = 0; t < kTables; ++t) {
    ASSERT_TRUE(
        engine.CreateTable("t" + std::to_string(t), AccountSchema()).ok());
  }
  // One multi-table transaction writing all of them atomically.
  ASSERT_TRUE(engine
                  .RunInTransaction([&](txn::Transaction* txn) -> Status {
                    for (int t = 0; t < kTables; ++t) {
                      POLARIS_RETURN_IF_ERROR(
                          engine
                              .Insert(txn, "t" + std::to_string(t),
                                      AccountRows({{t, t * 10}}))
                              .status());
                    }
                    return Status::OK();
                  })
                  .ok());
  for (int t = 0; t < kTables; ++t) {
    EXPECT_EQ(CountRows(engine, "t" + std::to_string(t)), 1);
    EXPECT_EQ(TotalBalance(engine, "t" + std::to_string(t)), t * 10);
  }
}

}  // namespace
}  // namespace polaris
