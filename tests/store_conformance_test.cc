// Object-store conformance suite: every ObjectStore implementation must
// satisfy the same contract — write-once Put, the Block Blob staging
// protocol (§3.2.2), generation-conditional commits, and deterministic
// listing — because the commit protocol's correctness rests on these
// semantics, not on any one backend. The suite is parameterized over all
// backends; backend-specific behavior (durability across reopen, on-disk
// layout) is tested separately at the bottom.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <thread>

#include "common/clock.h"
#include "storage/local_file_object_store.h"
#include "storage/memory_object_store.h"
#include "storage/retrying_object_store.h"

namespace polaris::storage {
namespace {

class StoreConformanceTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    clock_ = std::make_unique<common::SimClock>(500);
    if (GetParam() == "memory") {
      store_ = std::make_unique<MemoryObjectStore>(clock_.get());
    } else {
      const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
      root_ = std::filesystem::path(::testing::TempDir()) /
              (std::string("polaris_conformance_") + info->name());
      std::filesystem::remove_all(root_);
      auto local = std::make_unique<LocalFileObjectStore>(root_.string(),
                                                          clock_.get());
      ASSERT_TRUE(local->init_status().ok());
      store_ = std::move(local);
    }
  }

  void TearDown() override {
    store_.reset();
    if (!root_.empty()) std::filesystem::remove_all(root_);
  }

  ObjectStore& store() { return *store_; }

  std::unique_ptr<common::SimClock> clock_;
  std::unique_ptr<ObjectStore> store_;
  std::filesystem::path root_;
};

TEST_P(StoreConformanceTest, PutGetRoundTrip) {
  ASSERT_TRUE(store().Put("a/b", "hello").ok());
  auto got = store().Get("a/b");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "hello");
}

TEST_P(StoreConformanceTest, BlobsAreWriteOnce) {
  ASSERT_TRUE(store().Put("x", "v1").ok());
  EXPECT_TRUE(store().Put("x", "v2").IsAlreadyExists());
  EXPECT_EQ(*store().Get("x"), "v1");
}

TEST_P(StoreConformanceTest, GetMissingIsNotFound) {
  EXPECT_TRUE(store().Get("nope").status().IsNotFound());
  EXPECT_TRUE(store().Stat("nope").status().IsNotFound());
  EXPECT_TRUE(store().Delete("nope").IsNotFound());
}

TEST_P(StoreConformanceTest, StatReportsSizeCreationTimeAndGeneration) {
  ASSERT_TRUE(store().Put("f", "12345").ok());
  auto info = store().Stat("f");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->size, 5u);
  EXPECT_EQ(info->created_at, 500);
  EXPECT_EQ(info->generation, 1u);
}

TEST_P(StoreConformanceTest, ListFiltersByPrefixInOrder) {
  ASSERT_TRUE(store().Put("t/1/b", "1").ok());
  ASSERT_TRUE(store().Put("t/1/a", "2").ok());
  ASSERT_TRUE(store().Put("t/2/a", "3").ok());
  ASSERT_TRUE(store().Put("u/x", "4").ok());
  auto listed = store().List("t/1/");
  ASSERT_TRUE(listed.ok());
  ASSERT_EQ(listed->size(), 2u);
  EXPECT_EQ((*listed)[0].path, "t/1/a");
  EXPECT_EQ((*listed)[1].path, "t/1/b");
}

TEST_P(StoreConformanceTest, DeleteRemovesBlob) {
  ASSERT_TRUE(store().Put("x", "v").ok());
  ASSERT_TRUE(store().Delete("x").ok());
  EXPECT_TRUE(store().Get("x").status().IsNotFound());
}

TEST_P(StoreConformanceTest, DeleteDiscardsStagedBlocks) {
  // Deleting a blob also discards its staged (uncommitted) blocks, so a
  // later commit cannot resurrect them.
  ASSERT_TRUE(store().StageBlock("m", "b1", "ghost").ok());
  ASSERT_TRUE(store().Delete("m").ok());
  EXPECT_TRUE(store().CommitBlockList("m", {"b1"}).IsInvalidArgument());
}

// --- Block Blob protocol -----------------------------------------------------

TEST_P(StoreConformanceTest, StagedBlocksAreInvisibleUntilCommit) {
  ASSERT_TRUE(store().StageBlock("m", "b1", "alpha").ok());
  EXPECT_TRUE(store().Get("m").status().IsNotFound());
  ASSERT_TRUE(store().CommitBlockList("m", {"b1"}).ok());
  EXPECT_EQ(*store().Get("m"), "alpha");
}

TEST_P(StoreConformanceTest, CommitConcatenatesInListOrder) {
  ASSERT_TRUE(store().StageBlock("m", "b1", "A").ok());
  ASSERT_TRUE(store().StageBlock("m", "b2", "B").ok());
  ASSERT_TRUE(store().StageBlock("m", "b3", "C").ok());
  ASSERT_TRUE(store().CommitBlockList("m", {"b3", "b1"}).ok());
  EXPECT_EQ(*store().Get("m"), "CA");
  auto ids = store().GetCommittedBlockList("m");
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ(*ids, (std::vector<std::string>{"b3", "b1"}));
}

TEST_P(StoreConformanceTest, UncommittedBlocksAreDiscardedAtCommit) {
  // Blocks written by failed/abandoned task attempts are not in the final
  // list and vanish (paper §3.2.2).
  ASSERT_TRUE(store().StageBlock("m", "attempt1", "garbage").ok());
  ASSERT_TRUE(store().StageBlock("m", "attempt2", "good").ok());
  ASSERT_TRUE(store().CommitBlockList("m", {"attempt2"}).ok());
  EXPECT_EQ(*store().Get("m"), "good");
  // attempt1 is gone: recommitting with it must fail.
  EXPECT_TRUE(store().CommitBlockList("m", {"attempt2", "attempt1"})
                  .IsInvalidArgument());
}

TEST_P(StoreConformanceTest, AppendCommitReusesCommittedBlocks) {
  // Multi-statement inserts append: the new list mixes committed blocks
  // with newly staged ones (§3.2.3).
  ASSERT_TRUE(store().StageBlock("m", "s1", "one,").ok());
  ASSERT_TRUE(store().CommitBlockList("m", {"s1"}).ok());
  ASSERT_TRUE(store().StageBlock("m", "s2", "two").ok());
  ASSERT_TRUE(store().CommitBlockList("m", {"s1", "s2"}).ok());
  EXPECT_EQ(*store().Get("m"), "one,two");
}

TEST_P(StoreConformanceTest, RewriteCommitDropsOldBlocks) {
  // Update/delete statements rewrite the manifest to a single canonical
  // block; the old blocks are no longer referencable.
  ASSERT_TRUE(store().StageBlock("m", "old1", "x").ok());
  ASSERT_TRUE(store().CommitBlockList("m", {"old1"}).ok());
  ASSERT_TRUE(store().StageBlock("m", "new1", "reconciled").ok());
  ASSERT_TRUE(store().CommitBlockList("m", {"new1"}).ok());
  EXPECT_EQ(*store().Get("m"), "reconciled");
  EXPECT_TRUE(store().CommitBlockList("m", {"old1"}).IsInvalidArgument());
}

TEST_P(StoreConformanceTest, RestagingSameBlockIdOverwrites) {
  ASSERT_TRUE(store().StageBlock("m", "b", "v1").ok());
  ASSERT_TRUE(store().StageBlock("m", "b", "v2").ok());
  ASSERT_TRUE(store().CommitBlockList("m", {"b"}).ok());
  EXPECT_EQ(*store().Get("m"), "v2");
}

TEST_P(StoreConformanceTest, CommitWithUnknownIdFailsAtomically) {
  ASSERT_TRUE(store().StageBlock("m", "b1", "A").ok());
  ASSERT_TRUE(store().CommitBlockList("m", {"b1"}).ok());
  // Bad commit: blob state is unchanged.
  EXPECT_TRUE(
      store().CommitBlockList("m", {"b1", "ghost"}).IsInvalidArgument());
  EXPECT_EQ(*store().Get("m"), "A");
}

TEST_P(StoreConformanceTest, EmptyCommitCreatesEmptyBlob) {
  ASSERT_TRUE(store().CommitBlockList("m", {}).ok());
  EXPECT_EQ(*store().Get("m"), "");
}

TEST_P(StoreConformanceTest, PutAndBlockProtocolsDontMix) {
  ASSERT_TRUE(store().Put("p", "v").ok());
  EXPECT_TRUE(store().StageBlock("p", "b", "x").IsFailedPrecondition());
  EXPECT_TRUE(
      store().GetCommittedBlockList("p").status().IsFailedPrecondition());
  ASSERT_TRUE(store().StageBlock("m", "b", "x").ok());
  ASSERT_TRUE(store().CommitBlockList("m", {"b"}).ok());
  EXPECT_TRUE(store().Put("m", "v").IsAlreadyExists());
}

TEST_P(StoreConformanceTest, EmptyBlockIdRejected) {
  EXPECT_TRUE(store().StageBlock("m", "", "x").IsInvalidArgument());
}

TEST_P(StoreConformanceTest, ConcurrentStagingFromManyThreads) {
  // BE nodes stage blocks concurrently against the same manifest (§3.2.2).
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, t] {
      ASSERT_TRUE(store()
                      .StageBlock("m", "block" + std::to_string(t),
                                  std::string(1, static_cast<char>('a' + t)))
                      .ok());
    });
  }
  for (auto& th : threads) th.join();
  std::vector<std::string> ids;
  for (int t = 0; t < kThreads; ++t) ids.push_back("block" + std::to_string(t));
  ASSERT_TRUE(store().CommitBlockList("m", ids).ok());
  EXPECT_EQ(*store().Get("m"), "abcdefgh");
}

// --- Generation-conditional commits (ETags) ----------------------------------

TEST_P(StoreConformanceTest, GenerationAdvancesPerCommit) {
  ASSERT_TRUE(store().StageBlock("m", "b1", "A").ok());
  ASSERT_TRUE(store().CommitBlockList("m", {"b1"}).ok());
  EXPECT_EQ(store().Stat("m")->generation, 1u);
  ASSERT_TRUE(store().StageBlock("m", "b2", "B").ok());
  ASSERT_TRUE(store().CommitBlockList("m", {"b1", "b2"}).ok());
  EXPECT_EQ(store().Stat("m")->generation, 2u);
}

TEST_P(StoreConformanceTest, ConditionalCommitEnforcesExpectedGeneration) {
  // expected_generation 0 = blob must not exist yet.
  ASSERT_TRUE(store().StageBlock("m", "b1", "A").ok());
  ASSERT_TRUE(store().CommitBlockListIf("m", {"b1"}, 0).ok());
  // The blob now exists at generation 1; a second create-style commit
  // loses the race.
  ASSERT_TRUE(store().StageBlock("m", "b2", "B").ok());
  EXPECT_TRUE(store().CommitBlockListIf("m", {"b2"}, 0).IsFailedPrecondition());
  EXPECT_EQ(*store().Get("m"), "A");
  // Matching the current generation succeeds and advances it.
  ASSERT_TRUE(store().CommitBlockListIf("m", {"b1", "b2"}, 1).ok());
  EXPECT_EQ(*store().Get("m"), "AB");
  EXPECT_EQ(store().Stat("m")->generation, 2u);
  // A stale writer (still expecting generation 1) is rejected.
  ASSERT_TRUE(store().StageBlock("m", "b3", "C").ok());
  EXPECT_TRUE(store().CommitBlockListIf("m", {"b3"}, 1).IsFailedPrecondition());
  EXPECT_EQ(*store().Get("m"), "AB");
}

TEST_P(StoreConformanceTest, ConditionalCommitRejectionLeavesStagedBlocks) {
  // A losing conditional commit must not consume the writer's staged
  // blocks: it may re-read, re-validate and commit again.
  ASSERT_TRUE(store().StageBlock("m", "b1", "A").ok());
  ASSERT_TRUE(store().CommitBlockListIf("m", {"b1"}, 0).ok());
  ASSERT_TRUE(store().StageBlock("m", "b2", "B").ok());
  EXPECT_TRUE(store().CommitBlockListIf("m", {"b2"}, 5).IsFailedPrecondition());
  ASSERT_TRUE(store().CommitBlockListIf("m", {"b1", "b2"}, 1).ok());
  EXPECT_EQ(*store().Get("m"), "AB");
}

TEST_P(StoreConformanceTest, RacingConditionalCommitsHaveExactlyOneWinner) {
  // Two writers race CommitBlockListIf on the same blob at the same
  // expected generation — the fencing primitive the epoch lease and the
  // journal seal are built on. Exactly one CAS wins; the loser sees
  // FailedPrecondition. Each writer goes through its own retry decorator
  // to prove the loss is terminal: FailedPrecondition is a logical
  // outcome, not a transient fault, so it must never be retried (a retry
  // would hand a fenced writer a second shot at the blob).
  for (int round = 0; round < 20; ++round) {
    const std::string path = "race" + std::to_string(round);
    RetryingObjectStore w1(&store(), clock_.get());
    RetryingObjectStore w2(&store(), clock_.get());
    ASSERT_TRUE(w1.StageBlock(path, "a", "ONE").ok());
    ASSERT_TRUE(w2.StageBlock(path, "b", "TWO").ok());
    common::Status s1, s2;
    std::thread t1([&] { s1 = w1.CommitBlockListIf(path, {"a"}, 0); });
    std::thread t2([&] { s2 = w2.CommitBlockListIf(path, {"b"}, 0); });
    t1.join();
    t2.join();
    ASSERT_NE(s1.ok(), s2.ok())
        << "round " << round << ": " << s1.ToString() << " / "
        << s2.ToString();
    const common::Status& loser = s1.ok() ? s2 : s1;
    EXPECT_TRUE(loser.IsFailedPrecondition()) << loser.ToString();
    EXPECT_EQ(w1.total_retries(), 0u) << "CAS loss was retried";
    EXPECT_EQ(w2.total_retries(), 0u) << "CAS loss was retried";
    // The blob holds exactly the winner's content at generation 1.
    EXPECT_EQ(*store().Get(path), s1.ok() ? "ONE" : "TWO");
    auto stat = store().Stat(path);
    ASSERT_TRUE(stat.ok());
    EXPECT_EQ(stat->generation, 1u);
    // The loser recovers by re-reading the new generation, re-staging
    // (the winner's commit discarded every staged block) and committing
    // behind the winner at the observed generation.
    const std::string winner_id = s1.ok() ? "a" : "b";
    const std::string loser_id = s1.ok() ? "b" : "a";
    const std::string loser_payload = s1.ok() ? "TWO" : "ONE";
    ASSERT_TRUE(store().StageBlock(path, loser_id, loser_payload).ok());
    ASSERT_TRUE(
        store().CommitBlockListIf(path, {winner_id, loser_id}, 1).ok());
    EXPECT_EQ(*store().Get(path),
              (s1.ok() ? std::string("ONE") : std::string("TWO")) +
                  loser_payload);
  }
}

INSTANTIATE_TEST_SUITE_P(AllStores, StoreConformanceTest,
                         ::testing::Values("memory", "local_file"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

// --- LocalFileObjectStore-specific durability --------------------------------

class LocalFileStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    root_ = std::filesystem::path(::testing::TempDir()) /
            (std::string("polaris_localfs_") + info->name());
    std::filesystem::remove_all(root_);
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  std::unique_ptr<LocalFileObjectStore> Open(common::Clock* clock = nullptr) {
    auto store = std::make_unique<LocalFileObjectStore>(root_.string(), clock);
    EXPECT_TRUE(store->init_status().ok()) << store->init_status().ToString();
    return store;
  }

  std::filesystem::path root_;
};

TEST_F(LocalFileStoreTest, CommittedBlobsSurviveReopen) {
  common::SimClock clock(1'000);
  {
    auto store = Open(&clock);
    ASSERT_TRUE(store->Put("tables/1/data/f.parquet", "payload").ok());
    ASSERT_TRUE(store->StageBlock("tables/1/manifests/m", "b1", "one,").ok());
    ASSERT_TRUE(store->StageBlock("tables/1/manifests/m", "b2", "two").ok());
    ASSERT_TRUE(
        store->CommitBlockList("tables/1/manifests/m", {"b1", "b2"}).ok());
  }
  auto store = Open(&clock);
  EXPECT_EQ(*store->Get("tables/1/data/f.parquet"), "payload");
  EXPECT_EQ(*store->Get("tables/1/manifests/m"), "one,two");
  auto ids = store->GetCommittedBlockList("tables/1/manifests/m");
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ(*ids, (std::vector<std::string>{"b1", "b2"}));
  auto info = store->Stat("tables/1/data/f.parquet");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->created_at, 1'000);
  EXPECT_EQ(info->generation, 1u);
}

TEST_F(LocalFileStoreTest, StagedBlocksAreSweptOnReopen) {
  // Uncommitted staged blocks are crash litter: a reopen discards them,
  // exactly like Azure discards uncommitted blocks (§3.2.2).
  {
    auto store = Open();
    ASSERT_TRUE(store->StageBlock("m", "b1", "half-written").ok());
    EXPECT_EQ(store->StagedBlockCount(), 1u);
  }
  auto store = Open();
  EXPECT_EQ(store->StagedBlockCount(), 0u);
  EXPECT_EQ(store->swept_staged_blocks(), 1u);
  EXPECT_TRUE(store->CommitBlockList("m", {"b1"}).IsInvalidArgument());
  EXPECT_TRUE(store->Get("m").status().IsNotFound());
}

TEST_F(LocalFileStoreTest, GenerationPersistsAcrossReopen) {
  {
    auto store = Open();
    ASSERT_TRUE(store->StageBlock("m", "b1", "A").ok());
    ASSERT_TRUE(store->CommitBlockList("m", {"b1"}).ok());
    ASSERT_TRUE(store->StageBlock("m", "b2", "B").ok());
    ASSERT_TRUE(store->CommitBlockList("m", {"b1", "b2"}).ok());
  }
  auto store = Open();
  EXPECT_EQ(store->Stat("m")->generation, 2u);
  // Conditional writes keep working against the persisted generation.
  ASSERT_TRUE(store->StageBlock("m", "b3", "C").ok());
  EXPECT_TRUE(store->CommitBlockListIf("m", {"b3"}, 1).IsFailedPrecondition());
  ASSERT_TRUE(store->CommitBlockListIf("m", {"b1", "b2", "b3"}, 2).ok());
  EXPECT_EQ(*store->Get("m"), "ABC");
}

TEST_F(LocalFileStoreTest, HostilePathSegmentsRoundTrip) {
  auto store = Open();
  const std::vector<std::string> paths = {
      "tables/1/data/with space.parquet",
      "weird/%already%encoded",
      "dots/../escape-attempt",
      "unicode/café",
  };
  for (const auto& p : paths) {
    ASSERT_TRUE(store->Put(p, "v:" + p).ok()) << p;
  }
  for (const auto& p : paths) {
    EXPECT_EQ(*store->Get(p), "v:" + p) << p;
  }
  auto listed = store->List("");
  ASSERT_TRUE(listed.ok());
  EXPECT_EQ(listed->size(), paths.size());
  // Nothing escaped the store root.
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(root_)) {
    auto rel = std::filesystem::relative(entry.path(), root_);
    EXPECT_FALSE(rel.string().starts_with("..")) << entry.path();
  }
}

TEST_F(LocalFileStoreTest, MaxCreatedAtTracksPersistedBlobs) {
  common::SimClock clock(2'000);
  {
    auto store = Open(&clock);
    ASSERT_TRUE(store->Put("a", "1").ok());
    clock.Advance(500);
    ASSERT_TRUE(store->Put("b", "2").ok());
  }
  common::SimClock fresh(0);
  auto store = Open(&fresh);
  EXPECT_EQ(store->max_created_at(), 2'500);
}

}  // namespace
}  // namespace polaris::storage
