// Tests for the transaction manager — the paper's core contribution:
// Snapshot Isolation over log-structured tables, multi-statement and
// multi-table transactions, conflict granularities, and the Figure 6
// worked example.

#include <gtest/gtest.h>

#include "catalog/catalog_db.h"
#include "common/clock.h"
#include "exec/dml.h"
#include "exec/scan.h"
#include "lst/manifest_io.h"
#include "lst/snapshot_builder.h"
#include "storage/memory_object_store.h"
#include "txn/transaction_manager.h"

namespace polaris::txn {
namespace {

using catalog::IsolationMode;
using catalog::TableMeta;
using exec::CompareOp;
using exec::Conjunction;
using exec::Predicate;
using format::ColumnType;
using format::RecordBatch;
using format::Schema;
using format::Value;

class TxnTest : public ::testing::Test {
 protected:
  TxnTest()
      : clock_(1'000'000),
        store_(&clock_),
        catalog_(&clock_),
        builder_(&store_),
        cache_(&store_),
        topology_(dcp::Topology::ReadWritePools()),
        scheduler_(&topology_, 2),
        manager_(&catalog_, &store_, &builder_, &clock_, options_) {}

  /// T1 from Figure 6: columns C1 (string) and C2 (int64).
  Schema Fig6Schema() {
    return Schema({{"C1", ColumnType::kString}, {"C2", ColumnType::kInt64}});
  }

  TableMeta MustCreateTable(const std::string& name, const Schema& schema) {
    auto txn = catalog_.Begin();
    auto meta = catalog_.CreateTable(txn.get(), name, schema);
    EXPECT_TRUE(meta.ok());
    EXPECT_TRUE(catalog_.Commit(txn.get(), {}).ok());
    return *meta;
  }

  exec::DmlContext MakeContext(const TableMeta& meta,
                               const std::string& manifest_path) {
    exec::DmlContext ctx;
    ctx.store = &store_;
    ctx.cache = &cache_;
    ctx.scheduler = &scheduler_;
    ctx.table_id = meta.table_id;
    ctx.schema = meta.schema;
    ctx.manifest_path = manifest_path;
    ctx.num_cells = 4;
    ctx.distribution_column = 0;
    return ctx;
  }

  common::Status Insert(Transaction* txn, const TableMeta& meta,
                        const RecordBatch& rows) {
    auto path = manager_.PrepareWrite(txn, meta.table_id);
    POLARIS_RETURN_IF_ERROR(path.status());
    auto result = exec::InsertExecutor::Run(MakeContext(meta, *path), rows);
    POLARIS_RETURN_IF_ERROR(result.status());
    return manager_.FinishInsertStatement(txn, meta.table_id, *result);
  }

  common::Status DeleteWhere(Transaction* txn, const TableMeta& meta,
                             const Conjunction& filter) {
    auto path = manager_.PrepareWrite(txn, meta.table_id);
    POLARIS_RETURN_IF_ERROR(path.status());
    auto snapshot = manager_.GetSnapshot(txn, meta.table_id);
    POLARIS_RETURN_IF_ERROR(snapshot.status());
    auto result = exec::DeleteExecutor::Run(MakeContext(meta, *path),
                                            *snapshot, filter);
    POLARIS_RETURN_IF_ERROR(result.status());
    if (result->rows_affected == 0) return common::Status::OK();
    return manager_.FinishMutationStatement(txn, meta.table_id, *result);
  }

  common::Status UpdateWhere(Transaction* txn, const TableMeta& meta,
                             const Conjunction& filter,
                             const std::vector<exec::Assignment>& set) {
    auto path = manager_.PrepareWrite(txn, meta.table_id);
    POLARIS_RETURN_IF_ERROR(path.status());
    auto snapshot = manager_.GetSnapshot(txn, meta.table_id);
    POLARIS_RETURN_IF_ERROR(snapshot.status());
    auto result = exec::UpdateExecutor::Run(MakeContext(meta, *path),
                                            *snapshot, filter, set);
    POLARIS_RETURN_IF_ERROR(result.status());
    if (result->rows_affected == 0) return common::Status::OK();
    return manager_.FinishMutationStatement(txn, meta.table_id, *result);
  }

  /// SUM over an int64 column as seen by `txn`.
  int64_t Sum(Transaction* txn, const TableMeta& meta,
              const std::string& column) {
    auto snapshot = manager_.GetSnapshot(txn, meta.table_id);
    EXPECT_TRUE(snapshot.ok()) << snapshot.status().ToString();
    exec::TableScanner scanner(&cache_, &*snapshot);
    exec::ScanOptions options;
    options.projection = {column};
    auto batch = scanner.ScanAll(options);
    EXPECT_TRUE(batch.ok()) << batch.status().ToString();
    int64_t total = 0;
    for (size_t r = 0; r < batch->num_rows(); ++r) {
      total += batch->column(0).Int64At(r);
    }
    return total;
  }

  RecordBatch Rows(std::vector<std::pair<std::string, int64_t>> rows) {
    RecordBatch batch{Fig6Schema()};
    for (auto& [c1, c2] : rows) {
      EXPECT_TRUE(
          batch.AppendRow({Value::String(c1), Value::Int64(c2)}).ok());
    }
    return batch;
  }

  Conjunction WhereC1Is(const std::string& v) {
    Conjunction conj;
    conj.predicates.push_back(
        Predicate::Make("C1", CompareOp::kEq, Value::String(v)));
    return conj;
  }

  txn::TransactionManagerOptions options_;
  common::SimClock clock_;
  storage::MemoryObjectStore store_;
  catalog::CatalogDb catalog_;
  lst::SnapshotBuilder builder_;
  exec::DataCache cache_;
  dcp::Topology topology_;
  dcp::Scheduler scheduler_;
  TransactionManager manager_;
};

TEST_F(TxnTest, Figure6WorkedExample) {
  TableMeta t1 = MustCreateTable("T1", Fig6Schema());

  // t=t1: X1 loads three rows and commits.
  {
    auto x1 = manager_.Begin();
    ASSERT_TRUE(x1.ok());
    ASSERT_TRUE(
        Insert(x1->get(), t1, Rows({{"A", 1}, {"B", 2}, {"C", 3}})).ok());
    ASSERT_TRUE(manager_.Commit(x1->get()).ok());
  }
  clock_.Advance(1000);

  // t=t2: X2 and X3 start.
  auto x2 = manager_.Begin();
  auto x3 = manager_.Begin();
  ASSERT_TRUE(x2.ok());
  ASSERT_TRUE(x3.ok());

  // X2 inserts (D,4), (E,5) and deletes (A,1).
  ASSERT_TRUE(Insert(x2->get(), t1, Rows({{"D", 4}, {"E", 5}})).ok());
  ASSERT_TRUE(DeleteWhere(x2->get(), t1, WhereC1Is("A")).ok());
  // X2 sees its own changes: 2+3+4+5 = 14.
  EXPECT_EQ(Sum(x2->get(), t1, "C2"), 14);

  // X3 reads under SI: SUM(C2) = 6, unaffected by X2's private changes.
  EXPECT_EQ(Sum(x3->get(), t1, "C2"), 6);

  // t=t3: X2 commits (no conflicts).
  ASSERT_TRUE(manager_.Commit(x2->get()).ok());
  clock_.Advance(1000);

  // X3 still sees its snapshot (6), then deletes (B,2) without blocking.
  EXPECT_EQ(Sum(x3->get(), t1, "C2"), 6);
  ASSERT_TRUE(DeleteWhere(x3->get(), t1, WhereC1Is("B")).ok());

  // t=t4: X3's commit detects the SI conflict in WriteSets and rolls back.
  EXPECT_TRUE(manager_.Commit(x3->get()).IsConflict());

  // X4 starts at t4: sees all of X1 and X2 -> SUM = 2+3+4+5 = 14.
  auto x4 = manager_.Begin();
  ASSERT_TRUE(x4.ok());
  EXPECT_EQ(Sum(x4->get(), t1, "C2"), 14);
  ASSERT_TRUE(manager_.Abort(x4->get()).ok());
}

TEST_F(TxnTest, UncommittedChangesInvisibleToOthers) {
  TableMeta t = MustCreateTable("t", Fig6Schema());
  auto writer = manager_.Begin();
  ASSERT_TRUE(Insert(writer->get(), t, Rows({{"A", 1}})).ok());
  auto reader = manager_.Begin();
  EXPECT_EQ(Sum(reader->get(), t, "C2"), 0);  // no dirty reads
  ASSERT_TRUE(manager_.Commit(writer->get()).ok());
  // Snapshot reader still sees nothing (repeatable reads).
  EXPECT_EQ(Sum(reader->get(), t, "C2"), 0);
  // A new transaction sees the commit.
  auto late = manager_.Begin();
  EXPECT_EQ(Sum(late->get(), t, "C2"), 1);
}

TEST_F(TxnTest, MultiStatementReconciliation) {
  // Two updates touching the same rows in one transaction: the final
  // manifest must not reference the intermediate statement's files
  // (§3.2.3).
  TableMeta t = MustCreateTable("t", Fig6Schema());
  {
    auto setup = manager_.Begin();
    ASSERT_TRUE(Insert(setup->get(), t, Rows({{"A", 1}, {"B", 2}})).ok());
    ASSERT_TRUE(manager_.Commit(setup->get()).ok());
  }
  auto txn = manager_.Begin();
  std::vector<exec::Assignment> add_ten = {
      {"C2", exec::Assignment::Kind::kAddInt64, Value::Int64(10)}};
  ASSERT_TRUE(UpdateWhere(txn->get(), t, WhereC1Is("A"), add_ten).ok());
  EXPECT_EQ(Sum(txn->get(), t, "C2"), 13);  // own write visible (11+2)
  ASSERT_TRUE(UpdateWhere(txn->get(), t, WhereC1Is("A"), add_ten).ok());
  EXPECT_EQ(Sum(txn->get(), t, "C2"), 23);  // 21+2

  // Inspect the reconciled transaction manifest: the intermediate update's
  // data file (created by statement 1, obsoleted by statement 2) must not
  // appear at all.
  auto path = manager_.PrepareWrite(txn->get(), t.table_id);
  ASSERT_TRUE(path.ok());
  lst::ManifestCommitter committer(&store_);
  auto entries = committer.ReadManifest(*path);
  ASSERT_TRUE(entries.ok());
  int adds = 0;
  for (const auto& entry : *entries) {
    if (entry.type == lst::ActionType::kAddDataFile) ++adds;
  }
  EXPECT_EQ(adds, 1);  // only the final version's file

  ASSERT_TRUE(manager_.Commit(txn->get()).ok());
  auto check = manager_.Begin();
  EXPECT_EQ(Sum(check->get(), t, "C2"), 23);
}

TEST_F(TxnTest, MultiTableTransactionIsAtomic) {
  TableMeta a = MustCreateTable("a", Fig6Schema());
  TableMeta b = MustCreateTable("b", Fig6Schema());
  {
    auto txn = manager_.Begin();
    ASSERT_TRUE(Insert(txn->get(), a, Rows({{"x", 10}})).ok());
    ASSERT_TRUE(Insert(txn->get(), b, Rows({{"y", 20}})).ok());
    ASSERT_TRUE(manager_.Commit(txn->get()).ok());
  }
  auto reader = manager_.Begin();
  EXPECT_EQ(Sum(reader->get(), a, "C2"), 10);
  EXPECT_EQ(Sum(reader->get(), b, "C2"), 20);

  // Aborted multi-table transaction leaves no trace in either table.
  {
    auto txn = manager_.Begin();
    ASSERT_TRUE(Insert(txn->get(), a, Rows({{"x2", 1}})).ok());
    ASSERT_TRUE(Insert(txn->get(), b, Rows({{"y2", 2}})).ok());
    ASSERT_TRUE(manager_.Abort(txn->get()).ok());
  }
  auto reader2 = manager_.Begin();
  EXPECT_EQ(Sum(reader2->get(), a, "C2"), 10);
  EXPECT_EQ(Sum(reader2->get(), b, "C2"), 20);
}

TEST_F(TxnTest, ConcurrentInsertersBothCommit) {
  TableMeta t = MustCreateTable("t", Fig6Schema());
  auto t1 = manager_.Begin();
  auto t2 = manager_.Begin();
  ASSERT_TRUE(Insert(t1->get(), t, Rows({{"A", 1}})).ok());
  ASSERT_TRUE(Insert(t2->get(), t, Rows({{"B", 2}})).ok());
  EXPECT_TRUE(manager_.Commit(t1->get()).ok());
  EXPECT_TRUE(manager_.Commit(t2->get()).ok());
  auto reader = manager_.Begin();
  EXPECT_EQ(Sum(reader->get(), t, "C2"), 3);
}

TEST_F(TxnTest, ConcurrentDeletersConflictAtTableGranularity) {
  TableMeta t = MustCreateTable("t", Fig6Schema());
  {
    auto setup = manager_.Begin();
    ASSERT_TRUE(Insert(setup->get(), t, Rows({{"A", 1}, {"B", 2}})).ok());
    ASSERT_TRUE(manager_.Commit(setup->get()).ok());
  }
  auto t1 = manager_.Begin();
  auto t2 = manager_.Begin();
  ASSERT_TRUE(DeleteWhere(t1->get(), t, WhereC1Is("A")).ok());
  ASSERT_TRUE(DeleteWhere(t2->get(), t, WhereC1Is("B")).ok());
  EXPECT_TRUE(manager_.Commit(t1->get()).ok());
  // Table-granularity: even disjoint-row deletes conflict.
  EXPECT_TRUE(manager_.Commit(t2->get()).IsConflict());
}

TEST_F(TxnTest, AbortedTransactionLeavesOrphansForGc) {
  TableMeta t = MustCreateTable("t", Fig6Schema());
  size_t before = store_.BlobCount();
  auto txn = manager_.Begin();
  ASSERT_TRUE(Insert(txn->get(), t, Rows({{"A", 1}})).ok());
  ASSERT_TRUE(manager_.Abort(txn->get()).ok());
  // Files remain physically (data file + manifest blob) but are invisible:
  EXPECT_GT(store_.BlobCount(), before);
  auto reader = manager_.Begin();
  EXPECT_EQ(Sum(reader->get(), t, "C2"), 0);
}

TEST_F(TxnTest, ReadOnlyTransactionNeverConflicts) {
  TableMeta t = MustCreateTable("t", Fig6Schema());
  auto reader = manager_.Begin();
  EXPECT_EQ(Sum(reader->get(), t, "C2"), 0);
  auto writer = manager_.Begin();
  ASSERT_TRUE(Insert(writer->get(), t, Rows({{"A", 5}})).ok());
  ASSERT_TRUE(manager_.Commit(writer->get()).ok());
  EXPECT_TRUE(manager_.Commit(reader->get()).ok());
}

TEST_F(TxnTest, RcsiSeesConcurrentCommits) {
  TableMeta t = MustCreateTable("t", Fig6Schema());
  auto rcsi = manager_.Begin(IsolationMode::kReadCommittedSnapshot);
  ASSERT_TRUE(rcsi.ok());
  EXPECT_EQ(Sum(rcsi->get(), t, "C2"), 0);
  {
    auto writer = manager_.Begin();
    ASSERT_TRUE(Insert(writer->get(), t, Rows({{"A", 7}})).ok());
    ASSERT_TRUE(manager_.Commit(writer->get()).ok());
  }
  // RCSI refreshes to the latest committed state per statement (§4.4.2).
  EXPECT_EQ(Sum(rcsi->get(), t, "C2"), 7);
}

TEST_F(TxnTest, RcsiKeepsOwnWritesAcrossRefresh) {
  TableMeta t = MustCreateTable("t", Fig6Schema());
  auto rcsi = manager_.Begin(IsolationMode::kReadCommittedSnapshot);
  ASSERT_TRUE(Insert(rcsi->get(), t, Rows({{"mine", 100}})).ok());
  {
    auto writer = manager_.Begin();
    ASSERT_TRUE(Insert(writer->get(), t, Rows({{"other", 10}})).ok());
    ASSERT_TRUE(manager_.Commit(writer->get()).ok());
  }
  // Sees both the concurrent commit and its own uncommitted insert.
  EXPECT_EQ(Sum(rcsi->get(), t, "C2"), 110);
}

TEST_F(TxnTest, TimeTravelSnapshotAsOf) {
  TableMeta t = MustCreateTable("t", Fig6Schema());
  {
    auto txn = manager_.Begin();
    ASSERT_TRUE(Insert(txn->get(), t, Rows({{"A", 1}})).ok());
    ASSERT_TRUE(manager_.Commit(txn->get()).ok());
  }
  common::Micros before_second = clock_.Now();
  clock_.Advance(10'000);
  {
    auto txn = manager_.Begin();
    ASSERT_TRUE(Insert(txn->get(), t, Rows({{"B", 2}})).ok());
    ASSERT_TRUE(manager_.Commit(txn->get()).ok());
  }
  auto reader = manager_.Begin();
  auto old_snap =
      manager_.GetSnapshotAsOf(reader->get(), t.table_id, before_second);
  ASSERT_TRUE(old_snap.ok());
  EXPECT_EQ(old_snap->total_rows(), 1u);
  auto now_snap = manager_.GetSnapshot(reader->get(), t.table_id);
  ASSERT_TRUE(now_snap.ok());
  EXPECT_EQ(now_snap->total_rows(), 2u);
}

TEST_F(TxnTest, FinishedTransactionRejectsFurtherWork) {
  TableMeta t = MustCreateTable("t", Fig6Schema());
  auto txn = manager_.Begin();
  ASSERT_TRUE(manager_.Commit(txn->get()).ok());
  EXPECT_TRUE(
      manager_.GetSnapshot(txn->get(), t.table_id).status().IsFailedPrecondition());
  EXPECT_TRUE(manager_.Commit(txn->get()).IsFailedPrecondition());
  EXPECT_TRUE(manager_.Abort(txn->get()).IsFailedPrecondition());
}

TEST_F(TxnTest, ActiveTransactionTrackingForGc) {
  EXPECT_EQ(manager_.active_transactions(), 0u);
  common::Micros t0 = clock_.Now();
  auto txn = manager_.Begin();
  clock_.Advance(1000);
  EXPECT_EQ(manager_.active_transactions(), 1u);
  EXPECT_EQ(manager_.MinActiveBeginTime(), t0);
  ASSERT_TRUE(manager_.Abort(txn->get()).ok());
  EXPECT_EQ(manager_.active_transactions(), 0u);
  // With none active, the horizon is "now".
  EXPECT_EQ(manager_.MinActiveBeginTime(), clock_.Now());
}

class FileGranularityTxnTest : public TxnTest {
 protected:
  FileGranularityTxnTest() {
    // Reconfigure: conflicts at data-file granularity (§4.4.1).
  }
  void SetUp() override {
    options_.granularity = catalog::ConflictGranularity::kDataFile;
    file_manager_ = std::make_unique<TransactionManager>(
        &catalog_, &store_, &builder_, &clock_, options_);
  }
  std::unique_ptr<TransactionManager> file_manager_;
};

TEST_F(FileGranularityTxnTest, DisjointFileDeletesBothCommit) {
  TableMeta t = MustCreateTable("t", Fig6Schema());
  // Two committed inserts -> two separate data files (different txns).
  {
    auto txn = file_manager_->Begin();
    auto path = file_manager_->PrepareWrite(txn->get(), t.table_id);
    ASSERT_TRUE(path.ok());
    auto result = exec::InsertExecutor::Run(MakeContext(t, *path),
                                            Rows({{"A", 1}}));
    ASSERT_TRUE(result.ok());
    ASSERT_TRUE(
        file_manager_->FinishInsertStatement(txn->get(), t.table_id, *result)
            .ok());
    ASSERT_TRUE(file_manager_->Commit(txn->get()).ok());
  }
  {
    auto txn = file_manager_->Begin();
    auto path = file_manager_->PrepareWrite(txn->get(), t.table_id);
    ASSERT_TRUE(path.ok());
    auto result = exec::InsertExecutor::Run(MakeContext(t, *path),
                                            Rows({{"B", 2}}));
    ASSERT_TRUE(result.ok());
    ASSERT_TRUE(
        file_manager_->FinishInsertStatement(txn->get(), t.table_id, *result)
            .ok());
    ASSERT_TRUE(file_manager_->Commit(txn->get()).ok());
  }

  auto delete_where = [&](Transaction* txn, const std::string& c1) {
    auto path = file_manager_->PrepareWrite(txn, t.table_id);
    ASSERT_TRUE(path.ok());
    auto snapshot = file_manager_->GetSnapshot(txn, t.table_id);
    ASSERT_TRUE(snapshot.ok());
    auto result = exec::DeleteExecutor::Run(MakeContext(t, *path), *snapshot,
                                            WhereC1Is(c1));
    ASSERT_TRUE(result.ok());
    ASSERT_GT(result->rows_affected, 0u);
    ASSERT_TRUE(
        file_manager_->FinishMutationStatement(txn, t.table_id, *result)
            .ok());
  };

  // Concurrent deletes touching different data files: both commit.
  auto t1 = file_manager_->Begin();
  auto t2 = file_manager_->Begin();
  delete_where(t1->get(), "A");
  delete_where(t2->get(), "B");
  EXPECT_TRUE(file_manager_->Commit(t1->get()).ok());
  EXPECT_TRUE(file_manager_->Commit(t2->get()).ok());

  // Concurrent deletes touching the SAME file: second one conflicts.
  {
    auto setup = file_manager_->Begin();
    auto path = file_manager_->PrepareWrite(setup->get(), t.table_id);
    ASSERT_TRUE(path.ok());
    auto result = exec::InsertExecutor::Run(MakeContext(t, *path),
                                            Rows({{"C", 3}, {"C", 4}}));
    ASSERT_TRUE(result.ok());
    ASSERT_TRUE(file_manager_
                    ->FinishInsertStatement(setup->get(), t.table_id, *result)
                    .ok());
    ASSERT_TRUE(file_manager_->Commit(setup->get()).ok());
  }
  auto t3 = file_manager_->Begin();
  auto t4 = file_manager_->Begin();
  delete_where(t3->get(), "C");
  delete_where(t4->get(), "C");
  EXPECT_TRUE(file_manager_->Commit(t3->get()).ok());
  EXPECT_TRUE(file_manager_->Commit(t4->get()).IsConflict());
}

}  // namespace
}  // namespace polaris::txn
