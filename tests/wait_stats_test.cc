// Tests for the engine-wide wait-event accounting subsystem: the
// ScopedWait/Charge primitives (self-time semantics, inertness when
// disabled), cross-thread aggregation under concurrency (the TSan
// target), agreement between the engine-wide registry and per-statement
// ResourceUsage vectors, instrumented blocking points (admission queue,
// commit pipeline, cache single-flight), the cancellation fix for
// coalesced cache waiters, and the SQL surfaces (sys.dm_wait_stats,
// EXPLAIN ANALYZE, sys.query_store).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "catalog/mvcc.h"
#include "common/deadline.h"
#include "common/resource_usage.h"
#include "common/trace_context.h"
#include "common/wait_stats.h"
#include "engine/admission.h"
#include "engine/engine.h"
#include "exec/data_cache.h"
#include "sql/session.h"
#include "storage/memory_object_store.h"

namespace polaris {
namespace {

using common::ResourceUsage;
using common::ScopedResourceUsage;
using common::ScopedWait;
using common::Status;
using common::WaitClass;
using common::WaitStats;

int64_t TotalFor(const WaitStats& stats, WaitClass cls) {
  return stats.TakeSnapshot().classes[static_cast<int>(cls)].total_us;
}

uint64_t CountFor(const WaitStats& stats, WaitClass cls) {
  return stats.TakeSnapshot().classes[static_cast<int>(cls)].count;
}

TEST(WaitStatsTest, ScopedWaitRecordsIntoRegistryAndAmbientUsage) {
  WaitStats stats;
  ResourceUsage usage;
  ScopedResourceUsage usage_scope(&usage);
  {
    ScopedWait wait(&stats, WaitClass::kCommitGate);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  auto snap = stats.TakeSnapshot();
  const auto& gate = snap.classes[static_cast<int>(WaitClass::kCommitGate)];
  EXPECT_EQ(gate.count, 1u);
  EXPECT_GE(gate.total_us, 1'000);
  EXPECT_EQ(gate.max_us, gate.total_us);
  // The same wait landed on the ambient statement vector.
  auto vec = usage.Snapshot();
  EXPECT_EQ(vec.wait_us[static_cast<int>(WaitClass::kCommitGate)],
            gate.total_us);
  EXPECT_EQ(vec.wait_count[static_cast<int>(WaitClass::kCommitGate)], 1u);
  EXPECT_EQ(vec.total_wait_us(), gate.total_us);
  EXPECT_EQ(vec.top_wait_class(),
            static_cast<int>(WaitClass::kCommitGate));
}

TEST(WaitStatsTest, DisabledRegistryRecordsNothing) {
  WaitStats stats;
  stats.set_enabled(false);
  {
    ScopedWait wait(&stats, WaitClass::kCommitGate);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  { ScopedWait wait(nullptr, WaitClass::kCommitBarrier); }
  EXPECT_EQ(stats.TakeSnapshot().total_us(), 0);
  EXPECT_EQ(CountFor(stats, WaitClass::kCommitGate), 0u);
}

TEST(WaitStatsTest, NestedScopesRecordSelfTimeOnly) {
  WaitStats stats;
  int64_t outer_wall = 0;
  {
    const int64_t start = WaitStats::NowMicros();
    ScopedWait outer(&stats, WaitClass::kCommitBarrier);
    {
      ScopedWait inner(&stats, WaitClass::kStoreIo);
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    outer_wall = WaitStats::NowMicros() - start;
  }
  const int64_t barrier = TotalFor(stats, WaitClass::kCommitBarrier);
  const int64_t io = TotalFor(stats, WaitClass::kStoreIo);
  EXPECT_GE(io, 4'000);
  // The outer scope recorded only the time NOT already charged to the
  // inner scope; the classes partition the blocked interval.
  EXPECT_LE(barrier + io, outer_wall + 1'000);
  EXPECT_EQ(CountFor(stats, WaitClass::kCommitBarrier), 1u);
  EXPECT_EQ(CountFor(stats, WaitClass::kStoreIo), 1u);
}

TEST(WaitStatsTest, ExplicitChargeSubtractsFromEnclosingScope) {
  WaitStats stats;
  {
    ScopedWait outer(&stats, WaitClass::kCommitBarrier);
    // A known-duration charge far larger than the scope's real elapsed
    // time: the outer scope's self time must clamp at zero rather than
    // double-count or go negative.
    WaitStats::Charge(&stats, WaitClass::kRetryBackoff, 50'000);
  }
  EXPECT_EQ(TotalFor(stats, WaitClass::kRetryBackoff), 50'000);
  EXPECT_EQ(TotalFor(stats, WaitClass::kCommitBarrier), 0);
  EXPECT_EQ(CountFor(stats, WaitClass::kCommitBarrier), 1u);
}

TEST(WaitStatsTest, ChargeIgnoresNonPositiveDurations) {
  WaitStats stats;
  WaitStats::Charge(&stats, WaitClass::kStoreIo, 0);
  WaitStats::Charge(&stats, WaitClass::kStoreIo, -5);
  WaitStats::Charge(nullptr, WaitClass::kStoreIo, 10);
  EXPECT_EQ(CountFor(stats, WaitClass::kStoreIo), 0u);
}

TEST(WaitStatsTest, CurrentWaitsPublishOnlyUnderATransaction) {
  WaitStats stats;
  {
    // No ambient txn_id: the wait counts but claims no live slot.
    ScopedWait anonymous(&stats, WaitClass::kCommitGate);
    EXPECT_TRUE(stats.CurrentWaits().empty());
  }
  common::MutableCurrentTraceContext().txn_id = 42;
  {
    ScopedWait wait(&stats, WaitClass::kReplicaWaitForCommit);
    auto live = stats.CurrentWaits();
    ASSERT_EQ(live.size(), 1u);
    EXPECT_EQ(live[0].txn_id, 42u);
    EXPECT_EQ(live[0].cls, WaitClass::kReplicaWaitForCommit);
  }
  common::MutableCurrentTraceContext().txn_id = 0;
  EXPECT_TRUE(stats.CurrentWaits().empty());
}

// The TSan target: many threads, each under its own transaction id and
// statement vector, hammer the registry through scopes and explicit
// charges. Exact totals are asserted for the charge-based classes, and
// every statement vector must agree with what its thread put in.
TEST(WaitStatsTest, ConcurrentSessionsAggregateWithoutRaces) {
  WaitStats stats;
  constexpr int kThreads = 8;
  constexpr int kIters = 200;
  constexpr int64_t kChargeUs = 7;
  std::vector<std::thread> threads;
  std::vector<int64_t> per_thread_wait(kThreads, 0);
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&stats, &per_thread_wait, t] {
      ResourceUsage usage;
      ScopedResourceUsage usage_scope(&usage);
      common::MutableCurrentTraceContext().txn_id =
          static_cast<uint64_t>(t + 1);
      for (int i = 0; i < kIters; ++i) {
        ScopedWait outer(&stats, WaitClass::kCommitGate);
        WaitStats::Charge(&stats, WaitClass::kAdmissionQueue, kChargeUs);
      }
      common::MutableCurrentTraceContext().txn_id = 0;
      per_thread_wait[t] = usage.Snapshot().total_wait_us();
    });
  }
  for (auto& th : threads) th.join();

  auto snap = stats.TakeSnapshot();
  const auto& queue =
      snap.classes[static_cast<int>(WaitClass::kAdmissionQueue)];
  EXPECT_EQ(queue.count, static_cast<uint64_t>(kThreads * kIters));
  EXPECT_EQ(queue.total_us, kThreads * kIters * kChargeUs);
  const auto& gate = snap.classes[static_cast<int>(WaitClass::kCommitGate)];
  EXPECT_EQ(gate.count, static_cast<uint64_t>(kThreads * kIters));
  // Registry total == sum of per-statement vectors: nothing was lost or
  // double-counted across threads.
  int64_t statement_sum = 0;
  for (int64_t us : per_thread_wait) statement_sum += us;
  EXPECT_EQ(snap.total_us(), statement_sum);
  EXPECT_TRUE(stats.CurrentWaits().empty());
}

TEST(WaitStatsTest, AdmissionQueueWaitAgreesWithQueueCharge) {
  engine::AdmissionOptions options;
  options.max_concurrent = 1;
  options.max_queue = 4;
  options.queue_timeout_micros = 2'000'000;
  engine::AdmissionController admission(options);
  WaitStats stats;
  admission.set_wait_stats(&stats);

  auto first = admission.Admit(common::Deadline(), "holder");
  ASSERT_TRUE(first.ok());
  ResourceUsage usage;
  std::thread waiter([&admission, &usage] {
    ScopedResourceUsage usage_scope(&usage);
    auto ticket = admission.Admit(common::Deadline(), "queued");
    EXPECT_TRUE(ticket.ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  first->Release();
  waiter.join();

  auto vec = usage.Snapshot();
  const int64_t queue_wait =
      vec.wait_us[static_cast<int>(WaitClass::kAdmissionQueue)];
  // Identical measurement, two surfaces: the legacy queue_us charge and
  // the ADMISSION_QUEUE wait class must agree exactly.
  EXPECT_EQ(queue_wait, vec.queue_us);
  EXPECT_GT(queue_wait, 0);
  EXPECT_EQ(TotalFor(stats, WaitClass::kAdmissionQueue), queue_wait);
}

TEST(WaitStatsTest, CommitPipelineAttributesBlockedTime) {
  catalog::MvccStore store;
  WaitStats stats;
  store.set_wait_stats(&stats);
  store.SetCommitListener([](const std::vector<catalog::CommitRecord>&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    return Status::OK();
  });

  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  std::vector<int64_t> wall_us(kThreads, 0);
  std::vector<int64_t> charged_us(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, &wall_us, &charged_us, t] {
      ResourceUsage usage;
      ScopedResourceUsage usage_scope(&usage);
      auto txn = store.Begin();
      ASSERT_TRUE(
          store.Put(txn.get(), "k" + std::to_string(t), "v").ok());
      const int64_t start = WaitStats::NowMicros();
      ASSERT_TRUE(store.Commit(txn.get()).ok());
      wall_us[t] = WaitStats::NowMicros() - start;
      charged_us[t] = usage.Snapshot().total_wait_us();
    });
  }
  for (auto& th : threads) th.join();

  auto snap = stats.TakeSnapshot();
  // Every commit passed the gate, the barrier, and the write-set lock.
  EXPECT_EQ(
      snap.classes[static_cast<int>(WaitClass::kCommitGate)].count,
      static_cast<uint64_t>(kThreads));
  EXPECT_EQ(
      snap.classes[static_cast<int>(WaitClass::kCommitBarrier)].count,
      static_cast<uint64_t>(kThreads));
  EXPECT_EQ(
      snap.classes[static_cast<int>(WaitClass::kLockIntent)].count,
      static_cast<uint64_t>(kThreads));
  // The sleeping listener is the leader's STORE_IO; at least one flush
  // round ran, and its time was not also counted by the barrier class.
  const auto& io = snap.classes[static_cast<int>(WaitClass::kStoreIo)];
  EXPECT_GE(io.count, 1u);
  EXPECT_GE(io.total_us, 1'000);
  // Per-statement: charged waits never exceed the commit's wall time
  // (self-time accounting — nested scopes don't double-count).
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_LE(charged_us[t], wall_us[t] + 1'000)
        << "thread " << t << " overcharged";
  }
}

/// MemoryObjectStore whose Get parks until released — puts a cache
/// single-flight leader to sleep mid-fetch so follower behavior is
/// observable.
class BlockingStore : public storage::MemoryObjectStore {
 public:
  common::Result<std::string> Get(const std::string& path) override {
    std::unique_lock<std::mutex> lock(mu_);
    started_ = true;
    cv_.notify_all();
    cv_.wait(lock, [this] { return released_; });
    return storage::MemoryObjectStore::Get(path);
  }

  void WaitUntilFetching() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return started_; });
  }

  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      released_ = true;
    }
    cv_.notify_all();
  }

  bool released() const {
    std::lock_guard<std::mutex> lock(mu_);
    return released_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool started_ = false;
  bool released_ = false;
};

// Regression: a coalesced cache waiter used to block uncancellably on the
// leader's fetch. A KILL on the follower must release it promptly even
// while the leader is still stuck in storage.
TEST(WaitStatsTest, CacheFollowerLeavesOnCancellation) {
  BlockingStore store;
  exec::DataCache cache(&store);
  WaitStats stats;
  cache.set_wait_stats(&stats);

  std::thread leader([&cache] {
    // The blob does not exist; after release the leader surfaces the
    // storage error. The follower must not wait for that outcome.
    auto result = cache.GetFile("missing");
    EXPECT_FALSE(result.ok());
  });
  store.WaitUntilFetching();

  common::CancelSource kill;
  kill.Cancel("killed by test");
  Status follower_status = Status::OK();
  {
    common::ScopedDeadline deadline_scope(
        common::Deadline::CancellableOnly(kill.token()));
    auto follower = cache.GetFile("missing");
    follower_status = follower.status();
  }
  EXPECT_TRUE(follower_status.IsCancelled()) << follower_status.ToString();
  // The follower left while the leader was still blocked.
  EXPECT_FALSE(store.released());
  EXPECT_GE(CountFor(stats, WaitClass::kCacheSingleflight), 1u);

  store.Release();
  leader.join();
}

TEST(WaitStatsTest, DeleteVectorFollowerHonorsDeadline) {
  BlockingStore store;
  exec::DataCache cache(&store);

  std::thread leader([&cache] {
    auto result = cache.GetDeleteVector("dv/missing");
    EXPECT_FALSE(result.ok());
  });
  store.WaitUntilFetching();

  common::SystemClock wall;
  Status follower_status = Status::OK();
  {
    common::ScopedDeadline deadline_scope(
        common::Deadline::After(&wall, 5'000));
    auto follower = cache.GetDeleteVector("dv/missing");
    follower_status = follower.status();
  }
  EXPECT_TRUE(follower_status.IsDeadlineExceeded())
      << follower_status.ToString();
  EXPECT_FALSE(store.released());

  store.Release();
  leader.join();
}

TEST(WaitStatsTest, SqlSurfacesExposeWaitAccounting) {
  engine::EngineOptions options;
  options.sampler_period_micros = 0;
  engine::PolarisEngine engine(options);
  sql::SqlSession session(&engine);

  ASSERT_TRUE(session.Execute("CREATE TABLE t (x BIGINT);").ok());
  ASSERT_TRUE(session.Execute("INSERT INTO t VALUES (1);").ok());

  // sys.dm_wait_stats always lists the full taxonomy.
  auto dmv = session.Execute("SELECT * FROM sys.dm_wait_stats;");
  ASSERT_TRUE(dmv.ok()) << dmv.status().ToString();
  EXPECT_EQ(dmv->batch.num_rows(), 9u);
  // The INSERT's auto-commit passed through the commit gate.
  auto gate = session.Execute(
      "SELECT waits FROM sys.dm_wait_stats WHERE wait_class = "
      "'COMMIT_GATE';");
  ASSERT_TRUE(gate.ok()) << gate.status().ToString();
  ASSERT_EQ(gate->batch.num_rows(), 1u);

  // EXPLAIN ANALYZE renders the per-statement wait breakdown.
  auto explain = session.Execute("EXPLAIN ANALYZE SELECT * FROM t;");
  ASSERT_TRUE(explain.ok()) << explain.status().ToString();
  EXPECT_NE(explain->message.find("waits: total="), std::string::npos)
      << explain->message;

  // Query Store aggregates the wait columns per fingerprint.
  auto qs = session.Execute(
      "SELECT fingerprint, total_wait_us, top_wait_class FROM "
      "sys.query_store;");
  ASSERT_TRUE(qs.ok()) << qs.status().ToString();
  EXPECT_GT(qs->batch.num_rows(), 0u);

  // dm_tran_active carries the live wait columns (empty when idle).
  auto active = session.Execute(
      "SELECT wait_class, wait_us FROM sys.dm_tran_active;");
  ASSERT_TRUE(active.ok()) << active.status().ToString();
}

}  // namespace
}  // namespace polaris
