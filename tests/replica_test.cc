// Read-replica tests: a replica engine (EngineOptions::replica) attaches
// the primary's shared store read-only, bootstraps from checkpoint +
// journal, and continuously applies new journal records. Reads are
// snapshot-isolated at the apply watermark, writes are rejected,
// read-your-writes works via WAIT FOR COMMIT, and the tailer survives
// journal GC (retention floor, or checkpoint re-bootstrap on 404) and
// primary crashes (same torn-tail rules as recovery).
//
// Tests that need deterministic interleaving share one MemoryObjectStore
// between primary and replica (PolarisEngine::OpenOn) and drive the
// tailer with explicit PollOnce calls (poll_interval_micros = 0).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "catalog/catalog_journal.h"
#include "common/clock.h"
#include "common/crashpoint.h"
#include "common/deadline.h"
#include "common/trace_context.h"
#include "engine/engine.h"
#include "sql/session.h"
#include "storage/local_file_object_store.h"
#include "storage/memory_object_store.h"

namespace polaris::engine {
namespace {

using common::Status;
using exec::AggFunc;
using exec::CompareOp;
using exec::Conjunction;
using exec::Predicate;
using format::ColumnType;
using format::RecordBatch;
using format::Schema;
using format::Value;

Schema EventsSchema() {
  return Schema({{"id", ColumnType::kInt64}, {"val", ColumnType::kInt64}});
}

RecordBatch EventRow(int64_t id, int64_t val) {
  RecordBatch batch{EventsSchema()};
  EXPECT_TRUE(batch.AppendRow({Value::Int64(id), Value::Int64(val)}).ok());
  return batch;
}

Conjunction WhereId(int64_t id) {
  Conjunction conj;
  conj.predicates.push_back(
      Predicate::Make("id", CompareOp::kEq, Value::Int64(id)));
  return conj;
}

class ReplicaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    common::CrashPoints::Disarm();
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    data_dir_ = std::filesystem::path(::testing::TempDir()) /
                (std::string("polaris_replica_") + info->name());
    std::filesystem::remove_all(data_dir_);
  }

  void TearDown() override {
    common::CrashPoints::Disarm();
    std::filesystem::remove_all(data_dir_);
  }

  static EngineOptions BaseOptions() {
    EngineOptions options;
    options.num_cells = 2;
    options.worker_threads = 2;
    options.sampler_period_micros = 0;  // deterministic: no sampler thread
    return options;
  }

  EngineOptions DurableOptions() {
    EngineOptions options = BaseOptions();
    options.data_dir = data_dir_.string();
    return options;
  }

  static EngineOptions ReplicaOptionsOf(EngineOptions options,
                                        int64_t poll_micros = 0) {
    options.replica = true;
    options.replica_options.poll_interval_micros = poll_micros;
    return options;
  }

  static std::unique_ptr<PolarisEngine> MustOpen(EngineOptions options) {
    auto engine = PolarisEngine::Open(std::move(options));
    EXPECT_TRUE(engine.ok()) << engine.status().ToString();
    return std::move(*engine);
  }

  static std::unique_ptr<PolarisEngine> MustOpenOn(EngineOptions options,
                                                   storage::ObjectStore* store,
                                                   common::Clock* clock) {
    auto engine = PolarisEngine::OpenOn(std::move(options), store, clock);
    EXPECT_TRUE(engine.ok()) << engine.status().ToString();
    return std::move(*engine);
  }

  /// COUNT(*) WHERE id = `id` in a fresh transaction (works on both
  /// primary and replica — it only reads).
  static int64_t CountId(PolarisEngine* engine, int64_t id) {
    auto txn = engine->Begin();
    EXPECT_TRUE(txn.ok()) << txn.status().ToString();
    QuerySpec spec;
    spec.filter = WhereId(id);
    spec.aggregates = {{AggFunc::kCount, "", "cnt"}};
    auto result = engine->Query(txn->get(), "events", spec);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    (void)engine->Abort(txn->get());
    return result->column(0).Int64At(0);
  }

  /// Same workload shape as recovery_test: inserts (id, 100+id) and
  /// (id, 200+id), deletes the rows of id-3 for id >= 3.
  static Status RunTxn(PolarisEngine* engine, int64_t id) {
    auto txn = engine->Begin();
    if (!txn.ok()) return txn.status();
    auto run = [&]() -> Status {
      POLARIS_RETURN_IF_ERROR(
          engine->Insert(txn->get(), "events", EventRow(id, 100 + id))
              .status());
      POLARIS_RETURN_IF_ERROR(
          engine->Insert(txn->get(), "events", EventRow(id, 200 + id))
              .status());
      if (id >= 3) {
        POLARIS_RETURN_IF_ERROR(
            engine->Delete(txn->get(), "events", WhereId(id - 3)).status());
      }
      return engine->Commit(txn->get());
    };
    Status status = run();
    if (!status.ok()) (void)engine->Abort(txn->get());
    return status;
  }

  static std::vector<std::pair<std::string, std::string>> ExportCatalog(
      PolarisEngine* engine, uint64_t* seq) {
    return engine->catalog()->store()->ExportLatest(seq);
  }

  std::filesystem::path data_dir_;
};

// --- Satellite (b): ListSegmentsSince ordering/boundary contract ---------

/// The contract the tailer depends on, checked over both store backends:
/// ascending first_seq order (zero-padded names make lexicographic ==
/// numeric, exercised across the 9 -> 10 boundary), every segment with
/// first_seq >= since included, plus the one immediately preceding it
/// (so a live cursor segment always appears in its own listing).
TEST_F(ReplicaTest, ListSegmentsSinceContractOverBothStores) {
  common::SimClock clock(1'000'000);
  storage::MemoryObjectStore memory_store(&clock);
  storage::LocalFileObjectStore file_store((data_dir_ / "seg").string(),
                                           &clock);
  ASSERT_TRUE(file_store.init_status().ok());
  storage::ObjectStore* stores[] = {&memory_store, &file_store};

  for (storage::ObjectStore* store : stores) {
    SCOPED_TRACE(store == &memory_store ? "memory" : "local_file");
    catalog::CatalogJournalOptions options;
    options.records_per_segment = 1;  // one segment per commit
    catalog::CatalogJournal journal(store, options);
    ASSERT_TRUE(journal.Recover().ok());
    for (uint64_t seq = 1; seq <= 13; ++seq) {
      ASSERT_TRUE(
          journal.Append(seq, {{"k" + std::to_string(seq), "v"}}).ok());
    }

    auto all = catalog::ListJournalSegmentsSince(store, options, 1);
    ASSERT_TRUE(all.ok()) << all.status().ToString();
    ASSERT_EQ(all->size(), 13u);
    for (size_t i = 0; i < all->size(); ++i) {
      EXPECT_EQ((*all)[i].first_seq, i + 1);  // ascending despite 9 -> 10
    }

    // since = 5: segments 5.. plus the immediately preceding segment 4.
    auto tail = catalog::ListJournalSegmentsSince(store, options, 5);
    ASSERT_TRUE(tail.ok());
    ASSERT_EQ(tail->size(), 10u);
    EXPECT_EQ(tail->front().first_seq, 4u);
    EXPECT_EQ(tail->back().first_seq, 13u);

    // since beyond the tip: only the predecessor (the live tail segment).
    auto tip = catalog::ListJournalSegmentsSince(store, options, 14);
    ASSERT_TRUE(tip.ok());
    ASSERT_EQ(tip->size(), 1u);
    EXPECT_EQ(tip->front().first_seq, 13u);

    // since = 1 has no predecessor: the listing starts at 1.
    EXPECT_EQ(all->front().first_seq, 1u);
  }
}

// --- Tentpole: bootstrap, continuous apply, snapshot isolation -----------

TEST_F(ReplicaTest, BootstrapFromCheckpointAndJournalTail) {
  auto primary = MustOpen(DurableOptions());
  ASSERT_TRUE(primary->CreateTable("events", EventsSchema()).ok());
  for (int64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(RunTxn(primary.get(), i).ok()) << i;
  }
  ASSERT_TRUE(primary->CheckpointCatalog().ok());
  ASSERT_TRUE(RunTxn(primary.get(), 4).ok());
  ASSERT_TRUE(RunTxn(primary.get(), 5).ok());

  // Attach a replica to the same directory while the primary stays open.
  auto replica = MustOpen(ReplicaOptionsOf(DurableOptions()));
  ASSERT_TRUE(replica->is_replica());
  ASSERT_NE(replica->replica(), nullptr);

  // ids 0,1,2 deleted by txns 3,4,5; ids 3,4,5 live with both rows.
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(CountId(replica.get(), i), 0) << i;
  }
  for (int64_t i = 3; i < 6; ++i) {
    EXPECT_EQ(CountId(replica.get(), i), 2) << i;
  }

  uint64_t primary_seq = primary->catalog()->store()->LatestCommitSeq();
  replica::ReplicaStatus rs = replica->replica()->GetStatus();
  EXPECT_EQ(rs.state, "tailing");
  EXPECT_EQ(rs.watermark, primary_seq);
  EXPECT_EQ(replica->replica()->watermark(), primary_seq);
  // The checkpoint bounded the bootstrap replay to the journal tail.
  EXPECT_GT(rs.bootstrap_records, 0u);
  EXPECT_LT(rs.bootstrap_records, primary->Stats().journal_records);
  EXPECT_EQ(replica->replica()->LagLowerBound(), 0u);
}

TEST_F(ReplicaTest, ContinuousApplyPreservesSnapshotIsolation) {
  common::SimClock clock(1'000'000);
  storage::MemoryObjectStore store(&clock);
  auto primary = MustOpenOn(BaseOptions(), &store, &clock);
  auto replica = MustOpenOn(ReplicaOptionsOf(BaseOptions()), &store, &clock);

  ASSERT_TRUE(primary->CreateTable("events", EventsSchema()).ok());
  ASSERT_TRUE(RunTxn(primary.get(), 0).ok());
  ASSERT_TRUE(replica->replica()->PollOnce().ok());
  EXPECT_EQ(CountId(replica.get(), 0), 2);

  // Pin a snapshot on the replica, then let the primary move on.
  auto pinned = replica->Begin();
  ASSERT_TRUE(pinned.ok());
  ASSERT_TRUE(RunTxn(primary.get(), 1).ok());
  ASSERT_TRUE(RunTxn(primary.get(), 2).ok());
  ASSERT_TRUE(replica->replica()->PollOnce().ok());

  // The pinned transaction still sees the old state; a fresh one sees
  // everything up to the watermark.
  QuerySpec spec;
  spec.filter = WhereId(1);
  spec.aggregates = {{AggFunc::kCount, "", "cnt"}};
  auto pinned_count = replica->Query(pinned->get(), "events", spec);
  ASSERT_TRUE(pinned_count.ok()) << pinned_count.status().ToString();
  EXPECT_EQ(pinned_count->column(0).Int64At(0), 0);
  (void)replica->Abort(pinned->get());
  EXPECT_EQ(CountId(replica.get(), 1), 2);
  EXPECT_EQ(CountId(replica.get(), 2), 2);

  // Watermark tracks the primary exactly once the tail is drained.
  EXPECT_EQ(replica->replica()->watermark(),
            primary->catalog()->store()->LatestCommitSeq());
  replica::ReplicaStatus rs = replica->replica()->GetStatus();
  EXPECT_GT(rs.records_applied, 0u);
  EXPECT_FALSE(rs.torn_tail_pending);
}

TEST_F(ReplicaTest, WatermarkIsMonotonicAcrossPolls) {
  common::SimClock clock(1'000'000);
  storage::MemoryObjectStore store(&clock);
  auto primary = MustOpenOn(BaseOptions(), &store, &clock);
  auto replica = MustOpenOn(ReplicaOptionsOf(BaseOptions()), &store, &clock);
  ASSERT_TRUE(primary->CreateTable("events", EventsSchema()).ok());

  uint64_t last = replica->replica()->watermark();
  for (int64_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(RunTxn(primary.get(), i).ok());
    ASSERT_TRUE(replica->replica()->PollOnce().ok());
    uint64_t now = replica->replica()->watermark();
    EXPECT_GE(now, last) << "watermark went backwards at txn " << i;
    last = now;
    // An idle poll (nothing new) must not move or reset anything.
    ASSERT_TRUE(replica->replica()->PollOnce().ok());
    EXPECT_EQ(replica->replica()->watermark(), last);
  }
  EXPECT_EQ(last, primary->catalog()->store()->LatestCommitSeq());
}

// --- Writes rejected -----------------------------------------------------

TEST_F(ReplicaTest, WritesAreRejectedOnReplica) {
  common::SimClock clock(1'000'000);
  storage::MemoryObjectStore store(&clock);
  auto primary = MustOpenOn(BaseOptions(), &store, &clock);
  ASSERT_TRUE(primary->CreateTable("events", EventsSchema()).ok());
  ASSERT_TRUE(RunTxn(primary.get(), 0).ok());

  auto replica = MustOpenOn(ReplicaOptionsOf(BaseOptions()), &store, &clock);

  // Engine API: DDL and DML all fail with FailedPrecondition.
  Status ddl = replica->CreateTable("other", EventsSchema()).status();
  EXPECT_TRUE(ddl.IsFailedPrecondition()) << ddl.ToString();
  EXPECT_TRUE(replica->DropTable("events").IsFailedPrecondition());
  EXPECT_TRUE(replica->CheckpointCatalog().IsFailedPrecondition());
  auto txn = replica->Begin();
  ASSERT_TRUE(txn.ok());
  auto insert = replica->Insert(txn->get(), "events", EventRow(9, 9));
  EXPECT_TRUE(insert.status().IsFailedPrecondition())
      << insert.status().ToString();
  auto del = replica->Delete(txn->get(), "events", WhereId(0));
  EXPECT_TRUE(del.status().IsFailedPrecondition());
  (void)replica->Abort(txn->get());

  // SQL surface: same verdict, reads still fine.
  sql::SqlSession session(replica.get());
  auto sql_insert = session.Execute("INSERT INTO events VALUES (9, 9)");
  ASSERT_FALSE(sql_insert.ok());
  EXPECT_TRUE(sql_insert.status().IsFailedPrecondition());
  auto sql_select = session.Execute("SELECT COUNT(*) FROM events");
  ASSERT_TRUE(sql_select.ok()) << sql_select.status().ToString();
  EXPECT_EQ(sql_select->batch.column(0).Int64At(0), 2);
}

// --- Read-your-writes: WaitForCommit / SET WAIT FOR COMMIT ---------------

TEST_F(ReplicaTest, WaitForCommitUnblocksWhenWatermarkReaches) {
  common::SimClock clock(1'000'000);
  storage::MemoryObjectStore store(&clock);
  auto primary = MustOpenOn(BaseOptions(), &store, &clock);
  ASSERT_TRUE(primary->CreateTable("events", EventsSchema()).ok());
  auto replica = MustOpenOn(ReplicaOptionsOf(BaseOptions()), &store, &clock);

  ASSERT_TRUE(RunTxn(primary.get(), 0).ok());
  const uint64_t target = primary->catalog()->store()->LatestCommitSeq();
  ASSERT_GT(target, replica->replica()->watermark());

  // A session thread blocks in MinReadWatermark until a poll applies the
  // records; an already-satisfied wait returns without blocking.
  std::atomic<bool> released{false};
  Status wait_status = Status::OK();
  std::thread waiter([&] {
    wait_status = replica->MinReadWatermark(target);
    released.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(released.load());  // still parked: nothing applied yet
  ASSERT_TRUE(replica->replica()->PollOnce().ok());
  waiter.join();
  EXPECT_TRUE(wait_status.ok()) << wait_status.ToString();
  EXPECT_TRUE(replica->MinReadWatermark(target).ok());  // instant now
  EXPECT_EQ(CountId(replica.get(), 0), 2);
}

TEST_F(ReplicaTest, WaitForCommitHonorsDeadlineAndStop) {
  common::SimClock clock(1'000'000);
  storage::MemoryObjectStore store(&clock);
  auto primary = MustOpenOn(BaseOptions(), &store, &clock);
  ASSERT_TRUE(primary->CreateTable("events", EventsSchema()).ok());
  auto replica = MustOpenOn(ReplicaOptionsOf(BaseOptions()), &store, &clock);

  const uint64_t unreachable = replica->replica()->watermark() + 1000;

  // Expired budget => DeadlineExceeded instead of an eternal park.
  {
    common::ScopedDeadline scoped(
        common::Deadline::After(replica->clock(), /*budget_micros=*/0));
    Status status = replica->MinReadWatermark(unreachable);
    EXPECT_TRUE(status.IsDeadlineExceeded()) << status.ToString();
  }

  // Cancellation token fires mid-wait.
  {
    common::CancelSource source;
    common::ScopedDeadline scoped(
        common::Deadline::CancellableOnly(source.token()));
    std::thread canceller([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      source.Cancel("test cancellation");
    });
    Status status = replica->MinReadWatermark(unreachable);
    canceller.join();
    EXPECT_TRUE(status.IsCancelled()) << status.ToString();
  }

  // Stop() wakes blocked waiters with Unavailable, and later waits fail
  // fast the same way.
  std::thread stopper([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    replica->replica()->Stop();
  });
  Status stopped = replica->MinReadWatermark(unreachable);
  stopper.join();
  EXPECT_TRUE(stopped.IsUnavailable()) << stopped.ToString();
  EXPECT_TRUE(replica->MinReadWatermark(unreachable).IsUnavailable());
  EXPECT_EQ(replica->replica()->GetStatus().state, "stopped");
}

TEST_F(ReplicaTest, SqlReadYourWritesAcrossEngines) {
  common::SimClock clock(1'000'000);
  storage::MemoryObjectStore store(&clock);
  auto primary = MustOpenOn(BaseOptions(), &store, &clock);
  // Background tailer on a real (wall-clock) poll cadence: SET WAIT FOR
  // COMMIT must unblock without any explicit PollOnce.
  auto replica = MustOpenOn(
      ReplicaOptionsOf(BaseOptions(), /*poll_micros=*/2000), &store, &clock);

  sql::SqlSession write_session(primary.get());
  ASSERT_TRUE(
      write_session.Execute("CREATE TABLE t (id BIGINT, val BIGINT)").ok());
  ASSERT_TRUE(write_session.Execute("BEGIN").ok());
  ASSERT_TRUE(write_session.Execute("INSERT INTO t VALUES (1, 10)").ok());
  auto commit = write_session.Execute("COMMIT");
  ASSERT_TRUE(commit.ok()) << commit.status().ToString();
  // COMMIT surfaces the sequence a client hands to the replica.
  const std::string& msg = commit->message;
  auto pos = msg.find("commit_seq ");
  ASSERT_NE(pos, std::string::npos) << msg;
  const uint64_t seq = std::stoull(msg.substr(pos + 11));
  ASSERT_GT(seq, 0u);

  sql::SqlSession read_session(replica.get());
  auto wait =
      read_session.Execute("SET WAIT FOR COMMIT " + std::to_string(seq));
  ASSERT_TRUE(wait.ok()) << wait.status().ToString();
  EXPECT_NE(wait->message.find("visible"), std::string::npos);
  auto rows = read_session.Execute("SELECT val FROM t WHERE id = 1");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->batch.num_rows(), 1u);
  EXPECT_EQ(rows->batch.column(0).Int64At(0), 10);

  // Parser guards: the statement needs a positive integer sequence.
  EXPECT_FALSE(read_session.Execute("SET WAIT FOR COMMIT").ok());
  EXPECT_FALSE(read_session.Execute("SET WAIT FOR COMMIT 0").ok());
  EXPECT_FALSE(read_session.Execute("SET WAIT FOR COMMIT x").ok());
}

// --- sys.dm_replica ------------------------------------------------------

TEST_F(ReplicaTest, DmReplicaViewReportsTailerState) {
  common::SimClock clock(1'000'000);
  storage::MemoryObjectStore store(&clock);
  auto primary = MustOpenOn(BaseOptions(), &store, &clock);
  ASSERT_TRUE(primary->CreateTable("events", EventsSchema()).ok());
  ASSERT_TRUE(RunTxn(primary.get(), 0).ok());
  auto replica = MustOpenOn(ReplicaOptionsOf(BaseOptions()), &store, &clock);
  // Commit after the attach so the poll (not the bootstrap) applies it —
  // records_applied counts tailed records only.
  ASSERT_TRUE(RunTxn(primary.get(), 1).ok());
  ASSERT_TRUE(replica->replica()->PollOnce().ok());

  sql::SqlSession session(replica.get());
  auto view = session.Execute("SELECT * FROM sys.dm_replica");
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  ASSERT_EQ(view->batch.num_rows(), 1u);
  const auto& batch = view->batch;
  auto col = [&](const std::string& name) {
    int idx = batch.schema().FindColumn(name);
    EXPECT_GE(idx, 0) << name;
    return static_cast<size_t>(idx);
  };
  EXPECT_EQ(batch.column(col("state")).StringAt(0), "tailing");
  EXPECT_EQ(static_cast<uint64_t>(batch.column(col("watermark")).Int64At(0)),
            primary->catalog()->store()->LatestCommitSeq());
  EXPECT_EQ(batch.column(col("lag_records")).Int64At(0), 0);
  EXPECT_GT(batch.column(col("records_applied")).Int64At(0), 0);

  // On a primary the view exists but is empty — no tailer to report.
  sql::SqlSession primary_session(primary.get());
  auto empty = primary_session.Execute("SELECT * FROM sys.dm_replica");
  ASSERT_TRUE(empty.ok()) << empty.status().ToString();
  EXPECT_EQ(empty->batch.num_rows(), 0u);

  // Engine-level surfaces agree.
  EngineStats stats = replica->Stats();
  EXPECT_EQ(stats.replica_watermark, replica->replica()->watermark());
  EXPECT_GT(stats.replica_records_applied, 0u);
}

// --- Journal GC vs the tailer -------------------------------------------

TEST_F(ReplicaTest, RetentionFloorKeepsTailerAliveAcrossGc) {
  common::SimClock clock(1'000'000);
  storage::MemoryObjectStore store(&clock);
  EngineOptions popts = BaseOptions();
  popts.journal_options.records_per_segment = 1;
  popts.journal_options.reclaim_retain_segments = 64;  // generous floor
  auto primary = MustOpenOn(popts, &store, &clock);
  ASSERT_TRUE(primary->CreateTable("events", EventsSchema()).ok());
  ASSERT_TRUE(RunTxn(primary.get(), 0).ok());

  EngineOptions ropts = ReplicaOptionsOf(BaseOptions());
  ropts.journal_options = popts.journal_options;
  auto replica = MustOpenOn(ropts, &store, &clock);
  ASSERT_TRUE(replica->replica()->PollOnce().ok());

  // Checkpoint + reclaim while the replica is attached: the retention
  // floor keeps every segment the (caught-up) tailer could still need.
  ASSERT_TRUE(RunTxn(primary.get(), 1).ok());
  ASSERT_TRUE(primary->CheckpointCatalog().ok());
  auto reclaimed = primary->journal()->ReclaimSupersededSegments();
  ASSERT_TRUE(reclaimed.ok()) << reclaimed.status().ToString();

  ASSERT_TRUE(RunTxn(primary.get(), 2).ok());
  ASSERT_TRUE(replica->replica()->PollOnce().ok());
  EXPECT_EQ(replica->replica()->GetStatus().rebootstraps, 0u)
      << "retention floor should have made re-bootstrap unnecessary";
  EXPECT_EQ(replica->replica()->watermark(),
            primary->catalog()->store()->LatestCommitSeq());
  EXPECT_EQ(CountId(replica.get(), 2), 2);
}

TEST_F(ReplicaTest, RebootstrapsFromCheckpointAfterJournalTruncation) {
  common::SimClock clock(1'000'000);
  storage::MemoryObjectStore store(&clock);
  EngineOptions popts = BaseOptions();
  popts.journal_options.records_per_segment = 1;
  popts.journal_options.reclaim_retain_segments = 0;  // no floor: replicas
                                                      // must re-bootstrap
  auto primary = MustOpenOn(popts, &store, &clock);
  ASSERT_TRUE(primary->CreateTable("events", EventsSchema()).ok());
  ASSERT_TRUE(RunTxn(primary.get(), 0).ok());

  EngineOptions ropts = ReplicaOptionsOf(BaseOptions());
  ropts.journal_options = popts.journal_options;
  auto replica = MustOpenOn(ropts, &store, &clock);
  ASSERT_TRUE(replica->replica()->PollOnce().ok());
  const uint64_t before = replica->replica()->watermark();

  // The primary races ahead, checkpoints, and GC deletes every segment
  // the replica's cursor pointed into.
  for (int64_t i = 1; i < 5; ++i) {
    ASSERT_TRUE(RunTxn(primary.get(), i).ok());
  }
  ASSERT_TRUE(primary->CheckpointCatalog().ok());
  auto reclaimed = primary->journal()->ReclaimSupersededSegments();
  ASSERT_TRUE(reclaimed.ok());
  ASSERT_GT(*reclaimed, 0u);

  // The next poll detects the truncation and re-derives the catalog from
  // the checkpoint; a snapshot pinned across the re-bootstrap keeps its
  // view because the diff is installed as one ordinary replicated commit.
  auto pinned = replica->Begin();
  ASSERT_TRUE(pinned.ok());
  (void)replica->replica()->PollOnce();  // may report NotFound internally
  ASSERT_TRUE(replica->replica()->PollOnce().ok());
  EXPECT_GE(replica->replica()->GetStatus().rebootstraps, 1u);
  EXPECT_GT(replica->replica()->watermark(), before);
  EXPECT_EQ(replica->replica()->watermark(),
            primary->catalog()->store()->LatestCommitSeq());
  QuerySpec spec;
  spec.filter = WhereId(4);
  spec.aggregates = {{AggFunc::kCount, "", "cnt"}};
  auto pinned_count = replica->Query(pinned->get(), "events", spec);
  ASSERT_TRUE(pinned_count.ok()) << pinned_count.status().ToString();
  EXPECT_EQ(pinned_count->column(0).Int64At(0), 0);  // old view survives
  (void)replica->Abort(pinned->get());
  // Fresh reads converge with the primary.
  EXPECT_EQ(CountId(replica.get(), 0), 0);  // deleted by txn 3
  EXPECT_EQ(CountId(replica.get(), 4), 2);

  // And tailing continues normally past the re-bootstrap.
  ASSERT_TRUE(RunTxn(primary.get(), 5).ok());
  ASSERT_TRUE(replica->replica()->PollOnce().ok());
  EXPECT_EQ(CountId(replica.get(), 5), 2);
}

// --- Crash-point matrix with an attached replica -------------------------

/// The acceptance gate for replicas under primary crashes: for every
/// crash point, a replica that polled an interrupted primary, then keeps
/// polling across the primary's recovery, converges to the recovered
/// primary's exact catalog — torn tails held, dead garbage skipped,
/// reused segment names detected.
TEST_F(ReplicaTest, CrashPointMatrixWithAttachedReplica) {
  const std::string kPoints[] = {
      std::string(common::crash::kCommitAfterWriteSets),
      std::string(common::crash::kCatalogCommitBeforeManifests),
      std::string(common::crash::kCatalogCommitAfterManifests),
      std::string(common::crash::kCommitBatchFormed),
      std::string(common::crash::kCommitBatchAppended),
      std::string(common::crash::kCommitBatchInstalled),
      std::string(common::crash::kJournalAppendBefore),
      std::string(common::crash::kJournalAppendTorn),
      std::string(common::crash::kJournalAppendAfterCommit),
      std::string(common::crash::kStorePutBeforeRename),
      std::string(common::crash::kStoreCommitBeforeRename),
  };
  constexpr int64_t kTxns = 6;

  for (const auto& point : kPoints) {
    SCOPED_TRACE(point);
    std::filesystem::remove_all(data_dir_);

    std::unique_ptr<PolarisEngine> replica;
    {
      auto primary = MustOpen(DurableOptions());
      ASSERT_TRUE(primary->CreateTable("events", EventsSchema()).ok());
      ASSERT_TRUE(RunTxn(primary.get(), 0).ok());
      ASSERT_TRUE(RunTxn(primary.get(), 1).ok());
      // The replica attaches once real history exists, and outlives the
      // primary's "death" below.
      replica = MustOpen(ReplicaOptionsOf(DurableOptions()));

      uint64_t fired_before = common::CrashPoints::fired_count();
      common::CrashPoints::Arm(point, /*skip=*/1);
      for (int64_t i = 2; i < kTxns; ++i) {
        Status status = RunTxn(primary.get(), i);
        // The replica polls mid-workload: it may observe the torn tail
        // the crash leaves behind and must hold, not fail.
        (void)replica->replica()->PollOnce();
        if (!status.ok()) break;  // the primary "died" here
      }
      ASSERT_EQ(common::CrashPoints::fired_count(), fired_before + 1)
          << "crash point never fired; workload too small";
      common::CrashPoints::Disarm();
      // Primary discarded without shutdown — crash semantics.
    }

    // The primary recovers and keeps going; the replica just keeps
    // tailing (a reused segment name or truncation surfaces as NotFound
    // on one poll and is healed by the re-bootstrap on the same pass).
    auto primary = MustOpen(DurableOptions());
    ASSERT_TRUE(RunTxn(primary.get(), 100).ok());
    (void)replica->replica()->PollOnce();
    ASSERT_TRUE(replica->replica()->PollOnce().ok());

    uint64_t primary_seq = 0, replica_seq = 0;
    auto primary_rows = ExportCatalog(primary.get(), &primary_seq);
    auto replica_rows = ExportCatalog(replica.get(), &replica_seq);
    EXPECT_EQ(replica_seq, primary_seq);
    EXPECT_EQ(replica_rows, primary_rows)
        << "replica catalog diverged from recovered primary";
    EXPECT_EQ(replica->replica()->watermark(), primary_seq);
    EXPECT_EQ(CountId(replica.get(), 100), CountId(primary.get(), 100));
  }
}

}  // namespace
}  // namespace polaris::engine
