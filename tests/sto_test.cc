// Tests for the System Task Orchestrator: storage-health evaluation,
// compaction (correctness + conflict behaviour), checkpoint triggering,
// garbage collection safety, and Delta publishing.

#include <gtest/gtest.h>

#include <set>

#include "engine/engine.h"
#include "lst/checkpoint.h"
#include "storage/path_util.h"
#include "sto/delta_publisher.h"
#include "sto/delta_reader.h"

namespace polaris::sto {
namespace {

using common::Status;
using exec::AggFunc;
using exec::CompareOp;
using exec::Conjunction;
using exec::Predicate;
using format::ColumnType;
using format::RecordBatch;
using format::Schema;
using format::Value;

Schema KvSchema() {
  return Schema({{"k", ColumnType::kInt64}, {"v", ColumnType::kInt64}});
}

class StoTest : public ::testing::Test {
 protected:
  StoTest() : engine_(MakeOptions()) {}

  static engine::EngineOptions MakeOptions() {
    engine::EngineOptions options;
    options.num_cells = 2;
    options.worker_threads = 2;
    options.sto_options.max_deleted_fraction = 0.2;
    options.sto_options.min_file_rows = 4;
    options.sto_options.manifests_per_checkpoint = 3;
    options.sto_options.retention_micros = 1'000'000;  // 1s virtual
    return options;
  }

  RecordBatch Rows(int n, int offset = 0) {
    RecordBatch batch{KvSchema()};
    for (int i = 0; i < n; ++i) {
      EXPECT_TRUE(batch
                      .AppendRow({Value::Int64(offset + i),
                                  Value::Int64(offset + i)})
                      .ok());
    }
    return batch;
  }

  void MustInsert(const std::string& table, const RecordBatch& rows) {
    ASSERT_TRUE(engine_
                    .RunInTransaction([&](txn::Transaction* txn) {
                      return engine_.Insert(txn, table, rows).status();
                    })
                    .ok());
  }

  void MustDeleteWhereKLt(const std::string& table, int64_t bound) {
    ASSERT_TRUE(engine_
                    .RunInTransaction([&](txn::Transaction* txn) {
                      Conjunction conj;
                      conj.predicates.push_back(Predicate::Make(
                          "k", CompareOp::kLt, Value::Int64(bound)));
                      return engine_.Delete(txn, table, conj).status();
                    })
                    .ok());
  }

  int64_t Count(const std::string& table) {
    auto txn = engine_.Begin();
    engine::QuerySpec spec;
    spec.aggregates = {{AggFunc::kCount, "", "cnt"}};
    auto result = engine_.Query(txn->get(), table, spec);
    EXPECT_TRUE(result.ok());
    (void)engine_.Abort(txn->get());
    return result->column(0).Int64At(0);
  }

  int64_t SumV(const std::string& table) {
    auto txn = engine_.Begin();
    engine::QuerySpec spec;
    spec.aggregates = {{AggFunc::kSum, "v", "s"}};
    auto result = engine_.Query(txn->get(), table, spec);
    EXPECT_TRUE(result.ok());
    (void)engine_.Abort(txn->get());
    return result->column(0).IsNull(0) ? 0 : result->column(0).Int64At(0);
  }

  int64_t TableId(const std::string& table) {
    auto meta = engine_.GetTable(table);
    EXPECT_TRUE(meta.ok());
    return meta->table_id;
  }

  engine::PolarisEngine engine_;
};

TEST_F(StoTest, HealthDetectsFragmentation) {
  ASSERT_TRUE(engine_.CreateTable("t", KvSchema()).ok());
  MustInsert("t", Rows(100));
  auto health = engine_.sto()->EvaluateHealth(TableId("t"));
  ASSERT_TRUE(health.ok());
  EXPECT_TRUE(health->healthy());
  // Delete 40% of rows -> every touched file crosses the 20% threshold.
  MustDeleteWhereKLt("t", 40);
  health = engine_.sto()->EvaluateHealth(TableId("t"));
  ASSERT_TRUE(health.ok());
  EXPECT_FALSE(health->healthy());
  EXPECT_GT(health->deleted_rows, 0u);
}

TEST_F(StoTest, CompactionPurgesDeletedRowsAndPreservesData) {
  ASSERT_TRUE(engine_.CreateTable("t", KvSchema()).ok());
  MustInsert("t", Rows(100));
  MustDeleteWhereKLt("t", 40);
  int64_t sum_before = SumV("t");
  ASSERT_EQ(Count("t"), 60);

  auto stats = engine_.sto()->CompactTable(TableId("t"));
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats->input_files, 0u);
  EXPECT_EQ(stats->deleted_rows_purged, 40u);

  // Live data is unchanged; physical deleted rows are gone.
  EXPECT_EQ(Count("t"), 60);
  EXPECT_EQ(SumV("t"), sum_before);
  auto health = engine_.sto()->EvaluateHealth(TableId("t"));
  ASSERT_TRUE(health.ok());
  EXPECT_TRUE(health->healthy());
  EXPECT_EQ(health->deleted_rows, 0u);
}

TEST_F(StoTest, CompactionMergesSmallFiles) {
  ASSERT_TRUE(engine_.CreateTable("t", KvSchema()).ok());
  // Many tiny single-row inserts -> small-file problem (§5).
  for (int i = 0; i < 6; ++i) MustInsert("t", Rows(1, i));
  auto health = engine_.sto()->EvaluateHealth(TableId("t"));
  ASSERT_TRUE(health.ok());
  EXPECT_FALSE(health->healthy());
  auto stats = engine_.sto()->CompactTable(TableId("t"));
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->input_files, stats->output_files);
  EXPECT_EQ(Count("t"), 6);
}

TEST_F(StoTest, CompactionConflictsWithConcurrentUserTransaction) {
  // The paper's noted downside (§5.1): compaction uses the same SI
  // semantics, so a user transaction that commits a conflicting change
  // first causes the compaction to roll back.
  ASSERT_TRUE(engine_.CreateTable("t", KvSchema()).ok());
  MustInsert("t", Rows(100));
  MustDeleteWhereKLt("t", 40);

  // Start a user delete, don't commit yet.
  auto user = engine_.Begin();
  ASSERT_TRUE(user.ok());
  Conjunction conj;
  conj.predicates.push_back(
      Predicate::Make("k", CompareOp::kGe, Value::Int64(90)));
  ASSERT_TRUE(engine_.Delete(user->get(), "t", conj).ok());
  // User commits first; compaction (which would rewrite those files)
  // must then fail validation.
  ASSERT_TRUE(engine_.Commit(user->get()).ok());
  // Compaction began after the user committed would be fine; to force the
  // conflict we need compaction's snapshot to predate the user commit.
  // Run the race the other way instead: start compaction state by hand.
  // Simpler deterministic variant: begin another user txn, then compact,
  // then commit the user txn last and observe ITS conflict.
  auto user2 = engine_.Begin();
  ASSERT_TRUE(user2.ok());
  Conjunction conj2;
  conj2.predicates.push_back(
      Predicate::Make("k", CompareOp::kGe, Value::Int64(80)));
  ASSERT_TRUE(engine_.Delete(user2->get(), "t", conj2).ok());
  auto stats = engine_.sto()->CompactTable(TableId("t"));
  ASSERT_TRUE(stats.ok());  // compaction commits first
  EXPECT_TRUE(engine_.Commit(user2->get()).IsConflict());
}

TEST_F(StoTest, CheckpointTriggeredByManifestCount) {
  ASSERT_TRUE(engine_.CreateTable("t", KvSchema()).ok());
  int64_t table_id = TableId("t");
  // Two commits: below the threshold of 3.
  MustInsert("t", Rows(5));
  MustInsert("t", Rows(5, 100));
  auto created = engine_.sto()->MaybeCheckpoint(table_id);
  ASSERT_TRUE(created.ok());
  EXPECT_FALSE(*created);
  // Third commit crosses the threshold.
  MustInsert("t", Rows(5, 200));
  created = engine_.sto()->MaybeCheckpoint(table_id);
  ASSERT_TRUE(created.ok());
  EXPECT_TRUE(*created);
  // Verify the checkpoint record exists and reconstructs the state.
  auto txn = engine_.catalog()->Begin();
  auto ckpt = engine_.catalog()->GetLatestCheckpoint(txn.get(), table_id,
                                                     UINT64_MAX);
  ASSERT_TRUE(ckpt.ok());
  ASSERT_TRUE(ckpt->has_value());
  EXPECT_EQ((*ckpt)->sequence_id, 3u);
  auto blob = engine_.store()->Get((*ckpt)->path);
  ASSERT_TRUE(blob.ok());
  auto snapshot = lst::Checkpoint::Deserialize(*blob);
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->total_rows(), 15u);
  // Queries after the checkpoint still see everything.
  EXPECT_EQ(Count("t"), 15);
}

TEST_F(StoTest, CheckpointNeverConflictsWithWriters) {
  ASSERT_TRUE(engine_.CreateTable("t", KvSchema()).ok());
  for (int i = 0; i < 3; ++i) MustInsert("t", Rows(5, i * 100));
  // A concurrent writer is active while the checkpoint commits.
  auto writer = engine_.Begin();
  ASSERT_TRUE(engine_.Insert(writer->get(), "t", Rows(5, 999)).ok());
  auto created = engine_.sto()->MaybeCheckpoint(TableId("t"));
  ASSERT_TRUE(created.ok());
  EXPECT_TRUE(*created);
  EXPECT_TRUE(engine_.Commit(writer->get()).ok());  // no conflict (§5.2)
}

TEST_F(StoTest, GarbageCollectionRemovesAbortedLeftovers) {
  ASSERT_TRUE(engine_.CreateTable("t", KvSchema()).ok());
  MustInsert("t", Rows(10));
  auto* store = static_cast<storage::MemoryObjectStore*>(engine_.base_store());
  size_t committed_count = store->BlobCount();

  // Aborted transaction leaves orphan blobs.
  auto txn = engine_.Begin();
  ASSERT_TRUE(engine_.Insert(txn->get(), "t", Rows(10, 100)).ok());
  ASSERT_TRUE(engine_.Abort(txn->get()).ok());
  EXPECT_GT(store->BlobCount(), committed_count);

  // GC with no active transactions: orphans are older than the horizon.
  engine_.clock()->Advance(10'000'000);
  auto stats = engine_.sto()->RunGarbageCollection();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats->blobs_deleted, 0u);
  EXPECT_EQ(store->BlobCount(), committed_count);
  EXPECT_EQ(Count("t"), 10);  // live data untouched
}

TEST_F(StoTest, GarbageCollectionRespectsActiveTransactions) {
  ASSERT_TRUE(engine_.CreateTable("t", KvSchema()).ok());
  MustInsert("t", Rows(10));

  // An in-flight transaction has written files but not committed.
  auto inflight = engine_.Begin();
  ASSERT_TRUE(inflight.ok());
  engine_.clock()->Advance(100);
  ASSERT_TRUE(engine_.Insert(inflight->get(), "t", Rows(10, 100)).ok());

  auto stats = engine_.sto()->RunGarbageCollection();
  ASSERT_TRUE(stats.ok());
  // The unknown blobs are newer than the oldest active txn: retained.
  EXPECT_EQ(stats->blobs_deleted, 0u);
  EXPECT_GT(stats->blobs_retained_unknown, 0u);
  // The in-flight transaction can still commit successfully.
  ASSERT_TRUE(engine_.Commit(inflight->get()).ok());
  EXPECT_EQ(Count("t"), 20);
}

TEST_F(StoTest, GarbageCollectionHonoursRetentionForRemovedFiles) {
  ASSERT_TRUE(engine_.CreateTable("t", KvSchema()).ok());
  MustInsert("t", Rows(10));
  engine_.clock()->Advance(1000);
  common::Micros before_delete = engine_.clock()->Now();
  engine_.clock()->Advance(1000);
  MustDeleteWhereKLt("t", 100);  // all rows
  auto compacted = engine_.sto()->CompactTable(TableId("t"));
  ASSERT_TRUE(compacted.ok());  // data file becomes logically removed

  // Within retention: nothing deleted; the old snapshot stays queryable.
  auto stats = engine_.sto()->RunGarbageCollection();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->blobs_deleted, 0u);
  {
    auto txn = engine_.Begin();
    engine::QuerySpec spec;
    spec.aggregates = {{AggFunc::kCount, "", "cnt"}};
    auto old_count =
        engine_.QueryAsOf(txn->get(), "t", before_delete, spec);
    ASSERT_TRUE(old_count.ok());
    EXPECT_EQ(old_count->column(0).Int64At(0), 10);
  }

  // Past retention: the removed data file is reclaimed.
  engine_.clock()->Advance(2'000'000);  // > 1s retention
  stats = engine_.sto()->RunGarbageCollection();
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->blobs_deleted, 0u);
}

TEST_F(StoTest, GarbageCollectionIsCloneAware) {
  ASSERT_TRUE(engine_.CreateTable("src", KvSchema()).ok());
  MustInsert("src", Rows(10));
  ASSERT_TRUE(engine_.CloneTable("src", "dst").ok());
  // Delete everything from src and compact it, marking the shared data
  // file logically removed *for src*.
  MustDeleteWhereKLt("src", 100);
  ASSERT_TRUE(engine_.sto()->CompactTable(TableId("src")).ok());
  engine_.clock()->Advance(2'000'000);  // past retention
  auto stats = engine_.sto()->RunGarbageCollection();
  ASSERT_TRUE(stats.ok());
  // The clone still reads the shared file: it must not have been deleted.
  EXPECT_EQ(Count("dst"), 10);
}

TEST_F(StoTest, GarbageCollectionReclaimsDroppedTables) {
  ASSERT_TRUE(engine_.CreateTable("doomed", KvSchema()).ok());
  ASSERT_TRUE(engine_.CreateTable("keeper", KvSchema()).ok());
  MustInsert("doomed", Rows(10));
  MustInsert("keeper", Rows(10));
  auto* store = static_cast<storage::MemoryObjectStore*>(engine_.base_store());
  int64_t doomed_id = TableId("doomed");

  ASSERT_TRUE(engine_.DropTable("doomed").ok());
  // The blobs still exist until GC runs past the safety horizon.
  auto listed = store->List(storage::PathUtil::TableRoot(doomed_id));
  ASSERT_TRUE(listed.ok());
  ASSERT_GT(listed->size(), 0u);

  engine_.clock()->Advance(10'000'000);
  auto stats = engine_.sto()->RunGarbageCollection();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  listed = store->List(storage::PathUtil::TableRoot(doomed_id));
  ASSERT_TRUE(listed.ok());
  EXPECT_EQ(listed->size(), 0u);  // data, DVs and manifests all reclaimed
  // The catalog rows are purged too.
  auto txn = engine_.catalog()->Begin();
  auto manifests = engine_.catalog()->GetManifests(txn.get(), doomed_id);
  ASSERT_TRUE(manifests.ok());
  EXPECT_TRUE(manifests->empty());
  engine_.catalog()->Abort(txn.get());
  // The surviving table is untouched.
  EXPECT_EQ(Count("keeper"), 10);
}

TEST_F(StoTest, GcKeepsDroppedTableBlobsReferencedByClones) {
  ASSERT_TRUE(engine_.CreateTable("src", KvSchema()).ok());
  MustInsert("src", Rows(10));
  ASSERT_TRUE(engine_.CloneTable("src", "clone").ok());
  ASSERT_TRUE(engine_.DropTable("src").ok());
  engine_.clock()->Advance(10'000'000);
  auto stats = engine_.sto()->RunGarbageCollection();
  ASSERT_TRUE(stats.ok());
  // The clone still reads the shared data files that live under the
  // dropped source's path (zero-copy lineage, §6.2).
  EXPECT_EQ(Count("clone"), 10);
}

TEST_F(StoTest, PublisherEmitsDeltaLog) {
  ASSERT_TRUE(engine_.CreateTable("t", KvSchema()).ok());
  MustInsert("t", Rows(5));
  MustInsert("t", Rows(5, 100));
  ASSERT_TRUE(engine_.sto()->PublishTable(TableId("t")).ok());
  // Two versions published plus the data shortcut.
  auto log0 = engine_.store()->Get(
      storage::PathUtil::PublishedDeltaLogPath("t", 1));
  ASSERT_TRUE(log0.ok());
  EXPECT_NE(log0->find("\"add\""), std::string::npos);
  EXPECT_NE(log0->find("commitInfo"), std::string::npos);
  auto log1 = engine_.store()->Get(
      storage::PathUtil::PublishedDeltaLogPath("t", 2));
  ASSERT_TRUE(log1.ok());
  auto shortcut = engine_.store()->Get("published/t/_shortcut");
  ASSERT_TRUE(shortcut.ok());
  EXPECT_EQ(*shortcut, storage::PathUtil::DataDir(TableId("t")));
  // Publishing again is incremental: no new versions.
  ASSERT_TRUE(engine_.sto()->PublishTable(TableId("t")).ok());
  auto publisher_check = engine_.store()->Get(
      storage::PathUtil::PublishedDeltaLogPath("t", 3));
  EXPECT_TRUE(publisher_check.status().IsNotFound());
}

TEST_F(StoTest, DeltaRoundTripThroughExternalReader) {
  // The interop claim of §5.4: a third-party engine reading the published
  // Delta log sees exactly the committed table contents — same data
  // files, zero copies.
  ASSERT_TRUE(engine_.CreateTable("t", KvSchema()).ok());
  MustInsert("t", Rows(50));
  MustDeleteWhereKLt("t", 20);
  MustInsert("t", Rows(5, 1000));
  int64_t table_id = TableId("t");
  ASSERT_TRUE(engine_.sto()->PublishTable(table_id).ok());

  DeltaLakeReader reader(engine_.store(), engine_.cache());
  auto latest = reader.LatestVersion("t");
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(*latest, 3u);

  auto external = reader.ScanTable("t");
  ASSERT_TRUE(external.ok()) << external.status().ToString();
  // 50 - 20 deleted + 5 = 35 rows, identical multiset to the warehouse's
  // own view.
  EXPECT_EQ(external->num_rows(), 35u);
  std::multiset<int64_t> external_keys;
  for (size_t r = 0; r < external->num_rows(); ++r) {
    int col = external->schema().FindColumn("k");
    ASSERT_GE(col, 0);
    external_keys.insert(external->column(col).Int64At(r));
  }
  auto txn = engine_.Begin();
  auto internal = engine_.Query(txn->get(), "t", engine::QuerySpec{});
  ASSERT_TRUE(internal.ok());
  (void)engine_.Abort(txn->get());
  std::multiset<int64_t> internal_keys;
  for (size_t r = 0; r < internal->num_rows(); ++r) {
    internal_keys.insert(internal->column(0).Int64At(r));
  }
  EXPECT_EQ(external_keys, internal_keys);

  // Reading as of an earlier published version gives the earlier state.
  auto v1 = reader.ScanTable("t", 1);
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(v1->num_rows(), 50u);
  auto v2 = reader.ScanTable("t", 2);
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(v2->num_rows(), 30u);

  // Compaction + republish keeps the external view identical.
  ASSERT_TRUE(engine_.sto()->CompactTable(table_id).ok());
  ASSERT_TRUE(engine_.sto()->PublishTable(table_id).ok());
  auto after_compact = reader.ScanTable("t");
  ASSERT_TRUE(after_compact.ok());
  EXPECT_EQ(after_compact->num_rows(), 35u);
}

TEST_F(StoTest, DeltaReaderErrorHandling) {
  DeltaLakeReader reader(engine_.store(), engine_.cache());
  // Unpublished table: no versions, empty scan.
  auto latest = reader.LatestVersion("never_published");
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(*latest, 0u);
  auto scan = reader.ScanTable("never_published");
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->num_rows(), 0u);
  // Missing version is NotFound.
  EXPECT_TRUE(reader.ReadVersion("never_published", 3).status().IsNotFound());
  // A malformed action line (add without a path) is Corruption.
  ASSERT_TRUE(engine_.store()
                  ->Put(storage::PathUtil::PublishedDeltaLogPath("bad", 1),
                        "{\"add\":{\"nopath\":true}}\n")
                  .ok());
  EXPECT_TRUE(reader.ReadVersion("bad", 1).status().IsCorruption());
}

TEST_F(StoTest, DeltaJsonShapesEntries) {
  std::vector<lst::ManifestEntry> entries;
  lst::DataFileInfo file;
  file.path = "tables/1/data/abc.parquet";
  file.row_count = 10;
  file.byte_size = 1000;
  entries.push_back(lst::ManifestEntry::AddFile(file));
  entries.push_back(lst::ManifestEntry::RemoveFile("tables/1/data/old.parquet"));
  std::string json = DeltaPublisher::ToDeltaJson(entries, 7, 12345);
  EXPECT_NE(json.find("\"version\":7"), std::string::npos);
  EXPECT_NE(json.find("\"numRecords\":10"), std::string::npos);
  EXPECT_NE(json.find("\"remove\""), std::string::npos);
}

TEST_F(StoTest, RunOnceHealsUnhealthyTables) {
  ASSERT_TRUE(engine_.CreateTable("t", KvSchema()).ok());
  MustInsert("t", Rows(100));
  MustDeleteWhereKLt("t", 50);
  auto health = engine_.sto()->EvaluateHealth(TableId("t"));
  ASSERT_TRUE(health.ok());
  ASSERT_FALSE(health->healthy());
  ASSERT_TRUE(engine_.sto()->RunOnce().ok());
  health = engine_.sto()->EvaluateHealth(TableId("t"));
  ASSERT_TRUE(health.ok());
  EXPECT_TRUE(health->healthy());
  EXPECT_EQ(Count("t"), 50);
}

}  // namespace
}  // namespace polaris::sto
