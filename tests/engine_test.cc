// End-to-end tests of the PolarisEngine facade: DDL, CRUD, queries,
// transaction retries, time travel, zero-copy clone, backup/restore.

#include <gtest/gtest.h>

#include "engine/engine.h"

namespace polaris::engine {
namespace {

using catalog::IsolationMode;
using common::Status;
using exec::AggFunc;
using exec::CompareOp;
using exec::Conjunction;
using exec::Predicate;
using format::ColumnType;
using format::RecordBatch;
using format::Schema;
using format::Value;

Schema OrdersSchema() {
  return Schema({{"order_id", ColumnType::kInt64},
                 {"amount", ColumnType::kDouble},
                 {"status", ColumnType::kString}});
}

RecordBatch Orders(std::vector<std::tuple<int64_t, double, std::string>> rows) {
  RecordBatch batch{OrdersSchema()};
  for (auto& [id, amount, status] : rows) {
    EXPECT_TRUE(batch
                    .AppendRow({Value::Int64(id), Value::Double(amount),
                                Value::String(status)})
                    .ok());
  }
  return batch;
}

Conjunction WhereStatus(const std::string& s) {
  Conjunction conj;
  conj.predicates.push_back(
      Predicate::Make("status", CompareOp::kEq, Value::String(s)));
  return conj;
}

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : engine_(MakeOptions()) {}

  static EngineOptions MakeOptions() {
    EngineOptions options;
    options.num_cells = 4;
    options.worker_threads = 2;
    return options;
  }

  /// COUNT(*) of a table in a fresh transaction.
  int64_t Count(const std::string& table) {
    auto txn = engine_.Begin();
    EXPECT_TRUE(txn.ok());
    QuerySpec spec;
    spec.aggregates = {{AggFunc::kCount, "", "cnt"}};
    auto result = engine_.Query(txn->get(), table, spec);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    (void)engine_.Abort(txn->get());
    return result->column(0).Int64At(0);
  }

  double SumAmount(const std::string& table) {
    auto txn = engine_.Begin();
    EXPECT_TRUE(txn.ok());
    QuerySpec spec;
    spec.aggregates = {{AggFunc::kSum, "amount", "total"}};
    auto result = engine_.Query(txn->get(), table, spec);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    (void)engine_.Abort(txn->get());
    if (result->column(0).IsNull(0)) return 0.0;
    return result->column(0).DoubleAt(0);
  }

  PolarisEngine engine_;
};

TEST_F(EngineTest, CreateInsertQueryRoundTrip) {
  ASSERT_TRUE(engine_.CreateTable("orders", OrdersSchema()).ok());
  ASSERT_TRUE(engine_
                  .RunInTransaction([&](txn::Transaction* txn) {
                    return engine_
                        .Insert(txn, "orders",
                                Orders({{1, 10.0, "open"},
                                        {2, 20.0, "open"},
                                        {3, 30.0, "shipped"}}))
                        .status();
                  })
                  .ok());
  EXPECT_EQ(Count("orders"), 3);
  EXPECT_DOUBLE_EQ(SumAmount("orders"), 60.0);

  // Filtered projection query.
  auto txn = engine_.Begin();
  QuerySpec spec;
  spec.projection = {"order_id"};
  spec.filter = WhereStatus("open");
  auto result = engine_.Query(txn->get(), "orders", spec);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 2u);
}

TEST_F(EngineTest, CreateTableTwiceFails) {
  ASSERT_TRUE(engine_.CreateTable("t", OrdersSchema()).ok());
  EXPECT_TRUE(engine_.CreateTable("t", OrdersSchema()).status().IsAlreadyExists());
}

TEST_F(EngineTest, QueryUnknownTableFails) {
  auto txn = engine_.Begin();
  EXPECT_TRUE(
      engine_.Query(txn->get(), "ghost", QuerySpec{}).status().IsNotFound());
}

TEST_F(EngineTest, DeleteAndUpdate) {
  ASSERT_TRUE(engine_.CreateTable("orders", OrdersSchema()).ok());
  ASSERT_TRUE(engine_
                  .RunInTransaction([&](txn::Transaction* txn) {
                    return engine_
                        .Insert(txn, "orders",
                                Orders({{1, 10, "open"},
                                        {2, 20, "open"},
                                        {3, 30, "shipped"}}))
                        .status();
                  })
                  .ok());
  // DELETE WHERE status = 'shipped'.
  ASSERT_TRUE(engine_
                  .RunInTransaction([&](txn::Transaction* txn) {
                    auto n = engine_.Delete(txn, "orders",
                                            WhereStatus("shipped"));
                    POLARIS_RETURN_IF_ERROR(n.status());
                    EXPECT_EQ(*n, 1u);
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(Count("orders"), 2);
  // UPDATE amount += 5 WHERE status = 'open'.
  ASSERT_TRUE(engine_
                  .RunInTransaction([&](txn::Transaction* txn) {
                    std::vector<exec::Assignment> set = {
                        {"amount", exec::Assignment::Kind::kAddDouble,
                         Value::Double(5.0)}};
                    auto n = engine_.Update(txn, "orders",
                                            WhereStatus("open"), set);
                    POLARIS_RETURN_IF_ERROR(n.status());
                    EXPECT_EQ(*n, 2u);
                    return Status::OK();
                  })
                  .ok());
  EXPECT_DOUBLE_EQ(SumAmount("orders"), 40.0);
}

TEST_F(EngineTest, GroupByQuery) {
  ASSERT_TRUE(engine_.CreateTable("orders", OrdersSchema()).ok());
  ASSERT_TRUE(engine_
                  .RunInTransaction([&](txn::Transaction* txn) {
                    return engine_
                        .Insert(txn, "orders",
                                Orders({{1, 10, "a"},
                                        {2, 20, "a"},
                                        {3, 5, "b"}}))
                        .status();
                  })
                  .ok());
  auto txn = engine_.Begin();
  QuerySpec spec;
  spec.group_by = {"status"};
  spec.aggregates = {{AggFunc::kSum, "amount", "total"},
                     {AggFunc::kCount, "", "cnt"}};
  auto result = engine_.Query(txn->get(), "orders", spec);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_rows(), 2u);
  std::map<std::string, double> totals;
  for (size_t r = 0; r < result->num_rows(); ++r) {
    totals[result->column(0).StringAt(r)] = result->column(1).DoubleAt(r);
  }
  EXPECT_DOUBLE_EQ(totals["a"], 30.0);
  EXPECT_DOUBLE_EQ(totals["b"], 5.0);
}

TEST_F(EngineTest, EmptyTableAggregatesAndScans) {
  ASSERT_TRUE(engine_.CreateTable("empty", OrdersSchema()).ok());
  EXPECT_EQ(Count("empty"), 0);
  auto txn = engine_.Begin();
  QuerySpec spec;
  spec.projection = {"order_id"};
  auto result = engine_.Query(txn->get(), "empty", spec);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 0u);
  EXPECT_EQ(result->num_columns(), 1u);
}

TEST_F(EngineTest, RunInTransactionRetriesConflicts) {
  ASSERT_TRUE(engine_.CreateTable("t", OrdersSchema()).ok());
  ASSERT_TRUE(engine_
                  .RunInTransaction([&](txn::Transaction* txn) {
                    return engine_
                        .Insert(txn, "t", Orders({{1, 1, "x"}, {2, 2, "y"}}))
                        .status();
                  })
                  .ok());
  // Interleave two deletes so the second body sees a conflict and retries.
  int attempts = 0;
  auto victim = engine_.Begin();
  ASSERT_TRUE(victim.ok());
  ASSERT_TRUE(engine_.Delete(victim->get(), "t", WhereStatus("x")).ok());
  Status st = engine_.RunInTransaction([&](txn::Transaction* txn) {
    ++attempts;
    POLARIS_RETURN_IF_ERROR(
        engine_.Delete(txn, "t", WhereStatus("y")).status());
    if (attempts == 1) {
      // Commit the competing transaction first: ours must conflict.
      POLARIS_RETURN_IF_ERROR(engine_.Commit(victim->get()));
    }
    return Status::OK();
  });
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(attempts, 2);
  EXPECT_EQ(Count("t"), 0);
}

TEST_F(EngineTest, SnapshotIsolationAcrossEngineApi) {
  ASSERT_TRUE(engine_.CreateTable("t", OrdersSchema()).ok());
  auto reader = engine_.Begin();
  ASSERT_TRUE(reader.ok());
  auto initial = engine_.Query(reader->get(), "t", QuerySpec{});
  ASSERT_TRUE(initial.ok());
  EXPECT_EQ(initial->num_rows(), 0u);
  ASSERT_TRUE(engine_
                  .RunInTransaction([&](txn::Transaction* txn) {
                    return engine_.Insert(txn, "t", Orders({{1, 1, "x"}}))
                        .status();
                  })
                  .ok());
  // The old reader's snapshot still sees zero rows.
  QuerySpec spec;
  spec.aggregates = {{AggFunc::kCount, "", "cnt"}};
  auto result = engine_.Query(reader->get(), "t", spec);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->column(0).Int64At(0), 0);
}

TEST_F(EngineTest, TimeTravelQueryAsOf) {
  ASSERT_TRUE(engine_.CreateTable("t", OrdersSchema()).ok());
  ASSERT_TRUE(engine_
                  .RunInTransaction([&](txn::Transaction* txn) {
                    return engine_.Insert(txn, "t", Orders({{1, 10, "v1"}}))
                        .status();
                  })
                  .ok());
  common::Micros v1_time = engine_.clock()->Now();
  engine_.clock()->Advance(10'000);
  ASSERT_TRUE(engine_
                  .RunInTransaction([&](txn::Transaction* txn) {
                    POLARIS_RETURN_IF_ERROR(
                        engine_.Delete(txn, "t", WhereStatus("v1")).status());
                    return engine_.Insert(txn, "t", Orders({{2, 20, "v2"}}))
                        .status();
                  })
                  .ok());
  EXPECT_EQ(Count("t"), 1);
  auto txn = engine_.Begin();
  QuerySpec spec;
  spec.projection = {"status"};
  auto old_result = engine_.QueryAsOf(txn->get(), "t", v1_time, spec);
  ASSERT_TRUE(old_result.ok());
  ASSERT_EQ(old_result->num_rows(), 1u);
  EXPECT_EQ(old_result->column(0).StringAt(0), "v1");
}

TEST_F(EngineTest, ZeroCopyClone) {
  ASSERT_TRUE(engine_.CreateTable("src", OrdersSchema()).ok());
  ASSERT_TRUE(engine_
                  .RunInTransaction([&](txn::Transaction* txn) {
                    return engine_
                        .Insert(txn, "src", Orders({{1, 10, "a"}, {2, 20, "b"}}))
                        .status();
                  })
                  .ok());
  auto store_stats_before =
      static_cast<storage::MemoryObjectStore*>(engine_.base_store())->stats();
  auto clone = engine_.CloneTable("src", "dst");
  ASSERT_TRUE(clone.ok()) << clone.status().ToString();
  // The clone wrote no data blobs (bytes_written unchanged): metadata only.
  auto store_stats_after =
      static_cast<storage::MemoryObjectStore*>(engine_.base_store())->stats();
  EXPECT_EQ(store_stats_after.bytes_written,
            store_stats_before.bytes_written);
  EXPECT_EQ(Count("dst"), 2);

  // The tables evolve independently after the clone (§6.2).
  ASSERT_TRUE(engine_
                  .RunInTransaction([&](txn::Transaction* txn) {
                    return engine_.Delete(txn, "dst", WhereStatus("a"))
                        .status();
                  })
                  .ok());
  EXPECT_EQ(Count("dst"), 1);
  EXPECT_EQ(Count("src"), 2);
  ASSERT_TRUE(engine_
                  .RunInTransaction([&](txn::Transaction* txn) {
                    return engine_.Insert(txn, "src", Orders({{3, 30, "c"}}))
                        .status();
                  })
                  .ok());
  EXPECT_EQ(Count("src"), 3);
  EXPECT_EQ(Count("dst"), 1);
}

TEST_F(EngineTest, CloneAsOfEarlierPoint) {
  ASSERT_TRUE(engine_.CreateTable("src", OrdersSchema()).ok());
  ASSERT_TRUE(engine_
                  .RunInTransaction([&](txn::Transaction* txn) {
                    return engine_.Insert(txn, "src", Orders({{1, 10, "a"}}))
                        .status();
                  })
                  .ok());
  common::Micros early = engine_.clock()->Now();
  engine_.clock()->Advance(1000);
  ASSERT_TRUE(engine_
                  .RunInTransaction([&](txn::Transaction* txn) {
                    return engine_.Insert(txn, "src", Orders({{2, 20, "b"}}))
                        .status();
                  })
                  .ok());
  auto clone = engine_.CloneTable("src", "old", early);
  ASSERT_TRUE(clone.ok());
  EXPECT_EQ(Count("old"), 1);
  EXPECT_EQ(Count("src"), 2);
}

TEST_F(EngineTest, BackupAndRestore) {
  ASSERT_TRUE(engine_.CreateTable("t", OrdersSchema()).ok());
  ASSERT_TRUE(engine_
                  .RunInTransaction([&](txn::Transaction* txn) {
                    return engine_.Insert(txn, "t", Orders({{1, 10, "keep"}}))
                        .status();
                  })
                  .ok());
  auto image = engine_.BackupDatabase();
  ASSERT_TRUE(image.ok());

  // Post-backup changes...
  ASSERT_TRUE(engine_
                  .RunInTransaction([&](txn::Transaction* txn) {
                    POLARIS_RETURN_IF_ERROR(
                        engine_.Insert(txn, "t", Orders({{2, 20, "new"}}))
                            .status());
                    return Status::OK();
                  })
                  .ok());
  ASSERT_TRUE(engine_.CreateTable("post_backup", OrdersSchema()).ok());
  EXPECT_EQ(Count("t"), 2);

  // ...are undone by the restore (zero data copies involved).
  ASSERT_TRUE(engine_.RestoreDatabase(*image).ok());
  EXPECT_EQ(Count("t"), 1);
  EXPECT_TRUE(engine_.GetTable("post_backup").status().IsNotFound());
}

TEST_F(EngineTest, RestoreRejectsCorruptImage) {
  EXPECT_TRUE(engine_.RestoreDatabase("garbage").IsCorruption());
}

TEST_F(EngineTest, MultiStatementExplicitTransaction) {
  ASSERT_TRUE(engine_.CreateTable("t", OrdersSchema()).ok());
  auto txn = engine_.Begin();
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(engine_.Insert(txn->get(), "t", Orders({{1, 10, "a"}})).ok());
  // Statement 2 sees statement 1's rows.
  QuerySpec spec;
  spec.aggregates = {{AggFunc::kCount, "", "cnt"}};
  auto mid = engine_.Query(txn->get(), "t", spec);
  ASSERT_TRUE(mid.ok());
  EXPECT_EQ(mid->column(0).Int64At(0), 1);
  ASSERT_TRUE(engine_.Delete(txn->get(), "t", WhereStatus("a")).ok());
  auto after = engine_.Query(txn->get(), "t", spec);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->column(0).Int64At(0), 0);
  ASSERT_TRUE(engine_.Commit(txn->get()).ok());
  EXPECT_EQ(Count("t"), 0);
}

TEST_F(EngineTest, EngineStatsAggregateSubsystems) {
  auto before = engine_.Stats();
  EXPECT_EQ(before.tables, 0u);
  ASSERT_TRUE(engine_.CreateTable("t", OrdersSchema()).ok());
  ASSERT_TRUE(engine_
                  .RunInTransaction([&](txn::Transaction* txn) {
                    return engine_.Insert(txn, "t", Orders({{1, 1, "x"}}))
                        .status();
                  })
                  .ok());
  (void)Count("t");
  auto after = engine_.Stats();
  EXPECT_EQ(after.tables, 1u);
  EXPECT_GT(after.catalog_commit_seq, before.catalog_commit_seq);
  EXPECT_GT(after.store.bytes_written, before.store.bytes_written);
  EXPECT_GT(after.catalog_live_keys, before.catalog_live_keys);
  EXPECT_EQ(after.active_transactions, 0u);
}

TEST_F(EngineTest, QueryStatsReportScanAndJob) {
  ASSERT_TRUE(engine_.CreateTable("t", OrdersSchema()).ok());
  ASSERT_TRUE(engine_
                  .RunInTransaction([&](txn::Transaction* txn) {
                    RecordBatch big{OrdersSchema()};
                    for (int i = 0; i < 1000; ++i) {
                      EXPECT_TRUE(big
                                      .AppendRow({Value::Int64(i),
                                                  Value::Double(i),
                                                  Value::String("s")})
                                      .ok());
                    }
                    return engine_.Insert(txn, "t", big).status();
                  })
                  .ok());
  auto txn = engine_.Begin();
  QueryStats stats;
  auto result = engine_.Query(txn->get(), "t", QuerySpec{}, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 1000u);
  EXPECT_GT(stats.scan.files_scanned, 0u);
  EXPECT_EQ(stats.scan.rows_output, 1000u);
  EXPECT_GT(stats.job.makespan_micros, 0);
  EXPECT_GT(stats.job.tasks_run, 0u);
}

}  // namespace
}  // namespace polaris::engine
