// Tests for the extension features: Z-order-style sort keys (§2.3),
// FE manifest-block compaction at commit (§3 footnote 3), catalog version
// vacuuming, the background STO daemon, and engine-level Serializable /
// RCSI transactions (§4.4.2).

#include <gtest/gtest.h>

#include <chrono>

#include "engine/engine.h"
#include "lst/manifest_io.h"
#include "sql/session.h"
#include "storage/memory_object_store.h"
#include "sto/daemon.h"

namespace polaris {
namespace {

using catalog::IsolationMode;
using common::Status;
using exec::AggFunc;
using exec::CompareOp;
using exec::Conjunction;
using exec::Predicate;
using format::ColumnType;
using format::RecordBatch;
using format::Schema;
using format::Value;

Schema KvSchema() {
  return Schema({{"k", ColumnType::kInt64}, {"v", ColumnType::kInt64}});
}

RecordBatch ShuffledRows(int n, uint64_t seed) {
  common::Random rng(seed);
  std::vector<int64_t> keys(n);
  for (int i = 0; i < n; ++i) keys[i] = i;
  for (int i = n - 1; i > 0; --i) {
    std::swap(keys[i], keys[rng.Uniform(static_cast<uint64_t>(i) + 1)]);
  }
  RecordBatch batch{KvSchema()};
  for (int64_t k : keys) {
    (void)batch.AppendRow({Value::Int64(k), Value::Int64(k)});
  }
  return batch;
}

// --- Sort keys (Z-order analogue, §2.3) -----------------------------------

class SortKeyTest : public ::testing::Test {
 protected:
  static engine::EngineOptions MakeOptions() {
    engine::EngineOptions options;
    options.num_cells = 1;  // single cell isolates the clustering effect
    options.worker_threads = 2;
    options.file_options.rows_per_row_group = 64;
    return options;
  }
};

TEST_F(SortKeyTest, SortedTablePrunesRowGroups) {
  engine::PolarisEngine sorted_engine(MakeOptions());
  engine::PolarisEngine unsorted_engine(MakeOptions());
  ASSERT_TRUE(sorted_engine.CreateTable("t", KvSchema(), "k").ok());
  ASSERT_TRUE(unsorted_engine.CreateTable("t", KvSchema()).ok());
  RecordBatch rows = ShuffledRows(1024, 7);
  for (auto* engine : {&sorted_engine, &unsorted_engine}) {
    ASSERT_TRUE(engine
                    ->RunInTransaction([&](txn::Transaction* txn) {
                      return engine->Insert(txn, "t", rows).status();
                    })
                    .ok());
  }

  engine::QuerySpec spec;
  spec.filter.predicates.push_back(
      Predicate::Make("k", CompareOp::kGe, Value::Int64(1000)));
  spec.aggregates = {{AggFunc::kCount, "", "n"}};

  engine::QueryStats sorted_stats;
  engine::QueryStats unsorted_stats;
  {
    auto txn = sorted_engine.Begin();
    auto result = sorted_engine.Query(txn->get(), "t", spec, &sorted_stats);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->column(0).Int64At(0), 24);
  }
  {
    auto txn = unsorted_engine.Begin();
    auto result =
        unsorted_engine.Query(txn->get(), "t", spec, &unsorted_stats);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->column(0).Int64At(0), 24);
  }
  // The clustered table skips most of its 16 row groups; the unsorted one
  // skips at most the few groups that happen to contain no matching key.
  EXPECT_GT(sorted_stats.scan.row_groups_skipped, 10u);
  EXPECT_GT(sorted_stats.scan.row_groups_skipped,
            unsorted_stats.scan.row_groups_skipped + 5);
}

TEST_F(SortKeyTest, SortColumnMustExist) {
  engine::PolarisEngine engine(MakeOptions());
  EXPECT_TRUE(engine.CreateTable("t", KvSchema(), "ghost")
                  .status()
                  .IsInvalidArgument());
}

TEST_F(SortKeyTest, CompactionPreservesClustering) {
  engine::PolarisEngine engine(MakeOptions());
  ASSERT_TRUE(engine.CreateTable("t", KvSchema(), "k").ok());
  // Two inserts -> two small files; delete some rows; compact.
  for (uint64_t seed : {1u, 2u}) {
    RecordBatch rows = ShuffledRows(256, seed);
    ASSERT_TRUE(engine
                    .RunInTransaction([&](txn::Transaction* txn) {
                      return engine.Insert(txn, "t", rows).status();
                    })
                    .ok());
  }
  Conjunction low;
  low.predicates.push_back(
      Predicate::Make("k", CompareOp::kLt, Value::Int64(64)));
  ASSERT_TRUE(engine
                  .RunInTransaction([&](txn::Transaction* txn) {
                    return engine.Delete(txn, "t", low).status();
                  })
                  .ok());
  auto meta = engine.GetTable("t");
  ASSERT_TRUE(meta.ok());
  ASSERT_TRUE(engine.sto()->CompactTable(meta->table_id).ok());

  // Post-compaction range scans still prune.
  engine::QuerySpec spec;
  spec.filter.predicates.push_back(
      Predicate::Make("k", CompareOp::kGe, Value::Int64(250)));
  spec.aggregates = {{AggFunc::kCount, "", "n"}};
  engine::QueryStats stats;
  auto txn = engine.Begin();
  auto result = engine.Query(txn->get(), "t", spec, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->column(0).Int64At(0), 12);  // 250..255 twice
  EXPECT_GT(stats.scan.row_groups_skipped, 0u);
}

TEST_F(SortKeyTest, SqlCreateTableOrderBy) {
  engine::PolarisEngine engine(MakeOptions());
  sql::SqlSession session(&engine);
  auto created =
      session.Execute("CREATE TABLE t (k BIGINT, v BIGINT) ORDER BY k");
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  auto meta = engine.GetTable("t");
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(meta->sort_column, "k");
  EXPECT_TRUE(session.Execute("CREATE TABLE u (k BIGINT) ORDER BY nope")
                  .status()
                  .IsInvalidArgument());
}

// --- FE manifest compaction at commit (§3 footnote 3) ------------------------

TEST(ManifestCompactionTest, FragmentedManifestIsRewrittenAtCommit) {
  engine::EngineOptions options;
  options.num_cells = 2;
  options.worker_threads = 2;
  options.txn_options.compact_manifest_blocks_above = 4;
  engine::PolarisEngine engine(options);
  ASSERT_TRUE(engine.CreateTable("t", KvSchema()).ok());

  auto txn = engine.Begin();
  ASSERT_TRUE(txn.ok());
  // 8 insert statements x 2 cells -> ~16 staged blocks appended.
  for (int s = 0; s < 8; ++s) {
    RecordBatch rows{KvSchema()};
    (void)rows.AppendRow({Value::Int64(s), Value::Int64(s)});
    (void)rows.AppendRow({Value::Int64(s + 100), Value::Int64(s)});
    ASSERT_TRUE(engine.Insert(txn->get(), "t", rows).ok());
  }
  auto manifest_path =
      engine.txn_manager()->PrepareWrite(txn->get(), engine.GetTable("t")->table_id);
  ASSERT_TRUE(manifest_path.ok());
  auto blocks_before = engine.store()->GetCommittedBlockList(*manifest_path);
  ASSERT_TRUE(blocks_before.ok());
  EXPECT_GT(blocks_before->size(), 4u);

  ASSERT_TRUE(engine.Commit(txn->get()).ok());
  auto blocks_after = engine.store()->GetCommittedBlockList(*manifest_path);
  ASSERT_TRUE(blocks_after.ok());
  EXPECT_EQ(blocks_after->size(), 1u);  // canonical single block

  // The rewritten manifest still reconstructs the same data.
  auto reader = engine.Begin();
  engine::QuerySpec spec;
  spec.aggregates = {{AggFunc::kCount, "", "n"}};
  auto count = engine.Query(reader->get(), "t", spec);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->column(0).Int64At(0), 16);
}

// --- Catalog vacuum via STO ------------------------------------------------------

TEST(VacuumTest, GcSweepVacuumsSupersededCatalogVersions) {
  engine::PolarisEngine engine;
  ASSERT_TRUE(engine.CreateTable("t", KvSchema()).ok());
  // Many mutating commits create version churn in WriteSets/Manifests.
  for (int i = 0; i < 10; ++i) {
    RecordBatch rows{KvSchema()};
    (void)rows.AppendRow({Value::Int64(i), Value::Int64(i)});
    ASSERT_TRUE(engine
                    .RunInTransaction([&](txn::Transaction* txn) {
                      return engine.Insert(txn, "t", rows).status();
                    })
                    .ok());
    Conjunction filter;
    filter.predicates.push_back(
        Predicate::Make("k", CompareOp::kEq, Value::Int64(i)));
    ASSERT_TRUE(engine
                    .RunInTransaction([&](txn::Transaction* txn) -> Status {
                      return engine.Delete(txn, "t", filter).status();
                    })
                    .ok());
  }
  // With no active transactions, vacuum inside the GC sweep can drop all
  // superseded versions: a second sweep finds nothing more to drop.
  engine.clock()->Advance(100LL * 24 * 3600 * 1'000'000);
  ASSERT_TRUE(engine.sto()->RunOnce(/*run_gc=*/true).ok());
  uint64_t removed_again =
      engine.catalog()->store()->Vacuum(engine.catalog()->LatestCommitSeq());
  EXPECT_EQ(removed_again, 0u);
  // And the data is intact.
  auto txn = engine.Begin();
  engine::QuerySpec spec;
  spec.aggregates = {{AggFunc::kCount, "", "n"}};
  auto count = engine.Query(txn->get(), "t", spec);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->column(0).Int64At(0), 0);
}

TEST(VacuumTest, MinActiveBeginSeqTracksOldestSnapshot) {
  engine::PolarisEngine engine;
  ASSERT_TRUE(engine.CreateTable("t", KvSchema()).ok());
  uint64_t seq_before = engine.catalog()->LatestCommitSeq();
  auto old_txn = engine.Begin();
  ASSERT_TRUE(old_txn.ok());
  // Commits advance the latest seq, but the active transaction pins the
  // vacuum horizon at its begin sequence.
  RecordBatch rows{KvSchema()};
  (void)rows.AppendRow({Value::Int64(1), Value::Int64(1)});
  ASSERT_TRUE(engine
                  .RunInTransaction([&](txn::Transaction* txn) {
                    return engine.Insert(txn, "t", rows).status();
                  })
                  .ok());
  EXPECT_EQ(engine.txn_manager()->MinActiveBeginSeq(), seq_before);
  ASSERT_TRUE(engine.Abort(old_txn->get()).ok());
  EXPECT_GT(engine.txn_manager()->MinActiveBeginSeq(), seq_before);
}

// --- Background STO daemon --------------------------------------------------------

TEST(StoDaemonTest, HealsStorageInBackground) {
  engine::EngineOptions options;
  options.num_cells = 2;
  options.worker_threads = 2;
  options.sto_options.min_file_rows = 8;
  options.sto_options.max_deleted_fraction = 0.1;
  engine::PolarisEngine engine(options);
  ASSERT_TRUE(engine.CreateTable("t", KvSchema()).ok());
  ASSERT_TRUE(engine
                  .RunInTransaction([&](txn::Transaction* txn) {
                    return engine.Insert(txn, "t", ShuffledRows(200, 3))
                        .status();
                  })
                  .ok());
  Conjunction low;
  low.predicates.push_back(
      Predicate::Make("k", CompareOp::kLt, Value::Int64(100)));
  ASSERT_TRUE(engine
                  .RunInTransaction([&](txn::Transaction* txn) {
                    return engine.Delete(txn, "t", low).status();
                  })
                  .ok());
  auto meta = engine.GetTable("t");
  ASSERT_TRUE(meta.ok());
  auto health = engine.sto()->EvaluateHealth(meta->table_id);
  ASSERT_TRUE(health.ok());
  ASSERT_FALSE(health->healthy());

  sto::StoDaemon daemon(engine.sto(), std::chrono::milliseconds(5),
                        /*gc_every_n_sweeps=*/2);
  daemon.Start();
  EXPECT_TRUE(daemon.running());
  daemon.WaitForSweeps(3);
  daemon.Stop();
  EXPECT_FALSE(daemon.running());
  EXPECT_GE(daemon.sweeps(), 3u);
  EXPECT_EQ(daemon.errors(), 0u);

  health = engine.sto()->EvaluateHealth(meta->table_id);
  ASSERT_TRUE(health.ok());
  EXPECT_TRUE(health->healthy());
  // Stop/Start cycles are safe.
  daemon.Start();
  daemon.WaitForSweeps(daemon.sweeps() + 1);
  daemon.Stop();
}

// --- Transaction-manifest overlay invariant (§3.2.3) -------------------------------

TEST(ManifestOverlayTest, ManifestBlobReplayMatchesInMemoryOverlay) {
  // The BE reads the transaction manifest and overlays it on the committed
  // snapshot (§3.2.3). Invariant: after every statement, replaying the
  // manifest blob over the transaction's base snapshot yields exactly the
  // transaction's current view.
  engine::EngineOptions options;
  options.num_cells = 4;
  options.txn_options.compact_manifest_blocks_above = 0;  // keep raw blocks
  engine::PolarisEngine engine(options);
  ASSERT_TRUE(engine.CreateTable("t", KvSchema()).ok());
  ASSERT_TRUE(engine
                  .RunInTransaction([&](txn::Transaction* txn) {
                    return engine.Insert(txn, "t", ShuffledRows(64, 1))
                        .status();
                  })
                  .ok());
  int64_t table_id = engine.GetTable("t")->table_id;

  auto txn = engine.Begin();
  ASSERT_TRUE(txn.ok());
  // Base = committed snapshot as this transaction sees it, captured via a
  // parallel reader at the same point in time.
  auto base_reader = engine.Begin();
  auto base = engine.txn_manager()->GetSnapshot(base_reader->get(), table_id);
  ASSERT_TRUE(base.ok());

  auto check_invariant = [&]() {
    auto manifest_path =
        engine.txn_manager()->PrepareWrite(txn->get(), table_id);
    ASSERT_TRUE(manifest_path.ok());
    auto blob = engine.store()->Get(*manifest_path);
    ASSERT_TRUE(blob.ok());
    auto entries = lst::ParseEntries(*blob);
    ASSERT_TRUE(entries.ok());
    lst::TableSnapshot replayed = *base;
    ASSERT_TRUE(replayed.Apply(*entries, 0).ok());
    auto current = engine.txn_manager()->GetSnapshot(txn->get(), table_id);
    ASSERT_TRUE(current.ok());
    EXPECT_EQ(replayed.files(), current->files());
  };

  // Statement 1: insert.
  ASSERT_TRUE(engine.Insert(txn->get(), "t", ShuffledRows(32, 2)).ok());
  check_invariant();
  // Statement 2: delete (forces a reconciling rewrite).
  Conjunction low;
  low.predicates.push_back(
      Predicate::Make("k", CompareOp::kLt, Value::Int64(10)));
  ASSERT_TRUE(engine.Delete(txn->get(), "t", low).ok());
  check_invariant();
  // Statement 3: update touching both committed and intra-txn files.
  std::vector<exec::Assignment> bump = {
      {"v", exec::Assignment::Kind::kAddInt64, Value::Int64(1)}};
  ASSERT_TRUE(engine.Update(txn->get(), "t", Conjunction{}, bump).ok());
  check_invariant();
  ASSERT_TRUE(engine.Abort(txn->get()).ok());
  ASSERT_TRUE(engine.Abort(base_reader->get()).ok());
}

// --- Restart / durability story (§6.3) ------------------------------------------------

TEST(RestartTest, NewEngineInstanceRestoresFromBackupOnSharedStore) {
  // "Restart" = a fresh engine process attaching to the same durable
  // OneLake store, recovering the catalog from the latest backup image —
  // the paper's zero-data-copy durability story.
  common::SimClock clock(1'000'000);
  storage::MemoryObjectStore store(&clock);
  std::string image;
  {
    engine::PolarisEngine first({}, &store, &clock);
    ASSERT_TRUE(first.CreateTable("t", KvSchema()).ok());
    ASSERT_TRUE(first
                    .RunInTransaction([&](txn::Transaction* txn) {
                      return first.Insert(txn, "t", ShuffledRows(100, 5))
                          .status();
                    })
                    .ok());
    auto backup = first.BackupDatabase();
    ASSERT_TRUE(backup.ok());
    image = *backup;
  }  // first engine instance gone
  engine::PolarisEngine second({}, &store, &clock);
  ASSERT_TRUE(second.RestoreDatabase(image).ok());
  auto txn = second.Begin();
  engine::QuerySpec spec;
  spec.aggregates = {{AggFunc::kCount, "", "n"},
                     {AggFunc::kSum, "v", "sum"}};
  auto result = second.Query(txn->get(), "t", spec);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->column(0).Int64At(0), 100);
  EXPECT_EQ(result->column(1).Int64At(0), 99 * 100 / 2);
  // And the recovered database is fully writable.
  ASSERT_TRUE(second.Abort(txn->get()).ok());
  ASSERT_TRUE(second
                  .RunInTransaction([&](txn::Transaction* t2) {
                    return second.Insert(t2, "t", ShuffledRows(10, 6))
                        .status();
                  })
                  .ok());
}

// --- Engine-level Serializable / RCSI (§4.4.2) --------------------------------------

TEST(IsolationLevelTest, SerializableRejectsWriteSkewAcrossTables) {
  // Two "constraint partners": each transaction reads the other's table
  // and inserts into its own. SI commits both; Serializable aborts one.
  for (auto mode :
       {IsolationMode::kSnapshot, IsolationMode::kSerializable}) {
    engine::PolarisEngine engine;
    ASSERT_TRUE(engine.CreateTable("a", KvSchema()).ok());
    ASSERT_TRUE(engine.CreateTable("b", KvSchema()).ok());

    auto t1 = engine.Begin(mode);
    auto t2 = engine.Begin(mode);
    ASSERT_TRUE(t1.ok());
    ASSERT_TRUE(t2.ok());
    engine::QuerySpec count;
    count.aggregates = {{AggFunc::kCount, "", "n"}};
    // t1 reads b, t2 reads a (both empty).
    auto r1 = engine.Query(t1->get(), "b", count);
    auto r2 = engine.Query(t2->get(), "a", count);
    ASSERT_TRUE(r1.ok());
    ASSERT_TRUE(r2.ok());
    EXPECT_EQ(r1->column(0).Int64At(0), 0);
    EXPECT_EQ(r2->column(0).Int64At(0), 0);
    // Each writes its own table (allowed only if the other stayed empty —
    // the classic write-skew constraint).
    RecordBatch row{KvSchema()};
    (void)row.AppendRow({Value::Int64(1), Value::Int64(1)});
    ASSERT_TRUE(engine.Insert(t1->get(), "a", row).ok());
    ASSERT_TRUE(engine.Insert(t2->get(), "b", row).ok());
    Status c1 = engine.Commit(t1->get());
    Status c2 = engine.Commit(t2->get());
    EXPECT_TRUE(c1.ok());
    if (mode == IsolationMode::kSnapshot) {
      EXPECT_TRUE(c2.ok()) << "SI permits write skew (§4.4.2)";
    } else {
      EXPECT_TRUE(c2.IsConflict())
          << "Serializable must reject the skew (§4.4.2)";
    }
  }
}

TEST(IsolationLevelTest, RcsiSessionSeesLatestCommits) {
  engine::PolarisEngine engine;
  ASSERT_TRUE(engine.CreateTable("t", KvSchema()).ok());
  auto rcsi = engine.Begin(IsolationMode::kReadCommittedSnapshot);
  ASSERT_TRUE(rcsi.ok());
  engine::QuerySpec spec;
  spec.aggregates = {{AggFunc::kCount, "", "n"}};
  auto before = engine.Query(rcsi->get(), "t", spec);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->column(0).Int64At(0), 0);
  RecordBatch row{KvSchema()};
  (void)row.AppendRow({Value::Int64(1), Value::Int64(1)});
  ASSERT_TRUE(engine
                  .RunInTransaction([&](txn::Transaction* txn) {
                    return engine.Insert(txn, "t", row).status();
                  })
                  .ok());
  auto after = engine.Query(rcsi->get(), "t", spec);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->column(0).Int64At(0), 1);  // not pinned to its snapshot
}

}  // namespace
}  // namespace polaris
