// Tests for per-statement resource accounting and the Query Store
// workload repository: SQL fingerprint normalization, per-fingerprint
// aggregates and interval bucketing on the engine clock, the bounded
// fingerprint set, the latency-regression SLO probe, EXPLAIN ANALYZE's
// terminal-outcome rendering, and a concurrent multi-session workload
// that runs under TSan.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/resource_usage.h"
#include "engine/engine.h"
#include "obs/query_store.h"
#include "sql/fingerprint.h"
#include "sql/session.h"
#include "storage/fault_injection_store.h"

namespace polaris {
namespace {

using common::ResourceUsageSnapshot;
using common::StatementOutcome;
using obs::QueryStore;
using obs::QueryStoreOptions;
using sql::FingerprintStatement;
using sql::SqlSession;

void MustExecute(SqlSession* session, const std::string& statement) {
  auto result = session->Execute(statement);
  ASSERT_TRUE(result.ok()) << statement << " -> "
                           << result.status().ToString();
}

// --- Fingerprint normalization ---------------------------------------------

TEST(FingerprintTest, StripsLiteralsAndUppercasesKeywords) {
  EXPECT_EQ(FingerprintStatement("select * from t where k = 42;"),
            "SELECT * FROM t WHERE k = ?");
  EXPECT_EQ(FingerprintStatement("SELECT v FROM t WHERE v = 1.5"),
            "SELECT v FROM t WHERE v = ?");
  EXPECT_EQ(FingerprintStatement("SELECT v FROM t WHERE s = 'abc'"),
            "SELECT v FROM t WHERE s = ?");
}

TEST(FingerprintTest, EquivalentStatementsShareAFingerprint) {
  // Different literals, casing, whitespace, row counts and a trailing
  // semicolon: one workload shape, one fingerprint.
  std::string canonical =
      FingerprintStatement("INSERT INTO t VALUES (1, 'a')");
  EXPECT_EQ(FingerprintStatement("insert   into t\nvalues (2,'b'), (3,'c');"),
            canonical);
  EXPECT_EQ(FingerprintStatement("INSERT INTO t VALUES (99, 'zzz');"),
            canonical);
  EXPECT_EQ(canonical, "INSERT INTO t VALUES ( ? , ? )");
}

TEST(FingerprintTest, DistinctShapesGetDistinctFingerprints) {
  EXPECT_NE(FingerprintStatement("SELECT * FROM a"),
            FingerprintStatement("SELECT * FROM b"));
  EXPECT_NE(sql::FingerprintId("SELECT * FROM a"),
            sql::FingerprintId("SELECT * FROM b"));
  // Ids are a pure function of the normalized text.
  EXPECT_EQ(sql::FingerprintId("SELECT * FROM a"),
            sql::FingerprintId("SELECT * FROM a"));
}

// --- QueryStore aggregates --------------------------------------------------

ResourceUsageSnapshot UsageWithWall(int64_t wall_us) {
  ResourceUsageSnapshot vec;
  vec.wall_us = wall_us;
  return vec;
}

TEST(QueryStoreTest, AggregatesOutcomesAndTotals) {
  common::SimClock clock(1);
  QueryStore store(&clock);

  ResourceUsageSnapshot vec;
  vec.wall_us = 1'000;
  vec.store_read_ops = 2;
  vec.store_read_bytes = 512;
  vec.rows_scanned = 10;
  vec.rows_returned = 3;
  store.Record("SELECT * FROM t WHERE k = ?", "SELECT",
               StatementOutcome::kOk, vec);
  store.Record("SELECT * FROM t WHERE k = ?", "SELECT",
               StatementOutcome::kOk, vec);
  store.Record("SELECT * FROM t WHERE k = ?", "SELECT",
               StatementOutcome::kError, UsageWithWall(500));

  auto rows = store.Snapshot();
  ASSERT_EQ(rows.size(), 1u);
  const auto& row = rows[0];
  EXPECT_EQ(row.fingerprint, "SELECT * FROM t WHERE k = ?");
  EXPECT_EQ(row.fingerprint_id,
            sql::FingerprintId("SELECT * FROM t WHERE k = ?"));
  EXPECT_EQ(row.kind, "SELECT");
  EXPECT_EQ(row.count, 3u);
  EXPECT_EQ(row.ok, 2u);
  EXPECT_EQ(row.errors, 1u);
  EXPECT_EQ(row.total_wall_us, 2'500);
  EXPECT_EQ(row.store_read_ops, 4u);
  EXPECT_EQ(row.store_read_bytes, 1'024u);
  EXPECT_EQ(row.rows_scanned, 20u);
  EXPECT_EQ(row.rows_returned, 6u);
  EXPECT_GT(row.wall_p99_us, 0);
  EXPECT_EQ(store.recorded_total(), 3u);
  EXPECT_EQ(store.fingerprints(), 1u);
}

TEST(QueryStoreTest, DisabledStoreRecordsNothing) {
  QueryStoreOptions options;
  options.enabled = false;
  common::SimClock clock(1);
  QueryStore store(&clock, options);
  store.Record("SELECT ?", "SELECT", StatementOutcome::kOk,
               UsageWithWall(10));
  EXPECT_EQ(store.recorded_total(), 0u);
  EXPECT_TRUE(store.Snapshot().empty());

  store.set_enabled(true);
  store.Record("SELECT ?", "SELECT", StatementOutcome::kOk,
               UsageWithWall(10));
  EXPECT_EQ(store.recorded_total(), 1u);
}

TEST(QueryStoreTest, IntervalBucketingFollowsTheEngineClock) {
  common::SimClock clock(1);
  QueryStoreOptions options;
  options.interval_micros = 1'000'000;
  options.max_intervals = 3;
  QueryStore store(&clock, options);

  store.Record("Q", "SELECT", StatementOutcome::kOk, UsageWithWall(100));
  store.Record("Q", "SELECT", StatementOutcome::kError, UsageWithWall(100));
  clock.Advance(1'000'000);  // next interval
  store.Record("Q", "SELECT", StatementOutcome::kOk, UsageWithWall(200));

  auto intervals = store.IntervalSnapshot();
  ASSERT_EQ(intervals.size(), 2u);
  // Newest first within a fingerprint.
  EXPECT_EQ(intervals[0].interval_start_us, 1'000'000);
  EXPECT_EQ(intervals[0].count, 1u);
  EXPECT_EQ(intervals[0].errors, 0u);
  EXPECT_EQ(intervals[1].interval_start_us, 0);
  EXPECT_EQ(intervals[1].count, 2u);
  EXPECT_EQ(intervals[1].errors, 1u);

  // The ring is bounded: after enough boundary crossings only
  // max_intervals buckets survive.
  for (int i = 0; i < 5; ++i) {
    clock.Advance(1'000'000);
    store.Record("Q", "SELECT", StatementOutcome::kOk, UsageWithWall(50));
  }
  EXPECT_EQ(store.IntervalSnapshot().size(), 3u);
}

TEST(QueryStoreTest, BoundedFingerprintSetFoldsIntoOther) {
  common::SimClock clock(1);
  QueryStoreOptions options;
  options.max_fingerprints = 2;
  QueryStore store(&clock, options);

  store.Record("A", "SELECT", StatementOutcome::kOk, UsageWithWall(10));
  store.Record("B", "SELECT", StatementOutcome::kOk, UsageWithWall(10));
  store.Record("C", "SELECT", StatementOutcome::kOk, UsageWithWall(10));
  store.Record("D", "SELECT", StatementOutcome::kOk, UsageWithWall(10));
  store.Record("A", "SELECT", StatementOutcome::kOk, UsageWithWall(10));

  EXPECT_EQ(store.recorded_total(), 5u);
  EXPECT_EQ(store.overflow_total(), 2u);  // C and D folded
  auto rows = store.Snapshot();
  ASSERT_EQ(rows.size(), 3u);  // A, B, "(other)"
  bool found_other = false;
  for (const auto& row : rows) {
    if (row.fingerprint == "(other)") {
      found_other = true;
      EXPECT_EQ(row.count, 2u);
      EXPECT_EQ(row.kind, "(mixed)");
    }
  }
  EXPECT_TRUE(found_other);

  store.Reset();
  EXPECT_EQ(store.recorded_total(), 0u);
  EXPECT_TRUE(store.Snapshot().empty());
}

TEST(QueryStoreTest, TopByWallTimeRanksHeaviestFirst) {
  common::SimClock clock(1);
  QueryStore store(&clock);
  store.Record("cheap", "SELECT", StatementOutcome::kOk, UsageWithWall(10));
  store.Record("costly", "SELECT", StatementOutcome::kOk,
               UsageWithWall(10'000));
  store.Record("middling", "SELECT", StatementOutcome::kOk,
               UsageWithWall(500));

  auto top = store.TopByWallTime(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].fingerprint, "costly");
  EXPECT_EQ(top[1].fingerprint, "middling");
}

// --- Latency-regression probe -----------------------------------------------

TEST(QueryStoreTest, WorstRegressionComparesCurrentToTrailingBaseline) {
  common::SimClock clock(1);
  QueryStoreOptions options;
  options.interval_micros = 1'000'000;
  options.regression_min_samples = 4;
  QueryStore store(&clock, options);

  // Two fast baseline intervals, then a 50x-slower current interval.
  for (int interval = 0; interval < 2; ++interval) {
    for (int i = 0; i < 4; ++i) {
      store.Record("Q", "SELECT", StatementOutcome::kOk,
                   UsageWithWall(1'000));
    }
    clock.Advance(1'000'000);
  }
  for (int i = 0; i < 4; ++i) {
    store.Record("Q", "SELECT", StatementOutcome::kOk,
                 UsageWithWall(50'000));
  }

  QueryStore::Regression worst;
  ASSERT_TRUE(store.WorstRegression(&worst));
  EXPECT_EQ(worst.fingerprint, "Q");
  EXPECT_GT(worst.ratio, 10.0);
  EXPECT_GT(worst.current_p99_us, worst.baseline_p99_us);
  EXPECT_EQ(worst.current_samples, 4u);
  EXPECT_EQ(worst.baseline_samples, 8u);
}

TEST(QueryStoreTest, RegressionAbstainsWithoutEnoughSamples) {
  common::SimClock clock(1);
  QueryStoreOptions options;
  options.interval_micros = 1'000'000;
  options.regression_min_samples = 16;
  QueryStore store(&clock, options);

  // Plenty of intervals but too few samples per side.
  for (int interval = 0; interval < 3; ++interval) {
    store.Record("Q", "SELECT", StatementOutcome::kOk, UsageWithWall(100));
    clock.Advance(1'000'000);
  }
  QueryStore::Regression worst;
  EXPECT_FALSE(store.WorstRegression(&worst));
}

TEST(QueryStoreTest, SeededRegressionFiresTheSloRule) {
  common::SimClock clock(1);
  engine::EngineOptions options;
  options.sampler_period_micros = 0;  // drive the watchdog by hand
  options.query_store.interval_micros = 1'000'000;
  options.query_store.regression_min_samples = 8;
  engine::PolarisEngine engine(options, /*store=*/nullptr, &clock);

  // Seed the engine's own store: a fast trailing baseline, then a current
  // interval an order of magnitude slower — past the rule's fail
  // threshold (10x).
  QueryStore* qstore = engine.query_store();
  for (int interval = 0; interval < 2; ++interval) {
    for (int i = 0; i < 8; ++i) {
      qstore->Record("SELECT * FROM orders WHERE id = ?", "SELECT",
                     StatementOutcome::kOk, UsageWithWall(1'000));
    }
    clock.Advance(1'000'000);
  }
  for (int i = 0; i < 8; ++i) {
    qstore->Record("SELECT * FROM orders WHERE id = ?", "SELECT",
                   StatementOutcome::kOk, UsageWithWall(60'000));
  }

  engine.SampleObservabilityOnce();

  // The verdict lands in sys.dm_health through the normal SQL surface.
  SqlSession session(&engine);
  auto health = session.Execute(
      "SELECT status, value FROM sys.dm_health "
      "WHERE rule = 'query-store-latency-regression'");
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  ASSERT_EQ(health->batch.num_rows(), 1u);
  EXPECT_EQ(health->batch.column(0).StringAt(0), "FAIL");
  EXPECT_GT(health->batch.column(1).DoubleAt(0), 10.0);

  // The transition left a structured event.
  bool saw_transition = false;
  for (const auto& rec : engine.events()->Snapshot()) {
    if (rec.name == "health.transition") {
      for (const auto& [key, value] : rec.fields) {
        if (key == "rule" && value == "query-store-latency-regression") {
          saw_transition = true;
        }
      }
    }
  }
  EXPECT_TRUE(saw_transition);
}

// --- End-to-end through the SQL surface -------------------------------------

engine::EngineOptions ManualSamplerOptions() {
  engine::EngineOptions options;
  options.sampler_period_micros = 0;
  return options;
}

TEST(QueryStoreSqlTest, StatementsAreRecordedWithResourceVectors) {
  engine::PolarisEngine engine(ManualSamplerOptions());
  SqlSession session(&engine);

  MustExecute(&session, "CREATE TABLE t (k BIGINT, v BIGINT)");
  MustExecute(&session, "INSERT INTO t VALUES (1, 10)");
  MustExecute(&session, "INSERT INTO t VALUES (2, 20)");
  MustExecute(&session, "INSERT INTO t VALUES (3, 30)");
  MustExecute(&session, "SELECT * FROM t");
  auto bad = session.Execute("SELECT * FROM missing");
  EXPECT_FALSE(bad.ok());

  // SET DEADLINE is session control, not workload: it bypasses accounting.
  uint64_t before = engine.query_store()->recorded_total();
  MustExecute(&session, "SET DEADLINE 0");
  EXPECT_EQ(engine.query_store()->recorded_total(), before);

  auto rows = engine.query_store()->Snapshot();
  const obs::QueryStoreEntryRow* insert_row = nullptr;
  const obs::QueryStoreEntryRow* select_row = nullptr;
  const obs::QueryStoreEntryRow* missing_row = nullptr;
  for (const auto& row : rows) {
    if (row.fingerprint == "INSERT INTO t VALUES ( ? , ? )") {
      insert_row = &row;
    }
    if (row.fingerprint == "SELECT * FROM t") select_row = &row;
    if (row.fingerprint == "SELECT * FROM missing") missing_row = &row;
  }
  ASSERT_NE(insert_row, nullptr);
  EXPECT_EQ(insert_row->count, 3u);
  EXPECT_EQ(insert_row->ok, 3u);
  EXPECT_EQ(insert_row->kind, "INSERT");
  // Committing an insert writes the log/data/manifest through the charged
  // storage decorators.
  EXPECT_GT(insert_row->store_write_ops, 0u);
  EXPECT_GT(insert_row->store_write_bytes, 0u);

  ASSERT_NE(select_row, nullptr);
  EXPECT_EQ(select_row->ok, 1u);
  EXPECT_EQ(select_row->rows_returned, 3u);
  EXPECT_GT(select_row->rows_scanned, 0u);

  ASSERT_NE(missing_row, nullptr);
  EXPECT_EQ(missing_row->errors, 1u);

  // The same aggregates surface in the DMV through the SQL executor.
  auto view = session.Execute(
      "SELECT fingerprint, executions, ok FROM sys.query_store "
      "WHERE kind = 'INSERT'");
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  ASSERT_EQ(view->batch.num_rows(), 1u);
  EXPECT_EQ(view->batch.column(0).StringAt(0),
            "INSERT INTO t VALUES ( ? , ? )");
  EXPECT_EQ(view->batch.column(1).Int64At(0), 3);
  EXPECT_EQ(view->batch.column(2).Int64At(0), 3);

  auto intervals = session.Execute(
      "SELECT fingerprint, executions FROM sys.query_store_intervals");
  ASSERT_TRUE(intervals.ok()) << intervals.status().ToString();
  EXPECT_GT(intervals->batch.num_rows(), 0u);
}

TEST(QueryStoreSqlTest, ExplainAnalyzeAppendsTheResourceVector) {
  engine::PolarisEngine engine(ManualSamplerOptions());
  SqlSession session(&engine);
  MustExecute(&session, "CREATE TABLE t (k BIGINT)");
  MustExecute(&session, "INSERT INTO t VALUES (7)");

  auto result = session.Execute("EXPLAIN ANALYZE SELECT * FROM t");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NE(result->message.find("resources:"), std::string::npos)
      << result->message;
  EXPECT_NE(result->message.find("rows:"), std::string::npos);
  // A healthy statement reports no terminal outcome line.
  EXPECT_EQ(result->message.find("outcome:"), std::string::npos)
      << result->message;
}

TEST(QueryStoreSqlTest, ExplainAnalyzeExpiredRendersPartialProfile) {
  engine::PolarisEngine engine(ManualSamplerOptions());
  SqlSession session(&engine);
  MustExecute(&session, "CREATE TABLE t (k BIGINT)");
  for (int i = 0; i < 4; ++i) {
    MustExecute(&session,
                "INSERT INTO t VALUES (" + std::to_string(i) + ")");
  }

  // Brownout: reads cost 30ms of virtual time each, so a 50ms budget dies
  // mid-scan — but EXPLAIN ANALYZE still renders the partial profile.
  storage::FaultPolicy slow;
  slow.read_latency_micros = 30'000;
  engine.fault_store()->set_policy(slow);
  MustExecute(&session, "SET DEADLINE 50");

  auto result = session.Execute("EXPLAIN ANALYZE SELECT COUNT(*) FROM t");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NE(result->message.find("resources:"), std::string::npos)
      << result->message;
  EXPECT_NE(result->message.find("outcome: expired"), std::string::npos)
      << result->message;

  // Accounting saw the true outcome even though the client got a profile.
  bool found = false;
  for (const auto& row : engine.query_store()->Snapshot()) {
    if (row.fingerprint == "EXPLAIN ANALYZE SELECT COUNT ( * ) FROM t") {
      found = true;
      EXPECT_EQ(row.expired, 1u);
      EXPECT_GT(row.total_wall_us, 0);
    }
  }
  EXPECT_TRUE(found);

  engine.fault_store()->set_policy(storage::FaultPolicy{});
  MustExecute(&session, "SET DEADLINE 0");
}

TEST(QueryStoreSqlTest, ExplainAnalyzeShedStatementReportsNoProfile) {
  engine::EngineOptions options = ManualSamplerOptions();
  options.admission.max_concurrent = 1;
  options.admission.max_queue = 0;  // arrivals beyond the slot shed at once
  engine::PolarisEngine engine(options);
  SqlSession session(&engine);
  MustExecute(&session, "CREATE TABLE t (k BIGINT)");

  // Occupy the only slot so the next gated statement is shed.
  common::Deadline unbounded;
  auto slot = engine.admission()->Admit(unbounded, "occupier");
  ASSERT_TRUE(slot.ok());

  auto plain = session.Execute("SELECT * FROM t");
  ASSERT_FALSE(plain.ok());
  EXPECT_TRUE(plain.status().IsUnavailable()) << plain.status().ToString();

  auto result = session.Execute("EXPLAIN ANALYZE SELECT * FROM t");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NE(result->message.find("statement did not run (no profile)"),
            std::string::npos)
      << result->message;
  EXPECT_NE(result->message.find("resources:"), std::string::npos);
  EXPECT_NE(result->message.find("outcome: shed"), std::string::npos)
      << result->message;

  bool found = false;
  for (const auto& row : engine.query_store()->Snapshot()) {
    if (row.fingerprint == "EXPLAIN ANALYZE SELECT * FROM t") {
      found = true;
      EXPECT_EQ(row.shed, 1u);
    }
  }
  EXPECT_TRUE(found);
}

TEST(QueryStoreSqlTest, ConcurrentSessionsRecordEveryStatement) {
  engine::PolarisEngine engine(ManualSamplerOptions());
  {
    SqlSession setup(&engine);
    for (int t = 0; t < 4; ++t) {
      MustExecute(&setup,
                  "CREATE TABLE t" + std::to_string(t) + " (k BIGINT)");
    }
  }
  const uint64_t before = engine.query_store()->recorded_total();

  constexpr int kThreads = 4;
  constexpr int kStatements = 40;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&engine, t] {
      SqlSession session(&engine);  // sessions are per-connection
      const std::string table = "t" + std::to_string(t);
      for (int i = 0; i < kStatements; ++i) {
        if (i % 2 == 0) {
          auto insert = session.Execute("INSERT INTO " + table +
                                        " VALUES (" + std::to_string(i) +
                                        ")");
          ASSERT_TRUE(insert.ok()) << insert.status().ToString();
        } else {
          auto select = session.Execute("SELECT COUNT(*) FROM " + table);
          ASSERT_TRUE(select.ok()) << select.status().ToString();
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();

  // Every statement of every session was recorded exactly once.
  EXPECT_EQ(engine.query_store()->recorded_total() - before,
            static_cast<uint64_t>(kThreads * kStatements));
  uint64_t counted = 0;
  for (const auto& row : engine.query_store()->Snapshot()) {
    counted += row.count;
  }
  EXPECT_EQ(counted, engine.query_store()->recorded_total());
  // Per-table INSERT and SELECT fingerprints each saw their half.
  for (const auto& row : engine.query_store()->Snapshot()) {
    if (row.fingerprint.rfind("INSERT INTO t", 0) == 0) {
      EXPECT_EQ(row.count, static_cast<uint64_t>(kStatements / 2))
          << row.fingerprint;
      EXPECT_EQ(row.ok, row.count);
    }
  }
}

}  // namespace
}  // namespace polaris
