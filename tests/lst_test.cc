// Unit tests for the log-structured-table layer: deletion vectors,
// manifests, snapshot replay/reconciliation, checkpoints, and the
// snapshot builder with its caches.

#include <gtest/gtest.h>

#include "common/clock.h"
#include "lst/checkpoint.h"
#include "lst/deletion_vector.h"
#include "lst/manifest.h"
#include "lst/manifest_io.h"
#include "lst/snapshot_builder.h"
#include "lst/table_snapshot.h"
#include "storage/memory_object_store.h"

namespace polaris::lst {
namespace {

TEST(DeletionVectorTest, MarkAndQuery) {
  DeletionVector dv;
  EXPECT_TRUE(dv.empty());
  dv.MarkDeleted(0);
  dv.MarkDeleted(63);
  dv.MarkDeleted(64);
  dv.MarkDeleted(1000);
  dv.MarkDeleted(1000);  // idempotent
  EXPECT_EQ(dv.cardinality(), 4u);
  EXPECT_TRUE(dv.IsDeleted(0));
  EXPECT_TRUE(dv.IsDeleted(63));
  EXPECT_TRUE(dv.IsDeleted(64));
  EXPECT_TRUE(dv.IsDeleted(1000));
  EXPECT_FALSE(dv.IsDeleted(1));
  EXPECT_FALSE(dv.IsDeleted(5000));  // beyond allocated words
}

TEST(DeletionVectorTest, UnionMerges) {
  DeletionVector a;
  a.MarkDeleted(1);
  a.MarkDeleted(100);
  DeletionVector b;
  b.MarkDeleted(100);
  b.MarkDeleted(200);
  DeletionVector u = a.Union(b);
  EXPECT_EQ(u.cardinality(), 3u);
  EXPECT_TRUE(u.IsDeleted(1));
  EXPECT_TRUE(u.IsDeleted(100));
  EXPECT_TRUE(u.IsDeleted(200));
  // Union does not mutate the inputs (immutability of DV blobs).
  EXPECT_EQ(a.cardinality(), 2u);
  EXPECT_EQ(b.cardinality(), 2u);
}

TEST(DeletionVectorTest, ToOrdinalsSorted) {
  DeletionVector dv;
  dv.MarkDeleted(500);
  dv.MarkDeleted(3);
  dv.MarkDeleted(64);
  EXPECT_EQ(dv.ToOrdinals(), (std::vector<uint64_t>{3, 64, 500}));
}

TEST(DeletionVectorTest, BlobRoundTrip) {
  DeletionVector dv;
  for (uint64_t i = 0; i < 1000; i += 7) dv.MarkDeleted(i);
  auto back = DeletionVector::FromBlob(dv.ToBlob());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, dv);
}

TEST(DeletionVectorTest, FromBlobRejectsTrailingBytes) {
  DeletionVector dv;
  dv.MarkDeleted(1);
  std::string blob = dv.ToBlob() + "junk";
  EXPECT_TRUE(DeletionVector::FromBlob(blob).status().IsCorruption());
}

ManifestEntry AddFileEntry(const std::string& path, uint64_t rows,
                           uint32_t cell = 0) {
  DataFileInfo info;
  info.path = path;
  info.row_count = rows;
  info.byte_size = rows * 10;
  info.cell_id = cell;
  return ManifestEntry::AddFile(info);
}

ManifestEntry AddDvEntry(const std::string& dv_path,
                         const std::string& target, uint64_t count) {
  DeleteVectorInfo info;
  info.path = dv_path;
  info.target_data_file = target;
  info.deleted_count = count;
  return ManifestEntry::AddDv(info);
}

TEST(ManifestTest, EntriesRoundTrip) {
  std::vector<ManifestEntry> entries = {
      AddFileEntry("f1", 100, 3),
      ManifestEntry::RemoveFile("f0"),
      AddDvEntry("dv1", "f1", 5),
      ManifestEntry::RemoveDv("dv0", "f1"),
  };
  auto parsed = ParseEntries(SerializeEntries(entries));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, entries);
}

TEST(ManifestTest, ConcatenatedBlocksParse) {
  // A manifest blob assembled from multiple committed blocks parses as
  // the concatenation of the block entries (§3.2.2).
  std::string block1 = SerializeEntries({AddFileEntry("f1", 10)});
  std::string block2 = SerializeEntries({AddFileEntry("f2", 20)});
  auto parsed = ParseEntries(block1 + block2);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0].file.path, "f1");
  EXPECT_EQ((*parsed)[1].file.path, "f2");
}

TEST(ManifestTest, ParseRejectsGarbage) {
  EXPECT_TRUE(ParseEntries("\xFFgarbage").status().IsCorruption());
}

// --- TableSnapshot replay ------------------------------------------------------

TEST(TableSnapshotTest, ApplyAddAndRemove) {
  TableSnapshot snap;
  ASSERT_TRUE(snap.Apply({AddFileEntry("f1", 100), AddFileEntry("f2", 50)}, 10)
                  .ok());
  EXPECT_EQ(snap.num_files(), 2u);
  EXPECT_EQ(snap.total_rows(), 150u);
  ASSERT_TRUE(snap.Apply({ManifestEntry::RemoveFile("f1")}, 20).ok());
  EXPECT_EQ(snap.num_files(), 1u);
  ASSERT_EQ(snap.removed_blobs().size(), 1u);
  EXPECT_EQ(snap.removed_blobs()[0].path, "f1");
  EXPECT_EQ(snap.removed_blobs()[0].removed_at, 20);
}

TEST(TableSnapshotTest, ApplyDvLifecycle) {
  TableSnapshot snap;
  ASSERT_TRUE(snap.Apply({AddFileEntry("f1", 100)}, 1).ok());
  ASSERT_TRUE(snap.Apply({AddDvEntry("dv1", "f1", 10)}, 2).ok());
  EXPECT_EQ(snap.files().at("f1").dv_path, "dv1");
  EXPECT_EQ(snap.files().at("f1").deleted_count, 10u);
  EXPECT_EQ(snap.live_rows(), 90u);
  // Merge: remove old DV, add merged one.
  ASSERT_TRUE(snap.Apply({ManifestEntry::RemoveDv("dv1", "f1"),
                          AddDvEntry("dv2", "f1", 25)},
                         3)
                  .ok());
  EXPECT_EQ(snap.files().at("f1").dv_path, "dv2");
  EXPECT_EQ(snap.live_rows(), 75u);
  // The old DV blob is now retention-tracked.
  ASSERT_EQ(snap.removed_blobs().size(), 1u);
  EXPECT_EQ(snap.removed_blobs()[0].path, "dv1");
}

TEST(TableSnapshotTest, RemoveFileRetiresItsDv) {
  TableSnapshot snap;
  ASSERT_TRUE(snap.Apply({AddFileEntry("f1", 100), AddDvEntry("dv1", "f1", 5)},
                         1)
                  .ok());
  ASSERT_TRUE(snap.Apply({ManifestEntry::RemoveFile("f1")}, 2).ok());
  ASSERT_EQ(snap.removed_blobs().size(), 2u);
  EXPECT_EQ(snap.removed_blobs()[0].path, "dv1");
  EXPECT_EQ(snap.removed_blobs()[1].path, "f1");
}

TEST(TableSnapshotTest, CorruptionOnBadReplay) {
  TableSnapshot snap;
  ASSERT_TRUE(snap.Apply({AddFileEntry("f1", 10)}, 1).ok());
  EXPECT_TRUE(snap.Apply({AddFileEntry("f1", 10)}, 2).IsCorruption());
  TableSnapshot snap2;
  EXPECT_TRUE(
      snap2.Apply({ManifestEntry::RemoveFile("ghost")}, 1).IsCorruption());
  TableSnapshot snap3;
  EXPECT_TRUE(snap3.Apply({AddDvEntry("dv", "ghost", 1)}, 1).IsCorruption());
  TableSnapshot snap4;
  ASSERT_TRUE(snap4.Apply({AddFileEntry("f1", 10), AddDvEntry("d1", "f1", 1)},
                          1)
                  .ok());
  // Adding a second DV without removing the first is malformed.
  EXPECT_TRUE(snap4.Apply({AddDvEntry("d2", "f1", 2)}, 2).IsCorruption());
}

TEST(TableSnapshotTest, TakeRemovedBeforeSplitsOnHorizon) {
  TableSnapshot snap;
  ASSERT_TRUE(snap.Apply({AddFileEntry("f1", 1), AddFileEntry("f2", 1)}, 1)
                  .ok());
  ASSERT_TRUE(snap.Apply({ManifestEntry::RemoveFile("f1")}, 100).ok());
  ASSERT_TRUE(snap.Apply({ManifestEntry::RemoveFile("f2")}, 200).ok());
  auto expired = snap.TakeRemovedBefore(150);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].path, "f1");
  ASSERT_EQ(snap.removed_blobs().size(), 1u);
  EXPECT_EQ(snap.removed_blobs()[0].path, "f2");
}

// --- DiffSnapshots (reconciliation) ---------------------------------------------

TEST(DiffSnapshotsTest, PureInsertProducesAdds) {
  TableSnapshot base;
  TableSnapshot current = base;
  ASSERT_TRUE(current.Apply({AddFileEntry("f1", 10)}, 1).ok());
  auto diff = DiffSnapshots(base, current);
  ASSERT_EQ(diff.size(), 1u);
  EXPECT_EQ(diff[0].type, ActionType::kAddDataFile);
}

TEST(DiffSnapshotsTest, ObsoletedIntraTxnFileVanishes) {
  // A file added by statement 1 and removed by statement 2 of the same
  // transaction leaves no trace in the reconciled manifest (§3.2.3).
  TableSnapshot base;
  ASSERT_TRUE(base.Apply({AddFileEntry("committed", 10)}, 1).ok());
  TableSnapshot current = base;
  ASSERT_TRUE(current.Apply({AddFileEntry("tmp", 5)}, 2).ok());
  ASSERT_TRUE(current.Apply({ManifestEntry::RemoveFile("tmp"),
                             AddFileEntry("final", 5)},
                            3)
                  .ok());
  auto diff = DiffSnapshots(base, current);
  ASSERT_EQ(diff.size(), 1u);
  EXPECT_EQ(diff[0].type, ActionType::kAddDataFile);
  EXPECT_EQ(diff[0].file.path, "final");
}

TEST(DiffSnapshotsTest, DvChangeEmitsRemoveThenAdd) {
  TableSnapshot base;
  ASSERT_TRUE(base.Apply({AddFileEntry("f1", 10), AddDvEntry("dv0", "f1", 2)},
                         1)
                  .ok());
  TableSnapshot current = base;
  ASSERT_TRUE(current.Apply({ManifestEntry::RemoveDv("dv0", "f1"),
                             AddDvEntry("dv1", "f1", 4)},
                            2)
                  .ok());
  auto diff = DiffSnapshots(base, current);
  ASSERT_EQ(diff.size(), 2u);
  EXPECT_EQ(diff[0].type, ActionType::kRemoveDeleteVector);
  EXPECT_EQ(diff[0].dv.path, "dv0");
  EXPECT_EQ(diff[1].type, ActionType::kAddDeleteVector);
  EXPECT_EQ(diff[1].dv.path, "dv1");
}

TEST(DiffSnapshotsTest, DiffReplaysOverBase) {
  // Property: base.Apply(Diff(base, current)) == current (files).
  TableSnapshot base;
  ASSERT_TRUE(base.Apply({AddFileEntry("a", 10), AddFileEntry("b", 20),
                          AddDvEntry("dva", "a", 1)},
                         1)
                  .ok());
  TableSnapshot current = base;
  ASSERT_TRUE(current.Apply({ManifestEntry::RemoveDv("dva", "a"),
                             AddDvEntry("dva2", "a", 3),
                             ManifestEntry::RemoveFile("b"),
                             AddFileEntry("c", 30)},
                            2)
                  .ok());
  TableSnapshot replayed = base;
  ASSERT_TRUE(replayed.Apply(DiffSnapshots(base, current), 3).ok());
  EXPECT_EQ(replayed.files(), current.files());
}

TEST(DiffSnapshotsTest, NoChangesEmptyDiff) {
  TableSnapshot base;
  ASSERT_TRUE(base.Apply({AddFileEntry("a", 10)}, 1).ok());
  EXPECT_TRUE(DiffSnapshots(base, base).empty());
}

// --- Checkpoints ------------------------------------------------------------------

TEST(CheckpointTest, RoundTripPreservesState) {
  TableSnapshot snap;
  ASSERT_TRUE(snap.Apply({AddFileEntry("f1", 100, 2), AddFileEntry("f2", 50),
                          AddDvEntry("dv1", "f1", 7)},
                         10)
                  .ok());
  ASSERT_TRUE(snap.Apply({ManifestEntry::RemoveFile("f2")}, 20).ok());
  snap.set_sequence_id(42);
  auto back = Checkpoint::Deserialize(Checkpoint::Serialize(snap));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, snap);
  EXPECT_EQ(back->sequence_id(), 42u);
  EXPECT_EQ(back->removed_blobs().size(), 1u);
}

TEST(CheckpointTest, RejectsBadMagic) {
  EXPECT_TRUE(Checkpoint::Deserialize("nope").status().IsCorruption());
}

// --- Manifest IO + SnapshotBuilder -----------------------------------------------

class SnapshotBuilderTest : public ::testing::Test {
 protected:
  SnapshotBuilderTest() : store_(&clock_), builder_(&store_) {}

  /// Writes a committed manifest blob and returns its ref.
  ManifestRef WriteManifest(uint64_t seq,
                            const std::vector<ManifestEntry>& entries) {
    std::string path = "tables/1/manifests/m" + std::to_string(seq);
    ManifestBlockWriter writer(&store_, path);
    auto block = writer.StageEntries(entries);
    EXPECT_TRUE(block.ok());
    EXPECT_TRUE(store_.CommitBlockList(path, {*block}).ok());
    return {seq, path};
  }

  common::SimClock clock_{1000};
  storage::MemoryObjectStore store_;
  SnapshotBuilder builder_;
};

TEST_F(SnapshotBuilderTest, BuildsFromManifestChain) {
  std::vector<ManifestRef> refs;
  refs.push_back(WriteManifest(1, {AddFileEntry("f1", 10)}));
  refs.push_back(WriteManifest(2, {AddFileEntry("f2", 20)}));
  refs.push_back(WriteManifest(3, {ManifestEntry::RemoveFile("f1")}));
  auto snap = builder_.Build(refs);
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->num_files(), 1u);
  EXPECT_EQ(snap->sequence_id(), 3u);
  EXPECT_EQ(snap->total_rows(), 20u);
}

TEST_F(SnapshotBuilderTest, RemovalTimestampComesFromManifestBlob) {
  std::vector<ManifestRef> refs;
  refs.push_back(WriteManifest(1, {AddFileEntry("f1", 10)}));
  clock_.Advance(5000);
  refs.push_back(WriteManifest(2, {ManifestEntry::RemoveFile("f1")}));
  auto snap = builder_.Build(refs);
  ASSERT_TRUE(snap.ok());
  ASSERT_EQ(snap->removed_blobs().size(), 1u);
  EXPECT_EQ(snap->removed_blobs()[0].removed_at, 6000);
}

TEST_F(SnapshotBuilderTest, CheckpointSkipsCoveredManifests) {
  std::vector<ManifestRef> refs;
  for (uint64_t s = 1; s <= 5; ++s) {
    refs.push_back(
        WriteManifest(s, {AddFileEntry("f" + std::to_string(s), s)}));
  }
  // Checkpoint covering sequences 1..3.
  auto partial = builder_.Build({refs[0], refs[1], refs[2]});
  ASSERT_TRUE(partial.ok());
  std::string ckpt_path = "tables/1/checkpoints/3";
  ASSERT_TRUE(store_.Put(ckpt_path, Checkpoint::Serialize(*partial)).ok());

  builder_.ClearCache();
  auto snap = builder_.Build(refs, CheckpointRef{3, ckpt_path});
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->num_files(), 5u);
  // Only manifests 4 and 5 were replayed.
  EXPECT_EQ(builder_.cache_stats().manifests_replayed, 2u);
}

TEST_F(SnapshotBuilderTest, SnapshotCacheServesRepeatBuilds) {
  std::vector<ManifestRef> refs;
  refs.push_back(WriteManifest(1, {AddFileEntry("f1", 10)}));
  refs.push_back(WriteManifest(2, {AddFileEntry("f2", 20)}));
  ASSERT_TRUE(builder_.Build(refs).ok());
  auto stats1 = builder_.cache_stats();
  ASSERT_TRUE(builder_.Build(refs).ok());
  auto stats2 = builder_.cache_stats();
  EXPECT_EQ(stats2.snapshot_hits, stats1.snapshot_hits + 1);
  EXPECT_EQ(stats2.manifests_replayed, stats1.manifests_replayed);
}

TEST_F(SnapshotBuilderTest, IncrementalExtensionFromCachedPrefix) {
  std::vector<ManifestRef> refs;
  refs.push_back(WriteManifest(1, {AddFileEntry("f1", 10)}));
  ASSERT_TRUE(builder_.Build(refs).ok());
  refs.push_back(WriteManifest(2, {AddFileEntry("f2", 20)}));
  auto snap = builder_.Build(refs);
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->num_files(), 2u);
  // Only the new manifest was replayed on top of the cached prefix.
  EXPECT_EQ(builder_.cache_stats().manifests_replayed, 2u);  // 1 + 1
}

TEST_F(SnapshotBuilderTest, CommitterAppendAndRewrite) {
  ManifestCommitter committer(&store_);
  std::string path = "tables/1/manifests/txn";
  ManifestBlockWriter writer(&store_, path);
  auto b1 = writer.StageEntries({AddFileEntry("f1", 10)});
  ASSERT_TRUE(b1.ok());
  ASSERT_TRUE(committer.CommitAppend(path, {*b1}).ok());
  auto b2 = writer.StageEntries({AddFileEntry("f2", 20)});
  ASSERT_TRUE(b2.ok());
  ASSERT_TRUE(committer.CommitAppend(path, {*b2}).ok());
  auto entries = committer.ReadManifest(path);
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 2u);
  // Rewrite collapses to the canonical single block.
  ASSERT_TRUE(committer.CommitRewrite(path, {AddFileEntry("f3", 30)}).ok());
  entries = committer.ReadManifest(path);
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 1u);
  EXPECT_EQ((*entries)[0].file.path, "f3");
}

}  // namespace
}  // namespace polaris::lst
