// Unit tests for the common substrate: Status/Result, GUIDs, the byte
// codec, RNG and clocks.

#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/guid.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"

namespace polaris::common {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, CodesAndPredicates) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Conflict("x").IsConflict());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_FALSE(Status::NotFound("x").ok());
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  Status st = Status::Conflict("write-write on T1");
  EXPECT_EQ(st.ToString(), "Conflict: write-write on T1");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IOError("a"));
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> ok = ParsePositive(7);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 7);
  Result<int> bad = ParsePositive(-1);
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsInvalidArgument());
  EXPECT_EQ(bad.value_or(42), 42);
}

Result<int> Doubled(int v) {
  POLARIS_ASSIGN_OR_RETURN(int x, ParsePositive(v));
  return x * 2;
}

TEST(ResultTest, AssignOrReturnMacroPropagates) {
  EXPECT_EQ(*Doubled(4), 8);
  EXPECT_TRUE(Doubled(0).status().IsInvalidArgument());
}

TEST(GuidTest, GeneratesUniqueIds) {
  std::set<std::string> seen;
  for (int i = 0; i < 10000; ++i) {
    ASSERT_TRUE(seen.insert(Guid::Generate().ToString()).second);
  }
}

TEST(GuidTest, UniqueAcrossThreads) {
  constexpr int kPerThread = 2000;
  std::vector<std::vector<Guid>> results(4);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&results, t] {
      for (int i = 0; i < kPerThread; ++i) {
        results[t].push_back(Guid::Generate());
      }
    });
  }
  for (auto& th : threads) th.join();
  std::set<std::string> seen;
  for (const auto& vec : results) {
    for (const auto& g : vec) {
      ASSERT_TRUE(seen.insert(g.ToString()).second);
    }
  }
}

TEST(GuidTest, RoundTripsThroughString) {
  Guid g = Guid::Generate();
  std::string s = g.ToString();
  EXPECT_EQ(s.size(), 32u);
  Guid parsed;
  ASSERT_TRUE(Guid::Parse(s, &parsed));
  EXPECT_EQ(parsed, g);
}

TEST(GuidTest, ParseRejectsMalformed) {
  Guid g;
  EXPECT_FALSE(Guid::Parse("", &g));
  EXPECT_FALSE(Guid::Parse("abc", &g));
  EXPECT_FALSE(Guid::Parse(std::string(32, 'z'), &g));
  EXPECT_TRUE(Guid::Parse(std::string(32, '0'), &g));
  EXPECT_TRUE(g.IsNil());
}

TEST(BytesTest, FixedWidthRoundTrip) {
  ByteWriter w;
  w.PutU8(0xAB);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFULL);
  w.PutI64(-42);
  w.PutDouble(3.14159);
  ByteReader r(w.data());
  uint8_t u8;
  uint32_t u32;
  uint64_t u64;
  int64_t i64;
  double d;
  ASSERT_TRUE(r.GetU8(&u8).ok());
  ASSERT_TRUE(r.GetU32(&u32).ok());
  ASSERT_TRUE(r.GetU64(&u64).ok());
  ASSERT_TRUE(r.GetI64(&i64).ok());
  ASSERT_TRUE(r.GetDouble(&d).ok());
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFULL);
  EXPECT_EQ(i64, -42);
  EXPECT_DOUBLE_EQ(d, 3.14159);
  EXPECT_TRUE(r.AtEnd());
}

TEST(BytesTest, VarintRoundTripBoundaries) {
  const uint64_t cases[] = {0,       1,          127,        128,
                            16383,   16384,      (1ULL << 32),
                            UINT64_MAX - 1,      UINT64_MAX};
  ByteWriter w;
  for (uint64_t v : cases) w.PutVarint(v);
  ByteReader r(w.data());
  for (uint64_t expected : cases) {
    uint64_t v;
    ASSERT_TRUE(r.GetVarint(&v).ok());
    EXPECT_EQ(v, expected);
  }
  EXPECT_TRUE(r.AtEnd());
}

TEST(BytesTest, StringRoundTripIncludingEmbeddedNuls) {
  ByteWriter w;
  w.PutString("");
  w.PutString(std::string("a\0b", 3));
  w.PutString(std::string(1000, 'x'));
  ByteReader r(w.data());
  std::string s;
  ASSERT_TRUE(r.GetString(&s).ok());
  EXPECT_EQ(s, "");
  ASSERT_TRUE(r.GetString(&s).ok());
  EXPECT_EQ(s, std::string("a\0b", 3));
  ASSERT_TRUE(r.GetString(&s).ok());
  EXPECT_EQ(s.size(), 1000u);
}

TEST(BytesTest, TruncatedInputReportsCorruption) {
  ByteWriter w;
  w.PutU64(12345);
  std::string data = w.data().substr(0, 4);
  ByteReader r(data);
  uint64_t v;
  EXPECT_TRUE(r.GetU64(&v).IsCorruption());
}

TEST(BytesTest, TruncatedStringReportsCorruption) {
  ByteWriter w;
  w.PutString("hello world");
  std::string data = w.data().substr(0, 5);
  ByteReader r(data);
  std::string s;
  EXPECT_TRUE(r.GetString(&s).IsCorruption());
}

TEST(BytesTest, TruncatedVarintReportsCorruption) {
  std::string data = "\xFF";  // continuation bit set, nothing follows
  ByteReader r(data);
  uint64_t v;
  EXPECT_TRUE(r.GetVarint(&v).IsCorruption());
}

TEST(BytesTest, OverlongVarintReportsCorruption) {
  std::string data(11, '\xFF');
  ByteReader r(data);
  uint64_t v;
  EXPECT_TRUE(r.GetVarint(&v).IsCorruption());
}

TEST(RandomTest, DeterministicFromSeed) {
  Random a(123);
  Random b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RandomTest, UniformStaysInRange) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
    int64_t v = rng.UniformRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, BernoulliExtremes) {
  Random rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(SimClockTest, AdvancesMonotonically) {
  SimClock clock(100);
  EXPECT_EQ(clock.Now(), 100);
  clock.Advance(50);
  EXPECT_EQ(clock.Now(), 150);
  clock.AdvanceTo(140);  // no-op: in the past
  EXPECT_EQ(clock.Now(), 150);
  clock.AdvanceTo(1000);
  EXPECT_EQ(clock.Now(), 1000);
}

TEST(SystemClockTest, NowIsNonDecreasing) {
  SystemClock clock;
  Micros a = clock.Now();
  Micros b = clock.Now();
  EXPECT_LE(a, b);
}

}  // namespace
}  // namespace polaris::common
