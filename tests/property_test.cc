// Property-based tests: a randomized workload driven against the engine
// is checked after every step against an in-memory oracle; plus
// representation-level properties (checkpoint equivalence, deletion-vector
// algebra) swept over seeds with parameterized gtest.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/random.h"
#include "engine/engine.h"
#include "lst/checkpoint.h"
#include "lst/deletion_vector.h"
#include "lst/manifest_io.h"

namespace polaris {
namespace {

using common::Random;
using common::Status;
using exec::CompareOp;
using exec::Conjunction;
using exec::Predicate;
using format::ColumnType;
using format::RecordBatch;
using format::Schema;
using format::Value;

Schema KvSchema() {
  return Schema({{"k", ColumnType::kInt64}, {"v", ColumnType::kInt64}});
}

/// The oracle: a plain multiset of (k, v) rows with SQL-equivalent
/// semantics for the operations the workload performs.
class Oracle {
 public:
  void Insert(int64_t k, int64_t v) { rows_.insert({k, v}); }

  uint64_t DeleteRange(int64_t lo, int64_t hi) {
    uint64_t n = 0;
    for (auto it = rows_.begin(); it != rows_.end();) {
      if (it->first >= lo && it->first < hi) {
        it = rows_.erase(it);
        ++n;
      } else {
        ++it;
      }
    }
    return n;
  }

  uint64_t UpdateRange(int64_t lo, int64_t hi, int64_t delta) {
    std::multiset<std::pair<int64_t, int64_t>> next;
    uint64_t n = 0;
    for (const auto& [k, v] : rows_) {
      if (k >= lo && k < hi) {
        next.insert({k, v + delta});
        ++n;
      } else {
        next.insert({k, v});
      }
    }
    rows_ = std::move(next);
    return n;
  }

  const std::multiset<std::pair<int64_t, int64_t>>& rows() const {
    return rows_;
  }

 private:
  std::multiset<std::pair<int64_t, int64_t>> rows_;
};

Conjunction RangeFilter(int64_t lo, int64_t hi) {
  Conjunction conj;
  conj.predicates.push_back(
      Predicate::Make("k", CompareOp::kGe, Value::Int64(lo)));
  conj.predicates.push_back(
      Predicate::Make("k", CompareOp::kLt, Value::Int64(hi)));
  return conj;
}

std::multiset<std::pair<int64_t, int64_t>> ScanEngine(
    engine::PolarisEngine& engine, const std::string& table) {
  auto txn = engine.Begin();
  EXPECT_TRUE(txn.ok());
  auto batch = engine.Query(txn->get(), table, engine::QuerySpec{});
  EXPECT_TRUE(batch.ok()) << batch.status().ToString();
  (void)engine.Abort(txn->get());
  std::multiset<std::pair<int64_t, int64_t>> rows;
  for (size_t r = 0; r < batch->num_rows(); ++r) {
    rows.insert({batch->column(0).Int64At(r), batch->column(1).Int64At(r)});
  }
  return rows;
}

class RandomWorkloadTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomWorkloadTest, EngineMatchesOracleUnderRandomOps) {
  const uint64_t seed = GetParam();
  Random rng(seed);
  engine::EngineOptions options;
  options.num_cells = 4;
  options.worker_threads = 2;
  options.sto_options.min_file_rows = 2;
  options.sto_options.max_deleted_fraction = 0.3;
  options.sto_options.manifests_per_checkpoint = 5;
  engine::PolarisEngine engine(options);
  ASSERT_TRUE(engine.CreateTable("t", KvSchema()).ok());
  Oracle oracle;

  constexpr int kOps = 40;
  for (int op = 0; op < kOps; ++op) {
    engine.clock()->Advance(1000);
    switch (rng.Uniform(6)) {
      case 0:
      case 1: {  // insert a small batch (weighted x2: insert-heavy)
        int n = 1 + static_cast<int>(rng.Uniform(20));
        RecordBatch batch{KvSchema()};
        for (int i = 0; i < n; ++i) {
          int64_t k = rng.UniformRange(0, 99);
          int64_t v = rng.UniformRange(-50, 50);
          ASSERT_TRUE(
              batch.AppendRow({Value::Int64(k), Value::Int64(v)}).ok());
          oracle.Insert(k, v);
        }
        ASSERT_TRUE(engine
                        .RunInTransaction([&](txn::Transaction* txn) {
                          return engine.Insert(txn, "t", batch).status();
                        })
                        .ok());
        break;
      }
      case 2: {  // delete a key range
        int64_t lo = rng.UniformRange(0, 99);
        int64_t hi = lo + rng.UniformRange(1, 20);
        uint64_t expected = oracle.DeleteRange(lo, hi);
        uint64_t actual = 0;
        ASSERT_TRUE(engine
                        .RunInTransaction([&](txn::Transaction* txn) {
                          auto n = engine.Delete(txn, "t",
                                                 RangeFilter(lo, hi));
                          POLARIS_RETURN_IF_ERROR(n.status());
                          actual = *n;
                          return Status::OK();
                        })
                        .ok());
        EXPECT_EQ(actual, expected) << "op " << op << " seed " << seed;
        break;
      }
      case 3: {  // update a key range
        int64_t lo = rng.UniformRange(0, 99);
        int64_t hi = lo + rng.UniformRange(1, 20);
        int64_t delta = rng.UniformRange(-5, 5);
        uint64_t expected = oracle.UpdateRange(lo, hi, delta);
        uint64_t actual = 0;
        std::vector<exec::Assignment> set = {
            {"v", exec::Assignment::Kind::kAddInt64, Value::Int64(delta)}};
        ASSERT_TRUE(engine
                        .RunInTransaction([&](txn::Transaction* txn) {
                          auto n = engine.Update(txn, "t",
                                                 RangeFilter(lo, hi), set);
                          POLARIS_RETURN_IF_ERROR(n.status());
                          actual = *n;
                          return Status::OK();
                        })
                        .ok());
        EXPECT_EQ(actual, expected) << "op " << op << " seed " << seed;
        break;
      }
      case 4: {  // maintenance sweep (compaction and/or checkpoint)
        Status st = engine.sto()->RunOnce();
        ASSERT_TRUE(st.ok() || st.IsConflict()) << st.ToString();
        break;
      }
      case 5: {  // abort a transaction mid-flight: must be invisible
        auto txn = engine.Begin();
        ASSERT_TRUE(txn.ok());
        RecordBatch batch{KvSchema()};
        ASSERT_TRUE(
            batch.AppendRow({Value::Int64(7), Value::Int64(7)}).ok());
        ASSERT_TRUE(engine.Insert(txn->get(), "t", batch).ok());
        ASSERT_TRUE(engine.Abort(txn->get()).ok());
        break;
      }
    }
    // Invariant after every operation: engine contents == oracle.
    EXPECT_EQ(ScanEngine(engine, "t"), oracle.rows())
        << "divergence after op " << op << " (seed " << seed << ")";
  }

  // Final sweep including GC; contents must survive.
  engine.clock()->Advance(100'000'000'000);
  ASSERT_TRUE(engine.sto()->RunOnce(/*run_gc=*/true).ok());
  EXPECT_EQ(ScanEngine(engine, "t"), oracle.rows());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomWorkloadTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

class DvAlgebraTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DvAlgebraTest, UnionMatchesSetSemantics) {
  Random rng(GetParam());
  std::set<uint64_t> sa;
  std::set<uint64_t> sb;
  lst::DeletionVector a;
  lst::DeletionVector b;
  for (int i = 0; i < 200; ++i) {
    uint64_t ord = rng.Uniform(2048);
    if (rng.Bernoulli(0.5)) {
      sa.insert(ord);
      a.MarkDeleted(ord);
    } else {
      sb.insert(ord);
      b.MarkDeleted(ord);
    }
  }
  lst::DeletionVector u = a.Union(b);
  std::set<uint64_t> su;
  su.insert(sa.begin(), sa.end());
  su.insert(sb.begin(), sb.end());
  EXPECT_EQ(u.cardinality(), su.size());
  for (uint64_t ord : su) EXPECT_TRUE(u.IsDeleted(ord));
  auto ordinals = u.ToOrdinals();
  EXPECT_EQ(std::set<uint64_t>(ordinals.begin(), ordinals.end()), su);
  // Round trip preserves everything.
  auto back = lst::DeletionVector::FromBlob(u.ToBlob());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DvAlgebraTest,
                         ::testing::Values(11, 22, 33, 44, 55));

class CheckpointEquivalenceTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(CheckpointEquivalenceTest, SnapshotViaCheckpointEqualsFullReplay) {
  // Property: for a random history, reconstructing the table from
  // (checkpoint + suffix) equals reconstructing from the full manifest
  // chain (§5.2).
  Random rng(GetParam());
  common::SimClock clock(1'000'000);
  storage::MemoryObjectStore store(&clock);
  lst::SnapshotBuilder builder(&store);

  std::vector<lst::ManifestRef> refs;
  std::set<std::string> live;
  int file_counter = 0;
  for (uint64_t seq = 1; seq <= 20; ++seq) {
    std::vector<lst::ManifestEntry> entries;
    if (live.empty() || rng.Bernoulli(0.6)) {
      lst::DataFileInfo info;
      info.path = "f" + std::to_string(file_counter++);
      info.row_count = 10 + rng.Uniform(100);
      info.byte_size = info.row_count * 8;
      info.cell_id = static_cast<uint32_t>(rng.Uniform(4));
      live.insert(info.path);
      entries.push_back(lst::ManifestEntry::AddFile(info));
    } else {
      auto it = live.begin();
      std::advance(it, rng.Uniform(live.size()));
      entries.push_back(lst::ManifestEntry::RemoveFile(*it));
      live.erase(it);
    }
    std::string path = "tables/9/manifests/m" + std::to_string(seq);
    lst::ManifestBlockWriter writer(&store, path);
    auto block = writer.StageEntries(entries);
    ASSERT_TRUE(block.ok());
    ASSERT_TRUE(store.CommitBlockList(path, {*block}).ok());
    refs.push_back({seq, path});
    clock.Advance(1000);
  }

  // Checkpoint at a random midpoint.
  size_t cut = 1 + rng.Uniform(refs.size() - 1);
  std::vector<lst::ManifestRef> prefix(refs.begin(), refs.begin() + cut);
  auto at_cut = builder.Build(prefix);
  ASSERT_TRUE(at_cut.ok());
  std::string ckpt_path = "tables/9/checkpoints/c";
  ASSERT_TRUE(store.Put(ckpt_path, lst::Checkpoint::Serialize(*at_cut)).ok());

  builder.ClearCache();
  auto via_ckpt = builder.Build(
      refs, lst::CheckpointRef{at_cut->sequence_id(), ckpt_path});
  builder.ClearCache();
  auto full = builder.Build(refs);
  ASSERT_TRUE(via_ckpt.ok());
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(via_ckpt->files(), full->files());
  EXPECT_EQ(via_ckpt->sequence_id(), full->sequence_id());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CheckpointEquivalenceTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

}  // namespace
}  // namespace polaris
