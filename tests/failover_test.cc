// Epoch-fenced failover tests: lease-based primary fencing, replica
// promotion, and the crash/chaos matrix for the handoff (DESIGN.md §12).
//
// The hard invariants checked here, per the failover design:
//   1. No acked-commit loss: every commit acknowledged to a client before
//      the primary "died" is visible after a replica promotes.
//   2. No dual-writer interleaving: once a promoting replica seals a
//      journal segment, no record frame from the fenced epoch ever
//      appears after the seal marker, and epoch stamps never decrease
//      across the journal.
//   3. A fenced ex-primary rejects every write with FailedPrecondition
//      while continuing to serve reads.
//
// Deterministic interleaving: primary and replica share one
// MemoryObjectStore (PolarisEngine::OpenOn) on a SimClock, the tailer is
// driven with explicit PollOnce (poll_interval_micros = 0), and the
// heartbeat thread is off (heartbeat_period_micros = 0) except in the
// teardown-race regression, which exists precisely to race real threads.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "catalog/catalog_journal.h"
#include "catalog/journal_format.h"
#include "common/bytes.h"
#include "common/clock.h"
#include "common/crashpoint.h"
#include "engine/engine.h"
#include "replica/failover.h"
#include "sql/session.h"
#include "storage/memory_object_store.h"

namespace polaris::engine {
namespace {

namespace jf = catalog::journal_format;

using common::Status;
using exec::AggFunc;
using exec::CompareOp;
using exec::Conjunction;
using exec::Predicate;
using format::ColumnType;
using format::RecordBatch;
using format::Schema;
using format::Value;
using replica::EpochLease;
using replica::FailoverOptions;

Schema EventsSchema() {
  return Schema({{"id", ColumnType::kInt64}, {"val", ColumnType::kInt64}});
}

RecordBatch EventRow(int64_t id, int64_t val) {
  RecordBatch batch{EventsSchema()};
  EXPECT_TRUE(batch.AppendRow({Value::Int64(id), Value::Int64(val)}).ok());
  return batch;
}

Conjunction WhereId(int64_t id) {
  Conjunction conj;
  conj.predicates.push_back(
      Predicate::Make("id", CompareOp::kEq, Value::Int64(id)));
  return conj;
}

/// One decoded journal frame with its segment context, for the
/// interleaving assertions.
struct ScannedFrame {
  std::string segment;
  jf::FrameKind kind = jf::FrameKind::kTorn;
  uint64_t epoch = 0;  // epoch markers only
  bool seal = false;   // epoch markers only
  uint64_t seq = 0;    // records only
};

/// Parses every journal segment front to back. A torn suffix stops the
/// scan of that segment (same rule replay applies); everything before it
/// is returned.
std::vector<ScannedFrame> ScanJournal(
    storage::ObjectStore* store,
    const catalog::CatalogJournalOptions& options) {
  std::vector<ScannedFrame> frames;
  auto segments = catalog::ListJournalSegmentsSince(store, options, 1);
  EXPECT_TRUE(segments.ok()) << segments.status().ToString();
  if (!segments.ok()) return frames;
  for (const auto& segment : *segments) {
    auto bytes = store->Get(segment.path);
    EXPECT_TRUE(bytes.ok()) << bytes.status().ToString();
    if (!bytes.ok()) continue;
    common::ByteReader in(*bytes);
    while (!in.AtEnd()) {
      ScannedFrame frame;
      frame.segment = segment.path;
      jf::ParsedRecord record;
      jf::EpochMarker marker;
      frame.kind = jf::ParseFrame(&in, &record, &marker);
      if (frame.kind == jf::FrameKind::kTorn) break;
      if (frame.kind == jf::FrameKind::kRecord) {
        frame.seq = record.commit_seq;
      } else {
        frame.epoch = marker.epoch;
        frame.seal = marker.seal;
      }
      frames.push_back(std::move(frame));
    }
  }
  return frames;
}

/// Invariant 2: epoch stamps never decrease, and within a segment no
/// record frame follows a seal marker (a fenced writer's append after the
/// seal would be exactly that).
void AssertNoEpochInterleaving(const std::vector<ScannedFrame>& frames) {
  uint64_t last_stamp = 0;
  std::string sealed_segment;
  uint64_t sealed_epoch = 0;
  for (const auto& frame : frames) {
    if (frame.kind == jf::FrameKind::kEpoch) {
      EXPECT_GE(frame.epoch, last_stamp)
          << "epoch went backwards in " << frame.segment;
      last_stamp = std::max(last_stamp, frame.epoch);
      if (frame.seal) {
        sealed_segment = frame.segment;
        sealed_epoch = frame.epoch;
      }
    } else if (frame.kind == jf::FrameKind::kRecord) {
      EXPECT_NE(frame.segment, sealed_segment)
          << "record seq " << frame.seq << " appended after the epoch-"
          << sealed_epoch << " seal in " << frame.segment
          << " -- dual-writer interleaving";
    }
  }
}

class FailoverTest : public ::testing::Test {
 protected:
  void SetUp() override { common::CrashPoints::Disarm(); }
  void TearDown() override { common::CrashPoints::Disarm(); }

  static EngineOptions BaseOptions() {
    EngineOptions options;
    options.num_cells = 2;
    options.worker_threads = 2;
    options.sampler_period_micros = 0;  // deterministic: no sampler thread
    // Keep the active segment mid-fill across these small workloads, so a
    // fenced primary's next append deterministically targets the sealed
    // segment rather than rolling past it.
    options.journal_options.records_per_segment = 64;
    return options;
  }

  static EngineOptions ReplicaOptionsOf(EngineOptions options) {
    options.replica = true;
    options.replica_options.poll_interval_micros = 0;
    return options;
  }

  static std::unique_ptr<PolarisEngine> MustOpenOn(EngineOptions options,
                                                   storage::ObjectStore* store,
                                                   common::Clock* clock) {
    auto engine = PolarisEngine::OpenOn(std::move(options), store, clock);
    EXPECT_TRUE(engine.ok()) << engine.status().ToString();
    return std::move(*engine);
  }

  static Status InsertOne(PolarisEngine* engine, int64_t id) {
    auto txn = engine->Begin();
    if (!txn.ok()) return txn.status();
    Status status =
        engine->Insert(txn->get(), "events", EventRow(id, 100 + id)).status();
    if (status.ok()) status = engine->Commit(txn->get());
    if (!status.ok()) (void)engine->Abort(txn->get());
    return status;
  }

  static int64_t CountId(PolarisEngine* engine, int64_t id) {
    auto txn = engine->Begin();
    EXPECT_TRUE(txn.ok()) << txn.status().ToString();
    QuerySpec spec;
    spec.filter = WhereId(id);
    spec.aggregates = {{AggFunc::kCount, "", "cnt"}};
    auto result = engine->Query(txn->get(), "events", spec);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    (void)engine->Abort(txn->get());
    return result.ok() ? result->column(0).Int64At(0) : -1;
  }
};

// --- EpochLease unit behavior --------------------------------------------

TEST_F(FailoverTest, LeaseClaimRenewAndSupersede) {
  common::SimClock clock(1'000'000);
  storage::MemoryObjectStore store(&clock);
  FailoverOptions options;
  options.lease_duration_micros = 5'000'000;
  options.node_name = "a";
  EpochLease a(&store, "catalog/lease", &clock, options);
  options.node_name = "b";
  EpochLease b(&store, "catalog/lease", &clock, options);

  // Virgin store: A claims epoch 1 and can renew.
  ASSERT_TRUE(a.Claim().ok());
  EXPECT_TRUE(a.held());
  EXPECT_EQ(a.epoch(), 1u);
  EXPECT_EQ(a.expires_at(), clock.Now() + 5'000'000);
  clock.Advance(1'000'000);
  ASSERT_TRUE(a.Renew().ok());
  EXPECT_EQ(a.renewals(), 1u);
  EXPECT_EQ(a.expires_at(), clock.Now() + 5'000'000);

  // B's claim is an administrative takeover: no expiry wait, epoch 2.
  ASSERT_TRUE(b.Claim().ok());
  EXPECT_EQ(b.epoch(), 2u);

  // A's next renewal loses the CAS: FailedPrecondition naming the winner,
  // and A no longer considers itself the holder.
  Status lost = a.Renew();
  ASSERT_TRUE(lost.IsFailedPrecondition()) << lost.ToString();
  EXPECT_NE(lost.message().find("epoch 2"), std::string::npos)
      << lost.ToString();
  EXPECT_FALSE(a.held());

  // The read surface agrees with the blob.
  auto info = b.Read();
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->epoch, 2u);
  EXPECT_EQ(info->owner, "b");
  EXPECT_EQ(info->expires_at, b.expires_at());
}

TEST_F(FailoverTest, SealNewestSegmentFencesTheIncumbentAppender) {
  common::SimClock clock(1'000'000);
  storage::MemoryObjectStore store(&clock);
  catalog::CatalogJournalOptions options;
  options.records_per_segment = 64;
  catalog::CatalogJournal journal(&store, options);
  ASSERT_TRUE(journal.Recover().ok());
  journal.set_epoch(1);
  for (uint64_t seq = 1; seq <= 5; ++seq) {
    ASSERT_TRUE(journal.Append(seq, {{"k" + std::to_string(seq), "v"}}).ok());
  }

  auto sealed = replica::SealNewestSegment(&store, options, /*new_epoch=*/2);
  ASSERT_TRUE(sealed.ok()) << sealed.status().ToString();
  ASSERT_FALSE(sealed->empty());

  // The incumbent's next append targets its cached generation, loses the
  // CAS, and the journal self-fences (not merely poisons).
  Status fenced = journal.Append(6, {{"k6", "v"}});
  ASSERT_TRUE(fenced.IsFailedPrecondition()) << fenced.ToString();
  EXPECT_NE(fenced.message().find("fenced"), std::string::npos);
  EXPECT_TRUE(journal.fenced());
  // And stays fenced: the state is terminal for this process.
  EXPECT_TRUE(journal.Append(7, {{"k7", "v"}}).IsFailedPrecondition());

  // On-disk shape: stamps for epoch 1, a seal carrying epoch 2, nothing
  // after the seal.
  std::vector<ScannedFrame> frames = ScanJournal(&store, options);
  ASSERT_FALSE(frames.empty());
  EXPECT_EQ(frames.back().kind, jf::FrameKind::kEpoch);
  EXPECT_TRUE(frames.back().seal);
  EXPECT_EQ(frames.back().epoch, 2u);
  AssertNoEpochInterleaving(frames);

  // An empty journal has nothing to seal and reports that distinctly.
  storage::MemoryObjectStore empty_store(&clock);
  auto none = replica::SealNewestSegment(&empty_store, options, 2);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
}

// --- Tentpole: promotion + fencing end to end ----------------------------

TEST_F(FailoverTest, PromoteTakesOverAndFencesOldPrimary) {
  common::SimClock clock(1'000'000);
  storage::MemoryObjectStore store(&clock);
  auto primary = MustOpenOn(BaseOptions(), &store, &clock);
  auto replica = MustOpenOn(ReplicaOptionsOf(BaseOptions()), &store, &clock);

  ASSERT_TRUE(primary->CreateTable("events", EventsSchema()).ok());
  for (int64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(InsertOne(primary.get(), i).ok()) << i;
  }
  EXPECT_EQ(primary->GetFailoverStatus().role, "primary");
  EXPECT_EQ(primary->GetFailoverStatus().epoch, 1u);
  EXPECT_EQ(replica->role(), EngineRole::kReplica);

  // Promote with part of the tail deliberately undrained: the last few
  // commits reach the new primary only through the promotion drain.
  ASSERT_TRUE(replica->replica()->PollOnce().ok());
  ASSERT_TRUE(InsertOne(primary.get(), 8).ok());
  ASSERT_TRUE(InsertOne(primary.get(), 9).ok());

  auto promoted = replica->Promote();
  ASSERT_TRUE(promoted.ok()) << promoted.status().ToString();
  EXPECT_EQ(promoted->epoch, 2u);
  EXPECT_GE(promoted->tail_records, 2u);
  EXPECT_FALSE(promoted->sealed_segment.empty());
  EXPECT_EQ(replica->role(), EngineRole::kPrimary);
  EXPECT_EQ(replica->GetFailoverStatus().role, "primary");
  EXPECT_EQ(replica->GetFailoverStatus().promotions, 1u);

  // Every commit the old primary acked is visible on the new one.
  for (int64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(CountId(replica.get(), i), 1) << i;
  }
  // The new primary serves writes.
  ASSERT_TRUE(InsertOne(replica.get(), 100).ok());
  EXPECT_EQ(CountId(replica.get(), 100), 1);

  // The old primary's next commit loses the journal CAS against the
  // sealed segment and the engine self-fences from the commit path.
  Status fenced_write = InsertOne(primary.get(), 200);
  ASSERT_TRUE(fenced_write.IsFailedPrecondition()) << fenced_write.ToString();
  EXPECT_NE(fenced_write.message().find("fenced"), std::string::npos);
  EXPECT_EQ(primary->role(), EngineRole::kFenced);

  // Fenced: every further write dies at CheckWritable; reads still serve.
  Status rejected = InsertOne(primary.get(), 201);
  ASSERT_TRUE(rejected.IsFailedPrecondition()) << rejected.ToString();
  EXPECT_NE(rejected.message().find("fenced"), std::string::npos);
  ASSERT_TRUE(primary->CreateTable("t2", EventsSchema())
                  .status()
                  .IsFailedPrecondition());
  EXPECT_EQ(CountId(primary.get(), 0), 1);  // pre-fence state readable

  FailoverStatus fs = primary->GetFailoverStatus();
  EXPECT_EQ(fs.role, "fenced");
  EXPECT_TRUE(fs.fenced);
  EXPECT_FALSE(fs.fence_reason.empty());
  EXPECT_FALSE(fs.lease_held);

  // Neither the fenced epoch's stamps nor its records appear after the
  // seal; epochs are monotone across the whole journal.
  AssertNoEpochInterleaving(ScanJournal(&store, BaseOptions().journal_options));

  // The new primary's post-promotion commits carry epoch-2 stamps.
  std::vector<ScannedFrame> frames =
      ScanJournal(&store, BaseOptions().journal_options);
  bool saw_epoch2_stamp = false;
  for (const auto& frame : frames) {
    if (frame.kind == jf::FrameKind::kEpoch && !frame.seal &&
        frame.epoch == 2) {
      saw_epoch2_stamp = true;
    }
  }
  EXPECT_TRUE(saw_epoch2_stamp);
}

TEST_F(FailoverTest, HeartbeatLeaseLossFencesPrimaryBeforeItWrites) {
  common::SimClock clock(1'000'000);
  storage::MemoryObjectStore store(&clock);
  auto primary = MustOpenOn(BaseOptions(), &store, &clock);
  ASSERT_TRUE(primary->CreateTable("events", EventsSchema()).ok());
  ASSERT_TRUE(primary->HeartbeatOnce().ok());  // renews while unchallenged

  // Another node administratively takes the lease (epoch 2).
  FailoverOptions options;
  options.node_name = "usurper";
  EpochLease usurper(&store, "catalog/lease", &clock, options);
  ASSERT_TRUE(usurper.Claim().ok());

  // The next heartbeat loses its renewal CAS and fences the engine on the
  // control path — before any write had to die on the data path.
  Status beat = primary->HeartbeatOnce();
  ASSERT_TRUE(beat.IsFailedPrecondition()) << beat.ToString();
  EXPECT_EQ(primary->role(), EngineRole::kFenced);
  EXPECT_EQ(primary->GetFailoverStatus().lease_losses, 1u);
  EXPECT_TRUE(InsertOne(primary.get(), 0).IsFailedPrecondition());
  // Fenced heartbeats report the terminal state rather than renewing.
  EXPECT_TRUE(primary->HeartbeatOnce().IsFailedPrecondition());
}

TEST_F(FailoverTest, AutoPromoteOnObservedLeaseExpiry) {
  common::SimClock clock(1'000'000);
  storage::MemoryObjectStore store(&clock);
  EngineOptions primary_options = BaseOptions();
  primary_options.failover.lease_duration_micros = 5'000'000;
  auto primary = MustOpenOn(primary_options, &store, &clock);
  ASSERT_TRUE(primary->CreateTable("events", EventsSchema()).ok());
  ASSERT_TRUE(InsertOne(primary.get(), 1).ok());

  EngineOptions replica_options = ReplicaOptionsOf(BaseOptions());
  replica_options.failover.auto_promote = true;
  auto replica = MustOpenOn(replica_options, &store, &clock);

  // Lease still valid: the heartbeat observes it and does NOT promote.
  ASSERT_TRUE(replica->HeartbeatOnce().ok());
  EXPECT_EQ(replica->role(), EngineRole::kReplica);

  // Primary goes silent past its lease: the next observation promotes.
  clock.Advance(6'000'000);
  ASSERT_TRUE(replica->HeartbeatOnce().ok());
  EXPECT_EQ(replica->role(), EngineRole::kPrimary);
  EXPECT_EQ(replica->GetFailoverStatus().epoch, 2u);
  EXPECT_EQ(CountId(replica.get(), 1), 1);
  EXPECT_TRUE(InsertOne(primary.get(), 2).IsFailedPrecondition());
}

// --- Chaos matrix: crash points through the handoff ----------------------

/// For every instant the promoting process can die, and every instant the
/// primary's commit pipeline can die with a concurrent writer in flight:
/// discard the victim (its in-memory state is intentionally undefined
/// after a fired crash point), promote a fresh replica, and check the
/// three failover invariants.
TEST_F(FailoverTest, PromotionCrashMatrix) {
  const char* kPoints[] = {
      common::crash::kPromoteClaimed,
      common::crash::kPromoteSealed,
      common::crash::kPromoteReplayed,
      common::crash::kPromoteWritable,
  };
  for (const char* point : kPoints) {
    SCOPED_TRACE(point);
    common::CrashPoints::Disarm();
    common::SimClock clock(1'000'000);
    storage::MemoryObjectStore store(&clock);
    auto primary = MustOpenOn(BaseOptions(), &store, &clock);
    ASSERT_TRUE(primary->CreateTable("events", EventsSchema()).ok());

    // A concurrent writer racks up acked commits; everything it acked
    // must survive the entire botched-then-retried handoff. Joined before
    // the promotion so the acked set is exact.
    std::set<int64_t> acked;
    std::mutex acked_mu;
    std::thread writer([&] {
      for (int64_t i = 0; i < 10; ++i) {
        if (InsertOne(primary.get(), i).ok()) {
          std::lock_guard<std::mutex> lock(acked_mu);
          acked.insert(i);
        }
      }
    });
    writer.join();
    ASSERT_EQ(acked.size(), 10u);

    // First promotion attempt dies at the armed instant.
    auto doomed = MustOpenOn(ReplicaOptionsOf(BaseOptions()), &store, &clock);
    ASSERT_TRUE(doomed->replica()->PollOnce().ok());
    common::CrashPoints::Arm(point);
    auto crashed = doomed->Promote();
    ASSERT_FALSE(crashed.ok());
    EXPECT_NE(crashed.status().message().find("crash point"),
              std::string::npos)
        << crashed.status().ToString();
    doomed.reset();  // the dead promoter

    // A fresh replica retries the handoff and must fully succeed, at an
    // epoch above anything the dead promoter claimed.
    auto successor =
        MustOpenOn(ReplicaOptionsOf(BaseOptions()), &store, &clock);
    auto promoted = successor->Promote();
    ASSERT_TRUE(promoted.ok()) << promoted.status().ToString();
    EXPECT_GE(promoted->epoch, 3u);

    // Invariant 1: no acked-commit loss.
    for (int64_t id : acked) {
      EXPECT_EQ(CountId(successor.get(), id), 1) << "lost acked id " << id;
    }
    // The new primary serves writes.
    ASSERT_TRUE(InsertOne(successor.get(), 1000).ok());

    // Invariant 3: the old primary fences on its next write and keeps
    // serving reads.
    Status fenced = InsertOne(primary.get(), 2000);
    ASSERT_TRUE(fenced.IsFailedPrecondition()) << fenced.ToString();
    EXPECT_EQ(primary->role(), EngineRole::kFenced);
    EXPECT_EQ(CountId(primary.get(), 0), 1);

    // Invariant 2: no two-epoch interleaving after the seal.
    AssertNoEpochInterleaving(
        ScanJournal(&store, BaseOptions().journal_options));
  }
}

TEST_F(FailoverTest, CommitPipelineCrashMatrix) {
  const char* kPoints[] = {
      common::crash::kCommitBatchFormed,
      common::crash::kCommitBatchAppended,
      common::crash::kCommitBatchInstalled,
  };
  for (const char* point : kPoints) {
    SCOPED_TRACE(point);
    common::CrashPoints::Disarm();
    common::SimClock clock(1'000'000);
    storage::MemoryObjectStore store(&clock);
    auto primary = MustOpenOn(BaseOptions(), &store, &clock);
    ASSERT_TRUE(primary->CreateTable("events", EventsSchema()).ok());
    auto replica = MustOpenOn(ReplicaOptionsOf(BaseOptions()), &store, &clock);

    // The writer dies mid-commit at the armed pipeline instant; commits
    // before it are acked, the crashed one is not (even if durable — the
    // acked-loss invariant is one-directional). skip=3 lets a few batches
    // ack first so the acked set is non-trivial.
    common::CrashPoints::Arm(point, /*skip=*/3);
    std::set<int64_t> acked;
    std::mutex acked_mu;
    std::thread writer([&] {
      for (int64_t i = 0; i < 10; ++i) {
        Status st = InsertOne(primary.get(), i);
        if (!st.ok()) break;  // the simulated process death
        std::lock_guard<std::mutex> lock(acked_mu);
        acked.insert(i);
      }
    });
    writer.join();
    EXPECT_LT(acked.size(), 10u) << "crash point never fired";

    // The primary is dead. Promote the replica over whatever journal tail
    // the crash left behind.
    primary.reset();
    auto promoted = replica->Promote();
    ASSERT_TRUE(promoted.ok()) << promoted.status().ToString();
    EXPECT_EQ(replica->role(), EngineRole::kPrimary);

    // Invariant 1: every acked commit survived. (A durable-but-unacked
    // commit MAY also be visible — commit.batch.appended/installed — and
    // that is correct: durability point reached.)
    for (int64_t id : acked) {
      EXPECT_EQ(CountId(replica.get(), id), 1) << "lost acked id " << id;
    }
    ASSERT_TRUE(InsertOne(replica.get(), 1000).ok());
    AssertNoEpochInterleaving(
        ScanJournal(&store, BaseOptions().journal_options));
  }
}

// --- Satellite: SET MAX_STALENESS ----------------------------------------

TEST_F(FailoverTest, MaxStalenessBoundsReplicaReads) {
  common::SimClock clock(1'000'000);
  storage::MemoryObjectStore store(&clock);
  auto primary = MustOpenOn(BaseOptions(), &store, &clock);
  auto replica = MustOpenOn(ReplicaOptionsOf(BaseOptions()), &store, &clock);
  ASSERT_TRUE(primary->CreateTable("events", EventsSchema()).ok());
  ASSERT_TRUE(InsertOne(primary.get(), 1).ok());
  ASSERT_TRUE(replica->replica()->PollOnce().ok());

  sql::SqlSession session(replica.get());
  auto set = session.Execute("SET MAX_STALENESS 50;");
  ASSERT_TRUE(set.ok()) << set.status().ToString();
  EXPECT_EQ(set->message, "SET MAX_STALENESS 50 ms");
  EXPECT_EQ(session.max_staleness_micros(), 50'000);

  // Fresh enough: the read serves straight off the watermark.
  auto fresh = session.Execute("SELECT * FROM events;");
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  EXPECT_EQ(fresh->batch.num_rows(), 1u);

  // The replica falls behind the bound while the primary commits: the
  // next SELECT forces a catch-up poll and sees the new row without any
  // explicit PollOnce from the test.
  ASSERT_TRUE(InsertOne(primary.get(), 2).ok());
  clock.Advance(60'000);
  auto caught_up = session.Execute("SELECT * FROM events;");
  ASSERT_TRUE(caught_up.ok()) << caught_up.status().ToString();
  EXPECT_EQ(caught_up->batch.num_rows(), 2u);
  EXPECT_GE(replica->MetricsSnapshot().counter("replica.staleness_catchups"),
            1u);

  // A stopped tailer can never meet the bound again: Unavailable, not a
  // silently stale answer.
  replica->replica()->Stop();
  clock.Advance(60'000);
  auto unavailable = session.Execute("SELECT * FROM events;");
  ASSERT_FALSE(unavailable.ok());
  EXPECT_TRUE(unavailable.status().IsUnavailable())
      << unavailable.status().ToString();

  // Turning the bound off restores watermark reads on the stopped tailer.
  ASSERT_TRUE(session.Execute("SET MAX_STALENESS 0;").ok());
  auto unbounded = session.Execute("SELECT * FROM events;");
  ASSERT_TRUE(unbounded.ok()) << unbounded.status().ToString();
  EXPECT_EQ(unbounded->batch.num_rows(), 2u);
}

// --- Satellite: SQL surface + DMV ----------------------------------------

TEST_F(FailoverTest, PromoteStatementAndDmFailoverView) {
  common::SimClock clock(1'000'000);
  storage::MemoryObjectStore store(&clock);
  auto primary = MustOpenOn(BaseOptions(), &store, &clock);
  ASSERT_TRUE(primary->CreateTable("events", EventsSchema()).ok());
  ASSERT_TRUE(InsertOne(primary.get(), 1).ok());
  auto replica = MustOpenOn(ReplicaOptionsOf(BaseOptions()), &store, &clock);

  // PROMOTE is rejected on a primary...
  sql::SqlSession primary_session(primary.get());
  auto wrong = primary_session.Execute("PROMOTE;");
  ASSERT_FALSE(wrong.ok());
  EXPECT_TRUE(wrong.status().IsFailedPrecondition());

  // ...and the replica's dm_failover shows its role before the handoff.
  sql::SqlSession session(replica.get());
  auto before = session.Execute("SELECT role FROM sys.dm_failover;");
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  ASSERT_EQ(before->batch.num_rows(), 1u);
  EXPECT_EQ(before->batch.column(0).StringAt(0), "replica");

  auto promoted = session.Execute("PROMOTE;");
  ASSERT_TRUE(promoted.ok()) << promoted.status().ToString();
  EXPECT_NE(promoted->message.find("PROMOTE (epoch 2"), std::string::npos)
      << promoted->message;

  auto after = session.Execute(
      "SELECT role, epoch, promotions FROM sys.dm_failover;");
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  ASSERT_EQ(after->batch.num_rows(), 1u);
  EXPECT_EQ(after->batch.column(0).StringAt(0), "primary");
  EXPECT_EQ(after->batch.column(1).Int64At(0), 2);
  EXPECT_EQ(after->batch.column(2).Int64At(0), 1);

  // The new primary takes SQL writes; the fenced one reports through its
  // own dm_failover.
  ASSERT_TRUE(
      session.Execute("INSERT INTO events VALUES (7, 707);").ok());
  auto fenced_write =
      primary_session.Execute("INSERT INTO events VALUES (8, 808);");
  ASSERT_FALSE(fenced_write.ok());
  auto fenced_view = primary_session.Execute(
      "SELECT role, fenced FROM sys.dm_failover;");
  ASSERT_TRUE(fenced_view.ok());
  EXPECT_EQ(fenced_view->batch.column(0).StringAt(0), "fenced");
  EXPECT_EQ(fenced_view->batch.column(1).Int64At(0), 1);
}

// --- Durable path: promotion over a shared directory ----------------------

/// The on-disk twin of PromoteTakesOverAndFencesOldPrimary: two engines
/// share one data_dir (the sql_shell HA quickstart shape). A durable
/// replica's own store handle is read-only, so the lease claim and the
/// segment seal must land through the writable failover side channel —
/// this is the regression test for promotion failing with "read-only
/// object store: StageBlock rejected for catalog/lease".
TEST_F(FailoverTest, DurablePromoteWritesThroughSideChannel) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  const std::filesystem::path data_dir =
      std::filesystem::path(::testing::TempDir()) /
      (std::string("polaris_failover_") + info->name());
  std::filesystem::remove_all(data_dir);

  EngineOptions options = BaseOptions();
  options.data_dir = data_dir.string();
  auto primary_opened = PolarisEngine::Open(options);
  ASSERT_TRUE(primary_opened.ok()) << primary_opened.status().ToString();
  auto primary = std::move(*primary_opened);
  ASSERT_TRUE(primary->CreateTable("events", EventsSchema()).ok());
  for (int64_t id = 0; id < 3; ++id) {
    ASSERT_TRUE(InsertOne(primary.get(), id).ok());
  }

  auto replica_opened = PolarisEngine::Open(ReplicaOptionsOf(options));
  ASSERT_TRUE(replica_opened.ok()) << replica_opened.status().ToString();
  auto replica = std::move(*replica_opened);

  auto promoted = replica->Promote();
  ASSERT_TRUE(promoted.ok()) << promoted.status().ToString();
  EXPECT_EQ(promoted->epoch, 2u);
  EXPECT_FALSE(promoted->sealed_segment.empty());

  // No acked-commit loss, and the successor owns the directory.
  for (int64_t id = 0; id < 3; ++id) {
    EXPECT_EQ(CountId(replica.get(), id), 1) << "lost durable row " << id;
  }
  ASSERT_TRUE(InsertOne(replica.get(), 50).ok());

  // The old primary fences on its next append (CAS loss against the
  // sealed segment) but keeps serving reads.
  Status fenced = InsertOne(primary.get(), 99);
  ASSERT_TRUE(fenced.IsFailedPrecondition()) << fenced.ToString();
  EXPECT_NE(fenced.message().find("fenced"), std::string::npos)
      << fenced.ToString();
  EXPECT_EQ(primary->role(), EngineRole::kFenced);
  EXPECT_EQ(CountId(primary.get(), 0), 1);

  primary.reset();
  replica.reset();
  std::filesystem::remove_all(data_dir);
}

// --- Satellite: deterministic teardown vs in-flight promotion ------------

/// TSan regression for the shutdown ordering: a replica with a live
/// heartbeat thread and auto-promote races engine destruction against an
/// in-flight (or about-to-start) promotion. The destructor must (a) never
/// free members under a running Promote, and (b) never lose a Stop to a
/// promotion-started heartbeat thread.
TEST_F(FailoverTest, TeardownRacesInFlightPromotion) {
  for (int round = 0; round < 8; ++round) {
    common::SimClock clock(1'000'000);
    storage::MemoryObjectStore store(&clock);
    EngineOptions primary_options = BaseOptions();
    primary_options.failover.lease_duration_micros = 1'000'000;
    auto primary = MustOpenOn(primary_options, &store, &clock);
    ASSERT_TRUE(primary->CreateTable("events", EventsSchema()).ok());
    ASSERT_TRUE(InsertOne(primary.get(), round).ok());

    EngineOptions replica_options = ReplicaOptionsOf(BaseOptions());
    replica_options.failover.auto_promote = true;
    // Real heartbeat thread, aggressive cadence: promotion can begin at
    // any instant relative to the destructor below.
    replica_options.failover.heartbeat_period_micros = 100;
    auto replica = MustOpenOn(replica_options, &store, &clock);

    // Expire the primary's lease on the virtual clock so the heartbeat
    // thread's next observation triggers auto-promote.
    clock.Advance(2'000'000);
    if (round % 2 == 1) {
      // Odd rounds give the promotion a head start; even rounds tear down
      // immediately, racing the very first heartbeat.
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    replica.reset();  // must not deadlock, UAF, or leak a running thread
    primary.reset();
  }
}

}  // namespace
}  // namespace polaris::engine
