// Unit tests for the columnar file format: schema, batches, encodings,
// writer/reader round trips and zone-map skipping.

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/random.h"
#include "format/column.h"
#include "format/encoding.h"
#include "format/file_reader.h"
#include "format/file_writer.h"
#include "format/schema.h"
#include "format/value.h"

namespace polaris::format {
namespace {

Schema TestSchema() {
  return Schema({{"id", ColumnType::kInt64},
                 {"price", ColumnType::kDouble},
                 {"name", ColumnType::kString}});
}

TEST(SchemaTest, FindColumnByName) {
  Schema schema = TestSchema();
  EXPECT_EQ(schema.FindColumn("id"), 0);
  EXPECT_EQ(schema.FindColumn("name"), 2);
  EXPECT_EQ(schema.FindColumn("missing"), -1);
}

TEST(SchemaTest, SerializationRoundTrip) {
  Schema schema = TestSchema();
  common::ByteWriter out;
  schema.Serialize(&out);
  common::ByteReader in(out.data());
  auto parsed = Schema::Deserialize(&in);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, schema);
}

TEST(SchemaTest, DeserializeRejectsBadTypeTag) {
  common::ByteWriter out;
  out.PutVarint(1);
  out.PutString("c");
  out.PutU8(99);
  common::ByteReader in(out.data());
  EXPECT_TRUE(Schema::Deserialize(&in).status().IsCorruption());
}

TEST(ValueTest, TotalOrderWithNulls) {
  Value null_v = Value::Null(ColumnType::kInt64);
  Value one = Value::Int64(1);
  Value two = Value::Int64(2);
  EXPECT_LT(null_v, one);
  EXPECT_LT(one, two);
  EXPECT_EQ(null_v.Compare(Value::Null(ColumnType::kInt64)), 0);
  EXPECT_EQ(one.Compare(Value::Int64(1)), 0);
  EXPECT_LT(Value::String("abc"), Value::String("abd"));
  EXPECT_LT(Value::Double(1.5), Value::Double(2.5));
}

TEST(ValueTest, ToStringFormats) {
  EXPECT_EQ(Value::Int64(42).ToString(), "42");
  EXPECT_EQ(Value::String("x").ToString(), "x");
  EXPECT_EQ(Value::Null(ColumnType::kString).ToString(), "NULL");
}

TEST(RecordBatchTest, AppendAndGetRows) {
  RecordBatch batch{TestSchema()};
  ASSERT_TRUE(batch
                  .AppendRow({Value::Int64(1), Value::Double(9.5),
                              Value::String("a")})
                  .ok());
  ASSERT_TRUE(batch
                  .AppendRow({Value::Int64(2), Value::Null(ColumnType::kDouble),
                              Value::String("b")})
                  .ok());
  EXPECT_EQ(batch.num_rows(), 2u);
  Row row = batch.GetRow(1);
  EXPECT_EQ(row[0].i64, 2);
  EXPECT_TRUE(row[1].is_null);
  EXPECT_EQ(row[2].str, "b");
}

TEST(RecordBatchTest, AppendRowValidatesArityAndTypes) {
  RecordBatch batch{TestSchema()};
  EXPECT_TRUE(batch.AppendRow({Value::Int64(1)}).IsInvalidArgument());
  EXPECT_TRUE(batch
                  .AppendRow({Value::String("wrong"), Value::Double(1),
                              Value::String("a")})
                  .IsInvalidArgument());
}

TEST(RecordBatchTest, AppendBatchRequiresSameSchema) {
  RecordBatch a{TestSchema()};
  RecordBatch b{Schema({{"x", ColumnType::kInt64}})};
  EXPECT_TRUE(a.Append(b).IsInvalidArgument());
}

TEST(ColumnVectorTest, NullTracking) {
  ColumnVector col(ColumnType::kInt64);
  col.AppendInt64(5);
  col.AppendNull();
  col.AppendInt64(7);
  EXPECT_EQ(col.size(), 3u);
  EXPECT_FALSE(col.IsNull(0));
  EXPECT_TRUE(col.IsNull(1));
  EXPECT_EQ(col.null_count(), 1u);
  EXPECT_TRUE(col.ValueAt(1).is_null);
  EXPECT_EQ(col.ValueAt(2).i64, 7);
}

// --- Encodings ------------------------------------------------------------------

ColumnVector RoundTrip(const ColumnVector& col, Encoding* used = nullptr) {
  common::ByteWriter out;
  Encoding enc = EncodeColumn(col, &out);
  if (used != nullptr) *used = enc;
  common::ByteReader in(out.data());
  auto decoded = DecodeColumn(col.type(), enc, col.size(), &in);
  EXPECT_TRUE(decoded.ok()) << decoded.status().ToString();
  return *decoded;
}

TEST(EncodingTest, PlainInt64RoundTrip) {
  ColumnVector col(ColumnType::kInt64);
  for (int i = 0; i < 100; ++i) col.AppendInt64(i * 37 - 50);
  col.AppendNull();
  Encoding enc;
  ColumnVector back = RoundTrip(col, &enc);
  EXPECT_EQ(enc, Encoding::kPlain);
  ASSERT_EQ(back.size(), col.size());
  for (size_t i = 0; i < col.size(); ++i) {
    EXPECT_EQ(back.ValueAt(i).Compare(col.ValueAt(i)), 0) << i;
  }
}

TEST(EncodingTest, RleChosenForRunsAndRoundTrips) {
  ColumnVector col(ColumnType::kInt64);
  for (int run = 0; run < 10; ++run) {
    for (int i = 0; i < 20; ++i) col.AppendInt64(run);
  }
  Encoding enc;
  ColumnVector back = RoundTrip(col, &enc);
  EXPECT_EQ(enc, Encoding::kRle);
  for (size_t i = 0; i < col.size(); ++i) {
    EXPECT_EQ(back.Int64At(i), col.Int64At(i));
  }
}

TEST(EncodingTest, DeltaChosenForSortedInts) {
  ColumnVector col(ColumnType::kInt64);
  for (int i = 0; i < 1000; ++i) col.AppendInt64(1'000'000 + i * 3);
  Encoding enc;
  ColumnVector back = RoundTrip(col, &enc);
  EXPECT_EQ(enc, Encoding::kDelta);
  for (size_t i = 0; i < col.size(); ++i) {
    EXPECT_EQ(back.Int64At(i), col.Int64At(i));
  }
}

TEST(EncodingTest, DeltaCompressesSortedData) {
  // The point of the encoding: a clustered (sort-key) column serializes
  // far below 8 bytes/value.
  ColumnVector col(ColumnType::kInt64);
  for (int i = 0; i < 1000; ++i) col.AppendInt64(i);
  common::ByteWriter out;
  Encoding enc = EncodeColumn(col, &out);
  EXPECT_EQ(enc, Encoding::kDelta);
  EXPECT_LT(out.size(), 1000u * 8 / 3);  // > 3x smaller than plain
}

TEST(EncodingTest, RlePreferredOverDeltaForConstantRuns) {
  // Constant data is both sorted and runny; RLE wins the tie-break.
  ColumnVector col(ColumnType::kInt64);
  for (int i = 0; i < 100; ++i) col.AppendInt64(7);
  Encoding enc;
  ColumnVector back = RoundTrip(col, &enc);
  EXPECT_EQ(enc, Encoding::kRle);
  EXPECT_EQ(back.Int64At(99), 7);
}

TEST(EncodingTest, UnsortedIntsStayPlain) {
  ColumnVector col(ColumnType::kInt64);
  common::Random rng(3);
  for (int i = 0; i < 100; ++i) {
    col.AppendInt64(static_cast<int64_t>(rng.Next()));
  }
  Encoding enc;
  (void)RoundTrip(col, &enc);
  EXPECT_EQ(enc, Encoding::kPlain);
}

TEST(EncodingTest, NullsSurviveRegardlessOfChosenIntEncoding) {
  // A null slot stores a default (0) in the value array; since 0 after
  // 490 breaks monotonicity the encoder falls back to plain — and the
  // validity bitmap restores the null either way.
  ColumnVector col(ColumnType::kInt64);
  for (int i = 0; i < 50; ++i) col.AppendInt64(i * 10);
  col.AppendNull();
  Encoding enc;
  ColumnVector back = RoundTrip(col, &enc);
  ASSERT_EQ(back.size(), col.size());
  EXPECT_TRUE(back.IsNull(50));
  EXPECT_EQ(back.Int64At(49), 490);
}

TEST(EncodingTest, DictionaryChosenForRepetitiveStrings) {
  ColumnVector col(ColumnType::kString);
  const char* values[] = {"AIR", "RAIL", "SHIP", "TRUCK"};
  for (int i = 0; i < 200; ++i) col.AppendString(values[i % 4]);
  Encoding enc;
  ColumnVector back = RoundTrip(col, &enc);
  EXPECT_EQ(enc, Encoding::kDictionary);
  for (size_t i = 0; i < col.size(); ++i) {
    EXPECT_EQ(back.StringAt(i), col.StringAt(i));
  }
}

TEST(EncodingTest, PlainStringsForHighCardinality) {
  ColumnVector col(ColumnType::kString);
  for (int i = 0; i < 100; ++i) col.AppendString("unique" + std::to_string(i));
  Encoding enc;
  ColumnVector back = RoundTrip(col, &enc);
  EXPECT_EQ(enc, Encoding::kPlain);
  EXPECT_EQ(back.StringAt(99), "unique99");
}

TEST(EncodingTest, DoubleWithNullsRoundTrip) {
  ColumnVector col(ColumnType::kDouble);
  col.AppendDouble(1.5);
  col.AppendNull();
  col.AppendDouble(-2.25);
  ColumnVector back = RoundTrip(col);
  EXPECT_DOUBLE_EQ(back.DoubleAt(0), 1.5);
  EXPECT_TRUE(back.IsNull(1));
  EXPECT_DOUBLE_EQ(back.DoubleAt(2), -2.25);
}

TEST(ColumnStatsTest, ObserveAndMerge) {
  ColumnStats a;
  a.Observe(Value::Int64(5));
  a.Observe(Value::Int64(1));
  a.Observe(Value::Null(ColumnType::kInt64));
  EXPECT_EQ(a.min.i64, 1);
  EXPECT_EQ(a.max.i64, 5);
  EXPECT_EQ(a.null_count, 1u);
  ColumnStats b;
  b.Observe(Value::Int64(10));
  a.Merge(b);
  EXPECT_EQ(a.max.i64, 10);
  EXPECT_EQ(a.min.i64, 1);
}

// --- File writer/reader -----------------------------------------------------------

RecordBatch MakeBatch(int n, int offset = 0) {
  RecordBatch batch{TestSchema()};
  for (int i = 0; i < n; ++i) {
    EXPECT_TRUE(batch
                    .AppendRow({Value::Int64(offset + i),
                                Value::Double((offset + i) * 0.5),
                                Value::String("row" + std::to_string(offset + i))})
                    .ok());
  }
  return batch;
}

TEST(FileTest, WriteReadRoundTrip) {
  FileWriter writer(TestSchema());
  ASSERT_TRUE(writer.Append(MakeBatch(100)).ok());
  auto bytes = std::move(writer).Finish();
  ASSERT_TRUE(bytes.ok());
  auto reader = FileReader::Open(*bytes);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->num_rows(), 100u);
  auto all = reader->ReadAll();
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->num_rows(), 100u);
  EXPECT_EQ(all->column(0).Int64At(42), 42);
  EXPECT_EQ(all->column(2).StringAt(99), "row99");
}

TEST(FileTest, MultipleRowGroups) {
  FileWriterOptions opts;
  opts.rows_per_row_group = 32;
  FileWriter writer(TestSchema(), opts);
  ASSERT_TRUE(writer.Append(MakeBatch(100)).ok());
  auto bytes = std::move(writer).Finish();
  ASSERT_TRUE(bytes.ok());
  auto reader = FileReader::Open(*bytes);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->num_row_groups(), 4u);  // 32+32+32+4
  EXPECT_EQ(reader->row_group(0).num_rows, 32u);
  EXPECT_EQ(reader->row_group(3).num_rows, 4u);
  auto group = reader->ReadRowGroup(2);
  ASSERT_TRUE(group.ok());
  EXPECT_EQ(group->column(0).Int64At(0), 64);
}

TEST(FileTest, ColumnProjection) {
  FileWriter writer(TestSchema());
  ASSERT_TRUE(writer.Append(MakeBatch(10)).ok());
  auto bytes = std::move(writer).Finish();
  auto reader = FileReader::Open(*bytes);
  ASSERT_TRUE(reader.ok());
  auto projected = reader->ReadAll({2, 0});
  ASSERT_TRUE(projected.ok());
  EXPECT_EQ(projected->num_columns(), 2u);
  EXPECT_EQ(projected->schema().column(0).name, "name");
  EXPECT_EQ(projected->schema().column(1).name, "id");
  EXPECT_EQ(projected->column(0).StringAt(3), "row3");
  EXPECT_EQ(projected->column(1).Int64At(3), 3);
}

TEST(FileTest, EmptyFileRoundTrip) {
  FileWriter writer(TestSchema());
  auto bytes = std::move(writer).Finish();
  ASSERT_TRUE(bytes.ok());
  auto reader = FileReader::Open(*bytes);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->num_rows(), 0u);
  auto all = reader->ReadAll();
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->num_rows(), 0u);
  EXPECT_EQ(all->num_columns(), 3u);  // schema is preserved
}

TEST(FileTest, ZoneMapSkipping) {
  FileWriterOptions opts;
  opts.rows_per_row_group = 50;
  FileWriter writer(TestSchema(), opts);
  ASSERT_TRUE(writer.Append(MakeBatch(150)).ok());  // ids 0..149, 3 groups
  auto bytes = std::move(writer).Finish();
  auto reader = FileReader::Open(*bytes);
  ASSERT_TRUE(reader.ok());
  // Group 0 covers ids [0,49]; looking for id >= 100 can skip it.
  Value low = Value::Int64(100);
  EXPECT_TRUE(reader->CanSkipRowGroup(0, 0, &low, nullptr));
  EXPECT_TRUE(reader->CanSkipRowGroup(1, 0, &low, nullptr));
  EXPECT_FALSE(reader->CanSkipRowGroup(2, 0, &low, nullptr));
  // Upper bound: id <= 10 only matches group 0.
  Value high = Value::Int64(10);
  EXPECT_FALSE(reader->CanSkipRowGroup(0, 0, nullptr, &high));
  EXPECT_TRUE(reader->CanSkipRowGroup(1, 0, nullptr, &high));
}

TEST(FileTest, CorruptMagicRejected) {
  FileWriter writer(TestSchema());
  ASSERT_TRUE(writer.Append(MakeBatch(5)).ok());
  auto bytes = std::move(writer).Finish();
  std::string corrupted = *bytes;
  corrupted.back() = 'X';
  EXPECT_TRUE(FileReader::Open(corrupted).status().IsCorruption());
}

TEST(FileTest, TruncatedFileRejected) {
  FileWriter writer(TestSchema());
  ASSERT_TRUE(writer.Append(MakeBatch(5)).ok());
  auto bytes = std::move(writer).Finish();
  EXPECT_TRUE(FileReader::Open(bytes->substr(0, 4)).status().IsCorruption());
  EXPECT_TRUE(FileReader::Open("").status().IsCorruption());
}

TEST(FileTest, FinishTwiceFails) {
  FileWriter writer(TestSchema());
  ASSERT_TRUE(writer.Append(MakeBatch(1)).ok());
  ASSERT_TRUE(writer.Finish().ok());
  EXPECT_TRUE(writer.Finish().status().IsFailedPrecondition());
  EXPECT_TRUE(writer.Append(MakeBatch(1)).IsFailedPrecondition());
}

TEST(FileTest, StatsInFooterMatchData) {
  FileWriterOptions opts;
  opts.rows_per_row_group = 10;
  FileWriter writer(TestSchema(), opts);
  ASSERT_TRUE(writer.Append(MakeBatch(20, 100)).ok());  // ids 100..119
  auto bytes = std::move(writer).Finish();
  auto reader = FileReader::Open(*bytes);
  ASSERT_TRUE(reader.ok());
  const ColumnStats& stats = reader->row_group(0).columns[0].stats;
  ASSERT_TRUE(stats.has_min_max);
  EXPECT_EQ(stats.min.i64, 100);
  EXPECT_EQ(stats.max.i64, 109);
}

}  // namespace
}  // namespace polaris::format
