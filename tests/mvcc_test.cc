// Unit tests for the MVCC catalog store: visibility rules, the anomalies
// Snapshot Isolation must prevent (dirty read, non-repeatable read,
// phantom), first-committer-wins conflicts, RCSI and Serializable modes.

#include <gtest/gtest.h>

#include <thread>

#include "catalog/mvcc.h"

namespace polaris::catalog {
namespace {

using common::Status;

std::optional<std::string> Get(MvccStore& store, MvccTransaction* txn,
                               const std::string& key) {
  auto result = store.Get(txn, key);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return *result;
}

TEST(MvccTest, ReadYourOwnWrites) {
  MvccStore store;
  auto txn = store.Begin();
  ASSERT_TRUE(store.Put(txn.get(), "k", "v1").ok());
  EXPECT_EQ(Get(store, txn.get(), "k"), "v1");
  ASSERT_TRUE(store.Delete(txn.get(), "k").ok());
  EXPECT_EQ(Get(store, txn.get(), "k"), std::nullopt);
}

TEST(MvccTest, CommittedWritesVisibleToLaterTransactions) {
  MvccStore store;
  auto t1 = store.Begin();
  ASSERT_TRUE(store.Put(t1.get(), "k", "v").ok());
  ASSERT_TRUE(store.Commit(t1.get()).ok());
  auto t2 = store.Begin();
  EXPECT_EQ(Get(store, t2.get(), "k"), "v");
}

TEST(MvccTest, NoDirtyReads) {
  MvccStore store;
  auto writer = store.Begin();
  ASSERT_TRUE(store.Put(writer.get(), "k", "uncommitted").ok());
  auto reader = store.Begin();
  EXPECT_EQ(Get(store, reader.get(), "k"), std::nullopt);
}

TEST(MvccTest, NoNonRepeatableReads) {
  MvccStore store;
  auto setup = store.Begin();
  ASSERT_TRUE(store.Put(setup.get(), "k", "v1").ok());
  ASSERT_TRUE(store.Commit(setup.get()).ok());

  auto reader = store.Begin();
  EXPECT_EQ(Get(store, reader.get(), "k"), "v1");
  auto writer = store.Begin();
  ASSERT_TRUE(store.Put(writer.get(), "k", "v2").ok());
  ASSERT_TRUE(store.Commit(writer.get()).ok());
  // Snapshot reader still sees v1 after the concurrent commit.
  EXPECT_EQ(Get(store, reader.get(), "k"), "v1");
}

TEST(MvccTest, NoPhantoms) {
  MvccStore store;
  auto setup = store.Begin();
  ASSERT_TRUE(store.Put(setup.get(), "p/1", "a").ok());
  ASSERT_TRUE(store.Commit(setup.get()).ok());

  auto reader = store.Begin();
  auto scan1 = store.Scan(reader.get(), "p/");
  ASSERT_TRUE(scan1.ok());
  EXPECT_EQ(scan1->size(), 1u);

  auto writer = store.Begin();
  ASSERT_TRUE(store.Put(writer.get(), "p/2", "b").ok());
  ASSERT_TRUE(store.Commit(writer.get()).ok());

  auto scan2 = store.Scan(reader.get(), "p/");
  ASSERT_TRUE(scan2.ok());
  EXPECT_EQ(scan2->size(), 1u);  // no phantom row appears
}

TEST(MvccTest, FirstCommitterWinsOnWriteWriteConflict) {
  MvccStore store;
  auto t1 = store.Begin();
  auto t2 = store.Begin();
  ASSERT_TRUE(store.Put(t1.get(), "k", "from-t1").ok());
  ASSERT_TRUE(store.Put(t2.get(), "k", "from-t2").ok());
  ASSERT_TRUE(store.Commit(t1.get()).ok());
  EXPECT_TRUE(store.Commit(t2.get()).IsConflict());
  auto t3 = store.Begin();
  EXPECT_EQ(Get(store, t3.get(), "k"), "from-t1");
}

TEST(MvccTest, ConflictAlsoFiresOnDeleteVsPut) {
  MvccStore store;
  auto setup = store.Begin();
  ASSERT_TRUE(store.Put(setup.get(), "k", "v").ok());
  ASSERT_TRUE(store.Commit(setup.get()).ok());
  auto t1 = store.Begin();
  auto t2 = store.Begin();
  ASSERT_TRUE(store.Delete(t1.get(), "k").ok());
  ASSERT_TRUE(store.Put(t2.get(), "k", "v2").ok());
  ASSERT_TRUE(store.Commit(t1.get()).ok());
  EXPECT_TRUE(store.Commit(t2.get()).IsConflict());
}

TEST(MvccTest, DisjointWritesDoNotConflict) {
  MvccStore store;
  auto t1 = store.Begin();
  auto t2 = store.Begin();
  ASSERT_TRUE(store.Put(t1.get(), "a", "1").ok());
  ASSERT_TRUE(store.Put(t2.get(), "b", "2").ok());
  EXPECT_TRUE(store.Commit(t1.get()).ok());
  EXPECT_TRUE(store.Commit(t2.get()).ok());
}

TEST(MvccTest, AbortDiscardsWrites) {
  MvccStore store;
  auto t1 = store.Begin();
  ASSERT_TRUE(store.Put(t1.get(), "k", "v").ok());
  store.Abort(t1.get());
  auto t2 = store.Begin();
  EXPECT_EQ(Get(store, t2.get(), "k"), std::nullopt);
}

TEST(MvccTest, FinishedTransactionRejectsFurtherUse) {
  MvccStore store;
  auto t1 = store.Begin();
  ASSERT_TRUE(store.Commit(t1.get()).ok());
  EXPECT_TRUE(store.Put(t1.get(), "k", "v").IsFailedPrecondition());
  EXPECT_TRUE(store.Get(t1.get(), "k").status().IsFailedPrecondition());
  EXPECT_TRUE(store.Commit(t1.get()).IsFailedPrecondition());
}

TEST(MvccTest, ScanMergesOwnWritesInOrder) {
  MvccStore store;
  auto setup = store.Begin();
  ASSERT_TRUE(store.Put(setup.get(), "p/b", "committed-b").ok());
  ASSERT_TRUE(store.Put(setup.get(), "p/d", "committed-d").ok());
  ASSERT_TRUE(store.Commit(setup.get()).ok());

  auto txn = store.Begin();
  ASSERT_TRUE(store.Put(txn.get(), "p/a", "own-a").ok());
  ASSERT_TRUE(store.Put(txn.get(), "p/b", "own-b").ok());   // overwrite
  ASSERT_TRUE(store.Delete(txn.get(), "p/d").ok());         // delete
  ASSERT_TRUE(store.Put(txn.get(), "p/e", "own-e").ok());
  auto scan = store.Scan(txn.get(), "p/");
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->size(), 3u);
  EXPECT_EQ((*scan)[0], (std::pair<std::string, std::string>{"p/a", "own-a"}));
  EXPECT_EQ((*scan)[1], (std::pair<std::string, std::string>{"p/b", "own-b"}));
  EXPECT_EQ((*scan)[2], (std::pair<std::string, std::string>{"p/e", "own-e"}));
}

TEST(MvccTest, RcsiSeesLatestCommitted) {
  MvccStore store;
  auto setup = store.Begin();
  ASSERT_TRUE(store.Put(setup.get(), "k", "v1").ok());
  ASSERT_TRUE(store.Commit(setup.get()).ok());

  auto rcsi = store.Begin(IsolationMode::kReadCommittedSnapshot);
  EXPECT_EQ(Get(store, rcsi.get(), "k"), "v1");
  auto writer = store.Begin();
  ASSERT_TRUE(store.Put(writer.get(), "k", "v2").ok());
  ASSERT_TRUE(store.Commit(writer.get()).ok());
  // RCSI is not restricted to its begin snapshot (§4.4.2).
  EXPECT_EQ(Get(store, rcsi.get(), "k"), "v2");
}

TEST(MvccTest, SnapshotAllowsWriteSkew) {
  // The classic SI non-serializable interleaving: each txn reads the
  // other's key and writes its own; both commit under SI (§4.4.2).
  MvccStore store;
  auto setup = store.Begin();
  ASSERT_TRUE(store.Put(setup.get(), "x", "0").ok());
  ASSERT_TRUE(store.Put(setup.get(), "y", "0").ok());
  ASSERT_TRUE(store.Commit(setup.get()).ok());

  auto t1 = store.Begin();
  auto t2 = store.Begin();
  ASSERT_EQ(Get(store, t1.get(), "y"), "0");
  ASSERT_EQ(Get(store, t2.get(), "x"), "0");
  ASSERT_TRUE(store.Put(t1.get(), "x", "1").ok());
  ASSERT_TRUE(store.Put(t2.get(), "y", "1").ok());
  EXPECT_TRUE(store.Commit(t1.get()).ok());
  EXPECT_TRUE(store.Commit(t2.get()).ok());  // SI permits this
}

TEST(MvccTest, SerializableRejectsWriteSkew) {
  MvccStore store;
  auto setup = store.Begin();
  ASSERT_TRUE(store.Put(setup.get(), "x", "0").ok());
  ASSERT_TRUE(store.Put(setup.get(), "y", "0").ok());
  ASSERT_TRUE(store.Commit(setup.get()).ok());

  auto t1 = store.Begin(IsolationMode::kSerializable);
  auto t2 = store.Begin(IsolationMode::kSerializable);
  ASSERT_EQ(Get(store, t1.get(), "y"), "0");
  ASSERT_EQ(Get(store, t2.get(), "x"), "0");
  ASSERT_TRUE(store.Put(t1.get(), "x", "1").ok());
  ASSERT_TRUE(store.Put(t2.get(), "y", "1").ok());
  EXPECT_TRUE(store.Commit(t1.get()).ok());
  // t2's read of "x" was invalidated by t1's commit.
  EXPECT_TRUE(store.Commit(t2.get()).IsConflict());
}

TEST(MvccTest, SerializableRejectsPhantomIntoScannedRange) {
  MvccStore store;
  auto t1 = store.Begin(IsolationMode::kSerializable);
  auto scan = store.Scan(t1.get(), "r/");
  ASSERT_TRUE(scan.ok());
  ASSERT_TRUE(store.Put(t1.get(), "out", "x").ok());

  auto t2 = store.Begin();
  ASSERT_TRUE(store.Put(t2.get(), "r/new", "phantom").ok());
  ASSERT_TRUE(store.Commit(t2.get()).ok());
  EXPECT_TRUE(store.Commit(t1.get()).IsConflict());
}

TEST(MvccTest, CommitHookRunsUnderCommitLock) {
  MvccStore store;
  auto t1 = store.Begin();
  ASSERT_TRUE(store.Put(t1.get(), "a", "1").ok());
  bool hook_ran = false;
  ASSERT_TRUE(store
                  .Commit(t1.get(),
                          [&](MvccStore::CommitContext* ctx) {
                            hook_ran = true;
                            EXPECT_EQ(ctx->commit_seq(), 1u);
                            EXPECT_EQ(ctx->ReadLatest("a"), "1");  // own write
                            ctx->Write("hooked", "yes");
                            return Status::OK();
                          })
                  .ok());
  EXPECT_TRUE(hook_ran);
  auto t2 = store.Begin();
  EXPECT_EQ(Get(store, t2.get(), "hooked"), "yes");
}

TEST(MvccTest, CommitHookFailureAbortsTransaction) {
  MvccStore store;
  auto t1 = store.Begin();
  ASSERT_TRUE(store.Put(t1.get(), "a", "1").ok());
  EXPECT_TRUE(store
                  .Commit(t1.get(),
                          [](MvccStore::CommitContext*) {
                            return Status::Internal("hook says no");
                          })
                  .IsInternal());
  auto t2 = store.Begin();
  EXPECT_EQ(Get(store, t2.get(), "a"), std::nullopt);
}

TEST(MvccTest, VacuumDropsDeadVersions) {
  MvccStore store;
  for (int i = 0; i < 5; ++i) {
    auto txn = store.Begin();
    ASSERT_TRUE(store.Put(txn.get(), "k", "v" + std::to_string(i)).ok());
    ASSERT_TRUE(store.Commit(txn.get()).ok());
  }
  uint64_t removed = store.Vacuum(store.LatestCommitSeq());
  EXPECT_EQ(removed, 4u);
  auto txn = store.Begin();
  EXPECT_EQ(Get(store, txn.get(), "k"), "v4");
}

TEST(MvccTest, ConcurrentCommittersSerializeCorrectly) {
  MvccStore store;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  std::atomic<int> conflicts{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, &conflicts, t] {
      for (int i = 0; i < kPerThread; ++i) {
        auto txn = store.Begin();
        auto current = store.Get(txn.get(), "counter");
        ASSERT_TRUE(current.ok());
        int value =
            current->has_value() ? std::stoi(current->value()) : 0;
        ASSERT_TRUE(
            store.Put(txn.get(), "counter", std::to_string(value + 1)).ok());
        ASSERT_TRUE(store
                        .Put(txn.get(),
                             "t" + std::to_string(t) + "/" + std::to_string(i),
                             "x")
                        .ok());
        Status st = store.Commit(txn.get());
        if (st.IsConflict()) conflicts.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  // The counter equals the number of successful increments: lost updates
  // are impossible under first-committer-wins.
  auto txn = store.Begin();
  auto final_value = store.Get(txn.get(), "counter");
  ASSERT_TRUE(final_value.ok());
  ASSERT_TRUE(final_value->has_value());
  // Lost updates are impossible under first-committer-wins: every
  // successful commit incremented the counter exactly once. (Whether any
  // conflicts occur depends on thread interleaving, so we only assert the
  // conservation invariant.)
  int committed = kThreads * kPerThread - conflicts.load();
  EXPECT_EQ(std::stoi(final_value->value()), committed);
}

}  // namespace
}  // namespace polaris::catalog
