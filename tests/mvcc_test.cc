// Unit tests for the MVCC catalog store: visibility rules, the anomalies
// Snapshot Isolation must prevent (dirty read, non-repeatable read,
// phantom), first-committer-wins conflicts, RCSI and Serializable modes.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>

#include "catalog/mvcc.h"
#include "common/clock.h"
#include "common/trace_context.h"

namespace polaris::catalog {
namespace {

using common::Status;

std::optional<std::string> Get(MvccStore& store, MvccTransaction* txn,
                               const std::string& key) {
  auto result = store.Get(txn, key);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return *result;
}

TEST(MvccTest, ReadYourOwnWrites) {
  MvccStore store;
  auto txn = store.Begin();
  ASSERT_TRUE(store.Put(txn.get(), "k", "v1").ok());
  EXPECT_EQ(Get(store, txn.get(), "k"), "v1");
  ASSERT_TRUE(store.Delete(txn.get(), "k").ok());
  EXPECT_EQ(Get(store, txn.get(), "k"), std::nullopt);
}

TEST(MvccTest, CommittedWritesVisibleToLaterTransactions) {
  MvccStore store;
  auto t1 = store.Begin();
  ASSERT_TRUE(store.Put(t1.get(), "k", "v").ok());
  ASSERT_TRUE(store.Commit(t1.get()).ok());
  auto t2 = store.Begin();
  EXPECT_EQ(Get(store, t2.get(), "k"), "v");
}

TEST(MvccTest, NoDirtyReads) {
  MvccStore store;
  auto writer = store.Begin();
  ASSERT_TRUE(store.Put(writer.get(), "k", "uncommitted").ok());
  auto reader = store.Begin();
  EXPECT_EQ(Get(store, reader.get(), "k"), std::nullopt);
}

TEST(MvccTest, NoNonRepeatableReads) {
  MvccStore store;
  auto setup = store.Begin();
  ASSERT_TRUE(store.Put(setup.get(), "k", "v1").ok());
  ASSERT_TRUE(store.Commit(setup.get()).ok());

  auto reader = store.Begin();
  EXPECT_EQ(Get(store, reader.get(), "k"), "v1");
  auto writer = store.Begin();
  ASSERT_TRUE(store.Put(writer.get(), "k", "v2").ok());
  ASSERT_TRUE(store.Commit(writer.get()).ok());
  // Snapshot reader still sees v1 after the concurrent commit.
  EXPECT_EQ(Get(store, reader.get(), "k"), "v1");
}

TEST(MvccTest, NoPhantoms) {
  MvccStore store;
  auto setup = store.Begin();
  ASSERT_TRUE(store.Put(setup.get(), "p/1", "a").ok());
  ASSERT_TRUE(store.Commit(setup.get()).ok());

  auto reader = store.Begin();
  auto scan1 = store.Scan(reader.get(), "p/");
  ASSERT_TRUE(scan1.ok());
  EXPECT_EQ(scan1->size(), 1u);

  auto writer = store.Begin();
  ASSERT_TRUE(store.Put(writer.get(), "p/2", "b").ok());
  ASSERT_TRUE(store.Commit(writer.get()).ok());

  auto scan2 = store.Scan(reader.get(), "p/");
  ASSERT_TRUE(scan2.ok());
  EXPECT_EQ(scan2->size(), 1u);  // no phantom row appears
}

TEST(MvccTest, FirstCommitterWinsOnWriteWriteConflict) {
  MvccStore store;
  auto t1 = store.Begin();
  auto t2 = store.Begin();
  ASSERT_TRUE(store.Put(t1.get(), "k", "from-t1").ok());
  ASSERT_TRUE(store.Put(t2.get(), "k", "from-t2").ok());
  ASSERT_TRUE(store.Commit(t1.get()).ok());
  EXPECT_TRUE(store.Commit(t2.get()).IsConflict());
  auto t3 = store.Begin();
  EXPECT_EQ(Get(store, t3.get(), "k"), "from-t1");
}

TEST(MvccTest, ConflictAlsoFiresOnDeleteVsPut) {
  MvccStore store;
  auto setup = store.Begin();
  ASSERT_TRUE(store.Put(setup.get(), "k", "v").ok());
  ASSERT_TRUE(store.Commit(setup.get()).ok());
  auto t1 = store.Begin();
  auto t2 = store.Begin();
  ASSERT_TRUE(store.Delete(t1.get(), "k").ok());
  ASSERT_TRUE(store.Put(t2.get(), "k", "v2").ok());
  ASSERT_TRUE(store.Commit(t1.get()).ok());
  EXPECT_TRUE(store.Commit(t2.get()).IsConflict());
}

TEST(MvccTest, DisjointWritesDoNotConflict) {
  MvccStore store;
  auto t1 = store.Begin();
  auto t2 = store.Begin();
  ASSERT_TRUE(store.Put(t1.get(), "a", "1").ok());
  ASSERT_TRUE(store.Put(t2.get(), "b", "2").ok());
  EXPECT_TRUE(store.Commit(t1.get()).ok());
  EXPECT_TRUE(store.Commit(t2.get()).ok());
}

TEST(MvccTest, AbortDiscardsWrites) {
  MvccStore store;
  auto t1 = store.Begin();
  ASSERT_TRUE(store.Put(t1.get(), "k", "v").ok());
  store.Abort(t1.get());
  auto t2 = store.Begin();
  EXPECT_EQ(Get(store, t2.get(), "k"), std::nullopt);
}

TEST(MvccTest, FinishedTransactionRejectsFurtherUse) {
  MvccStore store;
  auto t1 = store.Begin();
  ASSERT_TRUE(store.Commit(t1.get()).ok());
  EXPECT_TRUE(store.Put(t1.get(), "k", "v").IsFailedPrecondition());
  EXPECT_TRUE(store.Get(t1.get(), "k").status().IsFailedPrecondition());
  EXPECT_TRUE(store.Commit(t1.get()).IsFailedPrecondition());
}

TEST(MvccTest, ScanMergesOwnWritesInOrder) {
  MvccStore store;
  auto setup = store.Begin();
  ASSERT_TRUE(store.Put(setup.get(), "p/b", "committed-b").ok());
  ASSERT_TRUE(store.Put(setup.get(), "p/d", "committed-d").ok());
  ASSERT_TRUE(store.Commit(setup.get()).ok());

  auto txn = store.Begin();
  ASSERT_TRUE(store.Put(txn.get(), "p/a", "own-a").ok());
  ASSERT_TRUE(store.Put(txn.get(), "p/b", "own-b").ok());   // overwrite
  ASSERT_TRUE(store.Delete(txn.get(), "p/d").ok());         // delete
  ASSERT_TRUE(store.Put(txn.get(), "p/e", "own-e").ok());
  auto scan = store.Scan(txn.get(), "p/");
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->size(), 3u);
  EXPECT_EQ((*scan)[0], (std::pair<std::string, std::string>{"p/a", "own-a"}));
  EXPECT_EQ((*scan)[1], (std::pair<std::string, std::string>{"p/b", "own-b"}));
  EXPECT_EQ((*scan)[2], (std::pair<std::string, std::string>{"p/e", "own-e"}));
}

TEST(MvccTest, RcsiSeesLatestCommitted) {
  MvccStore store;
  auto setup = store.Begin();
  ASSERT_TRUE(store.Put(setup.get(), "k", "v1").ok());
  ASSERT_TRUE(store.Commit(setup.get()).ok());

  auto rcsi = store.Begin(IsolationMode::kReadCommittedSnapshot);
  EXPECT_EQ(Get(store, rcsi.get(), "k"), "v1");
  auto writer = store.Begin();
  ASSERT_TRUE(store.Put(writer.get(), "k", "v2").ok());
  ASSERT_TRUE(store.Commit(writer.get()).ok());
  // RCSI is not restricted to its begin snapshot (§4.4.2).
  EXPECT_EQ(Get(store, rcsi.get(), "k"), "v2");
}

TEST(MvccTest, SnapshotAllowsWriteSkew) {
  // The classic SI non-serializable interleaving: each txn reads the
  // other's key and writes its own; both commit under SI (§4.4.2).
  MvccStore store;
  auto setup = store.Begin();
  ASSERT_TRUE(store.Put(setup.get(), "x", "0").ok());
  ASSERT_TRUE(store.Put(setup.get(), "y", "0").ok());
  ASSERT_TRUE(store.Commit(setup.get()).ok());

  auto t1 = store.Begin();
  auto t2 = store.Begin();
  ASSERT_EQ(Get(store, t1.get(), "y"), "0");
  ASSERT_EQ(Get(store, t2.get(), "x"), "0");
  ASSERT_TRUE(store.Put(t1.get(), "x", "1").ok());
  ASSERT_TRUE(store.Put(t2.get(), "y", "1").ok());
  EXPECT_TRUE(store.Commit(t1.get()).ok());
  EXPECT_TRUE(store.Commit(t2.get()).ok());  // SI permits this
}

TEST(MvccTest, SerializableRejectsWriteSkew) {
  MvccStore store;
  auto setup = store.Begin();
  ASSERT_TRUE(store.Put(setup.get(), "x", "0").ok());
  ASSERT_TRUE(store.Put(setup.get(), "y", "0").ok());
  ASSERT_TRUE(store.Commit(setup.get()).ok());

  auto t1 = store.Begin(IsolationMode::kSerializable);
  auto t2 = store.Begin(IsolationMode::kSerializable);
  ASSERT_EQ(Get(store, t1.get(), "y"), "0");
  ASSERT_EQ(Get(store, t2.get(), "x"), "0");
  ASSERT_TRUE(store.Put(t1.get(), "x", "1").ok());
  ASSERT_TRUE(store.Put(t2.get(), "y", "1").ok());
  EXPECT_TRUE(store.Commit(t1.get()).ok());
  // t2's read of "x" was invalidated by t1's commit.
  EXPECT_TRUE(store.Commit(t2.get()).IsConflict());
}

TEST(MvccTest, SerializableRejectsPhantomIntoScannedRange) {
  MvccStore store;
  auto t1 = store.Begin(IsolationMode::kSerializable);
  auto scan = store.Scan(t1.get(), "r/");
  ASSERT_TRUE(scan.ok());
  ASSERT_TRUE(store.Put(t1.get(), "out", "x").ok());

  auto t2 = store.Begin();
  ASSERT_TRUE(store.Put(t2.get(), "r/new", "phantom").ok());
  ASSERT_TRUE(store.Commit(t2.get()).ok());
  EXPECT_TRUE(store.Commit(t1.get()).IsConflict());
}

TEST(MvccTest, CommitHookRunsInsideSequencingGate) {
  MvccStore store;
  auto t1 = store.Begin();
  ASSERT_TRUE(store.Put(t1.get(), "a", "1").ok());
  bool hook_ran = false;
  ASSERT_TRUE(store
                  .Commit(t1.get(),
                          [&](MvccStore::CommitContext* ctx) {
                            hook_ran = true;
                            EXPECT_EQ(ctx->commit_seq(), 1u);
                            EXPECT_EQ(ctx->ReadLatest("a"), "1");  // own write
                            ctx->Write("hooked", "yes");
                            return Status::OK();
                          })
                  .ok());
  EXPECT_TRUE(hook_ran);
  auto t2 = store.Begin();
  EXPECT_EQ(Get(store, t2.get(), "hooked"), "yes");
}

TEST(MvccTest, CommitHookFailureAbortsTransaction) {
  MvccStore store;
  auto t1 = store.Begin();
  ASSERT_TRUE(store.Put(t1.get(), "a", "1").ok());
  EXPECT_TRUE(store
                  .Commit(t1.get(),
                          [](MvccStore::CommitContext*) {
                            return Status::Internal("hook says no");
                          })
                  .IsInternal());
  auto t2 = store.Begin();
  EXPECT_EQ(Get(store, t2.get(), "a"), std::nullopt);
}

TEST(MvccTest, VacuumDropsDeadVersions) {
  MvccStore store;
  for (int i = 0; i < 5; ++i) {
    auto txn = store.Begin();
    ASSERT_TRUE(store.Put(txn.get(), "k", "v" + std::to_string(i)).ok());
    ASSERT_TRUE(store.Commit(txn.get()).ok());
  }
  uint64_t removed = store.Vacuum(store.LatestCommitSeq());
  EXPECT_EQ(removed, 4u);
  auto txn = store.Begin();
  EXPECT_EQ(Get(store, txn.get(), "k"), "v4");
}

TEST(MvccTest, ConcurrentCommittersSerializeCorrectly) {
  MvccStore store;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  std::atomic<int> conflicts{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, &conflicts, t] {
      for (int i = 0; i < kPerThread; ++i) {
        auto txn = store.Begin();
        auto current = store.Get(txn.get(), "counter");
        ASSERT_TRUE(current.ok());
        int value =
            current->has_value() ? std::stoi(current->value()) : 0;
        ASSERT_TRUE(
            store.Put(txn.get(), "counter", std::to_string(value + 1)).ok());
        ASSERT_TRUE(store
                        .Put(txn.get(),
                             "t" + std::to_string(t) + "/" + std::to_string(i),
                             "x")
                        .ok());
        Status st = store.Commit(txn.get());
        if (st.IsConflict()) conflicts.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  // The counter equals the number of successful increments: lost updates
  // are impossible under first-committer-wins.
  auto txn = store.Begin();
  auto final_value = store.Get(txn.get(), "counter");
  ASSERT_TRUE(final_value.ok());
  ASSERT_TRUE(final_value->has_value());
  // Lost updates are impossible under first-committer-wins: every
  // successful commit incremented the counter exactly once. (Whether any
  // conflicts occur depends on thread interleaving, so we only assert the
  // conservation invariant.)
  int committed = kThreads * kPerThread - conflicts.load();
  EXPECT_EQ(std::stoi(final_value->value()), committed);
}

// --- Commit-pipeline tests (group commit, priorities, deadlines) -----------

TEST(MvccTest, HookWritesDoNotPolluteTxnWhenListenerFails) {
  MvccStore store;
  store.SetCommitListener([](const std::vector<CommitRecord>&) {
    return Status::Internal("journal refused the batch");
  });
  auto txn = store.Begin();
  ASSERT_TRUE(store.Put(txn.get(), "user", "v").ok());
  Status st = store.Commit(txn.get(), [](MvccStore::CommitContext* ctx) {
    ctx->Write("hooked", "yes");
    return Status::OK();
  });
  EXPECT_TRUE(st.IsInternal());
  // The failed durability point must not leave the hook's write behind in
  // the transaction's own write set (write-set pollution regression).
  EXPECT_EQ(txn->written_keys(), std::vector<std::string>{"user"});
  auto reader = store.Begin();
  EXPECT_EQ(Get(store, reader.get(), "user"), std::nullopt);
  EXPECT_EQ(Get(store, reader.get(), "hooked"), std::nullopt);
  EXPECT_EQ(store.LatestCommitSeq(), 0u);
  EXPECT_EQ(store.PipelineStats().flush_failures, 1u);

  // A refused append is not poison: with a healthy listener the store keeps
  // committing, and the failed batch's sequence is left as a gap.
  store.SetCommitListener(
      [](const std::vector<CommitRecord>&) { return Status::OK(); });
  auto t2 = store.Begin();
  ASSERT_TRUE(store.Put(t2.get(), "k2", "v2").ok());
  ASSERT_TRUE(store.Commit(t2.get()).ok());
  EXPECT_EQ(store.LatestCommitSeq(), 2u);
}

TEST(MvccTest, HookFailureDoesNotConsumeItsSequence) {
  MvccStore store;
  auto t1 = store.Begin();
  ASSERT_TRUE(store.Put(t1.get(), "a", "1").ok());
  EXPECT_TRUE(store
                  .Commit(t1.get(),
                          [](MvccStore::CommitContext* ctx) {
                            ctx->Write("hooked", "x");
                            return Status::Internal("hook says no");
                          })
                  .IsInternal());
  EXPECT_EQ(t1->written_keys(), std::vector<std::string>{"a"});
  auto t2 = store.Begin();
  ASSERT_TRUE(store.Put(t2.get(), "b", "2").ok());
  ASSERT_TRUE(store.Commit(t2.get()).ok());
  // Unlike a failed durability batch, a hook failure happens before the
  // sequence is claimed, so the next commit gets seq 1 — no gap.
  EXPECT_EQ(store.LatestCommitSeq(), 1u);
}

TEST(MvccTest, ExpiredDeadlineFailsFastBeforeSequencing) {
  MvccStore store;
  common::SimClock clock;
  auto txn = store.Begin();
  ASSERT_TRUE(store.Put(txn.get(), "k", "v").ok());
  common::ScopedDeadline scoped(common::Deadline::After(&clock, 0));
  EXPECT_TRUE(store.Commit(txn.get()).IsDeadlineExceeded());
  EXPECT_TRUE(txn->finished());
  auto reader = store.Begin();
  EXPECT_EQ(Get(store, reader.get(), "k"), std::nullopt);
  EXPECT_EQ(store.PipelineStats().commits, 0u);
}

TEST(MvccTest, ExpiredWaiterDetachesWithoutStallingTheBatch) {
  MvccStore store;
  common::SimClock clock;
  std::atomic<int> listener_calls{0};
  std::promise<void> entered_promise;
  std::future<void> entered = entered_promise.get_future();
  std::promise<void> release_promise;
  std::shared_future<void> release(release_promise.get_future());
  store.SetCommitListener([&](const std::vector<CommitRecord>&) {
    if (listener_calls.fetch_add(1) == 0) {
      entered_promise.set_value();
      release.wait();  // hold the first batch at the durability point
    }
    return Status::OK();
  });

  auto ta = store.Begin();
  ASSERT_TRUE(store.Put(ta.get(), "a", "1").ok());
  std::thread leader([&] { EXPECT_TRUE(store.Commit(ta.get()).ok()); });
  entered.wait();  // the leader is now blocked inside the listener

  auto tb = store.Begin();
  ASSERT_TRUE(store.Put(tb.get(), "b", "1").ok());
  Status b_status;
  std::thread follower([&] {
    common::ScopedDeadline scoped(common::Deadline::After(&clock, 5'000));
    b_status = store.Commit(tb.get());
  });
  // Wait until the follower is sequenced and parked at the commit barrier,
  // then expire its deadline (virtual time; the leader is unbounded).
  while (store.PipelineStats().pending < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  clock.Advance(10'000);
  follower.join();
  EXPECT_TRUE(b_status.IsDeadlineExceeded());
  EXPECT_EQ(store.PipelineStats().waiters_detached, 1u);
  // The detached commit is in doubt, not rolled back: nothing is installed
  // while the first batch is still at the durability point...
  EXPECT_EQ(store.LatestCommitSeq(), 0u);

  release_promise.set_value();
  leader.join();
  // ...and once the leader's batch lands it drains the orphaned entry, so
  // the detached commit resolves as applied without a waiter.
  auto reader = store.Begin();
  EXPECT_EQ(Get(store, reader.get(), "a"), "1");
  EXPECT_EQ(Get(store, reader.get(), "b"), "1");
  EXPECT_EQ(store.PipelineStats().pending, 0u);
}

TEST(MvccTest, LeaderBatchesQueuedCommitsIntoOneFlush) {
  MvccStore store;
  constexpr int kThreads = 6;
  std::atomic<int> listener_calls{0};
  store.SetCommitListener([&](const std::vector<CommitRecord>&) {
    if (listener_calls.fetch_add(1) == 0) {
      // Hold the first flush (one record: the leader sequenced and claimed
      // the queue before anyone else reached the gate) until every other
      // committer is sequenced behind it; the second flush must then carry
      // all of them as one batch.
      for (int spin = 0; spin < 10'000; ++spin) {
        if (store.PipelineStats().pending >= kThreads) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    return Status::OK();
  });
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, t] {
      auto txn = store.Begin();
      ASSERT_TRUE(store.Put(txn.get(), "k" + std::to_string(t), "v").ok());
      EXPECT_TRUE(store.Commit(txn.get()).ok());
    });
  }
  for (auto& th : threads) th.join();
  auto stats = store.PipelineStats();
  EXPECT_EQ(stats.commits, static_cast<uint64_t>(kThreads));
  EXPECT_EQ(stats.batches, 2u);
  EXPECT_EQ(stats.max_batch, static_cast<uint64_t>(kThreads - 1));
  EXPECT_EQ(stats.pending, 0u);
  EXPECT_EQ(store.LatestCommitSeq(), static_cast<uint64_t>(kThreads));
  auto reader = store.Begin();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(Get(store, reader.get(), "k" + std::to_string(t)), "v");
  }
}

TEST(MvccTest, HighPriorityCommitterSequencesFirst) {
  MvccStore store;
  std::mutex order_mu;
  std::map<std::string, uint64_t> seq_of;
  store.SetCommitListener([&](const std::vector<CommitRecord>& records) {
    std::lock_guard<std::mutex> lock(order_mu);
    for (const auto& record : records) {
      for (const auto& [key, value] : *record.writes) {
        (void)value;
        seq_of[key] = record.commit_seq;
      }
    }
    return Status::OK();
  });

  std::promise<void> hook_entered_promise;
  std::future<void> hook_entered = hook_entered_promise.get_future();
  std::promise<void> hook_release_promise;
  std::shared_future<void> hook_release(hook_release_promise.get_future());
  auto ta = store.Begin();
  ASSERT_TRUE(store.Put(ta.get(), "a", "1").ok());
  std::thread a_thread([&] {
    EXPECT_TRUE(store
                    .Commit(ta.get(),
                            [&](MvccStore::CommitContext*) {
                              hook_entered_promise.set_value();
                              hook_release.wait();
                              return Status::OK();
                            })
                    .ok());
  });
  hook_entered.wait();  // A now occupies the sequencing gate

  auto tb = store.Begin();
  ASSERT_TRUE(store.Put(tb.get(), "b", "1").ok());
  std::thread b_thread([&] { EXPECT_TRUE(store.Commit(tb.get()).ok()); });
  while (store.PipelineStats().gate_waiters < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  auto tc = store.Begin();
  tc->set_priority(CommitPriority::kHigh);
  ASSERT_TRUE(store.Put(tc.get(), "c", "1").ok());
  std::thread c_thread([&] { EXPECT_TRUE(store.Commit(tc.get()).ok()); });
  while (store.PipelineStats().gate_waiters < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  hook_release_promise.set_value();
  a_thread.join();
  b_thread.join();
  c_thread.join();

  // C arrived at the gate after B but sequenced ahead of it.
  ASSERT_EQ(seq_of.size(), 3u);
  EXPECT_LT(seq_of["c"], seq_of["b"]);
  EXPECT_LT(seq_of["a"], seq_of["c"]);
  EXPECT_EQ(store.PipelineStats().high_priority, 1u);
}

TEST(MvccTest, SerializablePrefixValidationHappensOutsideTheGate) {
  MvccStore store;
  for (int i = 0; i < 300; ++i) {
    auto setup = store.Begin();
    ASSERT_TRUE(
        store.Put(setup.get(), "p/" + std::to_string(i), "v").ok());
    ASSERT_TRUE(store.Commit(setup.get()).ok());
  }
  auto txn = store.Begin(IsolationMode::kSerializable);
  auto scan = store.Scan(txn.get(), "p/");
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->size(), 300u);
  ASSERT_TRUE(store.Put(txn.get(), "summary", "300").ok());
  EXPECT_TRUE(store.Commit(txn.get()).ok());
  // The wide range validation ran as pre-validation outside the gate; the
  // gate-side re-check was served by the recent-commit ring, never by a
  // full rescan.
  auto stats = store.PipelineStats();
  EXPECT_GE(stats.prevalidated, 1u);
  EXPECT_EQ(stats.revalidation_fallbacks, 0u);
}

TEST(MvccTest, GateRevalidationCatchesSequencedButUninstalledConflicts) {
  MvccStore store;
  std::atomic<int> listener_calls{0};
  std::promise<void> entered_promise;
  std::future<void> entered = entered_promise.get_future();
  std::promise<void> release_promise;
  std::shared_future<void> release(release_promise.get_future());
  store.SetCommitListener([&](const std::vector<CommitRecord>&) {
    if (listener_calls.fetch_add(1) == 0) {
      entered_promise.set_value();
      release.wait();
    }
    return Status::OK();
  });

  auto reader = store.Begin(IsolationMode::kSerializable);
  auto scan = store.Scan(reader.get(), "p/");
  ASSERT_TRUE(scan.ok());
  ASSERT_TRUE(store.Put(reader.get(), "out", "x").ok());

  auto writer = store.Begin();
  ASSERT_TRUE(store.Put(writer.get(), "p/new", "phantom").ok());
  std::thread w([&] { EXPECT_TRUE(store.Commit(writer.get()).ok()); });
  entered.wait();
  // The writer is sequenced but not installed (its batch is held at the
  // durability point), so the reader's pre-validation against the
  // installed store passes — only the gate-side re-check against the
  // pending queue can see the phantom.
  EXPECT_TRUE(store.Commit(reader.get()).IsConflict());
  release_promise.set_value();
  w.join();
  auto t2 = store.Begin();
  EXPECT_EQ(Get(store, t2.get(), "p/new"), "phantom");
}

}  // namespace
}  // namespace polaris::catalog
