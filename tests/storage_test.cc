// Unit tests for the object store substrate: per-store statistics, fault
// injection, path layout, and the retrying decorator. The object-store
// *semantics* (Put/Get/Block Blob protocol, §3.2.2) are covered by the
// conformance suite in store_conformance_test.cc, which runs the same
// assertions against every ObjectStore implementation.

#include <gtest/gtest.h>

#include "common/clock.h"
#include "obs/metrics.h"
#include "storage/fault_injection_store.h"
#include "storage/memory_object_store.h"
#include "storage/path_util.h"
#include "storage/retrying_object_store.h"

namespace polaris::storage {
namespace {

TEST(MemoryObjectStoreTest, StatsTrackOperations) {
  MemoryObjectStore store;
  ASSERT_TRUE(store.Put("a", "12345").ok());
  ASSERT_TRUE(store.Get("a").ok());
  ASSERT_TRUE(store.StageBlock("m", "b", "xyz").ok());
  ASSERT_TRUE(store.CommitBlockList("m", {"b"}).ok());
  StoreStats stats = store.stats();
  EXPECT_EQ(stats.puts, 1u);
  EXPECT_EQ(stats.gets, 1u);
  EXPECT_EQ(stats.blocks_staged, 1u);
  EXPECT_EQ(stats.block_commits, 1u);
  EXPECT_EQ(stats.bytes_written, 8u);
  EXPECT_EQ(stats.bytes_read, 5u);
  store.ResetStats();
  EXPECT_EQ(store.stats().puts, 0u);
}

// --- Fault injection ----------------------------------------------------------

TEST(FaultInjectionTest, FailNthOperationFiresOnce) {
  MemoryObjectStore base;
  FaultInjectionStore store(&base, /*seed=*/1);
  FaultPolicy policy;
  policy.fail_nth_operation = 2;
  store.set_policy(policy);
  EXPECT_TRUE(store.Put("a", "1").ok());           // op 1
  EXPECT_TRUE(store.Put("b", "2").IsUnavailable()); // op 2: injected
  EXPECT_TRUE(store.Put("b", "2").ok());            // trigger disarmed
  EXPECT_EQ(store.injected_failures(), 1u);
  // The failed op never reached the base store.
  EXPECT_EQ(*base.Get("b"), "2");
}

TEST(FaultInjectionTest, WriteProbabilityInjectsFailures) {
  MemoryObjectStore base;
  FaultInjectionStore store(&base, /*seed=*/7);
  FaultPolicy policy;
  policy.write_failure_probability = 0.5;
  store.set_policy(policy);
  int failures = 0;
  for (int i = 0; i < 200; ++i) {
    if (!store.Put("k" + std::to_string(i), "v").ok()) ++failures;
  }
  EXPECT_GT(failures, 50);
  EXPECT_LT(failures, 150);
}

TEST(FaultInjectionTest, ReadsUnaffectedByWritePolicy) {
  MemoryObjectStore base;
  ASSERT_TRUE(base.Put("k", "v").ok());
  FaultInjectionStore store(&base, 3);
  FaultPolicy policy;
  policy.write_failure_probability = 1.0;
  store.set_policy(policy);
  EXPECT_TRUE(store.Get("k").ok());
  EXPECT_TRUE(store.Put("x", "y").IsUnavailable());
}

// --- Path layout ---------------------------------------------------------------

TEST(PathUtilTest, LayoutIsStableAndPrefixed) {
  EXPECT_EQ(PathUtil::DataFilePath(7, "abc"), "tables/7/data/abc.parquet");
  EXPECT_EQ(PathUtil::DeleteVectorPath(7, "abc"), "tables/7/data/abc.dv");
  EXPECT_EQ(PathUtil::ManifestPath(7, "abc"), "tables/7/manifests/abc.manifest");
  EXPECT_TRUE(PathUtil::CheckpointPath(7, 12).starts_with("tables/7/checkpoints/"));
  EXPECT_TRUE(PathUtil::DataFilePath(7, "x").starts_with(PathUtil::DataDir(7)));
}

TEST(PathUtilTest, CheckpointPathsSortNumerically) {
  EXPECT_LT(PathUtil::CheckpointPath(1, 9), PathUtil::CheckpointPath(1, 10));
  EXPECT_LT(PathUtil::CheckpointPath(1, 99), PathUtil::CheckpointPath(1, 100));
}

TEST(PathUtilTest, JoinNormalizesSlashes) {
  EXPECT_EQ(PathUtil::Join("a", "b"), "a/b");
  EXPECT_EQ(PathUtil::Join("a/", "b"), "a/b");
  EXPECT_EQ(PathUtil::Join("a", "/b"), "a/b");
  EXPECT_EQ(PathUtil::Join("a/", "/b"), "a/b");
  EXPECT_EQ(PathUtil::Join("", "b"), "b");
  EXPECT_EQ(PathUtil::Join("a", ""), "a");
}

// --- Retrying store -------------------------------------------------------------

/// Delegates to a MemoryObjectStore after failing the first
/// `fail_remaining` operations with `failure`; counts every attempt.
class FlakyStore : public ObjectStore {
 public:
  explicit FlakyStore(common::Status failure, int fail_remaining = 0)
      : failure_(std::move(failure)), fail_remaining_(fail_remaining) {}

  int attempts = 0;
  MemoryObjectStore base;

  common::Status Put(const std::string& path, std::string data) override {
    if (Fails()) return failure_;
    return base.Put(path, std::move(data));
  }
  common::Result<std::string> Get(const std::string& path) override {
    if (Fails()) return failure_;
    return base.Get(path);
  }
  common::Result<BlobInfo> Stat(const std::string& path) override {
    if (Fails()) return failure_;
    return base.Stat(path);
  }
  common::Status Delete(const std::string& path) override {
    if (Fails()) return failure_;
    return base.Delete(path);
  }
  common::Result<std::vector<BlobInfo>> List(
      const std::string& prefix) override {
    if (Fails()) return failure_;
    return base.List(prefix);
  }
  common::Status StageBlock(const std::string& path,
                            const std::string& block_id,
                            std::string data) override {
    if (Fails()) return failure_;
    return base.StageBlock(path, block_id, std::move(data));
  }
  common::Status CommitBlockList(
      const std::string& path,
      const std::vector<std::string>& block_ids) override {
    if (Fails()) return failure_;
    return base.CommitBlockList(path, block_ids);
  }
  common::Status CommitBlockListIf(const std::string& path,
                                   const std::vector<std::string>& block_ids,
                                   uint64_t expected_generation) override {
    if (Fails()) return failure_;
    return base.CommitBlockListIf(path, block_ids, expected_generation);
  }
  common::Result<std::vector<std::string>> GetCommittedBlockList(
      const std::string& path) override {
    if (Fails()) return failure_;
    return base.GetCommittedBlockList(path);
  }

 private:
  bool Fails() {
    ++attempts;
    if (fail_remaining_ > 0) {
      --fail_remaining_;
      return true;
    }
    return false;
  }

  common::Status failure_;
  int fail_remaining_;
};

TEST(RetryingStoreTest, AbsorbsTransientUnavailable) {
  FlakyStore flaky(common::Status::Unavailable("throttled"),
                   /*fail_remaining=*/2);
  common::SimClock clock(0);
  RetryingObjectStore store(&flaky, &clock);

  ASSERT_TRUE(store.Put("k", "v").ok());
  EXPECT_EQ(flaky.attempts, 3);  // 2 failures + 1 success
  EXPECT_EQ(store.total_retries(), 2u);
  EXPECT_EQ(store.exhausted_operations(), 0u);
  EXPECT_EQ(*store.Get("k"), "v");
}

TEST(RetryingStoreTest, TimeoutIOErrorsAreRetried) {
  FlakyStore flaky(common::Status::IOError("request timed out"),
                   /*fail_remaining=*/1);
  common::SimClock clock(0);
  RetryingObjectStore store(&flaky, &clock);
  ASSERT_TRUE(flaky.base.Put("k", "v").ok());

  ASSERT_TRUE(store.Get("k").ok());
  EXPECT_EQ(store.total_retries(), 1u);
}

TEST(RetryingStoreTest, SemanticErrorsPassThroughWithoutRetry) {
  FlakyStore flaky(common::Status::OK());
  common::SimClock clock(0);
  RetryingObjectStore store(&flaky, &clock);

  // Write-once violation: AlreadyExists, exactly one base attempt each.
  ASSERT_TRUE(store.Put("k", "v1").ok());
  flaky.attempts = 0;
  EXPECT_TRUE(store.Put("k", "v2").IsAlreadyExists());
  EXPECT_EQ(flaky.attempts, 1);

  flaky.attempts = 0;
  EXPECT_TRUE(store.Get("missing").status().IsNotFound());
  EXPECT_EQ(flaky.attempts, 1);

  // Committing unknown blocks is a precondition failure, not transient.
  flaky.attempts = 0;
  EXPECT_FALSE(store.CommitBlockList("blob", {"ghost-block"}).ok());
  EXPECT_EQ(flaky.attempts, 1);

  // Generation mismatches are commit-protocol signals, never retried:
  // retrying a lost conditional write could double-apply a commit.
  ASSERT_TRUE(flaky.base.StageBlock("cond", "b", "x").ok());
  flaky.attempts = 0;
  EXPECT_TRUE(store.CommitBlockListIf("cond", {"b"}, /*expected_generation=*/9)
                  .IsFailedPrecondition());
  EXPECT_EQ(flaky.attempts, 1);

  EXPECT_EQ(store.total_retries(), 0u);
}

TEST(RetryingStoreTest, ConditionalCommitRetriesTransientFailures) {
  FlakyStore flaky(common::Status::Unavailable("throttled"),
                   /*fail_remaining=*/2);
  common::SimClock clock(0);
  RetryingObjectStore store(&flaky, &clock);
  ASSERT_TRUE(flaky.base.StageBlock("m", "b", "x").ok());

  ASSERT_TRUE(store.CommitBlockListIf("m", {"b"}, /*expected_generation=*/0)
                  .ok());
  EXPECT_EQ(store.total_retries(), 2u);
}

TEST(RetryingStoreTest, ExhaustsBudgetAndSurfacesUnavailable) {
  FlakyStore flaky(common::Status::Unavailable("down"),
                   /*fail_remaining=*/1'000'000);
  common::SimClock clock(0);
  RetryPolicy policy;
  policy.max_attempts = 4;
  RetryingObjectStore store(&flaky, &clock, policy);

  EXPECT_TRUE(store.Put("k", "v").IsUnavailable());
  EXPECT_EQ(flaky.attempts, 4);
  EXPECT_EQ(store.total_retries(), 3u);
  EXPECT_EQ(store.exhausted_operations(), 1u);
}

TEST(RetryingStoreTest, BackoffAdvancesVirtualClockDeterministically) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.initial_backoff_micros = 1'000;
  policy.max_backoff_micros = 100'000;
  policy.seed = 99;

  auto run = [&]() -> common::Micros {
    FlakyStore flaky(common::Status::Unavailable("down"),
                     /*fail_remaining=*/4);
    common::SimClock clock(0);
    RetryingObjectStore store(&flaky, &clock, policy);
    EXPECT_TRUE(store.Put("k", "v").ok());
    return clock.Now();
  };

  common::Micros first = run();
  EXPECT_GT(first, 0);
  // 4 backoffs of at most 1ms, 2ms, 4ms, 8ms.
  EXPECT_LE(first, 15'000);
  // Same seed, same schedule.
  EXPECT_EQ(first, run());
}

TEST(RetryingStoreTest, RecordsPerOperationMetrics) {
  FlakyStore flaky(common::Status::Unavailable("throttled"),
                   /*fail_remaining=*/2);
  common::SimClock clock(0);
  obs::MetricsRegistry metrics;
  RetryingObjectStore store(&flaky, &clock, RetryPolicy{}, &metrics);

  ASSERT_TRUE(store.Put("k", "v").ok());
  ASSERT_TRUE(store.Get("k").ok());

  auto snapshot = metrics.Snapshot();
  EXPECT_EQ(snapshot.counter("store.put.ops"), 1u);
  EXPECT_EQ(snapshot.counter("store.put.retries"), 2u);
  EXPECT_EQ(snapshot.counter("store.get.ops"), 1u);
  EXPECT_EQ(snapshot.counter("store.get.retries"), 0u);
  EXPECT_EQ(snapshot.counter("store.retries.total"), 2u);
  EXPECT_GT(snapshot.counter("store.backoff_micros.total"), 0u);
  EXPECT_EQ(snapshot.histograms.at("store.put.latency_us").count, 1u);
  EXPECT_EQ(snapshot.histograms.at("store.get.latency_us").count, 1u);
}

TEST(RetryingStoreTest, ComposesWithFaultInjection) {
  MemoryObjectStore base;
  FaultInjectionStore chaos(&base, /*seed=*/11);
  FaultPolicy faults;
  faults.write_failure_probability = 0.25;
  faults.read_failure_probability = 0.25;
  chaos.set_policy(faults);

  common::SimClock clock(0);
  RetryPolicy policy;
  policy.max_attempts = 10;
  obs::MetricsRegistry metrics;
  RetryingObjectStore store(&chaos, &clock, policy, &metrics);

  for (int i = 0; i < 100; ++i) {
    std::string path = "blob/" + std::to_string(i);
    ASSERT_TRUE(store.Put(path, "payload").ok()) << path;
    auto got = store.Get(path);
    ASSERT_TRUE(got.ok()) << path;
    EXPECT_EQ(*got, "payload");
  }

  EXPECT_GT(chaos.injected_failures(), 0u);
  EXPECT_EQ(store.exhausted_operations(), 0u);
  // Every injected failure was absorbed by exactly one retry.
  EXPECT_EQ(store.total_retries(), chaos.injected_failures());
  EXPECT_EQ(metrics.Snapshot().counter("store.retries.total"),
            chaos.injected_failures());
}

TEST(RetryingStoreTest, IsRetryableClassifiesStatuses) {
  using common::Status;
  EXPECT_TRUE(RetryingObjectStore::IsRetryable(Status::Unavailable("x")));
  EXPECT_TRUE(RetryingObjectStore::IsRetryable(Status::IOError("timeout")));
  EXPECT_TRUE(
      RetryingObjectStore::IsRetryable(Status::IOError("request timed out")));
  EXPECT_FALSE(RetryingObjectStore::IsRetryable(Status::IOError("disk full")));
  EXPECT_FALSE(RetryingObjectStore::IsRetryable(Status::AlreadyExists("x")));
  EXPECT_FALSE(RetryingObjectStore::IsRetryable(Status::NotFound("x")));
  EXPECT_FALSE(RetryingObjectStore::IsRetryable(Status::InvalidArgument("x")));
  EXPECT_FALSE(
      RetryingObjectStore::IsRetryable(Status::FailedPrecondition("x")));
  EXPECT_FALSE(RetryingObjectStore::IsRetryable(Status::Conflict("x")));
  EXPECT_FALSE(RetryingObjectStore::IsRetryable(Status::OK()));
}

}  // namespace
}  // namespace polaris::storage
