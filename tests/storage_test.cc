// Unit tests for the object store substrate, focused on the Block Blob
// protocol semantics the transaction manifest design depends on (§3.2.2).

#include <gtest/gtest.h>

#include <thread>

#include "common/clock.h"
#include "storage/fault_injection_store.h"
#include "storage/memory_object_store.h"
#include "storage/path_util.h"

namespace polaris::storage {
namespace {

TEST(MemoryObjectStoreTest, PutGetRoundTrip) {
  MemoryObjectStore store;
  ASSERT_TRUE(store.Put("a/b", "hello").ok());
  auto got = store.Get("a/b");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "hello");
}

TEST(MemoryObjectStoreTest, BlobsAreWriteOnce) {
  MemoryObjectStore store;
  ASSERT_TRUE(store.Put("x", "v1").ok());
  EXPECT_TRUE(store.Put("x", "v2").IsAlreadyExists());
  EXPECT_EQ(*store.Get("x"), "v1");
}

TEST(MemoryObjectStoreTest, GetMissingIsNotFound) {
  MemoryObjectStore store;
  EXPECT_TRUE(store.Get("nope").status().IsNotFound());
  EXPECT_TRUE(store.Stat("nope").status().IsNotFound());
  EXPECT_TRUE(store.Delete("nope").IsNotFound());
}

TEST(MemoryObjectStoreTest, StatReportsSizeAndCreationTime) {
  common::SimClock clock(500);
  MemoryObjectStore store(&clock);
  ASSERT_TRUE(store.Put("f", "12345").ok());
  auto info = store.Stat("f");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->size, 5u);
  EXPECT_EQ(info->created_at, 500);
}

TEST(MemoryObjectStoreTest, ListFiltersByPrefixInOrder) {
  MemoryObjectStore store;
  ASSERT_TRUE(store.Put("t/1/b", "1").ok());
  ASSERT_TRUE(store.Put("t/1/a", "2").ok());
  ASSERT_TRUE(store.Put("t/2/a", "3").ok());
  ASSERT_TRUE(store.Put("u/x", "4").ok());
  auto listed = store.List("t/1/");
  ASSERT_TRUE(listed.ok());
  ASSERT_EQ(listed->size(), 2u);
  EXPECT_EQ((*listed)[0].path, "t/1/a");
  EXPECT_EQ((*listed)[1].path, "t/1/b");
}

TEST(MemoryObjectStoreTest, DeleteRemovesBlob) {
  MemoryObjectStore store;
  ASSERT_TRUE(store.Put("x", "v").ok());
  ASSERT_TRUE(store.Delete("x").ok());
  EXPECT_TRUE(store.Get("x").status().IsNotFound());
  EXPECT_EQ(store.BlobCount(), 0u);
}

// --- Block Blob protocol -----------------------------------------------------

TEST(BlockBlobTest, StagedBlocksAreInvisibleUntilCommit) {
  MemoryObjectStore store;
  ASSERT_TRUE(store.StageBlock("m", "b1", "alpha").ok());
  EXPECT_TRUE(store.Get("m").status().IsNotFound());
  ASSERT_TRUE(store.CommitBlockList("m", {"b1"}).ok());
  EXPECT_EQ(*store.Get("m"), "alpha");
}

TEST(BlockBlobTest, CommitConcatenatesInListOrder) {
  MemoryObjectStore store;
  ASSERT_TRUE(store.StageBlock("m", "b1", "A").ok());
  ASSERT_TRUE(store.StageBlock("m", "b2", "B").ok());
  ASSERT_TRUE(store.StageBlock("m", "b3", "C").ok());
  ASSERT_TRUE(store.CommitBlockList("m", {"b3", "b1"}).ok());
  EXPECT_EQ(*store.Get("m"), "CA");
  auto ids = store.GetCommittedBlockList("m");
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ(*ids, (std::vector<std::string>{"b3", "b1"}));
}

TEST(BlockBlobTest, UncommittedBlocksAreDiscardedAtCommit) {
  // Blocks written by failed/abandoned task attempts are not in the final
  // list and vanish (paper §3.2.2).
  MemoryObjectStore store;
  ASSERT_TRUE(store.StageBlock("m", "attempt1", "garbage").ok());
  ASSERT_TRUE(store.StageBlock("m", "attempt2", "good").ok());
  ASSERT_TRUE(store.CommitBlockList("m", {"attempt2"}).ok());
  EXPECT_EQ(*store.Get("m"), "good");
  // attempt1 is gone: recommitting with it must fail.
  EXPECT_TRUE(store.CommitBlockList("m", {"attempt2", "attempt1"})
                  .IsInvalidArgument());
}

TEST(BlockBlobTest, AppendCommitReusesCommittedBlocks) {
  // Multi-statement inserts append: the new list mixes committed blocks
  // with newly staged ones (§3.2.3).
  MemoryObjectStore store;
  ASSERT_TRUE(store.StageBlock("m", "s1", "one,").ok());
  ASSERT_TRUE(store.CommitBlockList("m", {"s1"}).ok());
  ASSERT_TRUE(store.StageBlock("m", "s2", "two").ok());
  ASSERT_TRUE(store.CommitBlockList("m", {"s1", "s2"}).ok());
  EXPECT_EQ(*store.Get("m"), "one,two");
}

TEST(BlockBlobTest, RewriteCommitDropsOldBlocks) {
  // Update/delete statements rewrite the manifest to a single canonical
  // block; the old blocks are no longer referencable.
  MemoryObjectStore store;
  ASSERT_TRUE(store.StageBlock("m", "old1", "x").ok());
  ASSERT_TRUE(store.CommitBlockList("m", {"old1"}).ok());
  ASSERT_TRUE(store.StageBlock("m", "new1", "reconciled").ok());
  ASSERT_TRUE(store.CommitBlockList("m", {"new1"}).ok());
  EXPECT_EQ(*store.Get("m"), "reconciled");
  EXPECT_TRUE(store.CommitBlockList("m", {"old1"}).IsInvalidArgument());
}

TEST(BlockBlobTest, RestagingSameBlockIdOverwrites) {
  MemoryObjectStore store;
  ASSERT_TRUE(store.StageBlock("m", "b", "v1").ok());
  ASSERT_TRUE(store.StageBlock("m", "b", "v2").ok());
  ASSERT_TRUE(store.CommitBlockList("m", {"b"}).ok());
  EXPECT_EQ(*store.Get("m"), "v2");
}

TEST(BlockBlobTest, CommitWithUnknownIdFailsAtomically) {
  MemoryObjectStore store;
  ASSERT_TRUE(store.StageBlock("m", "b1", "A").ok());
  ASSERT_TRUE(store.CommitBlockList("m", {"b1"}).ok());
  // Bad commit: blob state is unchanged.
  EXPECT_TRUE(store.CommitBlockList("m", {"b1", "ghost"}).IsInvalidArgument());
  EXPECT_EQ(*store.Get("m"), "A");
}

TEST(BlockBlobTest, EmptyCommitCreatesEmptyBlob) {
  MemoryObjectStore store;
  ASSERT_TRUE(store.CommitBlockList("m", {}).ok());
  EXPECT_EQ(*store.Get("m"), "");
}

TEST(BlockBlobTest, PutAndBlockProtocolsDontMix) {
  MemoryObjectStore store;
  ASSERT_TRUE(store.Put("p", "v").ok());
  EXPECT_TRUE(store.StageBlock("p", "b", "x").IsFailedPrecondition());
  EXPECT_TRUE(store.GetCommittedBlockList("p").status().IsFailedPrecondition());
  ASSERT_TRUE(store.StageBlock("m", "b", "x").ok());
  ASSERT_TRUE(store.CommitBlockList("m", {"b"}).ok());
  EXPECT_TRUE(store.Put("m", "v").IsAlreadyExists());
}

TEST(BlockBlobTest, EmptyBlockIdRejected) {
  MemoryObjectStore store;
  EXPECT_TRUE(store.StageBlock("m", "", "x").IsInvalidArgument());
}

TEST(BlockBlobTest, ConcurrentStagingFromManyThreads) {
  // BE nodes stage blocks concurrently against the same manifest (§3.2.2).
  MemoryObjectStore store;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, t] {
      ASSERT_TRUE(store
                      .StageBlock("m", "block" + std::to_string(t),
                                  std::string(1, static_cast<char>('a' + t)))
                      .ok());
    });
  }
  for (auto& th : threads) th.join();
  std::vector<std::string> ids;
  for (int t = 0; t < kThreads; ++t) ids.push_back("block" + std::to_string(t));
  ASSERT_TRUE(store.CommitBlockList("m", ids).ok());
  EXPECT_EQ(*store.Get("m"), "abcdefgh");
}

TEST(MemoryObjectStoreTest, StatsTrackOperations) {
  MemoryObjectStore store;
  ASSERT_TRUE(store.Put("a", "12345").ok());
  ASSERT_TRUE(store.Get("a").ok());
  ASSERT_TRUE(store.StageBlock("m", "b", "xyz").ok());
  ASSERT_TRUE(store.CommitBlockList("m", {"b"}).ok());
  StoreStats stats = store.stats();
  EXPECT_EQ(stats.puts, 1u);
  EXPECT_EQ(stats.gets, 1u);
  EXPECT_EQ(stats.blocks_staged, 1u);
  EXPECT_EQ(stats.block_commits, 1u);
  EXPECT_EQ(stats.bytes_written, 8u);
  EXPECT_EQ(stats.bytes_read, 5u);
  store.ResetStats();
  EXPECT_EQ(store.stats().puts, 0u);
}

// --- Fault injection ----------------------------------------------------------

TEST(FaultInjectionTest, FailNthOperationFiresOnce) {
  MemoryObjectStore base;
  FaultInjectionStore store(&base, /*seed=*/1);
  FaultPolicy policy;
  policy.fail_nth_operation = 2;
  store.set_policy(policy);
  EXPECT_TRUE(store.Put("a", "1").ok());           // op 1
  EXPECT_TRUE(store.Put("b", "2").IsUnavailable()); // op 2: injected
  EXPECT_TRUE(store.Put("b", "2").ok());            // trigger disarmed
  EXPECT_EQ(store.injected_failures(), 1u);
  // The failed op never reached the base store.
  EXPECT_EQ(*base.Get("b"), "2");
}

TEST(FaultInjectionTest, WriteProbabilityInjectsFailures) {
  MemoryObjectStore base;
  FaultInjectionStore store(&base, /*seed=*/7);
  FaultPolicy policy;
  policy.write_failure_probability = 0.5;
  store.set_policy(policy);
  int failures = 0;
  for (int i = 0; i < 200; ++i) {
    if (!store.Put("k" + std::to_string(i), "v").ok()) ++failures;
  }
  EXPECT_GT(failures, 50);
  EXPECT_LT(failures, 150);
}

TEST(FaultInjectionTest, ReadsUnaffectedByWritePolicy) {
  MemoryObjectStore base;
  ASSERT_TRUE(base.Put("k", "v").ok());
  FaultInjectionStore store(&base, 3);
  FaultPolicy policy;
  policy.write_failure_probability = 1.0;
  store.set_policy(policy);
  EXPECT_TRUE(store.Get("k").ok());
  EXPECT_TRUE(store.Put("x", "y").IsUnavailable());
}

// --- Path layout ---------------------------------------------------------------

TEST(PathUtilTest, LayoutIsStableAndPrefixed) {
  EXPECT_EQ(PathUtil::DataFilePath(7, "abc"), "tables/7/data/abc.parquet");
  EXPECT_EQ(PathUtil::DeleteVectorPath(7, "abc"), "tables/7/data/abc.dv");
  EXPECT_EQ(PathUtil::ManifestPath(7, "abc"), "tables/7/manifests/abc.manifest");
  EXPECT_TRUE(PathUtil::CheckpointPath(7, 12).starts_with("tables/7/checkpoints/"));
  EXPECT_TRUE(PathUtil::DataFilePath(7, "x").starts_with(PathUtil::DataDir(7)));
}

TEST(PathUtilTest, CheckpointPathsSortNumerically) {
  EXPECT_LT(PathUtil::CheckpointPath(1, 9), PathUtil::CheckpointPath(1, 10));
  EXPECT_LT(PathUtil::CheckpointPath(1, 99), PathUtil::CheckpointPath(1, 100));
}

TEST(PathUtilTest, JoinNormalizesSlashes) {
  EXPECT_EQ(PathUtil::Join("a", "b"), "a/b");
  EXPECT_EQ(PathUtil::Join("a/", "b"), "a/b");
  EXPECT_EQ(PathUtil::Join("a", "/b"), "a/b");
  EXPECT_EQ(PathUtil::Join("a/", "/b"), "a/b");
  EXPECT_EQ(PathUtil::Join("", "b"), "b");
  EXPECT_EQ(PathUtil::Join("a", ""), "a");
}

}  // namespace
}  // namespace polaris::storage
