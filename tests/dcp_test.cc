// Unit tests for the distributed computation platform: thread pool, task
// DAG execution, virtual-time scheduling, elastic allocation, retries.

#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "dcp/scheduler.h"
#include "dcp/task.h"
#include "dcp/thread_pool.h"
#include "dcp/topology.h"

namespace polaris::dcp {
namespace {

using common::Status;

TEST(ThreadPoolTest, RunsAllSubmittedWork) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitHandlesNestedSubmission) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&pool, &counter] {
    counter.fetch_add(1);
    pool.Submit([&counter] { counter.fetch_add(1); });
  });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ElasticAllocatorTest, ScalesWithJobSizeUpToCap) {
  ElasticAllocator alloc;
  alloc.target_micros_per_node = 1000;
  EXPECT_EQ(alloc.NodesFor(500, 100), 1u);
  EXPECT_EQ(alloc.NodesFor(5000, 100), 5u);
  EXPECT_EQ(alloc.NodesFor(500000, 100), 100u);  // capped by parallelism
  EXPECT_EQ(alloc.NodesFor(0, 100), 1u);
  EXPECT_EQ(alloc.NodesFor(1000, 0), 1u);  // zero cap treated as 1
}

TEST(CostModelTest, CostGrowsWithWork) {
  CostModel model;
  TaskCost small;
  small.rows = 100;
  TaskCost large;
  large.rows = 1'000'000;
  large.input_bytes = 100 << 20;
  EXPECT_GT(model.TaskMicros(large), model.TaskMicros(small));
  EXPECT_GE(model.TaskMicros(TaskCost{}), model.task_startup_micros);
}

class SchedulerTest : public ::testing::Test {
 protected:
  SchedulerTest() : topology_(Topology::SingleElasticPool()) {}

  Topology topology_;
};

TEST_F(SchedulerTest, EmptyDagSucceeds) {
  Scheduler scheduler(&topology_, 2);
  auto metrics = scheduler.Run(TaskDag{}, "default");
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->tasks_run, 0u);
}

TEST_F(SchedulerTest, UnknownPoolRejected) {
  Scheduler scheduler(&topology_, 2);
  EXPECT_TRUE(
      scheduler.Run(TaskDag{}, "nope").status().IsInvalidArgument());
}

TEST_F(SchedulerTest, ExecutesAllTasksRespectingDependencies) {
  Scheduler scheduler(&topology_, 4);
  TaskDag dag;
  std::mutex mu;
  std::vector<uint64_t> order;
  auto make_work = [&](uint64_t id) {
    return [&, id](const TaskContext&) {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(id);
      return Status::OK();
    };
  };
  Task a;
  a.kind = "a";
  a.work = make_work(0);
  uint64_t a_id = dag.Add(std::move(a));
  Task b;
  b.kind = "b";
  b.work = make_work(1);
  b.depends_on = {a_id};
  uint64_t b_id = dag.Add(std::move(b));
  Task c;
  c.kind = "c";
  c.work = make_work(2);
  c.depends_on = {a_id, b_id};
  dag.Add(std::move(c));

  auto metrics = scheduler.Run(dag, "default");
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->tasks_run, 3u);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 0u);
  EXPECT_EQ(order[1], 1u);
  EXPECT_EQ(order[2], 2u);
}

TEST_F(SchedulerTest, MakespanIsDeterministicAndParallelismAware) {
  // 8 independent tasks of equal cost on elastic allocation: the virtual
  // makespan must equal ceil(8/nodes) * task_cost, repeatably.
  Topology topo = Topology::SingleElasticPool();
  topo.allocator.target_micros_per_node = 1;  // one node per task -> 8 nodes
  Scheduler scheduler(&topo, 2);
  TaskDag dag;
  for (int i = 0; i < 8; ++i) {
    Task t;
    t.kind = "work";
    t.cost.rows = 10000;  // 1000us + startup 1000us = 2000us each
    t.work = [](const TaskContext&) { return Status::OK(); };
    dag.Add(std::move(t));
  }
  auto m1 = scheduler.Run(dag, "default");
  auto m2 = scheduler.Run(dag, "default");
  ASSERT_TRUE(m1.ok());
  ASSERT_TRUE(m2.ok());
  EXPECT_EQ(m1->makespan_micros, m2->makespan_micros);
  EXPECT_EQ(m1->nodes_used, 8u);
  // Perfectly parallel: makespan == single task cost.
  EXPECT_EQ(m1->makespan_micros, m1->total_compute_micros / 8);
}

TEST_F(SchedulerTest, FixedPoolLimitsParallelism) {
  Topology topo;
  NodePool pool;
  pool.name = "fixed";
  pool.mode = AllocationMode::kFixed;
  pool.node_count = 2;
  topo.pools[pool.name] = pool;
  Scheduler scheduler(&topo, 2);
  TaskDag dag;
  for (int i = 0; i < 8; ++i) {
    Task t;
    t.cost.rows = 10000;
    t.work = [](const TaskContext&) { return Status::OK(); };
    dag.Add(std::move(t));
  }
  auto metrics = scheduler.Run(dag, "fixed");
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->nodes_used, 2u);
  // 8 tasks over 2 nodes: makespan = 4x one task.
  EXPECT_EQ(metrics->makespan_micros, metrics->total_compute_micros / 2);
}

TEST_F(SchedulerTest, ElasticBeatsFixedOnLargeJobs) {
  // The Figure 8 effect: with the same job, elastic allocation finishes
  // sooner than a capacity-capped pool while total compute stays equal.
  Topology topo = Topology::SingleElasticPool();
  topo.allocator.target_micros_per_node = 2000;
  NodePool fixed;
  fixed.name = "fixed";
  fixed.mode = AllocationMode::kFixed;
  fixed.node_count = 2;
  topo.pools[fixed.name] = fixed;
  Scheduler scheduler(&topo, 2);
  TaskDag dag;
  for (int i = 0; i < 16; ++i) {
    Task t;
    t.cost.rows = 20000;
    t.work = [](const TaskContext&) { return Status::OK(); };
    dag.Add(std::move(t));
  }
  auto elastic = scheduler.Run(dag, "default");
  auto capped = scheduler.Run(dag, "fixed");
  ASSERT_TRUE(elastic.ok());
  ASSERT_TRUE(capped.ok());
  EXPECT_LT(elastic->makespan_micros, capped->makespan_micros);
  EXPECT_EQ(elastic->total_compute_micros, capped->total_compute_micros);
}

TEST_F(SchedulerTest, RetriesUnavailableTasks) {
  Scheduler scheduler(&topology_, 2);
  TaskDag dag;
  std::atomic<int> attempts{0};
  Task t;
  t.work = [&attempts](const TaskContext& ctx) {
    attempts.fetch_add(1);
    if (ctx.attempt < 3) return Status::Unavailable("flaky");
    return Status::OK();
  };
  dag.Add(std::move(t));
  auto metrics = scheduler.Run(dag, "default");
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(attempts.load(), 3);
  EXPECT_EQ(metrics->task_retries, 2u);
}

TEST_F(SchedulerTest, NonRetryableErrorFailsJob) {
  Scheduler scheduler(&topology_, 2);
  TaskDag dag;
  Task t;
  t.work = [](const TaskContext&) {
    return Status::Corruption("data is bad");
  };
  dag.Add(std::move(t));
  EXPECT_TRUE(scheduler.Run(dag, "default").status().IsCorruption());
}

TEST_F(SchedulerTest, ExhaustedRetriesFailJob) {
  Scheduler scheduler(&topology_, 2);
  TaskDag dag;
  Task t;
  t.work = [](const TaskContext&) {
    return Status::Unavailable("always down");
  };
  dag.Add(std::move(t));
  EXPECT_TRUE(scheduler.Run(dag, "default").status().IsUnavailable());
}

TEST_F(SchedulerTest, InjectedFailuresAreRetriedTransparently) {
  Scheduler scheduler(&topology_, 4);
  TaskFailurePolicy policy;
  policy.failure_probability = 0.3;
  policy.after_work = true;
  policy.seed = 99;
  scheduler.set_failure_policy(policy);
  TaskDag dag;
  std::atomic<int> completions{0};
  for (int i = 0; i < 32; ++i) {
    Task t;
    t.work = [&completions](const TaskContext&) {
      completions.fetch_add(1);
      return Status::OK();
    };
    dag.Add(std::move(t));
  }
  auto metrics = scheduler.Run(dag, "default");
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_EQ(metrics->tasks_run, 32u);
  EXPECT_GT(metrics->task_retries, 0u);
  // Post-work failures mean the work ran more times than there are tasks.
  EXPECT_GT(completions.load(), 32);
}

TEST_F(SchedulerTest, DependentOfFailedTaskNeverRuns) {
  Scheduler scheduler(&topology_, 2);
  TaskDag dag;
  std::atomic<bool> dependent_ran{false};
  Task bad;
  bad.work = [](const TaskContext&) { return Status::Internal("boom"); };
  uint64_t bad_id = dag.Add(std::move(bad));
  Task dependent;
  dependent.depends_on = {bad_id};
  dependent.work = [&dependent_ran](const TaskContext&) {
    dependent_ran.store(true);
    return Status::OK();
  };
  dag.Add(std::move(dependent));
  EXPECT_TRUE(scheduler.Run(dag, "default").status().IsInternal());
  EXPECT_FALSE(dependent_ran.load());
}

TEST_F(SchedulerTest, BadDependencyRejected) {
  Scheduler scheduler(&topology_, 2);
  TaskDag dag;
  Task t;
  t.depends_on = {42};
  t.work = [](const TaskContext&) { return Status::OK(); };
  dag.Add(std::move(t));
  EXPECT_TRUE(scheduler.Run(dag, "default").status().IsInvalidArgument());
}

TEST_F(SchedulerTest, MaxNodesCapsElasticAllocation) {
  Topology topo = Topology::SingleElasticPool(/*max_nodes=*/3);
  topo.allocator.target_micros_per_node = 1;
  Scheduler scheduler(&topo, 2);
  TaskDag dag;
  for (int i = 0; i < 10; ++i) {
    Task t;
    t.cost.rows = 100000;
    t.work = [](const TaskContext&) { return Status::OK(); };
    dag.Add(std::move(t));
  }
  auto metrics = scheduler.Run(dag, "default");
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->nodes_used, 3u);
}

TEST_F(SchedulerTest, MeasuredCostOverridesEstimateInVirtualTime) {
  // A task that declares a huge estimate but reports a tiny measured cost
  // (e.g. a scan that skipped everything via zone maps) must be charged
  // the measured cost in the virtual schedule. The estimate still drives
  // node allocation.
  Scheduler scheduler(&topology_, 2);
  TaskDag dag;
  Task t;
  t.cost.rows = 100'000'000;  // huge estimate
  t.measured_cost = std::make_shared<TaskCost>();  // measured: ~nothing
  auto measured = t.measured_cost;
  t.work = [measured](const TaskContext&) {
    measured->rows = 10;
    return Status::OK();
  };
  dag.Add(std::move(t));
  auto metrics = scheduler.Run(dag, "default");
  ASSERT_TRUE(metrics.ok());
  CostModel model;
  TaskCost tiny;
  tiny.rows = 10;
  EXPECT_EQ(metrics->makespan_micros, model.TaskMicros(tiny));
}

TEST(TopologyTest, ReadWritePoolsExist) {
  Topology topo = Topology::ReadWritePools(4, 2);
  ASSERT_EQ(topo.pools.count("read"), 1u);
  ASSERT_EQ(topo.pools.count("write"), 1u);
  EXPECT_EQ(topo.pools["read"].max_nodes, 4u);
  EXPECT_EQ(topo.pools["write"].max_nodes, 2u);
}

}  // namespace
}  // namespace polaris::dcp
