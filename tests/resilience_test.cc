// End-to-end storage-resilience tests: the engine's decorator stack
// (base -> FaultInjectionStore -> RetryingObjectStore) must absorb a
// sustained transient-failure rate while a full DML workload runs, and the
// unified metrics registry must leave auditable evidence of the retries.

#include <gtest/gtest.h>

#include <string>

#include "engine/engine.h"
#include "sql/session.h"

namespace polaris {
namespace {

engine::EngineOptions FaultyOptions(double failure_probability) {
  engine::EngineOptions options;
  options.fault_policy.read_failure_probability = failure_probability;
  options.fault_policy.write_failure_probability = failure_probability;
  // Headroom over the default budget: at p=0.05 an operation only fails
  // permanently after 7 consecutive injected faults (~8e-10).
  options.storage_retry.max_attempts = 7;
  return options;
}

TEST(ResilienceTest, DmlWorkloadSurvivesInjectedFaults) {
  engine::PolarisEngine engine(FaultyOptions(0.05));
  sql::SqlSession session(&engine);

  auto must = [&](const std::string& statement) {
    auto result = session.Execute(statement);
    ASSERT_TRUE(result.ok())
        << statement << " -> " << result.status().ToString();
  };

  must("CREATE TABLE orders (id BIGINT, amount DOUBLE, status TEXT)");
  for (int batch = 0; batch < 5; ++batch) {
    std::string values;
    for (int i = 0; i < 20; ++i) {
      int id = batch * 20 + i;
      if (!values.empty()) values += ", ";
      values += "(" + std::to_string(id) + ", " + std::to_string(id) +
                ".5, 'open')";
    }
    must("INSERT INTO orders VALUES " + values);
  }
  must("UPDATE orders SET status = 'shipped' WHERE id < 30");
  must("DELETE FROM orders WHERE id >= 90");

  // Explicit multi-statement transaction committing through the stack.
  must("BEGIN");
  must("INSERT INTO orders VALUES (1000, 1.0, 'open')");
  must("UPDATE orders SET amount = 2.0 WHERE id = 1000");
  must("COMMIT");

  auto count = session.Execute("SELECT COUNT(*) FROM orders");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->batch.column(0).Int64At(0), 91);

  // The workload only survived because the retry layer absorbed faults.
  auto stats = engine.Stats();
  EXPECT_GT(stats.injected_faults, 0u);
  EXPECT_GT(stats.storage_retries, 0u);
  EXPECT_EQ(engine.retry_store()->exhausted_operations(), 0u);
  EXPECT_EQ(stats.storage_retries, stats.injected_faults);
}

TEST(ResilienceTest, MetricsRecordRetriesAndLatencies) {
  engine::PolarisEngine engine(FaultyOptions(0.1));
  sql::SqlSession session(&engine);

  auto must = [&](const std::string& statement) {
    auto result = session.Execute(statement);
    ASSERT_TRUE(result.ok())
        << statement << " -> " << result.status().ToString();
  };
  must("CREATE TABLE t (k BIGINT, v DOUBLE)");
  for (int batch = 0; batch < 4; ++batch) {
    std::string values;
    for (int i = 0; i < 10; ++i) {
      int k = batch * 10 + i;
      if (!values.empty()) values += ", ";
      values += "(" + std::to_string(k) + ", 1.0)";
    }
    must("INSERT INTO t VALUES " + values);
  }
  must("DELETE FROM t WHERE k < 5");
  auto sum = session.Execute("SELECT SUM(v) FROM t");
  ASSERT_TRUE(sum.ok());

  auto snapshot = engine.MetricsSnapshot();
  // Retries happened and were attributed per operation: the per-op
  // "store.<op>.retries" counters add up to the global total.
  EXPECT_GT(snapshot.counter("store.retries.total"), 0u);
  uint64_t per_op_retries = 0;
  for (const auto& [name, value] : snapshot.counters) {
    if (name.rfind("store.", 0) == 0 && name.ends_with(".retries") &&
        name != "store.retries.total") {
      per_op_retries += value;
    }
  }
  EXPECT_EQ(per_op_retries, snapshot.counter("store.retries.total"));
  EXPECT_GT(snapshot.counter("store.backoff_micros.total"), 0u);

  // The acceptance-criterion trio: reads, staged writes and block commits
  // all have latency histograms with observations.
  for (const char* histogram :
       {"store.get.latency_us", "store.stage_block.latency_us",
        "store.commit_block_list.latency_us"}) {
    auto it = snapshot.histograms.find(histogram);
    ASSERT_NE(it, snapshot.histograms.end()) << histogram;
    EXPECT_GT(it->second.count, 0u) << histogram;
  }

  // The other subsystems report into the same registry.
  EXPECT_GT(snapshot.counter("cache.misses"), 0u);
  EXPECT_GT(snapshot.counter("dcp.jobs"), 0u);
  EXPECT_GT(snapshot.counter("dcp.tasks_run"), 0u);
}

TEST(ResilienceTest, SemanticErrorsAreNotRetriedThroughTheStack) {
  engine::PolarisEngine engine;  // no injected faults
  auto* store = engine.store();  // top of the decorator stack

  ASSERT_TRUE(store->Put("manifest/1", "v1").ok());
  uint64_t retries_before = engine.retry_store()->total_retries();

  // Write-once violation and missing blob: both surface immediately.
  EXPECT_TRUE(store->Put("manifest/1", "v2").IsAlreadyExists());
  EXPECT_TRUE(store->Get("manifest/ghost").status().IsNotFound());
  EXPECT_FALSE(store->CommitBlockList("blob", {"unknown"}).ok());

  EXPECT_EQ(engine.retry_store()->total_retries(), retries_before);
  auto snapshot = engine.MetricsSnapshot();
  EXPECT_EQ(snapshot.counter("store.put.retries"), 0u);
  EXPECT_EQ(snapshot.counter("store.get.retries"), 0u);
  EXPECT_EQ(snapshot.counter("store.commit_block_list.retries"), 0u);
}

TEST(ResilienceTest, MaintenanceTasksReportUnderFaults) {
  engine::EngineOptions options = FaultyOptions(0.02);
  options.num_cells = 1;
  engine::PolarisEngine engine(options);
  sql::SqlSession session(&engine);

  ASSERT_TRUE(session.Execute("CREATE TABLE t (k BIGINT)").ok());
  ASSERT_TRUE(session.Execute("INSERT INTO t VALUES (1), (2)").ok());
  ASSERT_TRUE(session.Execute("INSERT INTO t VALUES (3), (4)").ok());
  ASSERT_TRUE(session.Execute("DELETE FROM t WHERE k = 2").ok());

  auto meta = engine.GetTable("t");
  ASSERT_TRUE(meta.ok());
  auto compacted = engine.sto()->CompactTable(meta->table_id);
  ASSERT_TRUE(compacted.ok()) << compacted.status().ToString();
  ASSERT_GT(compacted->input_files, 0u);

  engine.clock()->Advance(10'000'000);
  auto gc = engine.sto()->RunGarbageCollection();
  ASSERT_TRUE(gc.ok()) << gc.status().ToString();

  auto snapshot = engine.MetricsSnapshot();
  EXPECT_GT(snapshot.counter("sto.compactions"), 0u);
  EXPECT_GT(snapshot.counter("sto.compaction.input_files"), 0u);
  EXPECT_GT(snapshot.counter("sto.gc.sweeps"), 0u);
  auto result = session.Execute("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->batch.column(0).Int64At(0), 3);
}

}  // namespace
}  // namespace polaris
