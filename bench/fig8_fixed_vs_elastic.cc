// Figure 8 (paper §7.1): lineitem load times at 1TB and 10TB with fixed
// capacity (previous-generation Synapse SQL DW) versus the elastic
// serverless model. Price-performance is similar because cost = resources
// x time, so we also print total compute.
//
// Expected shape: fixed-capacity load time grows ~linearly with data;
// elastic time stays nearly flat (more nodes are allocated instead),
// while total compute is the same for both.

#include <cstdio>

#include "bench_json.h"
#include "workloads.h"

using polaris::bench::BenchEngineOptions;
using polaris::bench::BenchReport;
using polaris::bench::GenerateLineitemSources;
using polaris::bench::LineitemSchema;
using polaris::bench::LineitemSourceFiles;
using polaris::engine::PolarisEngine;

namespace {
// Physically 60 rows per SF here (10TB would otherwise be heavy); the
// cost multiplier is raised x10 to keep 1 SF ~= 1 GB declared.
constexpr uint64_t kRowsPerSf = 60;
constexpr uint64_t kCostScale = 160000;
constexpr uint32_t kFixedNodes = 60;  // previous-generation capacity cap

polaris::common::Result<polaris::dcp::JobMetrics> LoadOnPool(
    PolarisEngine& engine, const std::string& table, uint64_t sf,
    const std::string& pool) {
  auto meta = engine.CreateTable(table, LineitemSchema());
  POLARIS_RETURN_IF_ERROR(meta.status());
  auto sources = GenerateLineitemSources(sf * kRowsPerSf,
                                         LineitemSourceFiles(sf), 7);
  // Route the load through the requested pool by temporarily renaming the
  // write pool assignment: we instead register both pools up front and
  // run BulkLoad, whose DmlContext uses "write". For the fixed run we
  // reconfigure the "write" pool itself.
  (void)pool;
  polaris::dcp::JobMetrics job;
  POLARIS_RETURN_IF_ERROR(engine.RunInTransaction(
      [&](polaris::txn::Transaction* txn) {
        return engine.BulkLoad(txn, table, sources, &job).status();
      }));
  return job;
}

}  // namespace

int main() {
  std::printf(
      "Figure 8: lineitem load at 1TB / 10TB, fixed vs elastic resources\n"
      "paper: elastic finishes much faster at the same total compute\n\n");
  std::printf("%-8s %-10s %-10s %-18s %-18s\n", "TB", "mode", "nodes",
              "load_time_s(virt)", "compute_node_s");
  BenchReport report("fig8_fixed_vs_elastic");
  report.config()
      .Add("rows_per_sf", kRowsPerSf)
      .Add("cost_scale", kCostScale)
      .Add("fixed_nodes", kFixedNodes);

  for (uint64_t tb : {1ULL, 10ULL}) {
    uint64_t sf = tb * 1000;
    // Fixed-capacity run.
    {
      PolarisEngine engine(BenchEngineOptions(kCostScale));
      engine.topology()->allocator.target_micros_per_node = 60'000'000;
      auto& pool = engine.topology()->pools["write"];
      pool.mode = polaris::dcp::AllocationMode::kFixed;
      pool.node_count = kFixedNodes;
      auto job = LoadOnPool(engine, "lineitem", sf, "write");
      if (!job.ok()) {
        std::fprintf(stderr, "fixed load failed: %s\n",
                     job.status().ToString().c_str());
        return 1;
      }
      std::printf("%-8llu %-10s %-10u %-18.1f %-18.1f\n",
                  static_cast<unsigned long long>(tb), "fixed",
                  job->nodes_used,
                  static_cast<double>(job->makespan_micros) / 1e6,
                  static_cast<double>(job->total_compute_micros) / 1e6);
      report.AddRow()
          .Add("tb", tb)
          .Add("mode", "fixed")
          .Add("nodes", job->nodes_used)
          .Add("load_time_s_virtual",
               static_cast<double>(job->makespan_micros) / 1e6)
          .Add("compute_node_s",
               static_cast<double>(job->total_compute_micros) / 1e6);
    }
    // Elastic run.
    {
      PolarisEngine engine(BenchEngineOptions(kCostScale));
      engine.topology()->allocator.target_micros_per_node = 60'000'000;
      auto job = LoadOnPool(engine, "lineitem", sf, "write");
      if (!job.ok()) {
        std::fprintf(stderr, "elastic load failed: %s\n",
                     job.status().ToString().c_str());
        return 1;
      }
      std::printf("%-8llu %-10s %-10u %-18.1f %-18.1f\n",
                  static_cast<unsigned long long>(tb), "elastic",
                  job->nodes_used,
                  static_cast<double>(job->makespan_micros) / 1e6,
                  static_cast<double>(job->total_compute_micros) / 1e6);
      report.AddRow()
          .Add("tb", tb)
          .Add("mode", "elastic")
          .Add("nodes", job->nodes_used)
          .Add("load_time_s_virtual",
               static_cast<double>(job->makespan_micros) / 1e6)
          .Add("compute_node_s",
               static_cast<double>(job->total_compute_micros) / 1e6);
      if (tb == 10) {
        polaris::bench::PrintEngineMetrics(engine, "elastic 10TB");
        report.SetMetrics(engine.MetricsSnapshot());
      }
    }
  }
  std::printf(
      "\nshape check: elastic time ~flat across 1TB->10TB; fixed grows "
      "~10x;\ntotal compute (what Fabric bills) matches between modes.\n");
  report.Write();
  return 0;
}
