// Ablation (motivates §5.2): cost of reconstructing a table snapshot as
// the manifest list grows, with and without a checkpoint. The checkpoint
// turns O(history) replay into O(suffix).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "bench_json.h"
#include "common/clock.h"
#include "engine/engine.h"
#include "lst/checkpoint.h"
#include "lst/manifest_io.h"
#include "lst/snapshot_builder.h"
#include "obs/metrics.h"
#include "storage/memory_object_store.h"

namespace {

using polaris::common::SimClock;
using polaris::lst::CheckpointRef;
using polaris::lst::DataFileInfo;
using polaris::lst::ManifestBlockWriter;
using polaris::lst::ManifestEntry;
using polaris::lst::ManifestRef;
using polaris::lst::SnapshotBuilder;
using polaris::storage::MemoryObjectStore;

/// Stashes the store's op counters for the artifact's "metrics" section
/// (this bench drives the object store directly, without an engine).
void StashStoreMetrics(const MemoryObjectStore& store) {
  const polaris::storage::StoreStats stats = store.stats();
  polaris::obs::MetricsRegistry registry;
  registry.Add("store.put.ops", stats.puts);
  registry.Add("store.get.ops", stats.gets);
  registry.Add("store.delete.ops", stats.deletes);
  registry.Add("store.list.ops", stats.lists);
  registry.Add("store.blocks_staged", stats.blocks_staged);
  registry.Add("store.block_commits", stats.block_commits);
  registry.Add("store.bytes_written", stats.bytes_written);
  registry.Add("store.bytes_read", stats.bytes_read);
  polaris::bench::RecordArtifactMetrics(registry.Snapshot());
}

/// Builds a manifest chain of `n` single-file commits; returns the refs.
std::vector<ManifestRef> BuildChain(MemoryObjectStore& store, uint64_t n) {
  std::vector<ManifestRef> refs;
  for (uint64_t seq = 1; seq <= n; ++seq) {
    DataFileInfo info;
    info.path = "f" + std::to_string(seq);
    info.row_count = 1000;
    info.byte_size = 100000;
    info.cell_id = static_cast<uint32_t>(seq % 16);
    std::string path = "tables/1/manifests/m" + std::to_string(seq);
    ManifestBlockWriter writer(&store, path);
    auto block = writer.StageEntries({ManifestEntry::AddFile(info)});
    if (!block.ok() || !store.CommitBlockList(path, {*block}).ok()) {
      std::abort();
    }
    refs.push_back({seq, path});
  }
  return refs;
}

void BM_ReplayFullManifestList(benchmark::State& state) {
  SimClock clock(1);
  MemoryObjectStore store(&clock);
  auto refs = BuildChain(store, static_cast<uint64_t>(state.range(0)));
  SnapshotBuilder builder(&store);
  for (auto _ : state) {
    builder.ClearCache();  // a cold BE node
    auto snapshot = builder.Build(refs);
    if (!snapshot.ok()) std::abort();
    benchmark::DoNotOptimize(snapshot->num_files());
  }
  state.counters["manifests"] = static_cast<double>(refs.size());
  StashStoreMetrics(store);
}
BENCHMARK(BM_ReplayFullManifestList)->Arg(10)->Arg(100)->Arg(1000);

void BM_ReplayFromCheckpoint(benchmark::State& state) {
  SimClock clock(1);
  MemoryObjectStore store(&clock);
  auto refs = BuildChain(store, static_cast<uint64_t>(state.range(0)));
  SnapshotBuilder builder(&store);
  // Checkpoint covering all but the last 5 manifests.
  size_t cut = refs.size() > 5 ? refs.size() - 5 : refs.size();
  std::vector<ManifestRef> prefix(refs.begin(), refs.begin() + cut);
  auto at_cut = builder.Build(prefix);
  if (!at_cut.ok()) std::abort();
  std::string ckpt_path = "tables/1/checkpoints/c";
  if (!store.Put(ckpt_path, polaris::lst::Checkpoint::Serialize(*at_cut))
           .ok()) {
    std::abort();
  }
  CheckpointRef ckpt{at_cut->sequence_id(), ckpt_path};
  for (auto _ : state) {
    builder.ClearCache();
    auto snapshot = builder.Build(refs, ckpt);
    if (!snapshot.ok()) std::abort();
    benchmark::DoNotOptimize(snapshot->num_files());
  }
  state.counters["manifests"] = static_cast<double>(refs.size());
  state.counters["replayed"] = static_cast<double>(refs.size() - cut);
  StashStoreMetrics(store);
}
BENCHMARK(BM_ReplayFromCheckpoint)->Arg(10)->Arg(100)->Arg(1000);

void BM_IncrementalCachedExtension(benchmark::State& state) {
  // The BE snapshot cache path: repeated builds extend a cached prefix
  // instead of replaying (§3.2.1).
  SimClock clock(1);
  MemoryObjectStore store(&clock);
  auto refs = BuildChain(store, static_cast<uint64_t>(state.range(0)));
  SnapshotBuilder builder(&store);
  auto warm = builder.Build(refs);
  if (!warm.ok()) std::abort();
  for (auto _ : state) {
    auto snapshot = builder.Build(refs);  // cache hit
    if (!snapshot.ok()) std::abort();
    benchmark::DoNotOptimize(snapshot->num_files());
  }
}
BENCHMARK(BM_IncrementalCachedExtension)->Arg(1000);

/// Wall time of `reps` cold replays, in seconds.
double TimeReplayLoop(SnapshotBuilder& builder,
                      const std::vector<ManifestRef>& refs, int reps) {
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) {
    builder.ClearCache();
    auto snapshot = builder.Build(refs);
    if (!snapshot.ok()) std::abort();
    benchmark::DoNotOptimize(snapshot->num_files());
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       t0)
      .count();
}

void BM_SamplerOverheadCheck(benchmark::State& state) {
  // The observability SLO: a live engine's time-series sampler must cost
  // a foreground workload <= 2% at the default 1s period. The asserted
  // number is the sampler's duty cycle — measured per-tick cost over the
  // period — because an A/B wall-clock comparison of two multi-hundred-ms
  // arms swings +-15% on a shared CI machine, far above the effect being
  // bounded. The A/B delta on a replay workload is still reported as an
  // informational counter.
  SimClock clock(1);
  MemoryObjectStore store(&clock);
  auto refs = BuildChain(store, 200);
  SnapshotBuilder builder(&store);
  constexpr int kRounds = 5;
  constexpr int kReps = 500;
  constexpr int kTicks = 256;
  TimeReplayLoop(builder, refs, kReps);  // warm-up
  double duty_pct = 0.0;
  double ab_delta_pct = 0.0;
  for (auto _ : state) {
    auto opened = polaris::engine::PolarisEngine::Open({});
    if (!opened.ok()) std::abort();
    polaris::engine::PolarisEngine& engine = **opened;
    // Duty cycle: one tick = one full sampler pass (gauge collection,
    // time-series append, SLO watchdog evaluation).
    engine.SampleObservabilityOnce();  // warm the sampler path
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kTicks; ++i) engine.SampleObservabilityOnce();
    double per_tick_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count() /
                        kTicks;
    duty_pct = per_tick_s / 1.0 * 100.0;  // cost per 1s period
    // Informational A/B: replay throughput with the engine's 1s sampler
    // thread alive vs. after the engine is gone (min of rounds per arm).
    double min_on = 1e300;
    double min_off = 1e300;
    for (int round = 0; round < kRounds; ++round) {
      min_on = std::min(min_on, TimeReplayLoop(builder, refs, kReps));
    }
    // Leave the time-series ring as a machine-readable artifact next to
    // the BENCH_*.json files.
    std::string dir = ".";
    if (const char* env = std::getenv("POLARIS_BENCH_DIR")) {
      if (env[0] != '\0') dir = env;
    }
    std::ofstream ts(dir + "/BENCH_time_series.json", std::ios::trunc);
    if (ts) ts << engine.time_series()->ToJson();
    ts.close();
    opened->reset();
    for (int round = 0; round < kRounds; ++round) {
      min_off = std::min(min_off, TimeReplayLoop(builder, refs, kReps));
    }
    ab_delta_pct = (min_on - min_off) / min_off * 100.0;
  }
  state.counters["sampler_overhead_pct"] = duty_pct;
  state.counters["ab_wall_delta_pct"] = ab_delta_pct;
  std::printf("sampler_overhead_pct=%.4f budget=2.000 [%s] "
              "(ab_wall_delta_pct=%.2f, informational)\n",
              duty_pct, duty_pct <= 2.0 ? "PASS" : "FAIL", ab_delta_pct);
}
BENCHMARK(BM_SamplerOverheadCheck)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
