// Ablation (motivates §5.2): cost of reconstructing a table snapshot as
// the manifest list grows, with and without a checkpoint. The checkpoint
// turns O(history) replay into O(suffix).

#include <benchmark/benchmark.h>

#include "common/clock.h"
#include "lst/checkpoint.h"
#include "lst/manifest_io.h"
#include "lst/snapshot_builder.h"
#include "storage/memory_object_store.h"

namespace {

using polaris::common::SimClock;
using polaris::lst::CheckpointRef;
using polaris::lst::DataFileInfo;
using polaris::lst::ManifestBlockWriter;
using polaris::lst::ManifestEntry;
using polaris::lst::ManifestRef;
using polaris::lst::SnapshotBuilder;
using polaris::storage::MemoryObjectStore;

/// Builds a manifest chain of `n` single-file commits; returns the refs.
std::vector<ManifestRef> BuildChain(MemoryObjectStore& store, uint64_t n) {
  std::vector<ManifestRef> refs;
  for (uint64_t seq = 1; seq <= n; ++seq) {
    DataFileInfo info;
    info.path = "f" + std::to_string(seq);
    info.row_count = 1000;
    info.byte_size = 100000;
    info.cell_id = static_cast<uint32_t>(seq % 16);
    std::string path = "tables/1/manifests/m" + std::to_string(seq);
    ManifestBlockWriter writer(&store, path);
    auto block = writer.StageEntries({ManifestEntry::AddFile(info)});
    if (!block.ok() || !store.CommitBlockList(path, {*block}).ok()) {
      std::abort();
    }
    refs.push_back({seq, path});
  }
  return refs;
}

void BM_ReplayFullManifestList(benchmark::State& state) {
  SimClock clock(1);
  MemoryObjectStore store(&clock);
  auto refs = BuildChain(store, static_cast<uint64_t>(state.range(0)));
  SnapshotBuilder builder(&store);
  for (auto _ : state) {
    builder.ClearCache();  // a cold BE node
    auto snapshot = builder.Build(refs);
    if (!snapshot.ok()) std::abort();
    benchmark::DoNotOptimize(snapshot->num_files());
  }
  state.counters["manifests"] = static_cast<double>(refs.size());
}
BENCHMARK(BM_ReplayFullManifestList)->Arg(10)->Arg(100)->Arg(1000);

void BM_ReplayFromCheckpoint(benchmark::State& state) {
  SimClock clock(1);
  MemoryObjectStore store(&clock);
  auto refs = BuildChain(store, static_cast<uint64_t>(state.range(0)));
  SnapshotBuilder builder(&store);
  // Checkpoint covering all but the last 5 manifests.
  size_t cut = refs.size() > 5 ? refs.size() - 5 : refs.size();
  std::vector<ManifestRef> prefix(refs.begin(), refs.begin() + cut);
  auto at_cut = builder.Build(prefix);
  if (!at_cut.ok()) std::abort();
  std::string ckpt_path = "tables/1/checkpoints/c";
  if (!store.Put(ckpt_path, polaris::lst::Checkpoint::Serialize(*at_cut))
           .ok()) {
    std::abort();
  }
  CheckpointRef ckpt{at_cut->sequence_id(), ckpt_path};
  for (auto _ : state) {
    builder.ClearCache();
    auto snapshot = builder.Build(refs, ckpt);
    if (!snapshot.ok()) std::abort();
    benchmark::DoNotOptimize(snapshot->num_files());
  }
  state.counters["manifests"] = static_cast<double>(refs.size());
  state.counters["replayed"] = static_cast<double>(refs.size() - cut);
}
BENCHMARK(BM_ReplayFromCheckpoint)->Arg(10)->Arg(100)->Arg(1000);

void BM_IncrementalCachedExtension(benchmark::State& state) {
  // The BE snapshot cache path: repeated builds extend a cached prefix
  // instead of replaying (§3.2.1).
  SimClock clock(1);
  MemoryObjectStore store(&clock);
  auto refs = BuildChain(store, static_cast<uint64_t>(state.range(0)));
  SnapshotBuilder builder(&store);
  auto warm = builder.Build(refs);
  if (!warm.ok()) std::abort();
  for (auto _ : state) {
    auto snapshot = builder.Build(refs);  // cache hit
    if (!snapshot.ok()) std::abort();
    benchmark::DoNotOptimize(snapshot->num_files());
  }
}
BENCHMARK(BM_IncrementalCachedExtension)->Arg(1000);

}  // namespace
