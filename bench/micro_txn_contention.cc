// Commit throughput under contention: N sessions hammer a write-hot
// keyspace through the MVCC catalog + journal, with a simulated
// object-store round trip at the durability point. Two commit paths are
// measured on the same workload:
//
//   serial — the pre-group-commit baseline: one global lock held across
//            validation, the journal append, and install, so every commit
//            pays a full store round trip alone;
//   group  — the pipelined group commit: committers sequence through a
//            short critical section, a leader flushes the whole queue as
//            one journal batch, followers wait on the commit barrier.
//
// As sessions grow, serial throughput stays pinned at ~1/round-trip while
// the group path amortizes the round trip over the batch — commits/sec
// should scale with the batch size until CPU, not IO, is the limit.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "catalog/catalog_journal.h"
#include "catalog/mvcc.h"
#include "common/resource_usage.h"
#include "common/wait_stats.h"
#include "obs/metrics.h"
#include "obs/query_store.h"
#include "storage/memory_object_store.h"

using polaris::catalog::CatalogJournal;
using polaris::catalog::CatalogJournalOptions;
using polaris::catalog::CommitRecord;
using polaris::catalog::MvccStore;

namespace {

constexpr int kCommitsPerSession = 25;
/// Simulated object-store commit latency. Real ADLS/OneLake block-list
/// commits are hundreds of microseconds to milliseconds away; 250us keeps
/// the bench fast while making the round trip the dominant serial cost.
constexpr int kStoreLatencyMicros = 250;

/// MemoryObjectStore with a wall-clock delay on the durability write, so
/// the benchmark sees cloud-like commit latency without a network.
class SlowCommitStore : public polaris::storage::MemoryObjectStore {
 public:
  polaris::common::Status CommitBlockListIf(
      const std::string& path, const std::vector<std::string>& block_ids,
      uint64_t expected_generation) override {
    std::this_thread::sleep_for(
        std::chrono::microseconds(kStoreLatencyMicros));
    return MemoryObjectStore::CommitBlockListIf(path, block_ids,
                                                expected_generation);
  }
};

double Quantile(std::vector<double>* values, double q) {
  if (values->empty()) return 0.0;
  std::sort(values->begin(), values->end());
  size_t idx = static_cast<size_t>(q * static_cast<double>(values->size()));
  if (idx >= values->size()) idx = values->size() - 1;
  return (*values)[idx];
}

struct RunResult {
  double commits_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  uint64_t batches = 0;
  double avg_batch = 0.0;
  /// Sum of the per-commit wall latencies — the attribution denominator:
  /// with a 250us store round trip at the durability point, commit wall
  /// time in this bench is blocked time.
  double commit_wall_us = 0.0;
  int failed = 0;
};

/// One contention run. When `qstore` is set, every committed transaction
/// is also recorded into it against one shared fingerprint — the
/// worst-case Record path (all sessions contending on a single entry) the
/// enabled-by-default overhead budget is asserted against. When `metrics`
/// is set it receives commit latencies and pipeline counters. When
/// `waits` is set the commit pipeline records its gate/barrier/store-IO
/// waits into it (the waits-on arm of the wait-stats A/B; null = the
/// fully inert waits-off arm).
RunResult RunContention(bool serial, int sessions,
                        polaris::obs::QueryStore* qstore = nullptr,
                        polaris::obs::MetricsRegistry* metrics = nullptr,
                        polaris::common::WaitStats* waits = nullptr) {
  SlowCommitStore blobs;
  CatalogJournal journal(&blobs, CatalogJournalOptions{});
  auto recovered = journal.Recover();
  if (!recovered.ok()) {
    std::fprintf(stderr, "journal recover failed: %s\n",
                 recovered.status().ToString().c_str());
    return RunResult{.failed = 1};
  }
  MvccStore store;
  store.SetCommitListener(
      [&journal](const std::vector<CommitRecord>& records) {
        return journal.AppendBatch(records);
      });
  store.set_serial_commit(serial);
  if (waits != nullptr) store.set_wait_stats(waits);

  std::mutex mu;
  std::vector<double> latencies_ms;
  std::atomic<int> failed{0};
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(sessions));
  const auto t0 = std::chrono::steady_clock::now();
  for (int s = 0; s < sessions; ++s) {
    workers.emplace_back([&, s] {
      std::vector<double> mine;
      mine.reserve(kCommitsPerSession);
      for (int i = 0; i < kCommitsPerSession; ++i) {
        auto txn = store.Begin();
        // Write-hot keyspace: every session updates its own key under one
        // hot prefix, so commits contend on the pipeline, not on rows.
        auto put = store.Put(txn.get(), "hot/s" + std::to_string(s),
                             std::to_string(i));
        if (!put.ok()) {
          ++failed;
          continue;
        }
        auto c0 = std::chrono::steady_clock::now();
        auto st = store.Commit(txn.get());
        auto c1 = std::chrono::steady_clock::now();
        if (!st.ok()) {
          ++failed;
          continue;
        }
        double ms = std::chrono::duration<double, std::milli>(c1 - c0).count();
        mine.push_back(ms);
        if (qstore != nullptr) {
          polaris::common::ResourceUsageSnapshot vec;
          vec.wall_us = static_cast<int64_t>(ms * 1000.0);
          vec.commit_us = vec.wall_us;
          qstore->Record("UPDATE hot SET v = ?", "UPDATE",
                         polaris::common::StatementOutcome::kOk, vec);
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      latencies_ms.insert(latencies_ms.end(), mine.begin(), mine.end());
    });
  }
  for (auto& worker : workers) worker.join();
  const auto t1 = std::chrono::steady_clock::now();

  RunResult result;
  result.failed = failed.load();
  double seconds = std::chrono::duration<double>(t1 - t0).count();
  uint64_t committed = static_cast<uint64_t>(latencies_ms.size());
  result.commits_per_sec =
      seconds > 0 ? static_cast<double>(committed) / seconds : 0.0;
  result.p50_ms = Quantile(&latencies_ms, 0.50);
  result.p99_ms = Quantile(&latencies_ms, 0.99);
  for (double ms : latencies_ms) result.commit_wall_us += ms * 1000.0;
  auto stats = store.PipelineStats();
  result.batches = stats.batches;
  result.avg_batch =
      stats.batches > 0
          ? static_cast<double>(stats.batch_records) /
                static_cast<double>(stats.batches)
          : 0.0;
  if (metrics != nullptr) {
    for (double ms : latencies_ms) {
      metrics->Observe("commit.latency_us",
                       static_cast<polaris::common::Micros>(ms * 1000.0));
    }
    metrics->Add("commits.total", committed);
    metrics->Add("commit.batches.total", stats.batches);
    metrics->Add("commit.batch_records.total", stats.batch_records);
  }
  return result;
}

}  // namespace

int main() {
  polaris::bench::BenchReport report("micro_txn_contention");
  report.config()
      .Add("commits_per_session", uint64_t{kCommitsPerSession})
      .Add("store_latency_micros", uint64_t{kStoreLatencyMicros});

  std::printf("micro_txn_contention: commit throughput vs session count, "
              "group commit vs single-lock baseline\n\n");
  std::printf("%-8s %-10s %-14s %-10s %-10s %-10s %-10s\n", "mode",
              "sessions", "commits_sec", "p50_ms", "p99_ms", "batches",
              "avg_batch");

  double serial_at_32 = 0.0;
  double group_at_32 = 0.0;
  struct Point {
    bool serial;
    int sessions;
  };
  std::vector<Point> points;
  for (int sessions : {1, 8, 32}) points.push_back({true, sessions});
  for (int sessions : {1, 2, 4, 8, 16, 32, 64, 128, 256}) {
    points.push_back({false, sessions});
  }
  for (const Point& point : points) {
    RunResult run = RunContention(point.serial, point.sessions);
    if (run.failed != 0) {
      std::fprintf(stderr, "%d commits failed unexpectedly\n", run.failed);
      return 1;
    }
    const char* mode = point.serial ? "serial" : "group";
    if (point.sessions == 32) {
      (point.serial ? serial_at_32 : group_at_32) = run.commits_per_sec;
    }
    std::printf("%-8s %-10d %-14.0f %-10.3f %-10.3f %-10llu %-10.2f\n",
                mode, point.sessions, run.commits_per_sec, run.p50_ms,
                run.p99_ms, static_cast<unsigned long long>(run.batches),
                run.avg_batch);
    report.AddRow()
        .Add("mode", mode)
        .Add("sessions", static_cast<uint64_t>(point.sessions))
        .Add("commits_per_sec", run.commits_per_sec)
        .Add("p50_ms", run.p50_ms)
        .Add("p99_ms", run.p99_ms)
        .Add("batches", run.batches)
        .Add("avg_batch", run.avg_batch);
  }

  double speedup = serial_at_32 > 0 ? group_at_32 / serial_at_32 : 0.0;
  report.config().Add("speedup_vs_serial_32", speedup);

  // Query Store overhead gate: the workload repository is enabled by
  // default, so its per-statement Record must cost the contended commit
  // path < 5%. A/B at group/32 with the arms alternated and best-of-N
  // taken per arm, which damps scheduler noise on shared machines.
  constexpr int kOverheadRounds = 3;
  constexpr double kOverheadBudget = 0.05;
  double base_best = 0.0;
  double qs_best = 0.0;
  uint64_t qs_recorded = 0;
  polaris::obs::MetricsRegistry registry;
  for (int round = 0; round < kOverheadRounds; ++round) {
    RunResult base = RunContention(false, 32);
    polaris::obs::QueryStore qstore;  // default options: enabled
    const bool last = round == kOverheadRounds - 1;
    RunResult with_qs = RunContention(false, 32, &qstore,
                                      last ? &registry : nullptr);
    if (base.failed != 0 || with_qs.failed != 0) {
      std::fprintf(stderr, "overhead-run commits failed unexpectedly\n");
      return 1;
    }
    base_best = std::max(base_best, base.commits_per_sec);
    qs_best = std::max(qs_best, with_qs.commits_per_sec);
    qs_recorded = qstore.recorded_total();
  }
  double overhead =
      base_best > 0 ? (base_best - qs_best) / base_best : 1.0;
  bool overhead_ok = overhead < kOverheadBudget;
  registry.Add("query_store.recorded.total", qs_recorded);
  report.SetMetrics(registry.Snapshot());
  report.config()
      .Add("query_store_overhead_frac", overhead)
      .Add("query_store_overhead_budget", kOverheadBudget)
      .Add("query_store_overhead_ok", overhead_ok)
      .Add("query_store_recorded", qs_recorded);

  // Wait-stats overhead gate, same discipline as the Query Store gate:
  // A/B at group/32 with arms alternated, best-of-N per arm. The off arm
  // passes no registry, so ScopedWait is fully inert (no clock reads);
  // the on arm records every gate/barrier/store-IO wait. Budget < 5%.
  double waits_off_best = 0.0;
  double waits_on_best = 0.0;
  polaris::common::WaitStats::Snapshot wait_snap;
  double attributed_wall_us = 0.0;
  for (int round = 0; round < kOverheadRounds; ++round) {
    RunResult off = RunContention(false, 32);
    polaris::common::WaitStats wait_stats;
    RunResult on =
        RunContention(false, 32, nullptr, nullptr, &wait_stats);
    if (off.failed != 0 || on.failed != 0) {
      std::fprintf(stderr, "wait-run commits failed unexpectedly\n");
      return 1;
    }
    waits_off_best = std::max(waits_off_best, off.commits_per_sec);
    waits_on_best = std::max(waits_on_best, on.commits_per_sec);
    wait_snap = wait_stats.TakeSnapshot();
    attributed_wall_us = on.commit_wall_us;
  }
  double waits_overhead = waits_off_best > 0
                              ? (waits_off_best - waits_on_best) /
                                    waits_off_best
                              : 1.0;
  bool waits_overhead_ok = waits_overhead < kOverheadBudget;

  // Attribution check (last waits-on run): the gate, barrier and
  // store-IO classes must explain >= 90% of the blocked time the 32
  // sessions measured around their commits. Self-time accounting means
  // the classes partition that time, so a large gap would mean an
  // uninstrumented blocking point on the commit path.
  auto class_us = [&wait_snap](polaris::common::WaitClass cls) {
    return wait_snap.classes[static_cast<int>(cls)].total_us;
  };
  const int64_t commit_path_us =
      class_us(polaris::common::WaitClass::kCommitGate) +
      class_us(polaris::common::WaitClass::kCommitBarrier) +
      class_us(polaris::common::WaitClass::kStoreIo) +
      class_us(polaris::common::WaitClass::kLockIntent);
  double attribution = attributed_wall_us > 0
                           ? static_cast<double>(commit_path_us) /
                                 attributed_wall_us
                           : 0.0;
  constexpr double kAttributionFloor = 0.90;
  bool attribution_ok = attribution >= kAttributionFloor;
  report.config()
      .Add("wait_stats_overhead_frac", waits_overhead)
      .Add("wait_stats_overhead_budget", kOverheadBudget)
      .Add("wait_stats_overhead_ok", waits_overhead_ok)
      .Add("wait_attribution_frac", attribution)
      .Add("wait_attribution_floor", kAttributionFloor)
      .Add("wait_attribution_ok", attribution_ok)
      .AddRaw("dm_wait_stats", wait_snap.ToJson());

  std::printf(
      "\nshape check: serial throughput is pinned near "
      "1/store-round-trip regardless of\nsessions; group commit amortizes "
      "the round trip across the batch, so commits/sec\nrises with "
      "session count and p99 stays near one round trip. speedup at 32 "
      "sessions:\n%.1fx (acceptance floor: 3x).\n",
      speedup);
  std::printf(
      "query_store overhead at group/32: %.2f%% of throughput "
      "(budget %.0f%%) [%s]\n",
      overhead * 100.0, kOverheadBudget * 100.0,
      overhead_ok ? "PASS" : "FAIL");
  std::printf(
      "wait_stats overhead at group/32: %.2f%% of throughput "
      "(budget %.0f%%) [%s]\n",
      waits_overhead * 100.0, kOverheadBudget * 100.0,
      waits_overhead_ok ? "PASS" : "FAIL");
  std::printf(
      "wait attribution at group/32: gate+barrier+store-IO explain "
      "%.1f%% of commit\nwall time (floor %.0f%%) [%s]\n",
      attribution * 100.0, kAttributionFloor * 100.0,
      attribution_ok ? "PASS" : "FAIL");
  report.Write();
  return (speedup >= 3.0 && overhead_ok && waits_overhead_ok &&
          attribution_ok)
             ? 0
             : 1;
}
