// Ablation (§4.4.1): abort rate of concurrent updaters under
// table-granularity vs data-file-granularity conflict detection. File
// granularity admits concurrent mutations of disjoint files; table
// granularity aborts all but the first committer.

#include <cstdio>

#include "bench_json.h"
#include "engine/engine.h"

namespace {

using polaris::catalog::ConflictGranularity;
using polaris::common::Status;
using polaris::engine::EngineOptions;
using polaris::engine::PolarisEngine;
using polaris::exec::CompareOp;
using polaris::exec::Conjunction;
using polaris::exec::Predicate;
using polaris::format::ColumnType;
using polaris::format::RecordBatch;
using polaris::format::Schema;
using polaris::format::Value;

Schema KvSchema() {
  return Schema({{"k", ColumnType::kInt64}, {"v", ColumnType::kInt64}});
}

struct RunResult {
  int committed = 0;
  int aborted = 0;
};

/// `writers` concurrent transactions each delete one distinct key (each
/// key lives in its own data file), then all try to commit. When
/// `metrics_out` is set it receives the engine's final metrics snapshot.
RunResult RunConcurrentDeleters(ConflictGranularity granularity,
                                int writers,
                                polaris::obs::MetricsSnapshot* metrics_out =
                                    nullptr) {
  EngineOptions options;
  options.num_cells = 1;  // all keys share a cell: contention by design
  options.worker_threads = 2;
  options.txn_options.granularity = granularity;
  PolarisEngine engine(options);
  if (!engine.CreateTable("t", KvSchema()).ok()) std::abort();
  // One committed insert per key -> one data file per key.
  for (int k = 0; k < writers; ++k) {
    RecordBatch batch{KvSchema()};
    (void)batch.AppendRow({Value::Int64(k), Value::Int64(k)});
    auto st = engine.RunInTransaction([&](polaris::txn::Transaction* txn) {
      return engine.Insert(txn, "t", batch).status();
    });
    if (!st.ok()) std::abort();
  }

  // Open all transactions first (overlapping lifetimes), each deleting a
  // different key, then commit them in order.
  std::vector<std::unique_ptr<polaris::txn::Transaction>> txns;
  for (int k = 0; k < writers; ++k) {
    auto txn = engine.Begin();
    if (!txn.ok()) std::abort();
    Conjunction filter;
    filter.predicates.push_back(
        Predicate::Make("k", CompareOp::kEq, Value::Int64(k)));
    if (!engine.Delete(txn->get(), "t", filter).ok()) std::abort();
    txns.push_back(std::move(*txn));
  }
  RunResult result;
  for (auto& txn : txns) {
    Status st = engine.Commit(txn.get());
    if (st.ok()) {
      ++result.committed;
    } else if (st.IsConflict()) {
      ++result.aborted;
    } else {
      std::abort();
    }
  }
  if (metrics_out != nullptr) *metrics_out = engine.MetricsSnapshot();
  return result;
}

}  // namespace

int main() {
  std::printf(
      "Ablation: WW-conflict granularity (§4.4.1) — concurrent deleters of "
      "DISJOINT rows\n\n");
  std::printf("%-14s %-10s %-11s %-9s %-10s\n", "granularity", "writers",
              "committed", "aborted", "abort_rate");
  polaris::bench::BenchReport report("micro_conflict_granularity");
  report.config().Add("num_cells", uint64_t{1}).Add("worker_threads",
                                                    uint64_t{2});
  polaris::obs::MetricsSnapshot last_metrics;
  for (int writers : {2, 4, 8, 16}) {
    RunResult table_run =
        RunConcurrentDeleters(ConflictGranularity::kTable, writers);
    RunResult file_run = RunConcurrentDeleters(ConflictGranularity::kDataFile,
                                               writers, &last_metrics);
    std::printf("%-14s %-10d %-11d %-9d %-10.2f\n", "table", writers,
                table_run.committed, table_run.aborted,
                static_cast<double>(table_run.aborted) / writers);
    std::printf("%-14s %-10d %-11d %-9d %-10.2f\n", "data-file", writers,
                file_run.committed, file_run.aborted,
                static_cast<double>(file_run.aborted) / writers);
    report.AddRow()
        .Add("granularity", "table")
        .Add("writers", static_cast<int64_t>(writers))
        .Add("committed", static_cast<int64_t>(table_run.committed))
        .Add("aborted", static_cast<int64_t>(table_run.aborted));
    report.AddRow()
        .Add("granularity", "data-file")
        .Add("writers", static_cast<int64_t>(writers))
        .Add("committed", static_cast<int64_t>(file_run.committed))
        .Add("aborted", static_cast<int64_t>(file_run.aborted));
  }
  std::printf(
      "\nshape check: table granularity commits exactly 1 of N and aborts "
      "the rest;\nfile granularity commits all N (disjoint files never "
      "conflict).\n");
  report.SetMetrics(last_metrics);
  report.Write();
  return 0;
}
