// Overload behavior of statement admission control: an open-loop burst of
// concurrent sessions against a fixed-slot engine. As offered load grows
// past capacity, the shed rate should rise while the p99 latency of the
// statements that WERE admitted stays bounded — the queue (not the
// statement) absorbs the overload, and the bounded queue sheds the rest.
// Without admission control every statement is "admitted" and the tail
// latency grows with the burst instead.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "engine/engine.h"
#include "sql/session.h"

using polaris::engine::EngineOptions;
using polaris::engine::PolarisEngine;

namespace {

constexpr uint32_t kSlots = 2;
constexpr int kStatementsPerSession = 25;

struct BurstResult {
  int committed = 0;
  int shed = 0;
  int failed = 0;  // anything else (must stay 0)
  double p50_admitted_ms = 0.0;
  double p99_admitted_ms = 0.0;
};

double Quantile(std::vector<double>* values, double q) {
  if (values->empty()) return 0.0;
  std::sort(values->begin(), values->end());
  size_t idx = static_cast<size_t>(q * static_cast<double>(values->size()));
  if (idx >= values->size()) idx = values->size() - 1;
  return (*values)[idx];
}

BurstResult RunBurst(PolarisEngine* engine, int sessions) {
  BurstResult result;
  std::mutex mu;
  std::vector<double> admitted_ms;
  std::atomic<int> committed{0};
  std::atomic<int> shed{0};
  std::atomic<int> failed{0};

  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(sessions));
  for (int s = 0; s < sessions; ++s) {
    workers.emplace_back([&, s] {
      polaris::sql::SqlSession session(engine);
      for (int i = 0; i < kStatementsPerSession; ++i) {
        int value = s * kStatementsPerSession + i;
        auto t0 = std::chrono::steady_clock::now();
        auto outcome = session.Execute("INSERT INTO t VALUES (" +
                                       std::to_string(value) + ")");
        auto t1 = std::chrono::steady_clock::now();
        if (outcome.ok()) {
          ++committed;
          double ms =
              std::chrono::duration<double, std::milli>(t1 - t0).count();
          std::lock_guard<std::mutex> lock(mu);
          admitted_ms.push_back(ms);
        } else if (outcome.status().IsUnavailable()) {
          ++shed;
        } else {
          ++failed;
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();

  result.committed = committed.load();
  result.shed = shed.load();
  result.failed = failed.load();
  result.p50_admitted_ms = Quantile(&admitted_ms, 0.50);
  result.p99_admitted_ms = Quantile(&admitted_ms, 0.99);
  return result;
}

}  // namespace

int main() {
  polaris::bench::BenchReport report("micro_overload");
  report.config()
      .Add("max_concurrent", uint64_t{kSlots})
      .Add("max_queue", uint64_t{4})
      .Add("statements_per_session", uint64_t{kStatementsPerSession});

  std::printf("micro_overload: shed rate and admitted-latency tail vs "
              "offered load\n\n");
  std::printf("%-10s %-10s %-10s %-10s %-12s %-12s\n", "sessions",
              "committed", "shed", "shed_rate", "p50_adm_ms", "p99_adm_ms");

  std::string wait_stats_json = "{}";
  for (int multiplier : {1, 2, 4, 8}) {
    EngineOptions options;
    options.worker_threads = 2;
    options.admission.max_concurrent = kSlots;
    options.admission.max_queue = 4;
    options.admission.queue_timeout_micros = 100'000;  // wall time
    options.admission.retry_after_micros = 10'000;
    PolarisEngine engine(options);
    {
      polaris::sql::SqlSession setup(&engine);
      auto created = setup.Execute("CREATE TABLE t (k BIGINT)");
      if (!created.ok()) {
        std::fprintf(stderr, "setup failed: %s\n",
                     created.status().ToString().c_str());
        return 1;
      }
    }

    int sessions = static_cast<int>(kSlots) * multiplier;
    BurstResult burst = RunBurst(&engine, sessions);
    if (burst.failed != 0) {
      std::fprintf(stderr,
                   "%d statements failed with unexpected errors\n",
                   burst.failed);
      return 1;
    }
    int total = burst.committed + burst.shed;
    double shed_rate =
        total > 0 ? static_cast<double>(burst.shed) / total : 0.0;

    std::printf("%-10d %-10d %-10d %-10.3f %-12.3f %-12.3f\n", sessions,
                burst.committed, burst.shed, shed_rate,
                burst.p50_admitted_ms, burst.p99_admitted_ms);
    report.AddRow()
        .Add("sessions", static_cast<uint64_t>(sessions))
        .Add("overload_factor", static_cast<uint64_t>(multiplier))
        .Add("committed", static_cast<uint64_t>(burst.committed))
        .Add("shed", static_cast<uint64_t>(burst.shed))
        .Add("shed_rate", shed_rate)
        .Add("p50_admitted_ms", burst.p50_admitted_ms)
        .Add("p99_admitted_ms", burst.p99_admitted_ms);
    // Last call wins: the report carries the most-overloaded engine's
    // counters (admission.shed.total, queue wait histogram) and its full
    // dm_wait_stats snapshot — under an 8x burst the ADMISSION_QUEUE
    // class should dominate, showing where the overload was absorbed.
    report.SetMetrics(engine.MetricsSnapshot());
    wait_stats_json = engine.wait_stats()->TakeSnapshot().ToJson();
  }
  report.config().AddRaw("dm_wait_stats", wait_stats_json);
  std::printf(
      "\nshape check: every statement terminates (committed or shed with a "
      "retry-after\nhint) at every overload factor — zero hung statements. "
      "The admitted tail is\nbounded by queue depth x service time, not by "
      "the burst size; excess load\nsurfaces as shed rate instead of "
      "latency.\n");
  report.Write();
  return 0;
}
