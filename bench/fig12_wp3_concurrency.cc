// Figure 12 (paper §7.4): LST-Bench WP3 — read/write concurrency. Phases:
//   1. SU alone (baseline),
//   2. SU with concurrent Data Maintenance,
//   3. SU alone again after autonomous storage optimization.
//
// Expected shape: phase 2 takes significantly longer than phase 1 (each
// query sees a fresh committed snapshot with more files, deletion vectors
// and cold cache entries); after compaction restores storage health,
// phase 3 returns close to the baseline.

#include <cstdio>

#include "bench_json.h"
#include "workloads.h"

using polaris::bench::BenchEngineOptions;
using polaris::bench::BenchReport;
using polaris::bench::DsTableNames;
using polaris::bench::LoadDsTables;
using polaris::bench::RunDataMaintenancePhase;
using polaris::bench::RunSingleUserPhase;
using polaris::engine::PolarisEngine;
using polaris::engine::QuerySpec;

namespace {

/// SU phase with DM transactions interleaved between queries — the two
/// workloads run on separate WLM pools; "concurrency" on the virtual
/// timeline means DM commits land between query snapshots, so each query
/// sees a newer, more fragmented table state.
polaris::common::Result<polaris::common::Micros> RunSuWithConcurrentDm(
    PolarisEngine& engine, uint64_t seed) {
  polaris::common::Micros total = 0;
  int round = 100;
  for (int slice = 0; slice < 4; ++slice) {
    // A slice of data maintenance commits...
    auto dm = RunDataMaintenancePhase(engine, round++, seed,
                                      /*run_compaction=*/false);
    POLARIS_RETURN_IF_ERROR(dm.status());
    // ...then queries run against the now-changed committed state.
    auto su = RunSingleUserPhase(engine);
    POLARIS_RETURN_IF_ERROR(su.status());
    total += *su;
  }
  return total;
}

}  // namespace

int main() {
  auto options = BenchEngineOptions(/*cost_scale=*/2000);
  options.sto_options.min_file_rows = 64;
  options.sto_options.max_deleted_fraction = 0.1;
  PolarisEngine engine(options);
  // The SU stream runs on a fixed read pool so that virtual makespans are
  // directly proportional to work done; elastic node quantization would
  // otherwise mask the per-phase differences this figure plots.
  {
    auto& read_pool = engine.topology()->pools["read"];
    read_pool.mode = polaris::dcp::AllocationMode::kFixed;
    read_pool.node_count = 4;
  }
  auto load = LoadDsTables(engine, /*rows_per_table=*/4000, /*seed=*/9);
  if (!load.ok()) {
    std::fprintf(stderr, "load failed: %s\n", load.ToString().c_str());
    return 1;
  }

  std::printf("Figure 12: LST-Bench WP3 concurrency phases\n\n");

  // Phase 1: SU alone. Run the suite 4x to match phase 2's query volume.
  polaris::common::Micros phase1 = 0;
  for (int i = 0; i < 4; ++i) {
    auto su = RunSingleUserPhase(engine);
    if (!su.ok()) return 1;
    phase1 += *su;
  }

  // Phase 2: SU + concurrent DM.
  auto phase2 = RunSuWithConcurrentDm(engine, /*seed=*/23);
  if (!phase2.ok()) {
    std::fprintf(stderr, "phase 2 failed: %s\n",
                 phase2.status().ToString().c_str());
    return 1;
  }

  // Phase 2b: SU alone on the post-DM state, *before* any optimization —
  // isolates the fragmentation penalty from the data-growth effect.
  polaris::common::Micros phase2b = 0;
  for (int i = 0; i < 4; ++i) {
    auto su = RunSingleUserPhase(engine);
    if (!su.ok()) return 1;
    phase2b += *su;
  }

  // Autonomous optimization runs between the phases (Polaris needs no
  // explicit Optimize phase, §7.4).
  auto sweep = engine.sto()->RunOnce();
  if (!sweep.ok() && !sweep.IsConflict()) return 1;

  // Phase 3: SU alone again, post-optimization.
  polaris::common::Micros phase3 = 0;
  for (int i = 0; i < 4; ++i) {
    auto su = RunSingleUserPhase(engine);
    if (!su.ok()) return 1;
    phase3 += *su;
  }

  double p1 = static_cast<double>(phase1) / 60e6;
  double p2 = static_cast<double>(*phase2) / 60e6;
  double p2b = static_cast<double>(phase2b) / 60e6;
  double p3 = static_cast<double>(phase3) / 60e6;
  std::printf("%-40s %-18s\n", "phase", "SU_time_min(virt)");
  std::printf("%-40s %-18.2f\n", "1: SU alone", p1);
  std::printf("%-40s %-18.2f\n", "2: SU + concurrent DM", p2);
  std::printf("%-40s %-18.2f\n", "2b: SU after DM, before optimize", p2b);
  std::printf("%-40s %-18.2f\n", "3: SU after autonomous optimize", p3);
  BenchReport report("fig12_wp3_concurrency");
  report.config()
      .Add("cost_scale", uint64_t{2000})
      .Add("rows_per_table", uint64_t{4000})
      .Add("min_file_rows", uint64_t{64})
      .Add("max_deleted_fraction", 0.1);
  report.AddRow().Add("phase", "su_alone").Add("su_time_min_virtual", p1);
  report.AddRow()
      .Add("phase", "su_with_concurrent_dm")
      .Add("su_time_min_virtual", p2);
  report.AddRow()
      .Add("phase", "su_after_dm_before_optimize")
      .Add("su_time_min_virtual", p2b);
  report.AddRow()
      .Add("phase", "su_after_autonomous_optimize")
      .Add("su_time_min_virtual", p3);
  std::printf(
      "\nshape check: phase2/phase1 = %.2fx (expect > 1: fragmentation + "
      "snapshot churn);\nphase3/phase2b = %.2fx (expect < 1: compaction "
      "purged DVs and merged small files);\nphase3 stays above phase1 only "
      "because DM grew the tables.\n",
      p2 / p1, p3 / p2b);
  polaris::bench::PrintEngineMetrics(engine);
  report.SetMetrics(engine.MetricsSnapshot());
  report.Write();
  return 0;
}
