// Reopen (crash-recovery) latency of a durable database as a function of
// journal length, with and without a catalog checkpoint. Replay is O(tail):
// a checkpoint bounds the tail, so reopen time should stay flat with a
// checkpoint and grow linearly without one.

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>

#include "bench_json.h"
#include "engine/engine.h"

using polaris::engine::EngineOptions;
using polaris::engine::PolarisEngine;

namespace {

polaris::format::Schema EventsSchema() {
  using polaris::format::ColumnType;
  return polaris::format::Schema(
      {{"id", ColumnType::kInt64}, {"val", ColumnType::kInt64}});
}

EngineOptions MakeOptions(const std::string& data_dir) {
  EngineOptions options;
  options.num_cells = 2;
  options.worker_threads = 2;
  options.data_dir = data_dir;
  return options;
}

}  // namespace

int main() {
  const auto base_dir =
      std::filesystem::temp_directory_path() / "polaris_micro_recovery";

  polaris::bench::BenchReport report("micro_recovery");
  report.config().Add("num_cells", uint64_t{2}).Add("txn_rows", uint64_t{1});

  std::printf("micro_recovery: reopen latency vs journal length\n\n");
  std::printf("%-12s %-12s %-12s %-16s\n", "journal_len", "checkpoint",
              "reopen_ms", "records_replayed");

  for (int journal_len : {8, 64, 256}) {
    for (bool checkpointed : {false, true}) {
      std::filesystem::remove_all(base_dir);
      auto options = MakeOptions(base_dir.string());
      // Keep the STO's automatic checkpointing out of the way so the
      // journal length is exactly what this grid dials in.
      options.journal_options.checkpoint_every_records = 1u << 30;

      {
        auto opened = PolarisEngine::Open(options);
        if (!opened.ok()) {
          std::fprintf(stderr, "open failed: %s\n",
                       opened.status().ToString().c_str());
          return 1;
        }
        auto& engine = *opened;
        if (!engine->CreateTable("events", EventsSchema()).ok()) return 1;
        for (int i = 0; i < journal_len; ++i) {
          polaris::format::RecordBatch batch{EventsSchema()};
          (void)batch.AppendRow({polaris::format::Value::Int64(i),
                                 polaris::format::Value::Int64(i * 10)});
          auto status = engine->RunInTransaction(
              [&](polaris::txn::Transaction* txn) {
                return engine->Insert(txn, "events", batch).status();
              });
          if (!status.ok()) {
            std::fprintf(stderr, "insert failed: %s\n",
                         status.ToString().c_str());
            return 1;
          }
        }
        if (checkpointed) {
          if (!engine->CheckpointCatalog().ok()) return 1;
          auto reclaimed = engine->journal()->ReclaimSupersededSegments();
          if (!reclaimed.ok()) return 1;
        }
        // Engine discarded without shutdown: reopen measures recovery.
      }

      auto t0 = std::chrono::steady_clock::now();
      auto reopened = PolarisEngine::Open(MakeOptions(base_dir.string()));
      auto t1 = std::chrono::steady_clock::now();
      if (!reopened.ok()) {
        std::fprintf(stderr, "reopen failed: %s\n",
                     reopened.status().ToString().c_str());
        return 1;
      }
      double reopen_ms =
          std::chrono::duration<double, std::milli>(t1 - t0).count();
      uint64_t replayed = (*reopened)->recovery_info().records_replayed;
      // Last grid point wins: the artifact's metrics section shows the
      // recovery counters of the longest-journal reopen.
      report.SetMetrics((*reopened)->MetricsSnapshot());

      std::printf("%-12d %-12s %-12.3f %-16llu\n", journal_len,
                  checkpointed ? "yes" : "no", reopen_ms,
                  static_cast<unsigned long long>(replayed));
      report.AddRow()
          .Add("journal_len", static_cast<uint64_t>(journal_len))
          .Add("checkpointed", checkpointed)
          .Add("reopen_ms", reopen_ms)
          .Add("records_replayed", replayed);
    }
  }

  std::filesystem::remove_all(base_dir);
  std::printf(
      "\nshape check: without a checkpoint the replayed-record count "
      "grows with\njournal length; with one it stays at zero — recovery "
      "is O(tail), and the\ncheckpoint is what bounds the tail. (Residual "
      "reopen time is the object\nstore's open-time directory scan, which "
      "grows with total blob count, not\njournal length.)\n");
  report.Write();
  return 0;
}
