#include "workloads.h"

#include <algorithm>
#include <cstdio>

#include "common/random.h"

namespace polaris::bench {

using common::Micros;
using common::Random;
using common::Result;
using common::Status;
using engine::PolarisEngine;
using engine::QuerySpec;
using exec::AggFunc;
using exec::CompareOp;
using exec::Conjunction;
using exec::Predicate;
using format::ColumnType;
using format::RecordBatch;
using format::Schema;
using format::Value;

format::Schema LineitemSchema() {
  return Schema({{"l_orderkey", ColumnType::kInt64},
                 {"l_partkey", ColumnType::kInt64},
                 {"l_suppkey", ColumnType::kInt64},
                 {"l_quantity", ColumnType::kDouble},
                 {"l_extendedprice", ColumnType::kDouble},
                 {"l_discount", ColumnType::kDouble},
                 {"l_tax", ColumnType::kDouble},
                 {"l_returnflag", ColumnType::kString},
                 {"l_linestatus", ColumnType::kString},
                 {"l_shipdate", ColumnType::kInt64},
                 {"l_shipmode", ColumnType::kString}});
}

uint32_t LineitemSourceFiles(uint64_t scale_factor) {
  uint64_t files = scale_factor * 4 / 10;  // 0.4 files per SF (paper §7.1)
  return static_cast<uint32_t>(std::max<uint64_t>(files, 2));
}

std::vector<RecordBatch> GenerateLineitemSources(uint64_t total_rows,
                                                 uint32_t num_files,
                                                 uint64_t seed) {
  static const char* kReturnFlags[] = {"A", "N", "R"};
  static const char* kLineStatus[] = {"F", "O"};
  static const char* kShipModes[] = {"AIR",  "FOB",   "MAIL", "RAIL",
                                     "REG",  "SHIP",  "TRUCK"};
  Random rng(seed);
  Schema schema = LineitemSchema();
  std::vector<RecordBatch> sources;
  sources.reserve(num_files);
  uint64_t rows_per_file = std::max<uint64_t>(total_rows / num_files, 1);
  int64_t orderkey = 1;
  for (uint32_t f = 0; f < num_files; ++f) {
    std::vector<format::Row> rows;
    rows.reserve(rows_per_file);
    for (uint64_t r = 0; r < rows_per_file; ++r) {
      double quantity = 1 + static_cast<double>(rng.Uniform(50));
      double price = 900.0 + static_cast<double>(rng.Uniform(100000)) / 10.0;
      rows.push_back(
          {Value::Int64(orderkey++),
           Value::Int64(static_cast<int64_t>(rng.Uniform(200000)) + 1),
           Value::Int64(static_cast<int64_t>(rng.Uniform(10000)) + 1),
           Value::Double(quantity),
           Value::Double(price),
           Value::Double(static_cast<double>(rng.Uniform(11)) / 100.0),
           Value::Double(static_cast<double>(rng.Uniform(9)) / 100.0),
           Value::String(kReturnFlags[rng.Uniform(3)]),
           Value::String(kLineStatus[rng.Uniform(2)]),
           // Ship dates span ~7 years of days, like 1992-01 .. 1998-12.
           Value::Int64(static_cast<int64_t>(rng.Uniform(2526))),
           Value::String(kShipModes[rng.Uniform(7)])});
    }
    // Z-order-style clustering on the ship date (paper §2.3: the
    // partitioning function orders rows within each distribution so that
    // range predicates can prune via zone maps).
    std::sort(rows.begin(), rows.end(),
              [](const format::Row& a, const format::Row& b) {
                return a[9].i64 < b[9].i64;
              });
    RecordBatch batch{schema};
    for (auto& row : rows) (void)batch.AppendRow(row);
    sources.push_back(std::move(batch));
  }
  return sources;
}

std::vector<NamedQuery> TpchLikeQueries() {
  std::vector<NamedQuery> queries;
  auto add = [&queries](std::string name, QuerySpec spec) {
    queries.push_back({std::move(name), std::move(spec)});
  };
  auto date_le = [](int64_t d) {
    return Predicate::Make("l_shipdate", CompareOp::kLe, Value::Int64(d));
  };
  auto date_ge = [](int64_t d) {
    return Predicate::Make("l_shipdate", CompareOp::kGe, Value::Int64(d));
  };

  // Q1 — the pricing summary report: the one faithful reproduction.
  {
    QuerySpec q;
    q.filter.predicates.push_back(date_le(2526 - 90));
    q.group_by = {"l_returnflag", "l_linestatus"};
    q.aggregates = {{AggFunc::kSum, "l_quantity", "sum_qty"},
                    {AggFunc::kSum, "l_extendedprice", "sum_base_price"},
                    {AggFunc::kAvg, "l_quantity", "avg_qty"},
                    {AggFunc::kAvg, "l_extendedprice", "avg_price"},
                    {AggFunc::kAvg, "l_discount", "avg_disc"},
                    {AggFunc::kCount, "", "count_order"}};
    add("Q1", std::move(q));
  }
  // Q2..Q22 — structurally similar scan/filter/aggregate shapes with
  // varying selectivity, projection width and grouping cardinality.
  struct Shape {
    int64_t date_lo;
    int64_t date_hi;     // -1: no upper bound
    double min_quantity; // <0: none
    std::vector<std::string> group_by;
  };
  const Shape shapes[] = {
      {0, 365, -1, {}},
      {365, 730, 10, {"l_shipmode"}},
      {730, 1095, -1, {"l_returnflag"}},
      {0, -1, 45, {}},
      {1095, 1460, -1, {"l_linestatus"}},
      {0, 180, 5, {"l_shipmode"}},
      {1460, 1825, -1, {}},
      {0, 2526, 48, {"l_returnflag", "l_linestatus"}},
      {1825, 2190, -1, {"l_shipmode"}},
      {200, 400, -1, {}},
      {0, 1263, 25, {"l_returnflag"}},
      {1263, -1, -1, {"l_shipmode"}},
      {600, 1200, 30, {}},
      {0, 90, -1, {}},
      {2190, -1, -1, {"l_linestatus"}},
      {300, 2400, 40, {"l_shipmode"}},
      {0, 500, -1, {"l_returnflag", "l_linestatus"}},
      {500, 1000, 15, {}},
      {1000, 1500, -1, {"l_returnflag"}},
      {1500, 2000, 20, {"l_shipmode"}},
      {0, -1, -1, {"l_returnflag", "l_linestatus"}},
  };
  int qnum = 2;
  for (const Shape& shape : shapes) {
    QuerySpec q;
    if (shape.date_lo > 0) q.filter.predicates.push_back(date_ge(shape.date_lo));
    if (shape.date_hi >= 0) q.filter.predicates.push_back(date_le(shape.date_hi));
    if (shape.min_quantity >= 0) {
      q.filter.predicates.push_back(Predicate::Make(
          "l_quantity", CompareOp::kGe, Value::Double(shape.min_quantity)));
    }
    q.group_by = shape.group_by;
    q.aggregates = {{AggFunc::kSum, "l_extendedprice", "revenue"},
                    {AggFunc::kCount, "", "n"}};
    add("Q" + std::to_string(qnum++), std::move(q));
  }
  return queries;
}

std::vector<std::string> DsTableNames() {
  return {"catalog_sales", "catalog_returns", "store_sales",
          "store_returns", "web_sales",       "web_returns"};
}

Schema DsSchema() {
  return Schema({{"sk", ColumnType::kInt64},
                 {"item", ColumnType::kInt64},
                 {"quantity", ColumnType::kInt64},
                 {"price", ColumnType::kDouble},
                 {"channel", ColumnType::kString}});
}

namespace {

RecordBatch DsRows(uint64_t n, int64_t sk_offset, uint64_t seed,
                   const std::string& channel) {
  Random rng(seed);
  RecordBatch batch{DsSchema()};
  for (uint64_t i = 0; i < n; ++i) {
    (void)batch.AppendRow(
        {Value::Int64(sk_offset + static_cast<int64_t>(i)),
         Value::Int64(static_cast<int64_t>(rng.Uniform(1000))),
         Value::Int64(static_cast<int64_t>(rng.Uniform(100)) + 1),
         Value::Double(static_cast<double>(rng.Uniform(10000)) / 100.0),
         Value::String(channel)});
  }
  return batch;
}

}  // namespace

Status LoadDsTables(PolarisEngine& engine, uint64_t rows_per_table,
                    uint64_t seed) {
  uint64_t table_seed = seed;
  for (const auto& name : DsTableNames()) {
    POLARIS_RETURN_IF_ERROR(engine.CreateTable(name, DsSchema()).status());
    RecordBatch rows = DsRows(rows_per_table, 0, table_seed++, name);
    POLARIS_RETURN_IF_ERROR(
        engine.RunInTransaction([&](txn::Transaction* txn) {
          return engine.Insert(txn, name, rows).status();
        }));
  }
  return Status::OK();
}

Result<Micros> RunSingleUserPhase(PolarisEngine& engine) {
  Micros total = 0;
  auto queries = TpchLikeQueries();
  for (const auto& name : DsTableNames()) {
    // Map the lineitem query shapes onto the DS schema: scan + filter on
    // quantity + grouped revenue, one variant per query slot.
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      auto txn = engine.Begin();
      POLARIS_RETURN_IF_ERROR(txn.status());
      QuerySpec spec;
      spec.filter.predicates.push_back(Predicate::Make(
          "quantity", CompareOp::kGe,
          Value::Int64(static_cast<int64_t>(qi % 50))));
      if (qi % 3 == 0) spec.group_by = {"channel"};
      spec.aggregates = {{AggFunc::kSum, "price", "revenue"},
                         {AggFunc::kCount, "", "n"}};
      engine::QueryStats stats;
      auto result = engine.Query(txn->get(), name, spec, &stats);
      (void)engine.Abort(txn->get());
      POLARIS_RETURN_IF_ERROR(result.status());
      total += stats.job.makespan_micros;
      engine.clock()->Advance(stats.job.makespan_micros);
    }
  }
  return total;
}

Result<Micros> RunDataMaintenancePhase(PolarisEngine& engine, int round,
                                       uint64_t seed, bool run_compaction) {
  Micros start = engine.clock()->Now();
  uint64_t table_seed = seed + static_cast<uint64_t>(round) * 1000;
  for (const auto& name : DsTableNames()) {
    int64_t base = 1'000'000 + round * 100'000;
    // 2 INSERT statements (separate transactions -> 2 manifests).
    for (int i = 0; i < 2; ++i) {
      RecordBatch rows =
          DsRows(500, base + i * 1000, table_seed++, name);
      POLARIS_RETURN_IF_ERROR(
          engine.RunInTransaction([&](txn::Transaction* txn) {
            return engine.Insert(txn, name, rows).status();
          }));
      engine.clock()->Advance(60'000'000);  // one virtual minute per stmt
    }
    // 6 DELETE statements, with compaction after each set of 3 (§7.3 /
    // Figure 11: "data compaction runs twice — once once between each set
    // of 3 DELETE statements"). Each delete range is sized to hit rows of
    // the first insert, so every statement commits a manifest: together
    // with the 2 inserts and 2 compactions each DM phase produces exactly
    // 10 manifests per table, the paper's checkpoint-trigger arithmetic.
    for (int d = 0; d < 6; ++d) {
      int64_t lo = base + d * 80;
      Conjunction filter;
      filter.predicates.push_back(
          Predicate::Make("sk", CompareOp::kGe, Value::Int64(lo)));
      filter.predicates.push_back(
          Predicate::Make("sk", CompareOp::kLt, Value::Int64(lo + 80)));
      POLARIS_RETURN_IF_ERROR(engine.RunInTransaction(
          [&](txn::Transaction* txn) -> Status {
            return engine.Delete(txn, name, filter).status();
          },
          catalog::IsolationMode::kSnapshot, /*max_attempts=*/10));
      engine.clock()->Advance(60'000'000);
      if (run_compaction && (d == 2 || d == 5)) {
        auto meta = engine.GetTable(name);
        POLARIS_RETURN_IF_ERROR(meta.status());
        auto stats = engine.sto()->CompactTable(meta->table_id);
        if (!stats.ok() && !stats.status().IsConflict()) {
          return stats.status();
        }
        engine.clock()->Advance(120'000'000);  // two virtual minutes
      }
    }
    // The checkpoint task reacts to each table's accumulated manifests as
    // DM reaches it — catalog tables first, web tables last — giving the
    // staggered lifetimes of Figure 11.
    if (run_compaction) {
      auto meta = engine.GetTable(name);
      POLARIS_RETURN_IF_ERROR(meta.status());
      POLARIS_RETURN_IF_ERROR(
          engine.sto()->MaybeCheckpoint(meta->table_id).status());
    }
  }
  return engine.clock()->Now() - start;
}

engine::EngineOptions BenchEngineOptions(uint64_t cost_scale) {
  engine::EngineOptions options;
  options.num_cells = 16;
  options.worker_threads = 2;
  options.cost_scale = cost_scale;
  // Fine-grained row groups so zone maps have pruning power on the
  // clustered ship-date column.
  options.file_options.rows_per_row_group = 256;
  options.sto_options.manifests_per_checkpoint = 10;  // paper §7.3
  options.sto_options.max_deleted_fraction = 0.2;
  options.sto_options.min_file_rows = 16;
  return options;
}

void PrintEngineMetrics(engine::PolarisEngine& engine, const char* label) {
  if (label != nullptr) {
    std::printf("\n-- engine metrics (%s) --\n", label);
  } else {
    std::printf("\n-- engine metrics --\n");
  }
  std::fputs(engine.MetricsSnapshot().ToString().c_str(), stdout);
}

}  // namespace polaris::bench
