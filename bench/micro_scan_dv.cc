// Ablation (motivates §5.1): merge-on-read scan cost as the deleted-row
// fraction grows, and the effect of compaction. The read-side penalty of
// deletion vectors is what triggers autonomous compaction.

#include <benchmark/benchmark.h>

#include "bench_json.h"
#include "engine/engine.h"

namespace {

using polaris::engine::EngineOptions;
using polaris::engine::PolarisEngine;
using polaris::engine::QuerySpec;
using polaris::exec::AggFunc;
using polaris::exec::CompareOp;
using polaris::exec::Conjunction;
using polaris::exec::Predicate;
using polaris::format::ColumnType;
using polaris::format::RecordBatch;
using polaris::format::Schema;
using polaris::format::Value;

Schema KvSchema() {
  return Schema({{"k", ColumnType::kInt64}, {"v", ColumnType::kInt64}});
}

/// Sets up a table with `rows` rows of which `deleted_pct`% are deleted
/// via DVs; optionally compacted afterwards.
std::unique_ptr<PolarisEngine> Setup(int rows, int deleted_pct,
                                     bool compact) {
  EngineOptions options;
  options.num_cells = 4;
  options.worker_threads = 2;
  options.sto_options.max_deleted_fraction = 0.01;
  options.sto_options.min_file_rows = 2;
  auto engine = std::make_unique<PolarisEngine>(options);
  if (!engine->CreateTable("t", KvSchema()).ok()) std::abort();
  RecordBatch batch{KvSchema()};
  for (int i = 0; i < rows; ++i) {
    (void)batch.AppendRow({Value::Int64(i), Value::Int64(i)});
  }
  auto st = engine->RunInTransaction([&](polaris::txn::Transaction* txn) {
    return engine->Insert(txn, "t", batch).status();
  });
  if (!st.ok()) std::abort();
  if (deleted_pct > 0) {
    Conjunction filter;
    filter.predicates.push_back(Predicate::Make(
        "k", CompareOp::kLt, Value::Int64(rows * deleted_pct / 100)));
    st = engine->RunInTransaction([&](polaris::txn::Transaction* txn) {
      return engine->Delete(txn, "t", filter).status();
    });
    if (!st.ok()) std::abort();
  }
  if (compact) {
    auto meta = engine->GetTable("t");
    if (!meta.ok()) std::abort();
    auto stats = engine->sto()->CompactTable(meta->table_id);
    if (!stats.ok()) std::abort();
  }
  return engine;
}

void RunScan(benchmark::State& state, PolarisEngine& engine) {
  for (auto _ : state) {
    auto txn = engine.Begin();
    QuerySpec spec;
    spec.aggregates = {{AggFunc::kSum, "v", "s"}};
    auto result = engine.Query(txn->get(), "t", spec);
    (void)engine.Abort(txn->get());
    if (!result.ok()) std::abort();
    benchmark::DoNotOptimize(result->num_rows());
  }
  polaris::bench::RecordArtifactMetrics(engine.MetricsSnapshot());
}

void BM_ScanWithDeletedFraction(benchmark::State& state) {
  auto engine = Setup(/*rows=*/20000,
                      /*deleted_pct=*/static_cast<int>(state.range(0)),
                      /*compact=*/false);
  RunScan(state, *engine);
  state.counters["deleted_pct"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ScanWithDeletedFraction)->Arg(0)->Arg(10)->Arg(30)->Arg(60);

void BM_ScanAfterCompaction(benchmark::State& state) {
  auto engine = Setup(/*rows=*/20000,
                      /*deleted_pct=*/static_cast<int>(state.range(0)),
                      /*compact=*/true);
  RunScan(state, *engine);
  state.counters["deleted_pct"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ScanAfterCompaction)->Arg(30)->Arg(60);

void BM_ZoneMapPrunedScan(benchmark::State& state) {
  // Selective range predicate: zone maps skip most row groups.
  auto engine = Setup(20000, 0, false);
  for (auto _ : state) {
    auto txn = engine->Begin();
    QuerySpec spec;
    spec.filter.predicates.push_back(
        Predicate::Make("k", CompareOp::kGe, Value::Int64(19900)));
    spec.aggregates = {{AggFunc::kCount, "", "n"}};
    auto result = engine->Query(txn->get(), "t", spec);
    (void)engine->Abort(txn->get());
    if (!result.ok()) std::abort();
    benchmark::DoNotOptimize(result->num_rows());
  }
  polaris::bench::RecordArtifactMetrics(engine->MetricsSnapshot());
}
BENCHMARK(BM_ZoneMapPrunedScan);

}  // namespace
