// Ablation: column-chunk encoding selection (format layer). Compares the
// serialized size and decode throughput of the encodings across data
// shapes — quantifying why the writer picks RLE for runs, dictionary for
// low-cardinality strings, and delta for sort-key-clustered integers
// (the clustering that §2.3's Z-ordering produces).

#include <benchmark/benchmark.h>

#include "bench_json.h"
#include "common/random.h"
#include "format/encoding.h"
#include "obs/metrics.h"

namespace {

using polaris::common::ByteReader;
using polaris::common::ByteWriter;
using polaris::common::Random;
using polaris::format::ColumnType;
using polaris::format::ColumnVector;
using polaris::format::DecodeColumn;
using polaris::format::EncodeColumn;
using polaris::format::Encoding;

constexpr int kRows = 8192;

ColumnVector SortedInts() {
  ColumnVector col(ColumnType::kInt64);
  Random rng(1);
  int64_t v = 0;
  for (int i = 0; i < kRows; ++i) {
    v += static_cast<int64_t>(rng.Uniform(100));
    col.AppendInt64(v);
  }
  return col;
}

ColumnVector RandomInts() {
  ColumnVector col(ColumnType::kInt64);
  Random rng(2);
  for (int i = 0; i < kRows; ++i) {
    col.AppendInt64(static_cast<int64_t>(rng.Next()));
  }
  return col;
}

ColumnVector RunnyInts() {
  ColumnVector col(ColumnType::kInt64);
  Random rng(3);
  int64_t v = 0;
  for (int i = 0; i < kRows; ++i) {
    if (i % 64 == 0) v = static_cast<int64_t>(rng.Uniform(1000));
    col.AppendInt64(v);
  }
  return col;
}

ColumnVector LowCardinalityStrings() {
  ColumnVector col(ColumnType::kString);
  Random rng(4);
  const char* values[] = {"AIR", "RAIL", "SHIP", "TRUCK", "MAIL"};
  for (int i = 0; i < kRows; ++i) {
    col.AppendString(values[rng.Uniform(5)]);
  }
  return col;
}

void RunEncodingBench(benchmark::State& state, const ColumnVector& col) {
  ByteWriter probe;
  Encoding chosen = EncodeColumn(col, &probe);
  for (auto _ : state) {
    ByteWriter out;
    Encoding enc = EncodeColumn(col, &out);
    ByteReader in(out.data());
    auto decoded = DecodeColumn(col.type(), enc, col.size(), &in);
    if (!decoded.ok()) std::abort();
    benchmark::DoNotOptimize(decoded->size());
  }
  state.counters["bytes"] = static_cast<double>(probe.size());
  state.counters["bytes_per_row"] =
      static_cast<double>(probe.size()) / kRows;
  state.counters["encoding"] = static_cast<double>(chosen);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kRows);
  // Accumulate across benchmarks into the artifact's "metrics" section.
  static polaris::obs::MetricsRegistry registry;
  registry.Add("encoding.columns_encoded");
  registry.Add("encoding.encoded_bytes", probe.size());
  registry.Add("encoding.rows", kRows);
  polaris::bench::RecordArtifactMetrics(registry.Snapshot());
}

void BM_EncodeSortedInts_Delta(benchmark::State& state) {
  RunEncodingBench(state, SortedInts());
}
BENCHMARK(BM_EncodeSortedInts_Delta);

void BM_EncodeRandomInts_Plain(benchmark::State& state) {
  RunEncodingBench(state, RandomInts());
}
BENCHMARK(BM_EncodeRandomInts_Plain);

void BM_EncodeRunnyInts_Rle(benchmark::State& state) {
  RunEncodingBench(state, RunnyInts());
}
BENCHMARK(BM_EncodeRunnyInts_Rle);

void BM_EncodeLowCardStrings_Dictionary(benchmark::State& state) {
  RunEncodingBench(state, LowCardinalityStrings());
}
BENCHMARK(BM_EncodeLowCardStrings_Dictionary);

}  // namespace
