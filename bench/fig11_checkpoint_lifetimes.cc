// Figure 11 (paper §7.3): manifest checkpoint lifetimes per table within
// the WP1 longevity run. Each DM phase produces exactly 10 new manifests
// per table (2 INSERTs + 6 DELETEs + 2 compactions); once 10 manifests
// accumulate, the STO's checkpointing task creates a new checkpoint. A
// checkpoint "lives" until the next one supersedes it.

#include <cstdio>
#include <map>
#include <vector>

#include "bench_json.h"
#include "workloads.h"

using polaris::bench::BenchEngineOptions;
using polaris::bench::BenchReport;
using polaris::bench::DsTableNames;
using polaris::bench::LoadDsTables;
using polaris::bench::RunDataMaintenancePhase;
using polaris::bench::RunSingleUserPhase;
using polaris::engine::PolarisEngine;

int main() {
  auto options = BenchEngineOptions(/*cost_scale=*/2000);
  options.sto_options.manifests_per_checkpoint = 10;  // the paper's trigger
  PolarisEngine engine(options);
  // The SU stream runs on a fixed read pool so that virtual makespans are
  // directly proportional to work done; elastic node quantization would
  // otherwise mask the per-phase differences this figure plots.
  {
    auto& read_pool = engine.topology()->pools["read"];
    read_pool.mode = polaris::dcp::AllocationMode::kFixed;
    read_pool.node_count = 4;
  }
  auto load = LoadDsTables(engine, /*rows_per_table=*/4000, /*seed=*/5);
  if (!load.ok()) {
    std::fprintf(stderr, "load failed: %s\n", load.ToString().c_str());
    return 1;
  }
  polaris::common::Micros t0 = engine.clock()->Now();

  std::printf(
      "Figure 11: checkpoint lifetimes per table (WP1 longevity, virtual "
      "minutes)\n\n");

  constexpr int kRounds = 4;
  for (int round = 1; round <= kRounds; ++round) {
    auto su = RunSingleUserPhase(engine);
    if (!su.ok()) return 1;
    // DM with inline compaction: 2 INSERT + 6 DELETE + 2 compactions = 10
    // manifests per table per phase ("by coincidence, each data
    // maintenance phase creates 10 new manifest files").
    auto dm = RunDataMaintenancePhase(engine, round, /*seed=*/17,
                                      /*run_compaction=*/true);
    if (!dm.ok()) {
      std::fprintf(stderr, "dm failed: %s\n", dm.status().ToString().c_str());
      return 1;
    }
    // The STO checkpoint task notices the accumulated manifests.
    for (const auto& table : DsTableNames()) {
      auto meta = engine.GetTable(table);
      if (!meta.ok()) return 1;
      auto created = engine.sto()->MaybeCheckpoint(meta->table_id);
      if (!created.ok()) return 1;
    }
  }

  // Reconstruct each checkpoint's lifetime from the catalog + blob stamps.
  BenchReport report("fig11_checkpoint_lifetimes");
  report.config()
      .Add("cost_scale", uint64_t{2000})
      .Add("rows_per_table", uint64_t{4000})
      .Add("rounds", uint64_t{kRounds})
      .Add("manifests_per_checkpoint", uint64_t{10});
  std::printf("%-16s %-10s %-16s %-16s %-14s\n", "table", "ckpt_seq",
              "created_min", "superseded_min", "lifetime_min");
  for (const auto& table : DsTableNames()) {
    auto meta = engine.GetTable(table);
    if (!meta.ok()) return 1;
    auto txn = engine.catalog()->Begin();
    auto records = engine.catalog()->ListCheckpoints(txn.get(),
                                                     meta->table_id);
    engine.catalog()->Abort(txn.get());
    if (!records.ok()) return 1;
    std::vector<double> created_min;
    for (const auto& record : *records) {
      auto info = engine.store()->Stat(record.path);
      if (!info.ok()) return 1;
      created_min.push_back(static_cast<double>(info->created_at - t0) /
                            60e6);
    }
    for (size_t i = 0; i < records->size(); ++i) {
      bool superseded = i + 1 < records->size();
      double end = superseded
                       ? created_min[i + 1]
                       : static_cast<double>(engine.clock()->Now() - t0) /
                             60e6;
      std::printf("%-16s %-10llu %-16.1f %-16s %-14.1f\n", table.c_str(),
                  static_cast<unsigned long long>((*records)[i].sequence_id),
                  created_min[i],
                  superseded
                      ? std::to_string(end).substr(0, 6).c_str()
                      : "active",
                  end - created_min[i]);
      report.AddRow()
          .Add("table", table)
          .Add("checkpoint_seq", (*records)[i].sequence_id)
          .Add("created_min", created_min[i])
          .Add("superseded", superseded)
          .Add("lifetime_min", end - created_min[i]);
    }
  }
  std::printf(
      "\nshape check: one checkpoint per table per DM phase (10 manifests "
      "-> checkpoint);\ncatalog_* tables are modified first in each phase, "
      "web_* last, so their\ncheckpoints are staggered in time exactly as "
      "in the paper's figure.\n");
  polaris::bench::PrintEngineMetrics(engine);
  report.SetMetrics(engine.MetricsSnapshot());
  report.Write();
  return 0;
}
