#ifndef POLARIS_BENCH_WORKLOADS_H_
#define POLARIS_BENCH_WORKLOADS_H_

// Shared workload generators for the benchmark harness (paper §7):
//  * a TPC-H-shaped `lineitem` generator (Figures 7-9),
//  * a 22-query TPC-H-like read suite (Figure 9),
//  * LST-Bench-style TPC-DS-like tables and the WP1/WP3 phase drivers
//    (Figures 10-12).
//
// The generators are deterministic from a seed. Scale is expressed in
// "scale units" (SF): physical row counts are scaled down relative to the
// paper's TB-scale runs, while the engine's cost_scale option inflates
// declared task costs back to paper scale for the virtual-time results
// (see DESIGN.md, substitutions table).

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/engine.h"
#include "format/column.h"
#include "format/schema.h"

namespace polaris::bench {

// --- TPC-H lineitem ------------------------------------------------------

format::Schema LineitemSchema();

/// Number of lineitem source files at a given scale factor: the paper
/// reports 40 source files at SF100 and 400 at SF1000 (0.4 files/SF),
/// with a small floor.
uint32_t LineitemSourceFiles(uint64_t scale_factor);

/// Generates `num_files` source batches totalling ~`total_rows` rows.
std::vector<format::RecordBatch> GenerateLineitemSources(uint64_t total_rows,
                                                         uint32_t num_files,
                                                         uint64_t seed);

// --- TPC-H-like query suite ------------------------------------------------

struct NamedQuery {
  std::string name;
  engine::QuerySpec spec;
};

/// 22 scan/filter/aggregate queries over lineitem with varying
/// selectivities and group-bys — the structural equivalent of the TPC-H
/// power run the paper uses in Figure 9.
std::vector<NamedQuery> TpchLikeQueries();

// --- LST-Bench / TPC-DS-like workloads (WP1, WP3) ---------------------------

/// The sales/returns tables data maintenance touches, in the order the
/// paper's Figure 11 shows them being modified (catalog first, store,
/// then web).
std::vector<std::string> DsTableNames();

format::Schema DsSchema();

/// Creates and loads all DS tables with `rows_per_table` rows each.
common::Status LoadDsTables(engine::PolarisEngine& engine,
                            uint64_t rows_per_table, uint64_t seed);

/// One Single-User (SU) phase: the query suite against every sales table.
/// Returns the total virtual time and advances the engine clock by it.
common::Result<common::Micros> RunSingleUserPhase(
    engine::PolarisEngine& engine);

/// One Data-Maintenance (DM) phase against every DS table, matching the
/// paper's Figure 11 recipe per table: 2 INSERT statements and 6 DELETE
/// statements (as separate transactions), with data compaction run twice
/// — once between each set of 3 DELETEs. Returns virtual time spent and
/// advances the clock.
common::Result<common::Micros> RunDataMaintenancePhase(
    engine::PolarisEngine& engine, int round, uint64_t seed,
    bool run_compaction = true);

/// Suggested engine options for the benchmark harness: read/write pools,
/// paper-scale virtual costs.
engine::EngineOptions BenchEngineOptions(uint64_t cost_scale);

/// Prints the engine's unified metrics snapshot (storage per-op counters
/// and latency histograms, cache, DCP and STO counters) to stdout,
/// prefixed by `label` when non-null. Drivers call this after their runs
/// so every benchmark leaves an auditable trace of what the storage stack
/// actually did.
void PrintEngineMetrics(engine::PolarisEngine& engine,
                        const char* label = nullptr);

}  // namespace polaris::bench

#endif  // POLARIS_BENCH_WORKLOADS_H_
