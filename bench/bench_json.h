#ifndef POLARIS_BENCH_BENCH_JSON_H_
#define POLARIS_BENCH_BENCH_JSON_H_

// Machine-readable benchmark artifacts. Every bench driver writes a
// BENCH_<name>.json file next to its stdout table so results can be
// diffed, plotted and regression-checked without scraping text:
//
//   {
//     "bench": "fig7_ingestion_scaling",
//     "config": { ... fixed parameters of the run ... },
//     "series": [ { ... one measured point ... }, ... ],
//     "metrics": { ... engine counters + histogram quantiles ... }
//   }
//
// The output directory defaults to the working directory; set
// POLARIS_BENCH_DIR to redirect (e.g. into a results folder).

#include <cstdint>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "engine/engine.h"
#include "obs/metrics.h"

namespace polaris::bench {

/// Insertion-ordered JSON object builder (values rendered eagerly).
class JsonObject {
 public:
  JsonObject& Add(const std::string& key, int64_t value);
  JsonObject& Add(const std::string& key, uint64_t value);
  JsonObject& Add(const std::string& key, uint32_t value);
  JsonObject& Add(const std::string& key, double value);
  JsonObject& Add(const std::string& key, bool value);
  JsonObject& Add(const std::string& key, const std::string& value);
  JsonObject& Add(const std::string& key, const char* value);
  /// `json` is spliced in verbatim — caller guarantees validity.
  JsonObject& AddRaw(const std::string& key, std::string json);

  std::string Render() const;

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// One bench run's artifact. Typical driver flow:
///
///   BenchReport report("fig7_ingestion_scaling");
///   report.config().Add("cost_scale", kCostScale);
///   for (...) report.AddRow().Add("sf", sf).Add("seconds", s);
///   report.SetMetrics(engine.MetricsSnapshot());
///   report.Write();
class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  JsonObject& config() { return config_; }

  /// Appends a point to the series; returned reference stays valid.
  JsonObject& AddRow();

  /// Captures counters plus per-histogram count/sum/p50/p99 under
  /// "metrics". Last call wins (drivers usually snapshot the final
  /// engine).
  void SetMetrics(const obs::MetricsSnapshot& snapshot);

  std::string ToJson() const;

  /// Writes BENCH_<name>.json into POLARIS_BENCH_DIR (default ".") and
  /// prints the path; returns false (with a message to stderr) on IO
  /// failure.
  bool Write() const;

 private:
  std::string name_;
  JsonObject config_;
  std::deque<JsonObject> rows_;
  JsonObject metrics_;
};

/// Renders a metrics snapshot the way BenchReport::SetMetrics embeds it:
/// a flat JSON object of counters plus per-histogram count/sum/p50/p99.
std::string MetricsToJson(const obs::MetricsSnapshot& snapshot);

/// For google-benchmark micros (which write their artifact through the
/// benchmark library, not BenchReport): stashes a snapshot that the
/// shared micro main splices into the artifact as a top-level "metrics"
/// section after the run. Last call wins.
void RecordArtifactMetrics(const obs::MetricsSnapshot& snapshot);

/// Splices the stashed RecordArtifactMetrics snapshot (or "{}" when none
/// was recorded) into the JSON object in `path` as a trailing "metrics"
/// key. Returns false (with a message to stderr) on IO/shape failure.
bool EmbedMetricsInArtifact(const std::string& path);

}  // namespace polaris::bench

#endif  // POLARIS_BENCH_BENCH_JSON_H_
