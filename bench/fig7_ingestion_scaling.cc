// Figure 7 (paper §7.1): load time for the TPC-H lineitem table at
// increasing scale factors under elastic resource allocation. The label
// above each paper bar is the linear factor of resources used; we print
// it as the node count the elastic allocator chose.
//
// Substitution (DESIGN.md): physical data is scaled down 1 SF -> 600 rows;
// the engine's cost_scale inflates declared task costs back to ~1 GB per
// SF so the virtual-time results are at paper scale. Parallelism is capped
// by the number of source files (0.4 per SF), exactly as in the paper.
//
// Expected shape: load time grows sub-linearly in data size; the resource
// factor grows with scale until the file-count cap binds.

#include <cstdio>

#include "bench_json.h"
#include "workloads.h"

using polaris::bench::BenchEngineOptions;
using polaris::bench::BenchReport;
using polaris::bench::GenerateLineitemSources;
using polaris::bench::LineitemSchema;
using polaris::bench::LineitemSourceFiles;
using polaris::engine::PolarisEngine;

namespace {
constexpr uint64_t kRowsPerSf = 600;
// 600 rows x ~112 declared bytes/row x 16000 ~= 1 GiB declared per SF.
constexpr uint64_t kCostScale = 16000;
}  // namespace

int main() {
  std::printf(
      "Figure 7: lineitem load time vs scale factor (elastic resources)\n"
      "paper: sub-linear growth; labels = linear resource factor\n\n");
  std::printf("%-8s %-13s %-12s %-16s %-18s %-14s\n", "SF(~GB)", "src_files",
              "rows", "resource_factor", "load_time_s(virt)",
              "GB_per_node_s");
  BenchReport report("fig7_ingestion_scaling");
  report.config()
      .Add("rows_per_sf", kRowsPerSf)
      .Add("cost_scale", kCostScale)
      .Add("target_micros_per_node", uint64_t{60'000'000});

  for (uint64_t sf : {1ULL, 10ULL, 100ULL, 1000ULL}) {
    PolarisEngine engine(BenchEngineOptions(kCostScale));
    // Previous-generation allocator granularity: ~60s of work per node.
    engine.topology()->allocator.target_micros_per_node = 60'000'000;

    auto meta = engine.CreateTable("lineitem", LineitemSchema());
    if (!meta.ok()) {
      std::fprintf(stderr, "create failed: %s\n",
                   meta.status().ToString().c_str());
      return 1;
    }
    uint32_t files = LineitemSourceFiles(sf);
    auto sources = GenerateLineitemSources(sf * kRowsPerSf, files, /*seed=*/7);

    polaris::dcp::JobMetrics job;
    auto status = engine.RunInTransaction(
        [&](polaris::txn::Transaction* txn) {
          return engine.BulkLoad(txn, "lineitem", sources, &job).status();
        });
    if (!status.ok()) {
      std::fprintf(stderr, "load failed: %s\n", status.ToString().c_str());
      return 1;
    }
    double seconds = static_cast<double>(job.makespan_micros) / 1e6;
    double gb = static_cast<double>(sf);
    std::printf("%-8llu %-13u %-12llu %-16u %-18.1f %-14.3f\n",
                static_cast<unsigned long long>(sf), files,
                static_cast<unsigned long long>(sf * kRowsPerSf),
                job.nodes_used, seconds,
                gb / (seconds * job.nodes_used));
    report.AddRow()
        .Add("sf", sf)
        .Add("source_files", files)
        .Add("rows", sf * kRowsPerSf)
        .Add("nodes", job.nodes_used)
        .Add("load_time_s_virtual", seconds)
        .Add("gb_per_node_s", gb / (seconds * job.nodes_used));
    if (sf == 1000) {
      polaris::bench::PrintEngineMetrics(engine, "SF=1000");
      report.SetMetrics(engine.MetricsSnapshot());
    }
  }
  std::printf(
      "\nshape check: time(SF=1000)/time(SF=1) should be far below 1000x\n");
  report.Write();
  return 0;
}
