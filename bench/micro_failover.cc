// Failover handoff cost: promotion latency and the write-unavailability
// window as a function of the journal tail the successor must drain. For
// each tail length a primary and a replica share one MemoryObjectStore;
// the replica's tailer is polled manually so the undrained tail at
// PROMOTE time is exact. The unavailability window is measured the way a
// client sees it: from the last write the old primary acked to the first
// write the new primary acks — it covers lease claim, segment seal, tail
// drain and journal re-priming. The old primary must observe its fencing
// (FailedPrecondition on the next write) in every round; acked commits
// must all be readable on the successor.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_json.h"
#include "common/clock.h"
#include "engine/engine.h"
#include "storage/memory_object_store.h"

using polaris::engine::EngineOptions;
using polaris::engine::PolarisEngine;

namespace {

polaris::format::Schema EventsSchema() {
  using polaris::format::ColumnType;
  return polaris::format::Schema(
      {{"id", ColumnType::kInt64}, {"val", ColumnType::kInt64}});
}

bool CommitOne(PolarisEngine* engine, int64_t id, bool quiet = false) {
  polaris::format::RecordBatch batch{EventsSchema()};
  (void)batch.AppendRow({polaris::format::Value::Int64(id),
                         polaris::format::Value::Int64(id * 10)});
  auto status = engine->RunInTransaction([&](polaris::txn::Transaction* txn) {
    return engine->Insert(txn, "events", batch).status();
  });
  if (!status.ok() && !quiet) {
    std::fprintf(stderr, "insert failed: %s\n", status.ToString().c_str());
  }
  return status.ok();
}

int64_t CountRows(PolarisEngine* engine) {
  int64_t rows = -1;
  auto status = engine->RunInTransaction([&](polaris::txn::Transaction* txn) {
    auto scanned = engine->Query(txn, "events", {{"id"}, {}, {}, {}});
    if (!scanned.ok()) return scanned.status();
    rows = static_cast<int64_t>(scanned->num_rows());
    return polaris::common::Status();
  });
  if (!status.ok()) {
    std::fprintf(stderr, "count failed: %s\n", status.ToString().c_str());
    return -1;
  }
  return rows;
}

}  // namespace

int main() {
  polaris::bench::BenchReport report("micro_failover");
  report.config()
      .Add("warmup_rows", uint64_t{64})
      .Add("records_per_segment", uint64_t{32})
      .Add("rounds_per_tail", uint64_t{5});

  std::printf("micro_failover: promotion cost vs undrained journal tail\n\n");
  std::printf("%-12s %-14s %-16s %-16s %-14s\n", "tail_records",
              "promote_ms", "unavail_ms_p50", "unavail_ms_max", "epoch");

  constexpr int kWarmupRows = 64;
  constexpr int kRounds = 5;
  for (int tail : {0, 32, 128, 512}) {
    std::vector<double> promote_ms, unavail_ms;
    uint64_t epoch = 0, drained = 0;
    for (int round = 0; round < kRounds; ++round) {
      polaris::common::SimClock clock(1'000'000);
      polaris::storage::MemoryObjectStore store(&clock);

      EngineOptions options;
      options.num_cells = 2;
      options.worker_threads = 2;
      options.sampler_period_micros = 0;
      options.journal_options.records_per_segment = 32;
      options.journal_options.checkpoint_every_records = 1u << 30;

      auto primary_opened = PolarisEngine::OpenOn(options, &store, &clock);
      if (!primary_opened.ok()) {
        std::fprintf(stderr, "primary open failed: %s\n",
                     primary_opened.status().ToString().c_str());
        return 1;
      }
      auto& primary = *primary_opened;
      if (!primary->CreateTable("events", EventsSchema()).ok()) return 1;

      EngineOptions replica_options = options;
      replica_options.replica = true;
      // Manual polling: the tail at promotion time is exactly `tail`.
      replica_options.replica_options.poll_interval_micros = 0;
      auto replica_opened =
          PolarisEngine::OpenOn(replica_options, &store, &clock);
      if (!replica_opened.ok()) {
        std::fprintf(stderr, "replica open failed: %s\n",
                     replica_opened.status().ToString().c_str());
        return 1;
      }
      auto& replica = *replica_opened;

      int64_t next_id = 0;
      for (int i = 0; i < kWarmupRows; ++i) {
        if (!CommitOne(primary.get(), next_id++)) return 1;
      }
      if (!replica->replica()->PollOnce().ok()) return 1;
      for (int i = 0; i < tail; ++i) {
        if (!CommitOne(primary.get(), next_id++)) return 1;
      }

      // t0 = last acked primary write; the window closes when the
      // successor acks its first write.
      auto t0 = std::chrono::steady_clock::now();
      auto promoted = replica->Promote();
      if (!promoted.ok()) {
        std::fprintf(stderr, "promote failed: %s\n",
                     promoted.status().ToString().c_str());
        return 1;
      }
      if (!CommitOne(replica.get(), next_id++)) return 1;
      unavail_ms.push_back(std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - t0)
                               .count());
      promote_ms.push_back(promoted->promote_ms);
      epoch = promoted->epoch;
      drained = promoted->tail_records;

      // Correctness gates: no acked commit lost, old primary fenced.
      if (CountRows(replica.get()) != next_id) {
        std::fprintf(stderr, "successor lost rows: %lld of %lld\n",
                     static_cast<long long>(CountRows(replica.get())),
                     static_cast<long long>(next_id));
        return 1;
      }
      if (CommitOne(primary.get(), 1'000'000, /*quiet=*/true)) {
        std::fprintf(stderr, "old primary accepted a write after fencing\n");
        return 1;
      }
    }
    std::sort(unavail_ms.begin(), unavail_ms.end());
    double p50 = unavail_ms[unavail_ms.size() / 2];
    double max = unavail_ms.back();
    double promote_p50 = promote_ms[promote_ms.size() / 2];
    std::printf("%-12d %-14.3f %-16.3f %-16.3f %-14llu\n", tail, promote_p50,
                p50, max, static_cast<unsigned long long>(epoch));
    report.AddRow()
        .Add("tail_records", static_cast<uint64_t>(tail))
        .Add("drained_records", drained)
        .Add("promote_ms_p50", promote_p50)
        .Add("unavail_ms_p50", p50)
        .Add("unavail_ms_max", max);
  }

  std::printf(
      "\nshape check: the window grows with the undrained tail (the drain is "
      "the\nonly O(tail) step); at tail 0 it is the fixed cost of lease "
      "claim + seal +\nre-prime. Every round asserts zero acked-commit loss "
      "and that the fenced\nprimary rejects its next write.\n");
  report.Write();
  return 0;
}
