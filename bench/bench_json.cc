#include "bench_json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>

namespace polaris::bench {

namespace {

std::string QuoteJson(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  out.push_back('"');
  for (char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

}  // namespace

JsonObject& JsonObject::Add(const std::string& key, int64_t value) {
  return AddRaw(key, std::to_string(value));
}
JsonObject& JsonObject::Add(const std::string& key, uint64_t value) {
  return AddRaw(key, std::to_string(value));
}
JsonObject& JsonObject::Add(const std::string& key, uint32_t value) {
  return AddRaw(key, std::to_string(value));
}
JsonObject& JsonObject::Add(const std::string& key, double value) {
  if (!std::isfinite(value)) return AddRaw(key, "null");
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return AddRaw(key, buf);
}
JsonObject& JsonObject::Add(const std::string& key, bool value) {
  return AddRaw(key, value ? "true" : "false");
}
JsonObject& JsonObject::Add(const std::string& key,
                            const std::string& value) {
  return AddRaw(key, QuoteJson(value));
}
JsonObject& JsonObject::Add(const std::string& key, const char* value) {
  return AddRaw(key, QuoteJson(value));
}
JsonObject& JsonObject::AddRaw(const std::string& key, std::string json) {
  fields_.emplace_back(key, std::move(json));
  return *this;
}

std::string JsonObject::Render() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : fields_) {
    if (!first) out += ", ";
    out += QuoteJson(key);
    out += ": ";
    out += value;
    first = false;
  }
  out += "}";
  return out;
}

JsonObject& BenchReport::AddRow() {
  rows_.emplace_back();
  return rows_.back();
}

namespace {

JsonObject MetricsObject(const obs::MetricsSnapshot& snapshot) {
  JsonObject metrics;
  for (const auto& [name, value] : snapshot.counters) {
    metrics.Add(name, value);
  }
  for (const auto& [name, hist] : snapshot.histograms) {
    metrics.Add(name + ".count", hist.count);
    metrics.Add(name + ".sum_us", static_cast<int64_t>(hist.sum));
    metrics.Add(name + ".p50_us", hist.ApproxQuantile(0.5));
    metrics.Add(name + ".p99_us", hist.ApproxQuantile(0.99));
  }
  return metrics;
}

// Stash for the google-benchmark micros (single-threaded at the points
// RecordArtifactMetrics / EmbedMetricsInArtifact run).
std::string g_artifact_metrics_json;  // NOLINT

}  // namespace

void BenchReport::SetMetrics(const obs::MetricsSnapshot& snapshot) {
  metrics_ = MetricsObject(snapshot);
}

std::string MetricsToJson(const obs::MetricsSnapshot& snapshot) {
  return MetricsObject(snapshot).Render();
}

void RecordArtifactMetrics(const obs::MetricsSnapshot& snapshot) {
  g_artifact_metrics_json = MetricsToJson(snapshot);
}

bool EmbedMetricsInArtifact(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_json: cannot read %s\n", path.c_str());
    return false;
  }
  std::string body((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  size_t close = body.find_last_of('}');
  if (close == std::string::npos) {
    std::fprintf(stderr, "bench_json: %s is not a JSON object\n",
                 path.c_str());
    return false;
  }
  const std::string metrics =
      g_artifact_metrics_json.empty() ? "{}" : g_artifact_metrics_json;
  body.insert(close, ",\n  \"metrics\": " + metrics + "\n");
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "bench_json: cannot rewrite %s\n", path.c_str());
    return false;
  }
  out << body;
  out.close();
  return static_cast<bool>(out);
}

std::string BenchReport::ToJson() const {
  std::string out = "{\n  \"bench\": " + QuoteJson(name_) + ",\n";
  out += "  \"config\": " + config_.Render() + ",\n";
  out += "  \"series\": [\n";
  bool first = true;
  for (const auto& row : rows_) {
    if (!first) out += ",\n";
    out += "    " + row.Render();
    first = false;
  }
  out += "\n  ],\n";
  out += "  \"metrics\": " + metrics_.Render() + "\n}\n";
  return out;
}

bool BenchReport::Write() const {
  std::string dir = ".";
  if (const char* env = std::getenv("POLARIS_BENCH_DIR")) {
    if (env[0] != '\0') dir = env;
  }
  std::string path = dir + "/BENCH_" + name_ + ".json";
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "bench_json: cannot open %s\n", path.c_str());
    return false;
  }
  out << ToJson();
  out.close();
  if (!out) {
    std::fprintf(stderr, "bench_json: write failed for %s\n", path.c_str());
    return false;
  }
  std::printf("[bench artifact: %s]\n", path.c_str());
  return true;
}

}  // namespace polaris::bench
