// Figure 9 (paper §7.2): per-query execution times for the 22 TPC-H-like
// queries at scale, with and without a concurrent (uncommitted) data load
// into the same table.
//
// Expected shape: the two series coincide — Polaris isolates the load on
// the write pool, snapshot isolation pins each query to a consistent
// committed snapshot, and caches stay warm because committed data files
// are immutable. We additionally report cache hit counts to show the
// warm-cache claim holds.

#include <chrono>
#include <cstdio>

#include "bench_json.h"
#include "workloads.h"

using polaris::bench::BenchEngineOptions;
using polaris::bench::BenchReport;
using polaris::bench::GenerateLineitemSources;
using polaris::bench::LineitemSchema;
using polaris::bench::LineitemSourceFiles;
using polaris::bench::TpchLikeQueries;
using polaris::engine::PolarisEngine;
using polaris::engine::QueryStats;

namespace {
constexpr uint64_t kScaleFactor = 100;  // ~60k physical rows, 40 files
constexpr uint64_t kRowsPerSf = 600;
constexpr uint64_t kCostScale = 16000;

struct QueryRun {
  double virt_ms = 0;
  double real_ms = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
};

QueryRun RunQuery(PolarisEngine& engine, const polaris::bench::NamedQuery& q) {
  auto txn = engine.Begin();
  QueryStats stats;
  auto start = std::chrono::steady_clock::now();
  auto result = engine.Query(txn->get(), "lineitem", q.spec, &stats);
  auto end = std::chrono::steady_clock::now();
  (void)engine.Abort(txn->get());
  if (!result.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", q.name.c_str(),
                 result.status().ToString().c_str());
    std::exit(1);
  }
  QueryRun run;
  run.virt_ms = static_cast<double>(stats.job.makespan_micros) / 1e3;
  run.real_ms =
      std::chrono::duration<double, std::milli>(end - start).count();
  run.cache_hits = stats.cache_after.hits - stats.cache_before.hits;
  run.cache_misses = stats.cache_after.misses - stats.cache_before.misses;
  return run;
}

}  // namespace

int main() {
  PolarisEngine engine(BenchEngineOptions(kCostScale));
  auto meta = engine.CreateTable("lineitem", LineitemSchema());
  if (!meta.ok()) return 1;
  auto sources = GenerateLineitemSources(
      kScaleFactor * kRowsPerSf, LineitemSourceFiles(kScaleFactor), 7);
  auto load = engine.RunInTransaction([&](polaris::txn::Transaction* txn) {
    return engine.BulkLoad(txn, "lineitem", sources).status();
  });
  if (!load.ok()) {
    std::fprintf(stderr, "load failed: %s\n", load.ToString().c_str());
    return 1;
  }

  auto queries = TpchLikeQueries();

  // Cold run to warm the BE caches (the paper averages 3 warm runs after
  // one cold run).
  for (const auto& q : queries) (void)RunQuery(engine, q);

  // Series 1: isolated warm runs.
  std::vector<QueryRun> isolated;
  for (const auto& q : queries) isolated.push_back(RunQuery(engine, q));

  // Start a concurrent load into the same table in a separate transaction
  // that stays uncommitted for the whole query run (as in the paper).
  auto concurrent_txn = engine.Begin();
  if (!concurrent_txn.ok()) return 1;
  auto more = GenerateLineitemSources(kScaleFactor * kRowsPerSf,
                                      LineitemSourceFiles(kScaleFactor), 8);
  auto concurrent_load =
      engine.BulkLoad(concurrent_txn->get(), "lineitem", more);
  if (!concurrent_load.ok()) {
    std::fprintf(stderr, "concurrent load failed\n");
    return 1;
  }

  // Series 2: warm runs with the uncommitted concurrent load in flight.
  std::vector<QueryRun> concurrent;
  for (const auto& q : queries) concurrent.push_back(RunQuery(engine, q));
  (void)engine.Abort(concurrent_txn->get());

  std::printf(
      "Figure 9: TPC-H-like query times at SF%llu, isolated vs concurrent "
      "load\n\n",
      static_cast<unsigned long long>(kScaleFactor));
  std::printf("%-6s %-16s %-22s %-12s %-12s\n", "query",
              "isolated_ms(virt)", "with_load_ms(virt)", "cache_hits",
              "cache_misses");
  BenchReport report("fig9_query_concurrency");
  report.config()
      .Add("scale_factor", kScaleFactor)
      .Add("rows_per_sf", kRowsPerSf)
      .Add("cost_scale", kCostScale)
      .Add("queries", static_cast<uint64_t>(queries.size()));
  double sum_isolated = 0;
  double sum_concurrent = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    std::printf("%-6s %-16.2f %-22.2f %-12llu %-12llu\n",
                queries[i].name.c_str(), isolated[i].virt_ms,
                concurrent[i].virt_ms,
                static_cast<unsigned long long>(concurrent[i].cache_hits),
                static_cast<unsigned long long>(concurrent[i].cache_misses));
    report.AddRow()
        .Add("query", queries[i].name)
        .Add("isolated_ms_virtual", isolated[i].virt_ms)
        .Add("with_load_ms_virtual", concurrent[i].virt_ms)
        .Add("cache_hits", concurrent[i].cache_hits)
        .Add("cache_misses", concurrent[i].cache_misses);
    sum_isolated += isolated[i].virt_ms;
    sum_concurrent += concurrent[i].virt_ms;
  }
  std::printf("\ntotal: isolated %.1f ms, with concurrent load %.1f ms\n",
              sum_isolated, sum_concurrent);
  std::printf(
      "shape check: the two series coincide (WLM separation + SI + "
      "immutable-file caches),\nand warm runs show zero cache misses.\n");
  polaris::bench::PrintEngineMetrics(engine);
  report.SetMetrics(engine.MetricsSnapshot());
  report.Write();
  return 0;
}
