// Shared main for the google-benchmark micros: unless the caller already
// passed --benchmark_out, inject
//   --benchmark_out=BENCH_<program>.json --benchmark_out_format=json
// so every micro run leaves the same machine-readable artifact the fig
// drivers produce (see bench_json.h). POLARIS_BENCH_DIR redirects the
// output directory, matching BenchReport::Write.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.h"

int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true;
  }
  std::string out_flag;
  std::string fmt_flag = "--benchmark_out_format=json";
  std::string artifact_path;
  if (!has_out) {
    std::string prog = argv[0];
    size_t slash = prog.find_last_of('/');
    if (slash != std::string::npos) prog = prog.substr(slash + 1);
    std::string dir = ".";
    if (const char* env = std::getenv("POLARIS_BENCH_DIR")) {
      if (env[0] != '\0') dir = env;
    }
    artifact_path = dir + "/BENCH_" + prog + ".json";
    out_flag = "--benchmark_out=" + artifact_path;
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
    std::printf("[bench artifact: %s]\n", artifact_path.c_str());
  }
  int new_argc = static_cast<int>(args.size());
  benchmark::Initialize(&new_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(new_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  // Splice the engine counters the fixtures stashed (see
  // RecordArtifactMetrics) into the artifact so every BENCH_*.json carries
  // a "metrics" section, matching the BenchReport drivers.
  if (!artifact_path.empty()) {
    (void)polaris::bench::EmbedMetricsInArtifact(artifact_path);
  }
  return 0;
}
