// Figure 10 (paper §7.3): LST-Bench WP1 — alternating Single-User query
// phases (SU) and Data-Maintenance phases (DM). Data maintenance
// fragments storage (red); the STO discovers it from scan statistics and
// compacts the affected files, restoring health (green) within minutes.
//
// Output: one green/red band timeline per table, on the virtual clock.

#include <cstdio>
#include <map>
#include <vector>

#include "bench_json.h"
#include "workloads.h"

using polaris::bench::BenchEngineOptions;
using polaris::bench::BenchReport;
using polaris::bench::DsTableNames;
using polaris::bench::LoadDsTables;
using polaris::bench::RunDataMaintenancePhase;
using polaris::bench::RunSingleUserPhase;
using polaris::engine::PolarisEngine;

namespace {

double Minutes(polaris::common::Micros t0, polaris::common::Micros t) {
  return static_cast<double>(t - t0) / 60e6;
}

}  // namespace

int main() {
  auto options = BenchEngineOptions(/*cost_scale=*/2000);
  options.sto_options.min_file_rows = 64;
  options.sto_options.max_deleted_fraction = 0.1;
  PolarisEngine engine(options);
  // The SU stream runs on a fixed read pool so that virtual makespans are
  // directly proportional to work done; elastic node quantization would
  // otherwise mask the per-phase differences this figure plots.
  {
    auto& read_pool = engine.topology()->pools["read"];
    read_pool.mode = polaris::dcp::AllocationMode::kFixed;
    read_pool.node_count = 4;
  }
  auto load = LoadDsTables(engine, /*rows_per_table=*/4000, /*seed=*/3);
  if (!load.ok()) {
    std::fprintf(stderr, "load failed: %s\n", load.ToString().c_str());
    return 1;
  }
  polaris::common::Micros t0 = engine.clock()->Now();

  struct Band {
    double red_at_min = 0;
    double green_at_min = 0;
  };
  std::map<std::string, std::vector<Band>> bands;

  std::printf(
      "Figure 10: WP1 storage health across SU/DM phases (virtual "
      "minutes)\n\n");

  constexpr int kRounds = 3;
  for (int round = 1; round <= kRounds; ++round) {
    auto su = RunSingleUserPhase(engine);
    if (!su.ok()) return 1;
    std::printf("[%7.1f min] SU phase %d done (%.1f virt min of queries)\n",
                Minutes(t0, engine.clock()->Now()), round,
                static_cast<double>(*su) / 60e6);

    // DM phase without inline compaction: the STO must *discover* the
    // fragmentation autonomously.
    auto dm = RunDataMaintenancePhase(engine, round, /*seed=*/11,
                                      /*run_compaction=*/false);
    if (!dm.ok()) return 1;
    std::printf("[%7.1f min] DM phase %d done\n",
                Minutes(t0, engine.clock()->Now()), round);

    // Scan statistics (health evaluation) now report the tables red.
    std::map<std::string, double> red_at;
    for (const auto& table : DsTableNames()) {
      auto meta = engine.GetTable(table);
      if (!meta.ok()) return 1;
      auto health = engine.sto()->EvaluateHealth(meta->table_id);
      if (!health.ok()) return 1;
      if (!health->healthy()) {
        red_at[table] = Minutes(t0, engine.clock()->Now());
      }
    }

    // "Within a few minutes, data compaction occurs for the affected
    // files": one STO sweep, a few virtual minutes later.
    engine.clock()->Advance(3 * 60'000'000LL);
    auto sweep = engine.sto()->RunOnce();
    if (!sweep.ok() && !sweep.IsConflict()) {
      std::fprintf(stderr, "sto sweep failed: %s\n",
                   sweep.ToString().c_str());
      return 1;
    }
    engine.clock()->Advance(60'000'000LL);

    for (const auto& table : DsTableNames()) {
      auto meta = engine.GetTable(table);
      if (!meta.ok()) return 1;
      auto health = engine.sto()->EvaluateHealth(meta->table_id);
      if (!health.ok()) return 1;
      if (red_at.count(table) != 0) {
        Band band;
        band.red_at_min = red_at[table];
        band.green_at_min = health->healthy()
                                ? Minutes(t0, engine.clock()->Now())
                                : -1.0;
        bands[table].push_back(band);
      }
    }
  }

  std::printf("\nper-table health bands (red interval -> healed):\n");
  std::printf("%-16s %-8s %-12s %-12s %-14s\n", "table", "round",
              "red_at_min", "green_at_min", "red_for_min");
  BenchReport report("fig10_compaction_health");
  report.config()
      .Add("cost_scale", uint64_t{2000})
      .Add("rows_per_table", uint64_t{4000})
      .Add("rounds", uint64_t{kRounds})
      .Add("min_file_rows", uint64_t{64})
      .Add("max_deleted_fraction", 0.1);
  for (const auto& [table, table_bands] : bands) {
    for (size_t i = 0; i < table_bands.size(); ++i) {
      const Band& band = table_bands[i];
      std::printf("%-16s %-8zu %-12.1f %-12.1f %-14.1f\n", table.c_str(),
                  i + 1, band.red_at_min, band.green_at_min,
                  band.green_at_min - band.red_at_min);
      report.AddRow()
          .Add("table", table)
          .Add("round", static_cast<uint64_t>(i + 1))
          .Add("red_at_min", band.red_at_min)
          .Add("green_at_min", band.green_at_min)
          .Add("red_for_min", band.green_at_min - band.red_at_min);
    }
  }
  std::printf(
      "\nshape check: every DM phase turns tables red; autonomous "
      "compaction returns\nall tables to green within a few virtual "
      "minutes of the next sweep.\n");
  polaris::bench::PrintEngineMetrics(engine);
  report.SetMetrics(engine.MetricsSnapshot());
  report.Write();
  return 0;
}
