// Replica apply lag as a function of primary write rate, plus the
// parallel-vs-serial catch-up ablation. A primary and a replica share one
// MemoryObjectStore; the replica's background tailer polls on a short
// wall-clock cadence, and each burst of primary commits is timed from its
// last ack to the moment the replica watermark reaches the tip (the lag a
// read-your-writes client would observe). The catch-up half replays the
// full journal cold through JournalReplayer::Bootstrap at parallelism 1
// and 4 — the parallel scan must produce a bit-identical state; the
// speedup is reported but not gated (CI runners may have one core).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "catalog/journal_replayer.h"
#include "common/clock.h"
#include "engine/engine.h"
#include "storage/memory_object_store.h"

using polaris::engine::EngineOptions;
using polaris::engine::PolarisEngine;

namespace {

polaris::format::Schema EventsSchema() {
  using polaris::format::ColumnType;
  return polaris::format::Schema(
      {{"id", ColumnType::kInt64}, {"val", ColumnType::kInt64}});
}

double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  size_t idx = static_cast<size_t>(p * (samples.size() - 1));
  return samples[idx];
}

}  // namespace

int main() {
  polaris::common::SimClock clock(1'000'000);
  polaris::storage::MemoryObjectStore store(&clock);

  EngineOptions primary_options;
  primary_options.num_cells = 2;
  primary_options.worker_threads = 2;
  primary_options.sampler_period_micros = 0;
  // Many small segments (so the catch-up ablation has real fan-out) and
  // no automatic checkpoint (so cold bootstrap replays the whole log).
  primary_options.journal_options.records_per_segment = 8;
  primary_options.journal_options.checkpoint_every_records = 1u << 30;

  auto primary_opened = PolarisEngine::OpenOn(primary_options, &store, &clock);
  if (!primary_opened.ok()) {
    std::fprintf(stderr, "primary open failed: %s\n",
                 primary_opened.status().ToString().c_str());
    return 1;
  }
  auto& primary = *primary_opened;
  if (!primary->CreateTable("events", EventsSchema()).ok()) return 1;

  EngineOptions replica_options = primary_options;
  replica_options.replica = true;
  replica_options.replica_options.poll_interval_micros = 2'000;
  auto replica_opened = PolarisEngine::OpenOn(replica_options, &store, &clock);
  if (!replica_opened.ok()) {
    std::fprintf(stderr, "replica open failed: %s\n",
                 replica_opened.status().ToString().c_str());
    return 1;
  }
  auto& replica = *replica_opened;

  polaris::bench::BenchReport report("micro_replica_lag");
  report.config()
      .Add("poll_interval_us", uint64_t{2000})
      .Add("records_per_segment", uint64_t{8})
      .Add("bursts_per_rate", uint64_t{20});

  std::printf("micro_replica_lag: apply lag vs primary write rate\n\n");
  std::printf("%-12s %-14s %-14s %-14s\n", "write_rate", "p50_lag_us",
              "p99_lag_us", "max_lag_us");

  auto commit_one = [&](int64_t id) -> bool {
    polaris::format::RecordBatch batch{EventsSchema()};
    (void)batch.AppendRow({polaris::format::Value::Int64(id),
                           polaris::format::Value::Int64(id * 10)});
    auto status =
        primary->RunInTransaction([&](polaris::txn::Transaction* txn) {
          return primary->Insert(txn, "events", batch).status();
        });
    if (!status.ok()) {
      std::fprintf(stderr, "insert failed: %s\n", status.ToString().c_str());
    }
    return status.ok();
  };

  constexpr int kBursts = 20;
  constexpr double kLagCeilingUs = 5e6;
  int64_t next_id = 0;
  for (int write_rate : {1, 8, 32}) {
    std::vector<double> lag_us;
    lag_us.reserve(kBursts);
    for (int burst = 0; burst < kBursts; ++burst) {
      for (int i = 0; i < write_rate; ++i) {
        if (!commit_one(next_id++)) return 1;
      }
      const uint64_t tip = primary->catalog()->store()->LatestCommitSeq();
      auto t0 = std::chrono::steady_clock::now();
      while (replica->replica()->watermark() < tip) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        if (std::chrono::duration<double, std::micro>(
                std::chrono::steady_clock::now() - t0)
                .count() > kLagCeilingUs) {
          std::fprintf(stderr,
                       "replica never caught up to seq %llu (watermark %llu)\n",
                       static_cast<unsigned long long>(tip),
                       static_cast<unsigned long long>(
                           replica->replica()->watermark()));
          return 1;
        }
      }
      lag_us.push_back(std::chrono::duration<double, std::micro>(
                           std::chrono::steady_clock::now() - t0)
                           .count());
    }
    double p50 = Percentile(lag_us, 0.50);
    double p99 = Percentile(lag_us, 0.99);
    double max = *std::max_element(lag_us.begin(), lag_us.end());
    std::printf("%-12d %-14.0f %-14.0f %-14.0f\n", write_rate, p50, p99, max);
    report.AddRow()
        .Add("write_rate", static_cast<uint64_t>(write_rate))
        .Add("p50_lag_us", p50)
        .Add("p99_lag_us", p99)
        .Add("max_lag_us", max);
    if (p99 > kLagCeilingUs) {
      std::fprintf(stderr, "p99 apply lag %.0fus exceeds %.0fus ceiling\n",
                   p99, kLagCeilingUs);
      return 1;
    }
  }

  // Sanity: after the last burst drained, the replica catalog sits at the
  // primary's exact sequence.
  const uint64_t primary_seq = primary->catalog()->store()->LatestCommitSeq();
  if (replica->replica()->watermark() != primary_seq) {
    std::fprintf(stderr, "watermark %llu != primary seq %llu\n",
                 static_cast<unsigned long long>(
                     replica->replica()->watermark()),
                 static_cast<unsigned long long>(primary_seq));
    return 1;
  }

  // --- Cold catch-up: serial vs parallel segment scan ---------------------
  polaris::catalog::JournalReplayer replayer(
      &store, primary_options.journal_options);
  auto timed_bootstrap = [&](size_t parallelism, double* ms)
      -> polaris::common::Result<
          polaris::catalog::JournalReplayer::BootstrapResult> {
    auto t0 = std::chrono::steady_clock::now();
    auto result = replayer.Bootstrap(parallelism);
    *ms = std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - t0)
              .count();
    return result;
  };
  double serial_ms = 0, parallel_ms = 0;
  auto serial = timed_bootstrap(1, &serial_ms);
  auto parallel = timed_bootstrap(4, &parallel_ms);
  if (!serial.ok() || !parallel.ok()) {
    std::fprintf(stderr, "bootstrap failed\n");
    return 1;
  }
  // The parallel scan must be bit-identical to the serial one.
  if (serial->state.commit_seq != parallel->state.commit_seq ||
      serial->state.records_replayed != parallel->state.records_replayed ||
      serial->state.rows != parallel->state.rows) {
    std::fprintf(stderr, "parallel bootstrap diverged from serial scan\n");
    return 1;
  }
  if (serial->state.commit_seq != primary_seq) {
    std::fprintf(stderr, "bootstrap stopped at %llu, primary at %llu\n",
                 static_cast<unsigned long long>(serial->state.commit_seq),
                 static_cast<unsigned long long>(primary_seq));
    return 1;
  }
  double speedup = parallel_ms > 0 ? serial_ms / parallel_ms : 0;
  std::printf(
      "\ncold catch-up over %llu segments: serial %.2fms, parallel(4) "
      "%.2fms, speedup %.2fx\n",
      static_cast<unsigned long long>(serial->state.segments_scanned),
      serial_ms, parallel_ms, speedup);
  report.AddRow()
      .Add("catchup_segments", serial->state.segments_scanned)
      .Add("catchup_records", serial->state.records_replayed)
      .Add("catchup_serial_ms", serial_ms)
      .Add("catchup_parallel_ms", parallel_ms)
      .Add("catchup_speedup", speedup);

  report.SetMetrics(replica->MetricsSnapshot());
  std::printf(
      "\nshape check: apply lag tracks the poll cadence (a few ms), not the "
      "burst\nsize — the tailer drains a whole burst in one poll. The "
      "parallel cold\ncatch-up is bit-identical to the serial scan; its "
      "speedup approaches the\ncore count on multi-core hosts.\n");
  report.Write();
  return 0;
}
