
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/catalog/catalog_db.cc" "src/CMakeFiles/polaris.dir/catalog/catalog_db.cc.o" "gcc" "src/CMakeFiles/polaris.dir/catalog/catalog_db.cc.o.d"
  "/root/repo/src/catalog/mvcc.cc" "src/CMakeFiles/polaris.dir/catalog/mvcc.cc.o" "gcc" "src/CMakeFiles/polaris.dir/catalog/mvcc.cc.o.d"
  "/root/repo/src/common/bytes.cc" "src/CMakeFiles/polaris.dir/common/bytes.cc.o" "gcc" "src/CMakeFiles/polaris.dir/common/bytes.cc.o.d"
  "/root/repo/src/common/clock.cc" "src/CMakeFiles/polaris.dir/common/clock.cc.o" "gcc" "src/CMakeFiles/polaris.dir/common/clock.cc.o.d"
  "/root/repo/src/common/guid.cc" "src/CMakeFiles/polaris.dir/common/guid.cc.o" "gcc" "src/CMakeFiles/polaris.dir/common/guid.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/polaris.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/polaris.dir/common/logging.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/polaris.dir/common/status.cc.o" "gcc" "src/CMakeFiles/polaris.dir/common/status.cc.o.d"
  "/root/repo/src/dcp/scheduler.cc" "src/CMakeFiles/polaris.dir/dcp/scheduler.cc.o" "gcc" "src/CMakeFiles/polaris.dir/dcp/scheduler.cc.o.d"
  "/root/repo/src/dcp/thread_pool.cc" "src/CMakeFiles/polaris.dir/dcp/thread_pool.cc.o" "gcc" "src/CMakeFiles/polaris.dir/dcp/thread_pool.cc.o.d"
  "/root/repo/src/dcp/topology.cc" "src/CMakeFiles/polaris.dir/dcp/topology.cc.o" "gcc" "src/CMakeFiles/polaris.dir/dcp/topology.cc.o.d"
  "/root/repo/src/engine/engine.cc" "src/CMakeFiles/polaris.dir/engine/engine.cc.o" "gcc" "src/CMakeFiles/polaris.dir/engine/engine.cc.o.d"
  "/root/repo/src/exec/aggregate.cc" "src/CMakeFiles/polaris.dir/exec/aggregate.cc.o" "gcc" "src/CMakeFiles/polaris.dir/exec/aggregate.cc.o.d"
  "/root/repo/src/exec/data_cache.cc" "src/CMakeFiles/polaris.dir/exec/data_cache.cc.o" "gcc" "src/CMakeFiles/polaris.dir/exec/data_cache.cc.o.d"
  "/root/repo/src/exec/dml.cc" "src/CMakeFiles/polaris.dir/exec/dml.cc.o" "gcc" "src/CMakeFiles/polaris.dir/exec/dml.cc.o.d"
  "/root/repo/src/exec/expression.cc" "src/CMakeFiles/polaris.dir/exec/expression.cc.o" "gcc" "src/CMakeFiles/polaris.dir/exec/expression.cc.o.d"
  "/root/repo/src/exec/join.cc" "src/CMakeFiles/polaris.dir/exec/join.cc.o" "gcc" "src/CMakeFiles/polaris.dir/exec/join.cc.o.d"
  "/root/repo/src/exec/scan.cc" "src/CMakeFiles/polaris.dir/exec/scan.cc.o" "gcc" "src/CMakeFiles/polaris.dir/exec/scan.cc.o.d"
  "/root/repo/src/format/column.cc" "src/CMakeFiles/polaris.dir/format/column.cc.o" "gcc" "src/CMakeFiles/polaris.dir/format/column.cc.o.d"
  "/root/repo/src/format/encoding.cc" "src/CMakeFiles/polaris.dir/format/encoding.cc.o" "gcc" "src/CMakeFiles/polaris.dir/format/encoding.cc.o.d"
  "/root/repo/src/format/file_reader.cc" "src/CMakeFiles/polaris.dir/format/file_reader.cc.o" "gcc" "src/CMakeFiles/polaris.dir/format/file_reader.cc.o.d"
  "/root/repo/src/format/file_writer.cc" "src/CMakeFiles/polaris.dir/format/file_writer.cc.o" "gcc" "src/CMakeFiles/polaris.dir/format/file_writer.cc.o.d"
  "/root/repo/src/format/schema.cc" "src/CMakeFiles/polaris.dir/format/schema.cc.o" "gcc" "src/CMakeFiles/polaris.dir/format/schema.cc.o.d"
  "/root/repo/src/format/value.cc" "src/CMakeFiles/polaris.dir/format/value.cc.o" "gcc" "src/CMakeFiles/polaris.dir/format/value.cc.o.d"
  "/root/repo/src/lst/checkpoint.cc" "src/CMakeFiles/polaris.dir/lst/checkpoint.cc.o" "gcc" "src/CMakeFiles/polaris.dir/lst/checkpoint.cc.o.d"
  "/root/repo/src/lst/deletion_vector.cc" "src/CMakeFiles/polaris.dir/lst/deletion_vector.cc.o" "gcc" "src/CMakeFiles/polaris.dir/lst/deletion_vector.cc.o.d"
  "/root/repo/src/lst/manifest.cc" "src/CMakeFiles/polaris.dir/lst/manifest.cc.o" "gcc" "src/CMakeFiles/polaris.dir/lst/manifest.cc.o.d"
  "/root/repo/src/lst/manifest_io.cc" "src/CMakeFiles/polaris.dir/lst/manifest_io.cc.o" "gcc" "src/CMakeFiles/polaris.dir/lst/manifest_io.cc.o.d"
  "/root/repo/src/lst/snapshot_builder.cc" "src/CMakeFiles/polaris.dir/lst/snapshot_builder.cc.o" "gcc" "src/CMakeFiles/polaris.dir/lst/snapshot_builder.cc.o.d"
  "/root/repo/src/lst/table_snapshot.cc" "src/CMakeFiles/polaris.dir/lst/table_snapshot.cc.o" "gcc" "src/CMakeFiles/polaris.dir/lst/table_snapshot.cc.o.d"
  "/root/repo/src/sql/lexer.cc" "src/CMakeFiles/polaris.dir/sql/lexer.cc.o" "gcc" "src/CMakeFiles/polaris.dir/sql/lexer.cc.o.d"
  "/root/repo/src/sql/parser.cc" "src/CMakeFiles/polaris.dir/sql/parser.cc.o" "gcc" "src/CMakeFiles/polaris.dir/sql/parser.cc.o.d"
  "/root/repo/src/sql/session.cc" "src/CMakeFiles/polaris.dir/sql/session.cc.o" "gcc" "src/CMakeFiles/polaris.dir/sql/session.cc.o.d"
  "/root/repo/src/sto/daemon.cc" "src/CMakeFiles/polaris.dir/sto/daemon.cc.o" "gcc" "src/CMakeFiles/polaris.dir/sto/daemon.cc.o.d"
  "/root/repo/src/sto/delta_publisher.cc" "src/CMakeFiles/polaris.dir/sto/delta_publisher.cc.o" "gcc" "src/CMakeFiles/polaris.dir/sto/delta_publisher.cc.o.d"
  "/root/repo/src/sto/delta_reader.cc" "src/CMakeFiles/polaris.dir/sto/delta_reader.cc.o" "gcc" "src/CMakeFiles/polaris.dir/sto/delta_reader.cc.o.d"
  "/root/repo/src/sto/sto.cc" "src/CMakeFiles/polaris.dir/sto/sto.cc.o" "gcc" "src/CMakeFiles/polaris.dir/sto/sto.cc.o.d"
  "/root/repo/src/storage/fault_injection_store.cc" "src/CMakeFiles/polaris.dir/storage/fault_injection_store.cc.o" "gcc" "src/CMakeFiles/polaris.dir/storage/fault_injection_store.cc.o.d"
  "/root/repo/src/storage/memory_object_store.cc" "src/CMakeFiles/polaris.dir/storage/memory_object_store.cc.o" "gcc" "src/CMakeFiles/polaris.dir/storage/memory_object_store.cc.o.d"
  "/root/repo/src/storage/path_util.cc" "src/CMakeFiles/polaris.dir/storage/path_util.cc.o" "gcc" "src/CMakeFiles/polaris.dir/storage/path_util.cc.o.d"
  "/root/repo/src/txn/transaction_manager.cc" "src/CMakeFiles/polaris.dir/txn/transaction_manager.cc.o" "gcc" "src/CMakeFiles/polaris.dir/txn/transaction_manager.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
