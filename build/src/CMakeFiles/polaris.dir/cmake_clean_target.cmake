file(REMOVE_RECURSE
  "libpolaris.a"
)
