# Empty compiler generated dependencies file for polaris.
# This may be replaced when dependencies are built.
