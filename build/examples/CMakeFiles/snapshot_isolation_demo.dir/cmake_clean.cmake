file(REMOVE_RECURSE
  "CMakeFiles/snapshot_isolation_demo.dir/snapshot_isolation_demo.cpp.o"
  "CMakeFiles/snapshot_isolation_demo.dir/snapshot_isolation_demo.cpp.o.d"
  "snapshot_isolation_demo"
  "snapshot_isolation_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snapshot_isolation_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
