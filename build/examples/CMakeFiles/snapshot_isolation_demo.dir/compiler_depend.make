# Empty compiler generated dependencies file for snapshot_isolation_demo.
# This may be replaced when dependencies are built.
