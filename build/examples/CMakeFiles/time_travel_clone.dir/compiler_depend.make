# Empty compiler generated dependencies file for time_travel_clone.
# This may be replaced when dependencies are built.
