file(REMOVE_RECURSE
  "CMakeFiles/time_travel_clone.dir/time_travel_clone.cpp.o"
  "CMakeFiles/time_travel_clone.dir/time_travel_clone.cpp.o.d"
  "time_travel_clone"
  "time_travel_clone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/time_travel_clone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
