file(REMOVE_RECURSE
  "CMakeFiles/analytics_join.dir/analytics_join.cpp.o"
  "CMakeFiles/analytics_join.dir/analytics_join.cpp.o.d"
  "analytics_join"
  "analytics_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analytics_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
