# Empty compiler generated dependencies file for analytics_join.
# This may be replaced when dependencies are built.
