# Empty dependencies file for concurrent_etl.
# This may be replaced when dependencies are built.
