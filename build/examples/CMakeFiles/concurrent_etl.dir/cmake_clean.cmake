file(REMOVE_RECURSE
  "CMakeFiles/concurrent_etl.dir/concurrent_etl.cpp.o"
  "CMakeFiles/concurrent_etl.dir/concurrent_etl.cpp.o.d"
  "concurrent_etl"
  "concurrent_etl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concurrent_etl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
