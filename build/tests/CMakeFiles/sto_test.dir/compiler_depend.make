# Empty compiler generated dependencies file for sto_test.
# This may be replaced when dependencies are built.
