file(REMOVE_RECURSE
  "CMakeFiles/sto_test.dir/sto_test.cc.o"
  "CMakeFiles/sto_test.dir/sto_test.cc.o.d"
  "sto_test"
  "sto_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sto_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
