# Empty dependencies file for dcp_test.
# This may be replaced when dependencies are built.
