# Empty compiler generated dependencies file for micro_conflict_granularity.
# This may be replaced when dependencies are built.
