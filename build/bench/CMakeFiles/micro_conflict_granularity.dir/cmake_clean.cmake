file(REMOVE_RECURSE
  "CMakeFiles/micro_conflict_granularity.dir/micro_conflict_granularity.cc.o"
  "CMakeFiles/micro_conflict_granularity.dir/micro_conflict_granularity.cc.o.d"
  "micro_conflict_granularity"
  "micro_conflict_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_conflict_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
