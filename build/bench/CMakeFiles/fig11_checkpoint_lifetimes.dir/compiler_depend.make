# Empty compiler generated dependencies file for fig11_checkpoint_lifetimes.
# This may be replaced when dependencies are built.
