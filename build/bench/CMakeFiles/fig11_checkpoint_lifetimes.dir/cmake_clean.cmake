file(REMOVE_RECURSE
  "CMakeFiles/fig11_checkpoint_lifetimes.dir/fig11_checkpoint_lifetimes.cc.o"
  "CMakeFiles/fig11_checkpoint_lifetimes.dir/fig11_checkpoint_lifetimes.cc.o.d"
  "fig11_checkpoint_lifetimes"
  "fig11_checkpoint_lifetimes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_checkpoint_lifetimes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
