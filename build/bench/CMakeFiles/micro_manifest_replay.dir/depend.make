# Empty dependencies file for micro_manifest_replay.
# This may be replaced when dependencies are built.
