file(REMOVE_RECURSE
  "CMakeFiles/micro_manifest_replay.dir/micro_manifest_replay.cc.o"
  "CMakeFiles/micro_manifest_replay.dir/micro_manifest_replay.cc.o.d"
  "micro_manifest_replay"
  "micro_manifest_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_manifest_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
