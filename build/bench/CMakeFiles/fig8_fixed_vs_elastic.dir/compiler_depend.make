# Empty compiler generated dependencies file for fig8_fixed_vs_elastic.
# This may be replaced when dependencies are built.
