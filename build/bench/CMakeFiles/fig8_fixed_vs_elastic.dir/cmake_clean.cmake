file(REMOVE_RECURSE
  "CMakeFiles/fig8_fixed_vs_elastic.dir/fig8_fixed_vs_elastic.cc.o"
  "CMakeFiles/fig8_fixed_vs_elastic.dir/fig8_fixed_vs_elastic.cc.o.d"
  "fig8_fixed_vs_elastic"
  "fig8_fixed_vs_elastic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_fixed_vs_elastic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
