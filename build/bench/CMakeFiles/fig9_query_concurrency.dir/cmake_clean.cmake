file(REMOVE_RECURSE
  "CMakeFiles/fig9_query_concurrency.dir/fig9_query_concurrency.cc.o"
  "CMakeFiles/fig9_query_concurrency.dir/fig9_query_concurrency.cc.o.d"
  "fig9_query_concurrency"
  "fig9_query_concurrency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_query_concurrency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
