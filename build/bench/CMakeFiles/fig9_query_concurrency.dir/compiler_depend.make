# Empty compiler generated dependencies file for fig9_query_concurrency.
# This may be replaced when dependencies are built.
