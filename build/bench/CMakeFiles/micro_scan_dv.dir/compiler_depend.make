# Empty compiler generated dependencies file for micro_scan_dv.
# This may be replaced when dependencies are built.
