file(REMOVE_RECURSE
  "CMakeFiles/micro_scan_dv.dir/micro_scan_dv.cc.o"
  "CMakeFiles/micro_scan_dv.dir/micro_scan_dv.cc.o.d"
  "micro_scan_dv"
  "micro_scan_dv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_scan_dv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
