# Empty dependencies file for fig7_ingestion_scaling.
# This may be replaced when dependencies are built.
