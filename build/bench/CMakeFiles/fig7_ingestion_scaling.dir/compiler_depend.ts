# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig7_ingestion_scaling.
