file(REMOVE_RECURSE
  "CMakeFiles/fig10_compaction_health.dir/fig10_compaction_health.cc.o"
  "CMakeFiles/fig10_compaction_health.dir/fig10_compaction_health.cc.o.d"
  "fig10_compaction_health"
  "fig10_compaction_health.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_compaction_health.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
