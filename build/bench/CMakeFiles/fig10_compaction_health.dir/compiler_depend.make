# Empty compiler generated dependencies file for fig10_compaction_health.
# This may be replaced when dependencies are built.
