file(REMOVE_RECURSE
  "CMakeFiles/fig12_wp3_concurrency.dir/fig12_wp3_concurrency.cc.o"
  "CMakeFiles/fig12_wp3_concurrency.dir/fig12_wp3_concurrency.cc.o.d"
  "fig12_wp3_concurrency"
  "fig12_wp3_concurrency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_wp3_concurrency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
