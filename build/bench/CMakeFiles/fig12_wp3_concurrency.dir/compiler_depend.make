# Empty compiler generated dependencies file for fig12_wp3_concurrency.
# This may be replaced when dependencies are built.
