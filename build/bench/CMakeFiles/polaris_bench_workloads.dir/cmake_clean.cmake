file(REMOVE_RECURSE
  "../lib/libpolaris_bench_workloads.a"
  "../lib/libpolaris_bench_workloads.pdb"
  "CMakeFiles/polaris_bench_workloads.dir/workloads.cc.o"
  "CMakeFiles/polaris_bench_workloads.dir/workloads.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polaris_bench_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
