file(REMOVE_RECURSE
  "../lib/libpolaris_bench_workloads.a"
)
