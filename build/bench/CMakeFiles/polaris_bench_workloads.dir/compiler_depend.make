# Empty compiler generated dependencies file for polaris_bench_workloads.
# This may be replaced when dependencies are built.
