#ifndef POLARIS_LST_SNAPSHOT_BUILDER_H_
#define POLARIS_LST_SNAPSHOT_BUILDER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "lst/table_snapshot.h"
#include "storage/object_store.h"

namespace polaris::lst {

/// Reference to one committed manifest, as served by the catalog's
/// Manifests table: sequence order + blob path.
struct ManifestRef {
  uint64_t sequence_id = 0;
  std::string path;

  friend bool operator==(const ManifestRef&, const ManifestRef&) = default;
};

/// Reference to a checkpoint covering manifests with sequence ids
/// <= sequence_id.
struct CheckpointRef {
  uint64_t sequence_id = 0;
  std::string path;
};

/// BE-side physical-metadata layer (paper §3.2.1): reconstructs table
/// snapshots from manifest blobs, optionally starting from a checkpoint,
/// with caching so the state "can be efficiently reconstructed as of any
/// point in time" and incrementally extended as transactions commit.
///
/// Two cache levels, both keyed on immutable inputs and safe to share:
///  * parsed-manifest cache: blob path -> parsed entries + commit time;
///  * snapshot cache: (table identity is implicit in the manifest paths)
///    highest-sequence snapshot per table root prefix, cloned and extended
///    incrementally for newer reads.
class SnapshotBuilder {
 public:
  explicit SnapshotBuilder(storage::ObjectStore* store) : store_(store) {}

  /// Builds the snapshot defined by `manifests` (ascending sequence ids).
  /// If `checkpoint` is provided, manifests with sequence_id <= the
  /// checkpoint's are skipped and replay starts from the checkpoint state.
  common::Result<TableSnapshot> Build(
      const std::vector<ManifestRef>& manifests,
      const std::optional<CheckpointRef>& checkpoint = std::nullopt);

  /// Cache statistics, for the checkpoint/caching benchmarks.
  struct CacheStats {
    uint64_t manifest_hits = 0;
    uint64_t manifest_misses = 0;
    uint64_t snapshot_hits = 0;
    uint64_t snapshot_misses = 0;
    uint64_t manifests_replayed = 0;
  };
  CacheStats cache_stats() const;
  void ClearCache();

 private:
  struct ParsedManifest {
    std::vector<ManifestEntry> entries;
    common::Micros commit_time = 0;
  };

  /// Loads a manifest through the parsed-manifest cache.
  common::Result<std::shared_ptr<const ParsedManifest>> LoadManifest(
      const std::string& path);

  storage::ObjectStore* store_;

  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<const ParsedManifest>>
      manifest_cache_;
  /// Snapshot cache keyed by the path of the last applied manifest — a
  /// precise identity for "the state after replaying this chain" because
  /// manifests are immutable and totally ordered per table.
  std::map<std::string, std::shared_ptr<const TableSnapshot>> snapshot_cache_;
  CacheStats stats_;
};

}  // namespace polaris::lst

#endif  // POLARIS_LST_SNAPSHOT_BUILDER_H_
