#include "lst/deletion_vector.h"

namespace polaris::lst {

using common::ByteReader;
using common::ByteWriter;
using common::Result;
using common::Status;

void DeletionVector::MarkDeleted(uint64_t ordinal) {
  size_t word = ordinal / 64;
  uint64_t bit = 1ULL << (ordinal % 64);
  if (word >= words_.size()) words_.resize(word + 1, 0);
  if ((words_[word] & bit) == 0) {
    words_[word] |= bit;
    ++cardinality_;
  }
}

bool DeletionVector::IsDeleted(uint64_t ordinal) const {
  size_t word = ordinal / 64;
  if (word >= words_.size()) return false;
  return (words_[word] >> (ordinal % 64)) & 1;
}

DeletionVector DeletionVector::Union(const DeletionVector& other) const {
  DeletionVector out;
  out.words_.resize(std::max(words_.size(), other.words_.size()), 0);
  out.cardinality_ = 0;
  for (size_t i = 0; i < out.words_.size(); ++i) {
    uint64_t w = 0;
    if (i < words_.size()) w |= words_[i];
    if (i < other.words_.size()) w |= other.words_[i];
    out.words_[i] = w;
    out.cardinality_ += static_cast<uint64_t>(__builtin_popcountll(w));
  }
  return out;
}

std::vector<uint64_t> DeletionVector::ToOrdinals() const {
  std::vector<uint64_t> out;
  out.reserve(cardinality_);
  for (size_t w = 0; w < words_.size(); ++w) {
    uint64_t word = words_[w];
    while (word != 0) {
      int bit = __builtin_ctzll(word);
      out.push_back(w * 64 + static_cast<uint64_t>(bit));
      word &= word - 1;
    }
  }
  return out;
}

void DeletionVector::Serialize(ByteWriter* out) const {
  out->PutVarint(words_.size());
  for (uint64_t w : words_) out->PutU64(w);
}

Result<DeletionVector> DeletionVector::Deserialize(ByteReader* in) {
  uint64_t n;
  POLARIS_RETURN_IF_ERROR(in->GetVarint(&n));
  DeletionVector dv;
  dv.words_.resize(n);
  dv.cardinality_ = 0;
  for (uint64_t i = 0; i < n; ++i) {
    POLARIS_RETURN_IF_ERROR(in->GetU64(&dv.words_[i]));
    dv.cardinality_ += static_cast<uint64_t>(__builtin_popcountll(dv.words_[i]));
  }
  return dv;
}

std::string DeletionVector::ToBlob() const {
  ByteWriter out;
  Serialize(&out);
  return out.Release();
}

Result<DeletionVector> DeletionVector::FromBlob(const std::string& blob) {
  ByteReader in(blob);
  POLARIS_ASSIGN_OR_RETURN(DeletionVector dv, Deserialize(&in));
  if (!in.AtEnd()) return Status::Corruption("trailing bytes in DV blob");
  return dv;
}

}  // namespace polaris::lst
