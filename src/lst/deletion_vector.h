#ifndef POLARIS_LST_DELETION_VECTOR_H_
#define POLARIS_LST_DELETION_VECTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"

namespace polaris::lst {

/// A bitmap of deleted row ordinals within one immutable data file
/// (merge-on-read, paper §2.1). Deletion vectors are themselves immutable
/// once written: deleting more rows from a file produces a *merged* vector
/// in a new blob, and the manifest records Remove(old DV) + Add(new DV)
/// (paper §4.2).
class DeletionVector {
 public:
  DeletionVector() = default;

  /// Marks row `ordinal` deleted. Idempotent.
  void MarkDeleted(uint64_t ordinal);
  bool IsDeleted(uint64_t ordinal) const;

  /// Number of deleted rows.
  uint64_t cardinality() const { return cardinality_; }
  bool empty() const { return cardinality_ == 0; }

  /// Returns the union of this vector and `other` (the merge step when a
  /// second delete touches an already-vectored file).
  DeletionVector Union(const DeletionVector& other) const;

  /// All deleted ordinals in increasing order.
  std::vector<uint64_t> ToOrdinals() const;

  void Serialize(common::ByteWriter* out) const;
  static common::Result<DeletionVector> Deserialize(common::ByteReader* in);

  /// Whole-blob helpers for storage round trips.
  std::string ToBlob() const;
  static common::Result<DeletionVector> FromBlob(const std::string& blob);

  bool operator==(const DeletionVector& other) const {
    return words_ == other.words_ && cardinality_ == other.cardinality_;
  }

 private:
  std::vector<uint64_t> words_;
  uint64_t cardinality_ = 0;
};

}  // namespace polaris::lst

#endif  // POLARIS_LST_DELETION_VECTOR_H_
