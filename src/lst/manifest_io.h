#ifndef POLARIS_LST_MANIFEST_IO_H_
#define POLARIS_LST_MANIFEST_IO_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "lst/manifest.h"
#include "storage/object_store.h"

namespace polaris::lst {

/// BE-side handle for writing one task's share of a transaction manifest
/// (paper §3.2.2). Each task attempt serializes its entries and stages them
/// as a block with a fresh GUID block ID; the IDs flow back through the DCP
/// to the SQL FE. Blocks staged by failed/abandoned attempts are never
/// committed and are discarded by the store.
class ManifestBlockWriter {
 public:
  ManifestBlockWriter(storage::ObjectStore* store, std::string manifest_path)
      : store_(store), manifest_path_(std::move(manifest_path)) {}

  /// Stages `entries` as one uncommitted block; returns its block ID.
  common::Result<std::string> StageEntries(
      const std::vector<ManifestEntry>& entries);

  const std::string& manifest_path() const { return manifest_path_; }

 private:
  storage::ObjectStore* store_;
  std::string manifest_path_;
};

/// FE-side manifest operations (paper §3.2.2 / §3.2.3 / §4.3).
class ManifestCommitter {
 public:
  explicit ManifestCommitter(storage::ObjectStore* store) : store_(store) {}

  /// Insert path: appends `new_block_ids` after the blob's current
  /// committed list (empty for the first statement) and commits. Used for
  /// insert statements, which never invalidate earlier entries.
  common::Status CommitAppend(const std::string& manifest_path,
                              const std::vector<std::string>& new_block_ids);

  /// Update/delete path: replaces the manifest contents with the single
  /// canonical `entries` block (the FE "compacts and rewrites the
  /// aggregated blocks"). Returns the ID of the rewritten block.
  common::Result<std::string> CommitRewrite(
      const std::string& manifest_path,
      const std::vector<ManifestEntry>& entries);

  /// Reads and parses all committed entries of a manifest blob.
  common::Result<std::vector<ManifestEntry>> ReadManifest(
      const std::string& manifest_path);

 private:
  storage::ObjectStore* store_;
};

}  // namespace polaris::lst

#endif  // POLARIS_LST_MANIFEST_IO_H_
