#ifndef POLARIS_LST_CHECKPOINT_H_
#define POLARIS_LST_CHECKPOINT_H_

#include <string>

#include "common/result.h"
#include "lst/table_snapshot.h"

namespace polaris::lst {

/// Serialization of a full table snapshot as of a manifest sequence id
/// (paper §5.2). A reader loads the newest checkpoint visible to its
/// transaction and replays only the manifests after it, instead of the
/// entire manifest list.
///
/// Checkpoints never conflict with user transactions: they add no data
/// files and remove none; they are pure derived state.
class Checkpoint {
 public:
  /// Serializes `snapshot` (including removed-blob retention records,
  /// which GC needs when it starts from a checkpoint).
  static std::string Serialize(const TableSnapshot& snapshot);

  /// Parses a checkpoint blob back into a snapshot.
  static common::Result<TableSnapshot> Deserialize(const std::string& blob);
};

}  // namespace polaris::lst

#endif  // POLARIS_LST_CHECKPOINT_H_
