#ifndef POLARIS_LST_MANIFEST_H_
#define POLARIS_LST_MANIFEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"

namespace polaris::lst {

/// Kinds of change a committed transaction records for a table
/// (paper §3.2): data files added/removed, and deletion vectors
/// added/removed against existing data files.
enum class ActionType : uint8_t {
  kAddDataFile = 0,
  kRemoveDataFile = 1,
  kAddDeleteVector = 2,
  kRemoveDeleteVector = 3,
};

std::string_view ActionTypeName(ActionType type);

/// Descriptor of one immutable data file as recorded in a manifest.
struct DataFileInfo {
  /// Object-store path ("tables/<id>/data/<guid>.parquet").
  std::string path;
  uint64_t row_count = 0;
  uint64_t byte_size = 0;
  /// Distribution bucket (the d(r) dimension of the Polaris cell model,
  /// paper §2.3); drives task placement in the DCP.
  uint32_t cell_id = 0;

  friend bool operator==(const DataFileInfo&, const DataFileInfo&) = default;
};

/// Descriptor of one deletion-vector file.
struct DeleteVectorInfo {
  /// Object-store path of the DV blob.
  std::string path;
  /// Path of the data file whose rows it deletes.
  std::string target_data_file;
  /// Number of deleted row ordinals in the vector.
  uint64_t deleted_count = 0;

  friend bool operator==(const DeleteVectorInfo&,
                         const DeleteVectorInfo&) = default;
};

/// One entry in a (transaction) manifest. Exactly one of `file` / `dv` is
/// meaningful depending on `type`.
struct ManifestEntry {
  ActionType type = ActionType::kAddDataFile;
  DataFileInfo file;
  DeleteVectorInfo dv;

  static ManifestEntry AddFile(DataFileInfo info);
  static ManifestEntry RemoveFile(std::string path);
  static ManifestEntry AddDv(DeleteVectorInfo info);
  static ManifestEntry RemoveDv(std::string dv_path,
                                std::string target_data_file);

  void Serialize(common::ByteWriter* out) const;
  static common::Result<ManifestEntry> Deserialize(common::ByteReader* in);

  friend bool operator==(const ManifestEntry&, const ManifestEntry&) = default;
};

/// Serializes a sequence of entries as one manifest block. Blocks are
/// self-delimiting, so a manifest blob assembled from N committed blocks
/// parses as the concatenation of their entries.
std::string SerializeEntries(const std::vector<ManifestEntry>& entries);

/// Parses all entries from a manifest blob (one or more blocks).
common::Result<std::vector<ManifestEntry>> ParseEntries(
    const std::string& blob);

}  // namespace polaris::lst

#endif  // POLARIS_LST_MANIFEST_H_
