#include "lst/table_snapshot.h"

#include <algorithm>

namespace polaris::lst {

using common::Status;

Status TableSnapshot::Apply(const std::vector<ManifestEntry>& entries,
                            common::Micros commit_time) {
  for (const auto& entry : entries) {
    switch (entry.type) {
      case ActionType::kAddDataFile: {
        auto [it, inserted] = files_.try_emplace(entry.file.path);
        if (!inserted) {
          return Status::Corruption("duplicate AddDataFile: " +
                                    entry.file.path);
        }
        it->second.info = entry.file;
        it->second.dv_path.clear();
        it->second.deleted_count = 0;
        break;
      }
      case ActionType::kRemoveDataFile: {
        auto it = files_.find(entry.file.path);
        if (it == files_.end()) {
          return Status::Corruption("RemoveDataFile for unknown file: " +
                                    entry.file.path);
        }
        // A data file removal implicitly retires its deletion vector blob;
        // well-formed manifests emit the RemoveDv first, but compaction of
        // a whole file may skip it.
        if (!it->second.dv_path.empty()) {
          removed_blobs_.push_back({it->second.dv_path, commit_time});
        }
        removed_blobs_.push_back({entry.file.path, commit_time});
        files_.erase(it);
        break;
      }
      case ActionType::kAddDeleteVector: {
        auto it = files_.find(entry.dv.target_data_file);
        if (it == files_.end()) {
          return Status::Corruption("AddDeleteVector for unknown file: " +
                                    entry.dv.target_data_file);
        }
        if (!it->second.dv_path.empty()) {
          return Status::Corruption(
              "AddDeleteVector over existing DV (missing RemoveDv): " +
              entry.dv.target_data_file);
        }
        it->second.dv_path = entry.dv.path;
        it->second.deleted_count = entry.dv.deleted_count;
        break;
      }
      case ActionType::kRemoveDeleteVector: {
        auto it = files_.find(entry.dv.target_data_file);
        if (it == files_.end() || it->second.dv_path != entry.dv.path) {
          return Status::Corruption("RemoveDeleteVector mismatch: " +
                                    entry.dv.path);
        }
        removed_blobs_.push_back({entry.dv.path, commit_time});
        it->second.dv_path.clear();
        it->second.deleted_count = 0;
        break;
      }
    }
  }
  return Status::OK();
}

uint64_t TableSnapshot::total_rows() const {
  uint64_t total = 0;
  for (const auto& [path, state] : files_) {
    (void)path;
    total += state.info.row_count;
  }
  return total;
}

uint64_t TableSnapshot::total_deleted_rows() const {
  uint64_t total = 0;
  for (const auto& [path, state] : files_) {
    (void)path;
    total += state.deleted_count;
  }
  return total;
}

uint64_t TableSnapshot::total_bytes() const {
  uint64_t total = 0;
  for (const auto& [path, state] : files_) {
    (void)path;
    total += state.info.byte_size;
  }
  return total;
}

std::vector<RemovedBlob> TableSnapshot::TakeRemovedBefore(
    common::Micros horizon) {
  std::vector<RemovedBlob> taken;
  auto it = std::stable_partition(
      removed_blobs_.begin(), removed_blobs_.end(),
      [horizon](const RemovedBlob& b) { return b.removed_at >= horizon; });
  taken.assign(std::make_move_iterator(it),
               std::make_move_iterator(removed_blobs_.end()));
  removed_blobs_.erase(it, removed_blobs_.end());
  return taken;
}

std::vector<ManifestEntry> DiffSnapshots(const TableSnapshot& base,
                                         const TableSnapshot& current) {
  std::vector<ManifestEntry> entries;
  const auto& base_files = base.files();
  const auto& cur_files = current.files();

  // Removals first (including DV retirement), so that replay over the base
  // never sees an Add against a file with a stale DV.
  for (const auto& [path, state] : base_files) {
    if (cur_files.count(path) != 0) continue;
    if (!state.dv_path.empty()) {
      entries.push_back(ManifestEntry::RemoveDv(state.dv_path, path));
    }
    entries.push_back(ManifestEntry::RemoveFile(path));
  }
  // DV changes on surviving files.
  for (const auto& [path, state] : cur_files) {
    auto it = base_files.find(path);
    if (it == base_files.end()) continue;
    const FileState& old = it->second;
    if (old.dv_path == state.dv_path) continue;
    if (!old.dv_path.empty()) {
      entries.push_back(ManifestEntry::RemoveDv(old.dv_path, path));
    }
    if (!state.dv_path.empty()) {
      DeleteVectorInfo info;
      info.path = state.dv_path;
      info.target_data_file = path;
      info.deleted_count = state.deleted_count;
      entries.push_back(ManifestEntry::AddDv(std::move(info)));
    }
  }
  // New files (with their DVs, if a later statement already deleted from a
  // file created inside the same transaction).
  for (const auto& [path, state] : cur_files) {
    if (base_files.count(path) != 0) continue;
    entries.push_back(ManifestEntry::AddFile(state.info));
    if (!state.dv_path.empty()) {
      DeleteVectorInfo info;
      info.path = state.dv_path;
      info.target_data_file = path;
      info.deleted_count = state.deleted_count;
      entries.push_back(ManifestEntry::AddDv(std::move(info)));
    }
  }
  return entries;
}

}  // namespace polaris::lst
