#ifndef POLARIS_LST_TABLE_SNAPSHOT_H_
#define POLARIS_LST_TABLE_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "lst/manifest.h"

namespace polaris::lst {

/// State of one live data file within a snapshot: the file descriptor plus
/// its current deletion vector (if any).
struct FileState {
  DataFileInfo info;
  /// Path of the active DV blob; empty if the file has no deleted rows.
  std::string dv_path;
  uint64_t deleted_count = 0;

  uint64_t live_rows() const { return info.row_count - deleted_count; }

  friend bool operator==(const FileState&, const FileState&) = default;
};

/// A blob that a committed transaction logically removed, retained for the
/// user-configured retention window before garbage collection (paper §5.3).
struct RemovedBlob {
  std::string path;
  /// Commit time of the removing transaction (micros).
  common::Micros removed_at = 0;

  friend bool operator==(const RemovedBlob&, const RemovedBlob&) = default;
};

/// The reconstructed state of a log-structured table as of a point in its
/// manifest sequence (paper §3.2.1): the set of live data files with their
/// deletion vectors, plus the logically-removed blobs still inside
/// retention. Built by replaying manifest entries in sequence order, or by
/// loading a checkpoint and replaying the manifests after it (§5.2).
class TableSnapshot {
 public:
  TableSnapshot() = default;

  /// Replays one committed manifest. `commit_time` is the commit timestamp
  /// recorded for removals (used by GC retention).
  common::Status Apply(const std::vector<ManifestEntry>& entries,
                       common::Micros commit_time);

  /// Live files keyed by path (deterministic order).
  const std::map<std::string, FileState>& files() const { return files_; }
  /// Blobs removed by committed transactions, oldest first.
  const std::vector<RemovedBlob>& removed_blobs() const {
    return removed_blobs_;
  }

  /// Highest manifest sequence id applied (0 if none).
  uint64_t sequence_id() const { return sequence_id_; }
  void set_sequence_id(uint64_t seq) { sequence_id_ = seq; }

  uint64_t num_files() const { return files_.size(); }
  uint64_t total_rows() const;
  uint64_t total_deleted_rows() const;
  uint64_t live_rows() const { return total_rows() - total_deleted_rows(); }
  uint64_t total_bytes() const;

  /// Drops removed-blob records older than `horizon`; returns them. Used
  /// by GC once the physical blobs are deleted.
  std::vector<RemovedBlob> TakeRemovedBefore(common::Micros horizon);

  // Direct mutation used by checkpoint loading.
  void InsertFile(FileState state) {
    files_[state.info.path] = std::move(state);
  }
  /// Removes a file without recording a retention entry — used when a
  /// transaction prunes its own fully-obsoleted intra-transaction files
  /// (the blobs become GC'd orphans, not retention-tracked removals).
  void DropFile(const std::string& path) { files_.erase(path); }
  void InsertRemovedBlob(RemovedBlob blob) {
    removed_blobs_.push_back(std::move(blob));
  }

  friend bool operator==(const TableSnapshot&, const TableSnapshot&) = default;

 private:
  std::map<std::string, FileState> files_;
  std::vector<RemovedBlob> removed_blobs_;
  uint64_t sequence_id_ = 0;
};

/// Computes the canonical manifest entries that transform `base` into
/// `current`. This is the FE-side "compact and rewrite" reconciliation for
/// multi-statement transactions (paper §3.2.3): files created and then
/// obsoleted entirely within the transaction produce no entries at all.
std::vector<ManifestEntry> DiffSnapshots(const TableSnapshot& base,
                                         const TableSnapshot& current);

}  // namespace polaris::lst

#endif  // POLARIS_LST_TABLE_SNAPSHOT_H_
