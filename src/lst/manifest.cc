#include "lst/manifest.h"

namespace polaris::lst {

using common::ByteReader;
using common::ByteWriter;
using common::Result;
using common::Status;

std::string_view ActionTypeName(ActionType type) {
  switch (type) {
    case ActionType::kAddDataFile:
      return "AddDataFile";
    case ActionType::kRemoveDataFile:
      return "RemoveDataFile";
    case ActionType::kAddDeleteVector:
      return "AddDeleteVector";
    case ActionType::kRemoveDeleteVector:
      return "RemoveDeleteVector";
  }
  return "Unknown";
}

ManifestEntry ManifestEntry::AddFile(DataFileInfo info) {
  ManifestEntry e;
  e.type = ActionType::kAddDataFile;
  e.file = std::move(info);
  return e;
}

ManifestEntry ManifestEntry::RemoveFile(std::string path) {
  ManifestEntry e;
  e.type = ActionType::kRemoveDataFile;
  e.file.path = std::move(path);
  return e;
}

ManifestEntry ManifestEntry::AddDv(DeleteVectorInfo info) {
  ManifestEntry e;
  e.type = ActionType::kAddDeleteVector;
  e.dv = std::move(info);
  return e;
}

ManifestEntry ManifestEntry::RemoveDv(std::string dv_path,
                                      std::string target_data_file) {
  ManifestEntry e;
  e.type = ActionType::kRemoveDeleteVector;
  e.dv.path = std::move(dv_path);
  e.dv.target_data_file = std::move(target_data_file);
  return e;
}

void ManifestEntry::Serialize(ByteWriter* out) const {
  out->PutU8(static_cast<uint8_t>(type));
  switch (type) {
    case ActionType::kAddDataFile:
      out->PutString(file.path);
      out->PutVarint(file.row_count);
      out->PutVarint(file.byte_size);
      out->PutU32(file.cell_id);
      break;
    case ActionType::kRemoveDataFile:
      out->PutString(file.path);
      break;
    case ActionType::kAddDeleteVector:
      out->PutString(dv.path);
      out->PutString(dv.target_data_file);
      out->PutVarint(dv.deleted_count);
      break;
    case ActionType::kRemoveDeleteVector:
      out->PutString(dv.path);
      out->PutString(dv.target_data_file);
      break;
  }
}

Result<ManifestEntry> ManifestEntry::Deserialize(ByteReader* in) {
  uint8_t tag;
  POLARIS_RETURN_IF_ERROR(in->GetU8(&tag));
  if (tag > static_cast<uint8_t>(ActionType::kRemoveDeleteVector)) {
    return Status::Corruption("bad manifest action tag");
  }
  ManifestEntry e;
  e.type = static_cast<ActionType>(tag);
  switch (e.type) {
    case ActionType::kAddDataFile:
      POLARIS_RETURN_IF_ERROR(in->GetString(&e.file.path));
      POLARIS_RETURN_IF_ERROR(in->GetVarint(&e.file.row_count));
      POLARIS_RETURN_IF_ERROR(in->GetVarint(&e.file.byte_size));
      POLARIS_RETURN_IF_ERROR(in->GetU32(&e.file.cell_id));
      break;
    case ActionType::kRemoveDataFile:
      POLARIS_RETURN_IF_ERROR(in->GetString(&e.file.path));
      break;
    case ActionType::kAddDeleteVector:
      POLARIS_RETURN_IF_ERROR(in->GetString(&e.dv.path));
      POLARIS_RETURN_IF_ERROR(in->GetString(&e.dv.target_data_file));
      POLARIS_RETURN_IF_ERROR(in->GetVarint(&e.dv.deleted_count));
      break;
    case ActionType::kRemoveDeleteVector:
      POLARIS_RETURN_IF_ERROR(in->GetString(&e.dv.path));
      POLARIS_RETURN_IF_ERROR(in->GetString(&e.dv.target_data_file));
      break;
  }
  return e;
}

std::string SerializeEntries(const std::vector<ManifestEntry>& entries) {
  ByteWriter out;
  for (const auto& entry : entries) {
    entry.Serialize(&out);
  }
  return out.Release();
}

Result<std::vector<ManifestEntry>> ParseEntries(const std::string& blob) {
  ByteReader in(blob);
  std::vector<ManifestEntry> entries;
  while (!in.AtEnd()) {
    POLARIS_ASSIGN_OR_RETURN(ManifestEntry e, ManifestEntry::Deserialize(&in));
    entries.push_back(std::move(e));
  }
  return entries;
}

}  // namespace polaris::lst
