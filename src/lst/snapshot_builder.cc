#include "lst/snapshot_builder.h"

#include "lst/checkpoint.h"

namespace polaris::lst {

using common::Result;
using common::Status;

Result<std::shared_ptr<const SnapshotBuilder::ParsedManifest>>
SnapshotBuilder::LoadManifest(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = manifest_cache_.find(path);
    if (it != manifest_cache_.end()) {
      ++stats_.manifest_hits;
      return it->second;
    }
    ++stats_.manifest_misses;
  }
  POLARIS_ASSIGN_OR_RETURN(std::string blob, store_->Get(path));
  POLARIS_ASSIGN_OR_RETURN(storage::BlobInfo info, store_->Stat(path));
  auto parsed = std::make_shared<ParsedManifest>();
  POLARIS_ASSIGN_OR_RETURN(parsed->entries, ParseEntries(blob));
  parsed->commit_time = info.created_at;
  std::lock_guard<std::mutex> lock(mu_);
  manifest_cache_[path] = parsed;
  return std::shared_ptr<const ParsedManifest>(parsed);
}

Result<TableSnapshot> SnapshotBuilder::Build(
    const std::vector<ManifestRef>& manifests,
    const std::optional<CheckpointRef>& checkpoint) {
  // Determine the replay suffix after the checkpoint (if any).
  uint64_t base_seq = checkpoint ? checkpoint->sequence_id : 0;

  // Find the longest cached prefix: we key snapshots by the path of the
  // last manifest applied, so scan from the end for a cache hit.
  TableSnapshot snapshot;
  size_t start = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = manifests.size(); i > 0; --i) {
      const ManifestRef& ref = manifests[i - 1];
      if (ref.sequence_id <= base_seq) break;
      auto it = snapshot_cache_.find(ref.path);
      if (it != snapshot_cache_.end()) {
        snapshot = *it->second;  // copy; extended below
        start = i;
        ++stats_.snapshot_hits;
        break;
      }
    }
    if (start == 0) ++stats_.snapshot_misses;
  }

  if (start == 0 && checkpoint) {
    POLARIS_ASSIGN_OR_RETURN(std::string blob, store_->Get(checkpoint->path));
    POLARIS_ASSIGN_OR_RETURN(snapshot, Checkpoint::Deserialize(blob));
    if (snapshot.sequence_id() != checkpoint->sequence_id) {
      return Status::Corruption("checkpoint sequence mismatch");
    }
  }

  uint64_t last_seq = snapshot.sequence_id();
  for (size_t i = start; i < manifests.size(); ++i) {
    const ManifestRef& ref = manifests[i];
    if (ref.sequence_id <= last_seq) continue;  // covered by checkpoint/cache
    POLARIS_ASSIGN_OR_RETURN(auto parsed, LoadManifest(ref.path));
    POLARIS_RETURN_IF_ERROR(
        snapshot.Apply(parsed->entries, parsed->commit_time));
    snapshot.set_sequence_id(ref.sequence_id);
    last_seq = ref.sequence_id;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.manifests_replayed;
    }
  }

  if (!manifests.empty()) {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot_cache_[manifests.back().path] =
        std::make_shared<const TableSnapshot>(snapshot);
  }
  return snapshot;
}

SnapshotBuilder::CacheStats SnapshotBuilder::cache_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void SnapshotBuilder::ClearCache() {
  std::lock_guard<std::mutex> lock(mu_);
  manifest_cache_.clear();
  snapshot_cache_.clear();
  stats_ = CacheStats{};
}

}  // namespace polaris::lst
