#include "lst/manifest_io.h"

#include "common/guid.h"
#include "obs/tracer.h"

namespace polaris::lst {

using common::Result;
using common::Status;

Result<std::string> ManifestBlockWriter::StageEntries(
    const std::vector<ManifestEntry>& entries) {
  obs::Span span("lst.manifest.stage");
  if (span.active()) {
    span.AddAttr("path", manifest_path_);
    span.AddAttr("entries", entries.size());
  }
  std::string block_id = common::Guid::Generate().ToString();
  POLARIS_RETURN_IF_ERROR(
      store_->StageBlock(manifest_path_, block_id, SerializeEntries(entries)));
  return block_id;
}

Status ManifestCommitter::CommitAppend(
    const std::string& manifest_path,
    const std::vector<std::string>& new_block_ids) {
  obs::Span span("lst.manifest.commit_append");
  if (span.active()) {
    span.AddAttr("path", manifest_path);
    span.AddAttr("new_blocks", new_block_ids.size());
  }
  std::vector<std::string> ids;
  auto existing = store_->GetCommittedBlockList(manifest_path);
  if (existing.ok()) {
    ids = std::move(existing).value();
  } else if (!existing.status().IsNotFound()) {
    return existing.status();
  }
  ids.insert(ids.end(), new_block_ids.begin(), new_block_ids.end());
  return store_->CommitBlockList(manifest_path, ids);
}

Result<std::string> ManifestCommitter::CommitRewrite(
    const std::string& manifest_path,
    const std::vector<ManifestEntry>& entries) {
  obs::Span span("lst.manifest.commit_rewrite");
  if (span.active()) {
    span.AddAttr("path", manifest_path);
    span.AddAttr("entries", entries.size());
  }
  std::string block_id = common::Guid::Generate().ToString();
  POLARIS_RETURN_IF_ERROR(store_->StageBlock(manifest_path, block_id,
                                             SerializeEntries(entries)));
  POLARIS_RETURN_IF_ERROR(store_->CommitBlockList(manifest_path, {block_id}));
  return block_id;
}

Result<std::vector<ManifestEntry>> ManifestCommitter::ReadManifest(
    const std::string& manifest_path) {
  obs::Span span("lst.manifest.read");
  if (span.active()) span.AddAttr("path", manifest_path);
  POLARIS_ASSIGN_OR_RETURN(std::string blob, store_->Get(manifest_path));
  auto entries = ParseEntries(blob);
  if (span.active() && entries.ok()) {
    span.AddAttr("entries", entries.value().size());
  }
  return entries;
}

}  // namespace polaris::lst
