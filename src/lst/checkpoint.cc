#include "lst/checkpoint.h"

#include "common/bytes.h"

namespace polaris::lst {

using common::ByteReader;
using common::ByteWriter;
using common::Result;
using common::Status;

namespace {
constexpr uint32_t kCheckpointMagic = 0x504c4b31;  // "PLK1"
}

std::string Checkpoint::Serialize(const TableSnapshot& snapshot) {
  ByteWriter out;
  out.PutU32(kCheckpointMagic);
  out.PutU64(snapshot.sequence_id());
  out.PutVarint(snapshot.files().size());
  for (const auto& [path, state] : snapshot.files()) {
    (void)path;
    out.PutString(state.info.path);
    out.PutVarint(state.info.row_count);
    out.PutVarint(state.info.byte_size);
    out.PutU32(state.info.cell_id);
    out.PutString(state.dv_path);
    out.PutVarint(state.deleted_count);
  }
  out.PutVarint(snapshot.removed_blobs().size());
  for (const auto& blob : snapshot.removed_blobs()) {
    out.PutString(blob.path);
    out.PutI64(blob.removed_at);
  }
  return out.Release();
}

Result<TableSnapshot> Checkpoint::Deserialize(const std::string& blob) {
  ByteReader in(blob);
  uint32_t magic;
  POLARIS_RETURN_IF_ERROR(in.GetU32(&magic));
  if (magic != kCheckpointMagic) {
    return Status::Corruption("bad checkpoint magic");
  }
  TableSnapshot snapshot;
  uint64_t seq;
  POLARIS_RETURN_IF_ERROR(in.GetU64(&seq));
  snapshot.set_sequence_id(seq);
  uint64_t num_files;
  POLARIS_RETURN_IF_ERROR(in.GetVarint(&num_files));
  for (uint64_t i = 0; i < num_files; ++i) {
    FileState state;
    POLARIS_RETURN_IF_ERROR(in.GetString(&state.info.path));
    POLARIS_RETURN_IF_ERROR(in.GetVarint(&state.info.row_count));
    POLARIS_RETURN_IF_ERROR(in.GetVarint(&state.info.byte_size));
    POLARIS_RETURN_IF_ERROR(in.GetU32(&state.info.cell_id));
    POLARIS_RETURN_IF_ERROR(in.GetString(&state.dv_path));
    POLARIS_RETURN_IF_ERROR(in.GetVarint(&state.deleted_count));
    snapshot.InsertFile(std::move(state));
  }
  uint64_t num_removed;
  POLARIS_RETURN_IF_ERROR(in.GetVarint(&num_removed));
  for (uint64_t i = 0; i < num_removed; ++i) {
    RemovedBlob blob_rec;
    POLARIS_RETURN_IF_ERROR(in.GetString(&blob_rec.path));
    POLARIS_RETURN_IF_ERROR(in.GetI64(&blob_rec.removed_at));
    snapshot.InsertRemovedBlob(std::move(blob_rec));
  }
  if (!in.AtEnd()) return Status::Corruption("trailing checkpoint bytes");
  return snapshot;
}

}  // namespace polaris::lst
