#include "common/crashpoint.h"

#include <atomic>
#include <mutex>

namespace polaris::common {

namespace {
std::atomic<bool> g_armed{false};
std::atomic<uint64_t> g_fired{0};
std::mutex g_mu;
std::string g_name;        // guarded by g_mu
uint64_t g_skip = 0;       // guarded by g_mu
std::function<void(std::string_view)>& FireObserver() {
  static std::function<void(std::string_view)> observer;  // guarded by g_mu
  return observer;
}
}  // namespace

void CrashPoints::Arm(std::string name, uint64_t skip) {
  std::lock_guard<std::mutex> lock(g_mu);
  g_name = std::move(name);
  g_skip = skip;
  g_armed.store(true, std::memory_order_release);
}

void CrashPoints::Disarm() {
  std::lock_guard<std::mutex> lock(g_mu);
  g_armed.store(false, std::memory_order_release);
  g_name.clear();
  g_skip = 0;
}

bool CrashPoints::Fire(std::string_view name) {
  if (!g_armed.load(std::memory_order_acquire)) return false;
  std::lock_guard<std::mutex> lock(g_mu);
  if (!g_armed.load(std::memory_order_relaxed)) return false;
  if (g_name != name) return false;
  if (g_skip > 0) {
    --g_skip;
    return false;
  }
  g_armed.store(false, std::memory_order_release);
  g_name.clear();
  g_fired.fetch_add(1, std::memory_order_relaxed);
  if (FireObserver()) FireObserver()(name);
  return true;
}

void CrashPoints::SetFireObserver(
    std::function<void(std::string_view)> observer) {
  std::lock_guard<std::mutex> lock(g_mu);
  FireObserver() = std::move(observer);
}

bool CrashPoints::armed() {
  return g_armed.load(std::memory_order_acquire);
}

uint64_t CrashPoints::fired_count() {
  return g_fired.load(std::memory_order_relaxed);
}

}  // namespace polaris::common
