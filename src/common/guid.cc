#include "common/guid.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <random>

namespace polaris::common {

namespace {

// SplitMix64: fast, well-distributed; seeded once per process from the
// system entropy source plus a counter to guarantee uniqueness even if
// entropy repeats across forked processes.
uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::atomic<uint64_t> g_counter{0};

uint64_t ProcessSeed() {
  static const uint64_t seed = [] {
    std::random_device rd;
    uint64_t s = (static_cast<uint64_t>(rd()) << 32) ^ rd();
    s ^= static_cast<uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
    return s;
  }();
  return seed;
}

}  // namespace

Guid Guid::Generate() {
  uint64_t state =
      ProcessSeed() + g_counter.fetch_add(1, std::memory_order_relaxed) *
                          0x9e3779b97f4a7c15ULL;
  Guid g;
  g.hi = SplitMix64(state);
  g.lo = SplitMix64(state);
  if (g.IsNil()) g.lo = 1;  // Never produce the nil GUID.
  return g;
}

std::string Guid::ToString() const {
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016lx%016lx",
                static_cast<unsigned long>(hi),
                static_cast<unsigned long>(lo));
  return std::string(buf, 32);
}

bool Guid::Parse(const std::string& text, Guid* out) {
  if (text.size() != 32) return false;
  uint64_t parts[2] = {0, 0};
  for (int p = 0; p < 2; ++p) {
    for (int i = 0; i < 16; ++i) {
      char c = text[p * 16 + i];
      uint64_t v;
      if (c >= '0' && c <= '9') {
        v = static_cast<uint64_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v = static_cast<uint64_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v = static_cast<uint64_t>(c - 'A' + 10);
      } else {
        return false;
      }
      parts[p] = (parts[p] << 4) | v;
    }
  }
  out->hi = parts[0];
  out->lo = parts[1];
  return true;
}

}  // namespace polaris::common
