#ifndef POLARIS_COMMON_CRASHPOINT_H_
#define POLARIS_COMMON_CRASHPOINT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "common/status.h"

namespace polaris::common {

/// Named crash points threaded through the durable commit protocol.
///
/// A recovery test arms one point and runs a workload; when execution
/// reaches the armed point (after `skip` earlier hits) the macro below
/// returns an Internal error, simulating the logical process dying at
/// that exact instant. The test then discards the engine — which after a
/// fired crash point is in an intentionally undefined in-memory state —
/// and reopens the database from its data directory to check that
/// recovery restores exactly the transactions that reached their
/// durability point.
///
/// The registry is process-global and at most one point is armed at a
/// time (crashes are one-shot by construction: the process is dead after
/// the first one). The disarmed fast path is a single relaxed atomic
/// load, so production code paths pay nothing.
class CrashPoints {
 public:
  /// Arms `name`: the (skip+1)-th time execution hits the point it
  /// fires, then the registry disarms itself.
  static void Arm(std::string name, uint64_t skip = 0);

  /// Disarms whatever is armed (test teardown).
  static void Disarm();

  /// True when `name` is armed and its skip count is exhausted; a true
  /// return consumes the arming (one-shot).
  static bool Fire(std::string_view name);

  static bool armed();

  /// Total points fired since process start (test bookkeeping).
  static uint64_t fired_count();

  /// Installs a process-global observer invoked (under the registry lock)
  /// with the point name each time one fires — lets the engine turn
  /// crash-point hits into structured events without this header knowing
  /// about the obs layer. Pass an empty function to uninstall. Crash
  /// points are test-only machinery; like Arm, the observer is global and
  /// the last installer wins.
  static void SetFireObserver(std::function<void(std::string_view)> observer);
};

/// The crash-point taxonomy (see DESIGN.md §8). Each name identifies an
/// instant in the commit protocol where a real process could die.
namespace crash {
/// txn: WriteSets rows upserted, catalog commit not yet attempted.
inline constexpr char kCommitAfterWriteSets[] = "commit.after_writesets";
/// catalog: inside the commit hook, before Manifests rows are written.
inline constexpr char kCatalogCommitBeforeManifests[] =
    "catalog.commit.before_manifests";
/// catalog: Manifests rows written into the pending txn, journal append
/// (the durability point) not yet reached.
inline constexpr char kCatalogCommitAfterManifests[] =
    "catalog.commit.after_manifests";
/// commit pipeline: the group-commit leader claimed its batch but nothing
/// reached the journal — no commit in the batch may survive a reopen.
inline constexpr char kCommitBatchFormed[] = "commit.batch.formed";
/// commit pipeline: the batch is durable in the journal but dies before
/// the in-memory install — recovery must surface every batched commit.
inline constexpr char kCommitBatchAppended[] = "commit.batch.appended";
/// commit pipeline: the batch is durable and installed; only the
/// acknowledgement to the waiters is lost.
inline constexpr char kCommitBatchInstalled[] = "commit.batch.installed";
/// journal: before any byte of the record is staged.
inline constexpr char kJournalAppendBefore[] = "journal.append.before";
/// journal: a truncated record is durably committed (torn write), then
/// the process dies — exercises torn-tail tolerance on replay.
inline constexpr char kJournalAppendTorn[] = "journal.append.torn";
/// journal: the record is durably committed but the ack is lost; the
/// transaction IS committed after reopen even though the client saw an
/// error (the classic "commit ack lost" outcome).
inline constexpr char kJournalAppendAfterCommit[] =
    "journal.append.after_commit";
/// promotion: epoch lease CAS-claimed; tailer still running, predecessor
/// segment not yet sealed. A retry must claim a fresh (higher) epoch.
inline constexpr char kPromoteClaimed[] = "promote.claimed";
/// promotion: predecessor's open segment sealed under the new epoch; the
/// old primary's next append must lose its CAS and self-fence.
inline constexpr char kPromoteSealed[] = "promote.sealed";
/// promotion: remaining journal tail replayed into the local catalog,
/// stores still read-only — dying here loses no acked commit.
inline constexpr char kPromoteReplayed[] = "promote.replayed";
/// promotion: appender primed and stores writable, but the role flip and
/// the operator acknowledgement are lost.
inline constexpr char kPromoteWritable[] = "promote.writable";
/// local store: Put wrote + fsynced the temp file, rename not done.
inline constexpr char kStorePutBeforeRename[] = "store.put.before_rename";
/// local store: CommitBlockList wrote + fsynced the temp file, rename
/// not done — the blob must keep its previous committed state.
inline constexpr char kStoreCommitBeforeRename[] =
    "store.commit_blocklist.before_rename";
}  // namespace crash

}  // namespace polaris::common

/// Simulates the process dying here when this point is armed. Usable in
/// any function returning Status or Result<T>.
#define POLARIS_CRASH_POINT(name)                                     \
  do {                                                                \
    if (::polaris::common::CrashPoints::Fire(name)) {                 \
      return ::polaris::common::Status::Internal(                     \
          std::string("crash point fired: ") + (name));               \
    }                                                                 \
  } while (0)

#endif  // POLARIS_COMMON_CRASHPOINT_H_
