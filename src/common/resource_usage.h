#ifndef POLARIS_COMMON_RESOURCE_USAGE_H_
#define POLARIS_COMMON_RESOURCE_USAGE_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

#include "common/status.h"
#include "common/trace_context.h"

namespace polaris::common {

/// Fixed taxonomy of engine wait events (the dm_os_wait_stats analogue).
/// Every blocking point in the engine charges exactly one class; the
/// classes partition a statement's blocked time so their sum never
/// exceeds wall time (nested waits subtract child time — see
/// common/wait_stats.h).
enum class WaitClass {
  kCommitGate = 0,        ///< priority sequencing gate (catalog commit)
  kCommitBarrier,         ///< group-commit barrier (follower wait)
  kAdmissionQueue,        ///< admission-control queue
  kStoreIo,               ///< object-store operation in flight
  kRetryBackoff,          ///< backoff sleep between store retries
  kCacheSingleflight,     ///< joined another thread's in-flight cache fetch
  kDcpQueue,              ///< task queued for a DCP pool worker
  kReplicaWaitForCommit,  ///< replica watermark wait (SET WAIT FOR COMMIT)
  kLockIntent,            ///< catalog intent/write-set lock acquisition
};

inline constexpr int kWaitClassCount = 9;

inline std::string_view WaitClassName(WaitClass cls) {
  switch (cls) {
    case WaitClass::kCommitGate: return "COMMIT_GATE";
    case WaitClass::kCommitBarrier: return "COMMIT_BARRIER";
    case WaitClass::kAdmissionQueue: return "ADMISSION_QUEUE";
    case WaitClass::kStoreIo: return "STORE_IO";
    case WaitClass::kRetryBackoff: return "RETRY_BACKOFF";
    case WaitClass::kCacheSingleflight: return "CACHE_SINGLEFLIGHT";
    case WaitClass::kDcpQueue: return "DCP_QUEUE";
    case WaitClass::kReplicaWaitForCommit: return "REPLICA_WAIT_FOR_COMMIT";
    case WaitClass::kLockIntent: return "LOCK_INTENT";
  }
  return "?";
}

/// How a statement ended, for resource accounting and the Query Store.
/// `kShed` covers capacity rejections (admission shed, circuit breaker
/// open); `kKilled` is cooperative cancellation (KILL); `kExpired` is a
/// burned deadline.
enum class StatementOutcome {
  kOk = 0,
  kError,
  kConflict,
  kShed,
  kKilled,
  kExpired,
};

inline std::string_view StatementOutcomeName(StatementOutcome outcome) {
  switch (outcome) {
    case StatementOutcome::kOk: return "ok";
    case StatementOutcome::kError: return "error";
    case StatementOutcome::kConflict: return "conflict";
    case StatementOutcome::kShed: return "shed";
    case StatementOutcome::kKilled: return "killed";
    case StatementOutcome::kExpired: return "expired";
  }
  return "?";
}

/// Maps a statement's final Status onto its accounting outcome.
inline StatementOutcome ClassifyStatementOutcome(const Status& status) {
  if (status.ok()) return StatementOutcome::kOk;
  if (status.IsConflict()) return StatementOutcome::kConflict;
  if (status.IsCancelled()) return StatementOutcome::kKilled;
  if (status.IsDeadlineExceeded()) return StatementOutcome::kExpired;
  if (status.IsUnavailable()) return StatementOutcome::kShed;
  return StatementOutcome::kError;
}

/// Point-in-time copy of one statement's resource vector. Plain value
/// type: the Query Store aggregates these, EXPLAIN ANALYZE renders them.
struct ResourceUsageSnapshot {
  /// Statement wall time on the engine clock (virtual under SimClock, so
  /// fault-injected latency is visible deterministically in tests).
  int64_t wall_us = 0;
  /// Time spent queued at admission control (real wall time).
  int64_t queue_us = 0;
  /// Time spent inside the commit pipeline (engine clock).
  int64_t commit_us = 0;
  uint64_t store_read_ops = 0;
  uint64_t store_write_ops = 0;
  uint64_t store_read_bytes = 0;
  uint64_t store_write_bytes = 0;
  uint64_t store_retries = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  /// Optimistic-conflict retries of the whole statement (auto-commit FE
  /// retry loop).
  uint64_t statement_retries = 0;
  uint64_t rows_scanned = 0;
  uint64_t rows_returned = 0;
  /// Blocked time by wait class (common::WaitClass order). Self-time only:
  /// nested waits are subtracted by the charging side, so the classes
  /// partition blocked time and their sum never exceeds wall_us.
  int64_t wait_us[kWaitClassCount] = {};
  uint64_t wait_count[kWaitClassCount] = {};

  int64_t total_wait_us() const {
    int64_t total = 0;
    for (int64_t us : wait_us) total += us;
    return total;
  }

  /// Index of the heaviest wait class; -1 when nothing waited.
  int top_wait_class() const {
    int top = -1;
    for (int i = 0; i < kWaitClassCount; ++i) {
      if (wait_us[i] > 0 && (top < 0 || wait_us[i] > wait_us[top])) top = i;
    }
    return top;
  }

  void Add(const ResourceUsageSnapshot& other) {
    wall_us += other.wall_us;
    queue_us += other.queue_us;
    commit_us += other.commit_us;
    store_read_ops += other.store_read_ops;
    store_write_ops += other.store_write_ops;
    store_read_bytes += other.store_read_bytes;
    store_write_bytes += other.store_write_bytes;
    store_retries += other.store_retries;
    cache_hits += other.cache_hits;
    cache_misses += other.cache_misses;
    statement_retries += other.statement_retries;
    rows_scanned += other.rows_scanned;
    rows_returned += other.rows_returned;
    for (int i = 0; i < kWaitClassCount; ++i) {
      wait_us[i] += other.wait_us[i];
      wait_count[i] += other.wait_count[i];
    }
  }

  /// The EXPLAIN ANALYZE resource-vector block (multi-line, no trailing
  /// newline).
  std::string ToString() const {
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "resources: wall=%lldus queue=%lldus commit=%lldus retries=%llu\n"
        "  store: read_ops=%llu read_bytes=%llu write_ops=%llu "
        "write_bytes=%llu retries=%llu\n"
        "  cache: hits=%llu misses=%llu  rows: scanned=%llu returned=%llu",
        static_cast<long long>(wall_us), static_cast<long long>(queue_us),
        static_cast<long long>(commit_us),
        static_cast<unsigned long long>(statement_retries),
        static_cast<unsigned long long>(store_read_ops),
        static_cast<unsigned long long>(store_read_bytes),
        static_cast<unsigned long long>(store_write_ops),
        static_cast<unsigned long long>(store_write_bytes),
        static_cast<unsigned long long>(store_retries),
        static_cast<unsigned long long>(cache_hits),
        static_cast<unsigned long long>(cache_misses),
        static_cast<unsigned long long>(rows_scanned),
        static_cast<unsigned long long>(rows_returned));
    std::string out = buf;
    out += "\n  waits: total=";
    out += std::to_string(total_wait_us());
    out += "us";
    for (int i = 0; i < kWaitClassCount; ++i) {
      if (wait_count[i] == 0 && wait_us[i] == 0) continue;
      out += " ";
      out += WaitClassName(static_cast<WaitClass>(i));
      out += "=";
      out += std::to_string(wait_us[i]);
      out += "us/";
      out += std::to_string(wait_count[i]);
    }
    return out;
  }
};

/// Accumulator for one statement's resource vector, charged from the
/// existing choke points (admission, storage decorators, data cache, scan,
/// commit pipeline) through the ambient TraceContext — the same channel
/// Deadline/CancelToken already ride, so charges from DCP worker threads
/// land on the owning statement without new plumbing.
///
/// All fields are relaxed atomics: scan tasks on pool workers charge
/// concurrently; the owner reads the snapshot only after the scheduler has
/// joined its tasks. The accumulator must outlive every task of its
/// statement, which SqlSession guarantees by scoping it around execution
/// (Scheduler::Run waits for all submitted tasks; STO is explicitly
/// driven, never from a statement's captured context).
class ResourceUsage {
 public:
  void ChargeQueue(int64_t us) { queue_us_.fetch_add(us, kRelaxed); }
  void ChargeCommit(int64_t us) { commit_us_.fetch_add(us, kRelaxed); }
  void ChargeStoreOp(bool is_write, uint64_t bytes = 0) {
    if (is_write) {
      store_write_ops_.fetch_add(1, kRelaxed);
      if (bytes != 0) store_write_bytes_.fetch_add(bytes, kRelaxed);
    } else {
      store_read_ops_.fetch_add(1, kRelaxed);
      if (bytes != 0) store_read_bytes_.fetch_add(bytes, kRelaxed);
    }
  }
  void ChargeStoreBytes(bool is_write, uint64_t bytes) {
    if (bytes == 0) return;
    (is_write ? store_write_bytes_ : store_read_bytes_)
        .fetch_add(bytes, kRelaxed);
  }
  void ChargeStoreRetries(uint64_t n) {
    if (n != 0) store_retries_.fetch_add(n, kRelaxed);
  }
  void ChargeCacheHit() { cache_hits_.fetch_add(1, kRelaxed); }
  void ChargeCacheMiss() { cache_misses_.fetch_add(1, kRelaxed); }
  void ChargeStatementRetry() { statement_retries_.fetch_add(1, kRelaxed); }
  void ChargeRowsScanned(uint64_t n) {
    if (n != 0) rows_scanned_.fetch_add(n, kRelaxed);
  }
  void ChargeRowsReturned(uint64_t n) {
    if (n != 0) rows_returned_.fetch_add(n, kRelaxed);
  }
  void ChargeWait(WaitClass cls, int64_t us) {
    const int i = static_cast<int>(cls);
    wait_us_[i].fetch_add(us, kRelaxed);
    wait_count_[i].fetch_add(1, kRelaxed);
  }

  ResourceUsageSnapshot Snapshot() const {
    ResourceUsageSnapshot s;
    s.queue_us = queue_us_.load(kRelaxed);
    s.commit_us = commit_us_.load(kRelaxed);
    s.store_read_ops = store_read_ops_.load(kRelaxed);
    s.store_write_ops = store_write_ops_.load(kRelaxed);
    s.store_read_bytes = store_read_bytes_.load(kRelaxed);
    s.store_write_bytes = store_write_bytes_.load(kRelaxed);
    s.store_retries = store_retries_.load(kRelaxed);
    s.cache_hits = cache_hits_.load(kRelaxed);
    s.cache_misses = cache_misses_.load(kRelaxed);
    s.statement_retries = statement_retries_.load(kRelaxed);
    s.rows_scanned = rows_scanned_.load(kRelaxed);
    s.rows_returned = rows_returned_.load(kRelaxed);
    for (int i = 0; i < kWaitClassCount; ++i) {
      s.wait_us[i] = wait_us_[i].load(kRelaxed);
      s.wait_count[i] = wait_count_[i].load(kRelaxed);
    }
    return s;
  }

 private:
  static constexpr std::memory_order kRelaxed = std::memory_order_relaxed;
  std::atomic<int64_t> queue_us_{0};
  std::atomic<int64_t> commit_us_{0};
  std::atomic<uint64_t> store_read_ops_{0};
  std::atomic<uint64_t> store_write_ops_{0};
  std::atomic<uint64_t> store_read_bytes_{0};
  std::atomic<uint64_t> store_write_bytes_{0};
  std::atomic<uint64_t> store_retries_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> cache_misses_{0};
  std::atomic<uint64_t> statement_retries_{0};
  std::atomic<uint64_t> rows_scanned_{0};
  std::atomic<uint64_t> rows_returned_{0};
  std::atomic<int64_t> wait_us_[kWaitClassCount] = {};
  std::atomic<uint64_t> wait_count_[kWaitClassCount] = {};
};

/// The statement accumulator of the calling thread's ambient context;
/// null outside an accounted statement. Charge sites are no-ops when null.
inline ResourceUsage* CurrentResourceUsage() {
  return MutableCurrentTraceContext().usage;
}

/// Installs `usage` as the thread's ambient accumulator for the scope's
/// lifetime, restoring the previous one on destruction. SqlSession wraps
/// statement execution in one of these.
class ScopedResourceUsage {
 public:
  explicit ScopedResourceUsage(ResourceUsage* usage)
      : saved_(MutableCurrentTraceContext().usage) {
    MutableCurrentTraceContext().usage = usage;
  }
  ~ScopedResourceUsage() { MutableCurrentTraceContext().usage = saved_; }

  ScopedResourceUsage(const ScopedResourceUsage&) = delete;
  ScopedResourceUsage& operator=(const ScopedResourceUsage&) = delete;

 private:
  ResourceUsage* saved_;
};

}  // namespace polaris::common

#endif  // POLARIS_COMMON_RESOURCE_USAGE_H_
