#ifndef POLARIS_COMMON_TRACE_CONTEXT_H_
#define POLARIS_COMMON_TRACE_CONTEXT_H_

#include <cstdint>
#include <string_view>

#include "common/deadline.h"
#include "common/status.h"

namespace polaris::common {

class ResourceUsage;

/// Identifies where in a distributed trace the current thread is working:
/// the trace (one user statement or one STO background job), the innermost
/// open span, and — when known — the user transaction. Plain value type so
/// it can be captured at thread-crossing points (dcp::ThreadPool::Submit)
/// and reinstalled on the worker.
///
/// It lives in `common` (not `obs`) so that `common::logging` can stamp
/// every log line with the active ids without depending on the tracer.
struct TraceContext {
  uint64_t trace_id = 0;  // 0 = not tracing
  uint64_t span_id = 0;
  uint64_t txn_id = 0;
  /// The request's remaining time budget and cancellation token. Because it
  /// lives here, every thread-crossing point that carries the trace context
  /// (dcp::ThreadPool, STO jobs) carries the deadline too.
  Deadline deadline;
  /// The owning statement's resource accumulator (common/resource_usage.h);
  /// null outside an accounted statement. A raw pointer is safe because
  /// every thread-crossing carrier of the context is joined before the
  /// statement scope that owns the accumulator ends.
  ResourceUsage* usage = nullptr;

  bool active() const { return trace_id != 0; }
};

/// The calling thread's current trace context. Mutable so span scopes can
/// install/restore it and the transaction layer can fill in `txn_id` once
/// a transaction begins.
inline TraceContext& MutableCurrentTraceContext() {
  thread_local TraceContext ctx;
  return ctx;
}

inline TraceContext CurrentTraceContext() {
  return MutableCurrentTraceContext();
}

/// Installs `ctx` as the thread's current context for the scope's
/// lifetime; restores the previous context on destruction. Used by the
/// thread pool to carry the submitting thread's context onto workers.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext& ctx)
      : saved_(MutableCurrentTraceContext()) {
    MutableCurrentTraceContext() = ctx;
  }
  ~ScopedTraceContext() { MutableCurrentTraceContext() = saved_; }

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext saved_;
};

/// The calling thread's ambient deadline (unbounded by default).
inline const Deadline& CurrentDeadline() {
  return MutableCurrentTraceContext().deadline;
}

/// Cooperative cancellation point: checks the ambient deadline/token and
/// returns Cancelled / DeadlineExceeded / OK. Blocking loops call this
/// between units of work; it is a cheap no-op when no budget is installed.
inline Status CheckCurrentDeadline(std::string_view what) {
  const Deadline& d = CurrentDeadline();
  if (!d.bounded()) return Status::OK();
  return d.Check(what);
}

/// Installs `deadline` as the thread's ambient deadline for the scope's
/// lifetime, restoring the previous one on destruction. Used by SqlSession
/// at statement entry.
class ScopedDeadline {
 public:
  explicit ScopedDeadline(Deadline deadline)
      : saved_(MutableCurrentTraceContext().deadline) {
    MutableCurrentTraceContext().deadline = std::move(deadline);
  }
  ~ScopedDeadline() {
    MutableCurrentTraceContext().deadline = std::move(saved_);
  }

  ScopedDeadline(const ScopedDeadline&) = delete;
  ScopedDeadline& operator=(const ScopedDeadline&) = delete;

 private:
  Deadline saved_;
};

}  // namespace polaris::common

#endif  // POLARIS_COMMON_TRACE_CONTEXT_H_
