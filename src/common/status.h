#ifndef POLARIS_COMMON_STATUS_H_
#define POLARIS_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace polaris::common {

/// Error categories used across the engine. Modeled after the
/// RocksDB/Arrow status idiom: cheap to pass around, no exceptions.
enum class StatusCode {
  kOk = 0,
  kNotFound,
  kAlreadyExists,
  kInvalidArgument,
  kIOError,
  /// Transaction-level conflict (write-write, commit validation failure).
  /// Callers are expected to retry the transaction.
  kConflict,
  /// Transient infrastructure failure (node loss, storage throttling).
  /// The DCP retries tasks that fail with this code.
  kUnavailable,
  kCorruption,
  kFailedPrecondition,
  kNotSupported,
  kInternal,
  /// The caller's deadline elapsed before the operation finished. Never
  /// retried by any layer: the budget is already burned.
  kDeadlineExceeded,
  /// The operation was cancelled cooperatively (KILL, session teardown).
  /// Never retried.
  kCancelled,
};

/// Returns a stable human-readable name for a status code ("Conflict", ...).
std::string_view StatusCodeName(StatusCode code);

/// Result of an operation: a code plus an optional message. `Status::OK()`
/// carries no allocation. All fallible public APIs in this codebase return
/// `Status` or `Result<T>`.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Conflict(std::string msg) {
    return Status(StatusCode::kConflict, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsConflict() const { return code_ == StatusCode::kConflict; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsNotSupported() const { return code_ == StatusCode::kNotSupported; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "Conflict: write-write conflict on table 7" or "OK".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace polaris::common

/// Propagates a non-OK Status from the evaluated expression.
#define POLARIS_RETURN_IF_ERROR(expr)                        \
  do {                                                       \
    ::polaris::common::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                               \
  } while (false)

#define POLARIS_CONCAT_IMPL(a, b) a##b
#define POLARIS_CONCAT(a, b) POLARIS_CONCAT_IMPL(a, b)

/// Evaluates an expression returning Result<T>; on success binds the value
/// to `lhs`, otherwise returns the error status from the enclosing function.
#define POLARIS_ASSIGN_OR_RETURN(lhs, expr)                            \
  POLARIS_ASSIGN_OR_RETURN_IMPL(POLARIS_CONCAT(_res_, __LINE__), lhs,  \
                                expr)

#define POLARIS_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()

#endif  // POLARIS_COMMON_STATUS_H_
