#ifndef POLARIS_COMMON_WAIT_STATS_H_
#define POLARIS_COMMON_WAIT_STATS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/resource_usage.h"
#include "common/trace_context.h"

namespace polaris::common {

/// Engine-wide wait-event accounting (the dm_os_wait_stats analogue).
/// Every blocking point wraps its wait in a ScopedWait (or charges a known
/// duration via WaitStats::Charge); totals land in lock-free per-class
/// atomics here AND in the ambient statement's ResourceUsage, so the same
/// wait is visible engine-wide (sys.dm_wait_stats, waits.* metrics) and
/// per-statement (EXPLAIN ANALYZE, Query Store).
///
/// Attribution invariant: waits nest (a commit-barrier leader performs the
/// journal-append STORE_IO inside its barrier section; a store op inside a
/// retry loop), and each scope records only its SELF time — total minus
/// time already charged by inner waits on the same thread — so the classes
/// partition blocked time exactly and never double-count.
///
/// When `enabled()` is false (or the pointer handed to a ScopedWait is
/// null) the primitive is inert: no clock reads, no atomics — the
/// waits-off arm of the bench A/B overhead gate.
class WaitStats {
 public:
  struct ClassTotals {
    uint64_t count = 0;
    int64_t total_us = 0;
    int64_t max_us = 0;
    /// Signal latency: time between the waited-for resource becoming
    /// available and the waiter actually waking (the dm_os_wait_stats
    /// signal_wait_time split). Only classes whose wake path can stamp a
    /// ready-time report it (COMMIT_BARRIER); 0 elsewhere.
    int64_t signal_us = 0;
  };

  struct Snapshot {
    ClassTotals classes[kWaitClassCount];

    int64_t total_us() const {
      int64_t total = 0;
      for (const ClassTotals& c : classes) total += c.total_us;
      return total;
    }

    /// {"COMMIT_GATE":{"waits":N,"wait_us":N,"max_wait_us":N,
    ///   "signal_us":N}, ...} — classes with zero waits are included so
    /// consumers see the full taxonomy.
    std::string ToJson() const {
      std::string out = "{";
      for (int i = 0; i < kWaitClassCount; ++i) {
        if (i != 0) out += ",";
        out += "\"";
        out += WaitClassName(static_cast<WaitClass>(i));
        out += "\":{\"waits\":";
        out += std::to_string(classes[i].count);
        out += ",\"wait_us\":";
        out += std::to_string(classes[i].total_us);
        out += ",\"max_wait_us\":";
        out += std::to_string(classes[i].max_us);
        out += ",\"signal_us\":";
        out += std::to_string(classes[i].signal_us);
        out += "}";
      }
      out += "}";
      return out;
    }
  };

  /// A wait in progress right now, joined into sys.dm_tran_active by
  /// txn_id (best-effort: sampling a live slot races with its release).
  struct CurrentWait {
    uint64_t txn_id = 0;
    WaitClass cls = WaitClass::kCommitGate;
    int64_t start_us = 0;  // steady-clock micros (NowMicros basis)
  };

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Steady-clock micros — the time basis of every recorded wait.
  static int64_t NowMicros() {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  void Record(WaitClass cls, int64_t us) {
    if (us < 0) us = 0;
    const int i = static_cast<int>(cls);
    classes_[i].count.fetch_add(1, std::memory_order_relaxed);
    classes_[i].total_us.fetch_add(us, std::memory_order_relaxed);
    int64_t seen = classes_[i].max_us.load(std::memory_order_relaxed);
    while (us > seen && !classes_[i].max_us.compare_exchange_weak(
                            seen, us, std::memory_order_relaxed)) {
    }
  }

  void RecordSignal(WaitClass cls, int64_t us) {
    if (us <= 0) return;
    classes_[static_cast<int>(cls)].signal_us.fetch_add(
        us, std::memory_order_relaxed);
  }

  Snapshot TakeSnapshot() const {
    Snapshot s;
    for (int i = 0; i < kWaitClassCount; ++i) {
      s.classes[i].count = classes_[i].count.load(std::memory_order_relaxed);
      s.classes[i].total_us =
          classes_[i].total_us.load(std::memory_order_relaxed);
      s.classes[i].max_us =
          classes_[i].max_us.load(std::memory_order_relaxed);
      s.classes[i].signal_us =
          classes_[i].signal_us.load(std::memory_order_relaxed);
    }
    return s;
  }

  void Reset() {
    for (int i = 0; i < kWaitClassCount; ++i) {
      classes_[i].count.store(0, std::memory_order_relaxed);
      classes_[i].total_us.store(0, std::memory_order_relaxed);
      classes_[i].max_us.store(0, std::memory_order_relaxed);
      classes_[i].signal_us.store(0, std::memory_order_relaxed);
    }
  }

  /// Explicit-duration charge for waits whose length is known rather than
  /// measured in place (retry backoff advanced on a virtual clock, DCP
  /// queue latency stamped at submit). Charges `stats` (when attached and
  /// enabled) and the ambient ResourceUsage, and informs the innermost
  /// in-progress ScopedWait on this thread so the enclosing class records
  /// self-time only. Safe with `stats == nullptr`.
  static void Charge(WaitStats* stats, WaitClass cls, int64_t us);

  /// Waits in progress across all threads (for dm_tran_active's
  /// wait_class/wait_us columns). Only waits running under a known txn_id
  /// occupy a slot.
  std::vector<CurrentWait> CurrentWaits() const {
    std::vector<CurrentWait> out;
    for (const Slot& slot : slots_) {
      if (slot.state.load(std::memory_order_acquire) != 1) continue;
      CurrentWait w;
      w.txn_id = slot.txn_id.load(std::memory_order_relaxed);
      w.cls = static_cast<WaitClass>(
          slot.cls.load(std::memory_order_relaxed));
      w.start_us = slot.start_us.load(std::memory_order_relaxed);
      if (w.txn_id != 0) out.push_back(w);
    }
    return out;
  }

 private:
  friend class ScopedWait;

  struct AtomicTotals {
    std::atomic<uint64_t> count{0};
    std::atomic<int64_t> total_us{0};
    std::atomic<int64_t> max_us{0};
    std::atomic<int64_t> signal_us{0};
  };

  static constexpr int kCurrentWaitSlots = 64;
  struct Slot {
    std::atomic<int> state{0};  // 0 free, 1 published
    std::atomic<uint64_t> txn_id{0};
    std::atomic<int> cls{0};
    std::atomic<int64_t> start_us{0};
  };

  int ClaimSlot(uint64_t txn_id, WaitClass cls, int64_t start_us) {
    for (int i = 0; i < kCurrentWaitSlots; ++i) {
      int expected = 0;
      if (slots_[i].state.compare_exchange_strong(
              expected, 2, std::memory_order_acquire)) {
        slots_[i].txn_id.store(txn_id, std::memory_order_relaxed);
        slots_[i].cls.store(static_cast<int>(cls),
                            std::memory_order_relaxed);
        slots_[i].start_us.store(start_us, std::memory_order_relaxed);
        slots_[i].state.store(1, std::memory_order_release);
        return i;
      }
    }
    return -1;  // table full: the wait still counts, it just isn't visible
  }

  void ReleaseSlot(int i) {
    if (i < 0) return;
    slots_[i].txn_id.store(0, std::memory_order_relaxed);
    slots_[i].state.store(0, std::memory_order_release);
  }

  std::atomic<bool> enabled_{true};
  AtomicTotals classes_[kWaitClassCount];
  Slot slots_[kCurrentWaitSlots];
};

/// RAII measurement of one blocking region. Construct immediately before
/// blocking, destroy right after waking; records steady-clock self-time
/// (total minus nested waits) to the registry and the ambient statement.
/// Inert when `stats` is null or disabled.
class ScopedWait {
 public:
  ScopedWait(WaitStats* stats, WaitClass cls)
      : stats_(stats != nullptr && stats->enabled() ? stats : nullptr),
        cls_(cls) {
    if (stats_ == nullptr) return;
    start_us_ = WaitStats::NowMicros();
    parent_ = tls_top();
    tls_top() = this;
    const uint64_t txn_id = MutableCurrentTraceContext().txn_id;
    if (txn_id != 0) slot_ = stats_->ClaimSlot(txn_id, cls, start_us_);
  }

  ~ScopedWait() {
    if (stats_ == nullptr) return;
    stats_->ReleaseSlot(slot_);
    tls_top() = parent_;
    const int64_t total = WaitStats::NowMicros() - start_us_;
    int64_t self = total - child_us_;
    if (self < 0) self = 0;
    stats_->Record(cls_, self);
    if (parent_ != nullptr) parent_->child_us_ += total;
    if (ResourceUsage* usage = CurrentResourceUsage()) {
      usage->ChargeWait(cls_, self);
    }
  }

  ScopedWait(const ScopedWait&) = delete;
  ScopedWait& operator=(const ScopedWait&) = delete;

  /// Steady-clock micros at scope entry (for signal-latency splits).
  int64_t start_us() const { return start_us_; }

 private:
  friend class WaitStats;

  static ScopedWait*& tls_top() {
    thread_local ScopedWait* top = nullptr;
    return top;
  }

  WaitStats* stats_;
  WaitClass cls_;
  ScopedWait* parent_ = nullptr;
  int64_t start_us_ = 0;
  int64_t child_us_ = 0;
  int slot_ = -1;
};

inline void WaitStats::Charge(WaitStats* stats, WaitClass cls, int64_t us) {
  if (us <= 0) return;
  if (stats != nullptr && stats->enabled()) stats->Record(cls, us);
  if (ScopedWait* top = ScopedWait::tls_top()) top->child_us_ += us;
  if (ResourceUsage* usage = CurrentResourceUsage()) {
    usage->ChargeWait(cls, us);
  }
}

}  // namespace polaris::common

#endif  // POLARIS_COMMON_WAIT_STATS_H_
