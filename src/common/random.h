#ifndef POLARIS_COMMON_RANDOM_H_
#define POLARIS_COMMON_RANDOM_H_

#include <cstdint>

namespace polaris::common {

/// Deterministic xorshift128+ RNG. Used by workload generators and fault
/// injection so that tests and benchmarks are reproducible from a seed.
class Random {
 public:
  explicit Random(uint64_t seed) {
    // SplitMix64 expansion of the seed into two non-zero words.
    auto mix = [](uint64_t& s) {
      uint64_t z = (s += 0x9e3779b97f4a7c15ULL);
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      return z ^ (z >> 31);
    };
    uint64_t s = seed;
    s0_ = mix(s);
    s1_ = mix(s);
    if (s0_ == 0 && s1_ == 0) s1_ = 1;
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Returns true with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace polaris::common

#endif  // POLARIS_COMMON_RANDOM_H_
