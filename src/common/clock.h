#ifndef POLARIS_COMMON_CLOCK_H_
#define POLARIS_COMMON_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace polaris::common {

/// Microseconds since an arbitrary epoch.
using Micros = int64_t;

/// Clock abstraction. The engine never reads wall-clock time directly;
/// everything (transaction begin timestamps, file creation stamps used by
/// garbage collection, retention windows, benchmark cost accounting) goes
/// through a Clock so that tests and the benchmark harness can run on
/// deterministic virtual time.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Current time in microseconds. Must be monotonically non-decreasing.
  virtual Micros Now() = 0;
  /// Advances time by `delta` microseconds (no-op on real clocks).
  virtual void Advance(Micros delta) = 0;
};

/// Deterministic virtual clock. `Now()` returns the simulated time;
/// `Advance` moves it forward. Thread-safe.
class SimClock : public Clock {
 public:
  explicit SimClock(Micros start = 0) : now_(start) {}

  Micros Now() override { return now_.load(std::memory_order_relaxed); }

  void Advance(Micros delta) override {
    now_.fetch_add(delta, std::memory_order_relaxed);
  }

  /// Moves the clock to `t` if `t` is in the future; otherwise no-op.
  void AdvanceTo(Micros t);

 private:
  std::atomic<Micros> now_;
};

/// Wall-clock backed by std::chrono::steady_clock. `Advance` sleeps are not
/// supported and are ignored.
class SystemClock : public Clock {
 public:
  Micros Now() override;
  void Advance(Micros) override {}
};

}  // namespace polaris::common

#endif  // POLARIS_COMMON_CLOCK_H_
