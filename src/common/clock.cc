#include "common/clock.h"

#include <chrono>

namespace polaris::common {

void SimClock::AdvanceTo(Micros t) {
  Micros cur = now_.load(std::memory_order_relaxed);
  while (t > cur &&
         !now_.compare_exchange_weak(cur, t, std::memory_order_relaxed)) {
  }
}

Micros SystemClock::Now() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace polaris::common
