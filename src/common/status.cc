#include "common/status.h"

namespace polaris::common {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kConflict:
      return "Conflict";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace polaris::common
