#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

#include "common/trace_context.h"

namespace polaris::common {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_log_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

void LogMessage(LogLevel level, const std::string& component,
                const std::string& message) {
  if (level < GetLogLevel()) return;
  // Lines emitted inside a traced span carry the active trace/span/txn ids
  // so log output can be correlated with exported traces.
  const TraceContext& ctx = MutableCurrentTraceContext();
  std::lock_guard<std::mutex> lock(g_log_mutex);
  if (ctx.active()) {
    std::fprintf(stderr,
                 "[%s] %s: %s [trace=%llx span=%llx txn=%llu]\n",
                 LevelName(level), component.c_str(), message.c_str(),
                 static_cast<unsigned long long>(ctx.trace_id),
                 static_cast<unsigned long long>(ctx.span_id),
                 static_cast<unsigned long long>(ctx.txn_id));
  } else {
    std::fprintf(stderr, "[%s] %s: %s\n", LevelName(level), component.c_str(),
                 message.c_str());
  }
}

}  // namespace polaris::common
