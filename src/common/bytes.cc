#include "common/bytes.h"

namespace polaris::common {

Status ByteReader::GetVarint(uint64_t* v) {
  uint64_t result = 0;
  int shift = 0;
  while (true) {
    if (pos_ >= data_.size()) {
      return Status::Corruption("truncated varint");
    }
    uint8_t byte = static_cast<uint8_t>(data_[pos_++]);
    if (shift >= 64) {
      return Status::Corruption("varint too long");
    }
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  *v = result;
  return Status::OK();
}

Status ByteReader::GetString(std::string* s) {
  uint64_t len;
  POLARIS_RETURN_IF_ERROR(GetVarint(&len));
  if (remaining() < len) {
    return Status::Corruption("truncated string of length " +
                              std::to_string(len));
  }
  s->assign(data_.data() + pos_, len);
  pos_ += len;
  return Status::OK();
}

Status ByteReader::GetRaw(void* out, size_t n) { return GetFixed(out, n); }

}  // namespace polaris::common
