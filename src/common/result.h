#ifndef POLARIS_COMMON_RESULT_H_
#define POLARIS_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace polaris::common {

/// A value-or-error wrapper: either holds a `T` (and an OK status) or a
/// non-OK `Status`. The Arrow `Result<T>` idiom; use with
/// `POLARIS_ASSIGN_OR_RETURN`.
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  /// Constructs a failed result; `status` must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok());
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when this result holds an error.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace polaris::common

#endif  // POLARIS_COMMON_RESULT_H_
