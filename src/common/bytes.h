#ifndef POLARIS_COMMON_BYTES_H_
#define POLARIS_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace polaris::common {

/// Append-only binary encoder used for all on-"disk" structures (manifest
/// entries, columnar file pages, checkpoints). Little-endian fixed-width
/// integers plus LEB128 varints and length-prefixed strings.
class ByteWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }

  void PutU32(uint32_t v) { PutFixed(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutFixed(&v, sizeof(v)); }
  void PutI64(int64_t v) { PutFixed(&v, sizeof(v)); }
  void PutDouble(double v) { PutFixed(&v, sizeof(v)); }

  void PutVarint(uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<char>((v & 0x7f) | 0x80));
      v >>= 7;
    }
    buf_.push_back(static_cast<char>(v));
  }

  void PutString(std::string_view s) {
    PutVarint(s.size());
    buf_.append(s.data(), s.size());
  }

  void PutRaw(const void* data, size_t n) {
    buf_.append(static_cast<const char*>(data), n);
  }

  const std::string& data() const { return buf_; }
  std::string Release() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  void PutFixed(const void* p, size_t n) {
    buf_.append(static_cast<const char*>(p), n);
  }

  std::string buf_;
};

/// Sequential binary decoder over a byte range. All getters return a
/// Corruption status on truncated input rather than crashing, so that a
/// damaged blob surfaces as an error at the storage boundary.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  Status GetU8(uint8_t* v) { return GetFixed(v, sizeof(*v)); }
  Status GetU32(uint32_t* v) { return GetFixed(v, sizeof(*v)); }
  Status GetU64(uint64_t* v) { return GetFixed(v, sizeof(*v)); }
  Status GetI64(int64_t* v) { return GetFixed(v, sizeof(*v)); }
  Status GetDouble(double* v) { return GetFixed(v, sizeof(*v)); }

  Status GetVarint(uint64_t* v);
  Status GetString(std::string* s);
  Status GetRaw(void* out, size_t n);

  /// Bytes remaining after the cursor.
  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }
  size_t position() const { return pos_; }

 private:
  Status GetFixed(void* out, size_t n) {
    if (remaining() < n) {
      return Status::Corruption("truncated input: need " + std::to_string(n) +
                                " bytes, have " + std::to_string(remaining()));
    }
    std::memcpy(out, data_.data() + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace polaris::common

#endif  // POLARIS_COMMON_BYTES_H_
