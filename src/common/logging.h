#ifndef POLARIS_COMMON_LOGGING_H_
#define POLARIS_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace polaris::common {

enum class LogLevel { kDebug = 0, kInfo, kWarn, kError, kOff };

/// Process-wide minimum level; messages below it are discarded.
/// Tests set kOff (or kWarn) to keep output clean; examples use kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Emits one formatted line to stderr: "[level] component: message".
void LogMessage(LogLevel level, const std::string& component,
                const std::string& message);

namespace internal {

/// Stream-style log statement builder; flushes on destruction.
class LogStream {
 public:
  LogStream(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  ~LogStream() { LogMessage(level_, component_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace polaris::common

#define POLARIS_LOG(level, component)                                      \
  if (::polaris::common::GetLogLevel() <= ::polaris::common::LogLevel::level) \
  ::polaris::common::internal::LogStream(                                  \
      ::polaris::common::LogLevel::level, (component))

#endif  // POLARIS_COMMON_LOGGING_H_
