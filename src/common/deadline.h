#ifndef POLARIS_COMMON_DEADLINE_H_
#define POLARIS_COMMON_DEADLINE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>

#include "common/clock.h"
#include "common/status.h"

namespace polaris::common {

/// Shared cancellation state behind CancelSource/CancelToken. A source and
/// all tokens derived from it point at one of these; flipping the flag is
/// visible to every holder immediately.
struct CancelState {
  std::atomic<bool> cancelled{false};
  std::mutex mu;
  std::string reason;  // guarded by mu; set once when cancelled
};

/// Read-only view of a cancellation flag. Cheap to copy (shared_ptr).
/// A default-constructed token can never be cancelled.
class CancelToken {
 public:
  CancelToken() = default;

  bool cancellable() const { return state_ != nullptr; }

  bool cancelled() const {
    return state_ != nullptr &&
           state_->cancelled.load(std::memory_order_acquire);
  }

  /// The reason passed to CancelSource::Cancel, or "" if not cancelled.
  std::string reason() const {
    if (!cancelled()) return "";
    std::lock_guard<std::mutex> lock(state_->mu);
    return state_->reason;
  }

 private:
  friend class CancelSource;
  explicit CancelToken(std::shared_ptr<CancelState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<CancelState> state_;
};

/// Owner side of a cancellation flag. The transaction manager holds one per
/// active transaction; `KILL <txn_id>` flips it and every cooperative check
/// along the statement's path observes the flip.
class CancelSource {
 public:
  CancelSource() : state_(std::make_shared<CancelState>()) {}

  CancelToken token() const { return CancelToken(state_); }

  /// Requests cancellation. Idempotent; the first reason wins.
  void Cancel(std::string reason) {
    {
      std::lock_guard<std::mutex> lock(state_->mu);
      if (state_->reason.empty()) state_->reason = std::move(reason);
    }
    state_->cancelled.store(true, std::memory_order_release);
  }

  bool cancelled() const {
    return state_->cancelled.load(std::memory_order_acquire);
  }

 private:
  std::shared_ptr<CancelState> state_;
};

/// A point in (virtual or wall) time by which work must finish, plus an
/// optional cancellation token. Plain value type: it rides inside
/// TraceContext across thread-crossing points, so every layer that already
/// propagates trace context gets deadline propagation for free.
///
/// A default-constructed Deadline is unbounded and uncancellable — checks
/// are no-ops — so code paths with no caller budget pay nothing.
class Deadline {
 public:
  Deadline() = default;

  /// A deadline `budget_micros` from now on `clock`. budget <= 0 means
  /// "already expired" (used by tests for expire-before-start).
  static Deadline After(Clock* clock, Micros budget_micros,
                        CancelToken token = CancelToken()) {
    Deadline d;
    d.clock_ = clock;
    d.deadline_us_ = clock->Now() + budget_micros;
    d.token_ = std::move(token);
    return d;
  }

  /// An unbounded deadline that still observes `token` (KILL without a
  /// statement timeout).
  static Deadline CancellableOnly(CancelToken token) {
    Deadline d;
    d.token_ = std::move(token);
    return d;
  }

  bool has_deadline() const { return clock_ != nullptr; }
  bool cancellable() const { return token_.cancellable(); }
  /// True when a check could ever fail — lets hot loops skip the work.
  bool bounded() const { return has_deadline() || cancellable(); }

  const CancelToken& token() const { return token_; }
  void set_token(CancelToken token) { token_ = std::move(token); }

  /// Microseconds left before expiry; kUnboundedBudget when no deadline.
  /// Never negative.
  static constexpr Micros kUnboundedBudget = INT64_MAX;
  Micros remaining_micros() const {
    if (clock_ == nullptr) return kUnboundedBudget;
    Micros left = deadline_us_ - clock_->Now();
    return left > 0 ? left : 0;
  }

  bool expired() const {
    return clock_ != nullptr && clock_->Now() >= deadline_us_;
  }
  bool cancelled() const { return token_.cancelled(); }

  /// The cooperative check every blocking loop calls: OK while there is
  /// budget left and no cancellation; Cancelled or DeadlineExceeded (with
  /// `what` naming the blocked operation) otherwise. Cancellation wins ties
  /// so KILL is reported as Cancelled even after the deadline passes.
  Status Check(std::string_view what) const {
    if (cancelled()) {
      std::string reason = token_.reason();
      std::string msg(what);
      msg += ": cancelled";
      if (!reason.empty()) {
        msg += " (";
        msg += reason;
        msg += ")";
      }
      return Status::Cancelled(std::move(msg));
    }
    if (expired()) {
      std::string msg(what);
      msg += ": deadline exceeded";
      return Status::DeadlineExceeded(std::move(msg));
    }
    return Status::OK();
  }

 private:
  Clock* clock_ = nullptr;  // nullptr = no deadline
  Micros deadline_us_ = 0;  // absolute, on clock_
  CancelToken token_;
};

}  // namespace polaris::common

#endif  // POLARIS_COMMON_DEADLINE_H_
