#ifndef POLARIS_SQL_SESSION_H_
#define POLARIS_SQL_SESSION_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "engine/engine.h"
#include "sql/parser.h"
#include "txn/transaction.h"

namespace polaris::sql {

/// Result of executing one SQL statement.
struct SqlResult {
  /// Rows of a SELECT; empty batch for other statements.
  format::RecordBatch batch;
  /// Rows affected by INSERT/UPDATE/DELETE.
  uint64_t affected_rows = 0;
  /// Human-readable status line ("OK", "3 rows inserted", ...).
  std::string message;
};

/// A SQL connection to a PolarisEngine: the textual equivalent of the
/// T-SQL surface the paper's engine exposes through the SQL FE.
///
/// Transaction semantics mirror a SQL session: without an explicit BEGIN,
/// each statement runs in its own auto-commit transaction (retried on
/// optimistic conflicts); between BEGIN and COMMIT/ROLLBACK all statements
/// share one snapshot-isolated transaction, and a COMMIT that loses
/// validation returns Conflict with the transaction rolled back.
///
/// Not thread-safe — one session per connection, as in SQL Server.
class SqlSession {
 public:
  explicit SqlSession(engine::PolarisEngine* engine) : engine_(engine) {}

  ~SqlSession();

  SqlSession(const SqlSession&) = delete;
  SqlSession& operator=(const SqlSession&) = delete;

  /// Parses and executes one statement.
  common::Result<SqlResult> Execute(const std::string& statement);

  /// Opens an explicit transaction, optionally in a non-default isolation
  /// mode (the SQL surface only parses plain BEGIN; tests and embedding
  /// applications use this for RCSI/Serializable sessions).
  common::Status BeginTransaction(
      catalog::IsolationMode mode = catalog::IsolationMode::kSnapshot);

  bool in_transaction() const { return txn_ != nullptr; }

  /// True when the explicit transaction was rolled back by a statement
  /// conflict and the session is waiting for the client's COMMIT/ROLLBACK
  /// to acknowledge it.
  bool aborted_by_conflict() const { return aborted_by_conflict_; }

  /// Per-statement time budget installed by `SET DEADLINE <ms>`; 0 = off.
  int64_t statement_deadline_micros() const {
    return statement_deadline_micros_;
  }

  /// Replica read-staleness bound installed by `SET MAX_STALENESS <ms>`;
  /// 0 = off (reads serve whatever the apply watermark has).
  int64_t max_staleness_micros() const { return max_staleness_micros_; }

 private:
  common::Result<SqlResult> ExecuteParsed(const ParsedStatement& stmt);
  /// EXPLAIN ANALYZE: runs `stmt` under a forced-on trace and renders the
  /// resulting span tree (per-node wall time + attributes) as the result
  /// message. A statement killed, deadline-expired, or shed mid-run still
  /// renders its partial span tree: the terminal status is reported
  /// through `*terminal` and the call returns OK so the profile (plus the
  /// resource vector Execute appends) reaches the client.
  common::Result<SqlResult> ExecuteExplainAnalyze(const ParsedStatement& stmt,
                                                  common::Status* terminal);
  common::Result<SqlResult> ExecuteInsert(const ParsedStatement& stmt,
                                          txn::Transaction* txn);
  common::Result<SqlResult> ExecuteSelect(const ParsedStatement& stmt,
                                          txn::Transaction* txn);
  /// SELECT over a `sys.*` system view: materializes the DMV from live
  /// engine state (no transaction, no snapshot) and runs the same
  /// WHERE / aggregate / ORDER BY / LIMIT pipeline as table selects.
  common::Result<SqlResult> ExecuteSystemViewSelect(
      const ParsedStatement& stmt);
  common::Result<SqlResult> ExecuteUpdate(const ParsedStatement& stmt,
                                          txn::Transaction* txn);
  common::Result<SqlResult> ExecuteDelete(const ParsedStatement& stmt,
                                          txn::Transaction* txn);

  /// Runs `body` in the session transaction if one is open, otherwise in
  /// a fresh auto-commit transaction with conflict retries.
  common::Result<SqlResult> RunStatement(
      const std::function<common::Result<SqlResult>(txn::Transaction*)>&
          body);

  engine::PolarisEngine* engine_;
  std::unique_ptr<txn::Transaction> txn_;
  /// Set when a statement-level Conflict auto-aborted the explicit
  /// transaction; the next COMMIT/ROLLBACK reports the conflict-driven
  /// rollback instead of "no open transaction".
  bool aborted_by_conflict_ = false;
  common::Status conflict_cause_;
  /// SET DEADLINE <ms> budget applied to every subsequent statement
  /// (microseconds on the engine clock); 0 disables the deadline.
  int64_t statement_deadline_micros_ = 0;
  /// SET MAX_STALENESS <ms> bound enforced before every table SELECT on a
  /// replica (microseconds on the engine clock); 0 disables the bound.
  int64_t max_staleness_micros_ = 0;
};

/// Coerces a parsed literal to `want` (integer literals widen to DOUBLE;
/// NULL adopts any type). InvalidArgument on incompatible types.
common::Result<format::Value> CoerceLiteral(const format::Value& literal,
                                            format::ColumnType want);

}  // namespace polaris::sql

#endif  // POLARIS_SQL_SESSION_H_
