#ifndef POLARIS_SQL_FINGERPRINT_H_
#define POLARIS_SQL_FINGERPRINT_H_

#include <cstdint>
#include <string>

namespace polaris::sql {

/// Normalizes a SQL statement to its workload fingerprint: keywords upper
/// case, literals (integers, floats, strings) replaced by '?', whitespace
/// collapsed to single spaces, a trailing ';' dropped, and multi-row
/// VALUES lists collapsed to one row — so `INSERT INTO t VALUES (1,'a'),
/// (2,'b');` and `insert into t values (9,'z')` share the fingerprint
/// `INSERT INTO t VALUES ( ? , ? )`.
///
/// Statements the lexer rejects fall back to their whitespace-trimmed raw
/// text, so every statement has *some* stable fingerprint.
std::string FingerprintStatement(const std::string& statement);

/// Stable 64-bit id of a fingerprint (FNV-1a over the normalized text).
uint64_t FingerprintId(const std::string& fingerprint);

}  // namespace polaris::sql

#endif  // POLARIS_SQL_FINGERPRINT_H_
