#include "sql/parser.h"

#include <cctype>

#include "sql/lexer.h"

namespace polaris::sql {

using common::Result;
using common::Status;
using exec::AggFunc;
using exec::CompareOp;
using format::ColumnType;
using format::Value;

namespace {

/// Recursive-descent cursor over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<ParsedStatement> ParseStatement();

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }

  Status Error(const std::string& message) const {
    return Status::InvalidArgument(message + " near offset " +
                                   std::to_string(Peek().position));
  }

  bool AcceptKeyword(std::string_view kw) {
    if (Peek().IsKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool AcceptSymbol(std::string_view s) {
    if (Peek().IsSymbol(s)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectKeyword(std::string_view kw) {
    if (!AcceptKeyword(kw)) {
      return Error("expected " + std::string(kw));
    }
    return Status::OK();
  }
  Status ExpectSymbol(std::string_view s) {
    if (!AcceptSymbol(s)) {
      return Error("expected '" + std::string(s) + "'");
    }
    return Status::OK();
  }
  Result<std::string> ExpectIdentifier(const std::string& what) {
    if (Peek().type != TokenType::kIdentifier) {
      return Error("expected " + what);
    }
    return Advance().text;
  }
  /// Table names may be schema-qualified (`sys.dm_tran_active`); user
  /// tables remain single identifiers. The qualified form is stored
  /// dot-joined, matching the catalog / system-view lookup key.
  Result<std::string> ParseTableName(const std::string& what) {
    POLARIS_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier(what));
    while (AcceptSymbol(".")) {
      POLARIS_ASSIGN_OR_RETURN(std::string part,
                               ExpectIdentifier("identifier after '.'"));
      name += "." + part;
    }
    return name;
  }
  Status ExpectStatementEnd() {
    AcceptSymbol(";");
    if (Peek().type != TokenType::kEnd) {
      return Error("unexpected trailing input");
    }
    return Status::OK();
  }

  Result<Value> ParseLiteral();
  Result<ParsedStatement> ParseCreate();
  Result<ParsedStatement> ParseDrop();
  Result<ParsedStatement> ParseClone();
  Result<ParsedStatement> ParseInsert();
  Result<ParsedStatement> ParseSelect();
  Result<ParsedStatement> ParseUpdate();
  Result<ParsedStatement> ParseDelete();
  Status ParseWhere(exec::Conjunction* where);
  Status ParseAsOf(ParsedStatement* stmt);

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

Result<Value> Parser::ParseLiteral() {
  const Token& token = Peek();
  switch (token.type) {
    case TokenType::kInteger:
      Advance();
      return Value::Int64(token.int_value);
    case TokenType::kFloat:
      Advance();
      return Value::Double(token.double_value);
    case TokenType::kString:
      Advance();
      return Value::String(token.text);
    case TokenType::kKeyword:
      if (token.text == "NULL") {
        Advance();
        // Type is resolved against the schema at execution time.
        return Value::Null(ColumnType::kInt64);
      }
      [[fallthrough]];
    default:
      return Error("expected a literal");
  }
}

Result<ParsedStatement> Parser::ParseCreate() {
  ParsedStatement stmt;
  stmt.kind = ParsedStatement::Kind::kCreateTable;
  POLARIS_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
  POLARIS_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier("table name"));
  POLARIS_RETURN_IF_ERROR(ExpectSymbol("("));
  std::vector<format::ColumnDesc> columns;
  do {
    POLARIS_ASSIGN_OR_RETURN(std::string name,
                             ExpectIdentifier("column name"));
    ColumnType type;
    if (AcceptKeyword("BIGINT") || AcceptKeyword("INT")) {
      type = ColumnType::kInt64;
    } else if (AcceptKeyword("DOUBLE")) {
      type = ColumnType::kDouble;
    } else if (AcceptKeyword("TEXT")) {
      type = ColumnType::kString;
    } else {
      return Error("expected column type (BIGINT, DOUBLE or TEXT)");
    }
    columns.push_back({std::move(name), type});
  } while (AcceptSymbol(","));
  POLARIS_RETURN_IF_ERROR(ExpectSymbol(")"));
  if (AcceptKeyword("ORDER")) {
    POLARIS_RETURN_IF_ERROR(ExpectKeyword("BY"));
    POLARIS_ASSIGN_OR_RETURN(stmt.sort_column,
                             ExpectIdentifier("ORDER BY column"));
  }
  POLARIS_RETURN_IF_ERROR(ExpectStatementEnd());
  stmt.schema = format::Schema(std::move(columns));
  return stmt;
}

Result<ParsedStatement> Parser::ParseDrop() {
  ParsedStatement stmt;
  stmt.kind = ParsedStatement::Kind::kDropTable;
  POLARIS_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
  POLARIS_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier("table name"));
  POLARIS_RETURN_IF_ERROR(ExpectStatementEnd());
  return stmt;
}

Status Parser::ParseAsOf(ParsedStatement* stmt) {
  if (AcceptKeyword("AS")) {
    POLARIS_RETURN_IF_ERROR(ExpectKeyword("OF"));
    if (Peek().type != TokenType::kInteger) {
      return Error("expected a timestamp (microseconds) after AS OF");
    }
    stmt->as_of = Advance().int_value;
  }
  return Status::OK();
}

Result<ParsedStatement> Parser::ParseClone() {
  ParsedStatement stmt;
  stmt.kind = ParsedStatement::Kind::kCloneTable;
  POLARIS_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
  POLARIS_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier("source table"));
  POLARIS_RETURN_IF_ERROR(ExpectKeyword("TO"));
  POLARIS_ASSIGN_OR_RETURN(stmt.clone_target,
                           ExpectIdentifier("target table"));
  POLARIS_RETURN_IF_ERROR(ParseAsOf(&stmt));
  POLARIS_RETURN_IF_ERROR(ExpectStatementEnd());
  return stmt;
}

Result<ParsedStatement> Parser::ParseInsert() {
  ParsedStatement stmt;
  stmt.kind = ParsedStatement::Kind::kInsert;
  POLARIS_RETURN_IF_ERROR(ExpectKeyword("INTO"));
  POLARIS_ASSIGN_OR_RETURN(stmt.table, ParseTableName("table name"));
  POLARIS_RETURN_IF_ERROR(ExpectKeyword("VALUES"));
  do {
    POLARIS_RETURN_IF_ERROR(ExpectSymbol("("));
    std::vector<Value> row;
    do {
      POLARIS_ASSIGN_OR_RETURN(Value value, ParseLiteral());
      row.push_back(std::move(value));
    } while (AcceptSymbol(","));
    POLARIS_RETURN_IF_ERROR(ExpectSymbol(")"));
    stmt.insert_rows.push_back(std::move(row));
  } while (AcceptSymbol(","));
  POLARIS_RETURN_IF_ERROR(ExpectStatementEnd());
  return stmt;
}

Status Parser::ParseWhere(exec::Conjunction* where) {
  if (!AcceptKeyword("WHERE")) return Status::OK();
  do {
    auto column = ExpectIdentifier("column in WHERE");
    POLARIS_RETURN_IF_ERROR(column.status());
    CompareOp op;
    if (AcceptSymbol("=")) {
      op = CompareOp::kEq;
    } else if (AcceptSymbol("!=")) {
      op = CompareOp::kNe;
    } else if (AcceptSymbol("<=")) {
      op = CompareOp::kLe;
    } else if (AcceptSymbol(">=")) {
      op = CompareOp::kGe;
    } else if (AcceptSymbol("<")) {
      op = CompareOp::kLt;
    } else if (AcceptSymbol(">")) {
      op = CompareOp::kGt;
    } else {
      return Error("expected a comparison operator");
    }
    POLARIS_ASSIGN_OR_RETURN(Value literal, ParseLiteral());
    where->predicates.push_back(
        exec::Predicate::Make(*column, op, std::move(literal)));
  } while (AcceptKeyword("AND"));
  return Status::OK();
}

Result<ParsedStatement> Parser::ParseSelect() {
  ParsedStatement stmt;
  stmt.kind = ParsedStatement::Kind::kSelect;
  do {
    SelectItem item;
    if (AcceptSymbol("*")) {
      item.star = true;
    } else if (Peek().type == TokenType::kKeyword &&
               (Peek().text == "COUNT" || Peek().text == "SUM" ||
                Peek().text == "MIN" || Peek().text == "MAX" ||
                Peek().text == "AVG")) {
      std::string func = Advance().text;
      if (func == "COUNT") {
        item.aggregate = AggFunc::kCount;
      } else if (func == "SUM") {
        item.aggregate = AggFunc::kSum;
      } else if (func == "MIN") {
        item.aggregate = AggFunc::kMin;
      } else if (func == "MAX") {
        item.aggregate = AggFunc::kMax;
      } else {
        item.aggregate = AggFunc::kAvg;
      }
      POLARIS_RETURN_IF_ERROR(ExpectSymbol("("));
      if (AcceptSymbol("*")) {
        if (*item.aggregate != AggFunc::kCount) {
          return Error("only COUNT may aggregate '*'");
        }
      } else {
        POLARIS_ASSIGN_OR_RETURN(item.column,
                                 ExpectIdentifier("aggregate column"));
      }
      POLARIS_RETURN_IF_ERROR(ExpectSymbol(")"));
      // Default output name: count_x, sum_x, ...; COUNT(*) -> count.
      std::string lower = func;
      for (auto& ch : lower) ch = static_cast<char>(std::tolower(ch));
      item.alias = item.column.empty() ? lower : lower + "_" + item.column;
    } else {
      POLARIS_ASSIGN_OR_RETURN(item.column,
                               ExpectIdentifier("column in SELECT list"));
      item.alias = item.column;
    }
    if (AcceptKeyword("AS")) {
      POLARIS_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier("alias"));
    }
    stmt.select_items.push_back(std::move(item));
  } while (AcceptSymbol(","));

  POLARIS_RETURN_IF_ERROR(ExpectKeyword("FROM"));
  POLARIS_ASSIGN_OR_RETURN(stmt.table, ParseTableName("table name"));
  POLARIS_RETURN_IF_ERROR(ParseAsOf(&stmt));
  POLARIS_RETURN_IF_ERROR(ParseWhere(&stmt.where));
  if (AcceptKeyword("GROUP")) {
    POLARIS_RETURN_IF_ERROR(ExpectKeyword("BY"));
    do {
      POLARIS_ASSIGN_OR_RETURN(std::string col,
                               ExpectIdentifier("GROUP BY column"));
      stmt.group_by.push_back(std::move(col));
    } while (AcceptSymbol(","));
  }
  if (AcceptKeyword("ORDER")) {
    POLARIS_RETURN_IF_ERROR(ExpectKeyword("BY"));
    do {
      ParsedStatement::OrderKey key;
      POLARIS_ASSIGN_OR_RETURN(key.column,
                               ExpectIdentifier("ORDER BY column"));
      if (AcceptKeyword("DESC")) {
        key.descending = true;
      } else {
        AcceptKeyword("ASC");
      }
      stmt.order_by.push_back(std::move(key));
    } while (AcceptSymbol(","));
  }
  if (AcceptKeyword("LIMIT")) {
    if (Peek().type != TokenType::kInteger || Peek().int_value < 0) {
      return Error("expected a non-negative integer after LIMIT");
    }
    stmt.limit = static_cast<uint64_t>(Advance().int_value);
  }
  POLARIS_RETURN_IF_ERROR(ExpectStatementEnd());
  return stmt;
}

Result<ParsedStatement> Parser::ParseUpdate() {
  ParsedStatement stmt;
  stmt.kind = ParsedStatement::Kind::kUpdate;
  POLARIS_ASSIGN_OR_RETURN(stmt.table, ParseTableName("table name"));
  POLARIS_RETURN_IF_ERROR(ExpectKeyword("SET"));
  do {
    POLARIS_ASSIGN_OR_RETURN(std::string column,
                             ExpectIdentifier("column in SET"));
    POLARIS_RETURN_IF_ERROR(ExpectSymbol("="));
    exec::Assignment assignment;
    assignment.column = column;
    // Either `col = <literal>` or `col = col +|- <literal>`.
    if (Peek().type == TokenType::kIdentifier && Peek().text == column) {
      Advance();
      bool negate;
      if (AcceptSymbol("+")) {
        negate = false;
      } else if (AcceptSymbol("-")) {
        negate = true;
      } else {
        return Error("expected '+' or '-' after column self-reference");
      }
      POLARIS_ASSIGN_OR_RETURN(Value delta, ParseLiteral());
      if (delta.type == ColumnType::kInt64 && !delta.is_null) {
        assignment.kind = exec::Assignment::Kind::kAddInt64;
        assignment.value = Value::Int64(negate ? -delta.i64 : delta.i64);
      } else if (delta.type == ColumnType::kDouble && !delta.is_null) {
        assignment.kind = exec::Assignment::Kind::kAddDouble;
        assignment.value =
            Value::Double(negate ? -delta.f64 : delta.f64);
      } else {
        return Error("arithmetic update requires a numeric literal");
      }
    } else {
      assignment.kind = exec::Assignment::Kind::kSetValue;
      POLARIS_ASSIGN_OR_RETURN(assignment.value, ParseLiteral());
    }
    stmt.assignments.push_back(std::move(assignment));
  } while (AcceptSymbol(","));
  POLARIS_RETURN_IF_ERROR(ParseWhere(&stmt.where));
  POLARIS_RETURN_IF_ERROR(ExpectStatementEnd());
  return stmt;
}

Result<ParsedStatement> Parser::ParseDelete() {
  ParsedStatement stmt;
  stmt.kind = ParsedStatement::Kind::kDelete;
  POLARIS_RETURN_IF_ERROR(ExpectKeyword("FROM"));
  POLARIS_ASSIGN_OR_RETURN(stmt.table, ParseTableName("table name"));
  POLARIS_RETURN_IF_ERROR(ParseWhere(&stmt.where));
  POLARIS_RETURN_IF_ERROR(ExpectStatementEnd());
  return stmt;
}

Result<ParsedStatement> Parser::ParseStatement() {
  if (AcceptKeyword("EXPLAIN")) {
    POLARIS_RETURN_IF_ERROR(ExpectKeyword("ANALYZE"));
    if (Peek().IsKeyword("EXPLAIN")) {
      return Error("EXPLAIN ANALYZE cannot be nested");
    }
    POLARIS_ASSIGN_OR_RETURN(ParsedStatement inner, ParseStatement());
    inner.explain_analyze = true;
    return inner;
  }
  if (AcceptKeyword("CREATE")) return ParseCreate();
  if (AcceptKeyword("DROP")) return ParseDrop();
  if (AcceptKeyword("CLONE")) return ParseClone();
  if (AcceptKeyword("INSERT")) return ParseInsert();
  if (AcceptKeyword("SELECT")) return ParseSelect();
  if (AcceptKeyword("UPDATE")) return ParseUpdate();
  if (AcceptKeyword("DELETE")) return ParseDelete();
  if (AcceptKeyword("BEGIN")) {
    AcceptKeyword("TRANSACTION");
    ParsedStatement stmt;
    stmt.kind = ParsedStatement::Kind::kBegin;
    POLARIS_RETURN_IF_ERROR(ExpectStatementEnd());
    return stmt;
  }
  if (AcceptKeyword("COMMIT")) {
    ParsedStatement stmt;
    stmt.kind = ParsedStatement::Kind::kCommit;
    POLARIS_RETURN_IF_ERROR(ExpectStatementEnd());
    return stmt;
  }
  if (AcceptKeyword("ROLLBACK")) {
    ParsedStatement stmt;
    stmt.kind = ParsedStatement::Kind::kRollback;
    POLARIS_RETURN_IF_ERROR(ExpectStatementEnd());
    return stmt;
  }
  if (AcceptKeyword("KILL")) {
    ParsedStatement stmt;
    stmt.kind = ParsedStatement::Kind::kKill;
    if (Peek().type != TokenType::kInteger || Peek().int_value <= 0) {
      return Error("expected a positive transaction id after KILL");
    }
    stmt.kill_txn_id = static_cast<uint64_t>(Advance().int_value);
    POLARIS_RETURN_IF_ERROR(ExpectStatementEnd());
    return stmt;
  }
  if (AcceptKeyword("PROMOTE")) {
    // PROMOTE: claim the next epoch and take over as primary (replica
    // sessions only; the engine rejects it elsewhere).
    ParsedStatement stmt;
    stmt.kind = ParsedStatement::Kind::kPromote;
    POLARIS_RETURN_IF_ERROR(ExpectStatementEnd());
    return stmt;
  }
  if (AcceptKeyword("SET")) {
    // Statement-leading SET is a session option; UPDATE ... SET is handled
    // inside ParseUpdate and never reaches here.
    ParsedStatement stmt;
    if (AcceptKeyword("MAX_STALENESS")) {
      // SET MAX_STALENESS <ms>: staleness-bounded replica reads; 0 turns
      // the bound off (plain watermark reads).
      stmt.kind = ParsedStatement::Kind::kSetMaxStaleness;
      if (Peek().type != TokenType::kInteger || Peek().int_value < 0) {
        return Error("expected a non-negative millisecond bound after "
                     "SET MAX_STALENESS");
      }
      stmt.max_staleness_millis = Advance().int_value;
      POLARIS_RETURN_IF_ERROR(ExpectStatementEnd());
      return stmt;
    }
    if (AcceptKeyword("WAIT")) {
      // SET WAIT FOR COMMIT <seq>: block until this session's engine has
      // applied commit sequence <seq> (read-your-writes on a replica).
      stmt.kind = ParsedStatement::Kind::kWaitForCommit;
      POLARIS_RETURN_IF_ERROR(ExpectKeyword("FOR"));
      POLARIS_RETURN_IF_ERROR(ExpectKeyword("COMMIT"));
      if (Peek().type != TokenType::kInteger || Peek().int_value <= 0) {
        return Error("expected a positive commit sequence after "
                     "SET WAIT FOR COMMIT");
      }
      stmt.wait_commit_seq = static_cast<uint64_t>(Advance().int_value);
      POLARIS_RETURN_IF_ERROR(ExpectStatementEnd());
      return stmt;
    }
    stmt.kind = ParsedStatement::Kind::kSetDeadline;
    POLARIS_RETURN_IF_ERROR(ExpectKeyword("DEADLINE"));
    if (Peek().type != TokenType::kInteger || Peek().int_value < 0) {
      return Error("expected a non-negative millisecond budget after "
                   "SET DEADLINE");
    }
    stmt.deadline_millis = Advance().int_value;
    POLARIS_RETURN_IF_ERROR(ExpectStatementEnd());
    return stmt;
  }
  return Error("expected a statement keyword");
}

}  // namespace

Result<ParsedStatement> Parse(const std::string& sql) {
  POLARIS_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

}  // namespace polaris::sql
