#include "sql/lexer.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstdlib>

namespace polaris::sql {

using common::Result;
using common::Status;

namespace {

constexpr std::array<std::string_view, 45> kKeywords = {
    "AS",     "ASC",    "AVG",      "BEGIN",  "BY",     "CLONE",
    "COMMIT", "COUNT",  "CREATE",   "DELETE", "DESC",   "DOUBLE",
    "DROP",   "FROM",   "GROUP",    "INSERT", "INT",    "INTO",
    "MAX",    "MIN",    "NULL",     "OF",     "ORDER",  "ROLLBACK",
    "SELECT", "SET",    "SUM",      "TABLE",  "TEXT",   "TO",
    "AND",    "BIGINT", "TRANSACTION", "UPDATE", "VALUES", "WHERE",
    "LIMIT",  "EXPLAIN", "ANALYZE", "KILL",   "DEADLINE",
    "WAIT",   "FOR",    "MAX_STALENESS", "PROMOTE"};

bool IsKeywordWord(const std::string& upper) {
  return std::find(kKeywords.begin(), kKeywords.end(), upper) !=
         kKeywords.end();
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // -- line comments.
    if (c == '-' && i + 1 < n && input[i + 1] == '-') {
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    Token token;
    token.position = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(input[i])) ||
                       input[i] == '_')) {
        ++i;
      }
      std::string word = input.substr(start, i - start);
      std::string upper = word;
      std::transform(upper.begin(), upper.end(), upper.begin(),
                     [](unsigned char ch) { return std::toupper(ch); });
      if (IsKeywordWord(upper)) {
        token.type = TokenType::kKeyword;
        token.text = upper;
      } else {
        token.type = TokenType::kIdentifier;
        token.text = word;
      }
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '-' && i + 1 < n &&
                std::isdigit(static_cast<unsigned char>(input[i + 1])) &&
                (tokens.empty() ||
                 tokens.back().type == TokenType::kSymbol))) {
      // A '-' directly before digits is a negative literal only when it
      // cannot be a binary minus (previous token was a symbol or none).
      size_t start = i;
      if (c == '-') ++i;
      bool is_float = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(input[i])) ||
                       input[i] == '.')) {
        if (input[i] == '.') {
          if (is_float) {
            return Status::InvalidArgument(
                "malformed number at offset " + std::to_string(start));
          }
          is_float = true;
        }
        ++i;
      }
      std::string num = input.substr(start, i - start);
      if (is_float) {
        token.type = TokenType::kFloat;
        token.double_value = std::strtod(num.c_str(), nullptr);
      } else {
        token.type = TokenType::kInteger;
        token.int_value = std::strtoll(num.c_str(), nullptr, 10);
      }
      token.text = std::move(num);
    } else if (c == '\'') {
      ++i;
      std::string value;
      bool closed = false;
      while (i < n) {
        if (input[i] == '\'') {
          if (i + 1 < n && input[i + 1] == '\'') {  // '' escape
            value += '\'';
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        value += input[i++];
      }
      if (!closed) {
        return Status::InvalidArgument("unterminated string literal at offset " +
                                       std::to_string(token.position));
      }
      token.type = TokenType::kString;
      token.text = std::move(value);
    } else {
      // Symbols, including the two-character comparison operators.
      auto two = input.substr(i, 2);
      if (two == "<=" || two == ">=" || two == "!=" || two == "<>") {
        token.type = TokenType::kSymbol;
        token.text = two == "<>" ? "!=" : two;
        i += 2;
      } else if (std::string("(),;*=<>+-.").find(c) != std::string::npos) {
        token.type = TokenType::kSymbol;
        token.text = std::string(1, c);
        ++i;
      } else {
        return Status::InvalidArgument("unexpected character '" +
                                       std::string(1, c) + "' at offset " +
                                       std::to_string(i));
      }
    }
    tokens.push_back(std::move(token));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.position = n;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace polaris::sql
