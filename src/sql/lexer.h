#ifndef POLARIS_SQL_LEXER_H_
#define POLARIS_SQL_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace polaris::sql {

/// Token kinds produced by the SQL lexer.
enum class TokenType {
  kKeyword,     // normalized to upper case
  kIdentifier,  // as written (identifiers are case-sensitive)
  kInteger,
  kFloat,
  kString,  // quoted literal, quotes stripped, '' unescaped
  kSymbol,  // ( ) , ; * = < > <= >= != <> + - .
  kEnd,
};

/// One lexical token with its source position (for error messages).
struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;      // keyword (upper), identifier, symbol, or literal
  int64_t int_value = 0;
  double double_value = 0.0;
  size_t position = 0;  // byte offset in the input

  bool IsKeyword(std::string_view kw) const {
    return type == TokenType::kKeyword && text == kw;
  }
  bool IsSymbol(std::string_view s) const {
    return type == TokenType::kSymbol && text == s;
  }
};

/// Tokenizes `input`. Keywords are recognized case-insensitively from the
/// dialect's reserved-word list; everything else alphanumeric is an
/// identifier. Fails with InvalidArgument on malformed literals or stray
/// characters, reporting the byte offset.
common::Result<std::vector<Token>> Tokenize(const std::string& input);

}  // namespace polaris::sql

#endif  // POLARIS_SQL_LEXER_H_
