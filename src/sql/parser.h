#ifndef POLARIS_SQL_PARSER_H_
#define POLARIS_SQL_PARSER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "exec/aggregate.h"
#include "exec/dml.h"
#include "exec/expression.h"
#include "format/schema.h"
#include "format/value.h"

namespace polaris::sql {

/// One item of a SELECT list: either a plain column, `*`, or an aggregate
/// over a column (or `COUNT(*)`).
struct SelectItem {
  bool star = false;
  std::string column;                    // empty for COUNT(*) / star
  std::optional<exec::AggFunc> aggregate;
  std::string alias;                     // output name; defaults applied
};

/// The parsed form of one SQL statement. A single struct with a kind tag
/// keeps the executor simple; only the fields relevant to `kind` are
/// populated.
struct ParsedStatement {
  enum class Kind {
    kCreateTable,
    kDropTable,
    kInsert,
    kSelect,
    kUpdate,
    kDelete,
    kBegin,
    kCommit,
    kRollback,
    kCloneTable,
    kKill,         // KILL <txn_id>: request cooperative cancellation
    kSetDeadline,  // SET DEADLINE <ms>: per-session statement budget
    kWaitForCommit,  // SET WAIT FOR COMMIT <seq>: replica read-your-writes
    kSetMaxStaleness,  // SET MAX_STALENESS <ms>: staleness-bounded reads
    kPromote,          // PROMOTE: replica takes over as primary
  };
  Kind kind = Kind::kSelect;

  /// Statement was prefixed with EXPLAIN ANALYZE: execute it under a
  /// dedicated trace and return the profile (span tree) instead of rows.
  bool explain_analyze = false;

  std::string table;
  std::string clone_target;                 // CLONE TABLE <table> TO <target>
  format::Schema schema;                    // CREATE TABLE
  std::string sort_column;                  // CREATE TABLE ... ORDER BY col
  std::vector<std::vector<format::Value>> insert_rows;  // INSERT VALUES
  std::vector<SelectItem> select_items;     // SELECT
  exec::Conjunction where;                  // SELECT/UPDATE/DELETE
  std::vector<std::string> group_by;        // SELECT
  /// ORDER BY keys over the *output* columns, applied after aggregation.
  struct OrderKey {
    std::string column;
    bool descending = false;
  };
  std::vector<OrderKey> order_by;           // SELECT
  std::optional<uint64_t> limit;            // SELECT ... LIMIT n
  std::optional<int64_t> as_of;             // ... AS OF <micros>
  std::vector<exec::Assignment> assignments;  // UPDATE ... SET
  uint64_t kill_txn_id = 0;                 // KILL <txn_id>
  int64_t deadline_millis = 0;              // SET DEADLINE <ms>; 0 disables
  uint64_t wait_commit_seq = 0;             // SET WAIT FOR COMMIT <seq>
  int64_t max_staleness_millis = 0;         // SET MAX_STALENESS <ms>
};

/// Parses exactly one statement (a trailing ';' is allowed). The
/// supported dialect — a working subset of the T-SQL surface the paper's
/// engine exposes:
///
///   CREATE TABLE t (col BIGINT|DOUBLE|TEXT, ...) [ORDER BY col]
///   DROP TABLE t
///   CLONE TABLE src TO dst [AS OF <micros>]
///   INSERT INTO t VALUES (lit, ...) [, (lit, ...)]...
///   SELECT *|items FROM t [AS OF <micros>] [WHERE conj] [GROUP BY cols]
///     [ORDER BY col [ASC|DESC], ...] [LIMIT n]
///     items: col | COUNT(*) | COUNT|SUM|MIN|MAX|AVG(col) [AS alias]
///     conj:  col =|!=|<|<=|>|>= literal [AND ...]
///   UPDATE t SET col = lit | col = col + lit | col = col - lit, ...
///     [WHERE conj]
///   DELETE FROM t [WHERE conj]
///   BEGIN [TRANSACTION] | COMMIT | ROLLBACK
///   KILL <txn_id>
///   SET DEADLINE <ms>            -- 0 turns the session deadline off
///   SET WAIT FOR COMMIT <seq>    -- block until <seq> is visible (replica
///                                   read-your-writes; deadline-bounded)
///   SET MAX_STALENESS <ms>       -- bound replica read staleness; reads
///                                   force a catch-up poll when behind
///                                   (0 turns the bound off)
///   PROMOTE                      -- replica claims the next epoch and
///                                   takes over as primary (fences the
///                                   old one)
///   EXPLAIN ANALYZE <statement>
///
/// Table names in DML/SELECT may be schema-qualified (`sys.dm_health`);
/// the `sys.` namespace is reserved for read-only system views.
///
/// Literal typing is resolved against the table schema at execution time
/// (integer literals widen to DOUBLE columns).
common::Result<ParsedStatement> Parse(const std::string& sql);

}  // namespace polaris::sql

#endif  // POLARIS_SQL_PARSER_H_
