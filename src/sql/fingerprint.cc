#include "sql/fingerprint.h"

#include <vector>

#include "sql/lexer.h"

namespace polaris::sql {

namespace {

/// Trims and collapses whitespace runs to single spaces (the fallback
/// normalization for statements the lexer cannot tokenize).
std::string CollapseWhitespace(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  bool pending_space = false;
  for (char c : text) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      pending_space = !out.empty();
      continue;
    }
    if (pending_space) out += ' ';
    pending_space = false;
    out += c;
  }
  return out;
}

}  // namespace

std::string FingerprintStatement(const std::string& statement) {
  auto tokens = Tokenize(statement);
  if (!tokens.ok()) return CollapseWhitespace(statement);

  std::string out;
  out.reserve(statement.size());
  bool after_values = false;
  bool saw_value_group = false;
  for (size_t i = 0; i < tokens->size(); ++i) {
    const Token& token = (*tokens)[i];
    if (token.type == TokenType::kEnd) break;
    if (token.IsSymbol(";") && i + 2 >= tokens->size()) continue;
    if (token.IsKeyword("VALUES")) {
      after_values = true;
      saw_value_group = false;
    }
    // Collapse `VALUES (..), (..), ...` to its first row: the row count is
    // a literal property of the statement, not part of its shape.
    if (after_values && saw_value_group && token.IsSymbol(",") &&
        i + 1 < tokens->size() && (*tokens)[i + 1].IsSymbol("(")) {
      int depth = 0;
      size_t j = i + 1;
      for (; j < tokens->size(); ++j) {
        if ((*tokens)[j].IsSymbol("(")) ++depth;
        if ((*tokens)[j].IsSymbol(")") && --depth == 0) break;
      }
      i = j;  // skip the whole extra row group
      continue;
    }
    if (after_values && token.IsSymbol(")")) saw_value_group = true;
    if (!out.empty()) out += ' ';
    switch (token.type) {
      case TokenType::kInteger:
      case TokenType::kFloat:
      case TokenType::kString:
        out += '?';
        break;
      default:
        out += token.text;
        break;
    }
  }
  return out.empty() ? CollapseWhitespace(statement) : out;
}

uint64_t FingerprintId(const std::string& fingerprint) {
  uint64_t hash = 1469598103934665603ull;  // FNV-1a 64
  for (unsigned char c : fingerprint) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return hash;
}

}  // namespace polaris::sql
