#include "sql/session.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <map>

#include "common/resource_usage.h"
#include "common/trace_context.h"
#include "engine/system_views.h"
#include "obs/tracer.h"
#include "sql/fingerprint.h"

namespace polaris::sql {

using common::Result;
using common::Status;
using engine::QuerySpec;
using format::ColumnType;
using format::RecordBatch;
using format::Value;

Result<Value> CoerceLiteral(const Value& literal, ColumnType want) {
  if (literal.is_null) return Value::Null(want);
  if (literal.type == want) return literal;
  if (literal.type == ColumnType::kInt64 && want == ColumnType::kDouble) {
    return Value::Double(static_cast<double>(literal.i64));
  }
  return Status::InvalidArgument(
      "cannot convert literal '" + literal.ToString() + "' to " +
      std::string(format::ColumnTypeName(want)));
}

SqlSession::~SqlSession() {
  if (txn_ != nullptr && !txn_->finished()) {
    (void)engine_->Abort(txn_.get());
  }
}

namespace {

/// Resolves WHERE literal types against the table schema (the parser does
/// not know column types).
Status CoerceWhere(const format::Schema& schema, exec::Conjunction* where) {
  for (auto& pred : where->predicates) {
    int idx = schema.FindColumn(pred.column);
    if (idx < 0) {
      return Status::InvalidArgument("unknown column in WHERE: " +
                                     pred.column);
    }
    POLARIS_ASSIGN_OR_RETURN(
        pred.literal, CoerceLiteral(pred.literal, schema.column(idx).type));
  }
  return Status::OK();
}

/// Validates the SELECT list and splits it into a plain projection or a
/// set of aggregates (shared by table scans and system-view scans).
Status AnalyzeSelectList(const ParsedStatement& stmt, bool* has_aggregate,
                         std::vector<std::string>* projection,
                         std::vector<exec::AggSpec>* aggregates) {
  *has_aggregate = false;
  for (const auto& item : stmt.select_items) {
    if (item.aggregate.has_value()) *has_aggregate = true;
  }
  if (*has_aggregate) {
    for (const auto& item : stmt.select_items) {
      if (item.star) {
        return Status::InvalidArgument("'*' cannot be mixed with aggregates");
      }
      if (item.aggregate.has_value()) {
        aggregates->push_back({*item.aggregate, item.column, item.alias});
      } else if (std::find(stmt.group_by.begin(), stmt.group_by.end(),
                           item.column) == stmt.group_by.end()) {
        return Status::InvalidArgument(
            "column '" + item.column +
            "' must appear in GROUP BY or inside an aggregate");
      }
    }
    return Status::OK();
  }
  if (!stmt.group_by.empty()) {
    return Status::InvalidArgument("GROUP BY requires aggregates");
  }
  bool star = false;
  for (const auto& item : stmt.select_items) {
    if (item.star) {
      star = true;
    } else {
      projection->push_back(item.column);
    }
  }
  if (star && !projection->empty()) {
    return Status::InvalidArgument(
        "'*' cannot be combined with other select items");
  }
  return Status::OK();
}

/// Re-shapes `raw` to the select-list order and aliases, then applies
/// ORDER BY and LIMIT (both over the output columns). `star_only` means
/// the batch is passed through unshaped.
Result<SqlResult> ShapeSelectOutput(const ParsedStatement& stmt,
                                    bool has_aggregate, bool star_only,
                                    RecordBatch raw) {
  SqlResult result;
  if (star_only) {
    result.batch = std::move(raw);
  } else {
    std::vector<int> source_cols;
    std::vector<format::ColumnDesc> descs;
    for (const auto& item : stmt.select_items) {
      // Aggregates are named by alias in the engine output; plain columns
      // by their own name.
      const std::string& lookup =
          item.aggregate.has_value() ? item.alias : item.column;
      int idx = raw.schema().FindColumn(lookup);
      if (idx < 0) {
        if (!has_aggregate) {
          return Status::InvalidArgument("unknown column in SELECT: " +
                                         lookup);
        }
        return Status::Internal("result column missing: " + lookup);
      }
      source_cols.push_back(idx);
      descs.push_back({item.alias, raw.schema().column(idx).type});
    }
    RecordBatch shaped{format::Schema(descs)};
    for (size_t r = 0; r < raw.num_rows(); ++r) {
      format::Row row;
      row.reserve(source_cols.size());
      for (int c : source_cols) row.push_back(raw.column(c).ValueAt(r));
      POLARIS_RETURN_IF_ERROR(shaped.AppendRow(row));
    }
    result.batch = std::move(shaped);
  }

  if (!stmt.order_by.empty()) {
    std::vector<std::pair<int, bool>> keys;  // (column index, descending)
    for (const auto& key : stmt.order_by) {
      int idx = result.batch.schema().FindColumn(key.column);
      if (idx < 0) {
        return Status::InvalidArgument("ORDER BY column not in output: " +
                                       key.column);
      }
      keys.emplace_back(idx, key.descending);
    }
    std::vector<size_t> order(result.batch.num_rows());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    const RecordBatch& batch = result.batch;
    std::stable_sort(order.begin(), order.end(),
                     [&batch, &keys](size_t a, size_t b) {
                       for (const auto& [idx, desc] : keys) {
                         int cmp = batch.column(idx).ValueAt(a).Compare(
                             batch.column(idx).ValueAt(b));
                         if (cmp != 0) return desc ? cmp > 0 : cmp < 0;
                       }
                       return false;
                     });
    RecordBatch sorted{result.batch.schema()};
    for (size_t i : order) {
      POLARIS_RETURN_IF_ERROR(sorted.AppendRow(result.batch.GetRow(i)));
    }
    result.batch = std::move(sorted);
  }
  if (stmt.limit.has_value() && result.batch.num_rows() > *stmt.limit) {
    RecordBatch limited{result.batch.schema()};
    for (size_t r = 0; r < *stmt.limit; ++r) {
      POLARIS_RETURN_IF_ERROR(limited.AppendRow(result.batch.GetRow(r)));
    }
    result.batch = std::move(limited);
  }

  result.message = std::to_string(result.batch.num_rows()) + " rows";
  return result;
}

const char* StatementKindName(ParsedStatement::Kind kind) {
  switch (kind) {
    case ParsedStatement::Kind::kCreateTable: return "CREATE TABLE";
    case ParsedStatement::Kind::kDropTable: return "DROP TABLE";
    case ParsedStatement::Kind::kInsert: return "INSERT";
    case ParsedStatement::Kind::kSelect: return "SELECT";
    case ParsedStatement::Kind::kUpdate: return "UPDATE";
    case ParsedStatement::Kind::kDelete: return "DELETE";
    case ParsedStatement::Kind::kBegin: return "BEGIN";
    case ParsedStatement::Kind::kCommit: return "COMMIT";
    case ParsedStatement::Kind::kRollback: return "ROLLBACK";
    case ParsedStatement::Kind::kCloneTable: return "CLONE TABLE";
    case ParsedStatement::Kind::kKill: return "KILL";
    case ParsedStatement::Kind::kSetDeadline: return "SET DEADLINE";
    case ParsedStatement::Kind::kWaitForCommit: return "SET WAIT FOR COMMIT";
    case ParsedStatement::Kind::kSetMaxStaleness: return "SET MAX_STALENESS";
    case ParsedStatement::Kind::kPromote: return "PROMOTE";
  }
  return "?";
}

/// Renders one trace as an indented profile tree, children ordered by
/// start time. Durations are wall time between StartSpan and EndSpan.
void RenderSpanNode(const std::vector<obs::SpanRecord>& spans,
                    const std::multimap<uint64_t, size_t>& children,
                    size_t index, int depth, std::string* out) {
  const obs::SpanRecord& span = spans[index];
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(span.name);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "  %.3f ms",
                static_cast<double>(span.duration_us()) / 1000.0);
  out->append(buf);
  if (span.txn_id != 0 || !span.attrs.empty()) {
    out->append("  [");
    bool first = true;
    if (span.txn_id != 0) {
      std::snprintf(buf, sizeof(buf), "txn=%llu",
                    static_cast<unsigned long long>(span.txn_id));
      out->append(buf);
      first = false;
    }
    for (const auto& [key, value] : span.attrs) {
      if (!first) out->append(" ");
      out->append(key);
      out->append("=");
      out->append(value);
      first = false;
    }
    out->append("]");
  }
  out->append("\n");
  auto [begin, end] = children.equal_range(span.span_id);
  std::vector<size_t> kids;
  for (auto it = begin; it != end; ++it) kids.push_back(it->second);
  std::stable_sort(kids.begin(), kids.end(), [&spans](size_t a, size_t b) {
    return spans[a].start_us < spans[b].start_us;
  });
  for (size_t kid : kids) {
    RenderSpanNode(spans, children, kid, depth + 1, out);
  }
}

std::string RenderSpanTree(const std::vector<obs::SpanRecord>& spans) {
  std::multimap<uint64_t, size_t> children;  // parent span_id -> index
  std::map<uint64_t, size_t> by_id;
  for (size_t i = 0; i < spans.size(); ++i) by_id[spans[i].span_id] = i;
  std::vector<size_t> roots;
  for (size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].parent_id != 0 && by_id.count(spans[i].parent_id) != 0) {
      children.emplace(spans[i].parent_id, i);
    } else {
      roots.push_back(i);
    }
  }
  std::stable_sort(roots.begin(), roots.end(), [&spans](size_t a, size_t b) {
    return spans[a].start_us < spans[b].start_us;
  });
  std::string out;
  for (size_t root : roots) RenderSpanNode(spans, children, root, 0, &out);
  return out;
}

}  // namespace

Result<SqlResult> SqlSession::Execute(const std::string& statement) {
  POLARIS_ASSIGN_OR_RETURN(ParsedStatement stmt, Parse(statement));

  // Lifecycle control statements manage the request-lifecycle layer
  // itself: they bypass admission control and never carry a deadline, so
  // an operator can always KILL a runaway transaction from a saturated
  // engine.
  if (stmt.kind == ParsedStatement::Kind::kKill ||
      stmt.kind == ParsedStatement::Kind::kSetDeadline ||
      stmt.kind == ParsedStatement::Kind::kSetMaxStaleness ||
      stmt.kind == ParsedStatement::Kind::kPromote) {
    // PROMOTE joins this list deliberately: failover is exactly the moment
    // the engine may be saturated or wedged, so the takeover statement must
    // not queue behind the workload it is rescuing.
    return ExecuteParsed(stmt);
  }

  // Install the statement's budget for everything below: the SET DEADLINE
  // countdown (on the engine clock) plus — inside an explicit transaction —
  // the transaction's KILL token. Auto-commit statements pick their token
  // up in TransactionManager::Begin.
  common::CancelToken token;
  if (txn_ != nullptr) token = txn_->cancel_token();
  common::Deadline deadline =
      statement_deadline_micros_ > 0
          ? common::Deadline::After(engine_->clock(),
                                    statement_deadline_micros_, token)
          : common::Deadline::CancellableOnly(token);
  common::ScopedDeadline scoped_deadline(deadline);

  // Admission control gates statements that reach user tables / storage.
  // Transaction control (BEGIN/COMMIT/ROLLBACK) and sys.* reads always
  // run: clients must be able to release resources and operators must be
  // able to observe an overloaded engine.
  bool gated = true;
  switch (stmt.kind) {
    case ParsedStatement::Kind::kBegin:
    case ParsedStatement::Kind::kCommit:
    case ParsedStatement::Kind::kRollback:
      gated = false;
      break;
    case ParsedStatement::Kind::kWaitForCommit:
      // A watermark wait holds no engine resources — it parks on a
      // condition variable until the tailer catches up — so it must not
      // occupy an admission slot for its (potentially long) wait.
      gated = false;
      break;
    case ParsedStatement::Kind::kSelect:
      gated = !engine::SystemViews::IsSystemTable(stmt.table);
      break;
    default:
      break;
  }
  // Per-statement resource accounting: the accumulator rides the ambient
  // trace context (like the deadline above) so every choke point — the
  // admission queue, storage decorators, data cache, scan tasks on DCP
  // workers, the commit pipeline — charges the owning statement. The scope
  // outlives all of them (Scheduler::Run joins its tasks).
  common::ResourceUsage usage;
  common::ScopedResourceUsage usage_scope(&usage);
  const common::Micros wall_start = engine_->clock()->Now();

  Result<SqlResult> result = Status::Internal("not executed");
  // When EXPLAIN ANALYZE converts a terminal outcome (shed / killed /
  // expired) into a rendered profile, the underlying status lives here so
  // accounting and events still see how the statement really ended.
  Status terminal = Status::OK();
  bool admitted_ok = true;

  engine::AdmissionController::Ticket ticket;
  if (gated) {
    auto admitted =
        engine_->admission()->Admit(deadline, StatementKindName(stmt.kind));
    if (!admitted.ok()) {
      admitted_ok = false;
      if (stmt.explain_analyze) {
        // The statement never ran; there is no span tree, but the client
        // still gets a rendered result with the outcome and the resource
        // vector (queue time of the shed wait included) instead of a bare
        // error.
        terminal = admitted.status();
        SqlResult rendered;
        rendered.message = "statement did not run (no profile)";
        result = std::move(rendered);
      } else {
        result = admitted.status();
      }
    } else {
      ticket = std::move(*admitted);
    }
  }

  if (admitted_ok) {
    if (stmt.explain_analyze) {
      result = ExecuteExplainAnalyze(stmt, &terminal);
    } else {
      // Each statement is its own trace; statements of one explicit
      // transaction are tied together by their txn attribute.
      obs::Span span(engine_->tracer(), "sql.statement", obs::Span::kRoot);
      if (span.active()) {
        span.AddAttr("kind", StatementKindName(stmt.kind));
        if (!stmt.table.empty()) span.AddAttr("table", stmt.table);
        // Statements joining an explicit transaction re-stamp its id (the
        // BEGIN statement's trace ended with its root span).
        if (txn_ != nullptr) {
          common::MutableCurrentTraceContext().txn_id = txn_->id();
        }
      }
      result = ExecuteParsed(stmt);
    }
  }

  if (result.ok()) usage.ChargeRowsReturned(result->batch.num_rows());
  common::ResourceUsageSnapshot vec = usage.Snapshot();
  vec.wall_us = engine_->clock()->Now() - wall_start;
  const Status effective = !terminal.ok() ? terminal : result.status();
  const common::StatementOutcome outcome =
      common::ClassifyStatementOutcome(effective);

  if (engine_->query_store()->enabled()) {
    engine_->query_store()->Record(FingerprintStatement(statement),
                                   StatementKindName(stmt.kind), outcome,
                                   vec);
  }

  if (stmt.explain_analyze && result.ok()) {
    // Every EXPLAIN ANALYZE profile ends with the statement's resource
    // vector; terminal outcomes add how the statement died.
    if (!result->message.empty()) result->message += "\n";
    result->message += vec.ToString();
    if (!effective.ok()) {
      result->message += "\noutcome: ";
      result->message += common::StatementOutcomeName(outcome);
      result->message += " - " + effective.ToString();
    }
  }

  if (effective.IsCancelled() || effective.IsDeadlineExceeded()) {
    engine_->metrics()->Add("sql.statement.killed.total");
    engine_->events()->Emit(
        obs::EventLevel::kWarn, "sql", "statement.killed",
        {{"kind", StatementKindName(stmt.kind)},
         {"cause", effective.IsCancelled() ? "killed" : "deadline"}},
        effective.message());
  }
  return result;
}

Result<SqlResult> SqlSession::ExecuteExplainAnalyze(
    const ParsedStatement& stmt, Status* terminal) {
  obs::Tracer* tracer = engine_->tracer();
  const bool was_enabled = tracer->enabled();
  tracer->set_enabled(true);
  uint64_t trace_id = 0;
  Result<SqlResult> inner = Status::Internal("not executed");
  {
    obs::Span root(tracer, "sql.statement", obs::Span::kRoot);
    root.AddAttr("kind", StatementKindName(stmt.kind));
    if (!stmt.table.empty()) root.AddAttr("table", stmt.table);
    if (txn_ != nullptr) {
      common::MutableCurrentTraceContext().txn_id = txn_->id();
    }
    trace_id = root.context().trace_id;
    ParsedStatement plain = stmt;
    plain.explain_analyze = false;
    inner = ExecuteParsed(plain);
    if (!inner.ok()) root.AddAttr("error", inner.status().ToString());
  }
  tracer->set_enabled(was_enabled);
  const Status& st = inner.status();
  // A statement that died of its lifecycle — killed, deadline burned, or
  // shed under overload — still produced a profile worth reading; only
  // genuine statement errors (parse-time/semantic/IO) surface as errors.
  const bool terminal_outcome = !st.ok() && (st.IsCancelled() ||
                                             st.IsDeadlineExceeded() ||
                                             st.IsUnavailable());
  if (!st.ok() && !terminal_outcome) return st;
  if (terminal_outcome) *terminal = st;
  SqlResult result;
  if (inner.ok()) result.affected_rows = inner->affected_rows;
  result.message = RenderSpanTree(tracer->Trace(trace_id));
  if (!result.message.empty() && result.message.back() == '\n') {
    result.message.pop_back();
  }
  return result;
}

Status SqlSession::BeginTransaction(catalog::IsolationMode mode) {
  if (txn_ != nullptr) {
    return Status::FailedPrecondition("transaction already open");
  }
  aborted_by_conflict_ = false;
  conflict_cause_ = Status::OK();
  POLARIS_ASSIGN_OR_RETURN(txn_, engine_->Begin(mode));
  return Status::OK();
}

Result<SqlResult> SqlSession::RunStatement(
    const std::function<Result<SqlResult>(txn::Transaction*)>& body) {
  if (txn_ != nullptr) {
    // Explicit transaction: the statement joins it; errors do not abort
    // the transaction automatically except conflicts, kills and burned
    // deadlines, which do — a dead statement must release its catalog
    // intent locks rather than hold them until the client notices. The
    // cause is remembered so the client's trailing COMMIT/ROLLBACK
    // reports the rollback instead of "no open transaction".
    auto result = body(txn_.get());
    if (!result.ok() &&
        (result.status().IsConflict() || result.status().IsCancelled() ||
         result.status().IsDeadlineExceeded())) {
      if (!txn_->finished()) (void)engine_->Abort(txn_.get());
      txn_.reset();
      aborted_by_conflict_ = true;
      conflict_cause_ = result.status();
    }
    return result;
  }
  // Auto-commit with optimistic retries (the FE retry loop, §3).
  Result<SqlResult> outcome = Status::Internal("no attempts made");
  Status st = engine_->RunInTransaction([&](txn::Transaction* txn) {
    outcome = body(txn);
    return outcome.status();
  });
  if (!st.ok()) return st;
  return outcome;
}

Result<SqlResult> SqlSession::ExecuteParsed(const ParsedStatement& stmt) {
  switch (stmt.kind) {
    case ParsedStatement::Kind::kBegin: {
      POLARIS_RETURN_IF_ERROR(BeginTransaction());
      SqlResult result;
      result.message = "BEGIN";
      return result;
    }
    case ParsedStatement::Kind::kCommit: {
      if (txn_ == nullptr) {
        if (aborted_by_conflict_) {
          // The transaction was already rolled back by a statement-level
          // conflict / kill / deadline; surface that instead of "no open
          // transaction", preserving the original status code.
          aborted_by_conflict_ = false;
          if (conflict_cause_.IsCancelled()) {
            return Status::Cancelled("transaction rolled back: " +
                                     conflict_cause_.message());
          }
          if (conflict_cause_.IsDeadlineExceeded()) {
            return Status::DeadlineExceeded("transaction rolled back: " +
                                            conflict_cause_.message());
          }
          return Status::Conflict(
              "transaction rolled back by conflict: " +
              conflict_cause_.message());
        }
        return Status::FailedPrecondition("no open transaction");
      }
      Status st = engine_->Commit(txn_.get());
      // The catalog sequence this commit claimed: a client can hand it to
      // a replica session's SET WAIT FOR COMMIT for read-your-writes.
      const uint64_t commit_seq = txn_->commit_seq();
      txn_.reset();
      POLARIS_RETURN_IF_ERROR(st);
      SqlResult result;
      result.message = "COMMIT (commit_seq " + std::to_string(commit_seq) +
                       ")";
      return result;
    }
    case ParsedStatement::Kind::kRollback: {
      if (txn_ == nullptr) {
        if (aborted_by_conflict_) {
          // Rolling back an already-conflict-aborted transaction is a
          // no-op that succeeds, as in SQL Server.
          aborted_by_conflict_ = false;
          SqlResult result;
          result.message = "ROLLBACK (transaction was already rolled "
                           "back by conflict: " +
                           conflict_cause_.message() + ")";
          return result;
        }
        return Status::FailedPrecondition("no open transaction");
      }
      Status st = engine_->Abort(txn_.get());
      txn_.reset();
      POLARIS_RETURN_IF_ERROR(st);
      SqlResult result;
      result.message = "ROLLBACK";
      return result;
    }
    case ParsedStatement::Kind::kCreateTable: {
      if (txn_ != nullptr) {
        return Status::NotSupported(
            "DDL inside an explicit transaction is not supported");
      }
      POLARIS_RETURN_IF_ERROR(
          engine_->CreateTable(stmt.table, stmt.schema, stmt.sort_column)
              .status());
      SqlResult result;
      result.message = "CREATE TABLE " + stmt.table;
      return result;
    }
    case ParsedStatement::Kind::kDropTable: {
      if (txn_ != nullptr) {
        return Status::NotSupported(
            "DDL inside an explicit transaction is not supported");
      }
      POLARIS_RETURN_IF_ERROR(engine_->DropTable(stmt.table));
      SqlResult result;
      result.message = "DROP TABLE " + stmt.table;
      return result;
    }
    case ParsedStatement::Kind::kCloneTable: {
      if (txn_ != nullptr) {
        return Status::NotSupported(
            "CLONE inside an explicit transaction is not supported");
      }
      std::optional<common::Micros> as_of;
      if (stmt.as_of.has_value()) as_of = *stmt.as_of;
      POLARIS_RETURN_IF_ERROR(
          engine_->CloneTable(stmt.table, stmt.clone_target, as_of)
              .status());
      SqlResult result;
      result.message = "CLONE TABLE " + stmt.table + " TO " +
                       stmt.clone_target;
      return result;
    }
    case ParsedStatement::Kind::kInsert:
      if (engine::SystemViews::IsSystemTable(stmt.table)) {
        return Status::InvalidArgument("system views are read-only: " +
                                       stmt.table);
      }
      return RunStatement([&](txn::Transaction* txn) {
        return ExecuteInsert(stmt, txn);
      });
    case ParsedStatement::Kind::kSelect:
      // System views read live engine state outside any snapshot; they do
      // not open (or join) a transaction.
      if (engine::SystemViews::IsSystemTable(stmt.table)) {
        return ExecuteSystemViewSelect(stmt);
      }
      // Staleness-bounded replica reads: before the snapshot opens, make
      // sure the apply watermark is no staler than the session bound
      // (forcing a catch-up poll when it is). No-op on primaries.
      POLARIS_RETURN_IF_ERROR(
          engine_->EnsureReplicaFresh(max_staleness_micros_));
      return RunStatement([&](txn::Transaction* txn) {
        return ExecuteSelect(stmt, txn);
      });
    case ParsedStatement::Kind::kUpdate:
      if (engine::SystemViews::IsSystemTable(stmt.table)) {
        return Status::InvalidArgument("system views are read-only: " +
                                       stmt.table);
      }
      return RunStatement([&](txn::Transaction* txn) {
        return ExecuteUpdate(stmt, txn);
      });
    case ParsedStatement::Kind::kDelete:
      if (engine::SystemViews::IsSystemTable(stmt.table)) {
        return Status::InvalidArgument("system views are read-only: " +
                                       stmt.table);
      }
      return RunStatement([&](txn::Transaction* txn) {
        return ExecuteDelete(stmt, txn);
      });
    case ParsedStatement::Kind::kKill: {
      POLARIS_RETURN_IF_ERROR(engine_->KillTransaction(stmt.kill_txn_id));
      SqlResult result;
      result.message = "KILL " + std::to_string(stmt.kill_txn_id) +
                       " (cancellation requested; the statement aborts at "
                       "its next cooperative check)";
      return result;
    }
    case ParsedStatement::Kind::kWaitForCommit: {
      POLARIS_RETURN_IF_ERROR(
          engine_->MinReadWatermark(stmt.wait_commit_seq));
      SqlResult result;
      result.message = "WAIT FOR COMMIT " +
                       std::to_string(stmt.wait_commit_seq) + " (visible)";
      return result;
    }
    case ParsedStatement::Kind::kSetDeadline: {
      statement_deadline_micros_ = stmt.deadline_millis * 1000;
      SqlResult result;
      result.message =
          stmt.deadline_millis == 0
              ? "SET DEADLINE off"
              : "SET DEADLINE " + std::to_string(stmt.deadline_millis) +
                    " ms";
      return result;
    }
    case ParsedStatement::Kind::kSetMaxStaleness: {
      max_staleness_micros_ = stmt.max_staleness_millis * 1000;
      SqlResult result;
      result.message =
          stmt.max_staleness_millis == 0
              ? "SET MAX_STALENESS off"
              : "SET MAX_STALENESS " +
                    std::to_string(stmt.max_staleness_millis) + " ms";
      return result;
    }
    case ParsedStatement::Kind::kPromote: {
      if (txn_ != nullptr) {
        return Status::NotSupported(
            "PROMOTE inside an explicit transaction is not supported");
      }
      POLARIS_ASSIGN_OR_RETURN(engine::PromoteResult promoted,
                               engine_->Promote());
      SqlResult result;
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.3f", promoted.promote_ms);
      result.message = "PROMOTE (epoch " + std::to_string(promoted.epoch) +
                       ", watermark " + std::to_string(promoted.watermark) +
                       ", drained " +
                       std::to_string(promoted.tail_records) +
                       " tail records in " + buf + " ms)";
      return result;
    }
  }
  return Status::Internal("unhandled statement kind");
}

Result<SqlResult> SqlSession::ExecuteInsert(const ParsedStatement& stmt,
                                            txn::Transaction* txn) {
  POLARIS_ASSIGN_OR_RETURN(
      catalog::TableMeta meta,
      engine_->catalog()->GetTableByName(txn->catalog_txn(), stmt.table));
  RecordBatch batch{meta.schema};
  for (const auto& row : stmt.insert_rows) {
    if (row.size() != meta.schema.num_columns()) {
      return Status::InvalidArgument(
          "INSERT arity mismatch: expected " +
          std::to_string(meta.schema.num_columns()) + " values, got " +
          std::to_string(row.size()));
    }
    format::Row typed;
    typed.reserve(row.size());
    for (size_t c = 0; c < row.size(); ++c) {
      POLARIS_ASSIGN_OR_RETURN(
          Value value, CoerceLiteral(row[c], meta.schema.column(c).type));
      typed.push_back(std::move(value));
    }
    POLARIS_RETURN_IF_ERROR(batch.AppendRow(typed));
  }
  POLARIS_ASSIGN_OR_RETURN(uint64_t n,
                           engine_->Insert(txn, stmt.table, batch));
  SqlResult result;
  result.affected_rows = n;
  result.message = std::to_string(n) + " rows inserted";
  return result;
}

Result<SqlResult> SqlSession::ExecuteSelect(const ParsedStatement& stmt,
                                            txn::Transaction* txn) {
  POLARIS_ASSIGN_OR_RETURN(
      catalog::TableMeta meta,
      engine_->catalog()->GetTableByName(txn->catalog_txn(), stmt.table));

  QuerySpec spec;
  spec.filter = stmt.where;
  POLARIS_RETURN_IF_ERROR(CoerceWhere(meta.schema, &spec.filter));

  bool has_aggregate = false;
  POLARIS_RETURN_IF_ERROR(AnalyzeSelectList(stmt, &has_aggregate,
                                            &spec.projection,
                                            &spec.aggregates));
  if (has_aggregate) spec.group_by = stmt.group_by;

  RecordBatch raw;
  if (stmt.as_of.has_value()) {
    POLARIS_ASSIGN_OR_RETURN(
        raw, engine_->QueryAsOf(txn, stmt.table, *stmt.as_of, spec));
  } else {
    POLARIS_ASSIGN_OR_RETURN(raw, engine_->Query(txn, stmt.table, spec));
  }

  return ShapeSelectOutput(stmt, has_aggregate,
                           !has_aggregate && spec.projection.empty(),
                           std::move(raw));
}

Result<SqlResult> SqlSession::ExecuteSystemViewSelect(
    const ParsedStatement& stmt) {
  if (stmt.as_of.has_value()) {
    return Status::InvalidArgument(
        "AS OF is not supported on system views (they reflect live state)");
  }
  // Materialize the view, then run the same relational pipeline a table
  // scan gets: WHERE -> aggregate -> reshape -> ORDER BY -> LIMIT.
  POLARIS_ASSIGN_OR_RETURN(RecordBatch raw,
                           engine_->system_views()->Query(stmt.table));

  exec::Conjunction where = stmt.where;
  POLARIS_RETURN_IF_ERROR(CoerceWhere(raw.schema(), &where));
  if (!where.empty()) {
    POLARIS_ASSIGN_OR_RETURN(std::vector<uint8_t> mask,
                             exec::EvaluateConjunction(where, raw));
    raw = exec::FilterBatch(raw, mask);
  }

  bool has_aggregate = false;
  std::vector<std::string> projection;
  std::vector<exec::AggSpec> aggregates;
  POLARIS_RETURN_IF_ERROR(
      AnalyzeSelectList(stmt, &has_aggregate, &projection, &aggregates));
  if (has_aggregate) {
    POLARIS_ASSIGN_OR_RETURN(raw,
                             exec::HashAggregate(raw, stmt.group_by,
                                                 aggregates));
  }

  return ShapeSelectOutput(stmt, has_aggregate,
                           !has_aggregate && projection.empty(),
                           std::move(raw));
}

Result<SqlResult> SqlSession::ExecuteUpdate(const ParsedStatement& stmt,
                                            txn::Transaction* txn) {
  POLARIS_ASSIGN_OR_RETURN(
      catalog::TableMeta meta,
      engine_->catalog()->GetTableByName(txn->catalog_txn(), stmt.table));
  exec::Conjunction where = stmt.where;
  POLARIS_RETURN_IF_ERROR(CoerceWhere(meta.schema, &where));
  std::vector<exec::Assignment> assignments = stmt.assignments;
  for (auto& assignment : assignments) {
    int idx = meta.schema.FindColumn(assignment.column);
    if (idx < 0) {
      return Status::InvalidArgument("unknown column in SET: " +
                                     assignment.column);
    }
    ColumnType want = meta.schema.column(idx).type;
    if (assignment.kind == exec::Assignment::Kind::kSetValue) {
      POLARIS_ASSIGN_OR_RETURN(assignment.value,
                               CoerceLiteral(assignment.value, want));
    } else if (assignment.kind == exec::Assignment::Kind::kAddInt64 &&
               want == ColumnType::kDouble) {
      // col = col + 3 on a DOUBLE column: widen the delta.
      assignment.kind = exec::Assignment::Kind::kAddDouble;
      assignment.value =
          Value::Double(static_cast<double>(assignment.value.i64));
    } else if ((assignment.kind == exec::Assignment::Kind::kAddInt64 &&
                want != ColumnType::kInt64) ||
               (assignment.kind == exec::Assignment::Kind::kAddDouble &&
                want != ColumnType::kDouble)) {
      return Status::InvalidArgument("arithmetic SET on non-numeric column " +
                                     assignment.column);
    }
  }
  POLARIS_ASSIGN_OR_RETURN(
      uint64_t n, engine_->Update(txn, stmt.table, where, assignments));
  SqlResult result;
  result.affected_rows = n;
  result.message = std::to_string(n) + " rows updated";
  return result;
}

Result<SqlResult> SqlSession::ExecuteDelete(const ParsedStatement& stmt,
                                            txn::Transaction* txn) {
  POLARIS_ASSIGN_OR_RETURN(
      catalog::TableMeta meta,
      engine_->catalog()->GetTableByName(txn->catalog_txn(), stmt.table));
  exec::Conjunction where = stmt.where;
  POLARIS_RETURN_IF_ERROR(CoerceWhere(meta.schema, &where));
  POLARIS_ASSIGN_OR_RETURN(uint64_t n,
                           engine_->Delete(txn, stmt.table, where));
  SqlResult result;
  result.affected_rows = n;
  result.message = std::to_string(n) + " rows deleted";
  return result;
}

}  // namespace polaris::sql
