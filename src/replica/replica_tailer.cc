#include "replica/replica_tailer.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <utility>
#include <vector>

#include "common/deadline.h"
#include "common/logging.h"
#include "common/trace_context.h"

namespace polaris::replica {

using common::Result;
using common::Status;

namespace {

/// Difference `to - from` over two key-sorted live-row snapshots, as a
/// write set: upserts for keys added or changed, tombstones for keys
/// gone. Applying it to `from` yields exactly `to`.
std::vector<std::pair<std::string, std::optional<std::string>>> DiffRows(
    const std::vector<std::pair<std::string, std::string>>& from,
    const std::vector<std::pair<std::string, std::string>>& to) {
  std::vector<std::pair<std::string, std::optional<std::string>>> diff;
  size_t i = 0, j = 0;
  while (i < from.size() || j < to.size()) {
    if (i == from.size()) {
      diff.emplace_back(to[j].first, to[j].second);
      ++j;
    } else if (j == to.size()) {
      diff.emplace_back(from[i].first, std::nullopt);
      ++i;
    } else if (from[i].first < to[j].first) {
      diff.emplace_back(from[i].first, std::nullopt);
      ++i;
    } else if (to[j].first < from[i].first) {
      diff.emplace_back(to[j].first, to[j].second);
      ++j;
    } else {
      if (from[i].second != to[j].second) {
        diff.emplace_back(to[j].first, to[j].second);
      }
      ++i;
      ++j;
    }
  }
  return diff;
}

}  // namespace

ReplicaTailer::ReplicaTailer(storage::ObjectStore* store,
                             catalog::CatalogJournalOptions journal_options,
                             catalog::MvccStore* catalog, common::Clock* clock,
                             obs::MetricsRegistry* metrics, obs::Tracer* tracer,
                             obs::EventLog* events, ReplicaOptions options)
    : store_(store),
      journal_options_(journal_options),
      catalog_(catalog),
      clock_(clock),
      metrics_(metrics),
      tracer_(tracer),
      events_(events),
      options_(options),
      replayer_(store, std::move(journal_options)) {
  if (options_.catchup_parallelism == 0) options_.catchup_parallelism = 1;
}

ReplicaTailer::~ReplicaTailer() { Stop(); }

Status ReplicaTailer::BootstrapInitial() {
  std::lock_guard<std::mutex> poll_lock(poll_mu_);
  const auto wall_start = std::chrono::steady_clock::now();
  POLARIS_ASSIGN_OR_RETURN(auto boot,
                           replayer_.Bootstrap(options_.catchup_parallelism));
  // ImportSnapshot requires quiescence, which holds only here: Open has
  // not returned yet, so no reader can hold a snapshot. Later catch-ups
  // (RebootstrapLocked) must go through ApplyReplicated instead.
  if (boot.state.commit_seq > 0) {
    catalog_->ImportSnapshot(boot.state.rows, boot.state.commit_seq);
  }
  cursor_ = boot.cursor;
  Publish(boot.state.commit_seq);
  double ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - wall_start)
                  .count();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    state_ = "tailing";
    bootstrap_records_ = boot.state.records_replayed;
    bootstrap_segments_ = boot.state.segments_scanned;
    bootstrap_ms_ = ms;
    torn_tail_pending_ = boot.state.torn_tail;
    caught_up_at_us_ = clock_->Now();
  }
  if (metrics_ != nullptr) {
    metrics_->Add("replica.bootstraps");
    metrics_->Observe("replica.bootstrap_records",
                      static_cast<common::Micros>(boot.state.records_replayed));
  }
  if (events_ != nullptr) {
    events_->Emit(obs::EventLevel::kInfo, "replica", "replica.bootstrap",
                  {{"watermark", std::to_string(boot.state.commit_seq)},
                   {"checkpoint_seq", std::to_string(boot.state.checkpoint_seq)},
                   {"records", std::to_string(boot.state.records_replayed)},
                   {"segments", std::to_string(boot.state.segments_scanned)}},
                  "replica bootstrapped from checkpoint + journal");
  }
  POLARIS_LOG(kInfo, "replica")
      << "bootstrapped at watermark " << boot.state.commit_seq << " ("
      << boot.state.records_replayed << " records over "
      << boot.state.segments_scanned << " segments, " << ms << " ms)";
  return Status::OK();
}

void ReplicaTailer::Start() {
  if (options_.poll_interval_micros <= 0) return;
  std::lock_guard<std::mutex> lock(thread_mu_);
  if (poll_thread_.joinable() || stop_requested_) return;
  poll_thread_ = std::thread([this] { PollLoop(); });
}

void ReplicaTailer::PollLoop() {
  std::unique_lock<std::mutex> lk(thread_mu_);
  while (!stop_requested_) {
    stop_cv_.wait_for(
        lk, std::chrono::microseconds(options_.poll_interval_micros));
    if (stop_requested_) break;
    lk.unlock();
    // Errors are recorded in the status surface and retried next tick:
    // transient store failures must not kill the apply loop.
    (void)PollOnce();
    lk.lock();
  }
}

void ReplicaTailer::Stop() {
  {
    std::lock_guard<std::mutex> lock(thread_mu_);
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
  if (poll_thread_.joinable()) poll_thread_.join();
  stopped_.store(true, std::memory_order_release);
  wait_cv_.notify_all();
  std::lock_guard<std::mutex> lock(stats_mu_);
  state_ = "stopped";
}

void ReplicaTailer::Publish(uint64_t seq) {
  if (seq <= watermark_.load(std::memory_order_relaxed)) return;
  {
    std::lock_guard<std::mutex> lock(wait_mu_);
    watermark_.store(seq, std::memory_order_release);
  }
  wait_cv_.notify_all();
}

Status ReplicaTailer::PollOnce() {
  std::lock_guard<std::mutex> poll_lock(poll_mu_);
  obs::Span span(tracer_, "replica.poll");
  const auto wall_start = std::chrono::steady_clock::now();
  auto result = replayer_.TailOnce(
      &cursor_, [this](uint64_t seq,
                       const std::vector<std::pair<
                           std::string, std::optional<std::string>>>& writes) {
        POLARIS_RETURN_IF_ERROR(catalog_->ApplyReplicated(seq, writes));
        Publish(seq);
        return Status::OK();
      });
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    polls_++;
  }
  if (metrics_ != nullptr) {
    metrics_->Add("replica.polls");
    metrics_->Observe(
        "replica.poll_us",
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - wall_start)
            .count());
  }
  if (!result.ok()) {
    if (result.status().IsNotFound()) {
      // The primary's GC truncated the journal past our cursor; the
      // missing records are only reachable through a checkpoint.
      span.AddAttr("rebootstrap", "true");
      return RebootstrapLocked();
    }
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      tail_errors_++;
      last_error_ = result.status().ToString();
    }
    if (metrics_ != nullptr) metrics_->Add("replica.tail_errors");
    if (events_ != nullptr) {
      events_->Emit(obs::EventLevel::kWarn, "replica", "replica.tail_error",
                    {{"error", result.status().ToString()}});
    }
    return result.status();
  }
  span.AddAttr("records_applied", result->records_applied);
  span.AddAttr("watermark", watermark());
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    records_applied_ += result->records_applied;
    segments_visited_ += result->segments_visited;
    torn_tail_pending_ = result->torn_tail;
    caught_up_at_us_ = clock_->Now();
  }
  if (metrics_ != nullptr && result->records_applied > 0) {
    metrics_->Add("replica.records_applied", result->records_applied);
  }
  return Status::OK();
}

Status ReplicaTailer::RebootstrapLocked() {
  const auto wall_start = std::chrono::steady_clock::now();
  auto boot_or = replayer_.Bootstrap(options_.catchup_parallelism);
  if (!boot_or.ok()) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    tail_errors_++;
    last_error_ = boot_or.status().ToString();
    return boot_or.status();
  }
  auto& boot = *boot_or;
  // The catalog may already hold applied state with live snapshot
  // readers, so a store-resetting ImportSnapshot is off the table.
  // Instead the bootstrap state is installed as the *difference* against
  // the current live rows, as one ordinary replicated commit at the
  // bootstrap's sequence: readers pinned below it keep consistent views
  // through the version chains. The bootstrap sequence is always at or
  // past the watermark — GC only deletes checkpoint-covered segments, so
  // the checkpoint that replaced our missing tail is newer than it.
  auto diff = DiffRows(catalog_->ExportLatest(), boot.state.rows);
  POLARIS_RETURN_IF_ERROR(
      catalog_->ApplyReplicated(boot.state.commit_seq, diff));
  cursor_ = boot.cursor;
  Publish(boot.state.commit_seq);
  double ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - wall_start)
                  .count();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    rebootstraps_++;
    torn_tail_pending_ = boot.state.torn_tail;
    caught_up_at_us_ = clock_->Now();
  }
  if (metrics_ != nullptr) metrics_->Add("replica.rebootstraps");
  if (events_ != nullptr) {
    events_->Emit(obs::EventLevel::kWarn, "replica", "replica.rebootstrap",
                  {{"watermark", std::to_string(boot.state.commit_seq)},
                   {"diff_keys", std::to_string(diff.size())}},
                  "journal truncated past cursor; re-bootstrapped from "
                  "checkpoint");
  }
  POLARIS_LOG(kWarn, "replica")
      << "re-bootstrapped from checkpoint at watermark "
      << boot.state.commit_seq << " (" << diff.size() << " keys changed, "
      << ms << " ms)";
  return Status::OK();
}

Status ReplicaTailer::WaitForCommit(uint64_t seq) {
  // Already caught up: don't record a zero-length wait event.
  if (watermark_.load(std::memory_order_acquire) >= seq) return Status::OK();
  const common::Deadline deadline = common::CurrentDeadline();
  common::ScopedWait wait(wait_stats_,
                          common::WaitClass::kReplicaWaitForCommit);
  std::unique_lock<std::mutex> lk(wait_mu_);
  while (watermark_.load(std::memory_order_acquire) < seq) {
    if (stopped_.load(std::memory_order_acquire)) {
      return Status::Unavailable(
          "replica tailer stopped while waiting for commit " +
          std::to_string(seq));
    }
    POLARIS_RETURN_IF_ERROR(deadline.Check("replica.wait_for_commit"));
    wait_cv_.wait_for(lk, std::chrono::milliseconds(1));
    // A parked waiter does no IO, so nothing else moves a virtual engine
    // clock while it sleeps — and a SimClock-based deadline would never
    // expire. Burn the real wait slice against the clock (a no-op on
    // wall clocks), the same accounting rule the storage retry layer
    // applies to its backoff sleeps.
    if (deadline.has_deadline()) clock_->Advance(1'000);
  }
  return Status::OK();
}

Status ReplicaTailer::EnsureFresh(common::Micros bound_us) {
  auto staleness = [this]() -> common::Micros {
    std::lock_guard<std::mutex> lock(stats_mu_);
    return caught_up_at_us_ > 0 ? clock_->Now() - caught_up_at_us_ : 0;
  };
  common::Micros observed = staleness();
  if (observed <= bound_us) return Status::OK();
  if (stopped_.load(std::memory_order_acquire)) {
    return Status::Unavailable(
        "replica staleness " + std::to_string(observed) +
        "us exceeds MAX_STALENESS " + std::to_string(bound_us) +
        "us and the tailer is stopped; the bound can never be met");
  }
  // Catch up actively instead of parking: a successful poll reaches the
  // journal tip, which by definition satisfies any bound.
  Status st = PollOnce();
  if (metrics_ != nullptr) metrics_->Add("replica.staleness_catchups");
  if (!st.ok()) {
    return Status::Unavailable(
        "replica staleness " + std::to_string(observed) +
        "us exceeds MAX_STALENESS " + std::to_string(bound_us) +
        "us and catch-up failed: " + st.message());
  }
  return Status::OK();
}

uint64_t ReplicaTailer::LagLowerBound() const {
  const uint64_t watermark = watermark_.load(std::memory_order_acquire);
  auto segments = catalog::ListJournalSegmentsSince(store_, journal_options_,
                                                    watermark + 1);
  if (!segments.ok() || segments->empty()) return 0;
  // Every record in segments *before* the newest one is known committed
  // (a new segment only opens after its predecessor is sealed), so the
  // newest segment's first sequence bounds the lag from below. Records
  // inside the newest segment are uncounted — only a parse (i.e. a poll)
  // can see them.
  const uint64_t tip_floor = segments->back().first_seq;
  return tip_floor > watermark + 1 ? tip_floor - watermark - 1 : 0;
}

ReplicaStatus ReplicaTailer::GetStatus() const {
  ReplicaStatus out;
  std::lock_guard<std::mutex> lock(stats_mu_);
  out.state = state_;
  out.watermark = watermark_.load(std::memory_order_acquire);
  out.records_applied = records_applied_;
  out.segments_visited = segments_visited_;
  out.polls = polls_;
  out.tail_errors = tail_errors_;
  out.rebootstraps = rebootstraps_;
  out.bootstrap_records = bootstrap_records_;
  out.bootstrap_segments = bootstrap_segments_;
  out.bootstrap_ms = bootstrap_ms_;
  out.torn_tail_pending = torn_tail_pending_;
  out.staleness_us =
      caught_up_at_us_ > 0 ? clock_->Now() - caught_up_at_us_ : 0;
  out.last_error = last_error_;
  return out;
}

}  // namespace polaris::replica
