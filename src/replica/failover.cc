#include "replica/failover.h"

#include <limits>
#include <utility>

#include "catalog/journal_format.h"
#include "common/bytes.h"
#include "common/logging.h"

namespace polaris::replica {

using common::Result;
using common::Status;

namespace jf = catalog::journal_format;

namespace {

constexpr uint32_t kLeaseMagic = 0x31534c50;  // "PLS1"
// The single block id the lease blob is committed from each write.
constexpr char kLeaseBlockId[] = "l";
// Bounded CAS retries for claim races / seal vs in-flight appends.
constexpr int kMaxCasAttempts = 16;

std::string EncodeLease(uint64_t epoch, common::Micros expires_at,
                        const std::string& owner) {
  common::ByteWriter out;
  out.PutU32(kLeaseMagic);
  out.PutU64(epoch);
  out.PutU64(static_cast<uint64_t>(expires_at));
  out.PutString(owner);
  return out.Release();
}

Status DecodeLease(std::string_view blob, LeaseInfo* info) {
  common::ByteReader in(blob);
  uint32_t magic;
  uint64_t epoch, expires;
  std::string owner;
  if (!in.GetU32(&magic).ok() || magic != kLeaseMagic ||
      !in.GetU64(&epoch).ok() || !in.GetU64(&expires).ok() ||
      !in.GetString(&owner).ok() || !in.AtEnd()) {
    return Status::Corruption("malformed epoch lease blob");
  }
  info->epoch = epoch;
  info->expires_at = static_cast<common::Micros>(expires);
  info->owner = std::move(owner);
  return Status::OK();
}

}  // namespace

EpochLease::EpochLease(storage::ObjectStore* store, std::string path,
                       common::Clock* clock, FailoverOptions options)
    : store_(store),
      path_(std::move(path)),
      clock_(clock),
      options_(std::move(options)) {}

Result<LeaseInfo> EpochLease::Read() const {
  auto blob = store_->Get(path_);
  if (!blob.ok()) {
    if (blob.status().IsNotFound()) return LeaseInfo{};  // virgin store
    return blob.status();
  }
  LeaseInfo info;
  POLARIS_RETURN_IF_ERROR(DecodeLease(*blob, &info));
  auto stat = store_->Stat(path_);
  if (!stat.ok()) return stat.status();
  info.generation = stat->generation;
  return info;
}

Status EpochLease::WriteAtLocked(uint64_t expected_generation,
                                 uint64_t epoch) {
  common::Micros expires = clock_->Now() + options_.lease_duration_micros;
  POLARIS_RETURN_IF_ERROR(store_->StageBlock(
      path_, kLeaseBlockId, EncodeLease(epoch, expires, options_.node_name)));
  POLARIS_RETURN_IF_ERROR(
      store_->CommitBlockListIf(path_, {kLeaseBlockId}, expected_generation));
  held_ = true;
  epoch_ = epoch;
  generation_ = expected_generation + 1;
  expires_at_ = expires;
  return Status::OK();
}

Status EpochLease::Claim() {
  std::lock_guard<std::mutex> lock(mu_);
  Status last = Status::OK();
  for (int attempt = 0; attempt < kMaxCasAttempts; ++attempt) {
    auto current = Read();
    if (!current.ok()) return current.status();
    last = WriteAtLocked(current->generation, current->epoch + 1);
    if (last.ok()) {
      POLARIS_LOG(kInfo, "failover")
          << options_.node_name << " claimed epoch " << epoch_ << " (lease "
          << path_ << ")";
      return Status::OK();
    }
    // A racing claimant bumped the generation between our read and our
    // CAS; re-read and target the next epoch. Any other error is final.
    if (!last.IsFailedPrecondition()) return last;
  }
  return Status::Unavailable("epoch lease claim lost " +
                             std::to_string(kMaxCasAttempts) +
                             " consecutive CAS races: " + last.message());
}

Status EpochLease::Renew() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!held_) {
    return Status::FailedPrecondition("cannot renew: lease not held");
  }
  Status st = WriteAtLocked(generation_, epoch_);
  if (st.ok()) {
    renewals_++;
    return st;
  }
  if (st.IsFailedPrecondition()) {
    held_ = false;
    std::string detail;
    auto now_holding = Read();
    if (now_holding.ok()) {
      detail = "; epoch " + std::to_string(now_holding->epoch) + " held by " +
               now_holding->owner;
    }
    return Status::FailedPrecondition(
        "lease lost: epoch " + std::to_string(epoch_) +
        " was superseded" + detail);
  }
  return st;
}

void EpochLease::Release() {
  std::lock_guard<std::mutex> lock(mu_);
  held_ = false;
}

bool EpochLease::held() const {
  std::lock_guard<std::mutex> lock(mu_);
  return held_;
}

uint64_t EpochLease::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

common::Micros EpochLease::expires_at() const {
  std::lock_guard<std::mutex> lock(mu_);
  return expires_at_;
}

uint64_t EpochLease::renewals() const {
  std::lock_guard<std::mutex> lock(mu_);
  return renewals_;
}

Result<std::string> SealNewestSegment(
    storage::ObjectStore* store,
    const catalog::CatalogJournalOptions& journal_options,
    uint64_t new_epoch) {
  POLARIS_ASSIGN_OR_RETURN(
      auto segments,
      catalog::ListJournalSegmentsSince(
          store, journal_options, std::numeric_limits<uint64_t>::max()));
  if (segments.empty()) return std::string();  // virgin journal
  const std::string path = segments.back().path;
  const std::string seal_id = "seal" + jf::Pad20(new_epoch);
  std::string marker = jf::EncodeEpochMarker(new_epoch, /*seal=*/true);
  Status last = Status::OK();
  for (int attempt = 0; attempt < kMaxCasAttempts; ++attempt) {
    POLARIS_ASSIGN_OR_RETURN(auto info, store->Stat(path));
    POLARIS_ASSIGN_OR_RETURN(auto ids, store->GetCommittedBlockList(path));
    POLARIS_RETURN_IF_ERROR(store->StageBlock(path, seal_id, marker));
    ids.push_back(seal_id);
    last = store->CommitBlockListIf(path, ids, info.generation);
    if (last.ok()) {
      POLARIS_LOG(kInfo, "failover")
          << "sealed journal segment " << path << " under epoch "
          << new_epoch;
      return path;
    }
    // The incumbent squeezed an append in between our read and our seal;
    // its records are durable and will be drained, so re-read and retry.
    if (!last.IsFailedPrecondition()) return last;
  }
  return Status::Unavailable(
      "could not seal journal segment " + path + " after " +
      std::to_string(kMaxCasAttempts) +
      " CAS races (incumbent still appending?): " + last.message());
}

}  // namespace polaris::replica
