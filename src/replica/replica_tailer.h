#ifndef POLARIS_REPLICA_REPLICA_TAILER_H_
#define POLARIS_REPLICA_REPLICA_TAILER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "catalog/journal_replayer.h"
#include "catalog/mvcc.h"
#include "common/clock.h"
#include "common/result.h"
#include "common/status.h"
#include "common/wait_stats.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "storage/object_store.h"

namespace polaris::replica {

/// Knobs for a replica engine's continuous-apply loop.
struct ReplicaOptions {
  /// Wall-clock interval between background tail polls. 0 disables the
  /// background thread entirely — tests and benches then drive the loop
  /// with explicit PollOnce calls for determinism.
  int64_t poll_interval_micros = 20'000;
  /// Threads parsing closed segments concurrently during catch-up
  /// (initial bootstrap and 404 re-bootstrap). 1 = serial.
  size_t catchup_parallelism = 4;
};

/// Point-in-time view of the tailer, surfaced by sys.dm_replica.
struct ReplicaStatus {
  std::string state;             ///< "bootstrapping" | "tailing" | "stopped"
  uint64_t watermark = 0;        ///< highest commit_seq applied (visible seq)
  uint64_t records_applied = 0;  ///< replicated records applied since open
  uint64_t segments_visited = 0;
  uint64_t polls = 0;
  uint64_t tail_errors = 0;   ///< polls that failed (excluding re-bootstraps)
  uint64_t rebootstraps = 0;  ///< checkpoint re-bootstraps after journal GC
  uint64_t bootstrap_records = 0;   ///< journal records replayed at open
  uint64_t bootstrap_segments = 0;  ///< segments scanned at open
  double bootstrap_ms = 0;          ///< wall time of the initial catch-up
  /// The newest segment currently ends in an unparsable frame (primary
  /// mid-append, or a poisoned remnant awaiting a successor segment).
  bool torn_tail_pending = false;
  /// Engine-clock micros since the replica last confirmed it was caught
  /// up with the journal tip (upper bound on read staleness).
  common::Micros staleness_us = 0;
  std::string last_error;
};

/// The replica subsystem's engine room: bootstraps the catalog from the
/// shared store's checkpoint + journal, then tails new journal records
/// into the catalog via MvccStore::ApplyReplicated, publishing a
/// monotonic apply watermark.
///
/// Tailer state machine:
///
///   BOOTSTRAPPING --BootstrapInitial--> TAILING --Stop--> STOPPED
///        ^                                 |
///        '---- checkpoint re-bootstrap ----'   (TailOnce => NotFound)
///
/// Within TAILING each poll is one JournalReplayer::TailOnce pass over
/// the cursor. Torn tails hold the cursor (same rule recovery applies:
/// an unparsable frame in the newest segment never advances anything);
/// NotFound means the primary's GC truncated the journal past the cursor
/// and triggers a diff-based re-bootstrap from the latest checkpoint —
/// existing snapshot readers keep their views because the diff is
/// installed as one ordinary replicated commit at the checkpoint's
/// sequence, not a store reset.
///
/// Thread-safe. Reads go through whatever ObjectStore it is given — the
/// engine passes its decorated stack, so retries/breaker apply for free.
class ReplicaTailer {
 public:
  /// All pointers must outlive the tailer; metrics/tracer/events may be
  /// null (standalone tests).
  ReplicaTailer(storage::ObjectStore* store,
                catalog::CatalogJournalOptions journal_options,
                catalog::MvccStore* catalog, common::Clock* clock,
                obs::MetricsRegistry* metrics, obs::Tracer* tracer,
                obs::EventLog* events, ReplicaOptions options);
  ~ReplicaTailer();

  ReplicaTailer(const ReplicaTailer&) = delete;
  ReplicaTailer& operator=(const ReplicaTailer&) = delete;

  /// Initial catch-up: parallel checkpoint+journal replay imported into
  /// the catalog as one snapshot. Must run before the catalog serves any
  /// transaction (PolarisEngine::Open calls it before returning).
  common::Status BootstrapInitial();

  /// Starts the background poll thread (no-op when poll_interval is 0).
  void Start();

  /// Stops and joins the background thread; wakes all WaitForCommit
  /// blockers with Unavailable. Idempotent.
  void Stop();

  /// One tail pass: apply every new journal record, advance the
  /// watermark, re-bootstrap if the journal was truncated past the
  /// cursor. Safe to call concurrently with the background thread (polls
  /// serialize on an internal mutex).
  common::Status PollOnce();

  /// Highest commit sequence applied — reads at or below this are
  /// consistent with a primary snapshot at the same sequence.
  uint64_t watermark() const {
    return watermark_.load(std::memory_order_acquire);
  }

  /// Attaches the wait-event registry (may be null); WaitForCommit park
  /// time is then recorded as REPLICA_WAIT_FOR_COMMIT.
  void set_wait_stats(common::WaitStats* waits) { wait_stats_ = waits; }

  /// Blocks until the watermark reaches `seq`, honoring the ambient
  /// deadline/cancellation (SET WAIT FOR COMMIT and MinReadWatermark).
  /// Unavailable if the tailer stops while waiting.
  common::Status WaitForCommit(uint64_t seq);

  /// Staleness-bounded read gate (SET MAX_STALENESS): returns OK when the
  /// engine-clock staleness is within `bound_us`; otherwise drives one
  /// explicit PollOnce to catch up (a successful poll reaches the journal
  /// tip, resetting staleness to 0) and propagates its failure with
  /// context. Unavailable once the tailer is stopped — a stopped replica
  /// can never again bound its staleness.
  common::Status EnsureFresh(common::Micros bound_us);

  ReplicaStatus GetStatus() const;

  /// Lower bound on the record lag behind the journal: commits known to
  /// exist (from the segment listing alone, without parsing) beyond the
  /// watermark. 0 whenever the last poll drained the tail; storage
  /// errors also report 0 (the staleness_us surface carries those).
  uint64_t LagLowerBound() const;

 private:
  void PollLoop();
  /// Re-derives the catalog from the latest checkpoint after journal
  /// truncation, installing the difference against the current live
  /// state as one replicated commit. Runs under poll_mu_.
  common::Status RebootstrapLocked();
  void Publish(uint64_t seq);

  storage::ObjectStore* store_;
  catalog::CatalogJournalOptions journal_options_;
  catalog::MvccStore* catalog_;
  common::Clock* clock_;
  obs::MetricsRegistry* metrics_;
  obs::Tracer* tracer_;
  obs::EventLog* events_;
  ReplicaOptions options_;
  common::WaitStats* wait_stats_ = nullptr;
  catalog::JournalReplayer replayer_;

  /// Serializes polls (background thread vs explicit PollOnce).
  std::mutex poll_mu_;
  catalog::ReplayCursor cursor_;  // guarded by poll_mu_

  std::atomic<uint64_t> watermark_{0};
  mutable std::mutex wait_mu_;
  std::condition_variable wait_cv_;  // watermark advances + stop

  mutable std::mutex stats_mu_;
  std::string state_ = "bootstrapping";  // guarded by stats_mu_
  uint64_t records_applied_ = 0;
  uint64_t segments_visited_ = 0;
  uint64_t polls_ = 0;
  uint64_t tail_errors_ = 0;
  uint64_t rebootstraps_ = 0;
  uint64_t bootstrap_records_ = 0;
  uint64_t bootstrap_segments_ = 0;
  double bootstrap_ms_ = 0;
  bool torn_tail_pending_ = false;
  common::Micros caught_up_at_us_ = 0;  // engine clock, last tip-reaching poll
  std::string last_error_;

  std::mutex thread_mu_;
  std::thread poll_thread_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;  // guarded by thread_mu_
  std::atomic<bool> stopped_{false};
};

}  // namespace polaris::replica

#endif  // POLARIS_REPLICA_REPLICA_TAILER_H_
