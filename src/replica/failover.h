#ifndef POLARIS_REPLICA_FAILOVER_H_
#define POLARIS_REPLICA_FAILOVER_H_

#include <cstdint>
#include <mutex>
#include <string>

#include "catalog/catalog_journal.h"
#include "common/clock.h"
#include "common/result.h"
#include "common/status.h"
#include "storage/object_store.h"

namespace polaris::replica {

/// Failover knobs (engine-level; see DESIGN.md §12).
struct FailoverOptions {
  /// How long a claimed/renewed lease is valid. A primary that cannot
  /// renew within this window self-fences on its own clock.
  int64_t lease_duration_micros = 10'000'000;
  /// Background heartbeat cadence. 0 (the default) starts no thread —
  /// tests and benches drive HeartbeatOnce explicitly for determinism.
  int64_t heartbeat_period_micros = 0;
  /// Replica only: promote automatically when a heartbeat observes the
  /// primary's lease expired (supervised auto-failover). Off by default.
  bool auto_promote = false;
  /// Stamped into the lease blob as the holder identity (diagnostics).
  std::string node_name = "node";
};

/// A point-in-time read of the lease blob. epoch 0 / generation 0 means
/// no lease blob exists yet (virgin store).
struct LeaseInfo {
  uint64_t epoch = 0;
  common::Micros expires_at = 0;
  std::string owner;
  uint64_t generation = 0;
};

/// The epoch lease: a single blob in the shared store, advanced only via
/// ETag-guarded CommitBlockListIf, so at most one writer can ever hold a
/// given epoch. Claiming is an administrative takeover (it does NOT wait
/// for the incumbent's expiry — PROMOTE and primary open are operator
/// decisions; supervised auto-promote checks observed expiry before
/// claiming). The lease alone is advisory liveness; the hard split-brain
/// guarantee comes from sealing the journal segment, which invalidates
/// the incumbent's append CAS (DESIGN.md §12).
///
/// Thread-safe.
class EpochLease {
 public:
  /// `store` and `clock` must outlive the lease. `path` is the lease
  /// blob's full object path (conventionally "<journal prefix>lease",
  /// which journal/checkpoint listings ignore: no ".<ext>" suffix).
  EpochLease(storage::ObjectStore* store, std::string path,
             common::Clock* clock, FailoverOptions options);

  /// Reads the current lease blob (held by anyone). NotFound is mapped to
  /// a default LeaseInfo — a virgin store is claimable at generation 0.
  common::Result<LeaseInfo> Read() const;

  /// CAS-claims epoch observed+1. Retries a bounded number of times when
  /// racing another claimant (each retry re-reads and targets a higher
  /// epoch); exactly one racer wins any individual epoch.
  common::Status Claim();

  /// CAS-renews the held lease (same epoch, fresh expiry) at the
  /// generation our last write produced. FailedPrecondition means a newer
  /// epoch took the lease: the caller must fence.
  common::Status Renew();

  /// Drops held state without touching the blob (fencing bookkeeping).
  void Release();

  bool held() const;
  uint64_t epoch() const;
  common::Micros expires_at() const;
  uint64_t renewals() const;
  const std::string& path() const { return path_; }

 private:
  // CAS-writes {epoch, now+duration, node_name} at `expected_generation`
  // and on success records the new held state. Caller holds mu_.
  common::Status WriteAtLocked(uint64_t expected_generation, uint64_t epoch);

  storage::ObjectStore* store_;
  const std::string path_;
  common::Clock* clock_;
  const FailoverOptions options_;

  mutable std::mutex mu_;
  bool held_ = false;
  uint64_t epoch_ = 0;
  uint64_t generation_ = 0;  // blob generation after our last write
  common::Micros expires_at_ = 0;
  uint64_t renewals_ = 0;
};

/// Seals the newest journal segment under `new_epoch`: CAS-appends a PLE1
/// seal marker at the segment's observed generation, bumping it so the
/// incumbent primary's next append (which targets its cached generation)
/// must lose and self-fence. Retries while racing in-flight appends.
/// Returns the sealed segment path, or "" when the journal is empty
/// (nothing to seal — there is no incumbent appender state to invalidate).
common::Result<std::string> SealNewestSegment(
    storage::ObjectStore* store,
    const catalog::CatalogJournalOptions& journal_options,
    uint64_t new_epoch);

}  // namespace polaris::replica

#endif  // POLARIS_REPLICA_FAILOVER_H_
