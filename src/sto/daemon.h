#ifndef POLARIS_STO_DAEMON_H_
#define POLARIS_STO_DAEMON_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "sto/sto.h"

namespace polaris::sto {

/// Background driver for the System Task Orchestrator: the paper's
/// "periodic background optimizations ... without requiring manual user
/// intervention" (§5). Runs RunOnce() every `interval`, folding a garbage
/// collection in every `gc_every_n_sweeps`-th sweep. Sweep errors other
/// than optimistic conflicts are recorded; conflicts (compaction losing to
/// a user transaction) are expected and retried next sweep.
///
/// Tests and benchmarks drive the STO synchronously instead, for
/// determinism; the daemon is the production-shaped wrapper.
class StoDaemon {
 public:
  StoDaemon(SystemTaskOrchestrator* sto, std::chrono::milliseconds interval,
            uint32_t gc_every_n_sweeps = 10)
      : sto_(sto), interval_(interval), gc_every_(gc_every_n_sweeps) {}

  ~StoDaemon() { Stop(); }

  StoDaemon(const StoDaemon&) = delete;
  StoDaemon& operator=(const StoDaemon&) = delete;

  /// Starts the sweep thread (no-op if already running).
  void Start();

  /// Stops and joins the sweep thread (no-op if not running).
  void Stop();

  /// Blocks until at least `n` sweeps have completed since Start().
  void WaitForSweeps(uint64_t n);

  uint64_t sweeps() const { return sweeps_.load(); }
  uint64_t errors() const { return errors_.load(); }
  bool running() const { return running_.load(); }

 private:
  void Loop();

  SystemTaskOrchestrator* sto_;
  std::chrono::milliseconds interval_;
  uint32_t gc_every_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  bool stop_requested_ = false;
  std::atomic<uint64_t> sweeps_{0};
  std::atomic<uint64_t> errors_{0};
};

}  // namespace polaris::sto

#endif  // POLARIS_STO_DAEMON_H_
