#include "sto/daemon.h"

#include "common/logging.h"

namespace polaris::sto {

void StoDaemon::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_.load()) return;
  stop_requested_ = false;
  running_.store(true);
  thread_ = std::thread([this] { Loop(); });
}

void StoDaemon::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_.load()) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  running_.store(false);
}

void StoDaemon::WaitForSweeps(uint64_t n) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this, n] {
    return sweeps_.load() >= n || stop_requested_;
  });
}

void StoDaemon::Loop() {
  uint64_t sweep_index = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (stop_requested_) break;
    }
    ++sweep_index;
    bool run_gc = gc_every_ != 0 && sweep_index % gc_every_ == 0;
    common::Status st = sto_->RunOnce(run_gc);
    if (!st.ok() && !st.IsConflict()) {
      errors_.fetch_add(1);
      POLARIS_LOG(kWarn, "sto-daemon")
          << "sweep failed: " << st.ToString();
    }
    sweeps_.fetch_add(1);
    cv_.notify_all();
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait_for(lock, interval_, [this] { return stop_requested_; });
    if (stop_requested_) break;
  }
  cv_.notify_all();
}

}  // namespace polaris::sto
