#include "sto/sto.h"

#include <algorithm>
#include <set>

#include "common/guid.h"
#include "common/logging.h"
#include "common/trace_context.h"
#include "exec/scan.h"
#include "format/file_writer.h"
#include "lst/checkpoint.h"
#include "storage/path_util.h"

namespace polaris::sto {

using common::Result;
using common::Status;

SystemTaskOrchestrator::SystemTaskOrchestrator(
    txn::TransactionManager* txn_manager, exec::DataCache* cache,
    dcp::Scheduler* scheduler, StoOptions options)
    : txn_manager_(txn_manager),
      cache_(cache),
      scheduler_(scheduler),
      options_(options),
      publisher_(txn_manager->store()) {}

void SystemTaskOrchestrator::OnCommit(int64_t table_id) {
  std::lock_guard<std::mutex> lock(mu_);
  ++manifests_since_checkpoint_[table_id];
  publish_pending_[table_id] = true;
}

namespace {

/// Low-quality classification shared by health evaluation and compaction
/// file selection (§5.1): a file is low-quality when it is fragmented
/// (deleted fraction above threshold), or when it is small *and* its cell
/// has another file to merge it with — a lone small file with no deletes
/// cannot be improved by compaction.
bool IsLowQuality(const lst::FileState& state, uint64_t cell_file_count,
                  const StoOptions& options) {
  bool fragmented =
      state.info.row_count > 0 &&
      static_cast<double>(state.deleted_count) /
              static_cast<double>(state.info.row_count) >
          options.max_deleted_fraction;
  bool too_small =
      state.info.row_count < options.min_file_rows && cell_file_count >= 2;
  return fragmented || too_small;
}

std::map<uint32_t, uint64_t> CellFileCounts(
    const lst::TableSnapshot& snapshot) {
  std::map<uint32_t, uint64_t> counts;
  for (const auto& [path, state] : snapshot.files()) {
    (void)path;
    ++counts[state.info.cell_id];
  }
  return counts;
}

}  // namespace

Result<StorageHealth> SystemTaskOrchestrator::EvaluateHealth(
    int64_t table_id) {
  POLARIS_ASSIGN_OR_RETURN(auto txn, txn_manager_->Begin());
  auto snapshot = txn_manager_->GetSnapshot(txn.get(), table_id);
  POLARIS_RETURN_IF_ERROR(txn_manager_->Abort(txn.get()));
  POLARIS_RETURN_IF_ERROR(snapshot.status());

  StorageHealth health;
  auto cell_counts = CellFileCounts(*snapshot);
  for (const auto& [path, state] : snapshot->files()) {
    (void)path;
    ++health.total_files;
    health.total_rows += state.info.row_count;
    health.deleted_rows += state.deleted_count;
    if (IsLowQuality(state, cell_counts[state.info.cell_id], options_)) {
      ++health.low_quality_files;
    }
  }
  return health;
}

common::Micros SystemTaskOrchestrator::Now() const {
  return txn_manager_->catalog()->clock()->Now();
}

void SystemTaskOrchestrator::RecordJob(StoJobRecord record) {
  record.end_time = Now();
  {
    std::lock_guard<std::mutex> lock(mu_);
    record.job_id = next_job_id_++;
    job_history_.push_back(record);
    while (job_history_.size() > options_.job_history_capacity) {
      job_history_.pop_front();
    }
  }
  if (events_ != nullptr) {
    obs::EventLevel level = obs::EventLevel::kInfo;
    if (record.status == "error") level = obs::EventLevel::kError;
    if (record.status == "conflict") level = obs::EventLevel::kWarn;
    events_->Emit(
        level, "sto", "sto.job",
        {{"kind", record.kind},
         {"table_id", std::to_string(record.table_id)},
         {"status", record.status},
         {"duration_us",
          std::to_string(record.end_time - record.start_time)},
         {"bytes_reclaimed", std::to_string(record.bytes_reclaimed)}},
        record.detail);
  }
}

std::vector<StoJobRecord> SystemTaskOrchestrator::JobHistory() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {job_history_.begin(), job_history_.end()};
}

uint64_t SystemTaskOrchestrator::pending_manifests_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [table_id, count] : manifests_since_checkpoint_) {
    (void)table_id;
    total += count;
  }
  return total;
}

Result<CompactionStats> SystemTaskOrchestrator::CompactTable(
    int64_t table_id) {
  StoJobRecord job;
  job.kind = "compaction";
  job.table_id = table_id;
  job.start_time = Now();
  Result<CompactionStats> result = CompactTableImpl(table_id);
  if (!result.ok()) {
    job.status = result.status().IsConflict() ? "conflict" : "error";
    job.detail = result.status().ToString();
  } else if (result->input_files == 0) {
    job.status = "noop";
  } else {
    job.status = "ok";
    job.detail = std::to_string(result->input_files) + " -> " +
                 std::to_string(result->output_files) + " files, purged " +
                 std::to_string(result->deleted_rows_purged) +
                 " deleted rows";
  }
  RecordJob(std::move(job));
  return result;
}

Result<CompactionStats> SystemTaskOrchestrator::CompactTableImpl(
    int64_t table_id) {
  obs::Span span(tracer_, "sto.compaction", obs::Span::kRoot);
  if (span.active()) span.AddAttr("table_id", static_cast<int64_t>(table_id));
  // Compaction runs in its own transaction with the same SI semantics as
  // user transactions (§5.1) and can therefore conflict with them.
  POLARIS_ASSIGN_OR_RETURN(auto txn, txn_manager_->Begin());
  auto meta = txn_manager_->catalog()->GetTableById(txn->catalog_txn(),
                                                    table_id);
  if (!meta.ok()) {
    (void)txn_manager_->Abort(txn.get());
    return meta.status();
  }
  auto snapshot_or = txn_manager_->GetSnapshot(txn.get(), table_id);
  if (!snapshot_or.ok()) {
    (void)txn_manager_->Abort(txn.get());
    return snapshot_or.status();
  }
  const lst::TableSnapshot& snapshot = *snapshot_or;

  // Pick the low-quality files, grouped by cell so rewrites stay within a
  // distribution bucket.
  auto cell_counts = CellFileCounts(snapshot);
  std::map<uint32_t, std::vector<lst::FileState>> groups;
  std::map<uint32_t, std::vector<lst::FileState>> healthy_by_cell;
  for (const auto& [path, state] : snapshot.files()) {
    (void)path;
    if (IsLowQuality(state, cell_counts[state.info.cell_id], options_)) {
      groups[state.info.cell_id].push_back(state);
    } else {
      healthy_by_cell[state.info.cell_id].push_back(state);
    }
  }
  // The rewrite must not itself produce small files: if a group's live
  // output would still be under the threshold, pull in the smallest
  // healthy files of the cell as merge partners.
  for (auto& [cell, files] : groups) {
    uint64_t live = 0;
    for (const auto& f : files) live += f.live_rows();
    auto& partners = healthy_by_cell[cell];
    std::sort(partners.begin(), partners.end(),
              [](const lst::FileState& a, const lst::FileState& b) {
                return a.info.row_count < b.info.row_count;
              });
    for (auto& partner : partners) {
      if (live >= options_.min_file_rows) break;
      live += partner.live_rows();
      files.push_back(partner);
    }
  }
  // Merging a single file with no deleted rows accomplishes nothing.
  for (auto it = groups.begin(); it != groups.end();) {
    uint64_t deleted = 0;
    for (const auto& f : it->second) deleted += f.deleted_count;
    if (it->second.size() <= 1 && deleted == 0) {
      it = groups.erase(it);
    } else {
      ++it;
    }
  }
  if (groups.empty()) {
    (void)txn_manager_->Abort(txn.get());
    return CompactionStats{};
  }

  auto prepared = txn_manager_->PrepareWrite(txn.get(), table_id);
  if (!prepared.ok()) {
    (void)txn_manager_->Abort(txn.get());
    return prepared.status();
  }

  CompactionStats stats;
  exec::WriteResult result;
  for (auto& [cell, files] : groups) {
    // Read the live rows of the group.
    lst::TableSnapshot mini;
    for (const auto& f : files) mini.InsertFile(f);
    exec::TableScanner scanner(cache_, &mini);
    format::RecordBatch live(meta->schema);
    exec::ScanOptions scan_options;
    Status scan_st = scanner.ScanFilesWithOrdinals(
        scan_options,
        [&](const lst::FileState&, const format::RecordBatch& batch,
            const std::vector<uint64_t>&) -> Status {
          return live.Append(batch);
        });
    if (!scan_st.ok()) {
      (void)txn_manager_->Abort(txn.get());
      return scan_st;
    }

    for (const auto& f : files) {
      if (!f.dv_path.empty()) {
        result.entries.push_back(
            lst::ManifestEntry::RemoveDv(f.dv_path, f.info.path));
      }
      result.entries.push_back(lst::ManifestEntry::RemoveFile(f.info.path));
      result.touched_files.insert(f.info.path);
      stats.input_files += 1;
      stats.deleted_rows_purged += f.deleted_count;
    }
    // Preserve the table's clustering (§2.3): compacted files keep rows
    // ordered by the sort column so zone maps stay selective.
    int sort_idx = meta->sort_column.empty()
                       ? -1
                       : meta->schema.FindColumn(meta->sort_column);
    if (sort_idx >= 0 && live.num_rows() > 1) {
      std::vector<size_t> order(live.num_rows());
      for (size_t i = 0; i < order.size(); ++i) order[i] = i;
      const format::ColumnVector& key = live.column(sort_idx);
      std::stable_sort(order.begin(), order.end(),
                       [&key](size_t a, size_t b) {
                         return key.ValueAt(a).Compare(key.ValueAt(b)) < 0;
                       });
      format::RecordBatch sorted(meta->schema);
      for (size_t i : order) (void)sorted.AppendRow(live.GetRow(i));
      live = std::move(sorted);
    }
    if (live.num_rows() > 0) {
      format::FileWriter writer(meta->schema, options_.file_options);
      Status append_st = writer.Append(live);
      if (!append_st.ok()) {
        (void)txn_manager_->Abort(txn.get());
        return append_st;
      }
      auto bytes = std::move(writer).Finish();
      if (!bytes.ok()) {
        (void)txn_manager_->Abort(txn.get());
        return bytes.status();
      }
      std::string guid = common::Guid::Generate().ToString();
      std::string path = storage::PathUtil::DataFilePath(table_id, guid);
      uint64_t size = bytes->size();
      Status put_st = txn_manager_->store()->Put(path, std::move(*bytes));
      if (!put_st.ok()) {
        (void)txn_manager_->Abort(txn.get());
        return put_st;
      }
      lst::DataFileInfo info;
      info.path = std::move(path);
      info.row_count = live.num_rows();
      info.byte_size = size;
      info.cell_id = cell;
      result.entries.push_back(lst::ManifestEntry::AddFile(std::move(info)));
      stats.output_files += 1;
      stats.rows_rewritten += live.num_rows();
    }
  }

  Status finish =
      txn_manager_->FinishMutationStatement(txn.get(), table_id, result);
  if (!finish.ok()) {
    (void)txn_manager_->Abort(txn.get());
    return finish;
  }
  POLARIS_RETURN_IF_ERROR(txn_manager_->Commit(txn.get()));
  if (metrics_ != nullptr) {
    metrics_->Add("sto.compactions");
    metrics_->Add("sto.compaction.input_files", stats.input_files);
    metrics_->Add("sto.compaction.output_files", stats.output_files);
    metrics_->Add("sto.compaction.rows_rewritten", stats.rows_rewritten);
  }
  if (span.active()) {
    span.AddAttr("input_files", stats.input_files);
    span.AddAttr("output_files", stats.output_files);
    span.AddAttr("rows_rewritten", stats.rows_rewritten);
  }
  POLARIS_LOG(kInfo, "sto") << "compacted table " << table_id << ": "
                            << stats.input_files << " -> "
                            << stats.output_files << " files, purged "
                            << stats.deleted_rows_purged << " deleted rows";
  return stats;
}

Result<bool> SystemTaskOrchestrator::MaybeCheckpoint(int64_t table_id) {
  POLARIS_ASSIGN_OR_RETURN(auto txn, txn_manager_->Begin());
  auto records =
      txn_manager_->catalog()->GetManifests(txn->catalog_txn(), table_id);
  if (!records.ok()) {
    (void)txn_manager_->Abort(txn.get());
    return records.status();
  }
  uint64_t last_seq = records->empty() ? 0 : records->back().sequence_id;
  auto ckpt = txn_manager_->catalog()->GetLatestCheckpoint(
      txn->catalog_txn(), table_id, last_seq);
  if (!ckpt.ok()) {
    (void)txn_manager_->Abort(txn.get());
    return ckpt.status();
  }
  uint64_t base = ckpt->has_value() ? (*ckpt)->sequence_id : 0;
  uint64_t pending = 0;
  for (const auto& record : *records) {
    if (record.sequence_id > base) ++pending;
  }
  (void)txn_manager_->Abort(txn.get());
  if (pending < options_.manifests_per_checkpoint) return false;
  return ForceCheckpoint(table_id);
}

Result<bool> SystemTaskOrchestrator::ForceCheckpoint(int64_t table_id) {
  StoJobRecord job;
  job.kind = "checkpoint";
  job.table_id = table_id;
  job.start_time = Now();
  Result<bool> result = ForceCheckpointImpl(table_id);
  if (!result.ok()) {
    job.status = result.status().IsConflict() ? "conflict" : "error";
    job.detail = result.status().ToString();
  } else {
    job.status = *result ? "ok" : "noop";
  }
  RecordJob(std::move(job));
  return result;
}

Result<bool> SystemTaskOrchestrator::ForceCheckpointImpl(int64_t table_id) {
  obs::Span span(tracer_, "sto.checkpoint", obs::Span::kRoot);
  if (span.active()) span.AddAttr("table_id", static_cast<int64_t>(table_id));
  // The checkpoint operation runs in its own transaction (§5.2); it never
  // touches WriteSets or data files and thus never conflicts with user
  // transactions.
  POLARIS_ASSIGN_OR_RETURN(auto txn, txn_manager_->Begin());
  auto snapshot = txn_manager_->GetSnapshot(txn.get(), table_id);
  if (!snapshot.ok()) {
    (void)txn_manager_->Abort(txn.get());
    return snapshot.status();
  }
  if (snapshot->sequence_id() == 0) {
    (void)txn_manager_->Abort(txn.get());
    return false;  // nothing to checkpoint
  }
  std::string path = storage::PathUtil::CheckpointPath(
      table_id, snapshot->sequence_id());
  Status put = txn_manager_->store()->Put(
      path, lst::Checkpoint::Serialize(*snapshot));
  if (!put.ok() && !put.IsAlreadyExists()) {
    (void)txn_manager_->Abort(txn.get());
    return put;
  }
  catalog::CheckpointRecord record;
  record.table_id = table_id;
  record.sequence_id = snapshot->sequence_id();
  record.path = path;
  Status add = txn_manager_->catalog()->AddCheckpoint(txn->catalog_txn(),
                                                      record);
  if (!add.ok()) {
    (void)txn_manager_->Abort(txn.get());
    return add;
  }
  Status commit = txn_manager_->Commit(txn.get());
  if (!commit.ok()) return commit;
  if (metrics_ != nullptr) metrics_->Add("sto.checkpoints");
  {
    std::lock_guard<std::mutex> lock(mu_);
    manifests_since_checkpoint_[table_id] = 0;
  }
  POLARIS_LOG(kInfo, "sto") << "checkpointed table " << table_id
                            << " at sequence " << record.sequence_id;
  return true;
}

Result<GcStats> SystemTaskOrchestrator::RunGarbageCollection() {
  StoJobRecord job;
  job.kind = "gc";
  job.start_time = Now();
  Result<GcStats> result = RunGarbageCollectionImpl();
  if (!result.ok()) {
    job.status = result.status().IsConflict() ? "conflict" : "error";
    job.detail = result.status().ToString();
  } else {
    job.status = result->blobs_deleted > 0 ? "ok" : "noop";
    job.detail = "scanned " + std::to_string(result->blobs_scanned) +
                 ", deleted " + std::to_string(result->blobs_deleted);
    job.bytes_reclaimed = result->bytes_reclaimed;
  }
  RecordJob(std::move(job));
  return result;
}

Result<GcStats> SystemTaskOrchestrator::RunGarbageCollectionImpl() {
  obs::Span span(tracer_, "sto.gc", obs::Span::kRoot);
  // First purge catalog rows of dropped tables (their own transaction, so
  // the GC snapshot below no longer references those blobs).
  {
    POLARIS_ASSIGN_OR_RETURN(auto purge_txn, txn_manager_->Begin());
    auto purged = txn_manager_->catalog()->PurgeDroppedTableRows(
        purge_txn->catalog_txn());
    if (!purged.ok()) {
      (void)txn_manager_->Abort(purge_txn.get());
      return purged.status();
    }
    if (*purged > 0) {
      Status st = txn_manager_->Commit(purge_txn.get());
      // A conflict just means a concurrent committer; retry next sweep.
      if (!st.ok() && !st.IsConflict()) return st;
    } else {
      (void)txn_manager_->Abort(purge_txn.get());
    }
  }

  // Snapshot the catalog once; clone-aware by construction because we walk
  // every table and union the active sets (§5.3).
  POLARIS_ASSIGN_OR_RETURN(auto txn, txn_manager_->Begin());
  auto finish = [&](Status st) -> Status {
    (void)txn_manager_->Abort(txn.get());
    return st;
  };

  auto tables = txn_manager_->catalog()->ListTables(txn->catalog_txn());
  if (!tables.ok()) return finish(tables.status());

  common::Micros now = txn_manager_->catalog()->clock()->Now();
  common::Micros horizon = now - options_.retention_micros;
  common::Micros min_active = txn_manager_->MinActiveBeginTime();

  std::set<std::string> active;
  std::set<std::string> inactive;
  for (const auto& meta : *tables) {
    auto records = txn_manager_->catalog()->GetManifests(txn->catalog_txn(),
                                                         meta.table_id);
    if (!records.ok()) return finish(records.status());
    std::vector<lst::ManifestRef> refs;
    for (const auto& record : *records) {
      active.insert(record.path);  // manifests stay for replay/time travel
      refs.push_back({record.sequence_id, record.path});
    }
    auto ckpts = txn_manager_->catalog()->ListCheckpoints(txn->catalog_txn(),
                                                          meta.table_id);
    if (!ckpts.ok()) return finish(ckpts.status());
    std::optional<lst::CheckpointRef> newest;
    for (const auto& record : *ckpts) {
      active.insert(record.path);
      if (!refs.empty() && record.sequence_id <= refs.back().sequence_id) {
        newest = lst::CheckpointRef{record.sequence_id, record.path};
      }
    }
    auto snapshot = txn_manager_->snapshot_builder()->Build(refs, newest);
    if (!snapshot.ok()) return finish(snapshot.status());
    for (const auto& [path, state] : snapshot->files()) {
      active.insert(path);
      if (!state.dv_path.empty()) active.insert(state.dv_path);
    }
    for (const auto& removed : snapshot->removed_blobs()) {
      if (removed.removed_at >= horizon) {
        active.insert(removed.path);  // still within retention
      } else {
        inactive.insert(removed.path);
      }
    }
  }
  // Shared lineage: a blob active for any table is never deleted.
  for (const auto& path : active) inactive.erase(path);

  auto blobs = txn_manager_->store()->List("tables/");
  if (!blobs.ok()) return finish(blobs.status());

  GcStats stats;
  for (const auto& blob : *blobs) {
    // GC can walk a large store; check the budget every few dozen blobs.
    if ((stats.blobs_scanned & 63) == 0) {
      Status budget = common::CheckCurrentDeadline("sto.gc");
      if (!budget.ok()) return finish(budget);
    }
    ++stats.blobs_scanned;
    if (active.count(blob.path) != 0) {
      ++stats.blobs_active;
      continue;
    }
    bool expired_removed = inactive.count(blob.path) != 0;
    // Unknown blobs: only safe to delete when stamped before the oldest
    // currently-executing transaction — otherwise they may belong to an
    // in-flight transaction that has not committed its manifest yet.
    bool aborted_leftover = !expired_removed && blob.created_at < min_active;
    if (expired_removed || aborted_leftover) {
      Status del = txn_manager_->store()->Delete(blob.path);
      if (del.ok() || del.IsNotFound()) {
        ++stats.blobs_deleted;
        stats.bytes_reclaimed += blob.size;
      } else {
        return finish(del);
      }
    } else {
      ++stats.blobs_retained_unknown;
    }
  }
  (void)txn_manager_->Abort(txn.get());  // read-only catalog txn
  if (metrics_ != nullptr) {
    metrics_->Add("sto.gc.sweeps");
    metrics_->Add("sto.gc.blobs_scanned", stats.blobs_scanned);
    metrics_->Add("sto.gc.blobs_deleted", stats.blobs_deleted);
    metrics_->Add("sto.gc.bytes_reclaimed", stats.bytes_reclaimed);
  }
  if (span.active()) {
    span.AddAttr("blobs_scanned", stats.blobs_scanned);
    span.AddAttr("blobs_deleted", stats.blobs_deleted);
    span.AddAttr("blobs_active", stats.blobs_active);
  }
  POLARIS_LOG(kInfo, "sto") << "GC: scanned " << stats.blobs_scanned
                            << ", deleted " << stats.blobs_deleted
                            << ", active " << stats.blobs_active;
  return stats;
}

Status SystemTaskOrchestrator::PublishTable(int64_t table_id) {
  StoJobRecord job;
  job.kind = "publish";
  job.table_id = table_id;
  job.start_time = Now();
  Status st = PublishTableImpl(table_id);
  if (!st.ok()) {
    job.status = st.IsConflict() ? "conflict" : "error";
    job.detail = st.ToString();
  } else {
    job.status = "ok";
  }
  RecordJob(std::move(job));
  return st;
}

Status SystemTaskOrchestrator::PublishTableImpl(int64_t table_id) {
  obs::Span span(tracer_, "sto.publish", obs::Span::kRoot);
  if (span.active()) span.AddAttr("table_id", static_cast<int64_t>(table_id));
  POLARIS_ASSIGN_OR_RETURN(auto txn, txn_manager_->Begin());
  auto meta = txn_manager_->catalog()->GetTableById(txn->catalog_txn(),
                                                    table_id);
  if (!meta.ok()) {
    (void)txn_manager_->Abort(txn.get());
    return meta.status();
  }
  auto records = txn_manager_->catalog()->GetManifests(txn->catalog_txn(),
                                                       table_id);
  if (!records.ok()) {
    (void)txn_manager_->Abort(txn.get());
    return records.status();
  }
  (void)txn_manager_->Abort(txn.get());
  POLARIS_RETURN_IF_ERROR(publisher_.Publish(*meta, *records).status());
  if (metrics_ != nullptr) metrics_->Add("sto.delta_publishes");
  std::lock_guard<std::mutex> lock(mu_);
  publish_pending_[table_id] = false;
  return Status::OK();
}

Status SystemTaskOrchestrator::RunOnce(bool run_gc) {
  POLARIS_ASSIGN_OR_RETURN(auto txn, txn_manager_->Begin());
  auto tables = txn_manager_->catalog()->ListTables(txn->catalog_txn());
  (void)txn_manager_->Abort(txn.get());
  POLARIS_RETURN_IF_ERROR(tables.status());

  for (const auto& meta : *tables) {
    // Cooperative cancellation between per-table maintenance jobs: a
    // deadline-bounded sweep (tests, shutdown paths) stops at a table
    // boundary instead of finishing the whole pass.
    POLARIS_RETURN_IF_ERROR(common::CheckCurrentDeadline("sto.sweep"));
    POLARIS_ASSIGN_OR_RETURN(StorageHealth health,
                             EvaluateHealth(meta.table_id));
    if (!health.healthy()) {
      auto compacted = CompactTable(meta.table_id);
      if (!compacted.ok() && !compacted.status().IsConflict()) {
        return compacted.status();
      }
      // A Conflict just means a user transaction won; retry next sweep.
    }
    POLARIS_RETURN_IF_ERROR(MaybeCheckpoint(meta.table_id).status());
    bool pending;
    {
      std::lock_guard<std::mutex> lock(mu_);
      pending = publish_pending_[meta.table_id];
    }
    if (pending) {
      POLARIS_RETURN_IF_ERROR(PublishTable(meta.table_id));
    }
  }
  POLARIS_RETURN_IF_ERROR(MaintainCatalogJournal());
  if (run_gc) {
    POLARIS_RETURN_IF_ERROR(RunGarbageCollection().status());
    // Also reclaim superseded catalog row versions that no active
    // transaction's snapshot can still see.
    txn_manager_->catalog()->store()->Vacuum(
        txn_manager_->MinActiveBeginSeq());
  }
  return Status::OK();
}

Status SystemTaskOrchestrator::MaintainCatalogJournal() {
  if (journal_ == nullptr) return Status::OK();
  StoJobRecord job;
  job.kind = "journal";
  job.start_time = Now();
  uint64_t reclaimed_blobs = 0;
  Status st = MaintainCatalogJournalImpl(&reclaimed_blobs);
  if (!st.ok()) {
    job.status = "error";
    job.detail = st.ToString();
  } else {
    job.status = reclaimed_blobs > 0 ? "ok" : "noop";
    job.detail = "reclaimed " + std::to_string(reclaimed_blobs) +
                 " journal blobs";
  }
  RecordJob(std::move(job));
  return st;
}

Status SystemTaskOrchestrator::MaintainCatalogJournalImpl(
    uint64_t* reclaimed_blobs) {
  if (journal_->ShouldCheckpoint()) {
    obs::Span span(tracer_, "sto.catalog_checkpoint", obs::Span::kRoot);
    // ExportLatest pairs the rows with the commit sequence they are
    // consistent with, taken atomically under the catalog lock.
    uint64_t seq = 0;
    auto rows = txn_manager_->catalog()->store()->ExportLatest(&seq);
    POLARIS_RETURN_IF_ERROR(journal_->WriteCheckpoint(seq, rows));
    if (metrics_ != nullptr) metrics_->Add("sto.catalog_checkpoints");
  }
  POLARIS_ASSIGN_OR_RETURN(uint64_t reclaimed,
                           journal_->ReclaimSupersededSegments());
  *reclaimed_blobs = reclaimed;
  if (reclaimed > 0) {
    if (metrics_ != nullptr) {
      metrics_->Add("sto.journal_blobs_reclaimed", reclaimed);
    }
    POLARIS_LOG(kInfo, "sto")
        << "reclaimed " << reclaimed << " superseded catalog journal blobs";
  }
  return Status::OK();
}

}  // namespace polaris::sto
