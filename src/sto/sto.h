#ifndef POLARIS_STO_STO_H_
#define POLARIS_STO_STO_H_

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "catalog/catalog_journal.h"
#include "common/result.h"
#include "exec/data_cache.h"
#include "exec/dml.h"
#include "format/file_writer.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "sto/delta_publisher.h"
#include "txn/transaction_manager.h"

namespace polaris::sto {

/// Tuning knobs for the autonomous storage optimizations (paper §5).
struct StoOptions {
  /// A data file is low-quality when its deleted fraction exceeds this
  /// (data fragmentation, §5.1)...
  double max_deleted_fraction = 0.2;
  /// ...or when it has fewer rows than this (small-file problem, §5.1).
  uint64_t min_file_rows = 256;
  /// Checkpoint once this many manifests accumulate past the newest
  /// checkpoint (§5.2; the paper's experiment uses 10).
  uint64_t manifests_per_checkpoint = 10;
  /// How long logically-removed files stay restorable before GC (§5.3).
  common::Micros retention_micros = 7LL * 24 * 3600 * 1'000'000;
  /// WLM pool STO maintenance tasks run on.
  std::string pool = "write";
  /// Finished maintenance jobs retained for sys.dm_sto_jobs.
  size_t job_history_capacity = 128;
  /// Writer settings for compacted files; the engine aligns this with its
  /// own data-file settings so compaction preserves row-group geometry.
  format::FileWriterOptions file_options;
};

/// Health of one table's storage, as gathered from scan statistics
/// (drives Figure 10's green/red bands).
struct StorageHealth {
  uint64_t total_files = 0;
  uint64_t low_quality_files = 0;
  uint64_t total_rows = 0;
  uint64_t deleted_rows = 0;
  bool healthy() const { return low_quality_files == 0; }
};

/// Result of one compaction run.
struct CompactionStats {
  uint64_t input_files = 0;
  uint64_t output_files = 0;
  uint64_t rows_rewritten = 0;
  uint64_t deleted_rows_purged = 0;
};

/// Result of one garbage-collection sweep.
struct GcStats {
  uint64_t blobs_scanned = 0;
  uint64_t blobs_deleted = 0;
  uint64_t blobs_active = 0;
  /// Unknown blobs retained because they may belong to an in-flight
  /// transaction (created after the GC safety horizon).
  uint64_t blobs_retained_unknown = 0;
  /// Store bytes freed by the deleted blobs.
  uint64_t bytes_reclaimed = 0;
};

/// One finished maintenance job in the bounded history ring (backs
/// sys.dm_sto_jobs).
struct StoJobRecord {
  uint64_t job_id = 0;
  /// "compaction" | "checkpoint" | "gc" | "publish" | "journal".
  std::string kind;
  int64_t table_id = -1;  // -1 for store-global jobs (gc, journal)
  common::Micros start_time = 0;
  common::Micros end_time = 0;
  /// "ok" | "noop" | "conflict" | "error".
  std::string status;
  /// Human-readable outcome summary or error text.
  std::string detail;
  uint64_t bytes_reclaimed = 0;
};

/// The System Task Orchestrator (paper §3.3, §5): a control-plane service
/// that watches commit notifications and storage statistics and runs
/// compaction, manifest checkpointing, garbage collection and async Delta
/// publishing — all as ordinary transactions/system operations, without
/// user intervention.
///
/// This implementation is explicitly driven (`OnCommit` + `RunOnce`) so
/// tests and benchmarks are deterministic; a production deployment would
/// wrap it in a periodic scheduler thread.
class SystemTaskOrchestrator {
 public:
  SystemTaskOrchestrator(txn::TransactionManager* txn_manager,
                         exec::DataCache* cache, dcp::Scheduler* scheduler,
                         StoOptions options = {});

  const StoOptions& options() const { return options_; }

  /// Attaches a metrics registry (must outlive the STO); compactions,
  /// checkpoints, GC deletions and publishes are then counted under
  /// "sto.*".
  void set_metrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }

  /// Attaches a tracer (must outlive the STO); each maintenance job then
  /// records a root span ("sto.compaction", "sto.checkpoint", "sto.gc",
  /// "sto.publish") — background jobs are their own traces, not children
  /// of whatever user statement happened to trigger the sweep.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Attaches the durable engine's catalog journal (may be null). The STO
  /// then writes periodic catalog checkpoints and reclaims superseded
  /// journal segments during its sweeps — §5.2/§5.3 extended to the
  /// catalog's own log.
  void set_catalog_journal(catalog::CatalogJournal* journal) {
    journal_ = journal;
  }

  /// Attaches a structured event log (must outlive the STO); every
  /// maintenance job then emits an `sto.job` event with its outcome.
  void set_event_log(obs::EventLog* events) { events_ = events; }

  /// Finished maintenance jobs, oldest first (bounded ring).
  std::vector<StoJobRecord> JobHistory() const;

  /// Manifests committed past the newest checkpoint, summed over all
  /// tables — the checkpoint backlog the health watchdog tracks.
  uint64_t pending_manifests_total() const;

  /// FE commit notification (§5.2): bumps the table's pending-manifest
  /// count and marks it for publishing.
  void OnCommit(int64_t table_id);

  /// Evaluates storage health from the current committed snapshot.
  common::Result<StorageHealth> EvaluateHealth(int64_t table_id);

  /// Compacts all low-quality files of `table_id` in its own snapshot-
  /// isolated transaction (§5.1). Filters out deleted rows and merges
  /// small files per cell. Returns Conflict if a concurrent user
  /// transaction won validation (the paper's noted downside).
  common::Result<CompactionStats> CompactTable(int64_t table_id);

  /// Writes a checkpoint if at least `manifests_per_checkpoint` manifests
  /// accumulated past the newest one (§5.2). Returns true if one was
  /// created.
  common::Result<bool> MaybeCheckpoint(int64_t table_id);

  /// Forces a checkpoint regardless of the trigger.
  common::Result<bool> ForceCheckpoint(int64_t table_id);

  /// Global mark-and-sweep over the object store (§5.3): reconstructs all
  /// tables' states (clone-aware: a blob referenced by any table stays),
  /// deletes blobs past retention, and deletes unknown blobs stamped
  /// before the oldest active transaction (aborted-transaction leftovers).
  common::Result<GcStats> RunGarbageCollection();

  /// Publishes any unpublished committed manifests of `table_id` as a
  /// Delta-format log in the user-visible OneLake location (§5.4).
  common::Status PublishTable(int64_t table_id);

  /// Catalog-journal maintenance: writes a catalog checkpoint when the
  /// journal asks for one, then reclaims superseded segments. No-op when
  /// no journal is attached. Runs as part of every RunOnce sweep.
  common::Status MaintainCatalogJournal();

  /// One background sweep: health check + compaction where needed,
  /// checkpointing, publishing; GC only when `run_gc`.
  common::Status RunOnce(bool run_gc = false);

 private:
  /// The un-instrumented job bodies; the public entry points above wrap
  /// them with job-history recording and outcome events.
  common::Result<CompactionStats> CompactTableImpl(int64_t table_id);
  common::Result<bool> ForceCheckpointImpl(int64_t table_id);
  common::Result<GcStats> RunGarbageCollectionImpl();
  common::Status PublishTableImpl(int64_t table_id);
  common::Status MaintainCatalogJournalImpl(uint64_t* reclaimed_blobs);

  /// Completes `record` (job id, end time) and pushes it into the ring;
  /// emits the `sto.job` event when a log is attached.
  void RecordJob(StoJobRecord record);

  common::Micros Now() const;

  txn::TransactionManager* txn_manager_;
  exec::DataCache* cache_;
  dcp::Scheduler* scheduler_;
  StoOptions options_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  catalog::CatalogJournal* journal_ = nullptr;
  obs::EventLog* events_ = nullptr;
  DeltaPublisher publisher_;

  mutable std::mutex mu_;
  /// Manifests committed since the newest checkpoint, per table.
  std::map<int64_t, uint64_t> manifests_since_checkpoint_;
  /// Tables with commits not yet published.
  std::map<int64_t, bool> publish_pending_;
  uint64_t next_job_id_ = 1;
  std::deque<StoJobRecord> job_history_;  // bounded by job_history_capacity
};

}  // namespace polaris::sto

#endif  // POLARIS_STO_STO_H_
