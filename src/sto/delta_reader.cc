#include "sto/delta_reader.h"

#include <cinttypes>
#include <cstdio>
#include <map>
#include <sstream>

#include "exec/scan.h"
#include "lst/table_snapshot.h"
#include "storage/path_util.h"

namespace polaris::sto {

using common::Result;
using common::Status;

namespace {

/// Extracts the string value of `"key":"..."` from one JSON line,
/// honouring the escapes our publisher emits (\\, \", \n). Returns false
/// when the key is absent.
bool ExtractJsonString(const std::string& line, const std::string& key,
                       std::string* out) {
  std::string needle = "\"" + key + "\":\"";
  size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  pos += needle.size();
  std::string value;
  while (pos < line.size()) {
    char c = line[pos];
    if (c == '\\' && pos + 1 < line.size()) {
      char esc = line[pos + 1];
      value += esc == 'n' ? '\n' : esc;
      pos += 2;
      continue;
    }
    if (c == '"') {
      *out = std::move(value);
      return true;
    }
    value += c;
    ++pos;
  }
  return false;
}

bool ExtractJsonNumber(const std::string& line, const std::string& key,
                       uint64_t* out) {
  std::string needle = "\"" + key + "\":";
  size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  pos += needle.size();
  uint64_t value = 0;
  bool any = false;
  while (pos < line.size() && line[pos] >= '0' && line[pos] <= '9') {
    value = value * 10 + static_cast<uint64_t>(line[pos] - '0');
    ++pos;
    any = true;
  }
  if (!any) return false;
  *out = value;
  return true;
}

}  // namespace

Result<uint64_t> DeltaLakeReader::LatestVersion(
    const std::string& table_name) {
  POLARIS_ASSIGN_OR_RETURN(
      auto blobs,
      store_->List(storage::PathUtil::PublishedDeltaLogDir(table_name) + "/"));
  uint64_t latest = 0;
  for (const auto& blob : blobs) {
    // Files are "<20-digit version>.json"; Stat order is lexicographic ==
    // numeric, so the last parsable one wins.
    size_t slash = blob.path.rfind('/');
    std::string name = blob.path.substr(slash + 1);
    if (name.size() < 5 || name.substr(name.size() - 5) != ".json") continue;
    uint64_t version = 0;
    bool valid = true;
    for (char c : name.substr(0, name.size() - 5)) {
      if (c < '0' || c > '9') {
        valid = false;
        break;
      }
      version = version * 10 + static_cast<uint64_t>(c - '0');
    }
    if (valid && version > latest) latest = version;
  }
  return latest;
}

Result<std::vector<DeltaAction>> DeltaLakeReader::ReadVersion(
    const std::string& table_name, uint64_t version) {
  POLARIS_ASSIGN_OR_RETURN(
      std::string blob,
      store_->Get(
          storage::PathUtil::PublishedDeltaLogPath(table_name, version)));
  std::vector<DeltaAction> actions;
  std::istringstream lines(blob);
  std::string line;
  while (std::getline(lines, line)) {
    bool is_add = line.find("{\"add\":") == 0;
    bool is_remove = line.find("{\"remove\":") == 0;
    if (!is_add && !is_remove) continue;  // commitInfo etc.
    DeltaAction action;
    if (!ExtractJsonString(line, "path", &action.path)) {
      return Status::Corruption("delta action without path: " + line);
    }
    bool is_dv = line.find("\"deletionVector\"") != std::string::npos;
    if (is_dv) {
      action.kind = is_add ? DeltaAction::Kind::kAddDv
                           : DeltaAction::Kind::kRemoveDv;
      ExtractJsonString(line, "target", &action.target);
      ExtractJsonNumber(line, "cardinality", &action.dv_cardinality);
    } else {
      action.kind = is_add ? DeltaAction::Kind::kAddFile
                           : DeltaAction::Kind::kRemoveFile;
      ExtractJsonNumber(line, "numRecords", &action.num_records);
      ExtractJsonNumber(line, "size", &action.size);
    }
    actions.push_back(std::move(action));
  }
  return actions;
}

Result<std::vector<DeltaLakeReader::FileEntry>>
DeltaLakeReader::ReconstructFileSet(const std::string& table_name,
                                    uint64_t max_version) {
  if (max_version == 0) {
    POLARIS_ASSIGN_OR_RETURN(max_version, LatestVersion(table_name));
  }
  std::map<std::string, FileEntry> files;
  for (uint64_t version = 1; version <= max_version; ++version) {
    POLARIS_ASSIGN_OR_RETURN(auto actions,
                             ReadVersion(table_name, version));
    for (const auto& action : actions) {
      switch (action.kind) {
        case DeltaAction::Kind::kAddFile:
          files[action.path] = FileEntry{action.path, ""};
          break;
        case DeltaAction::Kind::kRemoveFile:
          files.erase(action.path);
          break;
        case DeltaAction::Kind::kAddDv: {
          auto it = files.find(action.target);
          if (it == files.end()) {
            return Status::Corruption("DV for unknown file: " +
                                      action.target);
          }
          it->second.dv_path = action.path;
          break;
        }
        case DeltaAction::Kind::kRemoveDv: {
          auto it = files.find(action.target);
          if (it != files.end() && it->second.dv_path == action.path) {
            it->second.dv_path.clear();
          }
          break;
        }
      }
    }
  }
  std::vector<FileEntry> out;
  out.reserve(files.size());
  for (auto& [path, entry] : files) {
    (void)path;
    out.push_back(std::move(entry));
  }
  return out;
}

Result<format::RecordBatch> DeltaLakeReader::ScanTable(
    const std::string& table_name, uint64_t max_version) {
  POLARIS_ASSIGN_OR_RETURN(auto files,
                           ReconstructFileSet(table_name, max_version));
  // Assemble a synthetic snapshot and reuse the merge-on-read scanner —
  // exactly what an external Delta reader does with add-file + DV info.
  lst::TableSnapshot snapshot;
  for (const auto& entry : files) {
    lst::FileState state;
    state.info.path = entry.path;
    state.dv_path = entry.dv_path;
    snapshot.InsertFile(std::move(state));
  }
  exec::TableScanner scanner(cache_, &snapshot);
  return scanner.ScanAll({});
}

}  // namespace polaris::sto
