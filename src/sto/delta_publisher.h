#ifndef POLARIS_STO_DELTA_PUBLISHER_H_
#define POLARIS_STO_DELTA_PUBLISHER_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "catalog/catalog_db.h"
#include "common/result.h"
#include "lst/manifest.h"
#include "storage/object_store.h"

namespace polaris::sto {

/// Async 'lake' snapshot publisher (paper §5.4): transforms each committed
/// internal manifest into a Delta-format commit JSON in the user-visible
/// location, and maps the internal data folder in via a shortcut — the
/// data files themselves are never copied (single copy in OneLake).
///
/// Published layout:
///   published/<table_name>/_delta_log/<version>.json
///   published/<table_name>/_shortcut        -> internal data dir pointer
class DeltaPublisher {
 public:
  explicit DeltaPublisher(storage::ObjectStore* store) : store_(store) {}

  /// Publishes every manifest of `table` with sequence_id greater than the
  /// last published version. Returns the number of versions published.
  common::Result<uint64_t> Publish(
      const catalog::TableMeta& table,
      const std::vector<catalog::ManifestRecord>& manifests);

  /// Last published Delta version for a table (0 = none).
  uint64_t LastPublishedVersion(const std::string& table_name) const;

  /// Renders one manifest as a Delta-style commit JSON (exposed for
  /// tests).
  static std::string ToDeltaJson(
      const std::vector<lst::ManifestEntry>& entries, uint64_t version,
      common::Micros commit_time);

 private:
  storage::ObjectStore* store_;
  mutable std::mutex mu_;
  std::map<std::string, uint64_t> last_published_;
};

}  // namespace polaris::sto

#endif  // POLARIS_STO_DELTA_PUBLISHER_H_
