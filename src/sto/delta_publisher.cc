#include "sto/delta_publisher.h"

#include <sstream>

#include "storage/path_util.h"

namespace polaris::sto {

using common::Result;
using common::Status;

namespace {

void AppendJsonString(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      default:
        out << c;
    }
  }
  out << '"';
}

}  // namespace

std::string DeltaPublisher::ToDeltaJson(
    const std::vector<lst::ManifestEntry>& entries, uint64_t version,
    common::Micros commit_time) {
  std::ostringstream out;
  out << "{\"commitInfo\":{\"version\":" << version
      << ",\"timestamp\":" << commit_time << ",\"engine\":\"polaris\"}}\n";
  for (const auto& entry : entries) {
    switch (entry.type) {
      case lst::ActionType::kAddDataFile:
        out << "{\"add\":{\"path\":";
        AppendJsonString(out, entry.file.path);
        out << ",\"size\":" << entry.file.byte_size
            << ",\"numRecords\":" << entry.file.row_count
            << ",\"dataChange\":true}}\n";
        break;
      case lst::ActionType::kRemoveDataFile:
        out << "{\"remove\":{\"path\":";
        AppendJsonString(out, entry.file.path);
        out << ",\"dataChange\":true}}\n";
        break;
      case lst::ActionType::kAddDeleteVector:
        out << "{\"add\":{\"path\":";
        AppendJsonString(out, entry.dv.path);
        out << ",\"deletionVector\":{\"target\":";
        AppendJsonString(out, entry.dv.target_data_file);
        out << ",\"cardinality\":" << entry.dv.deleted_count << "}}}\n";
        break;
      case lst::ActionType::kRemoveDeleteVector:
        out << "{\"remove\":{\"path\":";
        AppendJsonString(out, entry.dv.path);
        out << ",\"deletionVector\":true}}\n";
        break;
    }
  }
  return out.str();
}

Result<uint64_t> DeltaPublisher::Publish(
    const catalog::TableMeta& table,
    const std::vector<catalog::ManifestRecord>& manifests) {
  uint64_t last;
  {
    std::lock_guard<std::mutex> lock(mu_);
    last = last_published_[table.name];
  }
  // Map the internal data folder into the published location once
  // (OneLake shortcut: a pointer blob, no data copy).
  if (last == 0 && !manifests.empty()) {
    std::string shortcut_path = "published/" + table.name + "/_shortcut";
    Status st = store_->Put(shortcut_path,
                            storage::PathUtil::DataDir(table.table_id));
    if (!st.ok() && !st.IsAlreadyExists()) return st;
  }
  uint64_t published = 0;
  for (const auto& record : manifests) {
    if (record.sequence_id <= last) continue;
    POLARIS_ASSIGN_OR_RETURN(std::string blob, store_->Get(record.path));
    POLARIS_ASSIGN_OR_RETURN(auto entries, lst::ParseEntries(blob));
    std::string json = ToDeltaJson(entries, record.sequence_id,
                                   record.commit_time);
    std::string path = storage::PathUtil::PublishedDeltaLogPath(
        table.name, record.sequence_id);
    Status st = store_->Put(path, std::move(json));
    if (!st.ok() && !st.IsAlreadyExists()) return st;
    last = record.sequence_id;
    ++published;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t& entry = last_published_[table.name];
    if (last > entry) entry = last;
  }
  return published;
}

uint64_t DeltaPublisher::LastPublishedVersion(
    const std::string& table_name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = last_published_.find(table_name);
  return it == last_published_.end() ? 0 : it->second;
}

}  // namespace polaris::sto
