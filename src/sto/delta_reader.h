#ifndef POLARIS_STO_DELTA_READER_H_
#define POLARIS_STO_DELTA_READER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "exec/data_cache.h"
#include "format/column.h"
#include "storage/object_store.h"

namespace polaris::sto {

/// One action parsed from a published Delta commit JSON.
struct DeltaAction {
  enum class Kind { kAddFile, kRemoveFile, kAddDv, kRemoveDv };
  Kind kind = Kind::kAddFile;
  std::string path;    // data file or DV blob
  std::string target;  // DV target data file (DV actions only)
  uint64_t num_records = 0;
  uint64_t size = 0;
  uint64_t dv_cardinality = 0;
};

/// A third-party-engine's view of a published table (paper §5.4): reads
/// the `published/<table>/_delta_log/` commit files, reconstructs the
/// current file set exactly like Spark's Delta reader would, and scans
/// the shared data files through the shortcut — no data copies, the same
/// single copy in OneLake the warehouse wrote.
///
/// This is the consumer half of the async-read-snapshot story; the
/// producer half is DeltaPublisher. Round-tripping a table through
/// publish + DeltaLakeReader must reproduce its exact contents.
class DeltaLakeReader {
 public:
  DeltaLakeReader(storage::ObjectStore* store, exec::DataCache* cache)
      : store_(store), cache_(cache) {}

  /// Latest published version (0 = table not published).
  common::Result<uint64_t> LatestVersion(const std::string& table_name);

  /// Parses one published commit file.
  common::Result<std::vector<DeltaAction>> ReadVersion(
      const std::string& table_name, uint64_t version);

  /// The live (file, dv) set after replaying versions 1..`max_version`
  /// (0 = all published versions).
  struct FileEntry {
    std::string path;
    std::string dv_path;  // empty when no deletion vector
  };
  common::Result<std::vector<FileEntry>> ReconstructFileSet(
      const std::string& table_name, uint64_t max_version = 0);

  /// Full scan of the published table as an external engine would do it:
  /// reconstruct the file set, then merge-on-read each data file.
  common::Result<format::RecordBatch> ScanTable(
      const std::string& table_name, uint64_t max_version = 0);

 private:
  storage::ObjectStore* store_;
  exec::DataCache* cache_;
};

}  // namespace polaris::sto

#endif  // POLARIS_STO_DELTA_READER_H_
