#include "format/value.h"

namespace polaris::format {

int Value::Compare(const Value& other) const {
  if (is_null || other.is_null) {
    if (is_null && other.is_null) return 0;
    return is_null ? -1 : 1;
  }
  switch (type) {
    case ColumnType::kInt64: {
      if (i64 != other.i64) return i64 < other.i64 ? -1 : 1;
      return 0;
    }
    case ColumnType::kDouble: {
      if (f64 != other.f64) return f64 < other.f64 ? -1 : 1;
      return 0;
    }
    case ColumnType::kString: {
      int c = str.compare(other.str);
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
  }
  return 0;
}

std::string Value::ToString() const {
  if (is_null) return "NULL";
  switch (type) {
    case ColumnType::kInt64:
      return std::to_string(i64);
    case ColumnType::kDouble:
      return std::to_string(f64);
    case ColumnType::kString:
      return str;
  }
  return "?";
}

}  // namespace polaris::format
