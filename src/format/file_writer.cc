#include "format/file_writer.h"

namespace polaris::format {

using common::Result;
using common::Status;

FileWriter::FileWriter(Schema schema, FileWriterOptions options)
    : schema_(std::move(schema)),
      options_(options),
      buffered_(schema_) {}

Status FileWriter::Append(const RecordBatch& batch) {
  if (finished_) return Status::FailedPrecondition("writer already finished");
  POLARIS_RETURN_IF_ERROR(buffered_.Append(batch));
  while (buffered_.num_rows() >= options_.rows_per_row_group) {
    FlushRowGroup();
  }
  return Status::OK();
}

Status FileWriter::AppendRow(const Row& row) {
  if (finished_) return Status::FailedPrecondition("writer already finished");
  POLARIS_RETURN_IF_ERROR(buffered_.AppendRow(row));
  if (buffered_.num_rows() >= options_.rows_per_row_group) {
    FlushRowGroup();
  }
  return Status::OK();
}

void FileWriter::FlushRowGroup() {
  uint64_t rows =
      std::min<uint64_t>(buffered_.num_rows(), options_.rows_per_row_group);
  if (rows == 0) return;

  RowGroupMeta meta;
  meta.num_rows = rows;

  // Split the buffered batch: first `rows` go into this group; the
  // remainder stays buffered.
  RecordBatch group(schema_);
  RecordBatch rest(schema_);
  for (size_t r = 0; r < buffered_.num_rows(); ++r) {
    auto* target = r < rows ? &group : &rest;
    // AppendRow can't fail here: the row came from a matching batch.
    (void)target->AppendRow(buffered_.GetRow(r));
  }
  buffered_ = std::move(rest);

  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    ColumnChunkMeta chunk;
    chunk.offset = body_.size();
    chunk.encoding = EncodeColumn(group.column(c), &body_);
    chunk.size = body_.size() - chunk.offset;
    for (size_t r = 0; r < rows; ++r) {
      chunk.stats.Observe(group.column(c).ValueAt(r));
    }
    meta.columns.push_back(std::move(chunk));
  }
  total_rows_ += rows;
  row_groups_.push_back(std::move(meta));
}

Result<std::string> FileWriter::Finish() {
  if (finished_) return Status::FailedPrecondition("writer already finished");
  while (buffered_.num_rows() > 0) FlushRowGroup();
  finished_ = true;

  common::ByteWriter footer;
  schema_.Serialize(&footer);
  footer.PutVarint(row_groups_.size());
  for (const auto& group : row_groups_) {
    footer.PutVarint(group.num_rows);
    footer.PutVarint(group.columns.size());
    for (const auto& chunk : group.columns) {
      footer.PutU64(chunk.offset);
      footer.PutU64(chunk.size);
      footer.PutU8(static_cast<uint8_t>(chunk.encoding));
      chunk.stats.Serialize(&footer);
    }
  }

  std::string out = body_.Release();
  uint32_t footer_size = static_cast<uint32_t>(footer.size());
  out += footer.data();
  out.append(reinterpret_cast<const char*>(&footer_size),
             sizeof(footer_size));
  out.append(kMagic, 4);
  return out;
}

}  // namespace polaris::format
