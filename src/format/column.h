#ifndef POLARIS_FORMAT_COLUMN_H_
#define POLARIS_FORMAT_COLUMN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "format/schema.h"
#include "format/value.h"

namespace polaris::format {

/// Columnar storage for one column: a typed value array plus a validity
/// (non-null) flag per row. This is the unit the vectorized executor
/// operates over.
class ColumnVector {
 public:
  ColumnVector() = default;
  explicit ColumnVector(ColumnType type) : type_(type) {}

  ColumnType type() const { return type_; }
  size_t size() const { return valid_.size(); }

  void AppendInt64(int64_t v);
  void AppendDouble(double v);
  void AppendString(std::string v);
  void AppendNull();
  /// Appends `v`; the value's type must match the column type (nulls of any
  /// type are accepted).
  void AppendValue(const Value& v);

  bool IsNull(size_t row) const { return !valid_[row]; }
  int64_t Int64At(size_t row) const { return ints_[row]; }
  double DoubleAt(size_t row) const { return doubles_[row]; }
  const std::string& StringAt(size_t row) const { return strings_[row]; }

  /// Materializes row `row` as a Value (copies strings).
  Value ValueAt(size_t row) const;

  /// Direct access for the vectorized executor hot paths.
  const std::vector<int64_t>& ints() const { return ints_; }
  const std::vector<double>& doubles() const { return doubles_; }
  const std::vector<std::string>& strings() const { return strings_; }
  const std::vector<uint8_t>& validity() const { return valid_; }

  size_t null_count() const;

 private:
  ColumnType type_ = ColumnType::kInt64;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
  std::vector<uint8_t> valid_;  // 1 = non-null
};

/// A horizontal slice of a table: a schema plus one ColumnVector per column,
/// all the same length.
class RecordBatch {
 public:
  RecordBatch() = default;
  explicit RecordBatch(Schema schema);

  const Schema& schema() const { return schema_; }
  size_t num_columns() const { return columns_.size(); }
  size_t num_rows() const {
    return columns_.empty() ? 0 : columns_[0].size();
  }

  ColumnVector& column(size_t i) { return columns_[i]; }
  const ColumnVector& column(size_t i) const { return columns_[i]; }

  /// Appends a full row; `row` must match the schema arity and types.
  common::Status AppendRow(const Row& row);

  /// Materializes row `i`.
  Row GetRow(size_t i) const;

  /// Appends all rows of `other` (schemas must be equal).
  common::Status Append(const RecordBatch& other);

 private:
  Schema schema_;
  std::vector<ColumnVector> columns_;
};

}  // namespace polaris::format

#endif  // POLARIS_FORMAT_COLUMN_H_
