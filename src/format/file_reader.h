#ifndef POLARIS_FORMAT_FILE_READER_H_
#define POLARIS_FORMAT_FILE_READER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "format/column.h"
#include "format/file_writer.h"
#include "format/schema.h"

namespace polaris::format {

/// Reads an immutable "PLX1" columnar file from an in-memory byte string.
/// Supports column projection and zone-map-based row-group skipping.
class FileReader {
 public:
  /// Parses the footer; fails with Corruption on malformed files.
  static common::Result<FileReader> Open(std::string data);

  const Schema& schema() const { return schema_; }
  size_t num_row_groups() const { return row_groups_.size(); }
  const RowGroupMeta& row_group(size_t i) const { return row_groups_[i]; }
  uint64_t num_rows() const;

  /// Reads a full row group, optionally projecting a subset of columns
  /// (indices into the file schema, in the requested order). An empty
  /// projection means all columns.
  common::Result<RecordBatch> ReadRowGroup(
      size_t group, const std::vector<int>& projection = {}) const;

  /// Reads the whole file into one batch (testing convenience).
  common::Result<RecordBatch> ReadAll(
      const std::vector<int>& projection = {}) const;

  /// True when the zone map proves no row in the group can satisfy
  /// `low <= column <= high` (either bound may be unbounded via nullptr).
  bool CanSkipRowGroup(size_t group, int column, const Value* low,
                       const Value* high) const;

 private:
  FileReader() = default;

  std::string data_;
  Schema schema_;
  std::vector<RowGroupMeta> row_groups_;
};

}  // namespace polaris::format

#endif  // POLARIS_FORMAT_FILE_READER_H_
