#ifndef POLARIS_FORMAT_SCHEMA_H_
#define POLARIS_FORMAT_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "common/status.h"

namespace polaris::format {

/// Column value types supported by the columnar format. The engine treats
/// data files as opaque cells; this type system is what the single-node
/// executor (the SQL Server stand-in) understands.
enum class ColumnType : uint8_t {
  kInt64 = 0,
  kDouble = 1,
  kString = 2,
};

std::string_view ColumnTypeName(ColumnType type);

/// One column in a table schema.
struct ColumnDesc {
  std::string name;
  ColumnType type;

  friend bool operator==(const ColumnDesc& a, const ColumnDesc& b) {
    return a.name == b.name && a.type == b.type;
  }
};

/// An ordered list of named, typed columns.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDesc> columns)
      : columns_(std::move(columns)) {}

  size_t num_columns() const { return columns_.size(); }
  const ColumnDesc& column(size_t i) const { return columns_[i]; }
  const std::vector<ColumnDesc>& columns() const { return columns_; }

  /// Index of the column with `name`, or -1 if absent.
  int FindColumn(const std::string& name) const;

  void Serialize(common::ByteWriter* out) const;
  static common::Result<Schema> Deserialize(common::ByteReader* in);

  friend bool operator==(const Schema& a, const Schema& b) {
    return a.columns_ == b.columns_;
  }

 private:
  std::vector<ColumnDesc> columns_;
};

}  // namespace polaris::format

#endif  // POLARIS_FORMAT_SCHEMA_H_
