#ifndef POLARIS_FORMAT_FILE_WRITER_H_
#define POLARIS_FORMAT_FILE_WRITER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "format/column.h"
#include "format/encoding.h"
#include "format/schema.h"

namespace polaris::format {

/// File layout metadata — per column chunk within a row group.
struct ColumnChunkMeta {
  uint64_t offset = 0;
  uint64_t size = 0;
  Encoding encoding = Encoding::kPlain;
  ColumnStats stats;
};

/// Per row group metadata.
struct RowGroupMeta {
  uint64_t num_rows = 0;
  std::vector<ColumnChunkMeta> columns;
};

/// Options for the columnar file writer.
struct FileWriterOptions {
  /// Rows per row group. Real Parquet targets a size in bytes; rows keep
  /// the cost model simple and deterministic.
  uint64_t rows_per_row_group = 8192;
};

/// Writes one immutable columnar file ("PLX1" format — the Parquet
/// substitute). Usage: construct, Append() batches/rows, Finish() to get
/// the serialized bytes; the caller stores them as a write-once blob.
///
/// Layout: [row-group column chunks...][footer][footer_size:u32][magic].
class FileWriter {
 public:
  explicit FileWriter(Schema schema, FileWriterOptions options = {});

  const Schema& schema() const { return schema_; }

  common::Status Append(const RecordBatch& batch);
  common::Status AppendRow(const Row& row);

  uint64_t buffered_rows() const { return buffered_.num_rows(); }
  uint64_t total_rows() const { return total_rows_ + buffered_.num_rows(); }

  /// Flushes remaining rows and returns the complete file bytes.
  /// The writer may not be reused afterwards.
  common::Result<std::string> Finish();

  static constexpr char kMagic[5] = "PLX1";

 private:
  void FlushRowGroup();

  Schema schema_;
  FileWriterOptions options_;
  RecordBatch buffered_;
  common::ByteWriter body_;
  std::vector<RowGroupMeta> row_groups_;
  uint64_t total_rows_ = 0;
  bool finished_ = false;
};

}  // namespace polaris::format

#endif  // POLARIS_FORMAT_FILE_WRITER_H_
