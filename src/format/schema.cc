#include "format/schema.h"

namespace polaris::format {

std::string_view ColumnTypeName(ColumnType type) {
  switch (type) {
    case ColumnType::kInt64:
      return "int64";
    case ColumnType::kDouble:
      return "double";
    case ColumnType::kString:
      return "string";
  }
  return "unknown";
}

int Schema::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

void Schema::Serialize(common::ByteWriter* out) const {
  out->PutVarint(columns_.size());
  for (const auto& col : columns_) {
    out->PutString(col.name);
    out->PutU8(static_cast<uint8_t>(col.type));
  }
}

common::Result<Schema> Schema::Deserialize(common::ByteReader* in) {
  uint64_t n;
  POLARIS_RETURN_IF_ERROR(in->GetVarint(&n));
  std::vector<ColumnDesc> cols;
  cols.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    ColumnDesc col;
    POLARIS_RETURN_IF_ERROR(in->GetString(&col.name));
    uint8_t t;
    POLARIS_RETURN_IF_ERROR(in->GetU8(&t));
    if (t > static_cast<uint8_t>(ColumnType::kString)) {
      return common::Status::Corruption("bad column type tag");
    }
    col.type = static_cast<ColumnType>(t);
    cols.push_back(std::move(col));
  }
  return Schema(std::move(cols));
}

}  // namespace polaris::format
