#ifndef POLARIS_FORMAT_VALUE_H_
#define POLARIS_FORMAT_VALUE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "format/schema.h"

namespace polaris::format {

/// A single cell value. Small tagged union (not std::variant, to keep the
/// common int64/double path branch-light and the null flag explicit).
struct Value {
  ColumnType type = ColumnType::kInt64;
  bool is_null = false;
  int64_t i64 = 0;
  double f64 = 0.0;
  std::string str;

  static Value Int64(int64_t v) {
    Value out;
    out.type = ColumnType::kInt64;
    out.i64 = v;
    return out;
  }
  static Value Double(double v) {
    Value out;
    out.type = ColumnType::kDouble;
    out.f64 = v;
    return out;
  }
  static Value String(std::string v) {
    Value out;
    out.type = ColumnType::kString;
    out.str = std::move(v);
    return out;
  }
  static Value Null(ColumnType t) {
    Value out;
    out.type = t;
    out.is_null = true;
    return out;
  }

  /// Total ordering: null < non-null; within non-null, by value of the
  /// common type. Used by zone-map stats and ORDER BY.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  std::string ToString() const;
};

/// One table row.
using Row = std::vector<Value>;

}  // namespace polaris::format

#endif  // POLARIS_FORMAT_VALUE_H_
