#include "format/encoding.h"

#include <map>

namespace polaris::format {

using common::ByteReader;
using common::ByteWriter;
using common::Result;
using common::Status;

void ColumnStats::Observe(const Value& v) {
  if (v.is_null) {
    ++null_count;
    return;
  }
  if (!has_min_max) {
    min = v;
    max = v;
    has_min_max = true;
    return;
  }
  if (v.Compare(min) < 0) min = v;
  if (v.Compare(max) > 0) max = v;
}

void ColumnStats::Merge(const ColumnStats& other) {
  null_count += other.null_count;
  if (!other.has_min_max) return;
  Observe(other.min);
  Observe(other.max);
  // Observe() counted nothing extra: min/max are non-null by construction.
}

namespace {

void SerializeValuePayload(const Value& v, ByteWriter* out) {
  switch (v.type) {
    case ColumnType::kInt64:
      out->PutI64(v.i64);
      break;
    case ColumnType::kDouble:
      out->PutDouble(v.f64);
      break;
    case ColumnType::kString:
      out->PutString(v.str);
      break;
  }
}

Status DeserializeValuePayload(ByteReader* in, ColumnType type, Value* v) {
  v->type = type;
  v->is_null = false;
  switch (type) {
    case ColumnType::kInt64:
      return in->GetI64(&v->i64);
    case ColumnType::kDouble:
      return in->GetDouble(&v->f64);
    case ColumnType::kString:
      return in->GetString(&v->str);
  }
  return Status::Corruption("bad value type");
}

}  // namespace

void ColumnStats::Serialize(ByteWriter* out) const {
  out->PutU8(has_min_max ? 1 : 0);
  if (has_min_max) {
    SerializeValuePayload(min, out);
    SerializeValuePayload(max, out);
  }
  out->PutVarint(null_count);
}

Result<ColumnStats> ColumnStats::Deserialize(ByteReader* in,
                                             ColumnType type) {
  ColumnStats stats;
  uint8_t has;
  POLARIS_RETURN_IF_ERROR(in->GetU8(&has));
  stats.has_min_max = has != 0;
  if (stats.has_min_max) {
    POLARIS_RETURN_IF_ERROR(DeserializeValuePayload(in, type, &stats.min));
    POLARIS_RETURN_IF_ERROR(DeserializeValuePayload(in, type, &stats.max));
  }
  POLARIS_RETURN_IF_ERROR(in->GetVarint(&stats.null_count));
  return stats;
}

namespace {

void WriteValidity(const ColumnVector& column, ByteWriter* out) {
  const auto& valid = column.validity();
  out->PutVarint(valid.size());
  uint8_t byte = 0;
  int bit = 0;
  for (uint8_t v : valid) {
    if (v) byte |= static_cast<uint8_t>(1u << bit);
    if (++bit == 8) {
      out->PutU8(byte);
      byte = 0;
      bit = 0;
    }
  }
  if (bit != 0) out->PutU8(byte);
}

Status ReadValidity(ByteReader* in, uint64_t expected_rows,
                    std::vector<uint8_t>* valid) {
  uint64_t n;
  POLARIS_RETURN_IF_ERROR(in->GetVarint(&n));
  if (n != expected_rows) {
    return Status::Corruption("validity length mismatch");
  }
  valid->resize(n);
  uint8_t byte = 0;
  for (uint64_t i = 0; i < n; ++i) {
    if (i % 8 == 0) {
      POLARIS_RETURN_IF_ERROR(in->GetU8(&byte));
    }
    (*valid)[i] = (byte >> (i % 8)) & 1;
  }
  return Status::OK();
}

uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}

int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

/// Whether delta encoding would compress this int64 column: the values
/// are non-decreasing (sort-key clustering) with a non-trivial length.
bool DeltaProfitable(const ColumnVector& column) {
  const auto& ints = column.ints();
  if (ints.size() < 16) return false;
  for (size_t i = 1; i < ints.size(); ++i) {
    if (ints[i] < ints[i - 1]) return false;
  }
  return true;
}

/// Whether RLE would compress this int64 column: average run length >= 4.
bool RleProfitable(const ColumnVector& column) {
  const auto& ints = column.ints();
  if (ints.size() < 16) return false;
  size_t runs = 1;
  for (size_t i = 1; i < ints.size(); ++i) {
    if (ints[i] != ints[i - 1]) ++runs;
  }
  return ints.size() / runs >= 4;
}

/// Whether a dictionary would compress this string column: distinct count
/// at most 1/4 of values and at most 64k entries.
bool DictionaryProfitable(const ColumnVector& column) {
  const auto& strings = column.strings();
  if (strings.size() < 16) return false;
  std::map<std::string_view, uint32_t> dict;
  for (const auto& s : strings) {
    dict.emplace(s, 0);
    if (dict.size() > 65535) return false;
  }
  return dict.size() * 4 <= strings.size();
}

}  // namespace

Encoding EncodeColumn(const ColumnVector& column, ByteWriter* out) {
  WriteValidity(column, out);
  switch (column.type()) {
    case ColumnType::kInt64: {
      if (RleProfitable(column)) {
        const auto& ints = column.ints();
        size_t i = 0;
        while (i < ints.size()) {
          size_t j = i;
          while (j < ints.size() && ints[j] == ints[i]) ++j;
          out->PutVarint(j - i);
          out->PutI64(ints[i]);
          i = j;
        }
        return Encoding::kRle;
      }
      if (DeltaProfitable(column)) {
        const auto& ints = column.ints();
        out->PutI64(ints[0]);
        for (size_t i = 1; i < ints.size(); ++i) {
          out->PutVarint(ZigZagEncode(ints[i] - ints[i - 1]));
        }
        return Encoding::kDelta;
      }
      for (int64_t v : column.ints()) out->PutI64(v);
      return Encoding::kPlain;
    }
    case ColumnType::kDouble: {
      for (double v : column.doubles()) out->PutDouble(v);
      return Encoding::kPlain;
    }
    case ColumnType::kString: {
      if (DictionaryProfitable(column)) {
        std::map<std::string_view, uint32_t> dict;
        for (const auto& s : column.strings()) dict.emplace(s, 0);
        uint32_t next = 0;
        for (auto& [key, id] : dict) {
          (void)key;
          id = next++;
        }
        out->PutVarint(dict.size());
        for (const auto& [key, id] : dict) {
          (void)id;
          out->PutString(key);
        }
        for (const auto& s : column.strings()) {
          out->PutVarint(dict[s]);
        }
        return Encoding::kDictionary;
      }
      for (const auto& s : column.strings()) out->PutString(s);
      return Encoding::kPlain;
    }
  }
  return Encoding::kPlain;
}

Result<ColumnVector> DecodeColumn(ColumnType type, Encoding encoding,
                                  uint64_t num_rows, ByteReader* in) {
  std::vector<uint8_t> valid;
  POLARIS_RETURN_IF_ERROR(ReadValidity(in, num_rows, &valid));
  ColumnVector out(type);
  switch (type) {
    case ColumnType::kInt64: {
      if (encoding == Encoding::kRle) {
        uint64_t decoded = 0;
        while (decoded < num_rows) {
          uint64_t run;
          int64_t value;
          POLARIS_RETURN_IF_ERROR(in->GetVarint(&run));
          POLARIS_RETURN_IF_ERROR(in->GetI64(&value));
          if (run == 0 || decoded + run > num_rows) {
            return Status::Corruption("bad RLE run");
          }
          for (uint64_t i = 0; i < run; ++i) out.AppendInt64(value);
          decoded += run;
        }
      } else if (encoding == Encoding::kDelta) {
        if (num_rows > 0) {
          int64_t value;
          POLARIS_RETURN_IF_ERROR(in->GetI64(&value));
          out.AppendInt64(value);
          for (uint64_t i = 1; i < num_rows; ++i) {
            uint64_t delta;
            POLARIS_RETURN_IF_ERROR(in->GetVarint(&delta));
            value += ZigZagDecode(delta);
            out.AppendInt64(value);
          }
        }
      } else if (encoding == Encoding::kPlain) {
        for (uint64_t i = 0; i < num_rows; ++i) {
          int64_t v;
          POLARIS_RETURN_IF_ERROR(in->GetI64(&v));
          out.AppendInt64(v);
        }
      } else {
        return Status::Corruption("bad encoding for int64");
      }
      break;
    }
    case ColumnType::kDouble: {
      if (encoding != Encoding::kPlain) {
        return Status::Corruption("bad encoding for double");
      }
      for (uint64_t i = 0; i < num_rows; ++i) {
        double v;
        POLARIS_RETURN_IF_ERROR(in->GetDouble(&v));
        out.AppendDouble(v);
      }
      break;
    }
    case ColumnType::kString: {
      if (encoding == Encoding::kDictionary) {
        uint64_t dict_size;
        POLARIS_RETURN_IF_ERROR(in->GetVarint(&dict_size));
        std::vector<std::string> dict(dict_size);
        for (uint64_t i = 0; i < dict_size; ++i) {
          POLARIS_RETURN_IF_ERROR(in->GetString(&dict[i]));
        }
        for (uint64_t i = 0; i < num_rows; ++i) {
          uint64_t idx;
          POLARIS_RETURN_IF_ERROR(in->GetVarint(&idx));
          if (idx >= dict_size) {
            return Status::Corruption("dictionary index out of range");
          }
          out.AppendString(dict[idx]);
        }
      } else if (encoding == Encoding::kPlain) {
        for (uint64_t i = 0; i < num_rows; ++i) {
          std::string s;
          POLARIS_RETURN_IF_ERROR(in->GetString(&s));
          out.AppendString(std::move(s));
        }
      } else {
        return Status::Corruption("bad encoding for string");
      }
      break;
    }
  }
  // Apply validity: rebuild with nulls. Values for null slots were encoded
  // as defaults; patch the validity array directly.
  ColumnVector patched(type);
  for (uint64_t i = 0; i < num_rows; ++i) {
    if (valid[i]) {
      patched.AppendValue(out.ValueAt(i));
    } else {
      patched.AppendNull();
    }
  }
  return patched;
}

}  // namespace polaris::format
