#include "format/column.h"

namespace polaris::format {

using common::Status;

void ColumnVector::AppendInt64(int64_t v) {
  ints_.push_back(v);
  valid_.push_back(1);
}

void ColumnVector::AppendDouble(double v) {
  doubles_.push_back(v);
  valid_.push_back(1);
}

void ColumnVector::AppendString(std::string v) {
  strings_.push_back(std::move(v));
  valid_.push_back(1);
}

void ColumnVector::AppendNull() {
  switch (type_) {
    case ColumnType::kInt64:
      ints_.push_back(0);
      break;
    case ColumnType::kDouble:
      doubles_.push_back(0.0);
      break;
    case ColumnType::kString:
      strings_.emplace_back();
      break;
  }
  valid_.push_back(0);
}

void ColumnVector::AppendValue(const Value& v) {
  if (v.is_null) {
    AppendNull();
    return;
  }
  switch (type_) {
    case ColumnType::kInt64:
      AppendInt64(v.i64);
      break;
    case ColumnType::kDouble:
      AppendDouble(v.f64);
      break;
    case ColumnType::kString:
      AppendString(v.str);
      break;
  }
}

Value ColumnVector::ValueAt(size_t row) const {
  if (!valid_[row]) return Value::Null(type_);
  switch (type_) {
    case ColumnType::kInt64:
      return Value::Int64(ints_[row]);
    case ColumnType::kDouble:
      return Value::Double(doubles_[row]);
    case ColumnType::kString:
      return Value::String(strings_[row]);
  }
  return Value::Null(type_);
}

size_t ColumnVector::null_count() const {
  size_t n = 0;
  for (uint8_t v : valid_) {
    if (!v) ++n;
  }
  return n;
}

RecordBatch::RecordBatch(Schema schema) : schema_(std::move(schema)) {
  columns_.reserve(schema_.num_columns());
  for (size_t i = 0; i < schema_.num_columns(); ++i) {
    columns_.emplace_back(schema_.column(i).type);
  }
}

Status RecordBatch::AppendRow(const Row& row) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != schema arity " +
        std::to_string(columns_.size()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (!row[i].is_null && row[i].type != schema_.column(i).type) {
      return Status::InvalidArgument("type mismatch in column " +
                                     schema_.column(i).name);
    }
    columns_[i].AppendValue(row[i]);
  }
  return Status::OK();
}

Row RecordBatch::GetRow(size_t i) const {
  Row row;
  row.reserve(columns_.size());
  for (const auto& col : columns_) {
    row.push_back(col.ValueAt(i));
  }
  return row;
}

Status RecordBatch::Append(const RecordBatch& other) {
  if (!(other.schema_ == schema_)) {
    return Status::InvalidArgument("schema mismatch in RecordBatch::Append");
  }
  for (size_t i = 0; i < other.num_rows(); ++i) {
    POLARIS_RETURN_IF_ERROR(AppendRow(other.GetRow(i)));
  }
  return Status::OK();
}

}  // namespace polaris::format
