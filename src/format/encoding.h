#ifndef POLARIS_FORMAT_ENCODING_H_
#define POLARIS_FORMAT_ENCODING_H_

#include <cstdint>

#include "common/bytes.h"
#include "common/result.h"
#include "format/column.h"

namespace polaris::format {

/// Column chunk encodings. The writer picks the cheapest applicable
/// encoding per chunk (RLE for low-cardinality int64 runs, dictionary for
/// repetitive strings, plain otherwise) — the same space/scan trade-offs
/// real Parquet makes.
enum class Encoding : uint8_t {
  kPlain = 0,
  kRle = 1,         // int64 only: (varint run_length, fixed64 value)*
  kDictionary = 2,  // string only: dict then varint indices
  /// int64 only: first value fixed64, then zig-zag varint deltas. Chosen
  /// for monotone chunks — which is exactly what a table sort key (§2.3)
  /// produces — where small deltas compress far below 8 bytes/value.
  kDelta = 3,
};

/// Zone-map statistics for one column chunk: min/max (over non-null values)
/// and null count. Used for predicate pushdown (skipping row groups) and by
/// the compaction heuristics.
struct ColumnStats {
  bool has_min_max = false;
  Value min;
  Value max;
  uint64_t null_count = 0;

  void Merge(const ColumnStats& other);
  void Observe(const Value& v);

  void Serialize(common::ByteWriter* out) const;
  static common::Result<ColumnStats> Deserialize(common::ByteReader* in,
                                                 ColumnType type);
};

/// Encodes `column` into `out`, choosing an encoding. Returns the encoding
/// used. The layout is: validity bitmap (packed), then encoded values for
/// the non-null positions.
Encoding EncodeColumn(const ColumnVector& column, common::ByteWriter* out);

/// Decodes a column chunk of `num_rows` rows produced by EncodeColumn.
common::Result<ColumnVector> DecodeColumn(ColumnType type, Encoding encoding,
                                          uint64_t num_rows,
                                          common::ByteReader* in);

}  // namespace polaris::format

#endif  // POLARIS_FORMAT_ENCODING_H_
