#include "format/file_reader.h"

#include <cstring>

namespace polaris::format {

using common::ByteReader;
using common::Result;
using common::Status;

Result<FileReader> FileReader::Open(std::string data) {
  FileReader reader;
  reader.data_ = std::move(data);
  const std::string& bytes = reader.data_;

  if (bytes.size() < 8) return Status::Corruption("file too small");
  if (std::memcmp(bytes.data() + bytes.size() - 4, FileWriter::kMagic, 4) !=
      0) {
    return Status::Corruption("bad magic");
  }
  uint32_t footer_size;
  std::memcpy(&footer_size, bytes.data() + bytes.size() - 8,
              sizeof(footer_size));
  if (footer_size + 8ull > bytes.size()) {
    return Status::Corruption("footer size out of range");
  }
  size_t footer_start = bytes.size() - 8 - footer_size;
  ByteReader footer(
      std::string_view(bytes.data() + footer_start, footer_size));

  POLARIS_ASSIGN_OR_RETURN(reader.schema_, Schema::Deserialize(&footer));
  uint64_t num_groups;
  POLARIS_RETURN_IF_ERROR(footer.GetVarint(&num_groups));
  for (uint64_t g = 0; g < num_groups; ++g) {
    RowGroupMeta group;
    POLARIS_RETURN_IF_ERROR(footer.GetVarint(&group.num_rows));
    uint64_t num_cols;
    POLARIS_RETURN_IF_ERROR(footer.GetVarint(&num_cols));
    if (num_cols != reader.schema_.num_columns()) {
      return Status::Corruption("column count mismatch in row group");
    }
    for (uint64_t c = 0; c < num_cols; ++c) {
      ColumnChunkMeta chunk;
      POLARIS_RETURN_IF_ERROR(footer.GetU64(&chunk.offset));
      POLARIS_RETURN_IF_ERROR(footer.GetU64(&chunk.size));
      uint8_t enc;
      POLARIS_RETURN_IF_ERROR(footer.GetU8(&enc));
      if (enc > static_cast<uint8_t>(Encoding::kDelta)) {
        return Status::Corruption("bad encoding tag");
      }
      chunk.encoding = static_cast<Encoding>(enc);
      POLARIS_ASSIGN_OR_RETURN(
          chunk.stats,
          ColumnStats::Deserialize(&footer,
                                   reader.schema_.column(c).type));
      if (chunk.offset + chunk.size > footer_start) {
        return Status::Corruption("chunk extends past body");
      }
      group.columns.push_back(std::move(chunk));
    }
    reader.row_groups_.push_back(std::move(group));
  }
  return reader;
}

uint64_t FileReader::num_rows() const {
  uint64_t total = 0;
  for (const auto& group : row_groups_) total += group.num_rows;
  return total;
}

Result<RecordBatch> FileReader::ReadRowGroup(
    size_t group, const std::vector<int>& projection) const {
  if (group >= row_groups_.size()) {
    return Status::InvalidArgument("row group out of range");
  }
  std::vector<int> cols = projection;
  if (cols.empty()) {
    for (size_t i = 0; i < schema_.num_columns(); ++i) {
      cols.push_back(static_cast<int>(i));
    }
  }
  std::vector<ColumnDesc> descs;
  for (int c : cols) {
    if (c < 0 || static_cast<size_t>(c) >= schema_.num_columns()) {
      return Status::InvalidArgument("projected column out of range");
    }
    descs.push_back(schema_.column(c));
  }

  const RowGroupMeta& meta = row_groups_[group];
  RecordBatch batch{Schema(descs)};
  for (size_t out_idx = 0; out_idx < cols.size(); ++out_idx) {
    const ColumnChunkMeta& chunk = meta.columns[cols[out_idx]];
    ByteReader in(std::string_view(data_.data() + chunk.offset, chunk.size));
    POLARIS_ASSIGN_OR_RETURN(
        ColumnVector col,
        DecodeColumn(descs[out_idx].type, chunk.encoding, meta.num_rows,
                     &in));
    batch.column(out_idx) = std::move(col);
  }
  return batch;
}

Result<RecordBatch> FileReader::ReadAll(
    const std::vector<int>& projection) const {
  RecordBatch all;
  bool first = true;
  for (size_t g = 0; g < row_groups_.size(); ++g) {
    POLARIS_ASSIGN_OR_RETURN(RecordBatch batch, ReadRowGroup(g, projection));
    if (first) {
      all = std::move(batch);
      first = false;
    } else {
      POLARIS_RETURN_IF_ERROR(all.Append(batch));
    }
  }
  if (first) {
    // Zero row groups: still return an empty batch with the right schema.
    std::vector<ColumnDesc> descs;
    if (projection.empty()) {
      descs = schema_.columns();
    } else {
      for (int c : projection) descs.push_back(schema_.column(c));
    }
    all = RecordBatch{Schema(descs)};
  }
  return all;
}

bool FileReader::CanSkipRowGroup(size_t group, int column, const Value* low,
                                 const Value* high) const {
  if (group >= row_groups_.size()) return false;
  if (column < 0 || static_cast<size_t>(column) >= schema_.num_columns()) {
    return false;
  }
  const ColumnStats& stats = row_groups_[group].columns[column].stats;
  if (!stats.has_min_max) return false;  // all-null or empty: can't prove
  if (low != nullptr && stats.max.Compare(*low) < 0) return true;
  if (high != nullptr && stats.min.Compare(*high) > 0) return true;
  return false;
}

}  // namespace polaris::format
