#include "txn/transaction_manager.h"

#include "common/crashpoint.h"
#include "common/guid.h"
#include "common/logging.h"
#include "common/trace_context.h"
#include "lst/manifest_io.h"
#include "obs/tracer.h"
#include "storage/path_util.h"

namespace polaris::txn {

using catalog::IsolationMode;
using common::Result;
using common::Status;

namespace {
const char* IsolationName(IsolationMode mode) {
  return mode == IsolationMode::kReadCommittedSnapshot
             ? "read_committed_snapshot"
             : "snapshot";
}
}  // namespace

TransactionManager::TransactionManager(catalog::CatalogDb* catalog,
                                       storage::ObjectStore* store,
                                       lst::SnapshotBuilder* builder,
                                       common::Clock* clock,
                                       TransactionManagerOptions options)
    : catalog_(catalog),
      store_(store),
      builder_(builder),
      clock_(clock),
      options_(options) {}

Result<std::unique_ptr<Transaction>> TransactionManager::Begin(
    IsolationMode mode) {
  obs::Span span("txn.begin");
  auto txn = std::unique_ptr<Transaction>(new Transaction());
  txn->catalog_txn_ = catalog_->Begin(mode);
  txn->begin_time_ = clock_->Now();
  // Admission-style commit priority: a statement running under a bounded
  // deadline is latency-sensitive, so it sequences ahead of deadline-less
  // (background/bulk) work when committers queue at the commit gate.
  txn->catalog_txn_->set_priority(common::CurrentDeadline().bounded()
                                      ? catalog::CommitPriority::kHigh
                                      : catalog::CommitPriority::kNormal);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ActiveTxn& entry = active_[txn->id()];
    entry.begin_time = txn->begin_time_;
    entry.begin_seq = txn->catalog_txn_->begin_seq();
    entry.mode = mode;
    txn->cancel_token_ = entry.cancel.token();
  }
  if (span.active()) span.AddAttr("txn_id", txn->id());
  // Stamp the transaction id into the ambient trace context so every span
  // (and log line) opened while this transaction runs carries it. The
  // enclosing statement/engine span restores the previous context on exit.
  // The KILL token joins the ambient deadline for the same reason: every
  // cancellation point downstream of Begin observes it.
  common::MutableCurrentTraceContext().txn_id = txn->id();
  common::MutableCurrentTraceContext().deadline.set_token(
      txn->cancel_token_);
  return txn;
}

void TransactionManager::RecordFinished(Transaction* txn,
                                        const std::string& state,
                                        const std::string& cause) {
  TxnHistoryRecord record;
  record.txn_id = txn->id();
  record.end_time = clock_->Now();
  record.state = state;
  record.cause = cause;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = active_.find(txn->id());
    if (it != active_.end()) {
      record.isolation = IsolationName(it->second.mode);
      record.begin_time = it->second.begin_time;
      record.tables_touched = it->second.tables.size();
      active_.erase(it);
    }
    history_.push_back(record);
    while (history_.size() > options_.history_capacity) history_.pop_front();
  }
  if (events_ != nullptr) {
    obs::EventLevel level = state == "conflict" ? obs::EventLevel::kWarn
                                                : obs::EventLevel::kInfo;
    events_->Emit(
        level, "txn", "txn." + state,
        {{"txn_id", std::to_string(record.txn_id)},
         {"isolation", record.isolation},
         {"tables", std::to_string(record.tables_touched)},
         {"latency_us", std::to_string(record.end_time - record.begin_time)}},
        cause);
  }
}

Result<lst::TableSnapshot> TransactionManager::BuildCommittedSnapshot(
    Transaction* txn, int64_t table_id) {
  POLARIS_ASSIGN_OR_RETURN(
      auto records, catalog_->GetManifests(txn->catalog_txn(), table_id));
  std::vector<lst::ManifestRef> refs;
  refs.reserve(records.size());
  for (const auto& record : records) {
    refs.push_back({record.sequence_id, record.path});
  }
  std::optional<lst::CheckpointRef> checkpoint;
  if (!refs.empty()) {
    POLARIS_ASSIGN_OR_RETURN(
        auto ckpt_record,
        catalog_->GetLatestCheckpoint(txn->catalog_txn(), table_id,
                                      refs.back().sequence_id));
    if (ckpt_record.has_value()) {
      checkpoint = lst::CheckpointRef{ckpt_record->sequence_id,
                                      ckpt_record->path};
    }
  }
  return builder_->Build(refs, checkpoint);
}

Result<lst::TableSnapshot> TransactionManager::GetSnapshot(
    Transaction* txn, int64_t table_id) {
  if (txn->finished_) {
    return Status::FailedPrecondition("transaction already finished");
  }
  auto it = txn->tables_.find(table_id);
  if (it == txn->tables_.end()) {
    POLARIS_ASSIGN_OR_RETURN(lst::TableSnapshot committed,
                             BuildCommittedSnapshot(txn, table_id));
    Transaction::TableState state;
    state.table_id = table_id;
    state.base = committed;
    state.current = std::move(committed);
    it = txn->tables_.emplace(table_id, std::move(state)).first;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto active_it = active_.find(txn->id());
      if (active_it != active_.end()) {
        active_it->second.tables.insert(table_id);
      }
    }
    return it->second.current;
  }
  Transaction::TableState& state = it->second;
  if (txn->mode() == IsolationMode::kReadCommittedSnapshot) {
    // RCSI: refresh the committed part to the latest commit, then re-apply
    // this transaction's own changes on top.
    std::vector<lst::ManifestEntry> own =
        lst::DiffSnapshots(state.base, state.current);
    POLARIS_ASSIGN_OR_RETURN(lst::TableSnapshot fresh,
                             BuildCommittedSnapshot(txn, table_id));
    lst::TableSnapshot overlaid = fresh;
    Status applied = overlaid.Apply(own, clock_->Now());
    if (!applied.ok()) {
      // A concurrent commit invalidated our private changes (e.g. the file
      // we deleted from was compacted away). Surface as a conflict.
      return Status::Conflict("RCSI refresh conflicts with own writes: " +
                              applied.message());
    }
    state.base = std::move(fresh);
    state.current = std::move(overlaid);
  }
  return state.current;
}

Result<lst::TableSnapshot> TransactionManager::GetSnapshotAsOf(
    Transaction* txn, int64_t table_id, common::Micros as_of) {
  if (txn->finished_) {
    return Status::FailedPrecondition("transaction already finished");
  }
  POLARIS_ASSIGN_OR_RETURN(
      auto records,
      catalog_->GetManifestsAsOf(txn->catalog_txn(), table_id, as_of));
  std::vector<lst::ManifestRef> refs;
  refs.reserve(records.size());
  for (const auto& record : records) {
    refs.push_back({record.sequence_id, record.path});
  }
  // Checkpoints compact manifest state and may span beyond `as_of`; only a
  // checkpoint at or below the last visible sequence is usable.
  std::optional<lst::CheckpointRef> checkpoint;
  if (!refs.empty()) {
    POLARIS_ASSIGN_OR_RETURN(
        auto ckpt_record,
        catalog_->GetLatestCheckpoint(txn->catalog_txn(), table_id,
                                      refs.back().sequence_id));
    if (ckpt_record.has_value()) {
      checkpoint = lst::CheckpointRef{ckpt_record->sequence_id,
                                      ckpt_record->path};
    }
  }
  return builder_->Build(refs, checkpoint);
}

Result<std::string> TransactionManager::PrepareWrite(Transaction* txn,
                                                     int64_t table_id) {
  if (txn->finished_) {
    return Status::FailedPrecondition("transaction already finished");
  }
  // Materialize the table state (snapshot capture) if not present.
  POLARIS_RETURN_IF_ERROR(GetSnapshot(txn, table_id).status());
  Transaction::TableState& state = txn->tables_.at(table_id);
  if (state.manifest_path.empty()) {
    state.manifest_path = storage::PathUtil::ManifestPath(
        table_id, common::Guid::Generate().ToString());
  }
  return state.manifest_path;
}

Status TransactionManager::FinishInsertStatement(
    Transaction* txn, int64_t table_id, const exec::WriteResult& result) {
  auto it = txn->tables_.find(table_id);
  if (it == txn->tables_.end() || it->second.manifest_path.empty()) {
    return Status::FailedPrecondition("PrepareWrite was not called");
  }
  Transaction::TableState& state = it->second;
  // Append the statement's blocks to the transaction manifest so later
  // statements in this transaction can read them (§3.2.3).
  lst::ManifestCommitter committer(store_);
  POLARIS_RETURN_IF_ERROR(
      committer.CommitAppend(state.manifest_path, result.block_ids));
  POLARIS_RETURN_IF_ERROR(state.current.Apply(result.entries, clock_->Now()));
  state.dirty = true;
  return Status::OK();
}

Status TransactionManager::FinishMutationStatement(
    Transaction* txn, int64_t table_id, const exec::WriteResult& result) {
  auto it = txn->tables_.find(table_id);
  if (it == txn->tables_.end() || it->second.manifest_path.empty()) {
    return Status::FailedPrecondition("PrepareWrite was not called");
  }
  Transaction::TableState& state = it->second;
  POLARIS_RETURN_IF_ERROR(state.current.Apply(result.entries, clock_->Now()));
  // Prune intra-transaction files whose rows this statement fully deleted:
  // they are "parts from the first update that were made obsolete by the
  // second update" (§3.2.3) and must not survive into the final manifest.
  // Their blobs become unreferenced and are garbage collected.
  {
    std::vector<std::string> obsolete;
    for (const auto& [path, file_state] : state.current.files()) {
      if (state.base.files().count(path) != 0) continue;  // committed file
      if (file_state.info.row_count > 0 &&
          file_state.deleted_count == file_state.info.row_count) {
        obsolete.push_back(path);
      }
    }
    for (const auto& path : obsolete) state.current.DropFile(path);
  }
  // Reconcile: the canonical entries are the diff between the committed
  // base and the transaction's current state — parts of earlier statements
  // made obsolete by this one vanish (§3.2.3).
  std::vector<lst::ManifestEntry> canonical =
      lst::DiffSnapshots(state.base, state.current);
  lst::ManifestCommitter committer(store_);
  POLARIS_RETURN_IF_ERROR(
      committer.CommitRewrite(state.manifest_path, canonical).status());
  state.dirty = true;
  state.has_mutation = true;
  state.touched_files.insert(result.touched_files.begin(),
                             result.touched_files.end());
  return Status::OK();
}

Status TransactionManager::Commit(Transaction* txn) {
  if (txn->finished_) {
    return Status::FailedPrecondition("transaction already finished");
  }
  {
    // A statement whose budget is already burned (or that was killed) must
    // not start the validation phase; abort instead so the catalog
    // transaction's intent locks are released and only discardable
    // uncommitted blocks remain.
    Status budget = common::CheckCurrentDeadline("txn.commit");
    if (!budget.ok()) {
      (void)Abort(txn);
      return budget;
    }
  }
  obs::Span span("txn.commit");
  if (span.active()) {
    span.AddAttr("txn_id", txn->id());
    uint64_t dirty = 0;
    for (const auto& [table_id, state] : txn->tables_) {
      (void)table_id;
      if (state.dirty) ++dirty;
    }
    span.AddAttr("dirty_tables", dirty);
  }
  // FE manifest compaction (§3 footnote 3): collapse a fragmented
  // transaction manifest into its canonical single block before commit.
  if (options_.compact_manifest_blocks_above > 0) {
    for (auto& [table_id, state] : txn->tables_) {
      (void)table_id;
      if (!state.dirty) continue;
      auto blocks = store_->GetCommittedBlockList(state.manifest_path);
      if (!blocks.ok() ||
          blocks->size() <= options_.compact_manifest_blocks_above) {
        continue;
      }
      lst::ManifestCommitter committer(store_);
      Status st = committer
                      .CommitRewrite(state.manifest_path,
                                     lst::DiffSnapshots(state.base,
                                                        state.current))
                      .status();
      if (!st.ok()) {
        (void)Abort(txn);
        return st;
      }
    }
  }

  // Validation phase (§4.1.2).
  // Step 1: upsert WriteSets for every table with updates/deletes.
  std::vector<catalog::PendingManifest> pending;
  for (auto& [table_id, state] : txn->tables_) {
    if (!state.dirty) continue;
    pending.push_back({table_id, state.manifest_path});
    if (!state.has_mutation) continue;
    if (options_.granularity == catalog::ConflictGranularity::kTable) {
      Status st = catalog_->UpsertWriteSet(txn->catalog_txn(), table_id);
      if (!st.ok()) {
        (void)Abort(txn);  // best effort; report the original error
        return st;
      }
    } else {
      for (const auto& file : state.touched_files) {
        Status st = catalog_->UpsertWriteSetForFile(txn->catalog_txn(),
                                                    table_id, file);
        if (!st.ok()) {
          (void)Abort(txn);
          return st;
        }
      }
    }
  }
  // WriteSets are durable (journaled with the catalog commit below), but
  // a crash here leaves only uncommitted MVCC buffers — nothing visible.
  POLARIS_CRASH_POINT(common::crash::kCommitAfterWriteSets);
  // Steps 2-4: commit lock, Manifests inserts with sequence assignment,
  // and the SQL commit — all inside CatalogDb::Commit. A Conflict here is
  // the SI first-committer-wins rejection.
  Status st = catalog_->Commit(txn->catalog_txn(), pending);
  txn->finished_ = true;
  if (st.ok()) {
    RecordFinished(txn, "committed", "");
  } else {
    RecordFinished(txn, st.IsConflict() ? "conflict" : "aborted",
                   st.ToString());
    if (span.active()) span.AddAttr("error", st.ToString());
    POLARIS_LOG(kInfo, "txn") << "transaction " << txn->id()
                              << " failed validation: " << st.ToString();
  }
  return st;
}

Status TransactionManager::Abort(Transaction* txn) {
  if (txn->finished_) {
    return Status::FailedPrecondition("transaction already finished");
  }
  obs::Span span("txn.abort");
  if (span.active()) span.AddAttr("txn_id", txn->id());
  catalog_->Abort(txn->catalog_txn());
  txn->finished_ = true;
  RecordFinished(txn, "aborted", "");
  // Data files, DV blobs and the manifest blob written by this transaction
  // remain in the store unreferenced; GC removes them once they are older
  // than every active transaction (§5.3).
  return Status::OK();
}

Status TransactionManager::Kill(uint64_t txn_id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = active_.find(txn_id);
    if (it == active_.end()) {
      return Status::NotFound("no active transaction " +
                              std::to_string(txn_id));
    }
    it->second.cancel.Cancel("killed by operator (KILL " +
                             std::to_string(txn_id) + ")");
  }
  if (events_ != nullptr) {
    events_->Emit(obs::EventLevel::kWarn, "txn", "txn.kill_requested",
                  {{"txn_id", std::to_string(txn_id)}});
  }
  POLARIS_LOG(kInfo, "txn") << "KILL requested for transaction " << txn_id;
  return Status::OK();
}

common::Micros TransactionManager::MinActiveBeginTime() const {
  std::lock_guard<std::mutex> lock(mu_);
  common::Micros min_time = clock_->Now();
  for (const auto& [id, info] : active_) {
    (void)id;
    if (info.begin_time < min_time) min_time = info.begin_time;
  }
  return min_time;
}

uint64_t TransactionManager::MinActiveBeginSeq() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t min_seq = catalog_->LatestCommitSeq();
  for (const auto& [id, info] : active_) {
    (void)id;
    if (info.begin_seq < min_seq) min_seq = info.begin_seq;
  }
  return min_seq;
}

uint64_t TransactionManager::active_transactions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_.size();
}

std::vector<ActiveTxnInfo> TransactionManager::ActiveTransactionInfos() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ActiveTxnInfo> out;
  out.reserve(active_.size());
  for (const auto& [id, entry] : active_) {
    ActiveTxnInfo info;
    info.txn_id = id;
    info.isolation = IsolationName(entry.mode);
    info.begin_time = entry.begin_time;
    info.begin_seq = entry.begin_seq;
    info.tables.assign(entry.tables.begin(), entry.tables.end());
    info.cancel_requested = entry.cancel.cancelled();
    out.push_back(std::move(info));
  }
  return out;
}

std::vector<TxnHistoryRecord> TransactionManager::RecentTransactionHistory()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return {history_.begin(), history_.end()};
}

}  // namespace polaris::txn
