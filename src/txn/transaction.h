#ifndef POLARIS_TXN_TRANSACTION_H_
#define POLARIS_TXN_TRANSACTION_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "catalog/mvcc.h"
#include "common/clock.h"
#include "common/deadline.h"
#include "lst/table_snapshot.h"

namespace polaris::txn {

/// A Polaris user transaction (paper §3): a SQL DB root transaction at the
/// FE plus, per modified table, a private transaction manifest that
/// accumulates the transaction's changes. All state lives here and in the
/// object store — never on compute nodes — so the transaction survives any
/// topology change.
///
/// Created by TransactionManager::Begin; driven via the manager. Not
/// thread-safe (one session per transaction, like a SQL connection).
class Transaction {
 public:
  uint64_t id() const { return catalog_txn_->id(); }
  catalog::IsolationMode mode() const { return catalog_txn_->mode(); }
  common::Micros begin_time() const { return begin_time_; }
  bool finished() const { return finished_; }
  /// The catalog sequence this transaction committed at (0 until a
  /// successful commit). Feed it to a replica's `SET WAIT FOR COMMIT`
  /// or PolarisEngine::MinReadWatermark for read-your-writes.
  uint64_t commit_seq() const { return catalog_txn_->commit_seq(); }

  /// The underlying catalog transaction; the engine uses it for DDL and
  /// catalog reads so that logical metadata obeys the same isolation.
  catalog::MvccTransaction* catalog_txn() { return catalog_txn_.get(); }

  /// Flips when an operator issues `KILL <txn_id>`. Sessions attach this
  /// token to the statement deadline they install, making every
  /// cooperative cancellation point on the statement's path observe it.
  const common::CancelToken& cancel_token() const { return cancel_token_; }

  /// Tables this transaction has written (for post-commit notifications).
  std::vector<int64_t> dirty_tables() const {
    std::vector<int64_t> out;
    for (const auto& [table_id, state] : tables_) {
      if (state.dirty) out.push_back(table_id);
    }
    return out;
  }

 private:
  friend class TransactionManager;

  /// Per-table private state: the committed base snapshot this transaction
  /// read, the current overlay including its own writes, and the
  /// transaction manifest blob those writes are staged into.
  struct TableState {
    int64_t table_id = 0;
    std::string manifest_path;
    lst::TableSnapshot base;
    lst::TableSnapshot current;
    bool dirty = false;
    /// True when the statement mix includes update/delete — such tables
    /// get a WriteSets upsert at commit (§4.1.2 step 1).
    bool has_mutation = false;
    /// Data files whose DVs this transaction changed, for file-granularity
    /// conflict detection (§4.4.1).
    std::set<std::string> touched_files;
  };

  std::unique_ptr<catalog::MvccTransaction> catalog_txn_;
  common::Micros begin_time_ = 0;
  bool finished_ = false;
  common::CancelToken cancel_token_;
  std::map<int64_t, TableState> tables_;
};

}  // namespace polaris::txn

#endif  // POLARIS_TXN_TRANSACTION_H_
