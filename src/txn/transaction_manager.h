#ifndef POLARIS_TXN_TRANSACTION_MANAGER_H_
#define POLARIS_TXN_TRANSACTION_MANAGER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "catalog/catalog_db.h"
#include "common/deadline.h"
#include "common/result.h"
#include "exec/dml.h"
#include "lst/snapshot_builder.h"
#include "obs/event_log.h"
#include "storage/object_store.h"
#include "txn/transaction.h"

namespace polaris::txn {

/// Configuration for the transaction manager.
struct TransactionManagerOptions {
  /// Conflict-detection granularity (paper §4.4.1). Table granularity is
  /// the paper's default presentation; data-file granularity admits more
  /// concurrency.
  catalog::ConflictGranularity granularity =
      catalog::ConflictGranularity::kTable;
  /// At commit, a transaction manifest with more committed blocks than
  /// this is compacted into one canonical block before its row enters the
  /// Manifests table (paper §3, footnote 3: "the SQL FE also compacts and
  /// rewrites the aggregated blocks in the transaction manifest file").
  /// Keeps long multi-statement insert transactions from leaving
  /// fragmented manifests behind. 0 disables.
  uint64_t compact_manifest_blocks_above = 8;
  /// Finished transactions retained for sys.dm_tran_history.
  size_t history_capacity = 256;
};

/// Live view of one in-flight transaction (backs sys.dm_tran_active).
struct ActiveTxnInfo {
  uint64_t txn_id = 0;
  std::string isolation;  // "snapshot" | "read_committed_snapshot"
  common::Micros begin_time = 0;
  uint64_t begin_seq = 0;
  /// Tables whose snapshot this transaction has captured (reads + writes).
  std::vector<int64_t> tables;
  /// True once a KILL was issued for this transaction.
  bool cancel_requested = false;
};

/// One finished transaction in the bounded history ring (backs
/// sys.dm_tran_history).
struct TxnHistoryRecord {
  uint64_t txn_id = 0;
  std::string isolation;
  common::Micros begin_time = 0;
  common::Micros end_time = 0;
  /// "committed", "conflict" or "aborted".
  std::string state;
  /// Conflict cause / commit error detail; empty on success.
  std::string cause;
  uint64_t tables_touched = 0;
};

/// The FE-side transaction manager — the paper's core contribution (§4):
/// optimistic MVCC with Snapshot Isolation over log-structured tables.
///
/// Life cycle of a write transaction:
///  1. Begin        — opens the catalog transaction; captures the snapshot.
///  2. Read phase   — statements read through GetSnapshot (committed
///    manifests + own transaction manifest) and write through the DML
///    executors; the manager finalizes each statement by committing the
///    staged blocks into the transaction manifest (append for inserts,
///    reconciling rewrite for updates/deletes, §3.2.3).
///  3. Validation   — Commit upserts WriteSets for mutated tables, inserts
///    Manifests rows, and commits the catalog transaction; SI on WriteSets
///    makes the second of two conflicting writers fail (§4.1.2).
///
/// Aborted transactions simply leave their files behind; the garbage
/// collector reclaims them (§5.3).
///
/// Thread-safe across transactions; each Transaction is single-session.
class TransactionManager {
 public:
  TransactionManager(catalog::CatalogDb* catalog,
                     storage::ObjectStore* store,
                     lst::SnapshotBuilder* builder,
                     common::Clock* clock,
                     TransactionManagerOptions options = {});

  /// Starts a user transaction at the given isolation level (§4.4.2).
  common::Result<std::unique_ptr<Transaction>> Begin(
      catalog::IsolationMode mode = catalog::IsolationMode::kSnapshot);

  /// Snapshot of `table_id` visible to `txn`: the committed state at the
  /// transaction's snapshot (via Manifests + newest usable checkpoint)
  /// overlaid with the transaction's own writes. Under RCSI the committed
  /// part is refreshed to the latest commit on every call.
  common::Result<lst::TableSnapshot> GetSnapshot(Transaction* txn,
                                                 int64_t table_id);

  /// Read-only snapshot as of an earlier time (Query-As-Of, §6.1).
  /// Ignores the transaction's own uncommitted writes.
  common::Result<lst::TableSnapshot> GetSnapshotAsOf(Transaction* txn,
                                                     int64_t table_id,
                                                     common::Micros as_of);

  /// Ensures per-table write state exists and returns the transaction
  /// manifest path DML tasks stage blocks against.
  common::Result<std::string> PrepareWrite(Transaction* txn,
                                           int64_t table_id);

  /// FE finalization of an INSERT statement: appends the statement's
  /// blocks to the transaction manifest and overlays the new files on the
  /// transaction's snapshot (§3.2.3 "Insert operations").
  common::Status FinishInsertStatement(Transaction* txn, int64_t table_id,
                                       const exec::WriteResult& result);

  /// FE finalization of an UPDATE/DELETE statement: overlays the changes,
  /// then rewrites the transaction manifest to its reconciled canonical
  /// form (§3.2.3 "Update and delete operations").
  common::Status FinishMutationStatement(Transaction* txn, int64_t table_id,
                                         const exec::WriteResult& result);

  /// Validation phase + commit (§4.1.2). Returns Conflict when a
  /// concurrent transaction won; the transaction is then already rolled
  /// back and the caller may retry with a fresh transaction.
  common::Status Commit(Transaction* txn);

  /// Rolls back: catalog changes are discarded; orphaned files are left
  /// for garbage collection.
  common::Status Abort(Transaction* txn);

  /// `KILL <txn_id>`: flips the transaction's cancel token. The statement
  /// driving the transaction observes the flip at its next cancellation
  /// point, fails with Cancelled, and its session aborts the transaction —
  /// Kill itself never mutates transaction state (the owning session is
  /// single-threaded over it). NotFound when no such active transaction.
  common::Status Kill(uint64_t txn_id);

  /// Earliest begin time among active transactions, or `clock->Now()` when
  /// none are active. The GC safety horizon for unreferenced files (§5.3).
  common::Micros MinActiveBeginTime() const;

  /// Earliest catalog snapshot sequence among active transactions, or the
  /// latest commit sequence when none are active — the safe horizon for
  /// vacuuming superseded catalog row versions.
  uint64_t MinActiveBeginSeq() const;

  uint64_t active_transactions() const;

  /// Snapshot of every in-flight transaction, ordered by txn id.
  std::vector<ActiveTxnInfo> ActiveTransactionInfos() const;

  /// Recently finished transactions, oldest first (bounded ring).
  std::vector<TxnHistoryRecord> RecentTransactionHistory() const;

  /// Attaches a structured event log (must outlive the manager); commit,
  /// conflict and abort outcomes are then emitted as typed events.
  void set_event_log(obs::EventLog* events) { events_ = events; }

  catalog::CatalogDb* catalog() { return catalog_; }
  storage::ObjectStore* store() { return store_; }
  lst::SnapshotBuilder* snapshot_builder() { return builder_; }
  const TransactionManagerOptions& options() const { return options_; }

 private:
  /// Builds the committed snapshot of `table_id` visible to `txn`.
  common::Result<lst::TableSnapshot> BuildCommittedSnapshot(
      Transaction* txn, int64_t table_id);

  /// Moves the transaction into the history ring and emits its outcome
  /// event. `state` is "committed" / "conflict" / "aborted".
  void RecordFinished(Transaction* txn, const std::string& state,
                      const std::string& cause);

  catalog::CatalogDb* catalog_;
  storage::ObjectStore* store_;
  lst::SnapshotBuilder* builder_;
  common::Clock* clock_;
  TransactionManagerOptions options_;
  obs::EventLog* events_ = nullptr;

  struct ActiveTxn {
    common::Micros begin_time = 0;
    uint64_t begin_seq = 0;
    catalog::IsolationMode mode = catalog::IsolationMode::kSnapshot;
    std::set<int64_t> tables;  // snapshot-captured tables
    /// KILL target. Tokens handed to the Transaction/session keep the
    /// shared state alive past the active_ erase.
    common::CancelSource cancel;
  };

  mutable std::mutex mu_;
  std::map<uint64_t, ActiveTxn> active_;  // keyed by txn id
  std::deque<TxnHistoryRecord> history_;  // bounded by history_capacity
};

}  // namespace polaris::txn

#endif  // POLARIS_TXN_TRANSACTION_MANAGER_H_
