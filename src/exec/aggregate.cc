#include "exec/aggregate.h"

#include <map>

#include "common/bytes.h"

namespace polaris::exec {

using common::Result;
using common::Status;
using format::ColumnType;
using format::RecordBatch;
using format::Value;

namespace {

struct Accumulator {
  int64_t count = 0;      // rows observed (non-null for per-column aggs)
  int64_t sum_i64 = 0;
  double sum_f64 = 0.0;
  bool has_minmax = false;
  Value min;
  Value max;
};

/// Encodes group-key values into a deterministic, order-preserving key.
std::string EncodeGroupKey(const format::RecordBatch& batch,
                           const std::vector<int>& key_cols, size_t row) {
  common::ByteWriter out;
  for (int c : key_cols) {
    Value v = batch.column(c).ValueAt(row);
    out.PutU8(v.is_null ? 0 : 1);
    if (!v.is_null) {
      switch (v.type) {
        case ColumnType::kInt64:
          out.PutI64(v.i64);
          break;
        case ColumnType::kDouble:
          out.PutDouble(v.f64);
          break;
        case ColumnType::kString:
          out.PutString(v.str);
          break;
      }
    }
  }
  return out.Release();
}

}  // namespace

Result<RecordBatch> HashAggregate(const RecordBatch& input,
                                  const std::vector<std::string>& group_by,
                                  const std::vector<AggSpec>& aggs) {
  std::vector<int> key_cols;
  for (const auto& name : group_by) {
    int idx = input.schema().FindColumn(name);
    if (idx < 0) {
      return Status::InvalidArgument("unknown group-by column: " + name);
    }
    key_cols.push_back(idx);
  }
  std::vector<int> agg_cols;
  for (const auto& spec : aggs) {
    if (spec.column.empty()) {
      if (spec.func != AggFunc::kCount) {
        return Status::InvalidArgument("only COUNT(*) may omit a column");
      }
      agg_cols.push_back(-1);
      continue;
    }
    int idx = input.schema().FindColumn(spec.column);
    if (idx < 0) {
      return Status::InvalidArgument("unknown aggregate column: " +
                                     spec.column);
    }
    agg_cols.push_back(idx);
  }

  // Group state: ordered map keeps deterministic output order.
  struct Group {
    format::Row key_values;
    std::vector<Accumulator> accs;
  };
  std::map<std::string, Group> groups;

  for (size_t r = 0; r < input.num_rows(); ++r) {
    std::string key = EncodeGroupKey(input, key_cols, r);
    auto [it, inserted] = groups.try_emplace(std::move(key));
    Group& group = it->second;
    if (inserted) {
      group.accs.resize(aggs.size());
      for (int c : key_cols) {
        group.key_values.push_back(input.column(c).ValueAt(r));
      }
    }
    for (size_t a = 0; a < aggs.size(); ++a) {
      Accumulator& acc = group.accs[a];
      if (agg_cols[a] < 0) {
        ++acc.count;  // COUNT(*)
        continue;
      }
      Value v = input.column(agg_cols[a]).ValueAt(r);
      if (v.is_null) continue;
      ++acc.count;
      if (v.type == ColumnType::kInt64) {
        acc.sum_i64 += v.i64;
        acc.sum_f64 += static_cast<double>(v.i64);
      } else if (v.type == ColumnType::kDouble) {
        acc.sum_f64 += v.f64;
      }
      if (!acc.has_minmax) {
        acc.min = v;
        acc.max = v;
        acc.has_minmax = true;
      } else {
        if (v.Compare(acc.min) < 0) acc.min = v;
        if (v.Compare(acc.max) > 0) acc.max = v;
      }
    }
  }

  // Output schema.
  std::vector<format::ColumnDesc> descs;
  for (size_t k = 0; k < group_by.size(); ++k) {
    descs.push_back(input.schema().column(key_cols[k]));
  }
  for (size_t a = 0; a < aggs.size(); ++a) {
    ColumnType out_type = ColumnType::kInt64;
    ColumnType in_type = agg_cols[a] >= 0
                             ? input.schema().column(agg_cols[a]).type
                             : ColumnType::kInt64;
    switch (aggs[a].func) {
      case AggFunc::kCount:
        out_type = ColumnType::kInt64;
        break;
      case AggFunc::kAvg:
        out_type = ColumnType::kDouble;
        break;
      case AggFunc::kSum:
        out_type = in_type == ColumnType::kString ? ColumnType::kInt64
                                                  : in_type;
        break;
      case AggFunc::kMin:
      case AggFunc::kMax:
        out_type = in_type;
        break;
    }
    if (aggs[a].func == AggFunc::kSum && in_type == ColumnType::kString) {
      return Status::InvalidArgument("SUM over string column: " +
                                     aggs[a].column);
    }
    descs.push_back({aggs[a].output_name, out_type});
  }
  RecordBatch out{format::Schema(descs)};

  // Global aggregate with no input rows still yields one row of zeros/nulls.
  if (groups.empty() && group_by.empty()) {
    Group empty;
    empty.accs.resize(aggs.size());
    groups.emplace("", std::move(empty));
  }

  for (auto& [key, group] : groups) {
    (void)key;
    format::Row row = group.key_values;
    for (size_t a = 0; a < aggs.size(); ++a) {
      const Accumulator& acc = group.accs[a];
      switch (aggs[a].func) {
        case AggFunc::kCount:
          row.push_back(Value::Int64(acc.count));
          break;
        case AggFunc::kSum: {
          ColumnType in_type = input.schema().column(agg_cols[a]).type;
          if (acc.count == 0) {
            row.push_back(Value::Null(in_type));
          } else if (in_type == ColumnType::kInt64) {
            row.push_back(Value::Int64(acc.sum_i64));
          } else {
            row.push_back(Value::Double(acc.sum_f64));
          }
          break;
        }
        case AggFunc::kMin:
          row.push_back(acc.has_minmax
                            ? acc.min
                            : Value::Null(input.schema()
                                              .column(agg_cols[a])
                                              .type));
          break;
        case AggFunc::kMax:
          row.push_back(acc.has_minmax
                            ? acc.max
                            : Value::Null(input.schema()
                                              .column(agg_cols[a])
                                              .type));
          break;
        case AggFunc::kAvg:
          row.push_back(acc.count == 0
                            ? Value::Null(ColumnType::kDouble)
                            : Value::Double(acc.sum_f64 /
                                            static_cast<double>(acc.count)));
          break;
      }
    }
    POLARIS_RETURN_IF_ERROR(out.AppendRow(row));
  }
  return out;
}

}  // namespace polaris::exec
