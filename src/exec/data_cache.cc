#include "exec/data_cache.h"

#include <chrono>

#include "common/resource_usage.h"
#include "common/trace_context.h"

namespace polaris::exec {

using common::Result;

template <typename T>
Result<std::shared_ptr<const T>> DataCache::AwaitFlight(
    const std::shared_ptr<Flight<T>>& flight) {
  common::ScopedWait wait(wait_stats_, common::WaitClass::kCacheSingleflight);
  std::unique_lock<std::mutex> wait_lock(flight->mu);
  // Sliced wait: the leader's fetch can outlive this statement's budget
  // (or a KILL can land mid-wait), and nothing signals the cv for either,
  // so a follower blocked on `done` alone would be uncancellable.
  while (!flight->done) {
    flight->cv.wait_for(wait_lock, std::chrono::milliseconds(1));
    if (flight->done) break;
    common::Status budget = common::CheckCurrentDeadline("cache.singleflight");
    if (!budget.ok()) return budget;
  }
  return flight->result;
}

void DataCache::TouchLocked(const std::string& path, Entry& entry) {
  lru_.erase(entry.lru_it);
  lru_.push_front(path);
  entry.lru_it = lru_.begin();
}

void DataCache::EvictIfNeededLocked() {
  while (entries_.size() > capacity_ && !lru_.empty()) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
    if (metrics_ != nullptr) metrics_->Add("cache.evictions");
  }
}

void DataCache::InsertLocked(
    const std::string& path,
    const std::shared_ptr<const format::FileReader>& file,
    const std::shared_ptr<const lst::DeletionVector>& dv) {
  auto [it, inserted] = entries_.try_emplace(path);
  if (inserted) {
    lru_.push_front(path);
    it->second.lru_it = lru_.begin();
  } else {
    TouchLocked(path, it->second);
  }
  if (file != nullptr) it->second.file = file;
  if (dv != nullptr) it->second.dv = dv;
  EvictIfNeededLocked();
}

Result<std::shared_ptr<const format::FileReader>> DataCache::GetFile(
    const std::string& path) {
  std::shared_ptr<Flight<format::FileReader>> flight;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(path);
    if (it != entries_.end() && it->second.file != nullptr) {
      ++stats_.hits;
      if (metrics_ != nullptr) metrics_->Add("cache.hits");
      if (auto* usage = common::CurrentResourceUsage()) {
        usage->ChargeCacheHit();
      }
      TouchLocked(path, it->second);
      return it->second.file;
    }
    auto in_flight = inflight_files_.find(path);
    if (in_flight != inflight_files_.end()) {
      flight = in_flight->second;
      ++stats_.coalesced;
      if (metrics_ != nullptr) metrics_->Add("cache.coalesced");
      // A coalesced waiter shares the leader's fetch but still missed the
      // cache from its statement's point of view.
      if (auto* usage = common::CurrentResourceUsage()) {
        usage->ChargeCacheMiss();
      }
    } else {
      flight = std::make_shared<Flight<format::FileReader>>();
      inflight_files_[path] = flight;
      leader = true;
      ++stats_.misses;
      if (metrics_ != nullptr) metrics_->Add("cache.misses");
      if (auto* usage = common::CurrentResourceUsage()) {
        usage->ChargeCacheMiss();
      }
    }
  }
  if (!leader) {
    return AwaitFlight(flight);
  }

  // Leader path: fetch and decode outside the cache lock.
  auto fetch = [&]() -> Result<std::shared_ptr<const format::FileReader>> {
    POLARIS_ASSIGN_OR_RETURN(std::string blob, store_->Get(path));
    POLARIS_ASSIGN_OR_RETURN(format::FileReader reader,
                             format::FileReader::Open(std::move(blob)));
    return std::make_shared<const format::FileReader>(std::move(reader));
  };
  Result<std::shared_ptr<const format::FileReader>> result = fetch();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (result.ok()) InsertLocked(path, *result, nullptr);
    inflight_files_.erase(path);
  }
  {
    std::lock_guard<std::mutex> wait_lock(flight->mu);
    flight->result = result;
    flight->done = true;
  }
  flight->cv.notify_all();
  return result;
}

Result<std::shared_ptr<const lst::DeletionVector>> DataCache::GetDeleteVector(
    const std::string& path) {
  std::shared_ptr<Flight<lst::DeletionVector>> flight;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(path);
    if (it != entries_.end() && it->second.dv != nullptr) {
      ++stats_.hits;
      if (metrics_ != nullptr) metrics_->Add("cache.hits");
      if (auto* usage = common::CurrentResourceUsage()) {
        usage->ChargeCacheHit();
      }
      TouchLocked(path, it->second);
      return it->second.dv;
    }
    auto in_flight = inflight_dvs_.find(path);
    if (in_flight != inflight_dvs_.end()) {
      flight = in_flight->second;
      ++stats_.coalesced;
      if (metrics_ != nullptr) metrics_->Add("cache.coalesced");
      // A coalesced waiter shares the leader's fetch but still missed the
      // cache from its statement's point of view.
      if (auto* usage = common::CurrentResourceUsage()) {
        usage->ChargeCacheMiss();
      }
    } else {
      flight = std::make_shared<Flight<lst::DeletionVector>>();
      inflight_dvs_[path] = flight;
      leader = true;
      ++stats_.misses;
      if (metrics_ != nullptr) metrics_->Add("cache.misses");
      if (auto* usage = common::CurrentResourceUsage()) {
        usage->ChargeCacheMiss();
      }
    }
  }
  if (!leader) {
    return AwaitFlight(flight);
  }

  auto fetch = [&]() -> Result<std::shared_ptr<const lst::DeletionVector>> {
    POLARIS_ASSIGN_OR_RETURN(std::string blob, store_->Get(path));
    POLARIS_ASSIGN_OR_RETURN(lst::DeletionVector dv,
                             lst::DeletionVector::FromBlob(blob));
    return std::make_shared<const lst::DeletionVector>(std::move(dv));
  };
  Result<std::shared_ptr<const lst::DeletionVector>> result = fetch();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (result.ok()) InsertLocked(path, nullptr, *result);
    inflight_dvs_.erase(path);
  }
  {
    std::lock_guard<std::mutex> wait_lock(flight->mu);
    flight->result = result;
    flight->done = true;
  }
  flight->cv.notify_all();
  return result;
}

DataCache::Stats DataCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void DataCache::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = Stats{};
}

void DataCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  lru_.clear();
}

size_t DataCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace polaris::exec
