#include "exec/data_cache.h"

namespace polaris::exec {

using common::Result;

void DataCache::TouchLocked(const std::string& path, Entry& entry) {
  lru_.erase(entry.lru_it);
  lru_.push_front(path);
  entry.lru_it = lru_.begin();
}

void DataCache::EvictIfNeededLocked() {
  while (entries_.size() > capacity_ && !lru_.empty()) {
    entries_.erase(lru_.back());
    lru_.pop_back();
  }
}

Result<std::shared_ptr<const format::FileReader>> DataCache::GetFile(
    const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(path);
    if (it != entries_.end() && it->second.file != nullptr) {
      ++stats_.hits;
      TouchLocked(path, it->second);
      return it->second.file;
    }
    ++stats_.misses;
  }
  POLARIS_ASSIGN_OR_RETURN(std::string blob, store_->Get(path));
  POLARIS_ASSIGN_OR_RETURN(format::FileReader reader,
                           format::FileReader::Open(std::move(blob)));
  auto shared =
      std::make_shared<const format::FileReader>(std::move(reader));
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = entries_.try_emplace(path);
  if (inserted) {
    lru_.push_front(path);
    it->second.lru_it = lru_.begin();
  } else {
    TouchLocked(path, it->second);
  }
  it->second.file = shared;
  EvictIfNeededLocked();
  return shared;
}

Result<std::shared_ptr<const lst::DeletionVector>> DataCache::GetDeleteVector(
    const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(path);
    if (it != entries_.end() && it->second.dv != nullptr) {
      ++stats_.hits;
      TouchLocked(path, it->second);
      return it->second.dv;
    }
    ++stats_.misses;
  }
  POLARIS_ASSIGN_OR_RETURN(std::string blob, store_->Get(path));
  POLARIS_ASSIGN_OR_RETURN(lst::DeletionVector dv,
                           lst::DeletionVector::FromBlob(blob));
  auto shared = std::make_shared<const lst::DeletionVector>(std::move(dv));
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = entries_.try_emplace(path);
  if (inserted) {
    lru_.push_front(path);
    it->second.lru_it = lru_.begin();
  } else {
    TouchLocked(path, it->second);
  }
  it->second.dv = shared;
  EvictIfNeededLocked();
  return shared;
}

DataCache::Stats DataCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void DataCache::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = Stats{};
}

void DataCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  lru_.clear();
}

size_t DataCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace polaris::exec
