#ifndef POLARIS_EXEC_AGGREGATE_H_
#define POLARIS_EXEC_AGGREGATE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "format/column.h"

namespace polaris::exec {

/// Aggregate functions supported by the hash aggregator.
enum class AggFunc {
  kCount,  // COUNT(*) when column is empty, else COUNT(col) of non-nulls
  kSum,
  kMin,
  kMax,
  kAvg,
};

/// One aggregate to compute.
struct AggSpec {
  AggFunc func = AggFunc::kCount;
  /// Input column; may be empty only for kCount.
  std::string column;
  /// Name of the output column.
  std::string output_name;
};

/// Hash aggregation (GROUP BY `group_by`, computing `aggs`). With an empty
/// `group_by` produces exactly one row (global aggregate). Output schema:
/// the group-by columns in order, then one column per AggSpec
/// (SUM/MIN/MAX keep the input type, except SUM(double)=double;
/// COUNT=int64; AVG=double). Group output order is deterministic (ordered
/// by the encoded group key) but not value-sorted.
common::Result<format::RecordBatch> HashAggregate(
    const format::RecordBatch& input, const std::vector<std::string>& group_by,
    const std::vector<AggSpec>& aggs);

}  // namespace polaris::exec

#endif  // POLARIS_EXEC_AGGREGATE_H_
