#ifndef POLARIS_EXEC_EXPRESSION_H_
#define POLARIS_EXEC_EXPRESSION_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "format/column.h"
#include "format/value.h"

namespace polaris::exec {

/// Comparison operators supported by scan predicates.
enum class CompareOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
};

std::string_view CompareOpName(CompareOp op);

/// One column-vs-literal comparison. NULL never satisfies any comparison
/// (SQL three-valued logic collapsed to false for filtering).
struct Predicate {
  std::string column;
  CompareOp op = CompareOp::kEq;
  format::Value literal;

  static Predicate Make(std::string column, CompareOp op,
                        format::Value literal) {
    return Predicate{std::move(column), op, std::move(literal)};
  }
};

/// A conjunction of predicates (AND). An empty conjunction accepts all
/// rows. This is the filter language the engine's scans understand —
/// intentionally small, but enough for the TPC-H-shaped workloads the
/// paper evaluates, and it exercises zone-map pushdown.
struct Conjunction {
  std::vector<Predicate> predicates;

  bool empty() const { return predicates.empty(); }

  /// Range bounds this conjunction implies on `column`, used for zone-map
  /// row-group skipping. Returns {has_low, low, has_high, high}.
  struct Bounds {
    bool has_low = false;
    format::Value low;
    bool has_high = false;
    format::Value high;
  };
  Bounds BoundsFor(const std::string& column) const;
};

/// Evaluates `conjunction` over `batch`; returns one bool per row.
/// Fails with InvalidArgument if a predicate references a column absent
/// from the batch schema or compares incompatible types.
common::Result<std::vector<uint8_t>> EvaluateConjunction(
    const Conjunction& conjunction, const format::RecordBatch& batch);

/// Applies a selection mask, returning only rows where mask[i] != 0.
format::RecordBatch FilterBatch(const format::RecordBatch& batch,
                                const std::vector<uint8_t>& mask);

}  // namespace polaris::exec

#endif  // POLARIS_EXEC_EXPRESSION_H_
