#include "exec/expression.h"

namespace polaris::exec {

using common::Result;
using common::Status;
using format::RecordBatch;
using format::Value;

std::string_view CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

Conjunction::Bounds Conjunction::BoundsFor(const std::string& column) const {
  Bounds bounds;
  for (const auto& pred : predicates) {
    if (pred.column != column || pred.literal.is_null) continue;
    switch (pred.op) {
      case CompareOp::kEq:
        if (!bounds.has_low || pred.literal.Compare(bounds.low) > 0) {
          bounds.has_low = true;
          bounds.low = pred.literal;
        }
        if (!bounds.has_high || pred.literal.Compare(bounds.high) < 0) {
          bounds.has_high = true;
          bounds.high = pred.literal;
        }
        break;
      case CompareOp::kGt:
      case CompareOp::kGe:
        if (!bounds.has_low || pred.literal.Compare(bounds.low) > 0) {
          bounds.has_low = true;
          bounds.low = pred.literal;
        }
        break;
      case CompareOp::kLt:
      case CompareOp::kLe:
        if (!bounds.has_high || pred.literal.Compare(bounds.high) < 0) {
          bounds.has_high = true;
          bounds.high = pred.literal;
        }
        break;
      case CompareOp::kNe:
        break;
    }
  }
  return bounds;
}

namespace {

bool Satisfies(int cmp, CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return cmp == 0;
    case CompareOp::kNe:
      return cmp != 0;
    case CompareOp::kLt:
      return cmp < 0;
    case CompareOp::kLe:
      return cmp <= 0;
    case CompareOp::kGt:
      return cmp > 0;
    case CompareOp::kGe:
      return cmp >= 0;
  }
  return false;
}

}  // namespace

Result<std::vector<uint8_t>> EvaluateConjunction(const Conjunction& conj,
                                                 const RecordBatch& batch) {
  std::vector<uint8_t> mask(batch.num_rows(), 1);
  for (const auto& pred : conj.predicates) {
    int col = batch.schema().FindColumn(pred.column);
    if (col < 0) {
      return Status::InvalidArgument("predicate column not in batch: " +
                                     pred.column);
    }
    const format::ColumnVector& column = batch.column(col);
    if (!pred.literal.is_null && column.type() != pred.literal.type) {
      return Status::InvalidArgument("predicate type mismatch on column: " +
                                     pred.column);
    }
    // Vectorized inner loops per type; nulls never match.
    switch (column.type()) {
      case format::ColumnType::kInt64: {
        int64_t lit = pred.literal.i64;
        const auto& vals = column.ints();
        const auto& valid = column.validity();
        for (size_t i = 0; i < mask.size(); ++i) {
          if (!mask[i]) continue;
          if (!valid[i] || pred.literal.is_null) {
            mask[i] = 0;
            continue;
          }
          int cmp = vals[i] < lit ? -1 : (vals[i] > lit ? 1 : 0);
          mask[i] = Satisfies(cmp, pred.op) ? 1 : 0;
        }
        break;
      }
      case format::ColumnType::kDouble: {
        double lit = pred.literal.f64;
        const auto& vals = column.doubles();
        const auto& valid = column.validity();
        for (size_t i = 0; i < mask.size(); ++i) {
          if (!mask[i]) continue;
          if (!valid[i] || pred.literal.is_null) {
            mask[i] = 0;
            continue;
          }
          int cmp = vals[i] < lit ? -1 : (vals[i] > lit ? 1 : 0);
          mask[i] = Satisfies(cmp, pred.op) ? 1 : 0;
        }
        break;
      }
      case format::ColumnType::kString: {
        const std::string& lit = pred.literal.str;
        const auto& vals = column.strings();
        const auto& valid = column.validity();
        for (size_t i = 0; i < mask.size(); ++i) {
          if (!mask[i]) continue;
          if (!valid[i] || pred.literal.is_null) {
            mask[i] = 0;
            continue;
          }
          int cmp = vals[i].compare(lit);
          mask[i] = Satisfies(cmp < 0 ? -1 : (cmp > 0 ? 1 : 0), pred.op) ? 1
                                                                          : 0;
        }
        break;
      }
    }
  }
  return mask;
}

RecordBatch FilterBatch(const RecordBatch& batch,
                        const std::vector<uint8_t>& mask) {
  RecordBatch out(batch.schema());
  for (size_t i = 0; i < batch.num_rows() && i < mask.size(); ++i) {
    if (mask[i]) {
      (void)out.AppendRow(batch.GetRow(i));
    }
  }
  return out;
}

}  // namespace polaris::exec
