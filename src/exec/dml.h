#ifndef POLARIS_EXEC_DML_H_
#define POLARIS_EXEC_DML_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "dcp/scheduler.h"
#include "exec/data_cache.h"
#include "exec/expression.h"
#include "format/column.h"
#include "format/file_writer.h"
#include "lst/manifest.h"
#include "lst/table_snapshot.h"
#include "storage/object_store.h"

namespace polaris::exec {

/// Everything a distributed DML statement needs: where to write, how to
/// schedule, and the transaction manifest blob to stage blocks against.
/// Owned by the transaction manager / engine; executors only borrow it.
struct DmlContext {
  storage::ObjectStore* store = nullptr;
  DataCache* cache = nullptr;
  dcp::Scheduler* scheduler = nullptr;
  /// WLM pool DML tasks run on (paper §4.3 separates write from read).
  std::string pool = "write";
  int64_t table_id = 0;
  format::Schema schema;
  /// The transaction manifest blob for (transaction, table); BE tasks
  /// stage their blocks against this path (paper §3.2.2).
  std::string manifest_path;
  /// Distribution bucket count — the d(r) dimension of the cell model.
  uint32_t num_cells = 16;
  /// Column whose hash defines d(r); -1 distributes by row position.
  int distribution_column = 0;
  /// Column index each written data file keeps its rows sorted by — the
  /// partitioning function p(r) for zone-map range pruning (§2.3).
  /// -1 = unsorted.
  int sort_column = -1;
  format::FileWriterOptions file_options;
  /// Multiplier applied to declared task costs. Benchmarks reproducing
  /// TB-scale experiments on scaled-down data set this so the virtual-time
  /// cost model sees paper-scale work while the code paths process small
  /// physical batches (see DESIGN.md substitutions).
  uint64_t cost_scale = 1;
};

/// Outcome of one distributed DML statement, aggregated by the DCP and
/// returned to the SQL FE (paper §4.3: "the root DML operation does not
/// return data, but instead provides a list of block blobs").
struct WriteResult {
  /// Manifest blocks staged by the final (successful) attempt of each task.
  std::vector<std::string> block_ids;
  /// The manifest entries inside those blocks, in block order — the FE
  /// uses these to overlay the transaction's own changes on its snapshot.
  std::vector<lst::ManifestEntry> entries;
  /// Data files whose deletion vectors this statement modified; feeds
  /// file-granularity conflict detection (paper §4.4.1).
  std::set<std::string> touched_files;
  uint64_t rows_affected = 0;
  dcp::JobMetrics job;
};

/// One SET clause of an UPDATE.
struct Assignment {
  enum class Kind {
    kSetValue,  // col = literal
    kAddInt64,  // col = col + delta (int64 column)
    kAddDouble, // col = col + delta (double column)
  };
  std::string column;
  Kind kind = Kind::kSetValue;
  format::Value value;
};

/// Distributed INSERT (paper §3.2.2): partitions rows into cells by the
/// distribution function, runs one writer task per cell group, each task
/// writing immutable data files and staging one manifest block. Inserts
/// never conflict with concurrent transactions.
class InsertExecutor {
 public:
  /// Inserts `rows`, hashing each row into a cell.
  static common::Result<WriteResult> Run(const DmlContext& ctx,
                                         const format::RecordBatch& rows);

  /// Bulk-load path: one task per source batch (Polaris parallelizes
  /// across source files, not within one, §7.1). Cell = source index mod
  /// num_cells.
  static common::Result<WriteResult> RunSources(
      const DmlContext& ctx, const std::vector<format::RecordBatch>& sources);
};

/// Distributed DELETE (merge-on-read): tasks own disjoint cell sets, scan
/// their files for matching rows, and write merged deletion vectors.
class DeleteExecutor {
 public:
  static common::Result<WriteResult> Run(const DmlContext& ctx,
                                         const lst::TableSnapshot& snapshot,
                                         const Conjunction& filter);
};

/// Distributed UPDATE = delete + insert (paper §4.1.1 step 2): matching
/// rows are marked deleted via DVs and re-inserted with assignments
/// applied, into new files in the same cell.
class UpdateExecutor {
 public:
  static common::Result<WriteResult> Run(
      const DmlContext& ctx, const lst::TableSnapshot& snapshot,
      const Conjunction& filter, const std::vector<Assignment>& assignments);
};

}  // namespace polaris::exec

#endif  // POLARIS_EXEC_DML_H_
