#ifndef POLARIS_EXEC_SCAN_H_
#define POLARIS_EXEC_SCAN_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "exec/data_cache.h"
#include "exec/expression.h"
#include "format/column.h"
#include "lst/table_snapshot.h"

namespace polaris::exec {

/// Options for a merge-on-read table scan.
struct ScanOptions {
  /// Output column names, in order; empty = all columns.
  std::vector<std::string> projection;
  /// Row filter (AND of comparisons); also drives zone-map pushdown.
  Conjunction filter;
  /// Restrict to these distribution cells; empty = all cells. The DCP uses
  /// this to hand disjoint cell sets to different tasks.
  std::vector<uint32_t> cells;
};

/// Per-scan observability, reported by benchmarks.
struct ScanMetrics {
  uint64_t files_scanned = 0;
  uint64_t row_groups_read = 0;
  uint64_t row_groups_skipped = 0;
  uint64_t rows_read = 0;
  uint64_t rows_dv_filtered = 0;
  uint64_t rows_output = 0;
};

/// Merge-on-read scanner over a table snapshot (paper §3.2.1): for each
/// live data file, reads the columnar data, filters out rows marked in the
/// file's deletion vector, applies predicates (with row-group skipping via
/// zone maps), and emits projected batches.
class TableScanner {
 public:
  /// `cache` and `snapshot` must outlive the scanner.
  TableScanner(DataCache* cache, const lst::TableSnapshot* snapshot)
      : cache_(cache), snapshot_(snapshot) {}

  /// Scans everything into one batch.
  common::Result<format::RecordBatch> ScanAll(const ScanOptions& options,
                                              ScanMetrics* metrics = nullptr);

  /// Per-file callback used by DML executors: `batch` holds the *full
  /// rows* (all columns) that survive the deletion vector and satisfy the
  /// filter; `ordinals[i]` is the file-relative row ordinal of batch row i
  /// (what a new deletion vector must mark).
  using FileRowsCallback = std::function<common::Status(
      const lst::FileState& file, const format::RecordBatch& batch,
      const std::vector<uint64_t>& ordinals)>;
  common::Status ScanFilesWithOrdinals(const ScanOptions& options,
                                       const FileRowsCallback& callback,
                                       ScanMetrics* metrics = nullptr);

 private:
  common::Status ScanFile(const lst::FileState& file,
                          const ScanOptions& options, bool full_rows,
                          const FileRowsCallback& callback,
                          ScanMetrics* metrics);

  DataCache* cache_;
  const lst::TableSnapshot* snapshot_;
};

}  // namespace polaris::exec

#endif  // POLARIS_EXEC_SCAN_H_
