#ifndef POLARIS_EXEC_DATA_CACHE_H_
#define POLARIS_EXEC_DATA_CACHE_H_

#include <condition_variable>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/result.h"
#include "common/wait_stats.h"
#include "format/file_reader.h"
#include "lst/deletion_vector.h"
#include "obs/metrics.h"
#include "storage/object_store.h"

namespace polaris::exec {

/// BE-side cache of opened data files and deletion vectors (the SSD/
/// in-memory cache on compute nodes, paper §3.3). Because data files and
/// DV blobs are immutable once committed, cache entries never need
/// invalidation — the property the paper leans on for "caches stay warm"
/// in Figure 9. LRU-bounded by entry count (capacity is clamped to >= 1;
/// a zero-capacity cache would evict entries mid-insert).
///
/// Concurrent misses on the same path are coalesced: one thread fetches
/// and decodes the blob while the others wait for its result, so a scan
/// fan-out over a cold cache issues each store Get exactly once.
class DataCache {
 public:
  DataCache(storage::ObjectStore* store, size_t capacity = 1024)
      : store_(store), capacity_(capacity == 0 ? 1 : capacity) {}

  /// Attaches a metrics registry (must outlive the cache); hits/misses/
  /// coalesced waits are then mirrored under "cache.*".
  void set_metrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }

  /// Attaches the wait-event registry (may be null); time spent joined to
  /// another thread's in-flight fetch is then CACHE_SINGLEFLIGHT.
  void set_wait_stats(common::WaitStats* waits) { wait_stats_ = waits; }

  /// Opens (or returns the cached) reader for a data file blob.
  common::Result<std::shared_ptr<const format::FileReader>> GetFile(
      const std::string& path);

  /// Loads (or returns the cached) deletion vector blob.
  common::Result<std::shared_ptr<const lst::DeletionVector>> GetDeleteVector(
      const std::string& path);

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    /// Lookups that joined another thread's in-flight fetch instead of
    /// issuing their own (single-flight coalescing).
    uint64_t coalesced = 0;
    /// Entries pushed out by the LRU bound (never by invalidation —
    /// cached blobs are immutable).
    uint64_t evictions = 0;
  };
  Stats stats() const;
  void ResetStats();

  /// Drops all entries (simulates a node joining with a cold cache).
  void Clear();

  size_t size() const;
  size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    std::shared_ptr<const format::FileReader> file;
    std::shared_ptr<const lst::DeletionVector> dv;
    std::list<std::string>::iterator lru_it;
  };

  /// One in-flight fetch that concurrent misses on the same path share.
  template <typename T>
  struct Flight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    common::Result<std::shared_ptr<const T>> result =
        common::Status::Internal("fetch in flight");
  };

  /// Follower side of the single-flight: waits for the leader's result in
  /// cancellable slices, honoring the ambient deadline/KILL token.
  template <typename T>
  common::Result<std::shared_ptr<const T>> AwaitFlight(
      const std::shared_ptr<Flight<T>>& flight);

  void TouchLocked(const std::string& path, Entry& entry);
  void EvictIfNeededLocked();
  void InsertLocked(
      const std::string& path,
      const std::shared_ptr<const format::FileReader>& file,
      const std::shared_ptr<const lst::DeletionVector>& dv);

  storage::ObjectStore* store_;
  size_t capacity_;
  obs::MetricsRegistry* metrics_ = nullptr;
  common::WaitStats* wait_stats_ = nullptr;
  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
  std::list<std::string> lru_;  // front = most recent
  std::map<std::string, std::shared_ptr<Flight<format::FileReader>>>
      inflight_files_;
  std::map<std::string, std::shared_ptr<Flight<lst::DeletionVector>>>
      inflight_dvs_;
  Stats stats_;
};

}  // namespace polaris::exec

#endif  // POLARIS_EXEC_DATA_CACHE_H_
