#ifndef POLARIS_EXEC_DATA_CACHE_H_
#define POLARIS_EXEC_DATA_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/result.h"
#include "format/file_reader.h"
#include "lst/deletion_vector.h"
#include "storage/object_store.h"

namespace polaris::exec {

/// BE-side cache of opened data files and deletion vectors (the SSD/
/// in-memory cache on compute nodes, paper §3.3). Because data files and
/// DV blobs are immutable once committed, cache entries never need
/// invalidation — the property the paper leans on for "caches stay warm"
/// in Figure 9. LRU-bounded by entry count.
class DataCache {
 public:
  DataCache(storage::ObjectStore* store, size_t capacity = 1024)
      : store_(store), capacity_(capacity) {}

  /// Opens (or returns the cached) reader for a data file blob.
  common::Result<std::shared_ptr<const format::FileReader>> GetFile(
      const std::string& path);

  /// Loads (or returns the cached) deletion vector blob.
  common::Result<std::shared_ptr<const lst::DeletionVector>> GetDeleteVector(
      const std::string& path);

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
  };
  Stats stats() const;
  void ResetStats();

  /// Drops all entries (simulates a node joining with a cold cache).
  void Clear();

  size_t size() const;

 private:
  struct Entry {
    std::shared_ptr<const format::FileReader> file;
    std::shared_ptr<const lst::DeletionVector> dv;
    std::list<std::string>::iterator lru_it;
  };

  void TouchLocked(const std::string& path, Entry& entry);
  void EvictIfNeededLocked();

  storage::ObjectStore* store_;
  size_t capacity_;
  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
  std::list<std::string> lru_;  // front = most recent
  Stats stats_;
};

}  // namespace polaris::exec

#endif  // POLARIS_EXEC_DATA_CACHE_H_
