#ifndef POLARIS_EXEC_JOIN_H_
#define POLARIS_EXEC_JOIN_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "format/column.h"

namespace polaris::exec {

/// Inner hash equi-join. The right side is built into a hash table; the
/// left side probes. Output schema: all left columns followed by all right
/// columns; right columns whose names clash with a left column are emitted
/// as "right.<name>". NULL keys never match (SQL semantics).
common::Result<format::RecordBatch> HashJoin(
    const format::RecordBatch& left, const format::RecordBatch& right,
    const std::vector<std::string>& left_keys,
    const std::vector<std::string>& right_keys);

}  // namespace polaris::exec

#endif  // POLARIS_EXEC_JOIN_H_
