#include "exec/scan.h"

#include <algorithm>

#include "common/resource_usage.h"
#include "common/trace_context.h"

namespace polaris::exec {

using common::Result;
using common::Status;
using format::RecordBatch;

namespace {

bool CellSelected(const std::vector<uint32_t>& cells, uint32_t cell) {
  if (cells.empty()) return true;
  return std::find(cells.begin(), cells.end(), cell) != cells.end();
}

}  // namespace

Status TableScanner::ScanFile(const lst::FileState& file,
                              const ScanOptions& options, bool full_rows,
                              const FileRowsCallback& callback,
                              ScanMetrics* metrics) {
  POLARIS_ASSIGN_OR_RETURN(auto reader, cache_->GetFile(file.info.path));
  std::shared_ptr<const lst::DeletionVector> dv;
  if (!file.dv_path.empty()) {
    POLARIS_ASSIGN_OR_RETURN(dv, cache_->GetDeleteVector(file.dv_path));
  }
  if (metrics != nullptr) ++metrics->files_scanned;

  const format::Schema& schema = reader->schema();

  // Columns we must materialize: projection (or all when full_rows) plus
  // any filter columns.
  std::vector<int> read_cols;
  if (full_rows || options.projection.empty()) {
    for (size_t i = 0; i < schema.num_columns(); ++i) {
      read_cols.push_back(static_cast<int>(i));
    }
  } else {
    for (const auto& name : options.projection) {
      int idx = schema.FindColumn(name);
      if (idx < 0) {
        return Status::InvalidArgument("unknown projected column: " + name);
      }
      read_cols.push_back(idx);
    }
    for (const auto& pred : options.filter.predicates) {
      int idx = schema.FindColumn(pred.column);
      if (idx < 0) {
        return Status::InvalidArgument("unknown filter column: " +
                                       pred.column);
      }
      if (std::find(read_cols.begin(), read_cols.end(), idx) ==
          read_cols.end()) {
        read_cols.push_back(idx);
      }
    }
  }

  uint64_t base_ordinal = 0;
  for (size_t g = 0; g < reader->num_row_groups(); ++g) {
    const uint64_t group_rows = reader->row_group(g).num_rows;
    // Zone-map pushdown: skip the row group if any filter column's bounds
    // prove no row can match.
    bool skip = false;
    for (const auto& pred : options.filter.predicates) {
      int idx = schema.FindColumn(pred.column);
      if (idx < 0) continue;
      auto bounds = options.filter.BoundsFor(pred.column);
      const format::Value* low = bounds.has_low ? &bounds.low : nullptr;
      const format::Value* high = bounds.has_high ? &bounds.high : nullptr;
      if (reader->CanSkipRowGroup(g, idx, low, high)) {
        skip = true;
        break;
      }
    }
    if (skip) {
      if (metrics != nullptr) ++metrics->row_groups_skipped;
      base_ordinal += group_rows;
      continue;
    }

    POLARIS_ASSIGN_OR_RETURN(RecordBatch batch,
                             reader->ReadRowGroup(g, read_cols));
    if (metrics != nullptr) {
      ++metrics->row_groups_read;
      metrics->rows_read += batch.num_rows();
    }
    if (auto* usage = common::CurrentResourceUsage()) {
      usage->ChargeRowsScanned(batch.num_rows());
    }

    // Merge-on-read: drop rows marked deleted in the DV, tracking the
    // surviving rows' file ordinals.
    std::vector<uint8_t> alive(batch.num_rows(), 1);
    if (dv != nullptr) {
      for (size_t r = 0; r < batch.num_rows(); ++r) {
        if (dv->IsDeleted(base_ordinal + r)) {
          alive[r] = 0;
          if (metrics != nullptr) ++metrics->rows_dv_filtered;
        }
      }
    }
    POLARIS_ASSIGN_OR_RETURN(auto match,
                             EvaluateConjunction(options.filter, batch));
    for (size_t r = 0; r < alive.size(); ++r) {
      alive[r] = alive[r] && match[r];
    }

    RecordBatch out(batch.schema());
    std::vector<uint64_t> ordinals;
    for (size_t r = 0; r < batch.num_rows(); ++r) {
      if (!alive[r]) continue;
      POLARIS_RETURN_IF_ERROR(out.AppendRow(batch.GetRow(r)));
      ordinals.push_back(base_ordinal + r);
    }
    if (metrics != nullptr) metrics->rows_output += out.num_rows();
    if (out.num_rows() > 0) {
      POLARIS_RETURN_IF_ERROR(callback(file, out, ordinals));
    }
    base_ordinal += group_rows;
  }
  return Status::OK();
}

Result<RecordBatch> TableScanner::ScanAll(const ScanOptions& options,
                                          ScanMetrics* metrics) {
  RecordBatch all;
  bool first = true;
  auto collect = [&](const lst::FileState& file, const RecordBatch& batch,
                     const std::vector<uint64_t>& ordinals) -> Status {
    (void)file;
    (void)ordinals;
    // Cut the batch down to the projection order (the scan may have read
    // extra filter columns).
    RecordBatch projected = batch;
    if (!options.projection.empty()) {
      std::vector<format::ColumnDesc> descs;
      RecordBatch cut{[&] {
        for (const auto& name : options.projection) {
          int idx = batch.schema().FindColumn(name);
          descs.push_back(batch.schema().column(idx));
        }
        return format::Schema(descs);
      }()};
      for (size_t r = 0; r < batch.num_rows(); ++r) {
        format::Row row;
        for (const auto& name : options.projection) {
          int idx = batch.schema().FindColumn(name);
          row.push_back(batch.column(idx).ValueAt(r));
        }
        POLARIS_RETURN_IF_ERROR(cut.AppendRow(row));
      }
      projected = std::move(cut);
    }
    if (first) {
      all = std::move(projected);
      first = false;
    } else {
      POLARIS_RETURN_IF_ERROR(all.Append(projected));
    }
    return Status::OK();
  };

  for (const auto& [path, file] : snapshot_->files()) {
    (void)path;
    if (!CellSelected(options.cells, file.info.cell_id)) continue;
    // Scan batches are a cancellation point: a killed or deadline-burned
    // statement stops between files rather than finishing the table.
    POLARIS_RETURN_IF_ERROR(common::CheckCurrentDeadline("scan.file"));
    POLARIS_RETURN_IF_ERROR(
        ScanFile(file, options, /*full_rows=*/false, collect, metrics));
  }
  if (first) {
    // No matching files: produce an empty batch. Without a file we don't
    // know the schema here; callers that need a typed empty result pass
    // the table schema through the engine instead.
    all = RecordBatch{};
  }
  return all;
}

Status TableScanner::ScanFilesWithOrdinals(const ScanOptions& options,
                                           const FileRowsCallback& callback,
                                           ScanMetrics* metrics) {
  for (const auto& [path, file] : snapshot_->files()) {
    (void)path;
    if (!CellSelected(options.cells, file.info.cell_id)) continue;
    POLARIS_RETURN_IF_ERROR(common::CheckCurrentDeadline("scan.file"));
    POLARIS_RETURN_IF_ERROR(
        ScanFile(file, options, /*full_rows=*/true, callback, metrics));
  }
  return Status::OK();
}

}  // namespace polaris::exec
