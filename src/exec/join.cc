#include "exec/join.h"

#include <unordered_map>

#include "common/bytes.h"

namespace polaris::exec {

using common::Result;
using common::Status;
using format::RecordBatch;
using format::Value;

namespace {

/// Encodes join-key values; returns false when any key is NULL (no match).
bool EncodeJoinKey(const RecordBatch& batch, const std::vector<int>& cols,
                   size_t row, std::string* out) {
  common::ByteWriter w;
  for (int c : cols) {
    Value v = batch.column(c).ValueAt(row);
    if (v.is_null) return false;
    switch (v.type) {
      case format::ColumnType::kInt64:
        w.PutU8(0);
        w.PutI64(v.i64);
        break;
      case format::ColumnType::kDouble:
        w.PutU8(1);
        w.PutDouble(v.f64);
        break;
      case format::ColumnType::kString:
        w.PutU8(2);
        w.PutString(v.str);
        break;
    }
  }
  *out = w.Release();
  return true;
}

}  // namespace

Result<RecordBatch> HashJoin(const RecordBatch& left,
                             const RecordBatch& right,
                             const std::vector<std::string>& left_keys,
                             const std::vector<std::string>& right_keys) {
  if (left_keys.size() != right_keys.size() || left_keys.empty()) {
    return Status::InvalidArgument("join key arity mismatch or empty");
  }
  std::vector<int> lcols;
  std::vector<int> rcols;
  for (const auto& name : left_keys) {
    int idx = left.schema().FindColumn(name);
    if (idx < 0) {
      return Status::InvalidArgument("unknown left join key: " + name);
    }
    lcols.push_back(idx);
  }
  for (const auto& name : right_keys) {
    int idx = right.schema().FindColumn(name);
    if (idx < 0) {
      return Status::InvalidArgument("unknown right join key: " + name);
    }
    rcols.push_back(idx);
  }
  for (size_t i = 0; i < lcols.size(); ++i) {
    if (left.schema().column(lcols[i]).type !=
        right.schema().column(rcols[i]).type) {
      return Status::InvalidArgument("join key type mismatch: " +
                                     left_keys[i]);
    }
  }

  // Output schema with clash-renamed right columns.
  std::vector<format::ColumnDesc> descs = left.schema().columns();
  for (const auto& col : right.schema().columns()) {
    format::ColumnDesc out_col = col;
    if (left.schema().FindColumn(col.name) >= 0) {
      out_col.name = "right." + col.name;
    }
    descs.push_back(out_col);
  }
  RecordBatch out{format::Schema(descs)};

  // Build on the right side.
  std::unordered_multimap<std::string, size_t> table;
  table.reserve(right.num_rows());
  for (size_t r = 0; r < right.num_rows(); ++r) {
    std::string key;
    if (EncodeJoinKey(right, rcols, r, &key)) {
      table.emplace(std::move(key), r);
    }
  }

  // Probe with the left side.
  for (size_t l = 0; l < left.num_rows(); ++l) {
    std::string key;
    if (!EncodeJoinKey(left, lcols, l, &key)) continue;
    auto [begin, end] = table.equal_range(key);
    for (auto it = begin; it != end; ++it) {
      format::Row row = left.GetRow(l);
      format::Row rrow = right.GetRow(it->second);
      row.insert(row.end(), rrow.begin(), rrow.end());
      POLARIS_RETURN_IF_ERROR(out.AppendRow(row));
    }
  }
  return out;
}

}  // namespace polaris::exec
