#include "exec/dml.h"

#include <algorithm>
#include <map>
#include <mutex>

#include "common/guid.h"
#include "exec/scan.h"
#include "lst/deletion_vector.h"
#include "lst/manifest_io.h"
#include "storage/path_util.h"

namespace polaris::exec {

using common::Result;
using common::Status;
using format::RecordBatch;
using format::Value;
using lst::ManifestEntry;

namespace {

/// Rough per-row width for cost estimation.
uint64_t EstimateRowBytes(const format::Schema& schema) {
  uint64_t width = 0;
  for (const auto& col : schema.columns()) {
    width += col.type == format::ColumnType::kString ? 16 : 8;
  }
  return width == 0 ? 8 : width;
}

uint64_t HashValue(const Value& v) {
  // FNV-1a over the value payload.
  auto mix = [](uint64_t h, const void* data, size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 0x100000001b3ULL;
    }
    return h;
  };
  uint64_t h = 0xcbf29ce484222325ULL;
  if (v.is_null) return h;
  switch (v.type) {
    case format::ColumnType::kInt64:
      return mix(h, &v.i64, sizeof(v.i64));
    case format::ColumnType::kDouble:
      return mix(h, &v.f64, sizeof(v.f64));
    case format::ColumnType::kString:
      return mix(h, v.str.data(), v.str.size());
  }
  return h;
}

/// Per-task result slot. A retried task overwrites its slot, so outputs of
/// abandoned attempts are never referenced (their staged blocks and data
/// files become garbage, reclaimed by GC — paper §3.2.2, §5.3).
struct TaskSlot {
  std::string block_id;
  std::vector<ManifestEntry> entries;
  std::set<std::string> touched_files;
  uint64_t rows_affected = 0;
};

WriteResult AssembleResult(std::vector<TaskSlot> slots,
                           dcp::JobMetrics job) {
  WriteResult result;
  result.job = job;
  for (auto& slot : slots) {
    if (slot.block_id.empty()) continue;
    result.block_ids.push_back(std::move(slot.block_id));
    result.entries.insert(result.entries.end(),
                          std::make_move_iterator(slot.entries.begin()),
                          std::make_move_iterator(slot.entries.end()));
    result.touched_files.insert(slot.touched_files.begin(),
                                slot.touched_files.end());
    result.rows_affected += slot.rows_affected;
  }
  return result;
}

/// Re-orders `batch` by the context's sort column (no-op when unsorted).
/// Implements the p(r) clustering that makes zone maps selective (§2.3).
RecordBatch SortForWrite(const DmlContext& ctx, const RecordBatch& batch) {
  if (ctx.sort_column < 0 ||
      static_cast<size_t>(ctx.sort_column) >= batch.num_columns()) {
    return batch;
  }
  std::vector<size_t> order(batch.num_rows());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  const format::ColumnVector& key = batch.column(ctx.sort_column);
  std::stable_sort(order.begin(), order.end(),
                   [&key](size_t a, size_t b) {
                     return key.ValueAt(a).Compare(key.ValueAt(b)) < 0;
                   });
  RecordBatch sorted(batch.schema());
  for (size_t i : order) (void)sorted.AppendRow(batch.GetRow(i));
  return sorted;
}

/// Writes `batch` as one immutable data file for `cell`; returns the
/// AddFile entry. Fresh GUID per call, so per attempt.
Result<ManifestEntry> WriteDataFile(const DmlContext& ctx,
                                    const RecordBatch& batch, uint32_t cell) {
  format::FileWriter writer(ctx.schema, ctx.file_options);
  POLARIS_RETURN_IF_ERROR(writer.Append(SortForWrite(ctx, batch)));
  POLARIS_ASSIGN_OR_RETURN(std::string bytes, std::move(writer).Finish());
  std::string guid = common::Guid::Generate().ToString();
  std::string path = storage::PathUtil::DataFilePath(ctx.table_id, guid);
  uint64_t size = bytes.size();
  POLARIS_RETURN_IF_ERROR(ctx.store->Put(path, std::move(bytes)));
  lst::DataFileInfo info;
  info.path = std::move(path);
  info.row_count = batch.num_rows();
  info.byte_size = size;
  info.cell_id = cell;
  return ManifestEntry::AddFile(std::move(info));
}

}  // namespace

Result<WriteResult> InsertExecutor::Run(const DmlContext& ctx,
                                        const RecordBatch& rows) {
  if (!(rows.schema() == ctx.schema)) {
    return Status::InvalidArgument("insert batch schema mismatch");
  }
  // Partition rows into cells via the distribution function d(r).
  std::map<uint32_t, RecordBatch> cells;
  for (size_t r = 0; r < rows.num_rows(); ++r) {
    uint32_t cell;
    if (ctx.distribution_column >= 0 &&
        static_cast<size_t>(ctx.distribution_column) < rows.num_columns()) {
      cell = static_cast<uint32_t>(
          HashValue(rows.column(ctx.distribution_column).ValueAt(r)) %
          ctx.num_cells);
    } else {
      cell = static_cast<uint32_t>(r % ctx.num_cells);
    }
    auto [it, inserted] = cells.try_emplace(cell, ctx.schema);
    (void)inserted;
    POLARIS_RETURN_IF_ERROR(it->second.AppendRow(rows.GetRow(r)));
  }

  std::vector<TaskSlot> slots(cells.size());
  std::mutex slots_mu;
  dcp::TaskDag dag;
  uint64_t row_bytes = EstimateRowBytes(ctx.schema);

  size_t slot_idx = 0;
  for (auto& [cell, batch] : cells) {
    dcp::Task task;
    task.kind = "insert";
    task.cells = {cell};
    task.cost.rows = batch.num_rows() * ctx.cost_scale;
    task.cost.input_bytes = batch.num_rows() * row_bytes * ctx.cost_scale;
    task.cost.output_bytes = batch.num_rows() * row_bytes * ctx.cost_scale;
    task.cost.files_touched = 1;
    uint32_t cell_copy = cell;
    const RecordBatch* batch_ptr = &batch;
    size_t my_slot = slot_idx++;
    task.work = [&ctx, &slots, &slots_mu, cell_copy, batch_ptr,
                 my_slot](const dcp::TaskContext&) -> Status {
      POLARIS_ASSIGN_OR_RETURN(ManifestEntry entry,
                               WriteDataFile(ctx, *batch_ptr, cell_copy));
      lst::ManifestBlockWriter block_writer(ctx.store, ctx.manifest_path);
      POLARIS_ASSIGN_OR_RETURN(std::string block_id,
                               block_writer.StageEntries({entry}));
      std::lock_guard<std::mutex> lock(slots_mu);
      TaskSlot& slot = slots[my_slot];
      slot = TaskSlot{};  // overwrite any earlier attempt
      slot.block_id = std::move(block_id);
      slot.entries = {std::move(entry)};
      slot.rows_affected = batch_ptr->num_rows();
      return Status::OK();
    };
    dag.Add(std::move(task));
  }

  POLARIS_ASSIGN_OR_RETURN(dcp::JobMetrics job,
                           ctx.scheduler->Run(dag, ctx.pool));
  return AssembleResult(std::move(slots), job);
}

Result<WriteResult> InsertExecutor::RunSources(
    const DmlContext& ctx, const std::vector<RecordBatch>& sources) {
  std::vector<TaskSlot> slots(sources.size());
  std::mutex slots_mu;
  dcp::TaskDag dag;
  uint64_t row_bytes = EstimateRowBytes(ctx.schema);

  for (size_t s = 0; s < sources.size(); ++s) {
    const RecordBatch& batch = sources[s];
    if (!(batch.schema() == ctx.schema)) {
      return Status::InvalidArgument("source batch schema mismatch");
    }
    uint32_t cell = static_cast<uint32_t>(s % ctx.num_cells);
    dcp::Task task;
    task.kind = "load";
    task.cells = {cell};
    task.cost.rows = batch.num_rows() * ctx.cost_scale;
    task.cost.input_bytes = batch.num_rows() * row_bytes * ctx.cost_scale;
    task.cost.output_bytes = batch.num_rows() * row_bytes * ctx.cost_scale;
    task.cost.files_touched = 2;  // read source + write target
    const RecordBatch* batch_ptr = &batch;
    task.work = [&ctx, &slots, &slots_mu, cell, batch_ptr,
                 s](const dcp::TaskContext&) -> Status {
      POLARIS_ASSIGN_OR_RETURN(ManifestEntry entry,
                               WriteDataFile(ctx, *batch_ptr, cell));
      lst::ManifestBlockWriter block_writer(ctx.store, ctx.manifest_path);
      POLARIS_ASSIGN_OR_RETURN(std::string block_id,
                               block_writer.StageEntries({entry}));
      std::lock_guard<std::mutex> lock(slots_mu);
      TaskSlot& slot = slots[s];
      slot = TaskSlot{};
      slot.block_id = std::move(block_id);
      slot.entries = {std::move(entry)};
      slot.rows_affected = batch_ptr->num_rows();
      return Status::OK();
    };
    dag.Add(std::move(task));
  }

  // Max parallelism = number of source files (paper §7.1).
  POLARIS_ASSIGN_OR_RETURN(
      dcp::JobMetrics job,
      ctx.scheduler->Run(dag, ctx.pool,
                         static_cast<uint32_t>(sources.size())));
  return AssembleResult(std::move(slots), job);
}

namespace {

/// Groups the snapshot's files by cell and builds one task per cell, each
/// task receiving a mini-snapshot of just its files — disjoint cell sets
/// give write isolation across tasks (paper §4.3).
struct CellGroup {
  uint32_t cell = 0;
  lst::TableSnapshot snapshot;
  uint64_t rows = 0;
  uint64_t bytes = 0;
  uint32_t files = 0;
};

std::vector<CellGroup> GroupByCell(const lst::TableSnapshot& snapshot) {
  std::map<uint32_t, CellGroup> groups;
  for (const auto& [path, state] : snapshot.files()) {
    (void)path;
    CellGroup& group = groups[state.info.cell_id];
    group.cell = state.info.cell_id;
    group.snapshot.InsertFile(state);
    group.rows += state.info.row_count;
    group.bytes += state.info.byte_size;
    group.files += 1;
  }
  std::vector<CellGroup> out;
  out.reserve(groups.size());
  for (auto& [cell, group] : groups) {
    (void)cell;
    out.push_back(std::move(group));
  }
  return out;
}

/// Shared body of DELETE and UPDATE: scan matching rows per file, write
/// merged DVs, and (for UPDATE) collect rewritten rows per cell.
Status MutateCellGroup(const DmlContext& ctx, const CellGroup& group,
                       const Conjunction& filter,
                       const std::vector<Assignment>* assignments,
                       TaskSlot* slot) {
  std::vector<ManifestEntry> entries;
  std::set<std::string> touched;
  uint64_t affected = 0;
  RecordBatch rewritten(ctx.schema);

  TableScanner scanner(ctx.cache, &group.snapshot);
  ScanOptions options;
  options.filter = filter;
  Status scan_status = scanner.ScanFilesWithOrdinals(
      options,
      [&](const lst::FileState& file, const RecordBatch& batch,
          const std::vector<uint64_t>& ordinals) -> Status {
        // Merge the new deletions with the file's existing DV.
        lst::DeletionVector merged;
        if (!file.dv_path.empty()) {
          POLARIS_ASSIGN_OR_RETURN(auto existing,
                                   ctx.cache->GetDeleteVector(file.dv_path));
          merged = *existing;
        }
        for (uint64_t ordinal : ordinals) merged.MarkDeleted(ordinal);
        std::string guid = common::Guid::Generate().ToString();
        std::string dv_path =
            storage::PathUtil::DeleteVectorPath(ctx.table_id, guid);
        POLARIS_RETURN_IF_ERROR(ctx.store->Put(dv_path, merged.ToBlob()));
        if (!file.dv_path.empty()) {
          entries.push_back(
              ManifestEntry::RemoveDv(file.dv_path, file.info.path));
        }
        lst::DeleteVectorInfo info;
        info.path = dv_path;
        info.target_data_file = file.info.path;
        info.deleted_count = merged.cardinality();
        entries.push_back(ManifestEntry::AddDv(std::move(info)));
        touched.insert(file.info.path);
        affected += ordinals.size();

        if (assignments != nullptr) {
          // UPDATE: re-insert matching rows with assignments applied.
          for (size_t r = 0; r < batch.num_rows(); ++r) {
            format::Row row = batch.GetRow(r);
            for (const auto& assign : *assignments) {
              int idx = ctx.schema.FindColumn(assign.column);
              if (idx < 0) {
                return Status::InvalidArgument("unknown update column: " +
                                               assign.column);
              }
              switch (assign.kind) {
                case Assignment::Kind::kSetValue:
                  row[idx] = assign.value;
                  break;
                case Assignment::Kind::kAddInt64:
                  if (!row[idx].is_null) row[idx].i64 += assign.value.i64;
                  break;
                case Assignment::Kind::kAddDouble:
                  if (!row[idx].is_null) row[idx].f64 += assign.value.f64;
                  break;
              }
            }
            POLARIS_RETURN_IF_ERROR(rewritten.AppendRow(row));
          }
        }
        return Status::OK();
      });
  POLARIS_RETURN_IF_ERROR(scan_status);

  if (assignments != nullptr && rewritten.num_rows() > 0) {
    POLARIS_ASSIGN_OR_RETURN(ManifestEntry entry,
                             WriteDataFile(ctx, rewritten, group.cell));
    entries.push_back(std::move(entry));
  }

  if (entries.empty()) {
    *slot = TaskSlot{};  // nothing matched in this cell group
    return Status::OK();
  }
  lst::ManifestBlockWriter block_writer(ctx.store, ctx.manifest_path);
  POLARIS_ASSIGN_OR_RETURN(std::string block_id,
                           block_writer.StageEntries(entries));
  *slot = TaskSlot{};
  slot->block_id = std::move(block_id);
  slot->entries = std::move(entries);
  slot->touched_files = std::move(touched);
  slot->rows_affected = affected;
  return Status::OK();
}

Result<WriteResult> RunMutation(const DmlContext& ctx,
                                const lst::TableSnapshot& snapshot,
                                const Conjunction& filter,
                                const std::vector<Assignment>* assignments) {
  std::vector<CellGroup> groups = GroupByCell(snapshot);
  std::vector<TaskSlot> slots(groups.size());
  std::mutex slots_mu;
  dcp::TaskDag dag;

  for (size_t i = 0; i < groups.size(); ++i) {
    const CellGroup& group = groups[i];
    dcp::Task task;
    task.kind = assignments != nullptr ? "update" : "delete";
    task.cells = {group.cell};
    task.cost.rows = group.rows * ctx.cost_scale;
    task.cost.input_bytes = group.bytes * ctx.cost_scale;
    task.cost.output_bytes = group.bytes * ctx.cost_scale / 8;  // DVs are small
    task.cost.files_touched = group.files;
    task.work = [&ctx, &groups, &slots, &slots_mu, i, &filter,
                 assignments](const dcp::TaskContext&) -> Status {
      TaskSlot local;
      POLARIS_RETURN_IF_ERROR(
          MutateCellGroup(ctx, groups[i], filter, assignments, &local));
      std::lock_guard<std::mutex> lock(slots_mu);
      slots[i] = std::move(local);
      return Status::OK();
    };
    dag.Add(std::move(task));
  }

  POLARIS_ASSIGN_OR_RETURN(dcp::JobMetrics job,
                           ctx.scheduler->Run(dag, ctx.pool));
  return AssembleResult(std::move(slots), job);
}

}  // namespace

Result<WriteResult> DeleteExecutor::Run(const DmlContext& ctx,
                                        const lst::TableSnapshot& snapshot,
                                        const Conjunction& filter) {
  return RunMutation(ctx, snapshot, filter, nullptr);
}

Result<WriteResult> UpdateExecutor::Run(
    const DmlContext& ctx, const lst::TableSnapshot& snapshot,
    const Conjunction& filter, const std::vector<Assignment>& assignments) {
  if (assignments.empty()) {
    return Status::InvalidArgument("UPDATE requires at least one assignment");
  }
  return RunMutation(ctx, snapshot, filter, &assignments);
}

}  // namespace polaris::exec
