#include "dcp/scheduler.h"

#include <algorithm>
#include <condition_variable>
#include <queue>
#include <thread>

#include "common/trace_context.h"
#include "obs/tracer.h"

namespace polaris::dcp {

using common::Result;
using common::Status;

namespace {

/// Deterministic per-(seed, task, attempt) failure decision, independent of
/// thread interleavings.
bool HashBernoulli(uint64_t seed, uint64_t task_id, uint32_t attempt,
                   double p) {
  if (p <= 0.0) return false;
  uint64_t s = seed ^ (task_id * 0x9e3779b97f4a7c15ULL) ^
               (static_cast<uint64_t>(attempt) * 0xbf58476d1ce4e5b9ULL);
  uint64_t z = (s += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  double u = static_cast<double>(z >> 11) * (1.0 / 9007199254740992.0);
  return u < p;
}

}  // namespace

Scheduler::Scheduler(const Topology* topology, size_t worker_threads)
    : topology_(topology),
      pool_(worker_threads != 0 ? worker_threads
                                : std::max<size_t>(
                                      2, std::thread::hardware_concurrency())) {
}

Result<JobMetrics> Scheduler::Run(const TaskDag& dag,
                                  const std::string& pool_name,
                                  uint32_t max_parallelism) {
  auto pool_it = topology_->pools.find(pool_name);
  if (pool_it == topology_->pools.end()) {
    return Status::InvalidArgument("unknown pool: " + pool_name);
  }
  const NodePool& node_pool = pool_it->second;
  const size_t n = dag.tasks.size();

  JobMetrics metrics;
  if (n == 0) return metrics;

  // --- Node allocation ------------------------------------------------------
  common::Micros total_cost = 0;
  for (const auto& task : dag.tasks) {
    total_cost += topology_->cost_model.TaskMicros(task.cost);
  }
  uint32_t nodes;
  if (node_pool.mode == AllocationMode::kFixed) {
    nodes = node_pool.node_count;
  } else {
    uint32_t cap = max_parallelism != 0 ? max_parallelism
                                        : static_cast<uint32_t>(n);
    if (node_pool.max_nodes != 0) cap = std::min(cap, node_pool.max_nodes);
    nodes = topology_->allocator.NodesFor(total_cost, cap);
  }
  if (nodes == 0) nodes = 1;
  metrics.nodes_used = nodes;

  // --- Dependency bookkeeping ----------------------------------------------
  std::vector<std::vector<uint64_t>> dependents(n);
  std::vector<int> pending(n, 0);
  for (const auto& task : dag.tasks) {
    for (uint64_t dep : task.depends_on) {
      if (dep >= n) {
        return Status::InvalidArgument("task depends on unknown task");
      }
      dependents[dep].push_back(task.id);
      ++pending[task.id];
    }
  }

  TaskFailurePolicy policy;
  obs::MetricsRegistry* metrics_registry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    policy = failure_policy_;
    metrics_registry = metrics_;
  }

  // --- Real execution on the thread pool ------------------------------------
  struct JobState {
    std::mutex mu;
    std::condition_variable cv;
    size_t outstanding = 0;
    size_t completed = 0;
    bool failed = false;
    Status error;
    std::vector<uint32_t> attempts_used;
  };
  auto state = std::make_shared<JobState>();
  state->attempts_used.assign(n, 1);

  // RunTask executes one task with retries, then schedules dependents.
  std::function<void(uint64_t)> submit_task;
  auto run_task = [this, &dag, state, &dependents, &pending, policy, nodes,
                   &submit_task](uint64_t id) {
    const Task& task = dag.tasks[id];
    Status result = Status::OK();
    uint32_t attempt = 1;
    for (; attempt <= kMaxAttempts; ++attempt) {
      // The submitting statement's deadline rode in on the trace binding;
      // don't restart a task whose statement is already dead. Cancelled /
      // DeadlineExceeded are not Unavailable, so the retry loop below also
      // stops on them.
      result = common::CheckCurrentDeadline("dcp.task." + task.kind);
      if (!result.ok()) break;
      bool injected = HashBernoulli(policy.seed, id, attempt,
                                    policy.failure_probability);
      if (injected && !policy.after_work) {
        result = Status::Unavailable("injected node failure (pre-work)");
        continue;
      }
      TaskContext ctx;
      ctx.node_id = static_cast<uint32_t>(id % nodes);
      ctx.attempt = attempt;
      // One child span per attempt (context arrived via ThreadPool::Submit).
      obs::Span span(("dcp.task." + task.kind).c_str());
      span.AddAttr("task_id", id);
      span.AddAttr("node", ctx.node_id);
      span.AddAttr("attempt", attempt);
      result = task.work ? task.work(ctx) : Status::OK();
      if (injected && result.ok()) {
        // Node died after doing the work: side effects persist, the DCP
        // sees a failure and will re-run the task.
        result = Status::Unavailable("injected node failure (post-work)");
      }
      if (!result.ok()) span.AddAttr("error", result.ToString());
      if (result.ok() || !result.IsUnavailable()) break;
    }
    if (attempt > kMaxAttempts) attempt = kMaxAttempts;

    std::vector<uint64_t> ready;
    {
      std::lock_guard<std::mutex> lock(state->mu);
      state->attempts_used[id] = attempt;
      --state->outstanding;
      if (!result.ok()) {
        if (!state->failed) {
          state->failed = true;
          state->error = result;
        }
      } else {
        ++state->completed;
        if (!state->failed) {
          for (uint64_t dep_id : dependents[id]) {
            if (--pending[dep_id] == 0) ready.push_back(dep_id);
          }
        }
      }
      for (uint64_t r : ready) ++state->outstanding;
    }
    for (uint64_t r : ready) submit_task(r);
    state->cv.notify_all();
  };
  submit_task = [this, run_task](uint64_t id) {
    pool_.Submit([run_task, id] { run_task(id); });
  };

  {
    std::lock_guard<std::mutex> lock(state->mu);
    for (uint64_t id = 0; id < n; ++id) {
      if (pending[id] == 0) ++state->outstanding;
    }
  }
  for (uint64_t id = 0; id < n; ++id) {
    if (dag.tasks[id].depends_on.empty()) submit_task(id);
  }

  std::vector<uint32_t> attempts;
  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->cv.wait(lock, [&] {
      return state->outstanding == 0 &&
             (state->failed || state->completed == n);
    });
    if (state->failed) return state->error;
    if (state->completed != n) {
      return Status::Internal("task DAG has a cycle or unreachable tasks");
    }
    attempts = state->attempts_used;
  }

  // --- Deterministic virtual-time list scheduling ---------------------------
  // Earliest-ready-first; ties by task id; each task goes to the node that
  // frees up first. Retried attempts consume node time too.
  std::vector<common::Micros> ready_time(n, 0);
  std::vector<common::Micros> finish_time(n, 0);
  std::vector<int> vpending(n, 0);
  for (const auto& task : dag.tasks) {
    vpending[task.id] = static_cast<int>(task.depends_on.size());
  }
  using QEntry = std::pair<common::Micros, uint64_t>;  // (ready, id)
  std::priority_queue<QEntry, std::vector<QEntry>, std::greater<>> ready_q;
  for (uint64_t id = 0; id < n; ++id) {
    if (vpending[id] == 0) ready_q.push({0, id});
  }
  std::priority_queue<QEntry, std::vector<QEntry>, std::greater<>> node_q;
  for (uint32_t i = 0; i < nodes; ++i) node_q.push({0, i});

  size_t scheduled = 0;
  while (!ready_q.empty()) {
    auto [ready_at, id] = ready_q.top();
    ready_q.pop();
    auto [node_free, node] = node_q.top();
    node_q.pop();
    common::Micros start = std::max(ready_at, node_free);
    const TaskCost& effective_cost =
        dag.tasks[id].measured_cost != nullptr
            ? *dag.tasks[id].measured_cost
            : dag.tasks[id].cost;
    common::Micros cost =
        topology_->cost_model.TaskMicros(effective_cost) * attempts[id];
    common::Micros finish = start + cost;
    finish_time[id] = finish;
    metrics.total_compute_micros += cost;
    metrics.makespan_micros = std::max(metrics.makespan_micros, finish);
    metrics.tasks_run += 1;
    metrics.task_retries += attempts[id] - 1;
    node_q.push({finish, node});
    ++scheduled;
    for (uint64_t dep_id : dependents[id]) {
      ready_time[dep_id] = std::max(ready_time[dep_id], finish);
      if (--vpending[dep_id] == 0) {
        ready_q.push({ready_time[dep_id], dep_id});
      }
    }
  }
  if (scheduled != n) {
    return Status::Internal("virtual schedule incomplete (cycle?)");
  }
  if (metrics_registry != nullptr) {
    metrics_registry->Add("dcp.jobs");
    metrics_registry->Add("dcp.tasks_run", metrics.tasks_run);
    metrics_registry->Add("dcp.task_retries", metrics.task_retries);
    metrics_registry->Observe("dcp.makespan_us", metrics.makespan_micros);
  }
  return metrics;
}

}  // namespace polaris::dcp
