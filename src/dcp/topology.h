#ifndef POLARIS_DCP_TOPOLOGY_H_
#define POLARIS_DCP_TOPOLOGY_H_

#include <cstdint>
#include <map>
#include <string>

#include "dcp/cost_model.h"

namespace polaris::dcp {

/// Resource-allocation mode for a pool (paper §1 objective 1, §7.1).
enum class AllocationMode {
  /// Fixed capacity: every job runs on exactly `node_count` nodes
  /// (previous-generation Synapse SQL DW model).
  kFixed,
  /// Elastic/serverless: per-job node count is chosen by the cost-based
  /// allocator, unbounded above (Fabric DW model). Cost is charged as
  /// resources x time, so bigger topologies don't cost more overall.
  kElastic,
};

/// One named pool of compute nodes. Polaris' workload management isolates
/// read and write workloads on separate pools (paper §4.3 "Workload
/// Separation").
struct NodePool {
  std::string name;
  AllocationMode mode = AllocationMode::kElastic;
  /// Capacity for kFixed; ignored for kElastic.
  uint32_t node_count = 4;
  /// Upper bound for kElastic (0 = unbounded).
  uint32_t max_nodes = 0;
};

/// Cost-based elastic allocator: chooses how many nodes a job gets.
struct ElasticAllocator {
  /// Target virtual compute per node — the allocator sizes the topology so
  /// each node gets roughly this much work.
  common::Micros target_micros_per_node = 2'000'000;

  /// Decides the node count for a job with total virtual compute
  /// `total_micros`, at most `max_parallelism` usable nodes (e.g. the
  /// number of source files for a load — Polaris does not parallelize
  /// within a source file, §7.1).
  uint32_t NodesFor(common::Micros total_micros,
                    uint32_t max_parallelism) const {
    if (max_parallelism == 0) max_parallelism = 1;
    auto nodes = static_cast<uint32_t>(
        (total_micros + target_micros_per_node - 1) / target_micros_per_node);
    if (nodes == 0) nodes = 1;
    return nodes < max_parallelism ? nodes : max_parallelism;
  }
};

/// The compute topology: named pools plus the allocator and cost model
/// shared by all schedulers.
struct Topology {
  std::map<std::string, NodePool> pools;
  ElasticAllocator allocator;
  CostModel cost_model;

  /// Convenience: a topology with one elastic "default" pool.
  static Topology SingleElasticPool(uint32_t max_nodes = 0);

  /// Read/write separated pools ("read" elastic, "write" elastic).
  static Topology ReadWritePools(uint32_t read_max = 0,
                                 uint32_t write_max = 0);
};

}  // namespace polaris::dcp

#endif  // POLARIS_DCP_TOPOLOGY_H_
