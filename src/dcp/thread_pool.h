#ifndef POLARIS_DCP_THREAD_POOL_H_
#define POLARIS_DCP_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/wait_stats.h"

namespace polaris::dcp {

/// Minimal fixed-size thread pool. The DCP uses it to actually run task
/// work functions concurrently (exercising the thread-safety of the
/// storage/catalog layers); scheduling *decisions* and reported timings
/// come from the deterministic virtual-time scheduler, not from the pool.
///
/// Trace contexts cross the pool: Submit captures the submitting thread's
/// `obs::TraceBinding` (ambient tracer + TraceContext) and installs it
/// around the work function, so spans opened inside pool work are children
/// of the submitting statement's span.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Attaches the wait-event registry (may be null); each task's
  /// submit-to-dequeue latency is then charged as DCP_QUEUE against the
  /// submitting statement (the charge runs on the worker, under the
  /// restored trace context).
  void set_wait_stats(common::WaitStats* waits) { wait_stats_ = waits; }

  /// Enqueues `work`; runs on some pool thread under the submitting
  /// thread's trace context.
  void Submit(std::function<void()> work);

  /// Blocks until all submitted work has completed.
  void Wait();

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  common::WaitStats* wait_stats_ = nullptr;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace polaris::dcp

#endif  // POLARIS_DCP_THREAD_POOL_H_
