#include "dcp/thread_pool.h"

#include <utility>

#include "obs/tracer.h"

namespace polaris::dcp {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> work) {
  // Carry the submitter's trace context onto the worker thread.
  obs::TraceBinding binding;
  common::WaitStats* waits = wait_stats_;
  const int64_t submitted_at =
      waits != nullptr && waits->enabled() ? common::WaitStats::NowMicros() : 0;
  auto traced = [binding, waits, submitted_at, work = std::move(work)] {
    obs::TraceBinding::Scope scope(binding);
    if (submitted_at != 0) {
      // Charged after the scope restores the submitter's context, so the
      // queueing delay lands on the owning statement's resource vector.
      common::WaitStats::Charge(waits, common::WaitClass::kDcpQueue,
                                common::WaitStats::NowMicros() - submitted_at);
    }
    work();
  };
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(traced));
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> work;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      work = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    work();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
    }
    idle_cv_.notify_all();
  }
}

}  // namespace polaris::dcp
