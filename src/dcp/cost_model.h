#ifndef POLARIS_DCP_COST_MODEL_H_
#define POLARIS_DCP_COST_MODEL_H_

#include <cstdint>

#include "common/clock.h"

namespace polaris::dcp {

/// Resource footprint of one task, declared by the plan builder. The cost
/// model converts it to virtual execution time; the elastic allocator
/// converts job totals to a node count (paper §7.1: "we estimate the cost
/// of the load based on the amount of data, the number of source files,
/// ... the CPU cost of the plan dominates").
struct TaskCost {
  uint64_t input_bytes = 0;
  uint64_t output_bytes = 0;
  uint64_t rows = 0;
  /// Distinct files opened; each carries fixed per-file IO latency.
  uint32_t files_touched = 0;
};

/// Deterministic virtual-time cost model for one compute node. Defaults
/// approximate a mid-size container: 200 MB/s effective scan, 500 MB/s
/// write, 10M rows/s of CPU, 2 ms per file open, 1 ms task startup.
struct CostModel {
  int64_t micros_per_input_mb = 5000;    // 200 MB/s
  int64_t micros_per_output_mb = 2000;   // 500 MB/s
  int64_t micros_per_krow = 100;         // 10M rows/s
  int64_t micros_per_file = 2000;
  int64_t task_startup_micros = 1000;

  common::Micros TaskMicros(const TaskCost& cost) const {
    common::Micros t = task_startup_micros;
    t += static_cast<common::Micros>(cost.input_bytes) * micros_per_input_mb /
         (1 << 20);
    t += static_cast<common::Micros>(cost.output_bytes) *
         micros_per_output_mb / (1 << 20);
    t += static_cast<common::Micros>(cost.rows) * micros_per_krow / 1000;
    t += static_cast<common::Micros>(cost.files_touched) * micros_per_file;
    return t;
  }
};

}  // namespace polaris::dcp

#endif  // POLARIS_DCP_COST_MODEL_H_
