#include "dcp/topology.h"

namespace polaris::dcp {

Topology Topology::SingleElasticPool(uint32_t max_nodes) {
  Topology topo;
  NodePool pool;
  pool.name = "default";
  pool.mode = AllocationMode::kElastic;
  pool.max_nodes = max_nodes;
  topo.pools[pool.name] = pool;
  return topo;
}

Topology Topology::ReadWritePools(uint32_t read_max, uint32_t write_max) {
  Topology topo;
  NodePool read;
  read.name = "read";
  read.mode = AllocationMode::kElastic;
  read.max_nodes = read_max;
  topo.pools[read.name] = read;
  NodePool write;
  write.name = "write";
  write.mode = AllocationMode::kElastic;
  write.max_nodes = write_max;
  topo.pools[write.name] = write;
  return topo;
}

}  // namespace polaris::dcp
