#ifndef POLARIS_DCP_SCHEDULER_H_
#define POLARIS_DCP_SCHEDULER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "dcp/task.h"
#include "dcp/thread_pool.h"
#include "dcp/topology.h"
#include "obs/metrics.h"

namespace polaris::dcp {

/// Deterministic injected task failures, modeling node loss mid-job. With
/// `after_work` the task's side effects (staged blocks, orphan data files)
/// are left behind before the failure is reported — the case the paper's
/// discard-on-restart design must absorb (§4.3 "Resilience to Compute
/// Failures").
struct TaskFailurePolicy {
  double failure_probability = 0.0;
  /// If true, the failure happens after the work function ran (partial
  /// side effects persist); otherwise before it (no side effects).
  bool after_work = true;
  uint64_t seed = 42;
};

/// Outcome of one job (a DAG run).
struct JobMetrics {
  /// Virtual wall-clock of the job under list scheduling (what the paper's
  /// figures report as elapsed time).
  common::Micros makespan_micros = 0;
  /// Sum of all task costs = resources x time actually consumed; the
  /// quantity Fabric bills ("price performance is similar", §7.1).
  common::Micros total_compute_micros = 0;
  uint32_t nodes_used = 0;
  uint64_t tasks_run = 0;
  uint64_t task_retries = 0;
};

/// The Polaris distributed-computation-platform scheduler: executes a
/// workflow DAG on a pool, with
///  * cost-based elastic node allocation (per pool policy),
///  * list scheduling on virtual time for deterministic makespans,
///  * per-task retry on Unavailable failures (task-level restart, §1),
///  * real concurrent execution of work functions on a thread pool so the
///    storage/catalog code paths see true parallelism.
class Scheduler {
 public:
  /// `topology` must outlive the scheduler. `worker_threads` bounds real
  /// concurrency (defaults to hardware).
  explicit Scheduler(const Topology* topology, size_t worker_threads = 0);

  void set_failure_policy(const TaskFailurePolicy& policy) {
    std::lock_guard<std::mutex> lock(mu_);
    failure_policy_ = policy;
  }

  /// Attaches a metrics registry (must outlive the scheduler); per-job task
  /// counts, retries and makespans are then mirrored under "dcp.*".
  void set_metrics(obs::MetricsRegistry* metrics) {
    std::lock_guard<std::mutex> lock(mu_);
    metrics_ = metrics;
  }

  /// Attaches the wait-event registry to the worker pool; task
  /// submit-to-dequeue latency is then charged as DCP_QUEUE.
  void set_wait_stats(common::WaitStats* waits) {
    pool_.set_wait_stats(waits);
  }

  /// Runs `dag` on `pool_name`. `max_parallelism` caps elastic allocation
  /// (0 = derive from the number of independent tasks). Returns metrics on
  /// success; the first non-retryable task error otherwise.
  common::Result<JobMetrics> Run(const TaskDag& dag,
                                 const std::string& pool_name,
                                 uint32_t max_parallelism = 0);

  static constexpr uint32_t kMaxAttempts = 5;

 private:
  const Topology* topology_;
  ThreadPool pool_;
  std::mutex mu_;
  TaskFailurePolicy failure_policy_;
  obs::MetricsRegistry* metrics_ = nullptr;
  common::Random failure_rng_{42};
};

}  // namespace polaris::dcp

#endif  // POLARIS_DCP_SCHEDULER_H_
