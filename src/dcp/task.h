#ifndef POLARIS_DCP_TASK_H_
#define POLARIS_DCP_TASK_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "dcp/cost_model.h"

namespace polaris::dcp {

/// Execution context handed to a task's work function.
struct TaskContext {
  /// Node the scheduler placed this task on (0-based within the pool).
  uint32_t node_id = 0;
  /// 1-based attempt number; > 1 after a retry. Work functions must
  /// generate fresh GUIDs per attempt so that abandoned attempts' outputs
  /// are never referenced (paper §3.2.2).
  uint32_t attempt = 1;
};

/// A unit of distributed work: the packaging of data (a disjoint set of
/// cells) and processing that the DCP moves across compute nodes and
/// restarts at task granularity (paper §1).
struct Task {
  /// Index within the DAG; also its identifier.
  uint64_t id = 0;
  /// Display label ("scan", "insert", "agg-partial", ...).
  std::string kind;
  /// Declared resource footprint for the cost model. Used by the elastic
  /// allocator to size the topology *before* execution (the plan-time
  /// estimate).
  TaskCost cost;
  /// Optional slot the work function fills with the resources actually
  /// consumed (e.g. a scan that skipped row groups via zone maps reads
  /// less than declared). When set, the virtual-time schedule uses it
  /// instead of the estimate — allocation stays estimate-driven, execution
  /// time reflects real work.
  std::shared_ptr<TaskCost> measured_cost;
  /// Cells (distribution buckets) this task covers. Tasks of one DML
  /// statement target disjoint cell sets, giving write isolation (§4.3).
  std::vector<uint32_t> cells;
  /// The actual work. Must be safe to re-execute on retry. A Status of
  /// Unavailable triggers a retry; other errors fail the job.
  std::function<common::Status(const TaskContext&)> work;
  /// IDs of tasks that must complete before this one starts.
  std::vector<uint64_t> depends_on;
};

/// A workflow DAG of tasks (paper §1: "a task-level workflow-DAG that
/// represents inter-task dependencies efficiently").
struct TaskDag {
  std::vector<Task> tasks;

  /// Appends a task, assigning its id. Returns the id.
  uint64_t Add(Task task) {
    task.id = tasks.size();
    tasks.push_back(std::move(task));
    return tasks.size() - 1;
  }
};

}  // namespace polaris::dcp

#endif  // POLARIS_DCP_TASK_H_
