#include "obs/query_store.h"

#include <algorithm>
#include <chrono>

namespace polaris::obs {

namespace {

constexpr const char* kOverflowFingerprint = "(other)";

/// FNV-1a 64 over the fingerprint text (mirrors sql::FingerprintId; kept
/// local so obs does not depend on the SQL layer).
uint64_t HashFingerprint(const std::string& fingerprint) {
  uint64_t hash = 1469598103934665603ull;
  for (unsigned char c : fingerprint) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return hash;
}

}  // namespace

QueryStore::QueryStore(common::Clock* clock, QueryStoreOptions options)
    : clock_(clock), options_(options), enabled_(options.enabled) {
  if (options_.max_fingerprints == 0) options_.max_fingerprints = 1;
  if (options_.interval_micros <= 0) options_.interval_micros = 60'000'000;
  if (options_.max_intervals == 0) options_.max_intervals = 1;
}

int64_t QueryStore::NowMicros() const {
  if (clock_ != nullptr) return clock_->Now();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void QueryStore::Record(const std::string& fingerprint, std::string_view kind,
                        common::StatementOutcome outcome,
                        const common::ResourceUsageSnapshot& usage) {
  if (!enabled()) return;
  const int64_t now = NowMicros();
  const int64_t interval_start =
      now - (now % options_.interval_micros);

  std::lock_guard<std::mutex> lock(mu_);
  ++recorded_;
  auto it = entries_.find(fingerprint);
  if (it == entries_.end()) {
    // Reserve one slot for the fold-in entry so a full store still
    // accounts every statement somewhere.
    bool full = entries_.size() >= options_.max_fingerprints;
    if (full) {
      ++overflow_;
      it = entries_.find(kOverflowFingerprint);
      if (it == entries_.end()) {
        it = entries_.emplace(kOverflowFingerprint, Entry{}).first;
        it->second.kind = "(mixed)";
        it->second.first_seen_us = now;
      }
    } else {
      it = entries_.emplace(fingerprint, Entry{}).first;
      it->second.kind = std::string(kind);
      it->second.first_seen_us = now;
    }
  }
  Entry& entry = it->second;
  ++entry.outcomes[static_cast<int>(outcome)];
  entry.wall.Observe(usage.wall_us);
  entry.totals.Add(usage);
  entry.last_seen_us = now;

  if (entry.intervals.empty() ||
      entry.intervals.back().start_us != interval_start) {
    entry.intervals.push_back(Interval{});
    entry.intervals.back().start_us = interval_start;
    while (entry.intervals.size() > options_.max_intervals) {
      entry.intervals.pop_front();
    }
  }
  Interval& bucket = entry.intervals.back();
  ++bucket.count;
  if (outcome != common::StatementOutcome::kOk) ++bucket.errors;
  bucket.wall.Observe(usage.wall_us);
  bucket.store_ops += usage.store_read_ops + usage.store_write_ops;
  bucket.store_bytes += usage.store_read_bytes + usage.store_write_bytes;
  bucket.rows_scanned += usage.rows_scanned;
  bucket.rows_returned += usage.rows_returned;
  bucket.wait_us += usage.total_wait_us();
}

QueryStoreEntryRow QueryStore::EntryRow(const std::string& fingerprint,
                                        const Entry& entry) const {
  QueryStoreEntryRow row;
  row.fingerprint_id = HashFingerprint(fingerprint);
  row.fingerprint = fingerprint;
  row.kind = entry.kind;
  for (uint64_t n : entry.outcomes) row.count += n;
  row.ok = entry.outcomes[static_cast<int>(common::StatementOutcome::kOk)];
  row.errors =
      entry.outcomes[static_cast<int>(common::StatementOutcome::kError)];
  row.conflicts =
      entry.outcomes[static_cast<int>(common::StatementOutcome::kConflict)];
  row.shed = entry.outcomes[static_cast<int>(common::StatementOutcome::kShed)];
  row.killed =
      entry.outcomes[static_cast<int>(common::StatementOutcome::kKilled)];
  row.expired =
      entry.outcomes[static_cast<int>(common::StatementOutcome::kExpired)];
  HistogramSnapshot wall = entry.wall.Snapshot();
  row.wall_p50_us = wall.ApproxQuantile(0.5);
  row.wall_p99_us = wall.ApproxQuantile(0.99);
  row.total_wall_us = entry.totals.wall_us;
  row.total_queue_us = entry.totals.queue_us;
  row.total_commit_us = entry.totals.commit_us;
  row.store_read_ops = entry.totals.store_read_ops;
  row.store_write_ops = entry.totals.store_write_ops;
  row.store_read_bytes = entry.totals.store_read_bytes;
  row.store_write_bytes = entry.totals.store_write_bytes;
  row.store_retries = entry.totals.store_retries;
  row.cache_hits = entry.totals.cache_hits;
  row.cache_misses = entry.totals.cache_misses;
  row.statement_retries = entry.totals.statement_retries;
  row.rows_scanned = entry.totals.rows_scanned;
  row.rows_returned = entry.totals.rows_returned;
  row.total_wait_us = entry.totals.total_wait_us();
  const int top = entry.totals.top_wait_class();
  if (top >= 0) {
    row.top_wait_class = std::string(
        common::WaitClassName(static_cast<common::WaitClass>(top)));
    row.top_wait_us = entry.totals.wait_us[top];
  }
  row.first_seen_us = entry.first_seen_us;
  row.last_seen_us = entry.last_seen_us;
  return row;
}

std::vector<QueryStoreEntryRow> QueryStore::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<QueryStoreEntryRow> rows;
  rows.reserve(entries_.size());
  for (const auto& [fingerprint, entry] : entries_) {
    rows.push_back(EntryRow(fingerprint, entry));
  }
  std::stable_sort(rows.begin(), rows.end(),
                   [](const QueryStoreEntryRow& a,
                      const QueryStoreEntryRow& b) {
                     return a.total_wall_us > b.total_wall_us;
                   });
  return rows;
}

std::vector<QueryStoreEntryRow> QueryStore::TopByWallTime(size_t n) const {
  std::vector<QueryStoreEntryRow> rows = Snapshot();
  if (rows.size() > n) rows.resize(n);
  return rows;
}

std::vector<QueryStoreIntervalRow> QueryStore::IntervalSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<QueryStoreIntervalRow> rows;
  for (const auto& [fingerprint, entry] : entries_) {
    for (auto it = entry.intervals.rbegin(); it != entry.intervals.rend();
         ++it) {
      QueryStoreIntervalRow row;
      row.fingerprint_id = HashFingerprint(fingerprint);
      row.fingerprint = fingerprint;
      row.interval_start_us = it->start_us;
      row.count = it->count;
      row.errors = it->errors;
      HistogramSnapshot wall = it->wall.Snapshot();
      row.wall_p50_us = wall.ApproxQuantile(0.5);
      row.wall_p99_us = wall.ApproxQuantile(0.99);
      row.total_wall_us = wall.sum;
      row.store_ops = it->store_ops;
      row.store_bytes = it->store_bytes;
      row.rows_scanned = it->rows_scanned;
      row.rows_returned = it->rows_returned;
      row.wait_us = it->wait_us;
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

bool QueryStore::WorstRegression(Regression* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  bool found = false;
  for (const auto& [fingerprint, entry] : entries_) {
    // The fold-in entry mixes unrelated statement shapes; its latency
    // distribution is meaningless for regression judgement.
    if (fingerprint == kOverflowFingerprint) continue;
    if (entry.intervals.size() < 2) continue;
    const Interval& current = entry.intervals.back();
    if (current.count < options_.regression_min_samples) continue;
    Histogram baseline;
    for (size_t i = 0; i + 1 < entry.intervals.size(); ++i) {
      baseline.Merge(entry.intervals[i].wall);
    }
    if (baseline.count() < options_.regression_min_samples) continue;
    int64_t current_p99 = current.wall.Snapshot().ApproxQuantile(0.99);
    int64_t baseline_p99 = baseline.Snapshot().ApproxQuantile(0.99);
    double ratio = static_cast<double>(current_p99) /
                   static_cast<double>(std::max<int64_t>(1, baseline_p99));
    if (!found || ratio > out->ratio) {
      found = true;
      out->fingerprint = fingerprint;
      out->ratio = ratio;
      out->current_p99_us = current_p99;
      out->baseline_p99_us = baseline_p99;
      out->current_samples = current.count;
      out->baseline_samples = baseline.count();
    }
  }
  return found;
}

int64_t QueryStore::total_wall_us() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const auto& [fingerprint, entry] : entries_) {
    total += entry.totals.wall_us;
  }
  return total;
}

uint64_t QueryStore::recorded_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

uint64_t QueryStore::overflow_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return overflow_;
}

uint64_t QueryStore::fingerprints() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void QueryStore::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  recorded_ = 0;
  overflow_ = 0;
}

}  // namespace polaris::obs
