#include "obs/event_log.h"

#include <chrono>
#include <sstream>

#include "common/trace_context.h"

namespace polaris::obs {

std::string_view EventLevelName(EventLevel level) {
  switch (level) {
    case EventLevel::kDebug: return "DEBUG";
    case EventLevel::kInfo: return "INFO";
    case EventLevel::kWarn: return "WARN";
    case EventLevel::kError: return "ERROR";
  }
  return "?";
}

namespace {

void AppendJsonEscaped(const std::string& in, std::string* out) {
  for (char c : in) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\n': out->append("\\n"); break;
      case '\r': out->append("\\r"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
}

common::LogLevel ToLogLevel(EventLevel level) {
  switch (level) {
    case EventLevel::kDebug: return common::LogLevel::kDebug;
    case EventLevel::kInfo: return common::LogLevel::kInfo;
    case EventLevel::kWarn: return common::LogLevel::kWarn;
    case EventLevel::kError: return common::LogLevel::kError;
  }
  return common::LogLevel::kInfo;
}

}  // namespace

EventLog::EventLog(common::Clock* clock, size_t capacity)
    : clock_(clock), capacity_(capacity == 0 ? 1 : capacity) {}

common::Micros EventLog::NowUs() const {
  if (clock_ != nullptr) return clock_->Now();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void EventLog::Emit(EventLevel level, std::string_view component,
                    std::string_view name,
                    std::vector<std::pair<std::string, std::string>> fields,
                    std::string_view message) {
  EventRecord record;
  record.ts_us = NowUs();
  record.level = level;
  record.component = std::string(component);
  record.name = std::string(name);
  const common::TraceContext ctx = common::CurrentTraceContext();
  record.trace_id = ctx.trace_id;
  record.span_id = ctx.span_id;
  record.txn_id = ctx.txn_id;
  record.fields = std::move(fields);
  record.message = std::string(message);
  std::lock_guard<std::mutex> lock(mu_);
  if (level < min_level_) return;
  EmitLocked(std::move(record));
}

void EventLog::EmitLocked(EventRecord&& record) {
  record.seq = next_seq_++;
  if (stderr_echo_) {
    std::ostringstream line;
    line << record.name;
    for (const auto& [key, value] : record.fields) {
      line << " " << key << "=" << value;
    }
    if (!record.message.empty()) line << " | " << record.message;
    common::LogMessage(ToLogLevel(record.level), record.component,
                       line.str());
  }
  if (json_sink_open_ && json_sink_.good()) {
    json_sink_ << ToJsonLine(record) << "\n";
    json_sink_.flush();
  }
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(record));
    return;
  }
  full_ = true;
  ring_[head_] = std::move(record);
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
}

std::vector<EventRecord> EventLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<EventRecord> out;
  out.reserve(ring_.size());
  if (full_) {
    for (size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(head_ + i) % ring_.size()]);
    }
  } else {
    out = ring_;
  }
  return out;
}

uint64_t EventLog::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

uint64_t EventLog::total_emitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_ - 1;
}

size_t EventLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

void EventLog::set_min_level(EventLevel level) {
  std::lock_guard<std::mutex> lock(mu_);
  min_level_ = level;
}

void EventLog::set_stderr_echo(bool on) {
  std::lock_guard<std::mutex> lock(mu_);
  stderr_echo_ = on;
}

common::Status EventLog::OpenJsonSink(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (json_sink_open_) json_sink_.close();
  json_sink_.clear();
  json_sink_.open(path, std::ios::trunc);
  json_sink_open_ = json_sink_.is_open();
  if (!json_sink_open_) {
    return common::Status::IOError("cannot open event log sink: " + path);
  }
  return common::Status::OK();
}

void EventLog::CloseJsonSink() {
  std::lock_guard<std::mutex> lock(mu_);
  if (json_sink_open_) json_sink_.close();
  json_sink_open_ = false;
}

std::string EventLog::ToJsonLine(const EventRecord& record) {
  std::string out = "{\"seq\":" + std::to_string(record.seq) +
                    ",\"ts_us\":" + std::to_string(record.ts_us) +
                    ",\"level\":\"";
  out += EventLevelName(record.level);
  out += "\",\"component\":\"";
  AppendJsonEscaped(record.component, &out);
  out += "\",\"event\":\"";
  AppendJsonEscaped(record.name, &out);
  out += "\"";
  if (record.trace_id != 0) {
    out += ",\"trace_id\":\"" + std::to_string(record.trace_id) + "\"";
    out += ",\"span_id\":\"" + std::to_string(record.span_id) + "\"";
  }
  if (record.txn_id != 0) {
    out += ",\"txn_id\":" + std::to_string(record.txn_id);
  }
  for (const auto& [key, value] : record.fields) {
    out += ",\"";
    AppendJsonEscaped(key, &out);
    out += "\":\"";
    AppendJsonEscaped(value, &out);
    out += "\"";
  }
  if (!record.message.empty()) {
    out += ",\"message\":\"";
    AppendJsonEscaped(record.message, &out);
    out += "\"";
  }
  out += "}";
  return out;
}

std::string EventLog::ToJsonLines() const {
  std::string out;
  for (const auto& record : Snapshot()) {
    out += ToJsonLine(record);
    out += "\n";
  }
  return out;
}

}  // namespace polaris::obs
